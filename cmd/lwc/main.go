// Command lwc is the lwcomp command-line tool: generate workloads,
// analyze columns, compress/decompress container files, inspect
// compressed forms and run queries on them without decompressing.
//
// Raw columns use a minimal binary format (magic "LWR1", varint
// count, little-endian int64s). Compressed containers are the
// storage-package format.
//
// Usage:
//
//	lwc gen -workload dates -n 1000000 -o dates.raw
//	lwc stats -i dates.raw
//	lwc compress -i dates.raw -o dates.lwc -scheme auto
//	lwc compress -i dates.raw -o dates.lwc --block-size 65536 --parallel 8
//	lwc compress -i dates.raw -o dates.lwc -scheme 'rle(lengths=ns, values=delta(deltas=vns[32]))'
//	lwc stat -i dates.lwc --cache
//	lwc inspect -i dates.lwc
//	lwc decompress -i dates.lwc -o back.raw
//	lwc query -i dates.lwc -sum
//	lwc query -i dates.lwc -range 730200:730400 --mmap
//	lwc query -i orders.lwc -where 'date >= 730200 and date <= 730400 and status = 1' -sum -col amount
//	lwc verify -i dates.lwc
//	lwc verify -json /data/containers/*.lwc
//	lwc repair -dir /data/containers -json
//	lwc compact -dry-run -dir /data/containers
//	lwc compact -dir /data/containers -min-gain-bytes 4096 -merge
//	lwc serve -dir /data/containers -addr 127.0.0.1:7207
//
// compress writes lazily openable (v3) containers; every command also
// reads v2/v1 containers written by older builds. Container writes are
// crash-safe: the file is written to a temporary name in the same
// directory, fsynced, and renamed into place, so an interrupted
// compress never leaves a torn container under the final name. stat,
// query and decompress open containers lazily — header and block index
// only, block payloads on demand (--mmap maps the file instead of
// reading it) — so stat never decodes a payload and query reads only
// the blocks the query touches.
//
// verify is the offline fsck: it re-reads every block payload, checks
// its CRC, decodes and decompresses it, and re-derives the block's
// [min, max] against the index stats, reporting every finding — with
// -json as one machine-readable report per container (container,
// column, block, row range, reason). Exit codes: 0 every container
// clean, 1 integrity findings, 2 environmental failure.
//
// repair is the salvage pass for containers verify condemns: good
// blocks are preserved byte-for-byte, transiently corrupted reads are
// retried, falsified index stats are re-derived from the data, and
// only truly lost blocks are tombstoned — the container keeps serving
// its surviving rows, with the lost row ranges recorded exactly (the
// same manifest shape degraded scans report). The rebuilt generation
// is verified before an atomic temp+rename swap. Exit codes: 0 clean
// or repaired, 1 unrepairable container(s), 2 environmental failure.
// The same salvage runs inside lwcd under -scrub-heal.
//
// compact is the single-shot recompaction pass: each container is
// re-analyzed block by block (exhaustively, or pruned with -trialk)
// and atomically rewritten only when the byte win clears the
// threshold — the candidate is verified value-for-value before the
// rename, so a failed rewrite leaves the old file untouched. -dry-run
// estimates per-container savings from the block stats alone, without
// a trial encode or a write; -merge coalesces groups of small
// same-table single-column containers into one container per table.
// The same pass runs continuously inside lwcd under -compact.
//
// query -where runs a table scan over all of a container's columns:
// the predicate (comparisons and in-lists under and/or/not; and binds
// tighter) is planned per block, blocks any conjunct's [min, max]
// stats refute are skipped without a read, and -sum aggregates the
// named column over just the surviving rows. --cache (on stat and
// query) prints the shared block cache's budget and traffic.
package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"lwcomp"
	"lwcomp/internal/compact"
	"lwcomp/internal/scrub"
	"lwcomp/internal/server"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "serve":
		err = server.Main(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lwc: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lwc %s: %v\n", os.Args[1], err)
		var ce *codedError
		if errors.As(err, &ce) {
			os.Exit(ce.code)
		}
		os.Exit(1)
	}
}

// codedError carries an explicit process exit status for commands
// with documented exit codes (verify, repair): 1 for findings, 2 for
// environmental failures.
type codedError struct {
	code int
	err  error
}

// Error implements error.
func (e *codedError) Error() string { return e.err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *codedError) Unwrap() error { return e.err }

func usage() {
	fmt.Fprintln(os.Stderr, `lwc <command> [flags]

commands:
  gen         generate a synthetic workload column (raw file)
  stats       analyze a raw column
  compress    compress a raw column into a container
  decompress  decompress a container back to a raw column
  stat        print a container's block index without decoding payloads
  inspect     show the scheme tree and sizes of a container
  query       run sum/range/point queries, or -where table scans, on a container
  verify      fsck a container: re-read, CRC-check and decode every block
  repair      salvage a damaged container: preserve good blocks, tombstone lost ones
  compact     re-analyze containers and atomically rewrite the ones that shrink
  serve       serve a directory of containers as tables over HTTP (same as lwcd)

run 'lwc <command> -h' for flags`)
}

// Raw column file format.
var rawMagic = [4]byte{'L', 'W', 'R', '1'}

func writeRaw(path string, col []int64) error {
	buf := make([]byte, 0, 8+len(col)*8)
	buf = append(buf, rawMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(col)))
	for _, v := range col {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return storage.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(buf)
		return err
	})
}

func readRaw(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 5 || string(data[:4]) != string(rawMagic[:]) {
		return nil, errors.New("not a raw column file (magic LWR1)")
	}
	n, sz := binary.Uvarint(data[4:])
	if sz <= 0 {
		return nil, errors.New("corrupt raw header")
	}
	pos := 4 + sz
	if uint64(len(data)-pos) != n*8 {
		return nil, fmt.Errorf("raw payload %d bytes, want %d", len(data)-pos, n*8)
	}
	col := make([]int64, n)
	for i := range col {
		col[i] = int64(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
	}
	return col, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "dates", "dates|walk|outliers|trend|lowcard|skewed|runs|sorted|uniform")
	n := fs.Int("n", 1<<20, "column length")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("o", "column.raw", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var col []int64
	switch *name {
	case "dates":
		col = workload.OrderShipDates(*n, 64, 730120, *seed)
	case "walk":
		col = workload.RandomWalk(*n, 10, 1<<33, *seed)
	case "outliers":
		col = workload.OutlierWalk(*n, 10, 0.01, 1<<38, *seed)
	case "trend":
		col = workload.TrendNoise(*n, 8, 12, *seed)
	case "lowcard":
		col = workload.LowCardinality(*n, 32, *seed)
	case "skewed":
		col = workload.SkewedMagnitude(*n, 40, *seed)
	case "runs":
		col = workload.Runs(*n, 64, 1<<16, *seed)
	case "sorted":
		col = workload.Sorted(*n, 1<<40, *seed)
	case "uniform":
		col = workload.UniformBits(*n, 16, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *name)
	}
	if err := writeRaw(*out, col); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d values (%d bytes raw)\n", *out, len(col), len(col)*8)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("i", "", "input raw column")
	if err := fs.Parse(args); err != nil {
		return err
	}
	col, err := readRaw(*in)
	if err != nil {
		return err
	}
	st := lwcomp.Analyze(col)
	fmt.Printf("n            %d\n", st.N)
	fmt.Printf("min / max    %d / %d\n", st.Min, st.Max)
	fmt.Printf("runs         %d (avg length %.1f)\n", st.Runs, st.AvgRunLength())
	fmt.Printf("distinct     %d%s\n", st.Distinct, satSuffix(st))
	fmt.Printf("monotone     non-decreasing=%v non-increasing=%v\n", st.NonDecreasing, st.NonIncreasing)
	fmt.Printf("value width  %d bits (zigzag)\n", st.ValueWidth)
	fmt.Printf("delta width  %d bits (zigzag)\n", st.MaxDeltaWidth)
	fmt.Printf("range width  %d bits (max-min)\n", st.RangeWidth)
	return nil
}

func satSuffix(st lwcomp.Stats) string {
	if st.DistinctSaturated() {
		return "+ (saturated)"
	}
	return ""
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("i", "", "input raw column")
	out := fs.String("o", "column.lwc", "output container")
	schemeExpr := fs.String("scheme", "auto", "scheme expression or 'auto'")
	name := fs.String("name", "col0", "column name inside the container")
	blockSize := fs.Int("block-size", 0, "values per block (0 = whole column as one block)")
	parallel := fs.Int("parallel", 0, "concurrent block encoders (0 = GOMAXPROCS)")
	budget := fs.Float64("cost-budget", 0, "max abstract decompression cost per element (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := readRaw(*in)
	if err != nil {
		return err
	}
	opts := []lwcomp.Option{
		lwcomp.WithBlockSize(*blockSize),
		lwcomp.WithParallelism(*parallel),
		lwcomp.WithCostBudget(*budget),
	}
	if *schemeExpr != "auto" {
		s, err := lwcomp.ParseScheme(*schemeExpr)
		if err != nil {
			return err
		}
		opts = append(opts, lwcomp.WithScheme(s))
	}
	col, err := lwcomp.Encode(raw, opts...)
	if err != nil {
		return err
	}
	if err := lwcomp.WriteColumnsFile(*out, []lwcomp.NamedColumn{{Name: *name, Col: col}}); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d -> %d bytes (ratio %.2f), %d block(s)\n",
		*out, len(raw)*8, st.Size(), float64(len(raw)*8)/float64(st.Size()), col.NumBlocks())
	fmt.Println(col.Describe())
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("i", "", "input container")
	out := fs.String("o", "column.raw", "output raw column")
	col := fs.String("col", "", "column name (default: first)")
	mmap := fs.Bool("mmap", false, "memory-map the container instead of reading it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	column, name, closeCol, err := loadColumn(*in, *col, *mmap)
	if err != nil {
		return err
	}
	defer closeCol()
	data, err := column.Decompress()
	if err != nil {
		return err
	}
	if err := writeRaw(*out, data); err != nil {
		return err
	}
	fmt.Printf("wrote %s: column %q, %d values\n", *out, name, len(data))
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("i", "", "input container")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	cols, err := lwcomp.ReadColumns(f)
	if err != nil {
		return err
	}
	for _, c := range cols {
		var sz int
		for i := range c.Col.Blocks {
			s, err := lwcomp.EncodedSize(c.Col.Blocks[i].Form)
			if err != nil {
				return err
			}
			sz += s
		}
		fmt.Printf("column %q: n=%d, %d block(s), %d bytes, ratio %.2f\n",
			c.Name, c.Col.N, c.Col.NumBlocks(), sz, float64(c.Col.N*8)/float64(sz))
		for i := range c.Col.Blocks {
			b := &c.Col.Blocks[i]
			if b.HasStats {
				fmt.Printf("  block %d: rows %d..%d, [%d, %d]\n",
					i, b.Start, b.Start+int64(b.Count)-1, b.Min, b.Max)
			} else {
				fmt.Printf("  block %d: rows %d..%d\n", i, b.Start, b.Start+int64(b.Count)-1)
			}
			printTree(b.Form, "    ")
		}
	}
	return nil
}

func printTree(f *lwcomp.Form, indent string) {
	params := ""
	for _, k := range f.Params.Keys() {
		params += fmt.Sprintf(" %s=%d", k, f.Params[k])
	}
	payload := ""
	switch {
	case f.Leaf != nil:
		payload = fmt.Sprintf(" leaf[%d]", len(f.Leaf))
	case f.Packed != nil:
		payload = fmt.Sprintf(" packed[%d words]", len(f.Packed))
	case f.Bytes != nil:
		payload = fmt.Sprintf(" bytes[%d]", len(f.Bytes))
	}
	fmt.Printf("%s%s n=%d%s%s\n", indent, f.Scheme, f.N, params, payload)
	for _, name := range f.ChildNames() {
		fmt.Printf("%s%s:\n", indent+"  ", name)
		printTree(f.Children[name], indent+"    ")
	}
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("i", "", "input container")
	col := fs.String("col", "", "column name (default: first)")
	doSum := fs.Bool("sum", false, "compute SUM (with -where: over the matching rows)")
	doApprox := fs.Bool("approx-sum", false, "bound SUM from the model only")
	rangeExpr := fs.String("range", "", "count rows in lo:hi")
	point := fs.Int64("point", -1, "look up one row")
	where := fs.String("where", "", "predicate over the container's columns, e.g. 'date >= 730200 and status = 1'")
	mmap := fs.Bool("mmap", false, "memory-map the container instead of reading it")
	describe := fs.Bool("describe", false, "print per-block schemes (decodes every block)")
	cache := fs.Bool("cache", false, "print block-cache statistics after the queries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *where != "" {
		// The single-column query flags have no meaning under a table
		// scan; reject the combination instead of silently ignoring it.
		if *rangeExpr != "" || *point >= 0 || *doApprox || *describe {
			return errors.New("-where cannot be combined with -range, -point, -approx-sum or -describe")
		}
		return queryWhere(*in, *where, *col, *doSum, *mmap, *cache)
	}
	column, name, closeCol, err := loadColumn(*in, *col, *mmap)
	if err != nil {
		return err
	}
	defer closeCol()
	fmt.Printf("column %q (%d block(s))\n", name, column.NumBlocks())
	if *describe {
		fmt.Println(column.Describe())
	}
	if *doSum {
		s, err := column.Sum()
		if err != nil {
			return err
		}
		fmt.Printf("sum = %d\n", s)
	}
	if *doApprox {
		iv, err := column.ApproxSum()
		if err != nil {
			return err
		}
		fmt.Printf("sum ∈ [%d, %d] (width %d, midpoint %d)\n", iv.Lower, iv.Upper, iv.Width(), iv.Estimate())
	}
	if *rangeExpr != "" {
		parts := strings.SplitN(*rangeExpr, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("range must be lo:hi, got %q", *rangeExpr)
		}
		var lo, hi int64
		if _, err := fmt.Sscan(parts[0], &lo); err != nil {
			return err
		}
		if _, err := fmt.Sscan(parts[1], &hi); err != nil {
			return err
		}
		c, err := column.CountRange(lo, hi)
		if err != nil {
			return err
		}
		skipped, whole, consulted := column.SkipStats(lo, hi)
		fmt.Printf("count(%d ≤ v ≤ %d) = %d (blocks: %d skipped, %d whole, %d consulted)\n",
			lo, hi, c, skipped, whole, consulted)
	}
	if *point >= 0 {
		v, err := column.PointLookup(*point)
		if err != nil {
			return err
		}
		fmt.Printf("col[%d] = %d\n", *point, v)
	}
	if *cache {
		printCacheStats(column)
	}
	return nil
}

// cmdVerify fsck-walks containers: every block payload re-read,
// CRC-checked, decoded, decompressed, and its re-derived [min, max]
// compared against the index stats. Findings print one per line (or,
// with -json, one machine-readable report per container per line).
// Exit codes: 0 every container clean, 1 integrity findings, 2
// environmental failure (file unreadable, transport-level I/O).
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("i", "", "container to verify (or pass containers as positional arguments)")
	quiet := fs.Bool("q", false, "print findings only, no per-file summary")
	jsonOut := fs.Bool("json", false, "print one JSON report per container (columns, blocks, issues with row ranges)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *in != "" {
		paths = append([]string{*in}, paths...)
	}
	if len(paths) == 0 {
		return errors.New("nothing to verify: pass -i or positional container paths")
	}
	enc := json.NewEncoder(os.Stdout)
	bad := 0
	for _, path := range paths {
		rep, err := storage.VerifyFile(path)
		if err != nil {
			return &codedError{2, err}
		}
		if !rep.OK() {
			bad++
		}
		if *jsonOut {
			if err := enc.Encode(rep); err != nil {
				return &codedError{2, err}
			}
			continue
		}
		for _, issue := range rep.Issues {
			fmt.Printf("%s: %s\n", path, issue)
		}
		for _, ts := range rep.Tombstones {
			fmt.Printf("%s: tombstone: %s\n", path, ts)
		}
		if !*quiet {
			status := "ok"
			if !rep.OK() {
				status = fmt.Sprintf("%d issue(s)", len(rep.Issues))
			}
			fmt.Printf("%s: %d column(s), %d block(s): %s\n", path, rep.Columns, rep.Blocks, status)
		}
	}
	if bad > 0 {
		return &codedError{1, fmt.Errorf("%d of %d container(s) failed verification", bad, len(paths))}
	}
	return nil
}

// cmdRepair salvage-repairs containers: good blocks are preserved
// byte-for-byte, blocks whose first read lies are re-read through the
// retry policy, index stats falsified by rot are re-derived, and only
// blocks that stay unreadable are tombstoned with their exact row
// range. The rebuilt generation is verified before an atomic swap; an
// interrupted repair leaves the old file intact. Exit codes: 0 every
// container clean or repaired, 1 at least one unrepairable, 2
// environmental failure.
func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	dir := fs.String("dir", "", "directory of *.lwc containers to repair (or pass containers as positional arguments)")
	jsonOut := fs.Bool("json", false, "print one JSON result per container")
	attempts := fs.Int("read-attempts", 0, "full re-reads per damaged block before tombstoning it (0 = 3)")
	retries := fs.Int("read-retries", 0, "retries per transiently failed read below the block layer (0 = 3, negative = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if (*dir == "") == (len(paths) == 0) {
		return errors.New("pass either -dir or positional container paths")
	}
	if *dir != "" {
		// Single-writer open: crash litter from an interrupted swap is
		// safe to sweep at any age.
		if removed, err := storage.SweepTempFiles(*dir, 0); err == nil && len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "removed %d orphaned temp file(s)\n", len(removed))
		}
		var err error
		paths, err = compact.ListContainers(*dir)
		if err != nil {
			return &codedError{2, err}
		}
	}
	opt := scrub.RepairOptions{ReadAttempts: *attempts, Retry: retryPolicy(*retries)}
	enc := json.NewEncoder(os.Stdout)
	unrepairable := 0
	for _, path := range paths {
		res, err := scrub.RepairFile(path, opt)
		if err != nil {
			return &codedError{2, err}
		}
		if *jsonOut {
			if err := enc.Encode(res); err != nil {
				return &codedError{2, err}
			}
		} else {
			switch res.Action {
			case scrub.ActionClean:
				fmt.Printf("%s: clean, %d column(s), %d block(s) (%d tombstone(s) carried)\n",
					res.Path, res.Columns, res.Blocks, res.CarriedTombstones)
			case scrub.ActionRepaired:
				fmt.Printf("%s: repaired, %d -> %d bytes: %d preserved, %d reread, %d stats fixed, %d checksums fixed, %d tombstoned\n",
					res.Path, res.BytesBefore, res.BytesAfter,
					res.Preserved, res.Reread, res.StatsFixed, res.ChecksumsFixed, res.Tombstoned)
			case scrub.ActionUnrepairable:
				fmt.Printf("%s: UNREPAIRABLE, left untouched: %s\n", res.Path, res.Err)
			}
		}
		if res.Action == scrub.ActionUnrepairable {
			unrepairable++
		}
	}
	if unrepairable > 0 {
		return &codedError{1, fmt.Errorf("%d of %d container(s) unrepairable", unrepairable, len(paths))}
	}
	return nil
}

// retryPolicy maps the CLI retry knob onto the storage layer's
// backoff policy, mirroring the server's mapping.
func retryPolicy(retries int) storage.RetryPolicy {
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		return storage.RetryPolicy{}
	}
	return storage.RetryPolicy{
		MaxRetries: retries,
		BaseDelay:  time.Millisecond,
		MaxDelay:   50 * time.Millisecond,
	}
}

// cmdCompact runs one recompaction pass: walk the given containers
// (or a directory of them), re-analyze each, and atomically rewrite
// the ones whose byte win clears the threshold, printing a per-
// container report of bytes before/after and CPU spent. With
// -dry-run it only estimates savings from the block stats, largest
// first. Any failed container makes the command exit non-zero.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "directory of *.lwc containers to compact (or pass containers as positional arguments)")
	dryRun := fs.Bool("dry-run", false, "estimate savings from block stats only; no trial encode, no write")
	minGain := fs.Int64("min-gain-bytes", 0, "rewrite threshold in bytes (0 = 4096, negative = any gain)")
	minFrac := fs.Float64("min-gain-frac", 0, "rewrite threshold as a fraction of the old container size (0 = off)")
	trialK := fs.Int("trialk", 0, "prune the per-block scheme search to the top K estimates (0 = exhaustive)")
	parallel := fs.Int("parallel", 0, "concurrent block encoders (0 = GOMAXPROCS)")
	merge := fs.Bool("merge", false, "also merge small same-table single-column containers (directory mode only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if (*dir == "") == (len(paths) == 0) {
		return errors.New("pass either -dir or positional container paths")
	}
	if *merge && *dir == "" {
		return errors.New("-merge needs -dir (it coalesces sibling files)")
	}
	if *dir != "" && !*dryRun {
		// Open-time janitor: litter from a crash mid-swap; this is the
		// directory's single writer, so age 0 is safe.
		if removed, err := storage.SweepTempFiles(*dir, 0); err == nil && len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "removed %d orphaned temp file(s)\n", len(removed))
		}
	}
	c := compact.New(compact.Options{
		MinGainBytes:    *minGain,
		MinGainFraction: *minFrac,
		TrialK:          *trialK,
		Parallelism:     *parallel,
		MergeSmall:      *merge,
	})

	if *dryRun {
		var ests []compact.Estimate
		if *dir != "" {
			var err error
			ests, err = c.EstimateDir(*dir)
			if err != nil {
				return err
			}
		} else {
			for _, p := range paths {
				est, err := c.EstimateFile(p)
				if err != nil {
					return err
				}
				ests = append(ests, est)
			}
			sort.Slice(ests, func(i, j int) bool { return ests[i].EstSavings() > ests[j].EstSavings() })
		}
		var total int64
		for _, est := range ests {
			fmt.Printf("%s: %d bytes, est payload %d -> %d, est savings %d bytes (%.1f%%)\n",
				est.Path, est.FileBytes, est.PayloadBytes, est.EstPayloadBytes,
				est.EstSavings(), 100*est.EstSavingsFraction())
			total += est.EstSavings()
		}
		fmt.Printf("dry run: %d container(s), est %d bytes reclaimable\n", len(ests), total)
		return nil
	}

	var rep *compact.Report
	if *dir != "" {
		var err error
		rep, err = c.CompactDir(*dir)
		if err != nil {
			return err
		}
	} else {
		rep = &compact.Report{}
		for _, p := range paths {
			res, err := c.CompactFile(p)
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, res)
		}
	}
	for _, res := range rep.Results {
		switch res.Action {
		case compact.ActionRewritten:
			fmt.Printf("%s: rewritten, %d -> %d bytes (saved %d, %.2fs cpu)\n",
				res.Path, res.BytesBefore, res.BytesAfter, res.Gain(), res.CPUSeconds)
		case compact.ActionMerged:
			fmt.Printf("%s: merged %d part(s), %d -> %d bytes (%.2fs cpu)\n",
				res.Path, len(res.MergedFrom), res.BytesBefore, res.BytesAfter, res.CPUSeconds)
		case compact.ActionSkipped:
			fmt.Printf("%s: skipped, %d bytes (candidate %d under threshold, %.2fs cpu)\n",
				res.Path, res.BytesBefore, res.CandidateBytes, res.CPUSeconds)
		case compact.ActionFailed:
			fmt.Printf("%s: FAILED, old generation kept: %v\n", res.Path, res.Err)
		}
	}
	rewritten, skipped, failed, mrg := rep.Counts()
	fmt.Printf("compacted %d container(s): %d rewritten, %d merged, %d skipped, %d failed; %d bytes reclaimed, %.2fs cpu\n",
		len(rep.Results), rewritten, mrg, skipped, failed, rep.BytesReclaimed(), rep.CPUSeconds())
	if failed > 0 {
		return fmt.Errorf("%d container(s) failed compaction", failed)
	}
	return nil
}

// queryWhere runs a table scan: the predicate is parsed in the
// mini-language, planned per block across every column it names, and
// evaluated on the compressed forms — on a lazily opened container
// only the blocks the plan admits are read. With -sum, the named (or
// first) column is aggregated over the survivors, decoding only the
// blocks that still hold matches.
func queryWhere(in, where, sumCol string, doSum, mmap, cache bool) error {
	expr, err := lwcomp.ParsePredicate(where)
	if err != nil {
		return err
	}
	tbl, err := lwcomp.OpenTable(in, lwcomp.WithMmap(mmap))
	if err != nil {
		return err
	}
	defer tbl.Close()
	scan, err := tbl.Scan(expr)
	if err != nil {
		return err
	}
	defer scan.Release()
	fmt.Printf("where %s: %d of %d rows match\n", expr, scan.Count(), tbl.NumRows())
	if doSum {
		name := sumCol
		if name == "" {
			name = tbl.ColumnNames()[0]
		}
		s, err := scan.Sum(name)
		if err != nil {
			return err
		}
		fmt.Printf("sum(%s) over matches = %d\n", name, s)
	}
	if cache {
		col, err := tbl.Column(tbl.ColumnNames()[0])
		if err != nil {
			return err
		}
		printCacheStats(col)
	}
	return nil
}

// printCacheStats renders a lazily opened column's shared block-cache
// counters; eagerly opened (v1/v2) and in-memory columns have none.
func printCacheStats(col *lwcomp.Column) {
	st, ok := col.CacheStats()
	if !ok {
		fmt.Println("cache: none (column not lazily opened)")
		return
	}
	fmt.Printf("cache: %d/%d bytes resident, %d hits, %d misses, %d evictions\n",
		st.BytesUsed, st.BytesBudget, st.Hits, st.Misses, st.Evictions)
}

// loadColumn lazily opens one column from a container of any
// generation (v3 serves blocks on demand; v2/v1 fall back to an eager
// read). The returned func releases the container.
func loadColumn(path, name string, mmap bool) (*lwcomp.Column, string, func() error, error) {
	opts := []lwcomp.Option{lwcomp.WithMmap(mmap)}
	cf, err := lwcomp.OpenContainer(path, opts...)
	if err != nil {
		return nil, "", nil, err
	}
	cols := cf.Columns()
	if len(cols) == 0 {
		cf.Close()
		return nil, "", nil, errors.New("container has no columns")
	}
	if name == "" {
		return cols[0].Col, cols[0].Name, cf.Close, nil
	}
	for _, c := range cols {
		if c.Name == name {
			return c.Col, c.Name, cf.Close, nil
		}
	}
	cf.Close()
	return nil, "", nil, fmt.Errorf("column %q not found", name)
}

// cmdStat prints a container's block index — column layout, per-block
// row spans, [min, max] stats and payload extents — without decoding
// a single block payload. On a lazily opened (v3) container this
// reads only the file header and index.
func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input container")
	mmap := fs.Bool("mmap", false, "memory-map the container instead of reading it")
	cache := fs.Bool("cache", false, "print the block cache's budget and traffic counters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cf, err := lwcomp.OpenContainer(*in, lwcomp.WithMmap(*mmap))
	if err != nil {
		return err
	}
	defer cf.Close()
	mode := "eager (v1/v2 compatibility)"
	if cf.Lazy() {
		mode = "lazy (v3)"
		if cf.Mapped() {
			mode = "lazy (v3, mmap)"
		}
	}
	fmt.Printf("%s: %d column(s), %s\n", *in, len(cf.Columns()), mode)
	for ci, c := range cf.Columns() {
		fmt.Printf("column %q: n=%d, block-size=%d, %d block(s)\n",
			c.Name, c.Col.N, c.Col.BlockSize, c.Col.NumBlocks())
		extents := cf.Extents(ci)
		for bi := range c.Col.Blocks {
			b := &c.Col.Blocks[bi]
			stats := ""
			if b.HasStats {
				stats = fmt.Sprintf(" [%d, %d]", b.Min, b.Max)
			}
			extent := ""
			if extents != nil {
				e := extents[bi]
				extent = fmt.Sprintf(" payload %d bytes @ %d (crc %08x)", e.Bytes, e.Offset, e.CRC)
			}
			fmt.Printf("  block %d: rows %d..%d%s%s\n",
				bi, b.Start, b.Start+int64(b.Count)-1, stats, extent)
		}
	}
	if *cache && len(cf.Columns()) > 0 {
		// stat decodes nothing, so the counters are all zero here; the
		// point is the budget, and that the same line under `query
		// -cache` shows the traffic a workload actually generated.
		printCacheStats(cf.Columns()[0].Col)
	}
	return nil
}
