package main

import (
	"os"
	"path/filepath"
	"testing"

	"lwcomp"
)

func TestRawFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "col.raw")
	src := []int64{0, -1, 1, 1 << 40, -(1 << 40)}
	if err := writeRaw(path, src); err != nil {
		t.Fatal(err)
	}
	got, err := readRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("length %d != %d", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], src[i])
		}
	}
}

func TestReadRawRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.raw")
	if err := os.WriteFile(path, []byte("XXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRaw(path); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	src := []int64{1, 2, 3}
	if err := writeRaw(path, src); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRaw(path); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestCommandPipeline(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "col.raw")
	lwc := filepath.Join(dir, "col.lwc")
	back := filepath.Join(dir, "back.raw")

	if err := cmdGen([]string{"-workload", "dates", "-n", "20000", "-o", raw}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdStats([]string{"-i", raw}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := cmdCompress([]string{"-i", raw, "-o", lwc, "-scheme", "auto", "-name", "dates"}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := cmdInspect([]string{"-i", lwc}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdQuery([]string{"-i", lwc, "-sum", "-approx-sum", "-range", "730200:730400", "-point", "3"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdDecompress([]string{"-i", lwc, "-o", back, "-col", "dates"}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	orig, err := readRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	round, err := readRaw(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(round) {
		t.Fatalf("lengths differ: %d vs %d", len(orig), len(round))
	}
	for i := range orig {
		if orig[i] != round[i] {
			t.Fatalf("row %d differs", i)
		}
	}

	// Blocked compress path: --block-size / --parallel.
	if err := cmdCompress([]string{"-i", raw, "-o", lwc, "--block-size", "4096", "--parallel", "2", "-name", "dates"}); err != nil {
		t.Fatalf("compress blocked: %v", err)
	}
	if err := cmdQuery([]string{"-i", lwc, "-sum", "-range", "730200:730400", "-point", "19999"}); err != nil {
		t.Fatalf("query blocked: %v", err)
	}
	if err := cmdDecompress([]string{"-i", lwc, "-o", back}); err != nil {
		t.Fatalf("decompress blocked: %v", err)
	}
	round, err = readRaw(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i] != round[i] {
			t.Fatalf("blocked row %d differs", i)
		}
	}
	bf, err := os.Open(lwc)
	if err != nil {
		t.Fatal(err)
	}
	bcols, err := lwcomp.ReadColumns(bf)
	bf.Close()
	if err != nil || len(bcols) != 1 {
		t.Fatalf("blocked container: %v (%d columns)", err, len(bcols))
	}
	if got := bcols[0].Col.NumBlocks(); got != 5 {
		t.Fatalf("blocked container: %d blocks, want 5", got)
	}

	// Explicit scheme expression path.
	if err := cmdCompress([]string{"-i", raw, "-o", lwc, "-scheme", "rle(lengths=ns, values=delta(deltas=vns[32]))"}); err != nil {
		t.Fatalf("compress explicit: %v", err)
	}
	f, err := os.Open(lwc)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cols, err := lwcomp.ReadColumns(f)
	if err != nil || len(cols) != 1 {
		t.Fatalf("container: %v", err)
	}
	if cols[0].Col.Describe() != "rle(lengths=ns, values=delta(deltas=vns(widths=id)))" {
		t.Fatalf("scheme = %q", cols[0].Col.Describe())
	}

	// stat on the blocked container, including the cache flag.
	if err := cmdStat([]string{"-i", lwc, "-cache"}); err != nil {
		t.Fatalf("stat -cache: %v", err)
	}

	// Error paths.
	if err := cmdGen([]string{"-workload", "nope", "-o", raw}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := cmdCompress([]string{"-i", raw, "-o", lwc, "-scheme", "bogus("}); err == nil {
		t.Fatal("bad scheme expression accepted")
	}
	if err := cmdQuery([]string{"-i", lwc, "-col", "missing", "-sum"}); err == nil {
		t.Fatal("missing column accepted")
	}
	if err := cmdQuery([]string{"-i", lwc, "-range", "oops"}); err == nil {
		t.Fatal("bad range accepted")
	}
}

// TestQueryWhere runs table scans through the CLI on a hand-built
// multi-column container and checks the printed results come from the
// right rows (by exercising both the match path and error paths).
func TestQueryWhere(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.lwc")

	const n, bs = 1 << 13, 1 << 10
	date := make([]int64, n)
	status := make([]int64, n)
	amount := make([]int64, n)
	for i := range date {
		date[i] = int64(730000 + i/8)
		status[i] = int64(i % 3)
		amount[i] = int64(10 * i)
	}
	var cols []lwcomp.NamedColumn
	for _, c := range []struct {
		name string
		data []int64
	}{{"date", date}, {"status", status}, {"amount", amount}} {
		col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(bs))
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lwcomp.WriteColumns(f, cols); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	where := "date >= 730100 and date <= 730200 and status = 1"
	if err := cmdQuery([]string{"-i", path, "-where", where, "-sum", "-col", "amount", "-cache"}); err != nil {
		t.Fatalf("query -where: %v", err)
	}
	// Cross-check the CLI's scan against the API directly.
	tbl, err := lwcomp.OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	expr, err := lwcomp.ParsePredicate(where)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := tbl.Scan(expr)
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Release()
	want := 0
	for i := range date {
		if date[i] >= 730100 && date[i] <= 730200 && status[i] == 1 {
			want++
		}
	}
	if scan.Count() != want {
		t.Fatalf("scan count = %d, want %d", scan.Count(), want)
	}

	// Error paths: bad predicate syntax, unknown column.
	if err := cmdQuery([]string{"-i", path, "-where", "date >="}); err == nil {
		t.Fatal("bad predicate accepted")
	}
	if err := cmdQuery([]string{"-i", path, "-where", "nope = 1"}); err == nil {
		t.Fatal("predicate over a missing column accepted")
	}
	if err := cmdQuery([]string{"-i", path, "-where", "status = 1", "-sum", "-col", "nope"}); err == nil {
		t.Fatal("sum over a missing column accepted")
	}
	// Single-column query flags conflict with -where rather than
	// being silently dropped.
	if err := cmdQuery([]string{"-i", path, "-where", "status = 1", "-range", "1:2"}); err == nil {
		t.Fatal("-where combined with -range accepted")
	}
	if err := cmdQuery([]string{"-i", path, "-where", "status = 1", "-point", "5"}); err == nil {
		t.Fatal("-where combined with -point accepted")
	}
}
