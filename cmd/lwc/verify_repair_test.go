package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lwcomp"
)

// captureStdout runs fn with os.Stdout teed into a buffer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := r.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	return out, ferr
}

// writeLwc writes vals as a one-column container, optionally lying
// about a block's Min — corruption only stats re-derivation catches.
func writeLwc(t *testing.T, path string, vals []int64, lie bool) {
	t.Helper()
	col, err := lwcomp.Encode(vals, lwcomp.WithBlockSize(256))
	if err != nil {
		t.Fatal(err)
	}
	if lie {
		col.Blocks[1].Min -= 9
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := lwcomp.WriteColumns(f, []lwcomp.NamedColumn{{Name: "v", Col: col}}); err != nil {
		t.Fatal(err)
	}
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return 1
}

func testVals(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	return vals
}

// TestVerifyRepairExitCodesAndJSON drives the documented operator
// loop: verify flags the damage (exit 1) with a machine-readable
// finding, repair salvages it (exit 0), and a re-verify comes back
// clean (exit 0).
func TestVerifyRepairExitCodesAndJSON(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.lwc")
	bad := filepath.Join(dir, "bad.lwc")
	writeLwc(t, good, testVals(1024), false)
	writeLwc(t, bad, testVals(1024), true)

	// Clean container: exit 0, JSON report with no issues.
	out, err := captureStdout(t, func() error { return cmdVerify([]string{"-json", good}) })
	if exitCode(err) != 0 {
		t.Fatalf("verify clean: %v", err)
	}
	var rep struct {
		Columns int               `json:"columns"`
		Blocks  int               `json:"blocks"`
		Issues  []json.RawMessage `json:"issues"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("verify -json output not JSON: %v\n%s", err, out)
	}
	if rep.Columns != 1 || rep.Blocks != 4 || len(rep.Issues) != 0 {
		t.Fatalf("clean report: %+v", rep)
	}

	// Damaged container: exit 1, the finding names column, block and
	// row range.
	out, err = captureStdout(t, func() error { return cmdVerify([]string{"-json", bad}) })
	if exitCode(err) != 1 {
		t.Fatalf("verify damaged: exit %d (%v), want 1", exitCode(err), err)
	}
	var found struct {
		Issues []struct {
			Column   string `json:"column"`
			Block    int    `json:"block"`
			RowStart int64  `json:"row_start"`
			RowCount int64  `json:"row_count"`
			Reason   string `json:"reason"`
		} `json:"issues"`
	}
	if err := json.Unmarshal([]byte(out), &found); err != nil {
		t.Fatalf("verify -json output not JSON: %v\n%s", err, out)
	}
	if len(found.Issues) != 1 {
		t.Fatalf("issues: %+v", found.Issues)
	}
	iss := found.Issues[0]
	if iss.Column != "v" || iss.Block != 1 || iss.RowStart != 256 || iss.RowCount != 256 || iss.Reason == "" {
		t.Fatalf("finding shape: %+v", iss)
	}

	// Environmental failure: exit 2.
	_, err = captureStdout(t, func() error { return cmdVerify([]string{filepath.Join(dir, "missing.lwc")}) })
	if exitCode(err) != 2 {
		t.Fatalf("verify missing file: exit %d (%v), want 2", exitCode(err), err)
	}

	// Repair the directory: exit 0, one container repaired, and the
	// repair JSON says what changed.
	out, err = captureStdout(t, func() error { return cmdRepair([]string{"-dir", dir, "-json"}) })
	if exitCode(err) != 0 {
		t.Fatalf("repair: %v\n%s", err, out)
	}
	repaired := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rr struct {
			Action     string `json:"action"`
			StatsFixed int    `json:"stats_fixed"`
		}
		if err := json.Unmarshal([]byte(line), &rr); err != nil {
			t.Fatalf("repair -json line not JSON: %v\n%s", err, line)
		}
		if rr.Action == "repaired" {
			repaired++
			if rr.StatsFixed != 1 {
				t.Fatalf("repaired container fixed %d stats, want 1", rr.StatsFixed)
			}
		}
	}
	if repaired != 1 {
		t.Fatalf("%d container(s) repaired, want 1", repaired)
	}

	// Everything verifies clean now.
	_, err = captureStdout(t, func() error { return cmdVerify([]string{good, bad}) })
	if exitCode(err) != 0 {
		t.Fatalf("re-verify after repair: %v", err)
	}
}

// TestRepairUnrepairableExitCode: rot inside the index region leaves
// nothing to salvage from; the file stays untouched and repair says so
// with exit 1.
func TestRepairUnrepairableExitCode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dead.lwc")
	writeLwc(t, path, testVals(512), false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x01 // inside the index: its CRC check fails at open
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := captureStdout(t, func() error { return cmdRepair([]string{path}) })
	if exitCode(err) != 1 {
		t.Fatalf("repair unrepairable: exit %d (%v), want 1", exitCode(err), err)
	}
	if !strings.Contains(out, "UNREPAIRABLE") {
		t.Fatalf("no UNREPAIRABLE line:\n%s", out)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(data) {
		t.Fatal("unrepairable container was modified")
	}

	// The verify exit codes carry a janitor check too: a stale temp
	// file next to the container is swept by -dir mode.
	orphan := filepath.Join(dir, ".dead.lwc.tmp-99")
	if err := os.WriteFile(orphan, []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	_, _ = captureStdout(t, func() error { return cmdRepair([]string{"-dir", dir}) })
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("repair -dir left the orphaned temp file: %v", err)
	}
}
