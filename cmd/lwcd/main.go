// Command lwcd is the lwcomp columnar query daemon: it mounts a
// directory of *.lwc containers as named tables and serves the Table
// scan API over HTTP to many concurrent clients.
//
// Usage:
//
//	lwcd -dir /data/containers -addr 127.0.0.1:7207
//	curl localhost:7207/tables
//	curl -d '{"table":"orders","where":"status = 1","op":"count"}' localhost:7207/query
//	curl localhost:7207/metrics
//
// SIGHUP (or POST /-/reload) re-mounts the directory without dropping
// in-flight queries. See the internal/server package documentation for
// the endpoint contracts and resource-governance knobs; `lwc serve` is
// the same server embedded in the multi-tool.
package main

import (
	"fmt"
	"os"

	"lwcomp/internal/server"
)

func main() {
	if err := server.Main(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "lwcd: %v\n", err)
		os.Exit(1)
	}
}
