// Command lwcd is the lwcomp columnar query daemon: it mounts a
// directory of *.lwc containers as named tables and serves the Table
// scan API over HTTP to many concurrent clients.
//
// Usage:
//
//	lwcd -dir /data/containers -addr 127.0.0.1:7207
//	lwcd -dir /data/containers -compact -compact-interval 10m -compact-merge
//	lwcd -dir /data/containers -scrub -scrub-interval 10m -scrub-rate 8388608 -scrub-heal
//	curl localhost:7207/tables
//	curl -d '{"table":"orders","where":"status = 1","op":"count"}' localhost:7207/query
//	curl -d '{"table":"orders","op":"sum","columns":["amount"],"allow_degraded":true}' localhost:7207/query
//	curl localhost:7207/metrics
//	curl localhost:7207/healthz   # liveness: the process is up
//	curl localhost:7207/readyz    # readiness: 503 mid-reload or while draining
//
// SIGHUP (or POST /-/reload) re-mounts the directory without dropping
// in-flight queries; /readyz answers 503 while the swap is in progress
// or a retired table set is still draining, so load balancers route
// around the reload without the process restarting. /healthz stays
// pure liveness.
//
// Under failures the daemon degrades instead of dying: transient read
// errors are retried with capped backoff (-read-retries), a block that
// fails its CRC is quarantined on first touch (default queries on it
// answer 500; requests with "allow_degraded": true skip it and report
// the exact omission), and a panicking query answers 500 while the
// process keeps serving. /metrics exposes the retry, quarantine and
// panic counters.
//
// -compact runs the background recompaction daemon (internal/compact)
// over the mounted directory: low-priority sweeps re-analyze each
// container and atomically rewrite the ones whose byte win clears the
// -compact-min-gain threshold, yielding to query traffic so
// compaction never takes an admission slot. A sweep that changed the
// directory re-mounts it the same way SIGHUP does — in-flight queries
// drain on the retired generation while new ones open the compacted
// files. POST /-/compact triggers one synchronous sweep; /metrics
// gains a compaction section (containers scanned/rewritten/skipped,
// bytes reclaimed, compact cpu seconds).
//
// -scrub runs the background scrubber (internal/scrub): low-priority
// sweeps fsck-walk every mounted container from disk under a byte-rate
// budget (-scrub-rate) and quarantine rotten blocks on the mounted
// columns before any query trips over them. With -scrub-heal a sweep
// also salvage-repairs each damaged container — good blocks preserved
// byte-for-byte, falsified index stats re-derived, truly lost blocks
// tombstoned with their exact row range — and re-mounts so the healed
// generation serves and the quarantine ledger clears. POST /-/scrub
// triggers one synchronous sweep (?heal=1/?heal=0 override the
// configured healing); /metrics gains a scrub section (containers and
// blocks scanned, errors found, bytes scanned against the rate budget,
// last sweep age).
//
// At startup the daemon also sweeps orphaned .<name>.tmp-* files — the
// only litter a crash mid-write can leave — so an interrupted compact,
// repair, or compress never accumulates garbage in the mount.
//
// See the internal/server package documentation for the endpoint
// contracts and resource-governance knobs; `lwc serve` is the same
// server embedded in the multi-tool.
package main

import (
	"fmt"
	"os"

	"lwcomp/internal/server"
)

func main() {
	if err := server.Main(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "lwcd: %v\n", err)
		os.Exit(1)
	}
}
