// Command lwcd is the lwcomp columnar query daemon: it mounts a
// directory of *.lwc containers as named tables and serves the Table
// scan API over HTTP to many concurrent clients.
//
// Usage:
//
//	lwcd -dir /data/containers -addr 127.0.0.1:7207
//	lwcd -dir /data/containers -compact -compact-interval 10m -compact-merge
//	curl localhost:7207/tables
//	curl -d '{"table":"orders","where":"status = 1","op":"count"}' localhost:7207/query
//	curl -d '{"table":"orders","op":"sum","columns":["amount"],"allow_degraded":true}' localhost:7207/query
//	curl localhost:7207/metrics
//	curl localhost:7207/healthz   # liveness: the process is up
//	curl localhost:7207/readyz    # readiness: 503 mid-reload or while draining
//
// SIGHUP (or POST /-/reload) re-mounts the directory without dropping
// in-flight queries; /readyz answers 503 while the swap is in progress
// or a retired table set is still draining, so load balancers route
// around the reload without the process restarting. /healthz stays
// pure liveness.
//
// Under failures the daemon degrades instead of dying: transient read
// errors are retried with capped backoff (-read-retries), a block that
// fails its CRC is quarantined on first touch (default queries on it
// answer 500; requests with "allow_degraded": true skip it and report
// the exact omission), and a panicking query answers 500 while the
// process keeps serving. /metrics exposes the retry, quarantine and
// panic counters.
//
// -compact runs the background recompaction daemon (internal/compact)
// over the mounted directory: low-priority sweeps re-analyze each
// container and atomically rewrite the ones whose byte win clears the
// -compact-min-gain threshold, yielding to query traffic so
// compaction never takes an admission slot. A sweep that changed the
// directory re-mounts it the same way SIGHUP does — in-flight queries
// drain on the retired generation while new ones open the compacted
// files. POST /-/compact triggers one synchronous sweep; /metrics
// gains a compaction section (containers scanned/rewritten/skipped,
// bytes reclaimed, compact cpu seconds).
//
// See the internal/server package documentation for the endpoint
// contracts and resource-governance knobs; `lwc serve` is the same
// server embedded in the multi-tool.
package main

import (
	"fmt"
	"os"

	"lwcomp/internal/server"
)

func main() {
	if err := server.Main(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "lwcd: %v\n", err)
		os.Exit(1)
	}
}
