// Command lwcbench regenerates the reproduction's experiment tables
// (EXP-A … EXP-N; see DESIGN.md §2 for the experiment ↔ paper-claim
// index and EXPERIMENTS.md for a recorded run).
//
// Usage:
//
//	lwcbench                 # run every experiment at full scale
//	lwcbench -exp A,C,F      # run a subset (IDs A..N)
//	lwcbench -n 262144       # reduced column length
//	lwcbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lwcomp/internal/bench"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (A..N) or 'all'")
		nFlag    = flag.Int("n", 1<<20, "base column length")
		seedFlag = flag.Int64("seed", 42, "workload seed")
		repsFlag = flag.Int("reps", 3, "timing repetitions (best kept)")
		listFlag = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("EXP-%s  %s\n       %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := bench.Config{N: *nFlag, Seed: *seedFlag, Reps: *repsFlag}
	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.TrimPrefix(strings.ToUpper(id), "EXP-"))
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "lwcbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		t0 := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lwcbench: EXP-%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(table.Render())
		fmt.Printf("(%.1fs)\n", time.Since(t0).Seconds())
	}
	fmt.Printf("\ntotal: %.1fs, n=%d, seed=%d\n", time.Since(start).Seconds(), cfg.N, cfg.Seed)
}
