// Command lwcbench regenerates the reproduction's experiment tables
// (EXP-A … EXP-W; see DESIGN.md §2 for the experiment ↔ paper-claim
// index and EXPERIMENTS.md for a recorded run).
//
// Usage:
//
//	lwcbench                 # run every experiment at full scale
//	lwcbench -exp A,C,F      # run a subset (IDs A..W)
//	lwcbench -n 262144       # reduced column length
//	lwcbench -json out.json  # also write machine-readable results
//	lwcbench -list           # list experiments
//
// The -json file is the repo's perf-trajectory format: one snapshot
// per PR (BENCH_PR2.json, …) holding every experiment's table plus
// its Metrics (ns/op, MB/s, allocs/op), so regressions diff cleanly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lwcomp/internal/bench"
)

// jsonReport is the schema of a BENCH_*.json snapshot.
type jsonReport struct {
	SchemaVersion int              `json:"schema_version"`
	Timestamp     string           `json:"timestamp"`
	GoVersion     string           `json:"go_version"`
	GOOS          string           `json:"goos"`
	GOARCH        string           `json:"goarch"`
	CPUs          int              `json:"cpus"`
	N             int              `json:"n"`
	Seed          int64            `json:"seed"`
	Reps          int              `json:"reps"`
	Experiments   []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Seconds float64        `json:"seconds"`
	Headers []string       `json:"headers"`
	Rows    [][]string     `json:"rows"`
	Notes   []string       `json:"notes,omitempty"`
	Metrics []bench.Metric `json:"metrics,omitempty"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (A..W) or 'all'")
		nFlag    = flag.Int("n", 1<<20, "base column length")
		seedFlag = flag.Int64("seed", 42, "workload seed")
		repsFlag = flag.Int("reps", 3, "timing repetitions (best kept)")
		jsonFlag = flag.String("json", "", "write machine-readable results to this file")
		listFlag = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("EXP-%s  %s\n       %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := bench.Config{N: *nFlag, Seed: *seedFlag, Reps: *repsFlag}
	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.TrimPrefix(strings.ToUpper(id), "EXP-"))
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "lwcbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	report := jsonReport{
		SchemaVersion: 1,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		N:             cfg.N,
		Seed:          cfg.Seed,
		Reps:          cfg.Reps,
	}
	start := time.Now()
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		t0 := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lwcbench: EXP-%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		fmt.Print(table.Render())
		fmt.Printf("(%.1fs)\n", elapsed.Seconds())
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:      table.ID,
			Title:   table.Title,
			Seconds: elapsed.Seconds(),
			Headers: table.Headers,
			Rows:    table.Rows,
			Notes:   table.Notes,
			Metrics: table.Metrics,
		})
	}
	fmt.Printf("\ntotal: %.1fs, n=%d, seed=%d\n", time.Since(start).Seconds(), cfg.N, cfg.Seed)

	if *jsonFlag != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lwcbench: encoding -json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonFlag, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lwcbench: writing %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonFlag, len(report.Experiments))
	}
}
