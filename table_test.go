package lwcomp_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lwcomp"
)

// buildTableFixture encodes a three-column table crafted so every
// block's verdict under the two-predicate scan is known exactly:
//
//   - date:   sorted (3*i), so block b holds [3*b*bs, 3*(b+1)*bs - 3]
//     and consecutive blocks carry disjoint ranges;
//   - status: blocks 0..7 are constant 0 (stats refute status = 1),
//     later blocks alternate 0/1 (stats cannot decide);
//   - amount: i, for aggregation checks.
//
// All columns share one block size, so the table is aligned and the
// v3 container it serializes to can be scanned per block.
func buildTableFixture(t *testing.T, n, bs int) (date, status, amount []int64, container []byte) {
	t.Helper()
	date = make([]int64, n)
	status = make([]int64, n)
	amount = make([]int64, n)
	for i := 0; i < n; i++ {
		date[i] = int64(3 * i)
		if i/bs >= 8 && i%2 == 1 {
			status[i] = 1
		}
		amount[i] = int64(i)
	}
	var cols []lwcomp.NamedColumn
	for _, c := range []struct {
		name string
		data []int64
	}{{"date", date}, {"status", status}, {"amount", amount}} {
		col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteColumns(&buf, cols); err != nil {
		t.Fatal(err)
	}
	return date, status, amount, buf.Bytes()
}

// allExtents opens data from disk and returns every column's payload
// extents (by column index, in container order) plus the payload
// region's file offset.
func allExtents(t *testing.T, data []byte) ([][]lwcomp.BlockExtent, int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tbl.lwc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := lwcomp.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	var out [][]lwcomp.BlockExtent
	for ci := range cf.Columns() {
		ext := cf.Extents(ci)
		if ext == nil {
			t.Fatal("no extents on a v3 container")
		}
		out = append(out, ext)
	}
	_, payloadStart := containerExtents(t, data)
	return out, payloadStart
}

// TestTableScanColdReadsOnlyAdmittedBlocks is the PR's acceptance
// criterion: a two-predicate scan on a cold lazily opened container
// decodes only the blocks admitted by BOTH predicates' [min, max]
// stats, asserted through the counting io.ReaderAt. The fixture makes
// the admitted set exact: date admits blocks 6..10 (6 and 10
// partially), status = 1 is refuted on blocks 0..7 and undecided
// after, so the conjunction fetches status on blocks 8 and 9 (date is
// proved there), both columns on block 10, and nothing anywhere else.
func TestTableScanColdReadsOnlyAdmittedBlocks(t *testing.T) {
	const n, bs = 1 << 16, 4096
	date, status, amount, data := buildTableFixture(t, n, bs)
	extents, payloadStart := allExtents(t, data)
	const dateCol, statusCol, amountCol = 0, 1, 2

	ra := &countingReaderAt{data: data}
	tbl, err := lwcomp.OpenTableReader(ra, int64(len(data)),
		lwcomp.WithBlockCache(0), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if !tbl.Aligned() {
		t.Fatal("fixture table must be aligned")
	}

	lo, hi := date[6*bs+100], date[10*bs+99] // inside blocks 6 and 10
	expr := lwcomp.And(lwcomp.Range("date", lo, hi), lwcomp.Eq("status", 1))

	ra.reset()
	scan, err := tbl.Scan(expr)
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Release()

	// Reference count over the raw columns.
	want := 0
	for i := range date {
		if date[i] >= lo && date[i] <= hi && status[i] == 1 {
			want++
		}
	}
	if got := scan.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}

	// The scan may have read exactly: status blocks 8 and 9 (date
	// proved there by stats), and date + status on block 10 (both
	// undecided). Blocks refuted by either conjunct were never
	// fetched.
	expected := [][2]int64{
		extentRange(extents[statusCol][8], payloadStart),
		extentRange(extents[statusCol][9], payloadStart),
		extentRange(extents[dateCol][10], payloadStart),
		extentRange(extents[statusCol][10], payloadStart),
	}
	_, _, ranges := ra.snapshot()
	assertSameReads(t, "scan", ranges, expected)

	// Late materialization: summing amount fetches exactly the three
	// amount blocks holding surviving bits, nothing else.
	ra.reset()
	gotSum, err := scan.Sum("amount")
	if err != nil {
		t.Fatal(err)
	}
	var wantSum int64
	for i := range amount {
		if date[i] >= lo && date[i] <= hi && status[i] == 1 {
			wantSum += amount[i]
		}
	}
	if gotSum != wantSum {
		t.Fatalf("Sum = %d, want %d", gotSum, wantSum)
	}
	expected = [][2]int64{
		extentRange(extents[amountCol][8], payloadStart),
		extentRange(extents[amountCol][9], payloadStart),
		extentRange(extents[amountCol][10], payloadStart),
	}
	_, _, ranges = ra.snapshot()
	assertSameReads(t, "sum", ranges, expected)
}

// extentRange converts a block extent to an absolute [offset, length]
// pair as the counting reader records them.
func extentRange(e lwcomp.BlockExtent, payloadStart int64) [2]int64 {
	return [2]int64{payloadStart + e.Offset, e.Bytes}
}

// assertSameReads compares the recorded reads against the expected
// extents as sets (the serial scan is deterministic, but the order of
// conjunct evaluation is a planner detail tests should not pin).
func assertSameReads(t *testing.T, phase string, got, want [][2]int64) {
	t.Helper()
	sortReads := func(rs [][2]int64) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i][0] != rs[j][0] {
				return rs[i][0] < rs[j][0]
			}
			return rs[i][1] < rs[j][1]
		})
	}
	sortReads(got)
	sortReads(want)
	if len(got) != len(want) {
		t.Fatalf("%s: issued %d reads %v, want %d %v", phase, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: read %d is [%d, +%d), want [%d, +%d)",
				phase, i, got[i][0], got[i][1], want[i][0], want[i][1])
		}
	}
}

// TestOpenTableQueries exercises the path-based open and the full
// expression surface against raw-data references, including the
// misaligned fallback (different block sizes per column in one
// container) and projection.
func TestOpenTableQueries(t *testing.T) {
	const n, bs = 1 << 14, 1024
	date, status, amount, data := buildTableFixture(t, n, bs)
	path := filepath.Join(t.TempDir(), "tbl.lwc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := lwcomp.OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if tbl.NumRows() != n {
		t.Fatalf("NumRows = %d, want %d", tbl.NumRows(), n)
	}

	for _, tc := range []struct {
		expr lwcomp.Expr
		pred func(i int) bool
	}{
		{lwcomp.Or(lwcomp.In("status", 1), lwcomp.Range("date", 0, date[bs/2])),
			func(i int) bool { return status[i] == 1 || date[i] <= date[bs/2] }},
		{lwcomp.Not(lwcomp.Range("amount", 0, math.MaxInt64)),
			func(int) bool { return false }},
		{lwcomp.And(lwcomp.Not(lwcomp.Eq("status", 0)), lwcomp.Range("amount", int64(n/2), math.MaxInt64)),
			func(i int) bool { return status[i] != 0 && amount[i] >= int64(n/2) }},
	} {
		scan, err := tbl.Scan(tc.expr)
		if err != nil {
			t.Fatalf("Scan(%s): %v", tc.expr, err)
		}
		wantRows := []int64{}
		for i := 0; i < n; i++ {
			if tc.pred(i) {
				wantRows = append(wantRows, int64(i))
			}
		}
		if got := scan.Rows(); !equal(got, wantRows) {
			t.Fatalf("Scan(%s): %d rows, want %d", tc.expr, len(got), len(wantRows))
		}
		vals, err := scan.Materialize("date")
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(wantRows) {
			t.Fatalf("Materialize: %d values, want %d", len(vals), len(wantRows))
		}
		for i, r := range wantRows {
			if vals[i] != date[r] {
				t.Fatalf("Materialize[%d] = %d, want %d", i, vals[i], date[r])
			}
		}
		scan.Release()
	}

	// A parsed predicate scans identically to its constructed twin.
	parsed, err := lwcomp.ParsePredicate("status = 1 and date >= 1000")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tbl.Scan(parsed)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tbl.Scan(lwcomp.And(lwcomp.Eq("status", 1), lwcomp.Range("date", 1000, math.MaxInt64)))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Count() != s2.Count() {
		t.Fatalf("parsed scan = %d rows, constructed = %d", s1.Count(), s2.Count())
	}
	s2.Release()
	s1.Release()

	// Misaligned: the same logical table with per-column block sizes
	// must answer identically through the whole-column fallback.
	var cols []lwcomp.NamedColumn
	for _, c := range []struct {
		name string
		data []int64
		bs   int
	}{{"date", date, 512}, {"status", status, 2048}, {"amount", amount, 1024}} {
		col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(c.bs))
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}
	mis, err := lwcomp.NewTable(cols)
	if err != nil {
		t.Fatal(err)
	}
	if mis.Aligned() {
		t.Fatal("mixed block sizes must not report aligned")
	}
	expr := lwcomp.And(lwcomp.Eq("status", 1), lwcomp.Range("date", 1000, 90000))
	sa, err := tbl.Scan(expr)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := mis.Scan(expr)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sa.Rows(), sm.Rows()) {
		t.Fatal("misaligned fallback diverges from the aligned plan")
	}
	sm.Release()
	sa.Release()
}

// TestColumnCacheStats pins the satellite: cache accounting is
// reachable from a lazily opened column handle itself, without the
// container, and reports the shared cache's traffic; in-memory
// columns report no cache.
func TestColumnCacheStats(t *testing.T) {
	const n, bs = 1 << 14, 1024
	_, _, _, data := buildTableFixture(t, n, bs)
	tbl, err := lwcomp.OpenTableReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	col, err := tbl.Column("status")
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := col.CacheStats()
	if !ok {
		t.Fatal("lazily opened column must expose cache stats")
	}
	if stats.Misses != 0 || stats.Hits != 0 {
		t.Fatalf("cold cache reports traffic: %+v", stats)
	}
	if stats.BytesBudget != lwcomp.DefaultBlockCacheBytes {
		t.Fatalf("budget = %d, want default %d", stats.BytesBudget, lwcomp.DefaultBlockCacheBytes)
	}

	// First scan misses, a repeat hits the shared cache.
	expr := lwcomp.Eq("status", 1)
	for pass := 0; pass < 2; pass++ {
		s, err := tbl.Scan(expr)
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	stats, _ = col.CacheStats()
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Fatalf("warm cache reports no traffic: %+v", stats)
	}
	if stats.BytesUsed <= 0 {
		t.Fatalf("cache holds no bytes after scans: %+v", stats)
	}

	// The column-level view and the container-level view are the same
	// shared cache.
	other, err := tbl.Column("date")
	if err != nil {
		t.Fatal(err)
	}
	otherStats, ok := other.CacheStats()
	if !ok || otherStats != stats {
		t.Fatalf("columns disagree on the shared cache: %+v vs %+v", otherStats, stats)
	}

	// In-memory columns have no cache to report.
	mem, err := lwcomp.Encode([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mem.CacheStats(); ok {
		t.Fatal("in-memory column must not report cache stats")
	}
}
