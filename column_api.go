package lwcomp

import (
	"io"

	"lwcomp/internal/blocked"
	"lwcomp/internal/sel"
	"lwcomp/internal/storage"
)

// Column is the primary handle of the public API: a compressed
// column partitioned into blocks, each block compressed with its own
// independently re-composed scheme and indexed by [min, max] stats.
//
// Construct one with Encode (batch) or a ColumnBuilder (streaming),
// adopt an existing Form with ColumnFromForm, or read one back with
// ReadColumns. All queries are methods and aggregate across blocks
// with stat-based skipping: a SelectRange that misses a block's
// [min, max] never decodes it, and PointLookup binary-searches the
// block index.
type Column = blocked.Column

// Block is one entry of a Column's block index.
type Block = blocked.Block

// Selection is a bitmap-backed selection vector: the result of a
// range predicate over a column, one bit per row. Column.SelectRangeSel
// returns one, and it is the zero-allocation alternative to the
// []int64 row lists of SelectRange: whole matching runs cost O(rows/64)
// word fills, per-block results merge with word-granular ORs, and
// Release returns the vector to a pool. Use Rows or AppendRows to
// convert to explicit row positions, Count for the match cardinality,
// and Iterate to visit matches without materializing them.
type Selection = sel.Selection

// NewSelection returns an empty selection over the row domain [0, n).
func NewSelection(n int) *Selection { return sel.New(n) }

// ColumnBuilder ingests values incrementally and produces a Column;
// see NewColumnBuilder.
type ColumnBuilder = blocked.Builder

// NamedColumn pairs a name with a Column inside a container file.
type NamedColumn = storage.BlockedColumn

// Encode compresses src into a Column under the given options:
//
//	col, err := lwcomp.Encode(values,
//	    lwcomp.WithBlockSize(1<<16),
//	    lwcomp.WithParallelism(8),
//	    lwcomp.WithCostBudget(4))
//
// With no options the whole column becomes a single block whose
// scheme the analyzer picks — Encode(src) is CompressBest(src) with
// a handle around it. With a block size, every block runs its own
// analyzer search concurrently, so differently-structured regions of
// the column end up under different composite schemes (the paper's
// re-composition argument applied per data region).
func Encode(src []int64, opts ...Option) (*Column, error) {
	return blocked.Encode(src, buildOptions(opts).enc)
}

// NewColumnBuilder returns a streaming ingest handle:
//
//	b := lwcomp.NewColumnBuilder(lwcomp.WithBlockSize(1 << 16))
//	for batch := range source {
//	    if err := b.Append(batch); err != nil { ... }
//	}
//	col, err := b.Flush()
//
// Blocks are compressed in the background as they fill, bounded by
// WithParallelism. A zero or negative block size falls back to
// DefaultBlockSize (a streaming builder cannot defer to "the whole
// column").
func NewColumnBuilder(opts ...Option) *ColumnBuilder {
	return blocked.NewBuilder(buildOptions(opts).enc)
}

// ColumnFromForm adopts a v1-style compressed Form as a single-block
// Column, computing the block's [min, max] stats from the form so
// range queries can skip it. Every form read from a v1 container
// round-trips through this.
func ColumnFromForm(f *Form) (*Column, error) {
	return blocked.FromForm(f, true)
}

// WriteColumns writes named columns as a v3 container: a
// self-contained block index up front (per-block [min, max] stats,
// payload extents, and CRC-32C checksums) followed by the block
// payloads, so OpenFile can later serve queries without reading the
// payloads it does not touch. Columns may themselves be lazily
// opened handles — their blocks are fetched through their source as
// they are written.
func WriteColumns(w io.Writer, cols []NamedColumn) error {
	return storage.WriteContainerV3(w, cols)
}

// WriteColumnsFile writes named columns as a v3 container file,
// crash-safely: the container is written to a temporary file in the
// destination's directory, fsynced, and renamed over path. A crash at
// any point — power loss, kill -9 mid-write — leaves either the old
// file or the complete new one under the final name, never a torn
// container. `lwc compress` writes through this.
func WriteColumnsFile(path string, cols []NamedColumn) error {
	return storage.AtomicWriteFile(path, func(w io.Writer) error {
		return storage.WriteContainerV3(w, cols)
	})
}

// ReadColumns eagerly reads a container of any generation — v3 or v2
// written by WriteColumns past or present, or a v1 container written
// by WriteContainer, whose single forms come back as single-block
// Columns. Prefer OpenFile/OpenContainer to query a v3 container
// without materializing it.
func ReadColumns(r io.Reader) ([]NamedColumn, error) {
	return storage.ReadAnyContainer(r)
}
