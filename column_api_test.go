package lwcomp_test

import (
	"bytes"
	"strings"
	"testing"

	"lwcomp"
	"lwcomp/internal/workload"
)

// equivalenceWorkloads are the column shapes the blocked API must
// answer identically to the free-function path on.
func equivalenceWorkloads(n int) map[string][]int64 {
	return map[string][]int64{
		"dates":    workload.OrderShipDates(n, 64, 730120, 1),
		"walk":     workload.RandomWalk(n, 10, 1<<30, 2),
		"outliers": workload.OutlierWalk(n, 10, 0.01, 1<<38, 3),
		"trend":    workload.TrendNoise(n, 8, 12, 4),
		"lowcard":  workload.LowCardinality(n, 32, 5),
		"skewed":   workload.SkewedMagnitude(n, 40, 6),
		"runs":     workload.Runs(n, 64, 1<<16, 7),
		"sorted":   workload.Sorted(n, 1<<40, 8),
		"uniform":  workload.UniformBits(n, 16, 9),
	}
}

// TestColumnQueryEquivalence is the acceptance-criteria test: for
// every workload and every block size in {1Ki, 16Ki, whole column},
// each Column query method returns results identical to the
// free-function path on the unblocked form.
func TestColumnQueryEquivalence(t *testing.T) {
	const n = 40000
	for name, data := range equivalenceWorkloads(n) {
		form, err := lwcomp.CompressBest(data)
		if err != nil {
			t.Fatalf("%s: CompressBest: %v", name, err)
		}
		wantSum, err := lwcomp.Sum(form)
		if err != nil {
			t.Fatalf("%s: Sum: %v", name, err)
		}
		wantMin, err := lwcomp.Min(form)
		if err != nil {
			t.Fatalf("%s: Min: %v", name, err)
		}
		wantMax, err := lwcomp.Max(form)
		if err != nil {
			t.Fatalf("%s: Max: %v", name, err)
		}
		// A range straddling the value middle plus both degenerate
		// directions.
		lo, hi := data[n/4], data[3*n/4]
		if lo > hi {
			lo, hi = hi, lo
		}
		wantCount, err := lwcomp.CountRange(form, lo, hi)
		if err != nil {
			t.Fatalf("%s: CountRange: %v", name, err)
		}
		wantRows, err := lwcomp.SelectRange(form, lo, hi)
		if err != nil {
			t.Fatalf("%s: SelectRange: %v", name, err)
		}

		for _, bs := range []int{1 << 10, 1 << 14, 0} {
			col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(bs))
			if err != nil {
				t.Fatalf("%s/bs=%d: Encode: %v", name, bs, err)
			}
			if err := col.Validate(); err != nil {
				t.Fatalf("%s/bs=%d: Validate: %v", name, bs, err)
			}
			if got, err := col.Sum(); err != nil || got != wantSum {
				t.Fatalf("%s/bs=%d: Sum = %d, want %d (%v)", name, bs, got, wantSum, err)
			}
			if got, err := col.Min(); err != nil || got != wantMin {
				t.Fatalf("%s/bs=%d: Min = %d, want %d (%v)", name, bs, got, wantMin, err)
			}
			if got, err := col.Max(); err != nil || got != wantMax {
				t.Fatalf("%s/bs=%d: Max = %d, want %d (%v)", name, bs, got, wantMax, err)
			}
			if got, err := col.CountRange(lo, hi); err != nil || got != wantCount {
				t.Fatalf("%s/bs=%d: CountRange = %d, want %d (%v)", name, bs, got, wantCount, err)
			}
			rows, err := col.SelectRange(lo, hi)
			if err != nil || !equal(rows, wantRows) {
				t.Fatalf("%s/bs=%d: SelectRange mismatch (%d vs %d rows, %v)",
					name, bs, len(rows), len(wantRows), err)
			}
			back, err := col.Decompress()
			if err != nil || !equal(back, data) {
				t.Fatalf("%s/bs=%d: Decompress mismatch (%v)", name, bs, err)
			}
			for _, row := range []int64{0, int64(n / 3), int64(n) - 1} {
				got, err := col.PointLookup(row)
				if err != nil || got != data[row] {
					t.Fatalf("%s/bs=%d: PointLookup(%d) = %d, want %d (%v)",
						name, bs, row, got, data[row], err)
				}
			}
		}
	}
}

// TestColumnPerBlockRecomposition is the acceptance-criteria test
// that per-block re-composition is observable: a column whose halves
// favor different schemes must show different winners in Describe().
func TestColumnPerBlockRecomposition(t *testing.T) {
	const half = 1 << 14
	// First half: long runs of slowly increasing dates (RLE country).
	// Second half: full-width noise (NS/VNS country).
	data := append(workload.OrderShipDates(half, 256, 730120, 1),
		workload.UniformBits(half, 40, 2)...)

	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(half))
	if err != nil {
		t.Fatal(err)
	}
	if col.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2", col.NumBlocks())
	}
	schemes := col.BlockSchemes()
	if schemes[0] == schemes[1] {
		t.Fatalf("both blocks chose %q; want divergent schemes", schemes[0])
	}
	desc := col.Describe()
	if !strings.Contains(desc, schemes[0]) || !strings.Contains(desc, schemes[1]) {
		t.Fatalf("Describe does not surface both schemes:\n%s", desc)
	}
	if !strings.Contains(schemes[0], "rle") {
		t.Errorf("run-heavy block chose %q, expected an rle composite", schemes[0])
	}
	// And the whole still round-trips.
	back, err := col.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("roundtrip: %v", err)
	}
}

// TestColumnParallelismDeterminism: worker count must not change the
// encoded result — every block's bytes are identical across
// parallelism levels.
func TestColumnParallelismDeterminism(t *testing.T) {
	data := workload.OrderShipDates(1<<16, 64, 730120, 3)
	var want [][]byte
	for _, p := range []int{1, 4, 16} {
		col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12), lwcomp.WithParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		for i := range col.Blocks {
			enc, err := lwcomp.EncodeForm(col.Blocks[i].Form)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, enc)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d blocks, want %d", p, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("p=%d: block %d bytes differ from p=1", p, i)
			}
		}
	}
}

// TestColumnBuilderMatchesEncode: the streaming path must produce
// the same blocks as the batch path, regardless of append batching.
func TestColumnBuilderMatchesEncode(t *testing.T) {
	const n, bs = 50000, 1 << 12
	data := workload.RandomWalk(n, 12, 1<<33, 4)
	want, err := lwcomp.Encode(data, lwcomp.WithBlockSize(bs))
	if err != nil {
		t.Fatal(err)
	}

	b := lwcomp.NewColumnBuilder(lwcomp.WithBlockSize(bs))
	for i := 0; i < n; i += 777 {
		end := i + 777
		if end > n {
			end = n
		}
		if err := b.Append(data[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	col, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if col.N != want.N || col.NumBlocks() != want.NumBlocks() {
		t.Fatalf("builder column n=%d blocks=%d, want n=%d blocks=%d",
			col.N, col.NumBlocks(), want.N, want.NumBlocks())
	}
	for i := range col.Blocks {
		a, err := lwcomp.EncodeForm(col.Blocks[i].Form)
		if err != nil {
			t.Fatal(err)
		}
		bbytes, err := lwcomp.EncodeForm(want.Blocks[i].Form)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, bbytes) {
			t.Fatalf("block %d differs between builder and Encode", i)
		}
	}
	if _, err := b.Flush(); err == nil {
		t.Fatal("second Flush must fail")
	}
	if err := b.Append([]int64{1}); err == nil {
		t.Fatal("Append after Flush must fail")
	}
}

// TestColumnOptions covers WithScheme, WithCostBudget and
// WithExtraCandidates on the blocked path.
func TestColumnOptions(t *testing.T) {
	data := workload.SkewedMagnitude(30000, 40, 5)

	pinned, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12), lwcomp.WithScheme(lwcomp.Varint()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pinned.BlockSchemes() {
		if s != "varint" {
			t.Fatalf("pinned scheme: block chose %q", s)
		}
	}
	back, err := pinned.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("pinned roundtrip: %v", err)
	}

	// Elias costs ~6/element; a budget of 4 must exclude it in every
	// block.
	budgeted, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12), lwcomp.WithCostBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range budgeted.BlockSchemes() {
		if s == "elias" {
			t.Fatalf("cost budget ignored: block chose %q", s)
		}
	}

	// Extra candidates join every block's search space and a cheap
	// sample keeps it fast.
	extra, err := lwcomp.Encode(data,
		lwcomp.WithBlockSize(1<<12),
		lwcomp.WithSampleSize(1<<10),
		lwcomp.WithExtraCandidates(lwcomp.SchemeCandidate(lwcomp.VNS(16))))
	if err != nil {
		t.Fatal(err)
	}
	back, err = extra.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("extra-candidate roundtrip: %v", err)
	}
}

// TestColumnBlockSkipping: on sorted data a narrow range must leave
// most blocks untouched, and results stay exact.
func TestColumnBlockSkipping(t *testing.T) {
	const n = 1 << 16
	data := workload.Sorted(n, 1<<40, 6)
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := data[n/2], data[n/2+n/64]
	skipped, whole, consulted := col.SkipStats(lo, hi)
	if skipped == 0 || skipped+whole+consulted != col.NumBlocks() {
		t.Fatalf("skip stats: skipped=%d whole=%d consulted=%d of %d blocks",
			skipped, whole, consulted, col.NumBlocks())
	}
	if consulted > 4 {
		t.Fatalf("narrow range on sorted data consulted %d blocks", consulted)
	}
	rows, err := col.SelectRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if data[r] < lo || data[r] > hi {
			t.Fatalf("row %d value %d outside [%d, %d]", r, data[r], lo, hi)
		}
	}
	count, err := col.CountRange(lo, hi)
	if err != nil || count != int64(len(rows)) {
		t.Fatalf("CountRange = %d, SelectRange rows = %d (%v)", count, len(rows), err)
	}
}

// TestColumnContainerV2RoundTrip: WriteColumns/ReadColumns preserves
// blocks, stats and query results.
func TestColumnContainerV2RoundTrip(t *testing.T) {
	data := workload.OrderShipDates(30000, 64, 730120, 7)
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<13))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteColumns(&buf, []lwcomp.NamedColumn{{Name: "ship_date", Col: col}}); err != nil {
		t.Fatal(err)
	}
	cols, err := lwcomp.ReadColumns(bytes.NewReader(buf.Bytes()))
	if err != nil || len(cols) != 1 || cols[0].Name != "ship_date" {
		t.Fatalf("ReadColumns: %v", err)
	}
	got := cols[0].Col
	if got.NumBlocks() != col.NumBlocks() || got.BlockSize != col.BlockSize {
		t.Fatalf("index mismatch: blocks=%d size=%d", got.NumBlocks(), got.BlockSize)
	}
	for i := range got.Blocks {
		w, g := &col.Blocks[i], &got.Blocks[i]
		if !g.HasStats || g.Min != w.Min || g.Max != w.Max || g.Count != w.Count || g.Start != w.Start {
			t.Fatalf("block %d index mismatch: %+v vs %+v", i, g, w)
		}
	}
	back, err := got.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("roundtrip: %v", err)
	}
	wantSum, _ := col.Sum()
	if s, err := got.Sum(); err != nil || s != wantSum {
		t.Fatalf("Sum after roundtrip = %d, want %d (%v)", s, wantSum, err)
	}
}

// TestV1ContainerThroughColumnAPI is the acceptance-criteria test:
// containers written by the v1 format stay readable through
// ReadContainer AND round-trip through the new Column API.
func TestV1ContainerThroughColumnAPI(t *testing.T) {
	data := workload.Runs(20000, 64, 1<<16, 8)
	form, err := lwcomp.CompressBest(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteContainer(&buf, []lwcomp.StoredColumn{{Name: "col0", Form: form}}); err != nil {
		t.Fatal(err)
	}

	// Old path still works.
	v1cols, err := lwcomp.ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil || len(v1cols) != 1 {
		t.Fatalf("ReadContainer: %v", err)
	}

	// New path adopts the same bytes.
	cols, err := lwcomp.ReadColumns(bytes.NewReader(buf.Bytes()))
	if err != nil || len(cols) != 1 {
		t.Fatalf("ReadColumns on v1: %v", err)
	}
	col := cols[0].Col
	if col.NumBlocks() != 1 {
		t.Fatalf("v1 adoption: %d blocks", col.NumBlocks())
	}
	back, err := col.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("v1 adoption roundtrip: %v", err)
	}
	wantSum, _ := lwcomp.Sum(form)
	if s, err := col.Sum(); err != nil || s != wantSum {
		t.Fatalf("Sum = %d, want %d (%v)", s, wantSum, err)
	}

	// And it can be re-written as a v2 container.
	adopted, err := lwcomp.ColumnFromForm(form)
	if err != nil {
		t.Fatal(err)
	}
	if !adopted.Blocks[0].HasStats {
		t.Fatal("ColumnFromForm must compute stats")
	}
	var buf2 bytes.Buffer
	if err := lwcomp.WriteColumns(&buf2, []lwcomp.NamedColumn{{Name: "col0", Col: adopted}}); err != nil {
		t.Fatal(err)
	}
	cols2, err := lwcomp.ReadColumns(bytes.NewReader(buf2.Bytes()))
	if err != nil || len(cols2) != 1 {
		t.Fatalf("v2 rewrite: %v", err)
	}
	back, err = cols2[0].Col.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("v2 rewrite roundtrip: %v", err)
	}
}

// TestColumnEdgeCases: empty and tiny columns behave like the free
// functions.
func TestColumnEdgeCases(t *testing.T) {
	empty, err := lwcomp.Encode(nil, lwcomp.WithBlockSize(1<<10))
	if err != nil {
		t.Fatalf("Encode(nil): %v", err)
	}
	if empty.N != 0 {
		t.Fatalf("empty N = %d", empty.N)
	}
	if s, err := empty.Sum(); err != nil || s != 0 {
		t.Fatalf("empty Sum = %d (%v)", s, err)
	}
	if _, err := empty.Min(); err == nil {
		t.Fatal("empty Min must error")
	}
	if _, err := empty.PointLookup(0); err == nil {
		t.Fatal("empty PointLookup must error")
	}
	back, err := empty.Decompress()
	if err != nil || len(back) != 0 {
		t.Fatalf("empty Decompress: %v", err)
	}

	one, err := lwcomp.Encode([]int64{-42}, lwcomp.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := one.PointLookup(0); err != nil || v != -42 {
		t.Fatalf("one PointLookup = %d (%v)", v, err)
	}
	if mn, err := one.Min(); err != nil || mn != -42 {
		t.Fatalf("one Min = %d (%v)", mn, err)
	}
	if rows, err := one.SelectRange(-42, -42); err != nil || len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("one SelectRange = %v (%v)", rows, err)
	}
	// ApproxSum brackets the truth on a blocked column.
	walk := workload.RandomWalk(1<<14, 10, 1<<20, 10)
	var truth int64
	for _, v := range walk {
		truth += v
	}
	col, err := lwcomp.Encode(walk, lwcomp.WithBlockSize(1<<11), lwcomp.WithScheme(lwcomp.FORNS(256)))
	if err != nil {
		t.Fatal(err)
	}
	iv, err := col.ApproxSum()
	if err != nil || !iv.Contains(truth) {
		t.Fatalf("blocked ApproxSum %+v misses %d (%v)", iv, truth, err)
	}
}
