// Allocation-regression tests: the pooled-scratch decode path, the
// fused compressed scans, and block skipping must stay allocation-free
// in steady state (ISSUE 2's acceptance criteria). testing.AllocsPerRun
// performs a warm-up call first, so the pools are primed before
// counting.
package lwcomp_test

import (
	"bytes"
	"context"
	"testing"

	"lwcomp"
	"lwcomp/internal/query"
	"lwcomp/internal/workload"
)

// mustZeroAllocs asserts f performs no steady-state allocations. The
// assertion is skipped under the race detector, which deliberately
// defeats sync.Pool reuse.
func mustZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		f()
		return
	}
	if n := testing.AllocsPerRun(50, f); n > 0 {
		t.Errorf("%s: %.0f allocs/op, want 0", name, n)
	}
}

// TestBlockDecodeAllocs: decoding a blocked column into a reused
// destination allocates nothing once the scratch pool is warm, across
// the hot scheme families.
func TestBlockDecodeAllocs(t *testing.T) {
	const n = 1 << 15
	for name, tc := range map[string]struct {
		data   []int64
		scheme lwcomp.Scheme
	}{
		"ns":        {workload.UniformBits(n, 20, 1), lwcomp.NS()},
		"vns":       {workload.SkewedMagnitude(n, 40, 2), lwcomp.VNS(128)},
		"for+ns":    {workload.RandomWalk(n, 12, 1<<30, 3), lwcomp.FORNS(1024)},
		"rle+ns":    {workload.Runs(n, 64, 1<<16, 4), lwcomp.RLENS()},
		"rle-delta": {workload.OrderShipDates(n, 64, 730120, 5), lwcomp.RLEDeltaNS()},
		"analyzer":  {workload.OrderShipDates(n, 64, 730120, 6), nil},
	} {
		opts := []lwcomp.Option{lwcomp.WithBlockSize(1 << 12), lwcomp.WithParallelism(1)}
		if tc.scheme != nil {
			opts = append(opts, lwcomp.WithScheme(tc.scheme))
		}
		col, err := lwcomp.Encode(tc.data, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst := make([]int64, col.N)
		mustZeroAllocs(t, "decode/"+name, func() {
			if err := col.DecompressInto(dst); err != nil {
				t.Fatal(err)
			}
		})
		if !equal(dst, tc.data) {
			t.Fatalf("%s: DecompressInto produced wrong data", name)
		}
	}
}

// TestBlockEncodeAllocs: encode-side allocation regressions (ISSUE
// 5). Steady-state block encode through the pooled compressors must
// allocate only what each block's form retains — nodes, parameter
// maps and payloads — never its temporaries (zigzag staging,
// constituent columns, model predictions), which come from the
// per-worker scratch arena. The per-block budgets below are the
// measured retained allocation counts with one or two of headroom; a
// regression to the unpooled path roughly doubles them.
func TestBlockEncodeAllocs(t *testing.T) {
	const n, bs = 1 << 15, 1 << 12
	const blocks = n / bs
	deltaNS, err := lwcomp.ParseScheme("delta(deltas=ns)")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		data     []int64
		scheme   lwcomp.Scheme
		perBlock float64 // retained allocations per block, plus headroom
	}{
		{"ns", workload.UniformBits(n, 20, 1), lwcomp.NS(), 8},
		{"vns", workload.SkewedMagnitude(n, 40, 2), lwcomp.VNS(128), 12},
		{"for+ns", workload.RandomWalk(n, 12, 1<<30, 3), lwcomp.FORNS(1024), 19},
		{"rle+ns", workload.Runs(n, 64, 1<<16, 4), lwcomp.RLENS(), 17},
		{"rle-delta", workload.OrderShipDates(n, 64, 730120, 5), lwcomp.RLEDeltaNS(), 23},
		{"delta+ns", workload.Sorted(n, 1<<40, 6), deltaNS, 13},
		{"dict+ns", workload.LowCardinality(n, 32, 7), lwcomp.DictNS(), 18},
		{"linear+ns", workload.TrendNoise(n, 8, 12, 8), lwcomp.LinearNS(1024), 21},
		{"pfor", workload.OutlierWalk(n, 10, 0.01, 1<<38, 9), lwcomp.PFOR(1024), 48},
	} {
		if raceEnabled {
			break // the detector defeats sync.Pool reuse by design
		}
		got := testing.AllocsPerRun(20, func() {
			if _, err := lwcomp.Encode(tc.data,
				lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(1),
				lwcomp.WithScheme(tc.scheme)); err != nil {
				t.Fatal(err)
			}
		})
		// A small constant covers the column handle and block index.
		budget := tc.perBlock*blocks + 8
		if got > budget {
			t.Errorf("encode/%s: %.0f allocs/op, budget %.0f (%.1f per block)",
				tc.name, got, budget, got/blocks)
		}
	}
}

// TestCountRangeMissAllocs: a range query that misses every block's
// [min, max] answers from the index alone — no decode, no allocation.
func TestCountRangeMissAllocs(t *testing.T) {
	data := workload.Sorted(1<<15, 1<<40, 7)
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := data[0]-1000, data[0]-1 // below the column minimum
	mustZeroAllocs(t, "count-miss", func() {
		n, err := col.CountRange(lo, hi)
		if err != nil || n != 0 {
			t.Fatalf("CountRange = %d, %v", n, err)
		}
	})
}

// TestFusedScanAllocs: the fused unpack-and-compare paths — NS count,
// NS select into a reused bitmap, and straddling-block scans on a
// blocked column — stay allocation-free.
func TestFusedScanAllocs(t *testing.T) {
	const n = 1 << 15
	data := workload.UniformBits(n, 20, 8)
	form, err := lwcomp.NS().Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(1)<<18, int64(1)<<19
	mustZeroAllocs(t, "ns-count-fused", func() {
		if _, err := query.CountRange(form, lo, hi); err != nil {
			t.Fatal(err)
		}
	})
	bm := lwcomp.NewSelection(n)
	mustZeroAllocs(t, "ns-select-fused", func() {
		bm.Reset(n)
		if err := query.SelectRangeSel(form, lo, hi, bm, 0); err != nil {
			t.Fatal(err)
		}
	})

	// Straddling FOR+NS blocks through the blocked serial scan path.
	sorted := workload.Sorted(n, 1<<40, 9)
	col, err := lwcomp.Encode(sorted,
		lwcomp.WithBlockSize(1<<12), lwcomp.WithParallelism(1), lwcomp.WithScheme(lwcomp.FORNS(1024)))
	if err != nil {
		t.Fatal(err)
	}
	slo, shi := sorted[n/2], sorted[n/2+n/64]
	mustZeroAllocs(t, "blocked-select-straddle", func() {
		bm, err := col.SelectRangeSel(slo, shi)
		if err != nil {
			t.Fatal(err)
		}
		bm.Release()
	})
}

// TestTableScanAllocs: the steady-state two-predicate table scan —
// per-block cross-column planning, fused leaf evaluation, word-
// granular bitmap intersection, pooled scan handle — allocates
// nothing once the pools are warm, and neither does the
// late-materialized aggregation over the surviving selection (ISSUE
// 4's acceptance criteria: bitmap intersection must not allocate).
func TestTableScanAllocs(t *testing.T) {
	const n, bs = 1 << 15, 1 << 12
	date := workload.Sorted(n, 1<<40, 21)
	status := workload.LowCardinality(n, 4, 22)
	amount := workload.RandomWalk(n, 10, 1<<30, 23)
	var cols []lwcomp.NamedColumn
	for _, c := range []struct {
		name string
		data []int64
	}{{"date", date}, {"status", status}, {"amount", amount}} {
		col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}
	tbl, err := lwcomp.NewTable(cols)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := date[n/4], date[3*n/4]
	expr := lwcomp.And(lwcomp.Range("date", lo, hi), lwcomp.Eq("status", status[n/3]))

	mustZeroAllocs(t, "table-scan-two-predicate", func() {
		s, err := tbl.Scan(expr)
		if err != nil {
			t.Fatal(err)
		}
		if s.Count() == 0 {
			t.Fatal("scan found nothing; the fixture is broken")
		}
		s.Release()
	})

	s, err := tbl.Scan(expr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	mustZeroAllocs(t, "table-scan-sum", func() {
		if _, err := s.Sum("amount"); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFusedAggregateAllocs: the fused scan+aggregate paths —
// CountWhere and SumWhere over leaf and composite predicates,
// including the packed-word fast paths and the prefetch announce that
// runs one block ahead of the serial loop — stay allocation-free in
// steady state on an aligned in-memory table.
func TestFusedAggregateAllocs(t *testing.T) {
	const n, bs = 1 << 15, 1 << 12
	date := workload.Sorted(n, 1<<40, 21)
	status := workload.LowCardinality(n, 4, 22)
	amount := workload.RandomWalk(n, 10, 1<<30, 23)
	var cols []lwcomp.NamedColumn
	for _, c := range []struct {
		name string
		data []int64
	}{{"date", date}, {"status", status}, {"amount", amount}} {
		col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}
	tbl, err := lwcomp.NewTable(cols)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lo, hi := date[n/4], date[3*n/4]
	exprLeaf := lwcomp.Range("date", lo, hi)
	exprAnd := lwcomp.And(lwcomp.Range("date", lo, hi), lwcomp.Eq("status", status[n/3]))

	wantCnt, err := tbl.CountWhere(ctx, exprLeaf)
	if err != nil || wantCnt == 0 {
		t.Fatalf("CountWhere = %d, %v; the fixture is broken", wantCnt, err)
	}
	mustZeroAllocs(t, "fused-count-leaf", func() {
		if cnt, err := tbl.CountWhere(ctx, exprLeaf); err != nil || cnt != wantCnt {
			t.Fatalf("CountWhere = %d, %v", cnt, err)
		}
	})
	mustZeroAllocs(t, "fused-count-and", func() {
		if _, err := tbl.CountWhere(ctx, exprAnd); err != nil {
			t.Fatal(err)
		}
	})
	mustZeroAllocs(t, "fused-sum-same-column", func() {
		if _, _, err := tbl.SumWhere(ctx, exprLeaf, "date"); err != nil {
			t.Fatal(err)
		}
	})
	mustZeroAllocs(t, "fused-sum-other-column", func() {
		if _, _, err := tbl.SumWhere(ctx, exprLeaf, "amount"); err != nil {
			t.Fatal(err)
		}
	})
	mustZeroAllocs(t, "fused-sum-and", func() {
		if _, _, err := tbl.SumWhere(ctx, exprAnd, "amount"); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPrefetchAnnounceAllocs: announcing block prefetches against a
// lazy container — the scan paths do it once per undecided block —
// allocates nothing in steady state, whether the block is already
// cached (presence probe, skip) or queued to the prefetch worker
// (struct send on a buffered channel).
func TestPrefetchAnnounceAllocs(t *testing.T) {
	const n, bs = 1 << 14, 1 << 11
	date := workload.Sorted(n, 1<<40, 31)
	col, err := lwcomp.Encode(date, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteColumns(&buf, []lwcomp.NamedColumn{{Name: "date", Col: col}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	tbl, err := lwcomp.OpenTableReader(bytes.NewReader(data), int64(len(data)), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	// Warm the cache so the announces hit the presence probe.
	if _, err := tbl.CountWhere(context.Background(), lwcomp.Range("date", date[0], date[n-1])); err != nil {
		t.Fatal(err)
	}
	lazy, err := tbl.Column("date")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustZeroAllocs(t, "prefetch-announce", func() {
		for i := 0; i < lazy.NumBlocks(); i++ {
			lazy.Prefetch(ctx, i)
		}
	})
}

// TestSelectRangeSelMatchesRows: the bitmap boundary conversion and
// the selection itself agree with SelectRange on a mixed column.
func TestSelectRangeSelMatchesRows(t *testing.T) {
	const n = 50000
	third := n / 3
	data := append(workload.OrderShipDates(third, 256, 730120, 1),
		workload.UniformBits(third, 40, 2)...)
	data = append(data, workload.Sorted(n-2*third, 1<<40, 3)...)
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := data[n/4], data[3*n/4]
	if lo > hi {
		lo, hi = hi, lo
	}
	rows, err := col.SelectRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := col.SelectRangeSel(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Release()
	if bm.Count() != len(rows) {
		t.Fatalf("Count = %d, rows = %d", bm.Count(), len(rows))
	}
	if got := bm.Rows(); !equal(got, rows) {
		t.Fatal("Rows() diverges from SelectRange")
	}
	for _, r := range rows {
		if !bm.Contains(int(r)) {
			t.Fatalf("row %d missing from selection", r)
		}
	}
}
