package lwcomp_test

import (
	"bytes"
	"errors"
	"testing"

	"lwcomp"
	"lwcomp/internal/workload"
)

// mustScheme parses a scheme expression or fails the test.
func mustScheme(t *testing.T, expr string) lwcomp.Scheme {
	t.Helper()
	s, err := lwcomp.ParseScheme(expr)
	if err != nil {
		t.Fatalf("ParseScheme(%q): %v", expr, err)
	}
	return s
}

// serializationForms builds one compressed form per registered
// scheme (directly where the scheme compresses arbitrary columns,
// via its canonical producer where it does not: PFOR yields PATCH
// forms, StepNS yields PLUS forms) over varied workloads.
func serializationForms(t *testing.T) map[string]*lwcomp.Form {
	t.Helper()
	const n = 6000
	linear := make([]int64, n)
	for i := range linear {
		linear[i] = 7*int64(i) + 3
	}
	constant := make([]int64, n)
	for i := range constant {
		constant[i] = -123456
	}
	quad := make([]int64, n)
	for i := range quad {
		x := int64(i % 1024)
		quad[i] = x*x/50 + int64(i%7)
	}
	cases := []struct {
		desc string
		s    lwcomp.Scheme
		src  []int64
	}{
		{"id", lwcomp.ID(), workload.RandomWalk(n, 9, 1<<20, 1)},
		{"ns", lwcomp.NS(), workload.UniformBits(n, 17, 2)},
		{"ns-negative", lwcomp.NS(), workload.RandomWalk(n, 50, 0, 3)},
		{"vns", lwcomp.VNS(0), workload.SkewedMagnitude(n, 40, 4)},
		{"varint", lwcomp.Varint(), workload.SkewedMagnitude(n, 40, 5)},
		{"elias", lwcomp.Elias(), workload.SkewedMagnitude(n, 30, 6)},
		{"delta", lwcomp.Delta(), workload.Sorted(n, 1<<38, 7)},
		{"rle", lwcomp.RLE(), workload.Runs(n, 32, 1<<12, 8)},
		{"rle-composite", lwcomp.RLEDeltaNS(), workload.OrderShipDates(n, 40, 730120, 9)},
		{"rpe", lwcomp.RPE(), workload.Runs(n, 32, 1<<12, 10)},
		{"for", lwcomp.FOR(0), workload.RandomWalk(n, 10, 1<<31, 11)},
		{"for-composite", lwcomp.FORNS(512), workload.RandomWalk(n, 10, 1<<31, 12)},
		{"dict", lwcomp.Dict(), workload.LowCardinality(n, 24, 13)},
		{"step", mustScheme(t, "step"), workload.StepData(n, 1024, 14)},
		{"plus", lwcomp.StepNS(0), workload.StepData(n, 1024, 17)},
		{"linear", lwcomp.LinearNS(0), linear},
		{"poly2", lwcomp.Poly2NS(1024), quad},
		{"const", mustScheme(t, "const"), constant},
		{"patch", lwcomp.PFOR(512), workload.OutlierWalk(n, 8, 0.01, 1<<38, 15)},
		{"plinear", lwcomp.PatchedLinearNS(1024), quad},
	}
	forms := make(map[string]*lwcomp.Form, len(cases))
	for _, tc := range cases {
		f, err := tc.s.Compress(tc.src)
		if err != nil {
			t.Fatalf("%s: Compress: %v", tc.desc, err)
		}
		forms[tc.desc] = f
	}
	return forms
}

// TestSerializationRoundTripAllSchemes round-trips every generated
// form through EncodeForm/DecodeForm and checks that every
// registered scheme appears somewhere in the covered trees.
func TestSerializationRoundTripAllSchemes(t *testing.T) {
	forms := serializationForms(t)
	covered := map[string]bool{}
	for desc, f := range forms {
		f.Walk(func(node *lwcomp.Form) error {
			covered[node.Scheme] = true
			return nil
		})
		enc, err := lwcomp.EncodeForm(f)
		if err != nil {
			t.Fatalf("%s: EncodeForm: %v", desc, err)
		}
		got, consumed, err := lwcomp.DecodeForm(enc)
		if err != nil {
			t.Fatalf("%s: DecodeForm: %v", desc, err)
		}
		if consumed != len(enc) {
			t.Fatalf("%s: consumed %d of %d bytes", desc, consumed, len(enc))
		}
		// Decode→re-encode is byte-identical (canonical encoding).
		enc2, err := lwcomp.EncodeForm(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", desc, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: re-encoded bytes differ", desc)
		}
		want, err := lwcomp.Decompress(f)
		if err != nil {
			t.Fatalf("%s: Decompress original: %v", desc, err)
		}
		back, err := lwcomp.Decompress(got)
		if err != nil || !equal(back, want) {
			t.Fatalf("%s: decoded form decompresses differently (%v)", desc, err)
		}
	}
	for _, name := range lwcomp.Schemes() {
		if !covered[name] {
			t.Errorf("registered scheme %q not covered by any serialized form", name)
		}
	}
}

// TestSerializationTruncation: every proper prefix of an encoded
// form must fail with ErrCorrupt — never panic, never succeed.
func TestSerializationTruncation(t *testing.T) {
	for desc, f := range serializationForms(t) {
		enc, err := lwcomp.EncodeForm(f)
		if err != nil {
			t.Fatal(err)
		}
		cuts := []int{0, 1, 2, len(enc) / 3, len(enc) / 2, len(enc) - 1}
		for _, k := range cuts {
			if k < 0 || k >= len(enc) {
				continue
			}
			_, _, err := lwcomp.DecodeForm(enc[:k])
			if err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes decoded successfully", desc, k, len(enc))
			}
			if !errors.Is(err, lwcomp.ErrCorrupt) {
				t.Fatalf("%s: truncation to %d: err = %v, want ErrCorrupt", desc, k, err)
			}
		}
	}
}

// TestSerializationBitFlips: flipping any byte of an encoded form
// must never panic; when it fails, it fails with ErrCorrupt.
func TestSerializationBitFlips(t *testing.T) {
	for desc, f := range serializationForms(t) {
		enc, err := lwcomp.EncodeForm(f)
		if err != nil {
			t.Fatal(err)
		}
		step := len(enc)/64 + 1
		for pos := 0; pos < len(enc); pos += step {
			mut := append([]byte{}, enc...)
			mut[pos] ^= 0x55
			_, _, err := lwcomp.DecodeForm(mut)
			if err != nil && !errors.Is(err, lwcomp.ErrCorrupt) {
				t.Fatalf("%s: flip at %d: err = %v, want ErrCorrupt or nil", desc, pos, err)
			}
		}
	}
}

// TestContainerCorruption: both container generations detect
// truncation and bit flips via structure or checksum.
func TestContainerCorruption(t *testing.T) {
	data := workload.OrderShipDates(8000, 50, 730120, 16)
	form, err := lwcomp.CompressBest(data)
	if err != nil {
		t.Fatal(err)
	}
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<11))
	if err != nil {
		t.Fatal(err)
	}

	var v1, v2 bytes.Buffer
	if err := lwcomp.WriteContainer(&v1, []lwcomp.StoredColumn{{Name: "c", Form: form}}); err != nil {
		t.Fatal(err)
	}
	if err := lwcomp.WriteColumns(&v2, []lwcomp.NamedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}

	check := func(label string, read func([]byte) error, blob []byte) {
		// Bit flips anywhere (magic, body, CRC) must be rejected.
		step := len(blob)/48 + 1
		for pos := 0; pos < len(blob); pos += step {
			mut := append([]byte{}, blob...)
			mut[pos] ^= 0x01
			err := read(mut)
			if err == nil {
				t.Fatalf("%s: flip at byte %d accepted", label, pos)
			}
			if !errors.Is(err, lwcomp.ErrChecksum) && !errors.Is(err, lwcomp.ErrCorrupt) {
				t.Fatalf("%s: flip at byte %d: err = %v, want ErrChecksum/ErrCorrupt", label, pos, err)
			}
		}
		for _, k := range []int{0, 3, len(blob) / 2, len(blob) - 1} {
			if err := read(blob[:k]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", label, k)
			}
		}
		if err := read(blob); err != nil {
			t.Fatalf("%s: pristine container rejected: %v", label, err)
		}
	}

	check("v1/ReadContainer", func(b []byte) error {
		_, err := lwcomp.ReadContainer(bytes.NewReader(b))
		return err
	}, v1.Bytes())
	check("v2/ReadColumns", func(b []byte) error {
		_, err := lwcomp.ReadColumns(bytes.NewReader(b))
		return err
	}, v2.Bytes())
	check("v1/ReadColumns", func(b []byte) error {
		_, err := lwcomp.ReadColumns(bytes.NewReader(b))
		return err
	}, v1.Bytes())
}
