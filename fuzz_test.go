package lwcomp_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"lwcomp"
)

// FuzzTableScanEquivalence asserts the table-scan subsystem — the
// expression tree, the per-block cross-column planner, the bitmap
// intersection ops, the misaligned whole-column fallback and the
// late-materialized aggregation — answers identically to
// decompress-all-then-filter on random multi-column data and random
// expression trees. raw seeds three columns of different character
// (low-cardinality, signed walk, widened), shape steers block sizes
// (aligned and misaligned), worker counts and value derivation, and
// prog is a byte program the expression generator consumes.
func FuzzTableScanEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), []byte{4, 0, 1, 2, 5})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(7), []byte{5, 3, 0, 1, 2, 3, 4})
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9}, uint8(129), []byte{3, 4, 1, 1, 2, 2, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(64), []byte{2, 0, 7, 7, 7})

	f.Fuzz(func(t *testing.T, raw []byte, shape uint8, prog []byte) {
		if len(raw) == 0 || len(raw) > 1024 || len(prog) == 0 || len(prog) > 48 {
			return
		}
		n := len(raw)
		data := [3][]int64{make([]int64, n), make([]int64, n), make([]int64, n)}
		var acc int64
		for i, b := range raw {
			data[0][i] = int64(b & 7) // low cardinality
			acc += int64(int8(b))
			data[1][i] = acc // signed walk
			data[2][i] = int64(b) << 20
		}
		names := [3]string{"a", "b", "c"}

		blockSizes := []int{0, 7, 64, 100}
		baseBS := blockSizes[int(shape)%len(blockSizes)]
		workers := 1 + int(shape>>6) // 1..4
		var cols []lwcomp.NamedColumn
		for ci := 0; ci < 3; ci++ {
			bs := baseBS
			if shape&0x20 != 0 {
				// Misaligned table: per-column block sizes.
				bs = blockSizes[(int(shape)+ci)%len(blockSizes)]
			}
			col, err := lwcomp.Encode(data[ci],
				lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(workers))
			if err != nil {
				t.Fatalf("Encode %s: %v", names[ci], err)
			}
			cols = append(cols, lwcomp.NamedColumn{Name: names[ci], Col: col})
		}
		tbl, err := lwcomp.NewTable(cols)
		if err != nil {
			t.Fatalf("NewTable: %v", err)
		}

		// Build the expression and its naive row-filter reference in
		// lockstep from the program bytes.
		pos := 0
		read := func() byte {
			if pos < len(prog) {
				v := prog[pos]
				pos++
				return v
			}
			return 0
		}
		// value derives a comparison bound near the column's actual
		// values, so predicates are neither always-false nor
		// always-true.
		value := func(ci int) int64 {
			return data[ci][int(read())%n] + int64(int8(read()))
		}
		var gen func(depth int) (lwcomp.Expr, func(i int) bool)
		gen = func(depth int) (lwcomp.Expr, func(i int) bool) {
			op := int(read()) % 6
			if depth >= 3 {
				op %= 3 // force a leaf
			}
			ci := int(read()) % 3
			col, d := names[ci], data[ci]
			switch op {
			case 0: // range (possibly inverted: matches nothing)
				lo, hi := value(ci), value(ci)
				return lwcomp.Range(col, lo, hi),
					func(i int) bool { return d[i] >= lo && d[i] <= hi }
			case 1:
				v := value(ci)
				return lwcomp.Eq(col, v), func(i int) bool { return d[i] == v }
			case 2:
				k := 1 + int(read())%4
				vals := make([]int64, k)
				for j := range vals {
					vals[j] = value(ci)
				}
				return lwcomp.In(col, vals...), func(i int) bool {
					for _, v := range vals {
						if d[i] == v {
							return true
						}
					}
					return false
				}
			case 3:
				k, kr := gen(depth + 1)
				return lwcomp.Not(k), func(i int) bool { return !kr(i) }
			case 4:
				k1, r1 := gen(depth + 1)
				k2, r2 := gen(depth + 1)
				return lwcomp.And(k1, k2), func(i int) bool { return r1(i) && r2(i) }
			default:
				k1, r1 := gen(depth + 1)
				k2, r2 := gen(depth + 1)
				return lwcomp.Or(k1, k2), func(i int) bool { return r1(i) || r2(i) }
			}
		}
		expr, ref := gen(0)

		wantRows := []int64{}
		var wantSum int64
		wantVals := []int64{}
		for i := 0; i < n; i++ {
			if ref(i) {
				wantRows = append(wantRows, int64(i))
				wantSum += data[2][i]
				wantVals = append(wantVals, data[2][i])
			}
		}

		scan, err := tbl.Scan(expr)
		if err != nil {
			t.Fatalf("Scan(%s): %v", expr, err)
		}
		defer scan.Release()
		if got := scan.Rows(); !equal(got, wantRows) {
			t.Fatalf("Scan(%s): got %d rows, want %d (bs=%d workers=%d aligned=%v)",
				expr, len(got), len(wantRows), baseBS, workers, tbl.Aligned())
		}
		if got := scan.Count(); got != len(wantRows) {
			t.Fatalf("Count = %d, want %d", got, len(wantRows))
		}
		gotSum, err := scan.Sum("c")
		if err != nil {
			t.Fatalf("Sum: %v", err)
		}
		if gotSum != wantSum {
			t.Fatalf("Sum(%s) = %d, want %d", expr, gotSum, wantSum)
		}
		gotVals, err := scan.Materialize("c")
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		if !equal(gotVals, wantVals) {
			t.Fatalf("Materialize(%s): %d values, want %d", expr, len(gotVals), len(wantVals))
		}

		// The parser round-trips the rendered expression to the same
		// row set.
		back, err := lwcomp.ParsePredicate(expr.String())
		if err != nil {
			t.Fatalf("ParsePredicate(%q): %v", expr, err)
		}
		scan2, err := tbl.Scan(back)
		if err != nil {
			t.Fatalf("Scan(parsed %q): %v", expr, err)
		}
		defer scan2.Release()
		if scan2.Count() != len(wantRows) {
			t.Fatalf("parsed scan = %d rows, want %d", scan2.Count(), len(wantRows))
		}
	})
}

// FuzzFusedSchemeEquivalence asserts the fused scan+aggregate path —
// CountWhere, SumWhere and Aggregate, including the leaf fast paths
// that answer Range/Eq/In on the packed words without a selection —
// agrees exactly with both naive decompress-then-filter and the
// classic Scan → Count → Sum pipeline. The mode bits steer the data
// generator toward different scheme families (low-cardinality → dict
// and RLE, signed walk → model and FOR, wide → shifted NS, sorted →
// linear, constant-with-outliers → RPE), so every fused kernel family
// faces its own scheme.
func FuzzFusedSchemeEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), int64(1), int64(6))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(17), int64(-40), int64(40))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(34), int64(1<<22), int64(200)<<22)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(51), int64(0), int64(0))
	f.Add([]byte{7, 7, 7, 7, 200, 7, 7, 7, 7, 7, 7, 90}, uint8(68), int64(7), int64(7))

	f.Fuzz(func(t *testing.T, raw []byte, shape uint8, lo, hi int64) {
		if len(raw) == 0 || len(raw) > 1024 {
			return
		}
		n := len(raw)
		v := make([]int64, n) // predicate + fused-sum column
		w := make([]int64, n) // second column: forces the selection path
		var acc int64
		for i, b := range raw {
			switch shape >> 4 & 7 {
			case 0: // low cardinality → dict / RLE
				v[i] = int64(b & 7)
			case 1: // signed random walk → model / FOR
				acc += int64(int8(b))
				v[i] = acc
			case 2: // wide values → shifted NS
				v[i] = int64(b) << 22
			case 3: // non-decreasing → linear / delta
				acc += int64(b)
				v[i] = acc
			default: // constant with rare outliers → RPE
				v[i] = 7
				if b > 250 {
					v[i] = int64(b) << 10
				}
			}
			w[i] = int64(b) - 128
		}
		blockSizes := []int{0, 7, 64, 100}
		bs := blockSizes[int(shape)%len(blockSizes)]
		workers := 1 + int(shape>>6) // 1..4
		var cols []lwcomp.NamedColumn
		for _, c := range []struct {
			name string
			data []int64
		}{{"v", v}, {"w", w}} {
			col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(workers))
			if err != nil {
				t.Fatalf("Encode %s: %v", c.name, err)
			}
			cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
		}
		tbl, err := lwcomp.NewTable(cols)
		if err != nil {
			t.Fatalf("NewTable: %v", err)
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		inVals := []int64{v[int(shape)%n], v[(int(shape)+n/2)%n] + 1, lo}

		for _, tc := range []struct {
			expr lwcomp.Expr
			ref  func(int) bool
		}{
			{lwcomp.Range("v", lo, hi), func(i int) bool { return v[i] >= lo && v[i] <= hi }},
			{lwcomp.Eq("v", lo), func(i int) bool { return v[i] == lo }},
			{lwcomp.In("v", inVals...), func(i int) bool {
				for _, x := range inVals {
					if v[i] == x {
						return true
					}
				}
				return false
			}},
			{lwcomp.And(lwcomp.Range("v", lo, hi), lwcomp.Range("w", -64, 64)),
				func(i int) bool { return v[i] >= lo && v[i] <= hi && w[i] >= -64 && w[i] <= 64 }},
		} {
			var wantCnt, wantSumV, wantSumW int64
			wantRows := []int64{}
			for i := 0; i < n; i++ {
				if tc.ref(i) {
					wantCnt++
					wantSumV += v[i]
					wantSumW += w[i]
					wantRows = append(wantRows, int64(i))
				}
			}

			ctx := context.Background()
			cnt, err := tbl.CountWhere(ctx, tc.expr)
			if err != nil {
				t.Fatalf("CountWhere(%s): %v", tc.expr, err)
			}
			if cnt != wantCnt {
				t.Fatalf("CountWhere(%s) = %d, want %d (bs=%d workers=%d)", tc.expr, cnt, wantCnt, bs, workers)
			}
			sumV, matched, err := tbl.SumWhere(ctx, tc.expr, "v")
			if err != nil {
				t.Fatalf("SumWhere(%s, v): %v", tc.expr, err)
			}
			if sumV != wantSumV || matched != wantCnt {
				t.Fatalf("SumWhere(%s, v) = (%d, %d), want (%d, %d)", tc.expr, sumV, matched, wantSumV, wantCnt)
			}
			sumW, _, err := tbl.SumWhere(ctx, tc.expr, "w")
			if err != nil {
				t.Fatalf("SumWhere(%s, w): %v", tc.expr, err)
			}
			if sumW != wantSumW {
				t.Fatalf("SumWhere(%s, w) = %d, want %d", tc.expr, sumW, wantSumW)
			}
			agg, err := tbl.Aggregate(ctx, tc.expr, []string{"v", "w"}, lwcomp.ScanOptions{})
			if err != nil {
				t.Fatalf("Aggregate(%s): %v", tc.expr, err)
			}
			if agg.Matched != wantCnt || agg.Sums[0] != wantSumV || agg.Sums[1] != wantSumW {
				t.Fatalf("Aggregate(%s) = (%d, %v), want (%d, [%d %d])",
					tc.expr, agg.Matched, agg.Sums, wantCnt, wantSumV, wantSumW)
			}

			// The classic pipeline agrees too — selection words included.
			scan, err := tbl.Scan(tc.expr)
			if err != nil {
				t.Fatalf("Scan(%s): %v", tc.expr, err)
			}
			if got := scan.Rows(); !equal(got, wantRows) {
				scan.Release()
				t.Fatalf("Scan(%s): %d rows, want %d", tc.expr, len(got), len(wantRows))
			}
			scanSum, err := scan.Sum("v")
			scan.Release()
			if err != nil || scanSum != sumV {
				t.Fatalf("Scan.Sum(%s) = (%d, %v), fused = %d", tc.expr, scanSum, err, sumV)
			}
		}
	})
}

// FuzzSelectRangeEquivalence asserts the compressed-scan subsystem —
// bitmap selections, fused unpack-and-compare kernels, block
// skipping, parallel block merge — answers range queries identically
// to naive decompress-then-filter, across random columns, block
// sizes, worker counts and ranges. The value mode byte steers the
// generator toward different scheme families (low-cardinality, signed
// walks, wide values, sorted) so the analyzer picks diverse per-block
// composites.
func FuzzSelectRangeEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), int64(2), int64(6))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(17), int64(-5), int64(300))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(34), int64(100), int64(110))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(51), int64(0), int64(0))
	f.Add([]byte{128, 7, 3, 200, 90, 1, 1, 1, 64, 64, 64, 32}, uint8(70), int64(1<<20), int64(1)<<30)

	f.Fuzz(func(t *testing.T, raw []byte, shape uint8, lo, hi int64) {
		if len(raw) == 0 || len(raw) > 2048 {
			return
		}
		data := make([]int64, len(raw))
		var acc int64
		for i, b := range raw {
			switch shape >> 4 & 3 {
			case 0: // low cardinality, non-negative
				data[i] = int64(b & 15)
			case 1: // signed random walk
				acc += int64(int8(b))
				data[i] = acc
			case 2: // wide values
				data[i] = int64(b) << 22
			case 3: // non-decreasing
				acc += int64(b)
				data[i] = acc
			}
		}
		blockSizes := []int{0, 7, 64, 100, 1000}
		bs := blockSizes[int(shape)%len(blockSizes)]
		workers := 1 + int(shape>>6) // 1..4
		col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(workers))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if lo > hi {
			lo, hi = hi, lo
		}

		// Naive reference: filter the raw data.
		wantRows := []int64{}
		for i, v := range data {
			if v >= lo && v <= hi {
				wantRows = append(wantRows, int64(i))
			}
		}

		rows, err := col.SelectRange(lo, hi)
		if err != nil {
			t.Fatalf("SelectRange: %v", err)
		}
		if !equal(rows, wantRows) {
			t.Fatalf("SelectRange mismatch: got %d rows, want %d (bs=%d workers=%d range=[%d,%d])",
				len(rows), len(wantRows), bs, workers, lo, hi)
		}
		count, err := col.CountRange(lo, hi)
		if err != nil {
			t.Fatalf("CountRange: %v", err)
		}
		if count != int64(len(wantRows)) {
			t.Fatalf("CountRange = %d, want %d", count, len(wantRows))
		}
		bm, err := col.SelectRangeSel(lo, hi)
		if err != nil {
			t.Fatalf("SelectRangeSel: %v", err)
		}
		if got := bm.Rows(); !equal(got, wantRows) {
			bm.Release()
			t.Fatalf("SelectRangeSel mismatch: got %d rows, want %d", len(got), len(wantRows))
		}
		bm.Release()

		// The decode path the scans are asserted against must itself
		// round-trip.
		back, err := col.Decompress()
		if err != nil || !equal(back, data) {
			t.Fatalf("Decompress roundtrip: %v", err)
		}
	})
}

// FuzzOpenCorrupt asserts the fault-tolerance contract of the whole
// read stack over arbitrary corruption: mutate any byte of a valid v3
// container, open it and query it, and nothing may panic or hang —
// every failure is a classified error (ErrCorrupt / ErrChecksum /
// ErrCorruptForm / ErrUnknownScheme / ErrQuarantined), and a degraded
// table scan over the same bytes either fails the same way or answers
// with the omission recorded in its manifest.
func FuzzOpenCorrupt(f *testing.F) {
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64((i * 31) % 257)
	}
	col, err := lwcomp.Encode(vals, lwcomp.WithBlockSize(128))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteColumns(&buf, []lwcomp.NamedColumn{{Name: "c", Col: col}}); err != nil {
		f.Fatal(err)
	}
	template := buf.Bytes()

	f.Add(uint32(0), byte(0xFF))                       // magic
	f.Add(uint32(5), byte(0x80))                       // version
	f.Add(uint32(9), byte(0x01))                       // index length
	f.Add(uint32(40), byte(0x10))                      // inside the index
	f.Add(uint32(uint32(len(template)-8)), byte(0x04)) // payload tail

	allowed := func(err error) bool {
		for _, sentinel := range []error{
			lwcomp.ErrCorrupt, lwcomp.ErrChecksum, lwcomp.ErrCorruptForm,
			lwcomp.ErrUnknownScheme, lwcomp.ErrQuarantined,
		} {
			if errors.Is(err, sentinel) {
				return true
			}
		}
		return false
	}

	f.Fuzz(func(t *testing.T, pos uint32, mut byte) {
		data := append([]byte(nil), template...)
		data[int(pos)%len(data)] ^= mut

		c, err := lwcomp.OpenReader(bytes.NewReader(data), int64(len(data)), lwcomp.WithBlockCache(-1))
		if err != nil {
			if !allowed(err) {
				t.Fatalf("open: unclassified error %v", err)
			}
		} else {
			if _, err := c.Sum(); err != nil && !allowed(err) {
				t.Fatalf("sum: unclassified error %v", err)
			}
			if _, err := c.CountRange(10, 200); err != nil && !allowed(err) {
				t.Fatalf("count: unclassified error %v", err)
			}
			// A block that failed permanently above must now be
			// quarantined: the second pass fails fast, same class.
			if _, err := c.Decompress(); err != nil && !allowed(err) {
				t.Fatalf("decompress: unclassified error %v", err)
			}
		}

		tbl, err := lwcomp.OpenTableReader(bytes.NewReader(data), int64(len(data)),
			lwcomp.WithBlockCache(-1), lwcomp.WithDegradedScan(true))
		if err != nil {
			if !allowed(err) {
				t.Fatalf("open table: unclassified error %v", err)
			}
			return
		}
		defer tbl.Close()
		scan, err := tbl.Scan(lwcomp.Range("c", 10, 200))
		if err != nil {
			if !allowed(err) {
				t.Fatalf("degraded scan: unclassified error %v", err)
			}
			return
		}
		defer scan.Release()
		if _, err := scan.Sum("c"); err != nil && !allowed(err) {
			t.Fatalf("degraded sum: unclassified error %v", err)
		}
		// Whatever was skipped is accounted for, exactly once each.
		seen := map[int]bool{}
		for _, sb := range scan.Manifest().Skipped() {
			if seen[sb.Block] && sb.Column == "c" {
				t.Fatalf("manifest lists block %d twice", sb.Block)
			}
			seen[sb.Block] = true
			if sb.RowCount <= 0 || sb.Reason == "" {
				t.Fatalf("malformed manifest entry %+v", sb)
			}
		}
	})
}
