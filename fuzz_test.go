package lwcomp_test

import (
	"testing"

	"lwcomp"
)

// FuzzSelectRangeEquivalence asserts the compressed-scan subsystem —
// bitmap selections, fused unpack-and-compare kernels, block
// skipping, parallel block merge — answers range queries identically
// to naive decompress-then-filter, across random columns, block
// sizes, worker counts and ranges. The value mode byte steers the
// generator toward different scheme families (low-cardinality, signed
// walks, wide values, sorted) so the analyzer picks diverse per-block
// composites.
func FuzzSelectRangeEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), int64(2), int64(6))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(17), int64(-5), int64(300))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(34), int64(100), int64(110))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(51), int64(0), int64(0))
	f.Add([]byte{128, 7, 3, 200, 90, 1, 1, 1, 64, 64, 64, 32}, uint8(70), int64(1<<20), int64(1)<<30)

	f.Fuzz(func(t *testing.T, raw []byte, shape uint8, lo, hi int64) {
		if len(raw) == 0 || len(raw) > 2048 {
			return
		}
		data := make([]int64, len(raw))
		var acc int64
		for i, b := range raw {
			switch shape >> 4 & 3 {
			case 0: // low cardinality, non-negative
				data[i] = int64(b & 15)
			case 1: // signed random walk
				acc += int64(int8(b))
				data[i] = acc
			case 2: // wide values
				data[i] = int64(b) << 22
			case 3: // non-decreasing
				acc += int64(b)
				data[i] = acc
			}
		}
		blockSizes := []int{0, 7, 64, 100, 1000}
		bs := blockSizes[int(shape)%len(blockSizes)]
		workers := 1 + int(shape>>6) // 1..4
		col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(bs), lwcomp.WithParallelism(workers))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if lo > hi {
			lo, hi = hi, lo
		}

		// Naive reference: filter the raw data.
		wantRows := []int64{}
		for i, v := range data {
			if v >= lo && v <= hi {
				wantRows = append(wantRows, int64(i))
			}
		}

		rows, err := col.SelectRange(lo, hi)
		if err != nil {
			t.Fatalf("SelectRange: %v", err)
		}
		if !equal(rows, wantRows) {
			t.Fatalf("SelectRange mismatch: got %d rows, want %d (bs=%d workers=%d range=[%d,%d])",
				len(rows), len(wantRows), bs, workers, lo, hi)
		}
		count, err := col.CountRange(lo, hi)
		if err != nil {
			t.Fatalf("CountRange: %v", err)
		}
		if count != int64(len(wantRows)) {
			t.Fatalf("CountRange = %d, want %d", count, len(wantRows))
		}
		bm, err := col.SelectRangeSel(lo, hi)
		if err != nil {
			t.Fatalf("SelectRangeSel: %v", err)
		}
		if got := bm.Rows(); !equal(got, wantRows) {
			bm.Release()
			t.Fatalf("SelectRangeSel mismatch: got %d rows, want %d", len(got), len(wantRows))
		}
		bm.Release()

		// The decode path the scans are asserted against must itself
		// round-trip.
		back, err := col.Decompress()
		if err != nil || !equal(back, data) {
			t.Fatalf("Decompress roundtrip: %v", err)
		}
	})
}
