package lwcomp

import (
	"io"

	"lwcomp/internal/storage"
	"lwcomp/internal/table"
)

// This file is the table scan surface: composable predicates over the
// columns of a multi-column container, planned per block and pushed
// down onto the compressed forms, with late materialization of the
// survivors.
//
//	tbl, err := lwcomp.OpenTable("orders.lwc")
//	defer tbl.Close()
//	scan, err := tbl.Scan(lwcomp.And(
//	    lwcomp.Range("date", 730200, 730400),
//	    lwcomp.Eq("status", 1)))
//	defer scan.Release()
//	n := scan.Count()
//	revenue, err := scan.Sum("amount")
//
// Blocks any conjunct's [min, max] stats refute are skipped without
// fetching a single column payload; blocks the stats prove emit whole
// bitmap runs; only the undecided remainder evaluates, leaf by leaf
// on each leaf's own compressed column, intersecting as word-granular
// bitmap ANDs. On a lazily opened container that turns a selective
// multi-column scan into a handful of block reads.

// Table is a queryable handle over the equal-length named columns of
// one logical table. Scans plan predicate trees per block across all
// referenced columns when the columns share block boundaries (columns
// encoded with one block size from equal-length inputs always do);
// otherwise they fall back to whole-column evaluation, which is still
// exact and fused but skips less.
type Table = table.Table

// Scan is the result handle of Table.Scan: the surviving rows as a
// pooled bitmap selection plus projection and aggregation methods
// (Rows, Count, Sum, Materialize) that fetch and decode only the
// blocks still holding set bits. Release it when done.
type Scan = table.Scan

// ScanOptions configures one scan's failure handling — pass it to
// Table.ScanWith to run a single scan degraded (or fail-fast)
// regardless of the table's WithDegradedScan default.
type ScanOptions = table.ScanOptions

// DegradationManifest is the exact record of what a degraded scan
// omitted: one SkippedBlock per unreadable (column, block), with the
// row range the omission removed from the result. Scan.Manifest
// returns it; it stays valid after the scan is released.
type DegradationManifest = table.Manifest

// SkippedBlock describes one block a degraded scan omitted — the
// column, block index, omitted row range, and the permanent error
// that condemned it.
type SkippedBlock = table.SkippedBlock

// AggregateResult is what Table.Aggregate returns: the matched-row
// count, the per-column sums (parallel to the requested columns), and
// — when the aggregate ran degraded — the manifest of skipped blocks.
// Aggregate, CountWhere and SumWhere are the fused alternative to
// Scan + Count + Sum: one pass over the compressed blocks that never
// materializes the scan's selection.
type AggregateResult = table.AggregateResult

// Expr is a composable predicate over a table's columns: Range, Eq
// and In leaves under And, Or and Not combinators. Expressions are
// immutable, reusable across scans and tables, and render back to the
// ParsePredicate mini-language via String.
type Expr = table.Expr

// NewTable builds an in-memory table over cols. Every column must be
// non-nil, uniquely named, and of the same length.
func NewTable(cols []NamedColumn) (*Table, error) {
	return table.New(cols, nil)
}

// NewTableWithClosers builds a table whose columns come from several
// open containers — a server mounting one single-column container per
// column, for example. Close releases every closer exactly once, no
// matter how many times (or from how many goroutines) it is called.
func NewTableWithClosers(cols []NamedColumn, closers ...io.Closer) (*Table, error) {
	return table.NewWithClosers(cols, closers...)
}

// OpenTable opens a container file as a lazily backed table: only the
// header and block index are read, and scans fetch exactly the blocks
// their predicate stats admit. All open options apply (WithBlockCache,
// WithMmap, WithParallelism); Close the table to release the file.
func OpenTable(path string, opts ...Option) (*Table, error) {
	o := buildOptions(opts)
	cf, err := storage.OpenContainerFile(path, o.openOptions())
	if err != nil {
		return nil, err
	}
	applyColumnOptions(cf, &o)
	t, err := table.New(cf.Columns(), cf)
	if err != nil {
		cf.Close()
		return nil, err
	}
	t.Degraded = o.degraded
	return t, nil
}

// OpenTableReader opens a container from any io.ReaderAt covering
// size bytes as a table, with OpenTable's semantics — the instrument
// for tests that count how few bytes a pushed-down scan reads. If r
// also implements io.Closer, closing the table closes it.
func OpenTableReader(r io.ReaderAt, size int64, opts ...Option) (*Table, error) {
	o := buildOptions(opts)
	cf, err := storage.OpenContainer(r, size, o.openOptions())
	if err != nil {
		return nil, err
	}
	applyColumnOptions(cf, &o)
	t, err := table.New(cf.Columns(), cf)
	if err != nil {
		cf.Close()
		return nil, err
	}
	t.Degraded = o.degraded
	return t, nil
}

// Range returns the predicate lo ≤ col ≤ hi (inclusive). Use
// math.MinInt64 / math.MaxInt64 for one-sided comparisons; an
// inverted range matches nothing.
func Range(col string, lo, hi int64) Expr { return table.Range(col, lo, hi) }

// Eq returns the predicate col == v.
func Eq(col string, v int64) Expr { return table.Eq(col, v) }

// In returns the predicate col ∈ vals; runs of consecutive values
// evaluate as single range probes. In with no values matches nothing.
func In(col string, vals ...int64) Expr { return table.In(col, vals...) }

// And returns the conjunction of kids. The planner skips any block a
// conjunct's stats refute without fetching the other columns, and
// within an undecided block evaluates the most selective-looking leaf
// first, abandoning the block as soon as the intersection is empty.
// And() with no operands matches every row.
func And(kids ...Expr) Expr { return table.And(kids...) }

// Or returns the disjunction of kids; per-column results merge as
// word-granular bitmap ORs. Or() with no operands matches nothing.
func Or(kids ...Expr) Expr { return table.Or(kids...) }

// Not returns the negation of kid, evaluated as a word-granular
// bitmap complement.
func Not(kid Expr) Expr { return table.Not(kid) }

// ParseError is the structured error ParsePredicate returns for
// input outside the mini-language: the message, the byte offset of
// the offending token, and the token's text. Extract it with
// errors.As to surface the offset to users (a 400 body, an editor
// caret); its Error() string includes both fields.
type ParseError = table.ParseError

// ParsePredicate reads a predicate in the scan mini-language — the
// textual form `lwc query -where` accepts and Expr.String renders:
//
//	date >= 730200 and date <= 730400 and status = 1
//	status in (1, 2) or not (amount < 0)
//
// Comparisons (= == != < <= > >=) and in-lists form the leaves;
// and/or/not (case-insensitive, and binding tighter than or) combine
// them; parentheses group.
func ParsePredicate(s string) (Expr, error) { return table.Parse(s) }
