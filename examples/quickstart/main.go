// Quickstart: encode a column into a blocked handle, inspect the
// per-block composite schemes the analyzer chose, decompress, and
// run queries without decompressing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	// A shipped-orders date column (the paper's §I motivating
	// example): monotone day numbers with long runs.
	dates := workload.OrderShipDates(1_000_000, 64, 730120, 1)

	// Encode into 64Ki-value blocks; every block runs its own
	// composite-scheme search, concurrently.
	col, err := lwcomp.Encode(dates,
		lwcomp.WithBlockSize(1<<16),
		lwcomp.WithParallelism(0), // GOMAXPROCS
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schemes: %s\n", col.Describe())
	fmt.Printf("size:    %d bytes (raw %d) — ratio %.1f×\n",
		col.EncodedBits()/8, len(dates)*8,
		float64(len(dates)*8)/float64(col.EncodedBits()/8))

	// Lossless round trip (blocks decode in parallel).
	back, err := col.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	for i := range dates {
		if back[i] != dates[i] {
			log.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	fmt.Println("roundtrip: exact")

	// Query the compressed column directly — no decompression. The
	// per-block [min, max] index answers range predicates without
	// touching blocks outside the range.
	total, err := col.Sum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(dates) on compressed column = %d\n", total)

	lo, hi := dates[1000], dates[2000]
	count, err := col.CountRange(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	skipped, whole, consulted := col.SkipStats(lo, hi)
	fmt.Printf("count(%d ≤ d ≤ %d) = %d (blocks: %d skipped, %d whole, %d consulted)\n",
		lo, hi, count, skipped, whole, consulted)

	v, err := col.PointLookup(500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dates[500000] = %d (binary search over the block index)\n", v)
}
