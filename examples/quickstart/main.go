// Quickstart: compress a column, inspect the chosen composite scheme,
// decompress it, and run a query without decompressing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	// A shipped-orders date column (the paper's §I motivating
	// example): monotone day numbers with long runs.
	dates := workload.OrderShipDates(1_000_000, 64, 730120, 1)

	// Let the analyzer search the composite-scheme space.
	choice, err := lwcomp.CompressBestChoice(dates)
	if err != nil {
		log.Fatal(err)
	}
	form := choice.Form
	size, err := lwcomp.EncodedSize(form)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme:  %s\n", form.Describe())
	fmt.Printf("size:    %d bytes (raw %d) — ratio %.1f×\n",
		size, len(dates)*8, float64(len(dates)*8)/float64(size))

	// Lossless round trip.
	back, err := lwcomp.Decompress(form)
	if err != nil {
		log.Fatal(err)
	}
	for i := range dates {
		if back[i] != dates[i] {
			log.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	fmt.Println("roundtrip: exact")

	// Query the compressed form directly — no decompression.
	total, err := lwcomp.Sum(form)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(dates) on compressed form = %d\n", total)

	lo, hi := dates[1000], dates[2000]
	count, err := lwcomp.CountRange(form, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count(%d ≤ d ≤ %d) = %d\n", lo, hi, count)
}
