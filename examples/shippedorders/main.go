// Shipped orders: the paper's §I scenario end to end, on the
// blocked Column API.
//
// "A table holds shipped order details, with a date column. Data
// accrues over time, so the dates form a monotone-increasing sequence
// with long runs for the orders shipped every day. Applying an RLE
// scheme to the dates, then applying DELTA to the run values,
// achieves a much stronger compression ratio than any single scheme
// individually."
//
// This example builds the whole order table (date, quantity, customer
// and a sorted order id), ingests it in batches through streaming
// ColumnBuilders (orders accrue over time — exactly the builder's
// case), writes a blocked (v2) container file, reads it back and runs
// analytics on the compressed columns with block skipping.
//
//	go run ./examples/shippedorders
package main

import (
	"bytes"
	"fmt"
	"log"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	const n = 500_000
	const batch = 25_000 // orders arrive in daily batches

	// The order table's columns.
	shipDate := workload.OrderShipDates(n, 64, 730120, 7) // runs of equal days
	quantity := workload.UniformBits(n, 6, 8)             // 0..63 items per order
	for i := range quantity {
		quantity[i]++ // 1..64
	}
	customer := workload.LowCardinality(n, 1000, 9) // 1000 customers, Zipf
	orderID := workload.Sorted(n, 1<<40, 10)        // sorted surrogate keys

	// Ingest: the paper's composition pinned for dates, per-block
	// analyzer choice for the rest. Each builder compresses blocks
	// in the background as batches arrive.
	table := []struct {
		name string
		data []int64
		opts []lwcomp.Option
	}{
		{"ship_date", shipDate, []lwcomp.Option{lwcomp.WithScheme(lwcomp.RLEDeltaNS())}},
		{"quantity", quantity, nil},
		{"customer", customer, nil},
		{"order_id", orderID, nil},
	}

	var cols []lwcomp.NamedColumn
	fmt.Printf("%-10s %-8s %-60s\n", "column", "blocks", "schemes")
	for _, c := range table {
		opts := append([]lwcomp.Option{lwcomp.WithBlockSize(1 << 16)}, c.opts...)
		b := lwcomp.NewColumnBuilder(opts...)
		for i := 0; i < n; i += batch {
			end := i + batch
			if end > n {
				end = n
			}
			if err := b.Append(c.data[i:end]); err != nil {
				log.Fatalf("%s: %v", c.name, err)
			}
		}
		col, err := b.Flush()
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("%-10s %-8d ratio %.1f×\n%s\n", c.name, col.NumBlocks(),
			float64(n*8)/float64(col.EncodedBits()/8), col.Describe())
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}

	// Persist and reload the whole table as a v2 (blocked) container.
	var file bytes.Buffer
	if err := lwcomp.WriteColumns(&file, cols); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontainer: %d bytes for %d rows × 4 columns (raw %d bytes)\n",
		file.Len(), n, n*8*4)

	loaded, err := lwcomp.ReadColumns(bytes.NewReader(file.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// Analytics on the compressed columns.
	byName := map[string]*lwcomp.Column{}
	for _, c := range loaded {
		byName[c.Name] = c.Col
	}

	// Q1: total quantity shipped (SUM on compressed).
	totalQty, err := byName["quantity"].Sum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ1  total quantity shipped:          %d\n", totalQty)

	// Q2: how many orders shipped in a 30-day window. The block
	// index answers most of it without decoding: dates are monotone,
	// so nearly every block misses the window or lies inside it.
	lo := shipDate[n/3]
	hi := lo + 30
	cnt, err := byName["ship_date"].CountRange(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	skipped, whole, consulted := byName["ship_date"].SkipStats(lo, hi)
	fmt.Printf("Q2  orders with %d ≤ ship_date ≤ %d: %d (blocks: %d skipped, %d whole, %d consulted)\n",
		lo, hi, cnt, skipped, whole, consulted)

	// Q3: point lookup by row position (binary search over the block
	// index, then the block's random-access path).
	row := int64(n / 2)
	d, err := byName["ship_date"].PointLookup(row)
	if err != nil {
		log.Fatal(err)
	}
	q, err := byName["quantity"].PointLookup(row)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q3  order at row %d: ship_date=%d quantity=%d\n", row, d, q)

	// Verify everything round-trips exactly.
	for _, c := range table {
		back, err := byName[c.name].Decompress()
		if err != nil {
			log.Fatal(err)
		}
		for i := range c.data {
			if back[i] != c.data[i] {
				log.Fatalf("%s: mismatch at row %d", c.name, i)
			}
		}
	}
	fmt.Println("\nall columns verified lossless")
}
