// Shipped orders: the paper's §I scenario end to end.
//
// "A table holds shipped order details, with a date column. Data
// accrues over time, so the dates form a monotone-increasing sequence
// with long runs for the orders shipped every day. Applying an RLE
// scheme to the dates, then applying DELTA to the run values,
// achieves a much stronger compression ratio than any single scheme
// individually."
//
// This example builds the whole order table (date, quantity, customer
// and a sorted order id), compresses each column with an appropriate
// (composite) scheme, writes a container file, reads it back and runs
// analytics on the compressed columns.
//
//	go run ./examples/shippedorders
package main

import (
	"bytes"
	"fmt"
	"log"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	const n = 500_000

	// The order table's columns.
	shipDate := workload.OrderShipDates(n, 64, 730120, 7) // runs of equal days
	quantity := workload.UniformBits(n, 6, 8)             // 0..63 items per order
	for i := range quantity {
		quantity[i]++ // 1..64
	}
	customer := workload.LowCardinality(n, 1000, 9) // 1000 customers, Zipf
	orderID := workload.Sorted(n, 1<<40, 10)        // sorted surrogate keys

	// Compress: the paper's composition for dates, analyzer choice
	// for the rest.
	table := []struct {
		name   string
		data   []int64
		scheme lwcomp.Scheme // nil = analyzer
	}{
		{"ship_date", shipDate, lwcomp.RLEDeltaNS()},
		{"quantity", quantity, nil},
		{"customer", customer, nil},
		{"order_id", orderID, nil},
	}

	var cols []lwcomp.StoredColumn
	fmt.Printf("%-10s %-45s %12s %8s\n", "column", "scheme", "bytes", "ratio")
	for _, c := range table {
		var form *lwcomp.Form
		var err error
		if c.scheme != nil {
			form, err = c.scheme.Compress(c.data)
		} else {
			form, err = lwcomp.CompressBest(c.data)
		}
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		size, err := lwcomp.EncodedSize(form)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-45s %12d %8.1f\n",
			c.name, form.Describe(), size, float64(n*8)/float64(size))
		cols = append(cols, lwcomp.StoredColumn{Name: c.name, Form: form})
	}

	// Persist and reload the whole table.
	var file bytes.Buffer
	if err := lwcomp.WriteContainer(&file, cols); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontainer: %d bytes for %d rows × 4 columns (raw %d bytes)\n",
		file.Len(), n, n*8*4)

	loaded, err := lwcomp.ReadContainer(bytes.NewReader(file.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// Analytics on the compressed columns.
	byName := map[string]*lwcomp.Form{}
	for _, c := range loaded {
		byName[c.Name] = c.Form
	}

	// Q1: total quantity shipped (SUM on compressed).
	totalQty, err := lwcomp.Sum(byName["quantity"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ1  total quantity shipped:          %d\n", totalQty)

	// Q2: how many orders shipped in a 30-day window (range count on
	// the run-structured date column — touches runs, not rows).
	lo := shipDate[n/3]
	hi := lo + 30
	cnt, err := lwcomp.CountRange(byName["ship_date"], lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2  orders with %d ≤ ship_date ≤ %d: %d\n", lo, hi, cnt)

	// Q3: point lookup by row position.
	row := int64(n / 2)
	d, err := lwcomp.PointLookup(byName["ship_date"], row)
	if err != nil {
		log.Fatal(err)
	}
	q, err := lwcomp.PointLookup(byName["quantity"], row)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q3  order at row %d: ship_date=%d quantity=%d\n", row, d, q)

	// Verify everything round-trips exactly.
	for _, c := range table {
		back, err := lwcomp.Decompress(byName[c.name])
		if err != nil {
			log.Fatal(err)
		}
		for i := range c.data {
			if back[i] != c.data[i] {
				log.Fatalf("%s: mismatch at row %d", c.name, i)
			}
		}
	}
	fmt.Println("\nall columns verified lossless")
}
