// Compressed scan: "there is no clear distinction between
// decompression and analytic query execution" (paper, Lessons 1).
//
// This example shows the same range query answered four ways over a
// FOR-compressed sensor column:
//
//  1. decompress everything, then filter (the classical pipeline);
//  2. run the decompression *as an operator plan* and filter its
//     output (decompression literally is a query plan — Algorithm 2);
//  3. prune segments with the FOR model and decode only boundary
//     segments (selection pushed *into* the compressed form);
//  4. partition the column into blocks and let the per-block
//     [min, max] index skip whole blocks before FOR pruning even
//     starts (the blocked Column handle).
//
// All four return identical rows; the later ones touch a shrinking
// fraction of the data.
//
//	go run ./examples/compressedscan
package main

import (
	"fmt"
	"log"
	"time"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	const n = 2_000_000
	// A sorted column (e.g. event timestamps): range queries hit
	// contiguous rows and the step-function model prunes hard.
	values := workload.Sorted(n, 1<<40, 3)

	form, err := lwcomp.FORNS(1024).Compress(values)
	if err != nil {
		log.Fatal(err)
	}
	size, _ := lwcomp.EncodedSize(form)
	fmt.Printf("column: %d rows, FOR[1024]+NS, %d bytes (ratio %.1f×)\n\n",
		n, size, float64(n*8)/float64(size))

	lo := values[n/2]
	hi := values[n/2+n/100] // ≈1% selectivity

	// 1. Decompress, then filter.
	t0 := time.Now()
	col, err := lwcomp.Decompress(form)
	if err != nil {
		log.Fatal(err)
	}
	var rows1 []int64
	for i, v := range col {
		if v >= lo && v <= hi {
			rows1 = append(rows1, int64(i))
		}
	}
	d1 := time.Since(t0)

	// 2. Decompression as an operator plan (Algorithm 2), then
	// filter. Same answer; the "decompression" here is six plan
	// nodes of ordinary columnar operators.
	t0 = time.Now()
	plan, env, err := lwcomp.PlanOf(form)
	if err != nil {
		log.Fatal(err)
	}
	_ = env
	col2, err := lwcomp.DecompressViaPlan(form, true)
	if err != nil {
		log.Fatal(err)
	}
	var rows2 []int64
	for i, v := range col2 {
		if v >= lo && v <= hi {
			rows2 = append(rows2, int64(i))
		}
	}
	d2 := time.Since(t0)

	// 3. Selection pushed into the compressed form: segment pruning.
	t0 = time.Now()
	rows3, err := lwcomp.SelectRange(form, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	d3 := time.Since(t0)

	// 4. The blocked Column handle: 16Ki-value blocks, each carrying
	// [min, max] stats. Blocks outside the range are skipped without
	// touching their payload; only straddling blocks run FOR pruning.
	blockedCol, err := lwcomp.Encode(values,
		lwcomp.WithBlockSize(1<<14),
		lwcomp.WithScheme(lwcomp.FORNS(1024)))
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	rows4, err := blockedCol.SelectRange(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	d4 := time.Since(t0)
	skipped, whole, consulted := blockedCol.SkipStats(lo, hi)

	for _, other := range [][]int64{rows2, rows3, rows4} {
		if len(rows1) != len(other) {
			log.Fatalf("row counts differ: %d vs %d", len(rows1), len(other))
		}
		for i := range rows1 {
			if rows1[i] != other[i] {
				log.Fatalf("row mismatch at %d", i)
			}
		}
	}

	fmt.Printf("query: %d ≤ v ≤ %d → %d rows (%.2f%% selectivity)\n\n",
		lo, hi, len(rows1), 100*float64(len(rows1))/float64(n))
	fmt.Printf("decompress + filter:        %8.2fms\n", d1.Seconds()*1e3)
	fmt.Printf("operator plan + filter:     %8.2fms  (plan: %d ops — Algorithm 2)\n",
		d2.Seconds()*1e3, len(plan.Nodes))
	fmt.Printf("pruned compressed select:   %8.2fms  (%.1f× vs decompress+filter)\n",
		d3.Seconds()*1e3, d1.Seconds()/d3.Seconds())
	fmt.Printf("blocked select w/ skipping: %8.2fms  (%.1f× vs decompress+filter; %d/%d blocks skipped, %d whole, %d consulted)\n",
		d4.Seconds()*1e3, d1.Seconds()/d4.Seconds(),
		skipped, blockedCol.NumBlocks(), whole, consulted)
}
