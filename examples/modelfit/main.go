// Model fitting: the paper's §II-B generalizations in action, on
// the blocked Column API.
//
// A metering column (rising trend + noise + rare spikes) is
// compressed under progressively richer models:
//
//   - FOR            = step-function model + NS residuals (L∞)
//   - LINEAR + NS    = piecewise-linear model (the paper's "diagonal
//     line at some slope")
//   - PFOR           = step model + NS + L0 patches for the spikes
//
// and then queried approximately: the model alone gives certain
// bounds on SUM, refined gradually to exactness — the paper's
// "approximate or gradual-refinement query processing". Finally the
// size-vs-decompression-cost knob (WithCostBudget) shows the
// bicriteria trade-off as a first-class per-column option.
//
//	go run ./examples/modelfit
package main

import (
	"fmt"
	"log"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	const n = 1 << 20

	// Sensor readings: slope 8 per tick, ±12 noise.
	base := workload.TrendNoise(n, 8, 12, 5)

	ladder := func(title string, data []int64, schemes []lwcomp.Scheme) {
		fmt.Println(title)
		fmt.Printf("%-28s %12s %8s\n", "scheme", "bytes", "ratio")
		for _, s := range schemes {
			col, err := lwcomp.Encode(data, lwcomp.WithScheme(s))
			if err != nil {
				log.Fatal(err)
			}
			back, err := col.Decompress()
			if err != nil {
				log.Fatal(err)
			}
			for i := range data {
				if back[i] != data[i] {
					log.Fatalf("%s: lossy at %d", s.Name(), i)
				}
			}
			size := int(col.EncodedBits() / 8)
			fmt.Printf("%-28s %12d %8.1f\n", s.Name(), size, float64(n*8)/float64(size))
		}
		fmt.Println()
	}

	// On the smooth trend, a horizontal step model pays log2(slope·ℓ)
	// bits per offset; a linear model pays only the noise width.
	ladder("smooth trend (slope 8, noise ±12): step vs linear model",
		base, []lwcomp.Scheme{
			lwcomp.NS(),
			lwcomp.FORNS(1024),
			lwcomp.LinearNS(1024),
		})

	// Add rare spikes (0.1%): any pure L∞ model is ruined — the L0
	// patch combinator isolates them.
	readings := make([]int64, n)
	copy(readings, base)
	for i := 500; i < n; i += 1000 {
		readings[i] += 1 << 30
	}
	ladder("same trend + 0.1% spikes of 2^30: patches restore the model",
		readings, []lwcomp.Scheme{
			lwcomp.FORNS(1024),
			lwcomp.PFOR(1024),
		})

	// Approximate aggregation on the smooth part, over a *blocked*
	// column: per-block model bounds aggregate by interval
	// arithmetic, no offsets decoded anywhere.
	smooth := base
	col, err := lwcomp.Encode(smooth,
		lwcomp.WithBlockSize(1<<16),
		lwcomp.WithScheme(lwcomp.FORNS(1024)))
	if err != nil {
		log.Fatal(err)
	}
	var truth int64
	for _, v := range smooth {
		truth += v
	}

	iv, err := col.ApproxSum()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate SUM from the step models only (%d blocks, no offsets decoded):\n", col.NumBlocks())
	fmt.Printf("  sum ∈ [%d, %d], midpoint off by %.4f%%\n",
		iv.Lower, iv.Upper,
		100*abs(float64(iv.Estimate()-truth))/float64(truth))

	// Gradual refinement runs at form level on one block's FOR form.
	form, err := lwcomp.FORNS(1024).Compress(smooth)
	if err != nil {
		log.Fatal(err)
	}
	g, err := lwcomp.NewGradualSummer(form)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngradual refinement (segments decoded → interval width):")
	fmt.Printf("  %4d/%4d segments: width %d\n", g.Refined(), g.Segments(), g.Bounds().Width())
	for !g.Done() {
		if _, err := g.Refine(g.Segments() / 4); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d/%4d segments: width %d\n", g.Refined(), g.Segments(), g.Bounds().Width())
	}
	final := g.Bounds()
	if final.Lower != truth || final.Width() != 0 {
		log.Fatalf("gradual sum did not converge: %+v vs %d", final, truth)
	}
	fmt.Printf("  exact sum recovered: %d\n", final.Lower)

	// The bicriteria knob: unconstrained, the analyzer may pick a
	// slow-but-small scheme; under a cost budget it trades size for
	// decompression speed — per column, per block.
	skewed := workload.SkewedMagnitude(n, 40, 6)
	free, err := lwcomp.Encode(skewed, lwcomp.WithBlockSize(1<<16))
	if err != nil {
		log.Fatal(err)
	}
	budgeted, err := lwcomp.Encode(skewed, lwcomp.WithBlockSize(1<<16), lwcomp.WithCostBudget(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbicriteria knob on skewed-width data (40-bit tail):\n")
	fmt.Printf("  unconstrained: %8d bytes — %s\n", free.EncodedBits()/8, firstLine(free.Describe()))
	fmt.Printf("  cost ≤ 4/elem: %8d bytes — %s\n", budgeted.EncodedBits()/8, firstLine(budgeted.Describe()))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
