// Model fitting: the paper's §II-B generalizations in action.
//
// A metering column (rising trend + noise + rare spikes) is
// compressed under progressively richer models:
//
//   - FOR            = step-function model + NS residuals (L∞)
//   - LINEAR + NS    = piecewise-linear model (the paper's "diagonal
//     line at some slope")
//   - PFOR           = step model + NS + L0 patches for the spikes
//
// and then queried approximately: the model alone gives certain
// bounds on SUM, refined gradually to exactness — the paper's
// "approximate or gradual-refinement query processing".
//
//	go run ./examples/modelfit
package main

import (
	"fmt"
	"log"

	"lwcomp"
	"lwcomp/internal/workload"
)

func main() {
	const n = 1 << 20

	// Sensor readings: slope 8 per tick, ±12 noise.
	base := workload.TrendNoise(n, 8, 12, 5)

	ladder := func(title string, data []int64, schemes []lwcomp.Scheme) {
		fmt.Println(title)
		fmt.Printf("%-28s %12s %8s\n", "scheme", "bytes", "ratio")
		for _, s := range schemes {
			form, err := s.Compress(data)
			if err != nil {
				log.Fatal(err)
			}
			back, err := lwcomp.Decompress(form)
			if err != nil {
				log.Fatal(err)
			}
			for i := range data {
				if back[i] != data[i] {
					log.Fatalf("%s: lossy at %d", s.Name(), i)
				}
			}
			size, err := lwcomp.EncodedSize(form)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s %12d %8.1f\n", s.Name(), size, float64(n*8)/float64(size))
		}
		fmt.Println()
	}

	// On the smooth trend, a horizontal step model pays log2(slope·ℓ)
	// bits per offset; a linear model pays only the noise width.
	ladder("smooth trend (slope 8, noise ±12): step vs linear model",
		base, []lwcomp.Scheme{
			lwcomp.NS(),
			lwcomp.FORNS(1024),
			lwcomp.LinearNS(1024),
		})

	// Add rare spikes (0.1%): any pure L∞ model is ruined — the L0
	// patch combinator isolates them.
	readings := make([]int64, n)
	copy(readings, base)
	for i := 500; i < n; i += 1000 {
		readings[i] += 1 << 30
	}
	ladder("same trend + 0.1% spikes of 2^30: patches restore the model",
		readings, []lwcomp.Scheme{
			lwcomp.FORNS(1024),
			lwcomp.PFOR(1024),
		})

	// Approximate aggregation on the smooth part: model-only bounds,
	// then gradual refinement.
	smooth := base
	form, err := lwcomp.FORNS(1024).Compress(smooth)
	if err != nil {
		log.Fatal(err)
	}
	var truth int64
	for _, v := range smooth {
		truth += v
	}

	iv, err := lwcomp.ApproxSum(form)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napproximate SUM from the step model only (no offsets decoded):\n")
	fmt.Printf("  sum ∈ [%d, %d], midpoint off by %.4f%%\n",
		iv.Lower, iv.Upper,
		100*abs(float64(iv.Estimate()-truth))/float64(truth))

	g, err := lwcomp.NewGradualSummer(form)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngradual refinement (segments decoded → interval width):")
	fmt.Printf("  %4d/%4d segments: width %d\n", g.Refined(), g.Segments(), g.Bounds().Width())
	for !g.Done() {
		if _, err := g.Refine(g.Segments() / 4); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d/%4d segments: width %d\n", g.Refined(), g.Segments(), g.Bounds().Width())
	}
	final := g.Bounds()
	if final.Lower != truth || final.Width() != 0 {
		log.Fatalf("gradual sum did not converge: %+v vs %d", final, truth)
	}
	fmt.Printf("  exact sum recovered: %d\n", final.Lower)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
