// Benchmarks, one per reproduction experiment (EXP-A … EXP-N; see
// DESIGN.md §2), plus micro-benchmarks of the NS kernels. Run:
//
//	go test -bench=. -benchmem
//
// The experiment *tables* (ratios, crossovers, pruning counts) are
// produced by cmd/lwcbench; the benchmarks here measure the same code
// paths under the Go benchmark harness, reporting ns/op, MB/s-style
// element throughput and allocations.
package lwcomp_test

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"lwcomp"
	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/query"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

// benchN is the column length benchmarks operate on.
const benchN = 1 << 18

// reportElems reports element throughput.
func reportElems(b *testing.B, n int) {
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Melem/s")
}

// BenchmarkEXPA_Composition measures compression of the §I dates
// column under the single schemes and the paper's composition (table:
// lwcbench -exp A).
func BenchmarkEXPA_Composition(b *testing.B) {
	dates := workload.OrderShipDates(benchN, 64, 730120, 1)
	for _, tc := range []struct {
		name string
		s    lwcomp.Scheme
	}{
		{"ns", lwcomp.NS()},
		{"delta+ns", scheme.DeltaNS()},
		{"rle+ns", lwcomp.RLENS()},
		{"rle-delta", lwcomp.RLEDeltaNS()},
		{"rle-delta-vns", scheme.RLEDeltaVNSComposite()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var form *lwcomp.Form
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				form, err = tc.s.Compress(dates)
				if err != nil {
					b.Fatal(err)
				}
			}
			sz, err := lwcomp.EncodedSize(form)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(benchN*8)/float64(sz), "ratio")
			reportElems(b, benchN)
		})
	}
}

// benchDecompressRoutes benches kernel vs literal plan vs fused plan
// decompression of one form (EXP-B for RLE, EXP-D for FOR).
func benchDecompressRoutes(b *testing.B, form *lwcomp.Form, want []int64) {
	b.Run("kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := lwcomp.Decompress(form)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != len(want) {
				b.Fatal("length mismatch")
			}
		}
		reportElems(b, len(want))
	})
	b.Run("plan-literal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.DecompressViaPlan(form, false); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, len(want))
	})
	b.Run("plan-fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.DecompressViaPlan(form, true); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, len(want))
	})
}

// BenchmarkEXPB_RLEAlgorithm1 measures RLE decompression through the
// fused kernel, the literal Algorithm 1 plan, and the idiom-fused
// plan (table: lwcbench -exp B).
func BenchmarkEXPB_RLEAlgorithm1(b *testing.B) {
	data := workload.Runs(benchN, 64, 1<<16, 1)
	form, err := lwcomp.RLE().Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	benchDecompressRoutes(b, form, data)
}

// BenchmarkEXPC_RLEvsRPE measures the ratio-for-ease trade: RPE
// decompresses without Algorithm 1's first prefix sum (table:
// lwcbench -exp C).
func BenchmarkEXPC_RLEvsRPE(b *testing.B) {
	data := workload.Runs(benchN, 64, 1<<20, 1)
	rleForm, err := lwcomp.RLENS().Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	rpeForm, err := scheme.RPEComposite().Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		form *lwcomp.Form
	}{{"rle", rleForm}, {"rpe", rpeForm}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lwcomp.Decompress(tc.form); err != nil {
					b.Fatal(err)
				}
			}
			sz, err := lwcomp.EncodedSize(tc.form)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(benchN*8)/float64(sz), "ratio")
			reportElems(b, benchN)
		})
	}
}

// BenchmarkEXPD_FORAlgorithm2 measures FOR decompression through the
// three routes (table: lwcbench -exp D).
func BenchmarkEXPD_FORAlgorithm2(b *testing.B) {
	data := workload.RandomWalk(benchN, 20, 1<<30, 1)
	form, err := lwcomp.FOR(1024).Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	benchDecompressRoutes(b, form, data)
}

// BenchmarkEXPE_FORDecomposition measures decompression of a FOR form
// and of its STEP+NS decomposition — the identity must also cost the
// same (table: lwcbench -exp E).
func BenchmarkEXPE_FORDecomposition(b *testing.B) {
	data := workload.RandomWalk(benchN, 15, 1<<34, 1)
	forForm, err := lwcomp.FORNS(1024).Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	plusForm, err := lwcomp.DecomposeFOR(forForm)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		form *lwcomp.Form
	}{{"for", forForm}, {"step-plus-ns", plusForm}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lwcomp.Decompress(tc.form); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkEXPF_Patching measures FOR vs PFOR on 1%-outlier data,
// compress and decompress (table: lwcbench -exp F).
func BenchmarkEXPF_Patching(b *testing.B) {
	data := workload.OutlierWalk(benchN, 10, 0.01, 1<<38, 1)
	for _, tc := range []struct {
		name string
		s    lwcomp.Scheme
	}{{"for+ns", lwcomp.FORNS(1024)}, {"pfor", lwcomp.PFOR(1024)}} {
		form, err := tc.s.Compress(data)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/compress", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tc.s.Compress(data); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
		b.Run(tc.name+"/decompress", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lwcomp.Decompress(form); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkEXPG_VariableWidth measures decode throughput across the
// width-granularity spectrum (table: lwcbench -exp G).
func BenchmarkEXPG_VariableWidth(b *testing.B) {
	data := workload.SkewedMagnitude(benchN, 40, 1)
	for _, tc := range []struct {
		name string
		s    lwcomp.Scheme
	}{
		{"ns", lwcomp.NS()},
		{"vns-128", lwcomp.VNS(128)},
		{"varint", lwcomp.Varint()},
		{"elias", lwcomp.Elias()},
	} {
		form, err := tc.s.Compress(data)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lwcomp.Decompress(form); err != nil {
					b.Fatal(err)
				}
			}
			sz, err := lwcomp.EncodedSize(form)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(benchN*8)/float64(sz), "ratio")
			reportElems(b, benchN)
		})
	}
}

// BenchmarkEXPH_Models measures step vs linear model fitting on a
// trend (table: lwcbench -exp H).
func BenchmarkEXPH_Models(b *testing.B) {
	data := workload.TrendNoise(benchN, 8, 12, 1)
	for _, tc := range []struct {
		name string
		s    lwcomp.Scheme
	}{{"step+ns", lwcomp.StepNS(1024)}, {"linear+ns", lwcomp.LinearNS(1024)}} {
		b.Run(tc.name, func(b *testing.B) {
			var form *lwcomp.Form
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				form, err = tc.s.Compress(data)
				if err != nil {
					b.Fatal(err)
				}
			}
			sz, err := lwcomp.EncodedSize(form)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(benchN*8)/float64(sz), "ratio")
			reportElems(b, benchN)
		})
	}
}

// BenchmarkEXPI_PrunedSelection measures the model-pruned range
// selection against decompress-then-filter at 1% selectivity (table:
// lwcbench -exp I).
func BenchmarkEXPI_PrunedSelection(b *testing.B) {
	data := workload.Sorted(benchN, 1<<40, 1)
	form, err := lwcomp.FORNS(1024).Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	lo := data[benchN/2]
	hi := data[benchN/2+benchN/100]
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.SelectRange(form, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("decompress-filter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col, err := lwcomp.Decompress(form)
			if err != nil {
				b.Fatal(err)
			}
			_ = vec.SelectRange(col, lo, hi)
		}
		reportElems(b, benchN)
	})
}

// BenchmarkEXPJ_ApproxSum measures model-only bounds vs gradual
// refinement vs the exact fused sum (table: lwcbench -exp J).
func BenchmarkEXPJ_ApproxSum(b *testing.B) {
	data := workload.RandomWalk(benchN, 12, 1<<33, 1)
	form, err := lwcomp.FORNS(1024).Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("model-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.ApproxSum(form); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("gradual-to-exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := lwcomp.NewGradualSummer(form)
			if err != nil {
				b.Fatal(err)
			}
			for !g.Done() {
				if _, err := g.Refine(64); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportElems(b, benchN)
	})
	b.Run("exact-sum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.Sum(form); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
}

// BenchmarkEXPK_Analyzer measures the full scheme-space search on the
// dates workload (table: lwcbench -exp K).
func BenchmarkEXPK_Analyzer(b *testing.B) {
	data := workload.OrderShipDates(benchN, 64, 730120, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lwcomp.CompressBest(data); err != nil {
			b.Fatal(err)
		}
	}
	reportElems(b, benchN)
}

// BenchmarkEXPL_SumOnRLE measures SUM over runs vs
// decompress-then-scan vs plain scan (table: lwcbench -exp L).
func BenchmarkEXPL_SumOnRLE(b *testing.B) {
	data := workload.Runs(benchN, 256, 1<<16, 1)
	form, err := lwcomp.RLENS().Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := query.Sum(form); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("decompress-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col, err := core.Decompress(form)
			if err != nil {
				b.Fatal(err)
			}
			_ = vec.Sum(col)
		}
		reportElems(b, benchN)
	})
	b.Run("plain-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = vec.Sum(data)
		}
		reportElems(b, benchN)
	})
}

// BenchmarkTreePlan measures whole-tree plan decompression of the §I
// composite (RLE over DELTA over NS) against per-node kernels — the
// "composition happens in the plan algebra" ablation.
func BenchmarkTreePlan(b *testing.B) {
	dates := workload.OrderShipDates(benchN, 64, 730120, 1)
	form, err := lwcomp.RLEDeltaNS().Compress(dates)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("kernels", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.Decompress(form); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("tree-plan-literal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.DecompressViaTreePlan(form, false); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("tree-plan-fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.DecompressViaTreePlan(form, true); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
}

// BenchmarkBitpack measures the generated NS kernels at
// representative widths — the scalar stand-ins for the paper
// lineage's SIMD kernels (DESIGN.md, hardware substitution).
func BenchmarkBitpack(b *testing.B) {
	for _, w := range []uint{1, 4, 8, 16, 32, 64} {
		src := make([]uint64, benchN)
		for i := range src {
			src[i] = uint64(i) & bitpack.Mask(w)
		}
		packed, err := bitpack.Pack(src, w)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]uint64, benchN)
		b.Run("unpack-w"+itoa(int(w)), func(b *testing.B) {
			b.SetBytes(int64(benchN * 8))
			for i := 0; i < b.N; i++ {
				if err := bitpack.UnpackInto(dst, packed, w); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
		b.Run("pack-w"+itoa(int(w)), func(b *testing.B) {
			b.SetBytes(int64(benchN * 8))
			for i := 0; i < b.N; i++ {
				if _, err := bitpack.Pack(src, w); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkBlockedEncode compares whole-column encode against
// blocked encode at 1, 4 and NumCPU workers (EXP-N's timing under
// the Go harness). The column mixes run-heavy, noisy and sorted
// regions so per-block re-composition has something to win.
func BenchmarkBlockedEncode(b *testing.B) {
	third := benchN / 3
	data := append(workload.OrderShipDates(third, 256, 730120, 1),
		workload.UniformBits(third, 40, 2)...)
	data = append(data, workload.Sorted(benchN-2*third, 1<<40, 3)...)

	b.Run("whole-column", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lwcomp.Encode(data); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, len(data))
	})
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run("blocked-64Ki/workers-"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := lwcomp.Encode(data,
					lwcomp.WithBlockSize(1<<16),
					lwcomp.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, len(data))
		})
	}
}

// BenchmarkBlockedSelectRange measures a narrow range selection on a
// blocked sorted column with the [min,max] block index active and
// with it disabled — the block-skipping ablation.
func BenchmarkBlockedSelectRange(b *testing.B) {
	data := workload.Sorted(benchN, 1<<40, 1)
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12))
	if err != nil {
		b.Fatal(err)
	}
	// Same column with stats stripped: every block must be consulted.
	noSkip := &lwcomp.Column{N: col.N, BlockSize: col.BlockSize}
	for _, blk := range col.Blocks {
		blk.HasStats = false
		noSkip.Blocks = append(noSkip.Blocks, blk)
	}
	lo := data[benchN/2]
	hi := data[benchN/2+benchN/100]
	want, err := col.SelectRange(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		c    *lwcomp.Column
	}{{"skipping", col}, {"no-skipping", noSkip}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var rows []int64
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = tc.c.SelectRange(lo, hi)
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(rows) != len(want) {
				b.Fatalf("%d rows, want %d", len(rows), len(want))
			}
			reportElems(b, benchN)
		})
		// The bitmap boundary: same scan without the []int64
		// conversion — the steady-state zero-allocation path.
		b.Run(tc.name+"-sel", func(b *testing.B) {
			b.ReportAllocs()
			count := 0
			for i := 0; i < b.N; i++ {
				bm, err := tc.c.SelectRangeSel(lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				count = bm.Count()
				bm.Release()
			}
			if count != len(want) {
				b.Fatalf("%d rows, want %d", count, len(want))
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkBlockedSelectAllRuns is the blockAll regression pin: a
// range covering the whole column must emit each block as one run —
// O(blocks + rows/64) word fills — rather than one append per row.
// The "sel" variant is the run-emission path alone; "rows" adds the
// one []int64 materialization at the public boundary.
func BenchmarkBlockedSelectAllRuns(b *testing.B) {
	data := workload.Sorted(benchN, 1<<40, 1)
	col, err := lwcomp.Encode(data, lwcomp.WithBlockSize(1<<12))
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := data[0], data[benchN-1]
	b.Run("sel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm, err := col.SelectRangeSel(lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			if bm.Count() != benchN {
				b.Fatal("whole-range scan missed rows")
			}
			bm.Release()
		}
		reportElems(b, benchN)
	})
	b.Run("rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := col.SelectRange(lo, hi)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != benchN {
				b.Fatal("whole-range scan missed rows")
			}
		}
		reportElems(b, benchN)
	})
}

// BenchmarkFusedScan measures the fused unpack-and-compare scan of an
// NS form against decompress-then-filter (EXP-O's timing under the Go
// harness): the fused path touches only the packed words and
// allocates nothing.
func BenchmarkFusedScan(b *testing.B) {
	data := workload.UniformBits(benchN, 20, 1)
	form, err := lwcomp.NS().Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := int64(1)<<18, int64(1)<<19
	b.Run("count-fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := query.CountRange(form, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("count-decompress-filter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col, err := lwcomp.Decompress(form)
			if err != nil {
				b.Fatal(err)
			}
			_ = vec.CountRange(col, lo, hi)
		}
		reportElems(b, benchN)
	})
	bm := lwcomp.NewSelection(benchN)
	b.Run("select-fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm.Reset(benchN)
			if err := query.SelectRangeSel(form, lo, hi, bm, 0); err != nil {
				b.Fatal(err)
			}
		}
		reportElems(b, benchN)
	})
	b.Run("select-decompress-filter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col, err := lwcomp.Decompress(form)
			if err != nil {
				b.Fatal(err)
			}
			_ = vec.SelectRange(col, lo, hi)
		}
		reportElems(b, benchN)
	})
}

// BenchmarkParallelScan measures block-parallel CountRange and
// SelectRangeSel on a column whose every block straddles the range
// (uniform noise), at 1 worker vs NumCPU workers.
func BenchmarkParallelScan(b *testing.B) {
	data := workload.UniformBits(benchN, 30, 2)
	lo, hi := int64(1)<<28, int64(1)<<29
	for _, workers := range []int{1, runtime.NumCPU()} {
		col, err := lwcomp.Encode(data,
			lwcomp.WithBlockSize(1<<13),
			lwcomp.WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("count/workers-"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := col.CountRange(lo, hi); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
		b.Run("select/workers-"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bm, err := col.SelectRangeSel(lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				bm.Release()
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkBlockedDecompress measures block-parallel decompression
// at 1 worker vs NumCPU workers.
func BenchmarkBlockedDecompress(b *testing.B) {
	data := workload.OrderShipDates(benchN, 64, 730120, 1)
	for _, workers := range []int{1, runtime.NumCPU()} {
		col, err := lwcomp.Encode(data,
			lwcomp.WithBlockSize(1<<14),
			lwcomp.WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := col.Decompress()
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != benchN {
					b.Fatal("length mismatch")
				}
			}
			reportElems(b, benchN)
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkLazyOpen measures the file-backed path of PR 3: cold open
// + point lookup (header, index and one block read per iteration),
// the warm cached lookup, and the eager whole-file baseline it
// replaces. See EXP-P for the recorded full-scale numbers.
func BenchmarkLazyOpen(b *testing.B) {
	src := workload.OrderShipDates(1<<20, 64, 730120, 42)
	col, err := lwcomp.Encode(src, lwcomp.WithBlockSize(1<<16))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.lwc")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := lwcomp.WriteColumns(f, []lwcomp.NamedColumn{{Name: "c", Col: col}}); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	row := int64(len(src) - 3)
	want := src[row]

	b.Run("cold-open-point", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := lwcomp.OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			v, err := c.PointLookup(row)
			if err != nil || v != want {
				b.Fatalf("lookup = %d, %v", v, err)
			}
			c.Close()
		}
	})
	b.Run("warm-point", func(b *testing.B) {
		c, err := lwcomp.OpenFile(path)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if _, err := c.PointLookup(row); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := c.PointLookup(row)
			if err != nil || v != want {
				b.Fatalf("lookup = %d, %v", v, err)
			}
		}
	})
	b.Run("eager-read-point", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rf, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			cols, err := lwcomp.ReadColumns(rf)
			rf.Close()
			if err != nil {
				b.Fatal(err)
			}
			v, err := cols[0].Col.PointLookup(row)
			if err != nil || v != want {
				b.Fatalf("lookup = %d, %v", v, err)
			}
		}
	})
}

// BenchmarkEncodeScheme measures the pooled fixed-scheme block
// encode path (ISSUE 5): per-worker scratch arenas make steady-state
// encode allocate only the retained forms, so throughput here is the
// kernel cost, not the allocator's.
func BenchmarkEncodeScheme(b *testing.B) {
	for _, tc := range []struct {
		name   string
		data   []int64
		scheme lwcomp.Scheme
	}{
		{"ns", workload.UniformBits(benchN, 20, 1), lwcomp.NS()},
		{"vns", workload.SkewedMagnitude(benchN, 40, 2), lwcomp.VNS(128)},
		{"for+ns", workload.RandomWalk(benchN, 12, 1<<30, 3), lwcomp.FORNS(1024)},
		{"rle+ns", workload.Runs(benchN, 64, 1<<16, 4), lwcomp.RLENS()},
		{"rle-delta", workload.OrderShipDates(benchN, 64, 730120, 5), lwcomp.RLEDeltaNS()},
		{"dict+ns", workload.LowCardinality(benchN, 32, 6), lwcomp.DictNS()},
		{"pfor", workload.OutlierWalk(benchN, 10, 0.01, 1<<38, 7), lwcomp.PFOR(1024)},
		{"linear+ns", workload.TrendNoise(benchN, 8, 12, 8), lwcomp.LinearNS(1024)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(benchN * 8))
			for i := 0; i < b.N; i++ {
				_, err := lwcomp.Encode(tc.data,
					lwcomp.WithBlockSize(1<<16),
					lwcomp.WithParallelism(1),
					lwcomp.WithScheme(tc.scheme))
				if err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkEncodeAnalyzer measures the statistics-driven analyzer
// encode (ISSUE 5's tentpole): candidates are ranked by estimated
// size from one-pass block stats and only the top few are
// trial-compressed. The exhaustive variant is the old
// trial-everything behavior, kept as ground truth; the effort-1
// variant trials only the single best estimate.
func BenchmarkEncodeAnalyzer(b *testing.B) {
	third := benchN / 3
	data := append(workload.OrderShipDates(third, 256, 730120, 1),
		workload.RandomWalk(third, 10, 1<<33, 2)...)
	data = append(data, workload.Sorted(benchN-2*third, 1<<40, 3)...)
	for _, tc := range []struct {
		name string
		opts []lwcomp.Option
	}{
		{"pruned-default", nil},
		{"effort-1", []lwcomp.Option{lwcomp.WithSearchEffort(1)}},
		{"exhaustive", []lwcomp.Option{lwcomp.WithExhaustiveSearch()}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := append([]lwcomp.Option{
				lwcomp.WithBlockSize(1 << 16),
				lwcomp.WithParallelism(1),
			}, tc.opts...)
			b.ReportAllocs()
			b.SetBytes(int64(benchN * 8))
			for i := 0; i < b.N; i++ {
				if _, err := lwcomp.Encode(data, opts...); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
	}
}

// BenchmarkCollectStats measures the one-pass statistics collector
// that feeds both the block index and the analyzer's estimates.
func BenchmarkCollectStats(b *testing.B) {
	data := workload.OrderShipDates(benchN, 64, 730120, 1)
	s := core.GetScratch()
	defer s.Release()
	b.ReportAllocs()
	b.SetBytes(int64(benchN * 8))
	for i := 0; i < b.N; i++ {
		st := core.CollectStats(data, s)
		st.ReleaseSeg(s)
	}
	reportElems(b, benchN)
}

// BenchmarkTableScan measures the PR-4 two-predicate table scan —
// cross-column per-block planning, fused leaf evaluation, bitmap
// intersection, late-materialized sum — against decompress-then-
// filter over the same columns (table: lwcbench -exp Q).
func BenchmarkTableScan(b *testing.B) {
	date := workload.OrderShipDates(benchN, 64, 730120, 42)
	status := workload.LowCardinality(benchN, 8, 43)
	amount := workload.RandomWalk(benchN, 10, 1<<30, 44)
	var cols []lwcomp.NamedColumn
	for _, c := range []struct {
		name string
		data []int64
	}{{"date", date}, {"status", status}, {"amount", amount}} {
		col, err := lwcomp.Encode(c.data, lwcomp.WithBlockSize(1<<14))
		if err != nil {
			b.Fatal(err)
		}
		cols = append(cols, lwcomp.NamedColumn{Name: c.name, Col: col})
	}
	tbl, err := lwcomp.NewTable(cols)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := date[benchN/2], date[benchN/2+benchN/10]
	if lo > hi {
		lo, hi = hi, lo
	}
	expr := lwcomp.And(lwcomp.Range("date", lo, hi), lwcomp.Eq("status", status[benchN/2]))

	b.Run("pushdown-count-sum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := tbl.Scan(expr)
			if err != nil {
				b.Fatal(err)
			}
			if s.Count() == 0 {
				b.Fatal("scan matched nothing")
			}
			if _, err := s.Sum("amount"); err != nil {
				b.Fatal(err)
			}
			s.Release()
		}
		reportElems(b, benchN)
	})
	b.Run("decompress-then-filter", func(b *testing.B) {
		bufs := [3][]int64{make([]int64, benchN), make([]int64, benchN), make([]int64, benchN)}
		sv := status[benchN/2]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for ci := range cols {
				if err := cols[ci].Col.DecompressInto(bufs[ci]); err != nil {
					b.Fatal(err)
				}
			}
			var count, sum int64
			for r := 0; r < benchN; r++ {
				if bufs[0][r] >= lo && bufs[0][r] <= hi && bufs[1][r] == sv {
					count++
					sum += bufs[2][r]
				}
			}
			if count == 0 && sum == 0 {
				b.Fatal("filter matched nothing")
			}
		}
		reportElems(b, benchN)
	})
}

// BenchmarkFusedAggregate measures the fused one-pass aggregates
// (CountWhere / SumWhere) against the classic Scan+Count+Sum pipeline
// across data shapes that drive the encoder to different scheme
// families — runs (RLE), low cardinality (dict), step segments
// (model) — the Go-harness twin of EXP-U.
func BenchmarkFusedAggregate(b *testing.B) {
	ctx := context.Background()
	for _, sh := range []struct {
		name string
		data []int64
	}{
		{"runs", workload.Runs(benchN, 64, 1<<20, 42)},
		{"lowcard", workload.LowCardinality(benchN, 64, 43)},
		{"step", workload.StepData(benchN, 512, 44)},
	} {
		col, err := lwcomp.Encode(sh.data, lwcomp.WithBlockSize(1<<14))
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := lwcomp.NewTable([]lwcomp.NamedColumn{{Name: "v", Col: col}})
		if err != nil {
			b.Fatal(err)
		}
		mn, mx := sh.data[0], sh.data[0]
		for _, v := range sh.data {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		span := mx - mn
		expr := lwcomp.Range("v", mn+span/5, mn+span*4/5)

		b.Run(sh.name+"/fused-count", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.CountWhere(ctx, expr); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
		b.Run(sh.name+"/fused-sum", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := tbl.SumWhere(ctx, expr, "v"); err != nil {
					b.Fatal(err)
				}
			}
			reportElems(b, benchN)
		})
		b.Run(sh.name+"/classic-scan-count-sum", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := tbl.Scan(expr)
				if err != nil {
					b.Fatal(err)
				}
				_ = s.Count()
				if _, err := s.Sum("v"); err != nil {
					b.Fatal(err)
				}
				s.Release()
			}
			reportElems(b, benchN)
		})
	}
}
