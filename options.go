package lwcomp

import (
	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
)

// DefaultBlockSize is the block length Encode uses when blocking is
// requested without an explicit size (WithBlockSize(0) on a
// ColumnBuilder, for example).
const DefaultBlockSize = blocked.DefaultBlockSize

// DefaultBlockCacheBytes is the block-cache budget OpenFile and
// OpenContainer use when WithBlockCache is not given.
const DefaultBlockCacheBytes = storage.DefaultBlockCacheBytes

// options is the merged configuration the functional Options fold
// into: encode-time knobs for Encode / NewColumnBuilder and open-time
// knobs for OpenFile / OpenContainer. One Option type serves both
// call sites; options irrelevant to a call are simply ignored by it.
type options struct {
	enc blocked.EncodeOptions
	// open mirrors storage.OpenOptions plus the column selector.
	cacheBytes   int64
	sharedCache  *storage.SharedCache
	mmap         bool
	retry        storage.RetryPolicy
	degraded     bool
	columnName   string
	columnChosen bool
}

// Option configures Encode, NewColumnBuilder, OpenFile and
// OpenContainer. Encode-time options (WithBlockSize, WithScheme, ...)
// are ignored by the open functions, and open-time options
// (WithBlockCache, WithMmap, WithColumn) are ignored by the encode
// functions — except WithParallelism, which both honor: at encode
// time it bounds concurrent block encoders, and on an opened column
// it bounds concurrent block scans.
type Option func(*options)

// WithBlockSize partitions the input into blocks of n values, each
// compressed with its own independently chosen composite scheme.
// n <= 0 encodes the whole column as a single block (the v1
// behavior). Smaller blocks adapt the scheme to local structure and
// sharpen block skipping; larger blocks amortize per-block headers.
func WithBlockSize(n int) Option {
	return func(o *options) { o.enc.BlockSize = n }
}

// WithScheme fixes the compression scheme for every block, skipping
// the analyzer. Use ParseScheme or the scheme constructors (RLENS,
// FORNS, ...) to build s.
func WithScheme(s Scheme) Option {
	return func(o *options) { o.enc.Scheme = s }
}

// WithCostBudget disqualifies candidate schemes whose abstract
// decompression cost per element exceeds budget — the
// size-vs-decompression-cost knob. A plain copy costs about 1.0; NS
// about 1.5; Elias about 6.0. Zero means unbounded.
func WithCostBudget(budget float64) Option {
	return func(o *options) { o.enc.CostBudget = budget }
}

// WithParallelism bounds the number of blocks encoded (and decoded)
// concurrently. p <= 0 means GOMAXPROCS.
func WithParallelism(p int) Option {
	return func(o *options) { o.enc.Parallelism = p }
}

// WithSampleSize caps the prefix sample the per-block analyzer
// evaluates candidates on; 0 means 65536.
func WithSampleSize(n int) Option {
	return func(o *options) { o.enc.SampleSize = n }
}

// WithSearchEffort bounds how many of the top estimate-ranked
// candidate schemes the per-block analyzer trial-compresses (the
// default is 3). The analyzer predicts every candidate's encoded
// size from one-pass block statistics and only trial-encodes the k
// most promising, so lower effort encodes faster at a small risk of
// a slightly larger block; candidates without estimators and the
// best exactly-estimated candidate are always trialed.
func WithSearchEffort(k int) Option {
	return func(o *options) { o.enc.TrialK = k }
}

// WithExhaustiveSearch disables the statistics-driven pruning and
// trial-compresses every candidate scheme on every block — the
// ground-truth search. Encoding is several times slower; use it to
// validate the estimators or when encode time does not matter.
func WithExhaustiveSearch() Option {
	return func(o *options) { o.enc.Exhaustive = true }
}

// WithExtraCandidates appends hand-built composites to every block's
// analyzer search space.
func WithExtraCandidates(extra ...Candidate) Option {
	return func(o *options) { o.enc.Extra = append(o.enc.Extra, extra...) }
}

// WithBlockCache sets the byte budget of an opened container's block
// cache: raw, checksum-verified block payloads kept under an LRU
// policy and shared across every query on the container, so hot
// blocks decode from cached bytes while cold blocks never enter
// memory. bytes <= 0 disables caching entirely; without this option,
// OpenFile and OpenContainer use DefaultBlockCacheBytes.
func WithBlockCache(bytes int64) Option {
	return func(o *options) { o.cacheBytes = bytes }
}

// WithSharedBlockCache makes the opened container join sc instead of
// creating its own block cache: the container's verified payloads
// compete with every other member container's under sc's one byte
// budget. A server mounting a directory of containers opens them all
// with one shared cache, so total resident payload bytes stay bounded
// no matter how many tables are open. A nil sc opens the container
// uncached. Overrides WithBlockCache.
func WithSharedBlockCache(sc *SharedBlockCache) Option {
	return func(o *options) { o.sharedCache = sc }
}

// WithMmap asks OpenFile / OpenContainer to memory-map the container
// instead of issuing positioned reads, letting the OS page cache own
// residency. On platforms without mmap support (or if the mapping
// fails) the open silently falls back to positioned reads; OpenReader
// ignores the option, having no file to map.
func WithMmap(enabled bool) Option {
	return func(o *options) { o.mmap = enabled }
}

// WithReadRetry makes an opened container re-issue transiently failed
// reads with capped exponential backoff before surfacing the error:
// p.MaxRetries attempts, sleeping p.BaseDelay doubling up to
// p.MaxDelay between them. Integrity failures — ErrChecksum,
// ErrCorrupt — are permanent and are never retried; only the
// transport saying it could not deliver the bytes is. The container's
// ReadStats reports the absorbed retries and final giveups.
func WithReadRetry(p RetryPolicy) Option {
	return func(o *options) { o.retry = p }
}

// WithDegradedScan sets the default failure mode of scans on a table
// opened with OpenTable: when enabled, a scan that hits a permanently
// unreadable block (bad CRC → quarantined) skips the block — treating
// its rows as non-matching — and records the exact omission in the
// scan's Manifest, instead of failing the query. Disabled, the
// default, keeps fail-fast semantics; Table.ScanWith can still opt a
// single scan in.
func WithDegradedScan(enabled bool) Option {
	return func(o *options) { o.degraded = enabled }
}

// WithColumn selects which named column OpenFile returns from a
// multi-column container. Without it, OpenFile requires the container
// to hold exactly one column.
func WithColumn(name string) Option {
	return func(o *options) { o.columnName = name; o.columnChosen = true }
}

// buildOptions folds opts into the merged options, applying open-path
// defaults.
func buildOptions(opts []Option) options {
	o := options{cacheBytes: DefaultBlockCacheBytes}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// openOptions projects the merged options onto the storage layer's
// open configuration.
func (o *options) openOptions() storage.OpenOptions {
	return storage.OpenOptions{CacheBytes: o.cacheBytes, Shared: o.sharedCache, Mmap: o.mmap, Retry: o.retry}
}
