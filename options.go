package lwcomp

import "lwcomp/internal/blocked"

// DefaultBlockSize is the block length Encode uses when blocking is
// requested without an explicit size (WithBlockSize(0) on a
// ColumnBuilder, for example).
const DefaultBlockSize = blocked.DefaultBlockSize

// Option configures Encode and NewColumnBuilder.
type Option func(*blocked.EncodeOptions)

// WithBlockSize partitions the input into blocks of n values, each
// compressed with its own independently chosen composite scheme.
// n <= 0 encodes the whole column as a single block (the v1
// behavior). Smaller blocks adapt the scheme to local structure and
// sharpen block skipping; larger blocks amortize per-block headers.
func WithBlockSize(n int) Option {
	return func(o *blocked.EncodeOptions) { o.BlockSize = n }
}

// WithScheme fixes the compression scheme for every block, skipping
// the analyzer. Use ParseScheme or the scheme constructors (RLENS,
// FORNS, ...) to build s.
func WithScheme(s Scheme) Option {
	return func(o *blocked.EncodeOptions) { o.Scheme = s }
}

// WithCostBudget disqualifies candidate schemes whose abstract
// decompression cost per element exceeds budget — the
// size-vs-decompression-cost knob. A plain copy costs about 1.0; NS
// about 1.5; Elias about 6.0. Zero means unbounded.
func WithCostBudget(budget float64) Option {
	return func(o *blocked.EncodeOptions) { o.CostBudget = budget }
}

// WithParallelism bounds the number of blocks encoded (and decoded)
// concurrently. p <= 0 means GOMAXPROCS.
func WithParallelism(p int) Option {
	return func(o *blocked.EncodeOptions) { o.Parallelism = p }
}

// WithSampleSize caps the prefix sample the per-block analyzer
// evaluates candidates on; 0 means 65536.
func WithSampleSize(n int) Option {
	return func(o *blocked.EncodeOptions) { o.SampleSize = n }
}

// WithExtraCandidates appends hand-built composites to every block's
// analyzer search space.
func WithExtraCandidates(extra ...Candidate) Option {
	return func(o *blocked.EncodeOptions) { o.Extra = append(o.Extra, extra...) }
}

// buildOptions folds opts into a blocked.EncodeOptions.
func buildOptions(opts []Option) blocked.EncodeOptions {
	var o blocked.EncodeOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
