module lwcomp

go 1.24
