package lwcomp

import (
	"fmt"
	"io"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
)

// This file is the on-disk query surface: opening a container lazily
// — header and block index only — and serving queries by fetching
// individual block payloads on demand. A point lookup on a multi-GB
// container reads O(1) blocks; a range scan reads only the blocks its
// [min, max] stats cannot rule out.

// Container is an open container file whose block payloads load on
// demand. Only the header and block index are resident after opening;
// every column handle it returns shares the container's byte source
// and its bounded LRU block cache. Close it (or any column obtained
// from it) exactly once when done — the handles share one lifetime.
//
// Containers of earlier generations (v1, v2) open eagerly, because
// their layouts interleave payloads with the index under a whole-file
// checksum; afterwards they behave identically with every block
// resident and Close a no-op on the file (it is already released).
type Container = storage.ContainerFile

// BlockExtent locates one block's payload inside a lazily opened
// container: offset, encoded byte length, and expected CRC-32C. The
// `lwc stat` subcommand prints these without decoding any payload.
type BlockExtent = storage.BlockExtent

// CacheStats reports an open container's block-cache traffic —
// lookups by outcome, evictions, and resident bytes against budget.
type CacheStats = storage.CacheStats

// RetryPolicy configures WithReadRetry's capped exponential backoff:
// MaxRetries re-reads per failed fetch (0 disables), sleeping
// BaseDelay (default 1ms) doubling up to MaxDelay (default 100ms).
type RetryPolicy = storage.RetryPolicy

// ReadStats reports an open container's transient-read retry traffic:
// reads re-issued after a transient failure and reads abandoned after
// the retry budget ran out. Container.ReadStats and Column.ReadStats
// snapshot it.
type ReadStats = blocked.ReadStats

// SharedBlockCache is a block cache several open containers share
// under one byte budget: pass it to OpenFile / OpenContainer /
// OpenTable through WithSharedBlockCache and every member container's
// verified payloads compete in one LRU. Stats snapshots the pooled
// counters; each member container still reports its own hit/miss
// traffic through CacheStats.
type SharedBlockCache = storage.SharedCache

// NewSharedBlockCache returns a shared block cache with the given
// byte budget, or nil (meaning "no cache") when bytes <= 0.
func NewSharedBlockCache(bytes int64) *SharedBlockCache {
	return storage.NewSharedCache(bytes)
}

// OpenFile opens an LWC container file and returns its column
// without reading any block payload: only the header and the block
// index are read (O(index), not O(file)). Queries on the returned
// Column fetch, checksum-verify, and decode individual blocks at
// first touch, so a PointLookup touches exactly one block and a
// SelectRange only the blocks its [min, max] stats admit.
//
//	col, err := lwcomp.OpenFile("dates.lwc",
//	    lwcomp.WithBlockCache(64<<20), // verified payload LRU, shared across queries
//	    lwcomp.WithMmap(true))         // let the page cache own residency
//	defer col.Close()
//	v, err := col.PointLookup(123_456) // reads header + index + one block
//
// The container must hold exactly one column unless WithColumn picks
// one by name. Close the column to release the file. v1 and v2
// containers open too, eagerly (their formats cannot be read
// incrementally); the returned column then has every block resident.
func OpenFile(path string, opts ...Option) (*Column, error) {
	o := buildOptions(opts)
	cf, err := storage.OpenContainerFile(path, o.openOptions())
	if err != nil {
		return nil, err
	}
	applyColumnOptions(cf, &o)
	col, err := pickColumn(cf, &o)
	if err != nil {
		cf.Close()
		return nil, err
	}
	return col, nil
}

// OpenReader opens a container from any io.ReaderAt covering size
// bytes — an *os.File, a bytes.Reader, or a counting wrapper in a
// test asserting how little a query reads. Semantics match OpenFile
// except WithMmap is ignored (there is no file to map). If r also
// implements io.Closer, closing the column closes it.
func OpenReader(r io.ReaderAt, size int64, opts ...Option) (*Column, error) {
	o := buildOptions(opts)
	cf, err := storage.OpenContainer(r, size, o.openOptions())
	if err != nil {
		return nil, err
	}
	applyColumnOptions(cf, &o)
	col, err := pickColumn(cf, &o)
	if err != nil {
		cf.Close()
		return nil, err
	}
	return col, nil
}

// OpenContainer opens a container file lazily and returns the
// multi-column handle: Columns lists the handles, Column fetches one
// by name, Extents exposes the raw block layout, and CacheStats the
// shared cache's counters. Use it when a container holds several
// columns or when the tooling needs the layout; OpenFile is the
// single-column convenience over it.
func OpenContainer(path string, opts ...Option) (*Container, error) {
	o := buildOptions(opts)
	cf, err := storage.OpenContainerFile(path, o.openOptions())
	if err != nil {
		return nil, err
	}
	applyColumnOptions(cf, &o)
	return cf, nil
}

// applyColumnOptions threads open-time knobs that live on the column
// handle (today just the scan parallelism bound) onto every column of
// a freshly opened container.
func applyColumnOptions(cf *Container, o *options) {
	if o.enc.Parallelism > 0 {
		for _, c := range cf.Columns() {
			c.Col.Parallelism = o.enc.Parallelism
		}
	}
}

// pickColumn resolves which column an OpenFile/OpenReader call
// returns: the WithColumn choice, or the sole column.
func pickColumn(cf *Container, o *options) (*Column, error) {
	cols := cf.Columns()
	if o.columnChosen {
		return cf.Column(o.columnName)
	}
	switch len(cols) {
	case 1:
		return cols[0].Col, nil
	case 0:
		return nil, fmt.Errorf("lwcomp: container has no columns")
	default:
		names := make([]string, len(cols))
		for i := range cols {
			names[i] = cols[i].Name
		}
		return nil, fmt.Errorf("lwcomp: container has %d columns %q; pick one with WithColumn or use OpenContainer",
			len(cols), names)
	}
}
