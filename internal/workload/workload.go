package workload

import (
	"math/rand"
)

// OrderShipDates generates n monotone non-decreasing "day numbers"
// with geometric run lengths averaging runLen — the shipped-orders
// date column of the paper's introduction. Day numbers start at
// epochDay (e.g. 730120 ≈ year 2000 in proleptic day counts).
func OrderShipDates(n int, runLen float64, epochDay int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	if runLen < 1 {
		runLen = 1
	}
	out := make([]int64, n)
	day := epochDay
	p := 1.0 / runLen
	for i := range out {
		if rng.Float64() < p {
			// Most days advance by one; occasionally a gap (weekend,
			// holiday) of a few days.
			day += 1 + int64(rng.Intn(3))
		}
		out[i] = day
	}
	return out
}

// RandomWalk generates a walk with steps uniform in
// [-maxStep, +maxStep], starting at start: locally smooth, globally
// wandering — FOR's natural domain.
func RandomWalk(n int, maxStep int64, start int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	v := start
	for i := range out {
		if maxStep > 0 {
			v += rng.Int63n(2*maxStep+1) - maxStep
		}
		out[i] = v
	}
	return out
}

// OutlierWalk is RandomWalk with a fraction rate of elements replaced
// by far-away spikes of the given magnitude — the L0 patch workload.
func OutlierWalk(n int, maxStep int64, rate float64, magnitude int64, seed int64) []int64 {
	out := RandomWalk(n, maxStep, 1<<20, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range out {
		if rng.Float64() < rate {
			out[i] += magnitude + rng.Int63n(magnitude/2+1)
		}
	}
	return out
}

// TrendNoise generates a rising line of the given slope with uniform
// noise of amplitude ±noise around it — the piecewise-linear model's
// workload.
func TrendNoise(n int, slope float64, noise int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		v := int64(float64(i) * slope)
		if noise > 0 {
			v += rng.Int63n(2*noise+1) - noise
		}
		out[i] = v
	}
	return out
}

// LowCardinality generates n values drawn Zipf-style from a domain of
// the given cardinality (scattered over a wide value range so that NS
// alone cannot exploit it) — DICT's workload.
func LowCardinality(n int, cardinality int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	if cardinality < 1 {
		cardinality = 1
	}
	domain := make([]int64, cardinality)
	for i := range domain {
		domain[i] = rng.Int63n(1 << 40)
	}
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(cardinality-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = domain[zipf.Uint64()]
	}
	return out
}

// StepData generates an exact fixed-segment step function — STEP's
// (tiny) exact domain.
func StepData(n, segLen int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	var v int64
	for i := range out {
		if i%segLen == 0 {
			v = rng.Int63n(1 << 30)
		}
		out[i] = v
	}
	return out
}

// UniformBits generates n values uniform in [0, 2^w) — the NS
// calibration workload where the compression ratio is exactly 64/w.
func UniformBits(n int, w uint, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	if w == 0 {
		return out
	}
	mask := int64(1)<<w - 1
	if w >= 63 {
		mask = int64(^uint64(0) >> 1)
	}
	for i := range out {
		out[i] = rng.Int63() & mask
	}
	return out
}

// SkewedMagnitude generates values whose bit widths are themselves
// skewed (width drawn geometrically, value uniform within the width):
// most elements are narrow, a tail is wide. The bit-metric workload —
// fixed-width NS must pay the tail's width for every element.
func SkewedMagnitude(n int, maxWidth uint, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		w := uint(1)
		for w < maxWidth && rng.Float64() < 0.65 {
			w++
		}
		out[i] = rng.Int63n(int64(1) << w)
	}
	return out
}

// Runs generates n values with geometric runs of average length
// runLen over a small value alphabet — RLE's calibration workload.
func Runs(n int, runLen float64, alphabet int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	if runLen < 1 {
		runLen = 1
	}
	out := make([]int64, n)
	v := rng.Int63n(alphabet)
	p := 1.0 / runLen
	for i := range out {
		if rng.Float64() < p {
			v = rng.Int63n(alphabet)
		}
		out[i] = v
	}
	return out
}

// Sorted generates a sorted column of n values uniform in [0, max) —
// the selection-pruning workload (every range query touches a
// contiguous row range).
func Sorted(n int, max int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	if max <= 0 {
		return out
	}
	// Draw deltas so the result is sorted without an O(n log n) sort.
	var v int64
	avg := max / int64(n+1)
	for i := range out {
		v += rng.Int63n(2*avg + 1)
		out[i] = v
	}
	return out
}
