package workload

import (
	"testing"

	"lwcomp/internal/column"
)

func TestOrderShipDatesShape(t *testing.T) {
	dates := OrderShipDates(10000, 40, 730120, 1)
	st := column.Analyze(dates)
	if !st.NonDecreasing {
		t.Fatal("dates not monotone")
	}
	if avg := st.AvgRunLength(); avg < 20 || avg > 80 {
		t.Fatalf("avg run length %.1f, want ≈40", avg)
	}
	if dates[0] < 730120 {
		t.Fatalf("epoch start %d", dates[0])
	}
}

func TestDeterminism(t *testing.T) {
	a := RandomWalk(1000, 10, 0, 7)
	b := RandomWalk(1000, 10, 0, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := RandomWalk(1000, 10, 0, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRandomWalkLocality(t *testing.T) {
	w := RandomWalk(5000, 5, 100, 2)
	for i := 1; i < len(w); i++ {
		d := w[i] - w[i-1]
		if d < -5 || d > 5 {
			t.Fatalf("step %d out of bounds at %d", d, i)
		}
	}
}

func TestOutlierWalkRate(t *testing.T) {
	base := RandomWalk(20000, 5, 1<<20, 3)
	out := OutlierWalk(20000, 5, 0.01, 1<<30, 3)
	diffs := 0
	for i := range out {
		if out[i] != base[i] {
			diffs++
		}
	}
	rate := float64(diffs) / float64(len(out))
	if rate < 0.005 || rate > 0.02 {
		t.Fatalf("outlier rate %.4f, want ≈0.01", rate)
	}
}

func TestTrendNoiseSlope(t *testing.T) {
	tr := TrendNoise(10000, 2.5, 10, 4)
	// End-to-end rise ≈ slope·n.
	rise := float64(tr[len(tr)-1] - tr[0])
	if rise < 2.0*10000 || rise > 3.0*10000 {
		t.Fatalf("rise %.0f, want ≈25000", rise)
	}
	flat := TrendNoise(100, 0, 0, 4)
	for _, v := range flat {
		if v != 0 {
			t.Fatal("zero slope zero noise should be all zeros")
		}
	}
}

func TestLowCardinality(t *testing.T) {
	lc := LowCardinality(5000, 16, 5)
	st := column.Analyze(lc)
	if st.Distinct > 16 {
		t.Fatalf("distinct = %d, want ≤ 16", st.Distinct)
	}
	if st.Distinct < 2 {
		t.Fatalf("distinct = %d, want several", st.Distinct)
	}
}

func TestStepDataIsExactStepFunction(t *testing.T) {
	sd := StepData(1000, 50, 6)
	for i, v := range sd {
		if v != sd[(i/50)*50] {
			t.Fatalf("segment %d not constant", i/50)
		}
	}
}

func TestUniformBitsWidth(t *testing.T) {
	ub := UniformBits(5000, 12, 7)
	for i, v := range ub {
		if v < 0 || v >= 1<<12 {
			t.Fatalf("value %d at %d outside 12 bits", v, i)
		}
	}
	if z := UniformBits(10, 0, 7); z[0] != 0 {
		t.Fatal("width 0 should be zeros")
	}
}

func TestSkewedMagnitudeIsSkewed(t *testing.T) {
	sm := SkewedMagnitude(20000, 40, 8)
	narrow := 0
	for _, v := range sm {
		if v < 1<<8 {
			narrow++
		}
	}
	if frac := float64(narrow) / float64(len(sm)); frac < 0.5 {
		t.Fatalf("narrow fraction %.2f, want skew toward narrow", frac)
	}
	st := column.Analyze(sm)
	if st.ValueWidth < 30 {
		t.Fatalf("max width %d, want a wide tail", st.ValueWidth)
	}
}

func TestRunsAverageLength(t *testing.T) {
	r := Runs(50000, 16, 8, 9)
	st := column.Analyze(r)
	if avg := st.AvgRunLength(); avg < 8 || avg > 32 {
		t.Fatalf("avg run length %.1f, want ≈16", avg)
	}
}

func TestSortedIsSorted(t *testing.T) {
	s := Sorted(10000, 1<<30, 10)
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
