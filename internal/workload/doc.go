// Package workload generates the deterministic, seeded synthetic
// columns the experiments run on.
//
// The paper evaluates nothing itself (it is a two-page vision paper),
// but its arguments name the workloads precisely; each generator
// below corresponds to one of them (see DESIGN.md §2):
//
//   - OrderShipDates — §I's motivating example: "a table holds
//     shipped order details, with a date column. Data accrues over
//     time, so the dates form a monotone-increasing sequence with
//     long runs".
//   - RandomWalk — "limited local variation despite potentially
//     larger global variation", FOR's domain (§II-B).
//   - OutlierWalk — the L0-patches workload: "'really' a step
//     function, but with the occasional divergent arbitrary-value
//     element".
//   - TrendNoise — the piecewise-linear workload: offsets from "a
//     diagonal line at some slope".
//   - SkewedMagnitude — the bit-metric workload: element widths vary,
//     so variable-width coding beats any single fixed width.
//   - LowCardinality, StepData, UniformBits — DICT, STEP and NS
//     calibration workloads.
//
// All generators take explicit seeds and are reproducible across
// runs and platforms (math/rand with fixed seeds).
package workload
