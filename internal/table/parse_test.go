package table

import (
	"errors"
	"strings"
	"testing"
)

// TestParseSemantics parses predicates and checks the resulting trees
// against reference row filters on a small table — semantics, not
// syntax trees, are what the parser must get right.
func TestParseSemantics(t *testing.T) {
	const n = 4000
	names, data := testData(n)
	tbl, raw := buildTable(t, 512, names, data)
	date, status, amount := data[0], data[1], data[2]
	dMid := date[n/2]

	for _, tc := range []struct {
		src  string
		pred func(row int) bool
	}{
		{"status = 1", func(r int) bool { return status[r] == 1 }},
		{"status == 1", func(r int) bool { return status[r] == 1 }},
		{"status != 1", func(r int) bool { return status[r] != 1 }},
		{"date < 1000000", func(r int) bool { return date[r] < 1000000 }},
		{"date <= 1000000", func(r int) bool { return date[r] <= 1000000 }},
		{"amount > 0", func(r int) bool { return amount[r] > 0 }},
		{"amount >= 0", func(r int) bool { return amount[r] >= 0 }},
		{"status in (0, 2)", func(r int) bool { return status[r] == 0 || status[r] == 2 }},
		{"status in ()", func(int) bool { return false }},
		{"date >= " + itoa(dMid) + " and status = 1",
			func(r int) bool { return date[r] >= dMid && status[r] == 1 }},
		{"status = 0 or status = 3 and amount > 0", // and binds tighter
			func(r int) bool { return status[r] == 0 || (status[r] == 3 && amount[r] > 0) }},
		{"(status = 0 or status = 3) and amount > 0",
			func(r int) bool { return (status[r] == 0 || status[r] == 3) && amount[r] > 0 }},
		{"not status = 2", func(r int) bool { return status[r] != 2 }},
		{"not (status = 2 or amount < 0)", func(r int) bool { return !(status[r] == 2 || amount[r] < 0) }},
		{"NOT status = 2 AND amount > 0", // keywords are case-insensitive
			func(r int) bool { return status[r] != 2 && amount[r] > 0 }},
		{"amount > -100 and amount < 100",
			func(r int) bool { return amount[r] > -100 && amount[r] < 100 }},
		{"true", func(int) bool { return true }},
		{"FALSE or status = 1", func(r int) bool { return status[r] == 1 }},
		{"true and not false", func(int) bool { return true }},
	} {
		e, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		checkScan(t, tbl, raw, "amount", e, tc.pred)

		// Round trip: the rendered form parses back to the same rows.
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", tc.src, e.String(), err)
		}
		checkScan(t, tbl, raw, "amount", back, tc.pred)
	}

	// The empty combinators render as the true/false literals, which
	// must parse back (the round-trip identity for every constructed
	// expression, not just parser output).
	for _, e := range []Expr{And(), Or(), Not(And()), And(Or(), Eq("status", 1))} {
		if _, err := Parse(e.String()); err != nil {
			t.Fatalf("Parse(String() = %q): %v", e.String(), err)
		}
	}
}

func itoa(v int64) string {
	b := []byte{}
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestParseErrors pins rejection of malformed inputs with positioned
// errors.
func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"and",
		"status =",
		"= 3",
		"status 3",
		"status ~ 3",
		"status = 3 extra",
		"(status = 3",
		"status in 3",
		"status in (3",
		"status in (3,)",
		"status = 99999999999999999999",
		"status = 3 and",
		"a = 1 $ b = 2",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "parse predicate") {
			t.Fatalf("Parse(%q) error lacks context: %v", src, err)
		}
	}
}

// TestParseErrorPositions pins the structured ParseError fields: the
// byte offset and offending token a server surfaces in 400 bodies
// must point at the exact place the predicate broke.
func TestParseErrorPositions(t *testing.T) {
	for _, tc := range []struct {
		src    string
		offset int
		token  string
	}{
		{"", 0, ""},                                             // empty input: EOF at 0
		{"= 3", 0, "="},                                         // no column
		{"status =", 8, ""},                                     // value missing: EOF past the operator
		{"status ~ 3", 7, "~"},                                  // byte outside the language
		{"status = 3 extra", 11, "extra"},                       // trailing garbage
		{"(status = 3", 11, ""},                                 // unclosed paren: EOF
		{"status in 3", 10, "3"},                                // in-list needs '('
		{"status in (3,)", 13, ")"},                             // trailing comma
		{"a = 1 and b ! 2", 12, "!"},                            // lone '!' is not a known operator
		{"a = 1 and ! 2", 10, "!"},                              // operator where a column should be
		{"date >= 10 or $ = 1", 14, "$"},                        // bad byte mid-expression
		{"v = 99999999999999999999", 4, "99999999999999999999"}, // overflow
	} {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", tc.src)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) error is %T, want *ParseError", tc.src, err)
		}
		if pe.Offset != tc.offset || pe.Token != tc.token {
			t.Fatalf("Parse(%q): offset %d token %q, want offset %d token %q",
				tc.src, pe.Offset, pe.Token, tc.offset, tc.token)
		}
		if tc.token != "" && !strings.Contains(err.Error(), tc.token) {
			t.Fatalf("Parse(%q) message %q omits the offending token", tc.src, err)
		}
	}
}

// TestParseExtremeLiterals covers the int64 boundary operators that
// must not overflow when translated to closed ranges.
func TestParseExtremeLiterals(t *testing.T) {
	names, data := testData(1000)
	tbl, raw := buildTable(t, 256, names, data)
	for _, tc := range []struct {
		src  string
		pred func(row int) bool
	}{
		{"amount < -9223372036854775808", func(int) bool { return false }},
		{"amount > 9223372036854775807", func(int) bool { return false }},
		{"amount >= -9223372036854775808", func(int) bool { return true }},
		{"amount <= 9223372036854775807", func(int) bool { return true }},
	} {
		e, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		checkScan(t, tbl, raw, "amount", e, tc.pred)
	}
}
