package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a predicate in the scan mini-language and returns the
// expression tree. The grammar, loosest binding first:
//
//	expr    := or
//	or      := and { "or" and }
//	and     := not { "and" not }
//	not     := "not" not | "(" expr ")" | "true" | "false" | cmp
//	cmp     := column op value
//	         | column "in" "(" value { "," value } ")"
//	op      := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//
// Columns are identifiers ([A-Za-z_] then [A-Za-z0-9_]), values are
// signed int64 literals, and the keywords and/or/not/in/true/false
// are case-insensitive and reserved (a column cannot be named after
// them). true and false are the match-all and match-nothing leaves —
// what the empty combinators And() and Or() render as, so every
// expression String() produces parses back. Comparisons translate to
// the closed-range leaves the planner prunes with: "date >= 100 and
// date < 200 or status = 3" parses as
// Or(And(Range(date,100,MaxInt64), Range(date,MinInt64,199)),
// Eq(status,3)).
func Parse(s string) (Expr, error) {
	p := &parser{input: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after expression", p.tok.text)
	}
	return e, nil
}

// tokKind enumerates the lexer's token classes.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokOp     // comparison operator
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokBad    // a byte outside the language
)

// token is one lexed token with its source position.
type token struct {
	kind tokKind
	text string
	pos  int
}

// parser is a recursive-descent parser with one token of lookahead.
type parser struct {
	input string
	pos   int
	tok   token
}

// ParseError is the error Parse returns for input outside the
// mini-language: what went wrong, the byte offset where, and the
// offending token's text. Servers surface these fields verbatim in
// 400 responses, so a client can point at the exact byte of a bad
// predicate; errors.As extracts the structured form from anything
// wrapping it.
type ParseError struct {
	// Offset is the byte offset of the offending token in the input.
	Offset int
	// Token is the offending token's text; empty at end of input.
	Token string
	// Msg describes what the parser expected instead.
	Msg string
}

// Error renders the message with the offset and offending token, so
// even a plain %v shows where the predicate broke.
func (e *ParseError) Error() string {
	if e.Token == "" {
		return fmt.Sprintf("parse predicate: %s at offset %d (end of input)", e.Msg, e.Offset)
	}
	return fmt.Sprintf("parse predicate: %s at offset %d near %q", e.Msg, e.Offset, e.Token)
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Offset: p.tok.pos, Token: p.tok.text, Msg: fmt.Sprintf(format, args...)}
}

// next lexes the following token into p.tok.
func (p *parser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, text: ",", pos: start}
	case c == '=' || c == '!' || c == '<' || c == '>':
		p.pos++
		if p.pos < len(p.input) && p.input[p.pos] == '=' {
			p.pos++
		}
		p.tok = token{kind: tokOp, text: p.input[start:p.pos], pos: start}
	case c == '-' || c >= '0' && c <= '9':
		p.pos++
		for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
			p.pos++
		}
		p.tok = token{kind: tokNumber, text: p.input[start:p.pos], pos: start}
	case c == '_' || unicode.IsLetter(rune(c)):
		p.pos++
		for p.pos < len(p.input) {
			c := p.input[p.pos]
			if c != '_' && !unicode.IsLetter(rune(c)) && !unicode.IsDigit(rune(c)) {
				break
			}
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.input[start:p.pos], pos: start}
	default:
		p.tok = token{kind: tokBad, text: string(c), pos: start}
		p.pos++
	}
}

// keyword reports whether the current token is the given
// case-insensitive keyword.
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) parseOr() (Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Expr{e}
	for p.keyword("or") {
		p.next()
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return Or(kids...), nil
}

func (p *parser) parseAnd() (Expr, error) {
	e, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	kids := []Expr{e}
	for p.keyword("and") {
		p.next()
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return And(kids...), nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("not") {
		p.next()
		k, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not(k), nil
	}
	if p.tok.kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %q", p.tok.text)
		}
		p.next()
		return e, nil
	}
	if p.keyword("true") {
		p.next()
		return And(), nil // the match-all identity
	}
	if p.keyword("false") {
		p.next()
		return Or(), nil // the match-nothing identity
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected a column name, got %q", p.tok.text)
	}
	col := p.tok.text
	p.next()
	if p.keyword("in") {
		p.next()
		return p.parseIn(col)
	}
	if p.tok.kind != tokOp {
		return nil, p.errorf("expected a comparison operator after %q, got %q", col, p.tok.text)
	}
	op, opPos := p.tok.text, p.tok.pos
	p.next()
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	switch op {
	case "=", "==":
		return Eq(col, v), nil
	case "!=":
		return Not(Eq(col, v)), nil
	case "<=":
		return Range(col, math.MinInt64, v), nil
	case ">=":
		return Range(col, v, math.MaxInt64), nil
	case "<":
		if v == math.MinInt64 {
			return In(col), nil // nothing is below MinInt64
		}
		return Range(col, math.MinInt64, v-1), nil
	case ">":
		if v == math.MaxInt64 {
			return In(col), nil // nothing is above MaxInt64
		}
		return Range(col, v+1, math.MaxInt64), nil
	default:
		// The parser has moved past the value by now; point the error
		// at the operator itself, not wherever lookahead landed.
		return nil, &ParseError{Offset: opPos, Token: op, Msg: fmt.Sprintf("unknown operator %q", op)}
	}
}

// parseIn parses the parenthesized value list of "col in (...)". An
// empty list is allowed and matches nothing.
func (p *parser) parseIn(col string) (Expr, error) {
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(' after 'in', got %q", p.tok.text)
	}
	p.next()
	var vals []int64
	if p.tok.kind != tokRParen {
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' closing the in-list, got %q", p.tok.text)
	}
	p.next()
	return In(col, vals...), nil
}

func (p *parser) parseValue() (int64, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected an integer, got %q", p.tok.text)
	}
	v, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q: %v", p.tok.text, err)
	}
	p.next()
	return v, nil
}
