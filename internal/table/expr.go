package table

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"

	"lwcomp/internal/blocked"
	"lwcomp/internal/sel"
)

// Expr is a predicate over a table's columns: a tree of Range/Eq/In
// leaves under And/Or/Not combinators, built once and reusable across
// scans and tables. Expressions are immutable after construction and
// safe for concurrent use; Table.Scan evaluates them per block on the
// compressed columns. The interface is sealed — implementations live
// in this package and arrive through the constructors.
type Expr interface {
	// String renders the predicate in the mini-language Parse accepts.
	String() string

	// check validates the expression against a table (columns exist,
	// no nil children). It must not allocate on success: Scan calls it
	// on the steady-state path.
	check(t *Table) error
	// prune classifies block blk with stats only, never fetching a
	// payload.
	prune(t *Table, blk int) tri
	// evalBlock evaluates the predicate on block blk alone into dst,
	// a cleared block-local selection (row r of the block is bit r).
	// The planner only calls it when prune returned triUnknown.
	evalBlock(t *Table, blk int, dst *sel.Selection) error
	// evalWhole evaluates the predicate over the full column domain
	// into dst, a cleared selection of t.n rows — the fallback for
	// tables whose columns do not share block boundaries.
	evalWhole(t *Table, dst *sel.Selection) error
	// estimate guesses the fraction of block blk's rows that match,
	// from stats alone; the conjunction planner evaluates the leaf
	// with the smallest estimate first.
	estimate(t *Table, blk int) float64
	// prefetchCol names the table column whose payload evalBlock on
	// block blk will fetch first, from stats alone — the scan paths
	// announce it to the storage prefetcher one block ahead. ok is
	// false when no fetch is certain. Implementations must stay in
	// lockstep with their evalBlock's evaluation order: naming a
	// column evalBlock then never touches turns prefetch into wasted
	// reads (never incorrectness, but measurable I/O).
	prefetchCol(t *Table, blk int) (col int, ok bool)
}

// tri is the three-valued verdict of stats-only pruning.
type tri uint8

const (
	// triUnknown: the stats cannot decide; the payload must be
	// consulted.
	triUnknown tri = iota
	// triFalse: the stats refute the predicate for every row.
	triFalse
	// triTrue: the stats prove the predicate for every row.
	triTrue
)

// Range returns the predicate lo ≤ col ≤ hi (both bounds inclusive).
// Use math.MinInt64 / math.MaxInt64 for half-open comparisons. An
// inverted range (lo > hi) matches nothing.
func Range(col string, lo, hi int64) Expr {
	return &rangeNode{col: col, lo: lo, hi: hi}
}

// Eq returns the predicate col == v.
func Eq(col string, v int64) Expr {
	return &rangeNode{col: col, lo: v, hi: v}
}

// In returns the predicate col ∈ vals. The values are copied, sorted
// and deduplicated; runs of consecutive integers evaluate as single
// range probes. In with no values matches nothing.
func In(col string, vals ...int64) Expr {
	vs := slices.Clone(vals)
	slices.Sort(vs)
	vs = slices.Compact(vs)
	return &inNode{col: col, vals: vs}
}

// And returns the conjunction of kids. And() with no operands matches
// every row.
func And(kids ...Expr) Expr {
	return &andNode{kids: slices.Clone(kids)}
}

// Or returns the disjunction of kids. Or() with no operands matches
// nothing.
func Or(kids ...Expr) Expr {
	return &orNode{kids: slices.Clone(kids)}
}

// Not returns the negation of kid.
func Not(kid Expr) Expr {
	return &notNode{kid: kid}
}

// rangeNode is the Range/Eq leaf: lo ≤ col ≤ hi.
type rangeNode struct {
	col    string
	lo, hi int64
}

func (n *rangeNode) String() string {
	switch {
	case n.lo > n.hi:
		return fmt.Sprintf("%s in ()", n.col) // the canonical never-matches form
	case n.lo == n.hi:
		return fmt.Sprintf("%s = %d", n.col, n.lo)
	case n.lo == math.MinInt64:
		return fmt.Sprintf("%s <= %d", n.col, n.hi)
	case n.hi == math.MaxInt64:
		return fmt.Sprintf("%s >= %d", n.col, n.lo)
	default:
		return fmt.Sprintf("%s >= %d and %s <= %d", n.col, n.lo, n.col, n.hi)
	}
}

func (n *rangeNode) check(t *Table) error {
	_, err := t.colByName(n.col)
	return err
}

func (n *rangeNode) column(t *Table) *blocked.Column {
	return t.cols[t.index[n.col]].Col
}

func (n *rangeNode) prune(t *Table, blk int) tri {
	switch n.column(t).Blocks[blk].ClassifyRange(n.lo, n.hi) {
	case blocked.RangeMiss:
		return triFalse
	case blocked.RangeAll:
		return triTrue
	default:
		return triUnknown
	}
}

func (n *rangeNode) evalBlock(t *Table, blk int, dst *sel.Selection) error {
	return n.column(t).SelectBlockRangeSel(blk, n.lo, n.hi, dst, 0)
}

func (n *rangeNode) evalWhole(t *Table, dst *sel.Selection) error {
	bm, err := n.column(t).SelectRangeSel(n.lo, n.hi)
	if err != nil {
		return err
	}
	err = dst.Union(bm)
	bm.Release()
	return err
}

func (n *rangeNode) estimate(t *Table, blk int) float64 {
	b := &n.column(t).Blocks[blk]
	if !b.HasStats || n.lo > n.hi {
		return 1
	}
	lo, hi := n.lo, n.hi
	if lo < b.Min {
		lo = b.Min
	}
	if hi > b.Max {
		hi = b.Max
	}
	if lo > hi {
		return 0
	}
	// Assume values spread uniformly over the block's [min, max]; the
	// float conversions keep full-int64 ranges from overflowing.
	return (float64(hi) - float64(lo) + 1) / (float64(b.Max) - float64(b.Min) + 1)
}

func (n *rangeNode) prefetchCol(t *Table, blk int) (int, bool) {
	// evalBlock fetches the leaf's column exactly when the stats leave
	// the block undecided.
	if n.column(t).Blocks[blk].ClassifyRange(n.lo, n.hi) != blocked.RangePart {
		return 0, false
	}
	return t.index[n.col], true
}

// inNode is the In leaf: col ∈ vals, vals sorted and deduplicated.
type inNode struct {
	col  string
	vals []int64
}

func (n *inNode) String() string {
	var b strings.Builder
	b.WriteString(n.col)
	b.WriteString(" in (")
	for i, v := range n.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteString(")")
	return b.String()
}

func (n *inNode) check(t *Table) error {
	_, err := t.colByName(n.col)
	return err
}

func (n *inNode) column(t *Table) *blocked.Column {
	return t.cols[t.index[n.col]].Col
}

// runs visits the maximal runs of consecutive values in n.vals as
// inclusive [lo, hi] ranges — In(3,4,5,9) probes [3,5] and [9,9].
func (n *inNode) runs(visit func(lo, hi int64) error) error {
	for i := 0; i < len(n.vals); {
		j := i + 1
		for j < len(n.vals) && n.vals[j] == n.vals[j-1]+1 {
			j++
		}
		if err := visit(n.vals[i], n.vals[j-1]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

func (n *inNode) prune(t *Table, blk int) tri {
	if len(n.vals) == 0 {
		return triFalse
	}
	b := &n.column(t).Blocks[blk]
	if !b.HasStats {
		return triUnknown
	}
	// First value ≥ min; the set overlaps the block iff it is ≤ max.
	i, _ := slices.BinarySearch(n.vals, b.Min)
	if i == len(n.vals) || n.vals[i] > b.Max {
		return triFalse
	}
	if b.Min == b.Max {
		// Constant block: overlap means the constant is in the set.
		return triTrue
	}
	return triUnknown
}

func (n *inNode) evalBlock(t *Table, blk int, dst *sel.Selection) error {
	c := n.column(t)
	return n.runs(func(lo, hi int64) error {
		return c.SelectBlockRangeSel(blk, lo, hi, dst, 0)
	})
}

func (n *inNode) evalWhole(t *Table, dst *sel.Selection) error {
	c := n.column(t)
	return n.runs(func(lo, hi int64) error {
		bm, err := c.SelectRangeSel(lo, hi)
		if err != nil {
			return err
		}
		err = dst.Union(bm)
		bm.Release()
		return err
	})
}

func (n *inNode) estimate(t *Table, blk int) float64 {
	b := &n.column(t).Blocks[blk]
	if !b.HasStats {
		return 1
	}
	width := float64(b.Max) - float64(b.Min) + 1
	if est := float64(len(n.vals)) / width; est < 1 {
		return est
	}
	return 1
}

func (n *inNode) prefetchCol(t *Table, blk int) (int, bool) {
	// evalBlock probes each run against the payload; any run the stats
	// cannot decide forces a fetch of the leaf's column.
	b := &n.column(t).Blocks[blk]
	hit := false
	n.runs(func(lo, hi int64) error {
		if b.ClassifyRange(lo, hi) == blocked.RangePart {
			hit = true
		}
		return nil
	})
	if !hit {
		return 0, false
	}
	return t.index[n.col], true
}

// andNode is the conjunction combinator.
type andNode struct {
	kids []Expr
}

func (n *andNode) String() string { return joinKids(n.kids, " and ", "true") }

func (n *andNode) check(t *Table) error { return checkKids(t, n.kids) }

func (n *andNode) prune(t *Table, blk int) tri {
	out := triTrue
	for _, k := range n.kids {
		switch k.prune(t, blk) {
		case triFalse:
			return triFalse
		case triUnknown:
			out = triUnknown
		}
	}
	return out
}

// evalBlock evaluates the conjunction on one undecided block: the
// undecided child with the smallest selectivity estimate runs first,
// and every later child is skipped once the intersection is empty —
// on a lazy container that means later columns' payloads are never
// fetched. Children the stats already prove contribute nothing to the
// intersection and are skipped outright.
func (n *andNode) evalBlock(t *Table, blk int, dst *sel.Selection) error {
	best, bestEst := -1, math.Inf(1)
	for i, k := range n.kids {
		switch k.prune(t, blk) {
		case triFalse:
			// Defensive: the planner never sends a refuted block here.
			return nil
		case triTrue:
			continue
		}
		if est := k.estimate(t, blk); est < bestEst {
			best, bestEst = i, est
		}
	}
	if best < 0 {
		// All children proved: the whole block matches.
		dst.AddRun(0, dst.Len())
		return nil
	}
	if err := n.kids[best].evalBlock(t, blk, dst); err != nil {
		return err
	}
	for i, k := range n.kids {
		if i == best || k.prune(t, blk) == triTrue {
			continue
		}
		if dst.Count() == 0 {
			return nil
		}
		tmp := sel.Get(dst.Len())
		if err := k.evalBlock(t, blk, tmp); err != nil {
			tmp.Release()
			return err
		}
		err := dst.And(tmp)
		tmp.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

func (n *andNode) evalWhole(t *Table, dst *sel.Selection) error {
	if len(n.kids) == 0 {
		dst.AddRun(0, dst.Len())
		return nil
	}
	if err := n.kids[0].evalWhole(t, dst); err != nil {
		return err
	}
	for _, k := range n.kids[1:] {
		if dst.Count() == 0 {
			return nil
		}
		tmp := sel.Get(dst.Len())
		if err := k.evalWhole(t, tmp); err != nil {
			tmp.Release()
			return err
		}
		err := dst.And(tmp)
		tmp.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

func (n *andNode) estimate(t *Table, blk int) float64 {
	est := 1.0
	for _, k := range n.kids {
		est *= k.estimate(t, blk)
	}
	return est
}

// prefetchCol mirrors evalBlock's planning: the undecided child with
// the smallest estimate runs first, so its column is what the block's
// evaluation fetches first.
func (n *andNode) prefetchCol(t *Table, blk int) (int, bool) {
	best, bestEst := -1, math.Inf(1)
	for i, k := range n.kids {
		switch k.prune(t, blk) {
		case triFalse:
			return 0, false
		case triTrue:
			continue
		}
		if est := k.estimate(t, blk); est < bestEst {
			best, bestEst = i, est
		}
	}
	if best < 0 {
		return 0, false
	}
	return n.kids[best].prefetchCol(t, blk)
}

// orNode is the disjunction combinator.
type orNode struct {
	kids []Expr
}

func (n *orNode) String() string { return joinKids(n.kids, " or ", "false") }

func (n *orNode) check(t *Table) error { return checkKids(t, n.kids) }

func (n *orNode) prune(t *Table, blk int) tri {
	out := triFalse
	for _, k := range n.kids {
		switch k.prune(t, blk) {
		case triTrue:
			return triTrue
		case triUnknown:
			out = triUnknown
		}
	}
	return out
}

func (n *orNode) evalBlock(t *Table, blk int, dst *sel.Selection) error {
	for _, k := range n.kids {
		switch k.prune(t, blk) {
		case triFalse:
			continue
		case triTrue:
			// Defensive: the planner never sends a proved block here.
			dst.AddRun(0, dst.Len())
			return nil
		}
		// Leaves OR their matches into dst, so they accumulate the
		// union directly; composite children assume a cleared
		// destination (And intersects into it, Not complements it) and
		// must go through a pooled temporary.
		if isLeaf(k) {
			if err := k.evalBlock(t, blk, dst); err != nil {
				return err
			}
			continue
		}
		tmp := sel.Get(dst.Len())
		if err := k.evalBlock(t, blk, tmp); err != nil {
			tmp.Release()
			return err
		}
		err := dst.Union(tmp)
		tmp.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

func (n *orNode) evalWhole(t *Table, dst *sel.Selection) error {
	for _, k := range n.kids {
		// See evalBlock: only leaves may share the destination.
		if isLeaf(k) {
			if err := k.evalWhole(t, dst); err != nil {
				return err
			}
			continue
		}
		tmp := sel.Get(dst.Len())
		if err := k.evalWhole(t, tmp); err != nil {
			tmp.Release()
			return err
		}
		err := dst.Union(tmp)
		tmp.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// isLeaf reports whether e ORs its matches into the destination (and
// so may share a partially filled one), as the Range/Eq/In leaves do.
func isLeaf(e Expr) bool {
	switch e.(type) {
	case *rangeNode, *inNode:
		return true
	}
	return false
}

func (n *orNode) estimate(t *Table, blk int) float64 {
	est := 0.0
	for _, k := range n.kids {
		est += k.estimate(t, blk)
	}
	if est > 1 {
		return 1
	}
	return est
}

// prefetchCol mirrors evalBlock's order: the first non-refuted child
// evaluates first, so its first fetch is the disjunction's.
func (n *orNode) prefetchCol(t *Table, blk int) (int, bool) {
	for _, k := range n.kids {
		switch k.prune(t, blk) {
		case triFalse:
			continue
		case triTrue:
			return 0, false
		}
		return k.prefetchCol(t, blk)
	}
	return 0, false
}

// notNode is the negation combinator.
type notNode struct {
	kid Expr
}

func (n *notNode) String() string { return "not (" + n.kid.String() + ")" }

func (n *notNode) check(t *Table) error {
	if n.kid == nil {
		return fmt.Errorf("table: Not(nil) expression")
	}
	return n.kid.check(t)
}

func (n *notNode) prune(t *Table, blk int) tri {
	switch n.kid.prune(t, blk) {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triUnknown
	}
}

func (n *notNode) evalBlock(t *Table, blk int, dst *sel.Selection) error {
	if err := n.kid.evalBlock(t, blk, dst); err != nil {
		return err
	}
	dst.Not()
	return nil
}

func (n *notNode) evalWhole(t *Table, dst *sel.Selection) error {
	if err := n.kid.evalWhole(t, dst); err != nil {
		return err
	}
	dst.Not()
	return nil
}

func (n *notNode) estimate(t *Table, blk int) float64 {
	return 1 - n.kid.estimate(t, blk)
}

func (n *notNode) prefetchCol(t *Table, blk int) (int, bool) {
	return n.kid.prefetchCol(t, blk)
}

// joinKids renders a combinator's children, parenthesized, or the
// identity literal when there are none.
func joinKids(kids []Expr, sep, empty string) string {
	if len(kids) == 0 {
		return empty
	}
	parts := make([]string, len(kids))
	for i, k := range kids {
		if k == nil {
			parts[i] = "<nil>"
			continue
		}
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// checkKids validates a combinator's children against t.
func checkKids(t *Table, kids []Expr) error {
	for _, k := range kids {
		if k == nil {
			return fmt.Errorf("table: nil expression operand")
		}
		if err := k.check(t); err != nil {
			return err
		}
	}
	return nil
}
