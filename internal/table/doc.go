// Package table implements the multi-column scan engine behind the
// public lwcomp.Table API: composable predicate expressions evaluated
// as operator plans directly on compressed columns, with cross-column
// pushdown and late materialization.
//
// The paper's decomposition argument is that queries should run on the
// compressed constituents themselves; packages query and blocked apply
// it one column at a time. This package extends it to whole analytical
// predicates over several columns. An expression tree built from
// Range/Eq/In leaves under And/Or/Not combinators is planned per
// block:
//
//   - every leaf is first classified against its own column's
//     per-block [min, max] stats, giving a three-valued verdict per
//     block (refuted / proved / undecided) that propagates through the
//     combinators — a block any conjunct refutes is skipped without
//     fetching any column's payload, and a block every predicate
//     proves emits its whole row span as one bitmap run;
//   - undecided blocks evaluate each undecided leaf on its own
//     column's compressed form through the fused unpack-and-compare
//     kernels, producing block-local bitmap selections that intersect
//     as word-granular ANDs (package sel); conjunctions evaluate their
//     cheapest-looking leaf first (the stats-overlap estimate) and
//     stop fetching further columns once the intersection is empty;
//   - the surviving selection drives projection and aggregation
//     (Scan.Rows, Count, Sum, Materialize), which fetch and decode
//     only the blocks still holding set bits — on a lazily opened
//     container, columns never touched by the predicate or the
//     projection never leave the file.
//
// Per-block planning requires every referenced column to share block
// boundaries (columns encoded from equal-length inputs with one block
// size always do). Tables whose columns do not align fall back to
// whole-column evaluation per leaf — still exact, still fused, but
// without cross-column block skipping.
//
// All per-scan state — the selection, the block classifications, the
// per-block scratch selections — is pooled, so a steady-state scan
// with a prebuilt expression allocates nothing.
package table
