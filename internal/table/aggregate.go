package table

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
	"lwcomp/internal/query"
	"lwcomp/internal/sel"
)

// This file is the fused scan+aggregate path: Count and Sum queries
// answered in one pass over the compressed blocks, without ever
// building the table-wide selection a Scan would hand back. The
// per-block plan is the same as scanAligned's — stats-refuted blocks
// never fetch, stats-proved blocks contribute whole-block counts and
// compressed-form sums — but undecided blocks go straight from
// predicate evaluation to the aggregate: a Range/Eq/In leaf whose sum
// column is the predicate column (or a pure count) runs entirely on
// the packed words through query.CountRange / query.SumRange, and
// composite predicates consume their block-local selection in place
// instead of merging it into a result bitmap. Degraded semantics
// match the Scan-then-Sum pipeline exactly: a predicate-side failure
// drops the block's rows from the count and every sum, a sum-side
// failure on a matched block keeps the count and omits only that
// column's contribution, and both record the block in the Manifest.

// AggregateResult is what Table.Aggregate returns: the matched-row
// count, one sum per requested column (parallel to the sumCols
// argument), and — when the aggregate ran degraded — the manifest of
// skipped blocks.
type AggregateResult struct {
	// Matched is the number of rows the predicate selected.
	Matched int64
	// Sums holds the per-column sums over the matched rows, parallel
	// to the sumCols argument; nil when no sums were requested.
	Sums []int64
	// Manifest records the blocks a degraded aggregate skipped; nil
	// unless the aggregate ran in degraded mode.
	Manifest *Manifest
}

// Aggregate evaluates e and returns the matched-row count plus the
// sums of sumCols over the matched rows, fused into a single pass —
// the one-shot equivalent of Scan + Count + Sum that never
// materializes the scan's selection. On a misaligned table it falls
// back to exactly that pipeline, so results (including degraded-mode
// semantics) are identical either way.
func (t *Table) Aggregate(ctx context.Context, e Expr, sumCols []string, opt ScanOptions) (AggregateResult, error) {
	if e == nil {
		return AggregateResult{}, fmt.Errorf("table: Aggregate of a nil expression")
	}
	if err := e.check(t); err != nil {
		return AggregateResult{}, err
	}
	if !t.aligned {
		return t.aggregateWhole(ctx, e, sumCols, opt)
	}
	cols := make([]*blocked.Column, len(sumCols))
	for i, name := range sumCols {
		c, err := t.colByName(name)
		if err != nil {
			return AggregateResult{}, err
		}
		cols[i] = c
	}
	var man *Manifest
	if opt.Degraded {
		man = &Manifest{}
	}
	res := AggregateResult{Manifest: man}
	if len(sumCols) > 0 {
		res.Sums = make([]int64, len(sumCols))
	}
	matched, err := t.aggregateAligned(ctx, e, cols, sumCols, res.Sums, man)
	if err != nil {
		return AggregateResult{}, err
	}
	res.Matched = matched
	return res, nil
}

// CountWhere returns the number of rows matching e without building a
// selection — the fused count. It is allocation-free in the steady
// state on an aligned table with one worker. Failures are always
// fatal; use Aggregate for degraded counting.
func (t *Table) CountWhere(ctx context.Context, e Expr) (int64, error) {
	if e == nil {
		return 0, fmt.Errorf("table: CountWhere of a nil expression")
	}
	if err := e.check(t); err != nil {
		return 0, err
	}
	if !t.aligned {
		s, err := t.ScanWith(ctx, e, ScanOptions{})
		if err != nil {
			return 0, err
		}
		n := int64(s.Count())
		s.Release()
		return n, nil
	}
	return t.aggregateAligned(ctx, e, nil, nil, nil, nil)
}

// SumWhere returns the sum of col over the rows matching e, plus the
// matched-row count, in one fused pass. Like CountWhere it is
// allocation-free in the serial steady state and always fail-fast;
// use Aggregate for degraded sums.
func (t *Table) SumWhere(ctx context.Context, e Expr, col string) (sum, matched int64, err error) {
	if e == nil {
		return 0, 0, fmt.Errorf("table: SumWhere of a nil expression")
	}
	if err := e.check(t); err != nil {
		return 0, 0, err
	}
	c, err := t.colByName(col)
	if err != nil {
		return 0, 0, err
	}
	if !t.aligned {
		s, err := t.ScanWith(ctx, e, ScanOptions{})
		if err != nil {
			return 0, 0, err
		}
		defer s.Release()
		v, err := s.SumContext(ctx, col)
		if err != nil {
			return 0, 0, err
		}
		return v, int64(s.Count()), nil
	}
	// The argument arrays come from a pool: the parallel path's
	// closure makes them escape, so stack arrays would heap-allocate
	// per call even on the serial path.
	a := aggArgsPool.Get().(*aggArgs)
	a.cols[0], a.names[0], a.sums[0] = c, col, 0
	matched, err = t.aggregateAligned(ctx, e, a.cols[:], a.names[:], a.sums[:], nil)
	sum = a.sums[0]
	aggArgsPool.Put(a)
	if err != nil {
		return 0, 0, err
	}
	return sum, matched, nil
}

// aggArgs is SumWhere's pooled single-column argument block.
type aggArgs struct {
	cols  [1]*blocked.Column
	names [1]string
	sums  [1]int64
}

var aggArgsPool = sync.Pool{New: func() any { return new(aggArgs) }}

// aggregateWhole is the misaligned-table fallback: the classic
// Scan → Count → Sum pipeline, preserving its exact semantics.
func (t *Table) aggregateWhole(ctx context.Context, e Expr, sumCols []string, opt ScanOptions) (AggregateResult, error) {
	s, err := t.ScanWith(ctx, e, opt)
	if err != nil {
		return AggregateResult{}, err
	}
	defer s.Release()
	res := AggregateResult{Matched: int64(s.Count()), Manifest: s.Manifest()}
	if len(sumCols) > 0 {
		res.Sums = make([]int64, len(sumCols))
		for i, name := range sumCols {
			if res.Sums[i], err = s.SumContext(ctx, name); err != nil {
				return AggregateResult{}, err
			}
		}
	}
	return res, nil
}

// aggregateAligned runs the fused per-block plan. cols/names/sums are
// parallel (all may be empty for a pure count); sums is committed
// with atomic adds so the parallel path and the serial path share one
// code shape. A non-nil man puts the pass in degraded mode.
func (t *Table) aggregateAligned(ctx context.Context, e Expr, cols []*blocked.Column, names []string, sums []int64, man *Manifest) (int64, error) {
	blocks := t.cols[0].Col.Blocks
	st := getScanState(len(blocks))
	defer st.release()
	skipped, proved := 0, 0
	var matched int64
	for i := range blocks {
		st.classes[i] = e.prune(t, i)
		switch st.classes[i] {
		case triTrue:
			proved++
			matched += int64(blocks[i].Count)
		case triFalse:
			skipped++
		case triUnknown:
			st.parts = append(st.parts, i)
		}
	}
	t.counters.skipped.Add(int64(skipped))
	t.counters.proved.Add(int64(proved))
	t.counters.fetched.Add(int64(len(st.parts)))

	// Proved blocks contribute compressed-form sums without a
	// selection; a permanent failure here keeps the block's count (the
	// stats proved those rows match) and omits only the broken
	// column's sum, exactly like Scan.Sum on a fully selected block.
	if len(cols) > 0 && proved > 0 {
		for i := range blocks {
			if st.classes[i] != triTrue || blocks[i].Count == 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			for ci, c := range cols {
				v, err := c.SumBlock(i)
				if err != nil {
					if man != nil && blocked.IsPermanent(err) {
						noteColSkip(man, names[ci], i, &blocks[i], err)
						continue
					}
					return 0, err
				}
				atomic.AddInt64(&sums[ci], v)
			}
		}
	}

	workers := t.workers()
	if workers > len(st.parts) {
		workers = len(st.parts)
	}
	if workers <= 1 {
		sc := core.GetScratch()
		defer sc.Release()
		for k, i := range st.parts {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if k+1 < len(st.parts) {
				t.announcePrefetch(ctx, e, st.parts[k+1])
			}
			cnt, err := t.aggregateBlock(e, i, cols, names, sums, sc, man)
			if err != nil {
				if man != nil && blocked.IsPermanent(err) {
					t.noteEvalSkip(man, i, &blocks[i], err)
					continue
				}
				return 0, err
			}
			matched += cnt
		}
		return matched, nil
	}
	// The concurrent remainder lives in its own function: its closure
	// captures the accumulators and makes them escape, which would
	// heap-allocate on every call — including the serial path's — if
	// it shared this frame.
	pm, err := t.aggregateParallel(ctx, e, blocks, st, cols, names, sums, man, workers)
	if err != nil {
		return 0, err
	}
	return matched + pm, nil
}

// aggregateParallel runs the undecided blocks concurrently, committing
// counts and sums with atomic adds.
func (t *Table) aggregateParallel(ctx context.Context, e Expr, blocks []blocked.Block, st *scanState, cols []*blocked.Column, names []string, sums []int64, man *Manifest, workers int) (int64, error) {
	var matched int64
	err := blocked.ParallelFor(workers, len(st.parts), func(pi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pi+1 < len(st.parts) {
			t.announcePrefetch(ctx, e, st.parts[pi+1])
		}
		i := st.parts[pi]
		sc := core.GetScratch()
		defer sc.Release()
		cnt, err := t.aggregateBlock(e, i, cols, names, sums, sc, man)
		if err != nil {
			if man != nil && blocked.IsPermanent(err) {
				t.noteEvalSkip(man, i, &blocks[i], err)
				return nil
			}
			return err
		}
		atomic.AddInt64(&matched, cnt)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return matched, nil
}

// aggregateBlock counts (and sums) one undecided block. Leaf
// predicates whose sum column is the predicate column — or pure
// counts — run on the compressed form through the fused range
// kernels, one pass over the packed words with no selection at all.
// Everything else evaluates the predicate into a pooled block-local
// selection and consumes it immediately. An error means the block's
// predicate side failed: the caller drops the block (count and sums)
// and, in degraded mode, records it. Sum-side failures on matched
// rows degrade in place, per column.
func (t *Table) aggregateBlock(e Expr, i int, cols []*blocked.Column, names []string, sums []int64, sc *core.Scratch, man *Manifest) (int64, error) {
	b := &t.cols[0].Col.Blocks[i]
	if b.Count == 0 {
		return 0, nil
	}
	switch n := e.(type) {
	case *rangeNode:
		c := n.column(t)
		if len(cols) == 0 {
			f, err := c.BlockForm(i)
			if err != nil {
				return 0, err
			}
			return query.CountRange(f, n.lo, n.hi)
		}
		if len(cols) == 1 && cols[0] == c {
			f, err := c.BlockForm(i)
			if err != nil {
				return 0, err
			}
			s, cnt, err := query.SumRange(f, n.lo, n.hi)
			if err != nil {
				return 0, err
			}
			atomic.AddInt64(&sums[0], s)
			return cnt, nil
		}
	case *inNode:
		c := n.column(t)
		if len(cols) == 0 || (len(cols) == 1 && cols[0] == c) {
			return t.aggregateInLeaf(n, c, i, sums, len(cols) == 1)
		}
	}

	local := sel.Get(b.Count)
	if err := e.evalBlock(t, i, local); err != nil {
		local.Release()
		return 0, err
	}
	cnt := int64(local.Count())
	if cnt > 0 {
		for ci, c := range cols {
			var v int64
			var err error
			if int(cnt) == b.Count {
				v, err = c.SumBlock(i)
			} else if lo, hi, f, ok := sameColRangeLeaf(e, t, c, i); ok {
				// The predicate is a Range leaf over this very sum
				// column: its matched rows are exactly the in-range
				// rows, so the fused kernel sums them on the
				// compressed form without a decode.
				v, _, err = query.SumRange(f, lo, hi)
			} else {
				vals := sc.I64(b.Count)
				if err = c.DecompressBlock(i, vals); err == nil {
					v = maskedSum(local, 0, vals)
				}
				sc.PutI64(vals)
			}
			if err != nil {
				if man != nil && blocked.IsPermanent(err) {
					noteColSkip(man, names[ci], i, b, err)
					continue
				}
				local.Release()
				return 0, err
			}
			atomic.AddInt64(&sums[ci], v)
		}
	}
	local.Release()
	return cnt, nil
}

// aggregateInLeaf fuses an In leaf: each maximal run of consecutive
// values probes the compressed form as one range. Runs are disjoint,
// so per-run counts and sums add without double counting. The run
// walk is inlined (no closure) to keep the serial path off the heap.
func (t *Table) aggregateInLeaf(n *inNode, c *blocked.Column, i int, sums []int64, wantSum bool) (int64, error) {
	cb := &c.Blocks[i]
	var f *core.Form
	var cnt, sum int64
	vals := n.vals
	for a := 0; a < len(vals); {
		j := a + 1
		for j < len(vals) && vals[j] == vals[j-1]+1 {
			j++
		}
		lo, hi := vals[a], vals[j-1]
		a = j
		if cb.ClassifyRange(lo, hi) == blocked.RangeMiss {
			continue
		}
		if f == nil {
			var err error
			if f, err = c.BlockForm(i); err != nil {
				return 0, err
			}
		}
		if wantSum {
			s, rc, err := query.SumRange(f, lo, hi)
			if err != nil {
				return 0, err
			}
			sum += s
			cnt += rc
			continue
		}
		rc, err := query.CountRange(f, lo, hi)
		if err != nil {
			return 0, err
		}
		cnt += rc
	}
	if wantSum && sum != 0 {
		atomic.AddInt64(&sums[0], sum)
	}
	return cnt, nil
}

// sameColRangeLeaf reports whether e is a Range leaf over exactly c
// AND block i's form sums structurally, returning the bounds and form.
// When both hold, the matched rows of the block are exactly the
// in-range rows, so c's sum over them comes from the fused SumRange
// kernel instead of a decode. Composite predicates match a subset of
// the leaf's range and must not take this shortcut (they never reach
// here: e is the whole expression); non-structural forms would pay
// SumRange's materializing fallback on top of the decode the caller
// is about to do anyway.
func sameColRangeLeaf(e Expr, t *Table, c *blocked.Column, i int) (lo, hi int64, f *core.Form, ok bool) {
	n, isRange := e.(*rangeNode)
	if !isRange || n.column(t) != c {
		return 0, 0, nil, false
	}
	f, err := c.BlockForm(i)
	if err != nil || !query.SumRangeIsStructural(f) {
		return 0, 0, nil, false
	}
	return n.lo, n.hi, f, true
}

// noteColSkip records a sum column's permanently unreadable block —
// the aggregate-side analogue of Scan.noteSkip.
func noteColSkip(man *Manifest, col string, i int, b *blocked.Block, err error) {
	man.add(SkippedBlock{Column: col, Block: i,
		RowStart: b.Start, RowCount: b.Count, Reason: err.Error()})
}
