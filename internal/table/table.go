package table

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
	"lwcomp/internal/sel"
	"lwcomp/internal/storage"
)

// Table is a queryable handle over the named columns of one logical
// table: every column has the same number of rows, and — when the
// columns share block boundaries — scans plan and skip per block
// across all of them. Columns may be in-memory or lazily opened from
// a container; a table over lazy columns fetches only the blocks its
// scans admit.
type Table struct {
	cols  []storage.BlockedColumn
	index map[string]int
	n     int
	// aligned reports whether every column shares cols[0]'s block
	// boundaries, enabling the per-block cross-column plan.
	aligned bool
	// Parallelism bounds the number of blocks scanned concurrently;
	// <= 0 means GOMAXPROCS. New seeds it from the first column.
	Parallelism int
	// Degraded makes Scan and ScanContext run in degraded mode by
	// default (see ScanOptions.Degraded); ScanWith overrides it per
	// scan. OpenTable's WithDegradedScan option sets it.
	Degraded  bool
	closers   []io.Closer
	closeOnce sync.Once
	closeErr  error
	// counters accumulates block-level plan outcomes across every
	// scan on the table (see ScanCounters).
	counters struct{ skipped, proved, fetched atomic.Int64 }
}

// New builds a table over cols, validating that there is at least one
// column, that names are unique and non-empty, and that every column
// has the same row count. closer, if non-nil, is released by Close —
// the open container behind lazily opened columns. The table borrows
// the column handles; it does not copy them.
func New(cols []storage.BlockedColumn, closer io.Closer) (*Table, error) {
	if closer == nil {
		return NewWithClosers(cols)
	}
	return NewWithClosers(cols, closer)
}

// NewWithClosers builds a table whose columns come from several open
// containers — a server mounting `<table>.<column>.lwc` files, one
// container per column. Close releases every closer exactly once,
// however many column handles forward to it and however many times
// Close is called.
func NewWithClosers(cols []storage.BlockedColumn, closers ...io.Closer) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: no columns")
	}
	t := &Table{
		cols:    cols,
		index:   make(map[string]int, len(cols)),
		closers: closers,
	}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has no name", i)
		}
		if c.Col == nil {
			return nil, fmt.Errorf("table: column %q is nil", c.Name)
		}
		if _, dup := t.index[c.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		t.index[c.Name] = i
		if i == 0 {
			t.n = c.Col.N
		} else if c.Col.N != t.n {
			return nil, fmt.Errorf("table: column %q has %d rows, %q has %d",
				c.Name, c.Col.N, cols[0].Name, t.n)
		}
	}
	t.aligned = true
	for _, c := range cols[1:] {
		if !cols[0].Col.BoundariesEqual(c.Col) {
			t.aligned = false
			break
		}
	}
	t.Parallelism = cols[0].Col.Parallelism
	return t, nil
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int { return t.n }

// ColumnNames returns the column names in table order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// Column returns the named column's handle.
func (t *Table) Column(name string) (*blocked.Column, error) {
	return t.colByName(name)
}

// Aligned reports whether every column shares block boundaries, the
// precondition for per-block cross-column planning. Misaligned tables
// still scan correctly through whole-column evaluation.
func (t *Table) Aligned() bool { return t.aligned }

// Close releases the containers behind the table's columns, when the
// table owns any, each exactly once — calling Close again (or
// concurrently) is safe and returns the first call's result. It is a
// no-op for in-memory tables.
func (t *Table) Close() error {
	t.closeOnce.Do(func() {
		for _, c := range t.closers {
			if err := c.Close(); err != nil && t.closeErr == nil {
				t.closeErr = err
			}
		}
	})
	return t.closeErr
}

// ScanCounters snapshots the cumulative block-level outcomes of every
// scan planned on this table: blocks skipped (stats refuted — never
// fetched), proved (stats satisfied — emitted as whole runs, never
// fetched), and fetched (undecided — payloads consulted). Servers
// export the counters per table; the deltas across a query window are
// the pushdown's observable win.
func (t *Table) ScanCounters() blocked.ScanCounters {
	return blocked.ScanCounters{
		Skipped: t.counters.skipped.Load(),
		Proved:  t.counters.proved.Load(),
		Fetched: t.counters.fetched.Load(),
	}
}

// colByName resolves a column name without allocating on the hit
// path (Scan calls it per leaf).
func (t *Table) colByName(name string) (*blocked.Column, error) {
	i, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	return t.cols[i].Col, nil
}

// workers mirrors the column handles' parallelism convention.
func (t *Table) workers() int {
	if t.Parallelism > 0 {
		return t.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// scanState is the pooled per-scan planner state: the per-block
// three-valued verdicts, the undecided block list, and the merge
// slots the parallel path fills.
type scanState struct {
	classes []tri
	parts   []int
	sels    []*sel.Selection
}

var scanStatePool = sync.Pool{New: func() any { return new(scanState) }}

// getScanState returns a pooled scanState sized for nblocks.
func getScanState(nblocks int) *scanState {
	st := scanStatePool.Get().(*scanState)
	if cap(st.classes) < nblocks {
		st.classes = make([]tri, nblocks)
	} else {
		st.classes = st.classes[:nblocks]
	}
	st.parts = st.parts[:0]
	if cap(st.sels) < nblocks {
		st.sels = make([]*sel.Selection, nblocks)
	} else {
		st.sels = st.sels[:nblocks]
		for i := range st.sels {
			st.sels[i] = nil
		}
	}
	return st
}

func (st *scanState) release() { scanStatePool.Put(st) }

// Scan evaluates the predicate over the table and returns the result
// handle. On an aligned table the expression is planned per block:
// stats-refuted blocks are skipped without touching any column,
// stats-proved blocks emit whole runs, and only the undecided
// remainder evaluates on the compressed payloads (concurrently,
// bounded by Parallelism). The scan's selection comes from the shared
// pool — Release the handle to keep steady-state scans
// allocation-free.
func (t *Table) Scan(e Expr) (*Scan, error) {
	return t.ScanContext(context.Background(), e)
}

// ScanContext is Scan with a cancellation seam: the block iteration
// checks ctx between blocks (and between parallel work items), so a
// client that disconnects or a request that outlives its deadline
// stops fetching and decoding mid-scan and returns ctx.Err(). A
// Background context makes it exactly Scan — the check is one atomic
// load per block, so the steady state stays allocation-free.
func (t *Table) ScanContext(ctx context.Context, e Expr) (*Scan, error) {
	return t.ScanWith(ctx, e, ScanOptions{Degraded: t.Degraded})
}

// ScanWith is ScanContext with per-scan options: opt.Degraded lets
// this one scan skip permanently unreadable blocks (recording each
// omission in the result's Manifest) regardless of the table's
// default. Degradation needs the per-block plan — on a misaligned
// table the whole-column fallback has no block to skip, so permanent
// errors stay fatal there.
func (t *Table) ScanWith(ctx context.Context, e Expr, opt ScanOptions) (*Scan, error) {
	if e == nil {
		return nil, fmt.Errorf("table: Scan of a nil expression")
	}
	if err := e.check(t); err != nil {
		return nil, err
	}
	var man *Manifest
	if opt.Degraded {
		man = &Manifest{}
	}
	dst := sel.Get(t.n)
	var err error
	if t.aligned {
		err = t.scanAligned(ctx, e, dst, man)
	} else {
		err = t.scanWhole(ctx, e, dst)
	}
	if err != nil {
		dst.Release()
		return nil, err
	}
	s := scanPool.Get().(*Scan)
	s.t, s.sel, s.manifest = t, dst, man
	return s, nil
}

// scanWhole is the misaligned-table fallback: whole-column evaluation,
// with the context checked once up front (the column paths have no
// per-block seam to thread it through).
func (t *Table) scanWhole(ctx context.Context, e Expr, dst *sel.Selection) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.evalWhole(t, dst)
}

// scanAligned is the per-block plan: classify every block through the
// expression tree with stats only, then evaluate just the undecided
// blocks, serially when one worker suffices (the allocation-free
// path) or concurrently with a deterministic block-order merge. A
// non-nil man puts the evaluation in degraded mode: blocks whose
// payloads fail permanently contribute no rows and are recorded in
// man instead of failing the scan.
func (t *Table) scanAligned(ctx context.Context, e Expr, dst *sel.Selection, man *Manifest) error {
	blocks := t.cols[0].Col.Blocks
	st := getScanState(len(blocks))
	defer st.release()
	skipped, proved := 0, 0
	for i := range blocks {
		st.classes[i] = e.prune(t, i)
		switch st.classes[i] {
		case triTrue:
			proved++
			dst.AddRun(int(blocks[i].Start), blocks[i].Count)
		case triFalse:
			skipped++
		case triUnknown:
			st.parts = append(st.parts, i)
		}
	}
	t.counters.skipped.Add(int64(skipped))
	t.counters.proved.Add(int64(proved))
	t.counters.fetched.Add(int64(len(st.parts)))
	workers := t.workers()
	if workers > len(st.parts) {
		workers = len(st.parts)
	}
	if workers <= 1 {
		for k, i := range st.parts {
			if err := ctx.Err(); err != nil {
				return err
			}
			if k+1 < len(st.parts) {
				t.announcePrefetch(ctx, e, st.parts[k+1])
			}
			b := &blocks[i]
			local := sel.Get(b.Count)
			if err := e.evalBlock(t, i, local); err != nil {
				local.Release()
				if man != nil && blocked.IsPermanent(err) {
					t.noteEvalSkip(man, i, b, err)
					continue
				}
				return err
			}
			dst.OrAt(local, int(b.Start))
			local.Release()
		}
		return nil
	}
	err := blocked.ParallelFor(workers, len(st.parts), func(pi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pi+1 < len(st.parts) {
			t.announcePrefetch(ctx, e, st.parts[pi+1])
		}
		i := st.parts[pi]
		local := sel.Get(blocks[i].Count)
		if err := e.evalBlock(t, i, local); err != nil {
			local.Release()
			if man != nil && blocked.IsPermanent(err) {
				t.noteEvalSkip(man, i, &blocks[i], err)
				return nil
			}
			return err
		}
		st.sels[i] = local
		return nil
	})
	if err != nil {
		for _, i := range st.parts {
			if st.sels[i] != nil {
				st.sels[i].Release()
				st.sels[i] = nil
			}
		}
		return err
	}
	for _, i := range st.parts {
		if st.sels[i] == nil {
			// Degraded-skipped block: no selection to merge.
			continue
		}
		dst.OrAt(st.sels[i], int(blocks[i].Start))
		st.sels[i].Release()
		st.sels[i] = nil
	}
	return nil
}

// announcePrefetch hints the storage layer about the next undecided
// block's first payload fetch: the expression names the column its
// evaluation order touches first, and that column's source overlaps
// the read with the current block's decode. Best-effort — columns
// without a prefetching source, resident blocks, and quarantined
// blocks all no-op.
func (t *Table) announcePrefetch(ctx context.Context, e Expr, blk int) {
	if ci, ok := e.prefetchCol(t, blk); ok {
		t.cols[ci].Col.Prefetch(ctx, blk)
	}
}

// Scan is the result of Table.Scan: the surviving rows as a bitmap
// selection, plus projection and aggregation methods that fetch and
// decode only the blocks still holding set bits. Release it when done
// — the selection returns to the shared pool, and the handle must not
// be used afterwards.
type Scan struct {
	t   *Table
	sel *sel.Selection
	// manifest is non-nil exactly when the scan ran degraded; the
	// projection and aggregation methods keep recording omissions into
	// it as they encounter unreadable blocks.
	manifest *Manifest
}

var scanPool = sync.Pool{New: func() any { return new(Scan) }}

// Release returns the scan's selection and the handle itself to their
// pools. The handle, and any Selection view obtained from it, must
// not be used afterwards. The Manifest, if one was obtained, remains
// valid — it is not pooled.
func (s *Scan) Release() {
	if s.sel != nil {
		s.sel.Release()
		s.sel = nil
	}
	s.t = nil
	s.manifest = nil
	scanPool.Put(s)
}

// Degraded reports whether the scan ran in degraded mode.
func (s *Scan) Degraded() bool { return s.manifest != nil }

// Manifest returns the degradation record: every block the scan (and
// any projection or aggregate run on it so far) skipped. It is nil
// unless the scan ran in degraded mode, and stays valid after
// Release.
func (s *Scan) Manifest() *Manifest { return s.manifest }

// noteSkip records a block omitted by a projection or aggregation
// method — there the failing column is known directly.
func (s *Scan) noteSkip(col string, i int, b *blocked.Block, err error) {
	s.manifest.add(SkippedBlock{Column: col, Block: i,
		RowStart: b.Start, RowCount: b.Count, Reason: err.Error()})
}

// Count returns the number of surviving rows.
func (s *Scan) Count() int { return s.sel.Count() }

// Rows returns the surviving row positions in ascending order.
func (s *Scan) Rows() []int64 { return s.sel.Rows() }

// Selection returns the scan's bitmap selection — a borrowed view,
// valid until Release.
func (s *Scan) Selection() *sel.Selection { return s.sel }

// Sum returns the sum of the named column over the surviving rows,
// late-materialized: blocks with no set bits are never fetched,
// fully-selected blocks sum on their compressed form without
// materializing, and only partially selected blocks decode (into
// pooled scratch, so the steady state allocates nothing).
func (s *Scan) Sum(col string) (int64, error) {
	return s.SumContext(context.Background(), col)
}

// SumContext is Sum with the per-block cancellation seam: the block
// loop checks ctx before each fetch, so an expired request stops
// aggregating instead of decoding the rest of the column.
func (s *Scan) SumContext(ctx context.Context, col string) (int64, error) {
	c, err := s.t.colByName(col)
	if err != nil {
		return 0, err
	}
	sc := core.GetScratch()
	defer sc.Release()
	var total int64
	for i := range c.Blocks {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		b := &c.Blocks[i]
		if b.Count == 0 {
			continue
		}
		start := int(b.Start)
		cnt := s.sel.CountRange(start, start+b.Count)
		if cnt == 0 {
			continue
		}
		if cnt == b.Count {
			v, err := c.SumBlock(i)
			if err != nil {
				if s.manifest != nil && blocked.IsPermanent(err) {
					s.noteSkip(col, i, b, err)
					continue
				}
				return 0, err
			}
			total += v
			continue
		}
		vals := sc.I64(b.Count)
		if err := c.DecompressBlock(i, vals); err != nil {
			sc.PutI64(vals)
			if s.manifest != nil && blocked.IsPermanent(err) {
				s.noteSkip(col, i, b, err)
				continue
			}
			return 0, err
		}
		total += maskedSum(s.sel, start, vals)
		sc.PutI64(vals)
	}
	return total, nil
}

// Materialize returns the named column's values at the surviving
// rows, in row order — the late-materialization projection. Only
// blocks holding set bits are fetched and decoded.
func (s *Scan) Materialize(col string) ([]int64, error) {
	c, err := s.t.colByName(col)
	if err != nil {
		return nil, err
	}
	return s.materializeColumn(c, col)
}

// StreamBatches visits the surviving rows in ascending order in
// batches, late-materializing the named columns block by block — the
// server's streaming projection: a million-row result never holds
// more than one block per column plus one batch in memory. Each call
// to fn receives the batch's global row positions and, parallel to
// cols, each column's values at those rows; the slices are reused
// across calls, so fn must consume (encode, copy) them before
// returning. Batches hold at most batchSize rows (the final one may
// be shorter); batchSize <= 0 defaults to 4096. The context is
// checked between blocks, so an expired or disconnected request stops
// fetching mid-stream.
//
// The block-wise path requires the requested columns to share block
// boundaries (columns of one table encoded from equal-length inputs
// always do); misaligned columns fall back to materializing each
// column fully before batching, which is still exact but buffers the
// whole result.
func (s *Scan) StreamBatches(ctx context.Context, cols []string, batchSize int, fn func(rows []int64, vals [][]int64) error) error {
	if batchSize <= 0 {
		batchSize = 4096
	}
	handles := make([]*blocked.Column, len(cols))
	for i, name := range cols {
		c, err := s.t.colByName(name)
		if err != nil {
			return err
		}
		handles[i] = c
	}
	aligned := true
	for _, c := range handles[1:] {
		if !handles[0].BoundariesEqual(c) {
			aligned = false
			break
		}
	}
	if len(handles) > 0 && !aligned {
		return s.streamMisaligned(ctx, cols, handles, batchSize, fn)
	}

	rows := make([]int64, 0, batchSize)
	vals := make([][]int64, len(handles))
	for i := range vals {
		vals[i] = make([]int64, 0, batchSize)
	}
	flush := func() error {
		emitted := 0
		for emitted < len(rows) {
			end := emitted + batchSize
			if end > len(rows) {
				end = len(rows)
			}
			sub := make([][]int64, len(vals))
			for i := range vals {
				sub[i] = vals[i][emitted:end]
			}
			if err := fn(rows[emitted:end], sub); err != nil {
				return err
			}
			emitted = end
		}
		rows = rows[:0]
		for i := range vals {
			vals[i] = vals[i][:0]
		}
		return nil
	}

	// Blocks come from the first requested column, or — for a pure
	// row-id stream — from the table's first column.
	blocks := s.t.cols[0].Col.Blocks
	if len(handles) > 0 {
		blocks = handles[0].Blocks
	}
	sc := core.GetScratch()
	defer sc.Release()
blockLoop:
	for i := range blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := &blocks[i]
		if b.Count == 0 {
			continue
		}
		start := int(b.Start)
		if s.sel.CountRange(start, start+b.Count) == 0 {
			continue
		}
		// mark lets a degraded skip roll the batch back to the state
		// before this block: rows and every vals[ci] grow in lockstep,
		// so one length captures them all.
		mark := len(rows)
		rows = maskedAppendRows(rows, s.sel, start, b.Count)
		for ci, c := range handles {
			decoded := sc.I64(b.Count)
			if err := c.DecompressBlock(i, decoded); err != nil {
				sc.PutI64(decoded)
				if s.manifest != nil && blocked.IsPermanent(err) {
					rows = rows[:mark]
					for cj := 0; cj < ci; cj++ {
						vals[cj] = vals[cj][:mark]
					}
					s.noteSkip(cols[ci], i, b, err)
					continue blockLoop
				}
				return err
			}
			vals[ci] = maskedAppend(vals[ci], s.sel, start, decoded)
			sc.PutI64(decoded)
		}
		if len(rows) >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// streamMisaligned is StreamBatches' fallback for columns with
// differing block boundaries: materialize every requested column in
// full, then emit batches of the buffered result.
func (s *Scan) streamMisaligned(ctx context.Context, cols []string, handles []*blocked.Column, batchSize int, fn func(rows []int64, vals [][]int64) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rows := s.sel.Rows()
	full := make([][]int64, len(handles))
	for i, c := range handles {
		var err error
		full[i], err = s.materializeColumn(c, cols[i])
		if err != nil {
			return err
		}
	}
	for start := 0; start < len(rows); start += batchSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + batchSize
		if end > len(rows) {
			end = len(rows)
		}
		sub := make([][]int64, len(full))
		for i := range full {
			sub[i] = full[i][start:end]
		}
		if err := fn(rows[start:end], sub); err != nil {
			return err
		}
	}
	return nil
}

// materializeColumn is Materialize by handle rather than by name; the
// name rides along for degraded-mode manifest attribution.
func (s *Scan) materializeColumn(c *blocked.Column, name string) ([]int64, error) {
	sc := core.GetScratch()
	defer sc.Release()
	out := make([]int64, 0, s.sel.Count())
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Count == 0 {
			continue
		}
		start := int(b.Start)
		if s.sel.CountRange(start, start+b.Count) == 0 {
			continue
		}
		vals := sc.I64(b.Count)
		if err := c.DecompressBlock(i, vals); err != nil {
			sc.PutI64(vals)
			if s.manifest != nil && blocked.IsPermanent(err) {
				s.noteSkip(name, i, b, err)
				continue
			}
			return nil, err
		}
		out = maskedAppend(out, s.sel, start, vals)
		sc.PutI64(vals)
	}
	return out, nil
}

// maskedAppendRows appends the global positions of the set bits in
// [start, start+count) to out, mirroring maskedAppend's walk.
func maskedAppendRows(out []int64, bm *sel.Selection, start, count int) []int64 {
	words := bm.Words()
	r := 0
	for r < count {
		pos := start + r
		if pos&63 == 0 && count-r >= 64 {
			switch w := words[pos>>6]; w {
			case 0:
			case ^uint64(0):
				for k := 0; k < 64; k++ {
					out = append(out, int64(pos+k))
				}
			default:
				for w != 0 {
					out = append(out, int64(pos+bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
			r += 64
			continue
		}
		if words[pos>>6]&(1<<(uint(pos)&63)) != 0 {
			out = append(out, int64(pos))
		}
		r++
	}
	return out
}

// maskedSum adds the values of vals (a block decoded at row offset
// start) whose rows are set in bm, word-at-a-time: full words add 64
// values branch-free, sparse words walk their set bits. No callback,
// no allocation.
func maskedSum(bm *sel.Selection, start int, vals []int64) int64 {
	words := bm.Words()
	var total int64
	r, n := 0, len(vals)
	for r < n {
		pos := start + r
		if pos&63 == 0 && n-r >= 64 {
			switch w := words[pos>>6]; w {
			case 0:
			case ^uint64(0):
				for _, v := range vals[r : r+64] {
					total += v
				}
			default:
				for w != 0 {
					total += vals[r+bits.TrailingZeros64(w)]
					w &= w - 1
				}
			}
			r += 64
			continue
		}
		if words[pos>>6]&(1<<(uint(pos)&63)) != 0 {
			total += vals[r]
		}
		r++
	}
	return total
}

// maskedAppend appends the selected values of a decoded block to out,
// mirroring maskedSum's word-at-a-time walk.
func maskedAppend(out []int64, bm *sel.Selection, start int, vals []int64) []int64 {
	words := bm.Words()
	r, n := 0, len(vals)
	for r < n {
		pos := start + r
		if pos&63 == 0 && n-r >= 64 {
			switch w := words[pos>>6]; w {
			case 0:
			case ^uint64(0):
				out = append(out, vals[r:r+64]...)
			default:
				for w != 0 {
					out = append(out, vals[r+bits.TrailingZeros64(w)])
					w &= w - 1
				}
			}
			r += 64
			continue
		}
		if words[pos>>6]&(1<<(uint(pos)&63)) != 0 {
			out = append(out, vals[r])
		}
		r++
	}
	return out
}
