package table

import (
	"math"
	"testing"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

// buildTable encodes the named columns with the given block size and
// wraps them in a Table.
func buildTable(t *testing.T, blockSize int, names []string, data [][]int64) (*Table, map[string][]int64) {
	t.Helper()
	cols := make([]storage.BlockedColumn, len(names))
	raw := make(map[string][]int64, len(names))
	for i, name := range names {
		col, err := blocked.Encode(data[i], blocked.EncodeOptions{BlockSize: blockSize, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = storage.BlockedColumn{Name: name, Col: col}
		raw[name] = data[i]
	}
	tbl, err := New(cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, raw
}

// refRows filters rows [0, n) with pred over the raw columns.
func refRows(n int, pred func(row int) bool) []int64 {
	out := []int64{}
	for i := 0; i < n; i++ {
		if pred(i) {
			out = append(out, int64(i))
		}
	}
	return out
}

func equalRows(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testData builds three 3n-row columns with mixed structure: a sorted
// date-like column, a low-cardinality status column, and a signed
// walk amount column.
func testData(n int) ([]string, [][]int64) {
	date := workload.Sorted(n, 1<<30, 11)
	status := workload.LowCardinality(n, 4, 12)
	amount := workload.RandomWalk(n, 12, 1<<30, 13)
	return []string{"date", "status", "amount"}, [][]int64{date, status, amount}
}

// checkScan asserts a scan of e over tbl matches the reference
// predicate on every surface: rows, count, sum and materialize.
func checkScan(t *testing.T, tbl *Table, raw map[string][]int64, aggCol string, e Expr, pred func(row int) bool) {
	t.Helper()
	want := refRows(tbl.NumRows(), pred)
	s, err := tbl.Scan(e)
	if err != nil {
		t.Fatalf("Scan(%s): %v", e, err)
	}
	defer s.Release()
	if got := s.Rows(); !equalRows(got, want) {
		t.Fatalf("Scan(%s): %d rows, want %d", e, len(got), len(want))
	}
	if s.Count() != len(want) {
		t.Fatalf("Scan(%s): Count = %d, want %d", e, s.Count(), len(want))
	}
	amount := raw[aggCol]
	var wantSum int64
	wantVals := []int64{}
	for _, r := range want {
		wantSum += amount[r]
		wantVals = append(wantVals, amount[r])
	}
	gotSum, err := s.Sum(aggCol)
	if err != nil {
		t.Fatalf("Sum(%s): %v", e, err)
	}
	if gotSum != wantSum {
		t.Fatalf("Sum(%s) = %d, want %d", e, gotSum, wantSum)
	}
	gotVals, err := s.Materialize(aggCol)
	if err != nil {
		t.Fatalf("Materialize(%s): %v", e, err)
	}
	if !equalRows(gotVals, wantVals) {
		t.Fatalf("Materialize(%s): %d values, want %d", e, len(gotVals), len(wantVals))
	}
}

// TestScanEquivalence runs a catalogue of expression shapes — leaves,
// conjunctions, disjunctions with composite children, negations,
// in-lists — against the naive row-filter reference, on aligned and
// misaligned tables and serial and parallel scans.
func TestScanEquivalence(t *testing.T) {
	const n = 20000
	names, data := testData(n)
	date, status, amount := data[0], data[1], data[2]
	dLo, dHi := date[n/4], date[3*n/4]

	exprs := []struct {
		e    Expr
		pred func(row int) bool
	}{
		{Range("date", dLo, dHi), func(r int) bool { return date[r] >= dLo && date[r] <= dHi }},
		{Eq("status", 2), func(r int) bool { return status[r] == 2 }},
		{In("status", 3, 0, 3, 1), func(r int) bool { return status[r] == 0 || status[r] == 1 || status[r] == 3 }},
		{In("status"), func(int) bool { return false }},
		{And(Range("date", dLo, dHi), Eq("status", 1)),
			func(r int) bool { return date[r] >= dLo && date[r] <= dHi && status[r] == 1 }},
		{And(), func(int) bool { return true }},
		{Or(), func(int) bool { return false }},
		{Or(Eq("status", 0), And(Range("date", dLo, dHi), Eq("status", 2))),
			func(r int) bool { return status[r] == 0 || (date[r] >= dLo && date[r] <= dHi && status[r] == 2) }},
		{Or(Not(Range("date", dLo, math.MaxInt64)), Eq("status", 3)),
			func(r int) bool { return date[r] < dLo || status[r] == 3 }},
		{Not(And(Range("date", dLo, dHi), Eq("status", 1))),
			func(r int) bool { return !(date[r] >= dLo && date[r] <= dHi && status[r] == 1) }},
		{And(Range("amount", 0, math.MaxInt64), Not(Eq("status", 0)), Range("date", math.MinInt64, dHi)),
			func(r int) bool { return amount[r] >= 0 && status[r] != 0 && date[r] <= dHi }},
		{Range("date", dHi, dLo), func(int) bool { return false }}, // inverted: matches nothing
	}

	for _, shape := range []struct {
		name       string
		blockSizes []int // per column; equal sizes align
		parallel   int
	}{
		{"aligned-serial", []int{1024, 1024, 1024}, 1},
		{"aligned-parallel", []int{1024, 1024, 1024}, 4},
		{"misaligned", []int{1024, 512, 2048}, 1},
		{"single-block", []int{0, 0, 0}, 1},
	} {
		t.Run(shape.name, func(t *testing.T) {
			cols := make([]storage.BlockedColumn, len(names))
			for i, name := range names {
				col, err := blocked.Encode(data[i], blocked.EncodeOptions{
					BlockSize: shape.blockSizes[i], Parallelism: shape.parallel})
				if err != nil {
					t.Fatal(err)
				}
				cols[i] = storage.BlockedColumn{Name: name, Col: col}
			}
			tbl, err := New(cols, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantAligned := shape.name != "misaligned"
			if tbl.Aligned() != wantAligned {
				t.Fatalf("Aligned() = %v, want %v", tbl.Aligned(), wantAligned)
			}
			raw := map[string][]int64{"date": date, "status": status, "amount": amount}
			for _, tc := range exprs {
				checkScan(t, tbl, raw, "amount", tc.e, tc.pred)
			}
		})
	}
}

// TestTableValidation covers New's error cases and Scan's column
// checking.
func TestTableValidation(t *testing.T) {
	names, data := testData(1000)
	tbl, _ := buildTable(t, 256, names, data)

	if _, err := New(nil, nil); err == nil {
		t.Fatal("New with no columns must error")
	}
	col := tbl.cols[0].Col
	if _, err := New([]storage.BlockedColumn{{Name: "", Col: col}}, nil); err == nil {
		t.Fatal("New with an unnamed column must error")
	}
	if _, err := New([]storage.BlockedColumn{{Name: "a", Col: nil}}, nil); err == nil {
		t.Fatal("New with a nil column must error")
	}
	if _, err := New([]storage.BlockedColumn{{Name: "a", Col: col}, {Name: "a", Col: col}}, nil); err == nil {
		t.Fatal("New with duplicate names must error")
	}
	short, err := blocked.Encode(data[0][:500], blocked.EncodeOptions{BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]storage.BlockedColumn{{Name: "a", Col: col}, {Name: "b", Col: short}}, nil); err == nil {
		t.Fatal("New with mismatched row counts must error")
	}

	if _, err := tbl.Scan(nil); err == nil {
		t.Fatal("Scan(nil) must error")
	}
	if _, err := tbl.Scan(Eq("nope", 1)); err == nil {
		t.Fatal("Scan over a missing column must error")
	}
	if _, err := tbl.Scan(And(Eq("date", 1), nil)); err == nil {
		t.Fatal("Scan with a nil operand must error")
	}
	if _, err := tbl.Scan(Not(nil)); err == nil {
		t.Fatal("Scan of Not(nil) must error")
	}
	s, err := tbl.Scan(Eq("status", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if _, err := s.Sum("nope"); err == nil {
		t.Fatal("Sum over a missing column must error")
	}
	if _, err := s.Materialize("nope"); err == nil {
		t.Fatal("Materialize over a missing column must error")
	}

	if got := tbl.ColumnNames(); len(got) != 3 || got[0] != "date" {
		t.Fatalf("ColumnNames = %v", got)
	}
	if _, err := tbl.Column("status"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err) // no-op for in-memory tables
	}
}

// TestScanPruneCounts pins the planner's skip behavior on a table
// whose stats decide most blocks: only undecided blocks may consult
// payloads, which SkipStats exposes per column.
func TestScanPruneCounts(t *testing.T) {
	const n, bs = 1 << 14, 1 << 10
	// date: strictly sorted, so block ranges are disjoint; status:
	// constant per block (block i has status i%4), so Eq prunes to
	// true/false on every block.
	date := make([]int64, n)
	status := make([]int64, n)
	for i := range date {
		date[i] = int64(2 * i)
		status[i] = int64((i / bs) % 4)
	}
	tbl, raw := buildTable(t, bs, []string{"date", "status"}, [][]int64{date, status})
	lo, hi := date[3*bs], date[6*bs-1] // exactly blocks 3..5
	e := And(Range("date", lo, hi), Eq("status", 1))
	checkScan(t, tbl, raw, "date", e,
		func(r int) bool { return date[r] >= lo && date[r] <= hi && status[r] == 1 })

	// The conjunction admits only blocks 3..5 ∩ {i : i%4 == 1} = {5}.
	// Block 5 is entirely inside the date range and proved by status,
	// so even it is emitted as a run without decoding.
	s, err := tbl.Scan(e)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if got, want := s.Count(), bs; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}
