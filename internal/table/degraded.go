package table

import (
	"sort"
	"sync"

	"lwcomp/internal/blocked"
)

// This file is the graceful-degradation half of the table scan: a
// scan opted into degraded mode treats permanently unreadable blocks
// (bad CRC, quarantined, undecodable) as skipped instead of fatal,
// and records every omission — exactly which column, block, and row
// range — in a Manifest the caller (and the query server's response)
// can surface. Default scans keep today's fail-fast contract.

// SkippedBlock describes one block a degraded scan omitted.
type SkippedBlock struct {
	// Column names the column whose block was unreadable. It is empty
	// when the failure could not be pinned to a quarantined column
	// (an in-memory form failing to decode, for example).
	Column string `json:"column,omitempty"`
	// Block is the block index within the column.
	Block int `json:"block"`
	// RowStart and RowCount delimit the omitted row range
	// [RowStart, RowStart+RowCount): those rows are absent from the
	// scan's selection and from every projection and aggregate.
	RowStart int64 `json:"row_start"`
	// RowCount is the number of omitted rows.
	RowCount int `json:"row_count"`
	// Reason is the permanent error that condemned the block.
	Reason string `json:"reason"`
}

// Manifest is the exact record of what a degraded scan omitted. It is
// safe for concurrent use — parallel scan workers record into one
// manifest — and deduplicates by (column, block).
type Manifest struct {
	mu     sync.Mutex
	blocks []SkippedBlock
	seen   map[manifestKey]bool
}

type manifestKey struct {
	col string
	blk int
}

// add records one omission, ignoring duplicates of the same
// (column, block).
func (m *Manifest) add(sb SkippedBlock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seen == nil {
		m.seen = make(map[manifestKey]bool)
	}
	k := manifestKey{col: sb.Column, blk: sb.Block}
	if m.seen[k] {
		return
	}
	m.seen[k] = true
	m.blocks = append(m.blocks, sb)
}

// Len returns the number of recorded omissions.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// Skipped returns the omissions sorted by (column, block) — a copy,
// safe to hold after the scan is released.
func (m *Manifest) Skipped() []SkippedBlock {
	m.mu.Lock()
	out := make([]SkippedBlock, len(m.blocks))
	copy(out, m.blocks)
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Column != out[j].Column {
			return out[i].Column < out[j].Column
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// ScanOptions configures one scan's failure handling.
type ScanOptions struct {
	// Degraded makes the scan skip permanently unreadable blocks —
	// treating their rows as non-matching and recording each omission
	// in the scan's Manifest — instead of failing the whole query.
	// Transient I/O errors are still fatal (the retry layer below
	// handles those); only permanent integrity failures degrade.
	Degraded bool
}

// noteEvalSkip records block i's omission during predicate
// evaluation. The expression tree does not report which column's
// fetch failed, but the failing column quarantined the block on the
// way out — so the exact (column, block) comes from asking every
// column for its quarantine verdict at i. The fallback (no column
// quarantined — a resident in-memory form failed to decode) records
// the block with the raw error and no column attribution.
func (t *Table) noteEvalSkip(man *Manifest, i int, b *blocked.Block, err error) {
	found := false
	for _, c := range t.cols {
		if i >= len(c.Col.Blocks) {
			continue
		}
		if qerr, ok := c.Col.QuarantineError(i); ok {
			man.add(SkippedBlock{Column: c.Name, Block: i,
				RowStart: b.Start, RowCount: b.Count, Reason: qerr.Error()})
			found = true
		}
	}
	if !found {
		man.add(SkippedBlock{Block: i, RowStart: b.Start, RowCount: b.Count, Reason: err.Error()})
	}
}
