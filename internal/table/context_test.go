package table

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
)

// countCloser counts Close calls — the probe for the exactly-once
// contract.
type countCloser struct {
	n   atomic.Int64
	err error
}

func (c *countCloser) Close() error {
	c.n.Add(1)
	return c.err
}

// TestCloseExactlyOnce: a table over several closers closes each
// exactly once, no matter how many goroutines race Close, and every
// call returns the first close's error.
func TestCloseExactlyOnce(t *testing.T) {
	names, data := testData(500)
	tbl, _ := buildTable(t, 256, names, data)
	closers := []*countCloser{{}, {err: errors.New("boom")}, {}}
	for _, c := range closers {
		tbl.closers = append(tbl.closers, c)
	}

	const goroutines = 16
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tbl.Close()
		}(i)
	}
	wg.Wait()
	for _, c := range closers {
		if got := c.n.Load(); got != 1 {
			t.Fatalf("closer closed %d times, want exactly 1", got)
		}
	}
	for i, err := range errs {
		if err == nil || err.Error() != "boom" {
			t.Fatalf("Close from goroutine %d = %v, want the first closer error", i, err)
		}
	}
}

// TestScanContextCancelled: an already-cancelled context stops the
// scan before it fetches anything, and an expired deadline surfaces
// as context.DeadlineExceeded from every context-taking entry point.
func TestScanContextCancelled(t *testing.T) {
	names, data := testData(2000)
	tbl, _ := buildTable(t, 256, names, data)
	// A threshold drawn from the data itself guarantees blocks the
	// stats cannot decide — the scan must reach its per-block ctx
	// check rather than skipping everything.
	pred := Range("amount", data[2][len(data[2])/2], math.MaxInt64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := tbl.ScanContext(ctx, pred); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanContext on cancelled ctx = %v, want context.Canceled", err)
	}

	s, err := tbl.ScanContext(context.Background(), pred)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if _, err := s.SumContext(ctx, "amount"); !errors.Is(err, context.Canceled) {
		t.Fatalf("SumContext on cancelled ctx = %v, want context.Canceled", err)
	}
	err = s.StreamBatches(ctx, []string{"amount"}, 128, func([]int64, [][]int64) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamBatches on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestStreamBatches: the streamed (row, value) pairs across all
// batches equal the Rows/Materialize result, batch sizes respect the
// cap, and a callback error aborts the stream and propagates.
func TestStreamBatches(t *testing.T) {
	names, data := testData(3000)
	tbl, raw := buildTable(t, 256, names, data) // block size 256 → many blocks
	// Select roughly the upper half of the walk — enough survivors
	// spread over enough blocks to exercise multi-batch flushing.
	s, err := tbl.Scan(Range("amount", data[2][len(data[2])/2], math.MaxInt64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	wantRows := s.Rows()
	wantAmount, err := s.Materialize("amount")
	if err != nil {
		t.Fatal(err)
	}

	const batch = 100
	var gotRows, gotAmount, gotDate []int64
	err = s.StreamBatches(context.Background(), []string{"amount", "date"}, batch,
		func(rows []int64, vals [][]int64) error {
			if len(rows) == 0 || len(rows) > batch {
				t.Fatalf("batch of %d rows, want 1..%d", len(rows), batch)
			}
			if len(vals) != 2 || len(vals[0]) != len(rows) || len(vals[1]) != len(rows) {
				t.Fatalf("batch shape rows=%d vals=%d/%d", len(rows), len(vals[0]), len(vals[1]))
			}
			// The contract: slices are reused across calls, copy out.
			gotRows = append(gotRows, rows...)
			gotAmount = append(gotAmount, vals[0]...)
			gotDate = append(gotDate, vals[1]...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !equalRows(gotRows, wantRows) {
		t.Fatalf("streamed %d rows, want %d", len(gotRows), len(wantRows))
	}
	if !equalRows(gotAmount, wantAmount) {
		t.Fatalf("streamed amount values diverge from Materialize")
	}
	for i, r := range gotRows {
		if gotDate[i] != raw["date"][r] {
			t.Fatalf("row %d: date %d, want %d", r, gotDate[i], raw["date"][r])
		}
	}

	// A callback error aborts the stream and comes back verbatim.
	sentinel := errors.New("stop")
	calls := 0
	err = s.StreamBatches(context.Background(), []string{"amount"}, batch,
		func([]int64, [][]int64) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("StreamBatches after callback error = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring, want 1", calls)
	}
}

// TestStreamBatchesMisaligned covers the whole-materialize fallback
// for tables whose columns do not share block boundaries.
func TestStreamBatchesMisaligned(t *testing.T) {
	_, data := testData(1000)
	// Different block sizes per column force the misaligned path.
	colA, err := blocked.Encode(data[0], blocked.EncodeOptions{BlockSize: 256, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	colB, err := blocked.Encode(data[1], blocked.EncodeOptions{BlockSize: 512, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewWithClosers([]storage.BlockedColumn{
		{Name: "date", Col: colA},
		{Name: "status", Col: colB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Aligned() {
		t.Fatal("mixed block sizes reported aligned")
	}

	s, err := mixed.Scan(Range("date", 0, 1<<62))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	var got []int64
	err = s.StreamBatches(context.Background(), []string{"status"}, 100,
		func(rows []int64, vals [][]int64) error {
			got = append(got, vals[0]...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !equalRows(got, data[1]) {
		t.Fatalf("misaligned stream returned %d values, want %d", len(got), len(data[1]))
	}
}
