package table

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
	"lwcomp/internal/storage"
)

// failingSource serves a resident column's forms but answers a
// permanent error for chosen blocks.
type failingSource struct {
	orig *blocked.Column
	fail map[int]error
}

func (s *failingSource) BlockForm(i int) (*core.Form, error) {
	if err, ok := s.fail[i]; ok {
		return nil, err
	}
	return s.orig.Blocks[i].Form, nil
}

// degradedTable builds a 3-column aligned table (a=2, b=i, amount=i%100;
// 256 rows, 4 blocks of 64) whose amount column is lazily sourced and
// fails permanently on block 2 (rows 128..191).
func degradedTable(t *testing.T) *Table {
	t.Helper()
	n := 256
	a := make([]int64, n)
	b := make([]int64, n)
	amount := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = 2
		b[i] = int64(i)
		amount[i] = int64(i % 100)
	}
	enc := func(vals []int64) *blocked.Column {
		col, err := blocked.Encode(vals, blocked.EncodeOptions{BlockSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	amtOrig := enc(amount)
	lazy := &blocked.Column{N: amtOrig.N, BlockSize: amtOrig.BlockSize,
		Blocks: append([]blocked.Block(nil), amtOrig.Blocks...)}
	for i := range lazy.Blocks {
		lazy.Blocks[i].Form = nil
	}
	lazy.Source = &failingSource{orig: amtOrig,
		fail: map[int]error{2: fmt.Errorf("payload rot: %w", core.ErrCorruptForm)}}
	tbl, err := New([]storage.BlockedColumn{
		{Name: "a", Col: enc(a)},
		{Name: "b", Col: enc(b)},
		{Name: "amount", Col: lazy},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFaultScanFailFastByDefault(t *testing.T) {
	tbl := degradedTable(t)
	// Eq over amount is stats-undecidable on every block, so block 2's
	// fetch fails the whole scan — today's contract, unchanged.
	if _, err := tbl.Scan(Eq("amount", 50)); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("default scan error = %v, want the permanent decode failure", err)
	}
	// The failure quarantined the block; a retry fails fast the same way.
	if _, err := tbl.Scan(Eq("amount", 50)); !errors.Is(err, blocked.ErrQuarantined) {
		t.Fatalf("second scan error = %v, want ErrQuarantined", err)
	}
}

func TestFaultDegradedScanExactManifest(t *testing.T) {
	tbl := degradedTable(t)
	scan, err := tbl.ScanWith(context.Background(), Eq("amount", 50), ScanOptions{Degraded: true})
	if err != nil {
		t.Fatalf("degraded scan: %v", err)
	}
	defer scan.Release()
	if !scan.Degraded() {
		t.Fatal("scan does not report degraded mode")
	}
	// amount = i%100 hits 50 at rows 50, 150, 250; row 150 lives in the
	// unreadable block, so a degraded scan finds exactly the other two.
	if got := scan.Count(); got != 2 {
		t.Fatalf("degraded count = %d, want 2 (row 150 omitted)", got)
	}
	rows := scan.Rows()
	if len(rows) != 2 || rows[0] != 50 || rows[1] != 250 {
		t.Fatalf("degraded rows = %v, want [50 250]", rows)
	}
	sk := scan.Manifest().Skipped()
	if len(sk) != 1 {
		t.Fatalf("manifest = %v, want exactly one entry", sk)
	}
	want := SkippedBlock{Column: "amount", Block: 2, RowStart: 128, RowCount: 64, Reason: sk[0].Reason}
	if sk[0] != want {
		t.Fatalf("manifest entry = %+v, want %+v", sk[0], want)
	}
	if sk[0].Reason == "" {
		t.Fatal("manifest entry has no reason")
	}
	// The matched rows still aggregate exactly.
	sum, err := scan.Sum("a")
	if err != nil {
		t.Fatalf("sum over healthy column: %v", err)
	}
	if sum != 4 {
		t.Fatalf("sum(a) over 2 matches = %d, want 4", sum)
	}
}

func TestFaultDegradedSumSkipsBlock(t *testing.T) {
	tbl := degradedTable(t)
	// The empty conjunction matches every row without touching amount;
	// the failure then happens in the aggregation phase, which knows
	// the failing column directly.
	scan, err := tbl.ScanWith(context.Background(), And(), ScanOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Release()
	sum, err := scan.SumContext(context.Background(), "amount")
	if err != nil {
		t.Fatalf("degraded sum: %v", err)
	}
	// Full sum of i%100 over 0..255 is 11440; block 2 (rows 128..191,
	// values 28..91) contributes 3808.
	if want := int64(11440 - 3808); sum != want {
		t.Fatalf("degraded sum = %d, want %d", sum, want)
	}
	sk := scan.Manifest().Skipped()
	if len(sk) != 1 || sk[0].Column != "amount" || sk[0].Block != 2 {
		t.Fatalf("manifest after sum = %v", sk)
	}
}

func TestFaultDegradedStreamSkipsBlock(t *testing.T) {
	tbl := degradedTable(t)
	scan, err := tbl.ScanWith(context.Background(), And(), ScanOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer scan.Release()
	var rows []int64
	var sumB, sumAmt int64
	err = scan.StreamBatches(context.Background(), []string{"b", "amount"}, 50,
		func(r []int64, vals [][]int64) error {
			rows = append(rows, r...)
			for _, v := range vals[0] {
				sumB += v
			}
			for _, v := range vals[1] {
				sumAmt += v
			}
			return nil
		})
	if err != nil {
		t.Fatalf("degraded stream: %v", err)
	}
	if len(rows) != 192 {
		t.Fatalf("streamed %d rows, want 192 (one block of 64 omitted)", len(rows))
	}
	for _, r := range rows {
		if r >= 128 && r < 192 {
			t.Fatalf("row %d from the unreadable block leaked into the stream", r)
		}
	}
	// Both projected columns stay in lockstep: b sums to the row ids,
	// amount to their values — over exactly the surviving rows.
	var wantB, wantAmt int64
	for i := int64(0); i < 256; i++ {
		if i >= 128 && i < 192 {
			continue
		}
		wantB += i
		wantAmt += i % 100
	}
	if sumB != wantB || sumAmt != wantAmt {
		t.Fatalf("streamed sums b=%d amount=%d, want %d and %d", sumB, sumAmt, wantB, wantAmt)
	}
	sk := scan.Manifest().Skipped()
	if len(sk) != 1 || sk[0].Column != "amount" || sk[0].Block != 2 {
		t.Fatalf("manifest after stream = %v", sk)
	}
}

func TestFaultDegradedDefaultViaTableFlag(t *testing.T) {
	tbl := degradedTable(t)
	tbl.Degraded = true
	scan, err := tbl.ScanContext(context.Background(), Eq("amount", 50))
	if err != nil {
		t.Fatalf("scan with table-level degraded default: %v", err)
	}
	defer scan.Release()
	if scan.Count() != 2 || scan.Manifest().Len() != 1 {
		t.Fatalf("count=%d manifest=%d", scan.Count(), scan.Manifest().Len())
	}
}
