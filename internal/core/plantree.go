package core

import (
	"fmt"

	"lwcomp/internal/exec"
)

// PlanTree builds one flat operator plan for an entire form tree:
// plannable children are inlined into their parent's plan (their
// Input nodes renamed to "child.grandchild" paths), and only
// non-plannable leaves (physical codecs like NS, or raw ID columns)
// remain as plan inputs, pre-decompressed into the returned
// environment.
//
// For the paper's §I composition — RLE over DELTA-compressed run
// values — the tree plan is Algorithm 1 with a prefix sum grafted
// where the values input was: decompression of the *composite* scheme
// is still a single columnar program. Composition happens in the
// plan algebra, not just in the data format.
func PlanTree(f *Form) (*exec.Plan, map[string][]int64, error) {
	plan, err := planTreeRec(f)
	if err != nil {
		return nil, nil, err
	}
	env := make(map[string][]int64)
	for _, path := range plan.Inputs() {
		col, err := resolvePath(f, path)
		if err != nil {
			return nil, nil, err
		}
		env[path] = col
	}
	return plan, env, nil
}

// planTreeRec builds the inlined plan without resolving leaf inputs.
func planTreeRec(f *Form) (*exec.Plan, error) {
	s, ok := Lookup(f.Scheme)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, f.Scheme)
	}
	p, ok := s.(Planner)
	if !ok {
		return nil, fmt.Errorf("core: scheme %q does not support plan decompression", f.Scheme)
	}
	plan, err := p.Plan(f)
	if err != nil {
		return nil, err
	}
	for _, name := range plan.Inputs() {
		child, err := f.Child(name)
		if err != nil {
			return nil, err
		}
		cs, ok := Lookup(child.Scheme)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, child.Scheme)
		}
		if _, plannable := cs.(Planner); !plannable {
			continue // stays an input; resolved from the environment
		}
		childPlan, err := planTreeRec(child)
		if err != nil {
			return nil, err
		}
		plan, err = exec.Inline(plan, name, childPlan, name+".")
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// resolvePath decompresses the constituent column at a dotted path
// like "values.deltas".
func resolvePath(f *Form, path string) ([]int64, error) {
	node := f
	for len(path) > 0 {
		name := path
		if i := indexByte(path, '.'); i >= 0 {
			name = path[:i]
			path = path[i+1:]
		} else {
			path = ""
		}
		child, err := node.Child(name)
		if err != nil {
			return nil, err
		}
		node = child
	}
	return Decompress(node)
}

// indexByte avoids importing strings for one call.
func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// DecompressViaTreePlan reconstructs f's column by building and
// executing the whole-tree plan. fuse selects idiom fusion.
func DecompressViaTreePlan(f *Form, fuse bool) ([]int64, error) {
	plan, env, err := PlanTree(f)
	if err != nil {
		return nil, err
	}
	if fuse {
		plan = exec.Fuse(plan)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		return nil, err
	}
	if len(out) != f.N {
		return nil, fmt.Errorf("%w: tree plan produced %d values, form declares %d", ErrCorruptForm, len(out), f.N)
	}
	return out, nil
}
