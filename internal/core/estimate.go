package core

import "math"

// The size-estimation contract: scheme selection used to
// trial-compress every candidate on every block, discarding all but
// one result. A SizeEstimator predicts the encoded size from
// one-pass BlockStats instead, so the analyzer ranks candidates
// analytically and trial-encodes only a pruned shortlist. Estimates
// target the same analytic size model as Form.PayloadBits, so an
// exact estimate equals the bits the compressed form will report.

// SizeEstimator is implemented by schemes (and composites) that can
// predict their encoded size from column statistics alone.
type SizeEstimator interface {
	// EstimateSize predicts the total encoded size in bits
	// (Form.PayloadBits of the would-be form tree) of compressing a
	// column with the given stats. exact reports whether the
	// prediction is guaranteed to equal the actual size; inexact
	// estimates are bounded heuristics good enough for ranking.
	//
	// A return of bits == 0 means the scheme cannot estimate from
	// these stats (every real form costs at least its header);
	// ImpossibleBits means the stats prove the scheme cannot
	// represent the column at all.
	EstimateSize(st *BlockStats) (bits uint64, exact bool)
}

// ImpossibleBits is the EstimateSize sentinel for "the stats prove
// compression would fail" (for example CONST on a column with more
// than one run). Such candidates rank last and are never trialed.
const ImpossibleBits = math.MaxUint64

// PredictedChild is one constituent column of a scheme as predicted
// by ConstituentStats: its name and the derived statistics of its
// pure column.
type PredictedChild struct {
	// Name is the constituent column name.
	Name string
	// Stats carries the fields of the child column the parent's
	// stats determine, with the corresponding Has* flags set.
	Stats BlockStats
}

// ConstituentStatser is implemented by decomposable schemes that can
// predict, from the stats of their input column, the constituent
// columns their Compress will emit. It is what lets a Composite
// estimate sizes: the outer scheme derives child stats, and the
// inner schemes' estimators price each child.
type ConstituentStatser interface {
	// ConstituentStats returns the node's own overhead bits (header,
	// params and any direct payload, matching Form.PayloadBits
	// accounting) and the predicted children. exact reports whether
	// every populated child field is exact; ok is false when the
	// required stats are missing.
	ConstituentStats(st *BlockStats) (selfBits uint64, children []PredictedChild, exact, ok bool)
}

// FormOverheadBits returns the analytic per-node overhead of a form
// with nparams parameters — the same accounting Form.PayloadBits
// charges, so size estimates and evaluated sizes agree bit for bit.
func FormOverheadBits(nparams int) uint64 {
	return formHeaderBits + uint64(nparams)*perParamBits
}

// SatAddBits adds size estimates, saturating at ImpossibleBits so an
// impossible constituent poisons the whole composition instead of
// wrapping around.
func SatAddBits(a, b uint64) uint64 {
	if a >= ImpossibleBits-b {
		return ImpossibleBits
	}
	return a + b
}

// EstimateOf returns the stats-predicted encoded size of compressing
// a column under s. ok is false when s has no estimator or its
// estimator cannot price these stats.
func EstimateOf(s Scheme, st *BlockStats) (bits uint64, exact, ok bool) {
	e, isEst := s.(SizeEstimator)
	if !isEst {
		return 0, false, false
	}
	bits, exact = e.EstimateSize(st)
	if bits == 0 {
		return 0, false, false
	}
	return bits, exact, true
}

// EstimateSize implements SizeEstimator for compositions: the outer
// scheme predicts each constituent column's stats, and the inner
// schemes price them; children left uncomposed stay the raw ID forms
// the outer emits.
func (c *Composite) EstimateSize(st *BlockStats) (bits uint64, exact bool) {
	cs, isCS := c.outer.(ConstituentStatser)
	if !isCS {
		return 0, false
	}
	selfBits, children, exact, ok := cs.ConstituentStats(st)
	if !ok {
		return 0, false
	}
	total := selfBits
	for i := range children {
		ch := &children[i]
		inner, composed := c.inner[ch.Name]
		if !composed {
			// The child stays the ID form the outer emitted.
			total = SatAddBits(total, SatAddBits(FormOverheadBits(0), uint64(ch.Stats.N)*64))
			continue
		}
		cb, cexact, cok := EstimateOf(inner, &ch.Stats)
		if !cok {
			return 0, false
		}
		total = SatAddBits(total, cb)
		exact = exact && cexact
	}
	return total, exact
}
