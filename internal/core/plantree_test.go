package core

import (
	"testing"
)

// TestPlanTreeWithMockSchemes exercises PlanTree inside the core
// package using the registered mocks: a double-mock over a
// double-mock inlines into one plan that multiplies by four.
func TestPlanTreeWithMockSchemes(t *testing.T) {
	inner := mockDouble{"double-mock"}
	comp := Compose(inner, map[string]Scheme{"halves": inner})
	src := []int64{4, 8, 12}
	f, err := comp.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := PlanTree(f)
	if err != nil {
		t.Fatal(err)
	}
	inputs := plan.Inputs()
	if len(inputs) != 1 || inputs[0] != "halves.halves" {
		t.Fatalf("tree inputs = %v", inputs)
	}
	if got := env["halves.halves"]; len(got) != 3 || got[0] != 1 {
		t.Fatalf("env = %v", env)
	}
	out, err := DecompressViaTreePlan(f, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("tree plan output %v != %v", out, src)
		}
	}
	// Fused variant is a no-op here but must still be correct.
	out, err = DecompressViaTreePlan(f, true)
	if err != nil || out[2] != 12 {
		t.Fatalf("fused tree plan: %v", err)
	}
}

func TestPlanTreePlanlessRootAndChild(t *testing.T) {
	// Root without a planner.
	rf, err := Compress("raw-mock", []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PlanTree(rf); err == nil {
		t.Fatal("planless root accepted")
	}
	// Planner root with a planless child stops inlining there and
	// resolves the child from the environment.
	df, err := Compress("double-mock", []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := PlanTree(df)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inputs()) != 1 || plan.Inputs()[0] != "halves" {
		t.Fatalf("inputs = %v", plan.Inputs())
	}
	if len(env["halves"]) != 2 {
		t.Fatalf("env = %v", env)
	}
}

func TestResolvePath(t *testing.T) {
	comp := Compose(mockDouble{"double-mock"}, map[string]Scheme{"halves": mockDouble{"double-mock"}})
	f, err := comp.Compress([]int64{8})
	if err != nil {
		t.Fatal(err)
	}
	col, err := resolvePath(f, "halves.halves")
	if err != nil || len(col) != 1 || col[0] != 2 {
		t.Fatalf("resolvePath = %v, %v", col, err)
	}
	if _, err := resolvePath(f, "halves.nope"); err == nil {
		t.Fatal("bad path accepted")
	}
	if _, err := resolvePath(f, "nope"); err == nil {
		t.Fatal("bad root path accepted")
	}
}
