package core

import (
	"errors"
	"fmt"
	"sort"
)

// Params carries a Form's scalar parameters (segment lengths, bit
// widths, flags), keyed by short lowercase names.
type Params map[string]int64

// Get returns the named parameter or an error naming the scheme for
// diagnosis.
func (p Params) Get(scheme, key string) (int64, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("core: scheme %q: missing parameter %q", scheme, key)
	}
	return v, nil
}

// Clone returns a copy of p (nil stays nil).
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Keys returns the parameter names in sorted order (for deterministic
// serialization and printing).
func (p Params) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Form is a compressed column: a tree of schemes over pure constituent
// columns.
//
// Exactly one of the payload arms is used depending on the scheme:
// ID carries Leaf; NS and other word-packed codecs carry Packed;
// byte-granular codecs carry Bytes; every other scheme carries only
// Children.
type Form struct {
	// Scheme is the registered name of the scheme that produced this
	// form and that can decompress it.
	Scheme string
	// N is the logical (decompressed) length of the column this form
	// represents.
	N int
	// Params holds the scheme's scalar parameters.
	Params Params
	// Children maps constituent column names (the paper's "pure
	// columns") to their own forms.
	Children map[string]*Form
	// Leaf is the raw payload of the ID scheme.
	Leaf []int64
	// Packed is the word-aligned physical payload of bit-packing
	// codecs.
	Packed []uint64
	// Bytes is the byte-granular physical payload of varint-style
	// codecs.
	Bytes []byte
}

// Child returns the named constituent form or an error identifying
// the scheme and name.
func (f *Form) Child(name string) (*Form, error) {
	c, ok := f.Children[name]
	if !ok || c == nil {
		return nil, fmt.Errorf("core: scheme %q: missing constituent column %q", f.Scheme, name)
	}
	return c, nil
}

// ChildNames returns the constituent column names in sorted order.
func (f *Form) ChildNames() []string {
	names := make([]string, 0, len(f.Children))
	for k := range f.Children {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// formHeaderBits approximates the fixed serialization overhead of one
// form node (scheme tag, lengths, child count); it matches the order
// of magnitude of the storage package's actual headers so that the
// cost model and the on-disk sizes agree on rankings.
const formHeaderBits = 24 * 8

// perParamBits approximates the serialized size of one parameter.
const perParamBits = 10 * 8

// PayloadBits returns the total physical size, in bits, of the form
// tree: leaf payloads plus per-node header and parameter overheads.
// This is the size the compression-ratio experiments report (the
// storage package's exact encoding adds only framing and checksums).
func (f *Form) PayloadBits() uint64 {
	var total uint64 = formHeaderBits
	total += uint64(len(f.Params)) * perParamBits
	total += uint64(len(f.Leaf)) * 64
	total += uint64(len(f.Packed)) * 64
	total += uint64(len(f.Bytes)) * 8
	for _, c := range f.Children {
		total += c.PayloadBits()
	}
	return total
}

// PayloadBytes returns PayloadBits rounded up to whole bytes.
func (f *Form) PayloadBytes() uint64 { return (f.PayloadBits() + 7) / 8 }

// UncompressedBytes returns the size of the logical column this form
// represents, stored raw at 8 bytes per value.
func (f *Form) UncompressedBytes() uint64 { return uint64(f.N) * 8 }

// CompressionRatio returns uncompressed size over compressed size
// (higher is better); 0 for an empty column.
func (f *Form) CompressionRatio() float64 {
	pb := f.PayloadBytes()
	if pb == 0 {
		return 0
	}
	return float64(f.UncompressedBytes()) / float64(pb)
}

// Describe renders the scheme structure of the form tree, e.g.
// "rle(lengths=ns, values=delta(deltas=ns))".
func (f *Form) Describe() string {
	if len(f.Children) == 0 {
		return f.Scheme
	}
	out := f.Scheme + "("
	for i, name := range f.ChildNames() {
		if i > 0 {
			out += ", "
		}
		out += name + "=" + f.Children[name].Describe()
	}
	return out + ")"
}

// Walk visits the form and all descendants in depth-first order,
// stopping at the first error.
func (f *Form) Walk(visit func(*Form) error) error {
	if err := visit(f); err != nil {
		return err
	}
	for _, name := range f.ChildNames() {
		if err := f.Children[name].Walk(visit); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the form tree. Payload slices are
// copied so mutating the clone never aliases the original.
func (f *Form) Clone() *Form {
	if f == nil {
		return nil
	}
	out := &Form{
		Scheme: f.Scheme,
		N:      f.N,
		Params: f.Params.Clone(),
	}
	if f.Leaf != nil {
		out.Leaf = append([]int64{}, f.Leaf...)
	}
	if f.Packed != nil {
		out.Packed = append([]uint64{}, f.Packed...)
	}
	if f.Bytes != nil {
		out.Bytes = append([]byte{}, f.Bytes...)
	}
	if f.Children != nil {
		out.Children = make(map[string]*Form, len(f.Children))
		for k, v := range f.Children {
			out.Children[k] = v.Clone()
		}
	}
	return out
}

// Validate checks the form tree structurally: every node names a
// registered scheme, child lengths are consistent where the scheme
// declares them, and payload arms are not mixed.
func (f *Form) Validate() error {
	return f.Walk(func(node *Form) error {
		if node.Scheme == "" {
			return errors.New("core: form with empty scheme name")
		}
		if node.N < 0 {
			return fmt.Errorf("core: form %q has negative length %d", node.Scheme, node.N)
		}
		arms := 0
		if node.Leaf != nil {
			arms++
		}
		if node.Packed != nil {
			arms++
		}
		if node.Bytes != nil {
			arms++
		}
		if arms > 1 {
			return fmt.Errorf("core: form %q mixes payload arms", node.Scheme)
		}
		s, ok := Lookup(node.Scheme)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownScheme, node.Scheme)
		}
		if v, ok := s.(Validator); ok {
			if err := v.ValidateForm(node); err != nil {
				return err
			}
		}
		return nil
	})
}
