package core

import (
	"sort"
)

// Composite is the paper's composition operator "∘": compress with an
// outer scheme, then compress named constituent columns of the result
// with further (possibly themselves composite) schemes. The §I
// example — "applying an RLE scheme to the dates, then applying DELTA
// to the run values" — is Compose(RLE, map{"values": DELTA}).
//
// Composition is purely structural: the resulting Form tree needs no
// registration of its own, because decompression dispatches on each
// node's scheme name independently.
type Composite struct {
	outer Scheme
	inner map[string]Scheme
}

// Compose builds the composite scheme outer ∘ inner. Keys of inner
// name constituent columns of outer's forms; an unknown key surfaces
// at Compress time so that misconfigured pipelines fail loudly.
func Compose(outer Scheme, inner map[string]Scheme) *Composite {
	cp := make(map[string]Scheme, len(inner))
	for k, v := range inner {
		cp[k] = v
	}
	return &Composite{outer: outer, inner: cp}
}

// Name renders the composition, e.g. "rle(values=delta(deltas=ns))".
// Composite names are descriptive and are not registry keys.
func (c *Composite) Name() string {
	keys := make([]string, 0, len(c.inner))
	for k := range c.inner {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := c.outer.Name() + "("
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k + "=" + c.inner[k].Name()
	}
	return out + ")"
}

// Compress applies the outer scheme, then rewrites each named child by
// compressing its pure column with the inner scheme.
func (c *Composite) Compress(src []int64) (*Form, error) {
	return c.compressRewrite(src, nil)
}

// Decompress delegates to the registry-driven driver; composite forms
// decompress like any other because composition is structural.
func (c *Composite) Decompress(f *Form) ([]int64, error) {
	return Decompress(f)
}

// Compile-time check: a Composite is itself a Scheme, so compositions
// nest arbitrarily deep.
var _ Scheme = (*Composite)(nil)
