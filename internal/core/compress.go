package core

import "fmt"

// The pooled-compress contract, mirroring the *Into decode work: a
// steady-state block encode should allocate only what the resulting
// form retains (nodes and payloads), never its temporaries. Schemes
// opt in with ScratchCompressor; decomposable schemes additionally
// implement ConstituentCompressor so a Composite can compress
// constituent columns straight out of scratch buffers instead of
// round-tripping them through retained ID forms.

// LeafSchemeName is the registered name of the identity scheme —
// the raw pure-column leaf every decomposable scheme emits for its
// constituents. Declared here so the composition machinery can
// recognize ID leaves without importing the scheme package.
const LeafSchemeName = "id"

// ScratchCompressor is the encode-side mirror of IntoDecompressor:
// Compress drawing temporaries from a Scratch arena so steady-state
// block encode allocates only the retained form.
type ScratchCompressor interface {
	// CompressScratch encodes src into a form, borrowing temporaries
	// from s (which may be nil).
	CompressScratch(src []int64, s *Scratch) (*Form, error)
}

// ConstituentCompressor is implemented by decomposable schemes whose
// compressor can hand each constituent column to the caller as a
// short-lived slice instead of wrapping it in a retained ID form.
type ConstituentCompressor interface {
	// CompressParts encodes src; for each constituent column it calls
	// emit(name, col) and installs the returned form as that child.
	// col may be scratch-borrowed: it is valid only for the duration
	// of the emit call.
	CompressParts(src []int64, s *Scratch, emit func(name string, col []int64) (*Form, error)) (*Form, error)
}

// CompressScratch encodes src under sch, routing through the scheme's
// pooled compressor when it has one (and a scratch was supplied) and
// falling back to plain Compress otherwise, so the call never fails
// for lack of a fast path.
func CompressScratch(sch Scheme, src []int64, s *Scratch) (*Form, error) {
	if s != nil {
		if sc, ok := sch.(ScratchCompressor); ok {
			return sc.CompressScratch(src, s)
		}
	}
	return sch.Compress(src)
}

// newLeafForm builds the canonical ID form over a copy of col — the
// retained fallback for constituent columns a composite leaves
// uncompressed.
func newLeafForm(col []int64) *Form {
	leaf := make([]int64, len(col))
	copy(leaf, col)
	return &Form{Scheme: LeafSchemeName, N: len(col), Leaf: leaf}
}

// CompressScratch implements ScratchCompressor for compositions. When
// the outer scheme supports CompressParts, each constituent column is
// compressed directly from the scratch buffer the outer produced it
// in; otherwise the composite falls back to compress-then-rewrite,
// reading pure columns straight from ID leaves where possible.
func (c *Composite) CompressScratch(src []int64, s *Scratch) (*Form, error) {
	cc, ok := c.outer.(ConstituentCompressor)
	if !ok || s == nil {
		return c.compressRewrite(src, s)
	}
	seen := 0
	f, err := cc.CompressParts(src, s, func(name string, col []int64) (*Form, error) {
		inner, composed := c.inner[name]
		if !composed {
			return newLeafForm(col), nil
		}
		seen++
		cf, err := CompressScratch(inner, col, s)
		if err != nil {
			return nil, fmt.Errorf("composite %q: inner %q on child %q: %w", c.Name(), inner.Name(), name, err)
		}
		return cf, nil
	})
	if err != nil {
		return nil, err
	}
	if seen != len(c.inner) {
		// Some configured inner never matched an emitted constituent:
		// surface the same loud failure Compress gives for unknown
		// child keys.
		for name := range c.inner {
			if _, err := f.Child(name); err != nil {
				return nil, fmt.Errorf("composite %q: %w", c.Name(), err)
			}
		}
	}
	return f, nil
}

// compressRewrite is the compress-then-rewrite composition path:
// compress with the outer scheme, then replace each named child with
// its inner compression. Pure columns are read straight from ID
// leaves when the outer emitted them that way, avoiding a decompress
// copy.
func (c *Composite) compressRewrite(src []int64, s *Scratch) (*Form, error) {
	f, err := CompressScratch(c.outer, src, s)
	if err != nil {
		return nil, fmt.Errorf("composite outer %q: %w", c.outer.Name(), err)
	}
	for name, inner := range c.inner {
		child, err := f.Child(name)
		if err != nil {
			return nil, fmt.Errorf("composite %q: %w", c.Name(), err)
		}
		var pure []int64
		if child.Scheme == LeafSchemeName && len(child.Leaf) == child.N {
			pure = child.Leaf
		} else {
			pure, err = Decompress(child)
			if err != nil {
				return nil, fmt.Errorf("composite %q: resolving child %q: %w", c.Name(), name, err)
			}
		}
		cf, err := CompressScratch(inner, pure, s)
		if err != nil {
			return nil, fmt.Errorf("composite %q: inner %q on child %q: %w", c.Name(), inner.Name(), name, err)
		}
		f.Children[name] = cf
	}
	return f, nil
}
