// Package core implements the primary contribution of Rozenberg
// (ICDE 2018): a compositional algebra of lightweight compression
// schemes.
//
// The paper's key move is to view a compressed column as a set of
// "pure" constituent columns plus scalar parameters, with
// decompression expressed as a plan of ordinary columnar operators.
// Under that view, schemes compose (apply a scheme to a constituent
// column of another scheme's compressed form) and decompose (rewrite a
// scheme as a composition of simpler ones: RLE ≡ (ID, DELTA) ∘ RPE,
// FOR ≡ STEPFUNCTION + NS).
//
// core defines:
//
//   - Form: the recursive compressed representation (a tree whose
//     internal nodes are schemes and whose leaves are raw or
//     physically packed columns);
//   - Scheme: the compressor/decompressor contract, with optional
//     operator-plan decompression (Planner);
//   - Composite: the composition operator ∘;
//   - rewrite rules realizing the paper's decomposition identities;
//   - a cost model and an analyzer that searches the composite-scheme
//     space, the "richer view" the paper argues for.
package core
