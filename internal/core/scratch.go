package core

import "sync"

// Scratch is a reusable arena of decode temporaries. Decompressing a
// form tree needs short-lived buffers — the unpacked unsigned words
// of an NS leaf, the refs column of a FOR node, run lengths and
// values of an RLE node — and allocating them per call makes block
// decode allocation-bound instead of memory-bandwidth-bound.
//
// A Scratch holds freelists of int64 and uint64 buffers. Borrow with
// I64/U64, return with PutI64/PutU64; buffers keep their capacity, so
// after the first decode through a given form shape every subsequent
// decode is allocation-free. Scratches themselves come from a
// sync.Pool (GetScratch/Release), giving the steady state the paper's
// decomposition argument assumes: decode cost is the operator work,
// not the allocator.
//
// A Scratch is not safe for concurrent use; parallel block workers
// each hold their own. All methods tolerate a nil receiver (they fall
// back to plain allocation), so scratch-threading is always optional.
type Scratch struct {
	i64 freelist[int64]
	u64 freelist[uint64]
}

// freelist is a capacity-retaining stack of returned buffers.
type freelist[T any] [][]T

// get borrows a length-n buffer with unspecified contents, reusing
// the most recently returned buffer that fits.
func (fl *freelist[T]) get(n int) []T {
	l := *fl
	for i := len(l) - 1; i >= 0; i-- {
		if cap(l[i]) >= n {
			b := l[i][:n]
			last := len(l) - 1
			l[i] = l[last]
			l[last] = nil
			*fl = l[:last]
			return b
		}
	}
	return make([]T, n)
}

// put returns a borrowed buffer to the freelist.
func (fl *freelist[T]) put(b []T) {
	if cap(b) > 0 {
		*fl = append(*fl, b[:0])
	}
}

var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch returns a pooled Scratch. Pair it with Release.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns s (and the buffers it has accumulated) to the pool.
// The caller must not use s, or any buffer borrowed from it that was
// not returned, afterwards. Release on nil is a no-op.
func (s *Scratch) Release() {
	if s != nil {
		scratchPool.Put(s)
	}
}

// I64 borrows a length-n int64 buffer with unspecified contents.
// Return it with PutI64 when done.
func (s *Scratch) I64(n int) []int64 {
	if s == nil {
		return make([]int64, n)
	}
	return s.i64.get(n)
}

// PutI64 returns a buffer borrowed with I64 to the freelist.
func (s *Scratch) PutI64(b []int64) {
	if s != nil {
		s.i64.put(b)
	}
}

// U64 borrows a length-n uint64 buffer with unspecified contents.
// Return it with PutU64 when done.
func (s *Scratch) U64(n int) []uint64 {
	if s == nil {
		return make([]uint64, n)
	}
	return s.u64.get(n)
}

// PutU64 returns a buffer borrowed with U64 to the freelist.
func (s *Scratch) PutU64(b []uint64) {
	if s != nil {
		s.u64.put(b)
	}
}
