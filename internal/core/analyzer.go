package core

import (
	"errors"
	"fmt"
	"math"
)

// The analyzer realizes the paper's argument that a "richer view of
// the space of lightweight compression schemes" matters operationally:
// once schemes decompose into constituents, the scheme space becomes a
// grammar of compositions, and choosing a scheme becomes a search over
// that grammar rather than a pick from a flat menu.

// Candidate is one point in the composite-scheme space: a description
// and a compressor.
type Candidate struct {
	// Desc is a human-readable scheme expression, e.g.
	// "rle(lengths=ns, values=delta(deltas=ns))".
	Desc string
	// Compress encodes a column under this candidate.
	Compress func(src []int64) (*Form, error)
}

// FromScheme adapts a Scheme (or Composite) into a Candidate.
func FromScheme(s Scheme) Candidate {
	return Candidate{Desc: s.Name(), Compress: s.Compress}
}

// Choice reports the analyzer's winner and the full ranking.
type Choice struct {
	// Desc is the winning candidate's description.
	Desc string
	// Form is the winning compressed form of the full input.
	Form *Form
	// Eval holds the winning size/cost evaluation (of the full
	// input).
	Eval CostedSize
	// Ranking holds per-candidate sample evaluations, in input
	// order, for reporting. Failed candidates carry Err.
	Ranking []RankEntry
}

// RankEntry is one candidate's sample evaluation.
type RankEntry struct {
	Desc string
	Eval CostedSize
	// Err is non-nil when the candidate could not compress the
	// sample (e.g. a model scheme outside its domain).
	Err error
}

// Analyzer searches a candidate list for the best compression of a
// column.
type Analyzer struct {
	// Candidates is the scheme space to search.
	Candidates []Candidate
	// CostBudget, when positive, disqualifies candidates whose
	// abstract decompression cost per element exceeds it — the
	// paper's bandwidth argument: "overly-demanding decompression
	// would slow down the speed of processing data below what the
	// incoming bandwidth allows".
	CostBudget float64
	// SampleSize, when positive, evaluates candidates on a prefix
	// sample of at most this many elements before compressing the
	// full column with the winner.
	SampleSize int
}

// ErrNoCandidate is returned when every candidate fails or is over
// budget.
var ErrNoCandidate = errors.New("core: no admissible candidate scheme")

// BestForm is Best returning only the winning form — the entry point
// for callers (like the blocked-column encoder) that re-run the
// search many times and do not keep the per-candidate ranking.
func (a *Analyzer) BestForm(src []int64) (*Form, error) {
	choice, err := a.Best(src)
	if err != nil {
		return nil, err
	}
	return choice.Form, nil
}

// Best evaluates all candidates and returns the winner: the smallest
// sample encoding within the cost budget, recompressed over the full
// column.
func (a *Analyzer) Best(src []int64) (*Choice, error) {
	if len(a.Candidates) == 0 {
		return nil, ErrNoCandidate
	}
	sample := src
	if a.SampleSize > 0 && len(src) > a.SampleSize {
		sample = src[:a.SampleSize]
	}

	choice := &Choice{}
	bestBits := uint64(math.MaxUint64)
	bestIdx := -1
	for _, cand := range a.Candidates {
		entry := RankEntry{Desc: cand.Desc}
		f, err := cand.Compress(sample)
		if err != nil {
			entry.Err = err
			choice.Ranking = append(choice.Ranking, entry)
			continue
		}
		ev, err := Evaluate(f)
		if err != nil {
			entry.Err = err
			choice.Ranking = append(choice.Ranking, entry)
			continue
		}
		entry.Eval = ev
		choice.Ranking = append(choice.Ranking, entry)
		if a.CostBudget > 0 && len(sample) > 0 && ev.Cost/float64(len(sample)) > a.CostBudget {
			continue
		}
		if ev.Bits < bestBits {
			bestBits = ev.Bits
			bestIdx = len(choice.Ranking) - 1
		}
	}
	if bestIdx < 0 {
		return nil, ErrNoCandidate
	}

	winner := a.Candidates[bestIdx]
	full, err := winner.Compress(src)
	if err != nil {
		// The winner fit the sample but not the full column (e.g. an
		// exact-domain scheme); fall back to the next-best candidate
		// by re-running without it.
		rest := &Analyzer{CostBudget: a.CostBudget, SampleSize: a.SampleSize}
		for i, c := range a.Candidates {
			if i != bestIdx {
				rest.Candidates = append(rest.Candidates, c)
			}
		}
		if len(rest.Candidates) == 0 {
			return nil, fmt.Errorf("core: winning candidate %q failed on full column: %w", winner.Desc, err)
		}
		return rest.Best(src)
	}
	ev, err := Evaluate(full)
	if err != nil {
		return nil, err
	}
	choice.Desc = winner.Desc
	choice.Form = full
	choice.Eval = ev
	return choice, nil
}
