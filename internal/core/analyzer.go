package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// The analyzer realizes the paper's argument that a "richer view of
// the space of lightweight compression schemes" matters operationally:
// once schemes decompose into constituents, the scheme space becomes a
// grammar of compositions, and choosing a scheme becomes a search over
// that grammar rather than a pick from a flat menu.
//
// The search itself is statistics-driven: candidates are ranked by
// their predicted encoded size (SizeEstimator over one-pass
// BlockStats), and only the top few ambiguous candidates are actually
// trial-compressed. Exhaustive trial compression — the ground truth —
// remains available behind the Exhaustive flag.

// Candidate is one point in the composite-scheme space: a description
// and a compressor.
type Candidate struct {
	// Desc is a human-readable scheme expression, e.g.
	// "rle(lengths=ns, values=delta(deltas=ns))".
	Desc string
	// Compress encodes a column under this candidate.
	Compress func(src []int64) (*Form, error)
	// Scheme, when non-nil, is the scheme behind Compress. It lets
	// the analyzer predict the candidate's encoded size from block
	// statistics (SizeEstimator) and pool its encode temporaries
	// (ScratchCompressor). Candidates built from a bare Compress
	// closure are always trial-compressed.
	Scheme Scheme
}

// FromScheme adapts a Scheme (or Composite) into a Candidate.
func FromScheme(s Scheme) Candidate {
	return Candidate{Desc: s.Name(), Compress: s.Compress, Scheme: s}
}

// Choice reports the analyzer's winner and the full ranking.
type Choice struct {
	// Desc is the winning candidate's description.
	Desc string
	// Form is the winning compressed form of the full input.
	Form *Form
	// Eval holds the winning size/cost evaluation (of the full
	// input).
	Eval CostedSize
	// Ranking holds per-candidate evaluations, in input order, for
	// reporting. Pruned candidates carry only their estimate; failed
	// candidates carry Err.
	Ranking []RankEntry
}

// RankEntry is one candidate's evaluation.
type RankEntry struct {
	Desc string
	// Eval is the trial evaluation over the sample; valid only when
	// Trialed is set.
	Eval CostedSize
	// Err is non-nil when the candidate could not compress the
	// sample (e.g. a model scheme outside its domain).
	Err error
	// EstBits is the stats-predicted encoded size in bits (0 when
	// the candidate has no estimator; ImpossibleBits when the stats
	// prove compression would fail).
	EstBits uint64
	// EstExact reports whether EstBits is exact rather than bounded.
	EstExact bool
	// Trialed reports whether the candidate was trial-compressed.
	Trialed bool
}

// DefaultTrialK is the number of top-estimated candidates the pruned
// search trial-compresses when TrialK is unset.
const DefaultTrialK = 3

// Analyzer searches a candidate list for the best compression of a
// column.
type Analyzer struct {
	// Candidates is the scheme space to search.
	Candidates []Candidate
	// CostBudget, when positive, disqualifies candidates whose
	// abstract decompression cost per element exceeds it — the
	// paper's bandwidth argument: "overly-demanding decompression
	// would slow down the speed of processing data below what the
	// incoming bandwidth allows".
	CostBudget float64
	// SampleSize, when positive, evaluates candidates on a prefix
	// sample of at most this many elements before compressing the
	// full column with the winner.
	SampleSize int
	// TrialK bounds how many of the top estimate-ranked candidates
	// are trial-compressed (0 means DefaultTrialK). Candidates
	// without estimators are always trialed, and the best
	// exact-estimated candidate is always included so the winner can
	// never lose to a provable size.
	TrialK int
	// Exhaustive disables estimate pruning: every candidate is
	// trial-compressed. This is the ground-truth mode the estimate
	// fuzz tests compare against.
	Exhaustive bool
	// Stats, when non-nil, supplies precomputed one-pass statistics
	// of the column given to Best; nil collects them on demand.
	Stats *BlockStats
	// Scratch, when non-nil, supplies pooled encode temporaries to
	// stats collection and trial compression.
	Scratch *Scratch
}

// ErrNoCandidate is returned when every candidate fails or is over
// budget.
var ErrNoCandidate = errors.New("core: no admissible candidate scheme")

// BestForm is Best returning only the winning form — the entry point
// for callers (like the blocked-column encoder) that re-run the
// search many times and do not keep the per-candidate ranking.
func (a *Analyzer) BestForm(src []int64) (*Form, error) {
	choice, err := a.Best(src)
	if err != nil {
		return nil, err
	}
	return choice.Form, nil
}

// trialK returns the effective trial budget.
func (a *Analyzer) trialK() int {
	if a.TrialK > 0 {
		return a.TrialK
	}
	return DefaultTrialK
}

// compressCand encodes data under candidate c, through the pooled
// path when the candidate carries its scheme.
func (a *Analyzer) compressCand(c *Candidate, data []int64) (*Form, error) {
	if c.Scheme != nil {
		return CompressScratch(c.Scheme, data, a.Scratch)
	}
	return c.Compress(data)
}

// Best searches the candidates and returns the winner: the smallest
// trial encoding within the cost budget among the estimate-ranked
// shortlist (or among all candidates under Exhaustive), compressed
// over the full column.
func (a *Analyzer) Best(src []int64) (*Choice, error) {
	n := len(a.Candidates)
	if n == 0 {
		return nil, ErrNoCandidate
	}
	sample := src
	if a.SampleSize > 0 && len(src) > a.SampleSize {
		sample = src[:a.SampleSize]
	}
	choice := &Choice{Ranking: make([]RankEntry, n)}
	for i := range a.Candidates {
		choice.Ranking[i].Desc = a.Candidates[i].Desc
	}

	// Phase 1: estimate every candidate that can be estimated.
	estimated := false
	if !a.Exhaustive {
		st := a.Stats
		var local BlockStats
		for i := range a.Candidates {
			c := &a.Candidates[i]
			if c.Scheme == nil {
				continue
			}
			if _, ok := c.Scheme.(SizeEstimator); !ok {
				continue
			}
			if st == nil {
				local = CollectStats(src, a.Scratch)
				st = &local
			}
			bits, exact, ok := EstimateOf(c.Scheme, st)
			if !ok {
				continue
			}
			e := &choice.Ranking[i]
			e.EstBits, e.EstExact = bits, exact
			estimated = true
		}
		if st == &local {
			local.ReleaseSeg(a.Scratch)
		}
	}

	// Phase 2: order candidates for trialing. Without estimates the
	// order is the input order and every candidate is trialed (the
	// exhaustive behavior); with estimates, unestimated candidates
	// come first (they must be trialed to be considered), then
	// ascending predicted size.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	trialBudget := n
	if estimated {
		sort.SliceStable(order, func(x, y int) bool {
			ex, ey := &choice.Ranking[order[x]], &choice.Ranking[order[y]]
			if (ex.EstBits == 0) != (ey.EstBits == 0) {
				return ex.EstBits == 0
			}
			return ex.EstBits < ey.EstBits
		})
		trialBudget = 0
		k := a.trialK()
		bestExact := -1
		for _, idx := range order {
			e := &choice.Ranking[idx]
			if e.EstBits == ImpossibleBits {
				continue
			}
			if e.EstBits == 0 {
				trialBudget++ // unestimated: always trialed
				continue
			}
			if k > 0 {
				trialBudget++
				k--
			}
			if e.EstExact && bestExact < 0 {
				bestExact = idx
			}
		}
		// Guarantee the best exact estimate a trial slot: its actual
		// size equals its estimate, so the winner can never be worse
		// than the best provable size.
		if bestExact >= 0 && !withinFirst(order, trialBudget, bestExact) {
			for j, idx := range order {
				if idx == bestExact {
					copy(order[trialBudget+1:j+1], order[trialBudget:j])
					order[trialBudget] = bestExact
					break
				}
			}
			trialBudget++
		}
		if trialBudget == 0 {
			trialBudget = 1
		}
	}

	// Phase 3: trial-compress the shortlist on the sample, extending
	// past the planned budget only while no admissible candidate has
	// been found.
	bestIdx := -1
	bestBits := uint64(math.MaxUint64)
	var bestTrialForm *Form
	admissible := 0
	for pos, idx := range order {
		if pos >= trialBudget && admissible > 0 {
			break
		}
		e := &choice.Ranking[idx]
		if estimated && e.EstBits == ImpossibleBits {
			continue
		}
		cand := &a.Candidates[idx]
		f, err := a.compressCand(cand, sample)
		if err != nil {
			e.Err = err
			continue
		}
		ev, err := Evaluate(f)
		if err != nil {
			e.Err = err
			continue
		}
		e.Eval = ev
		e.Trialed = true
		if a.CostBudget > 0 && len(sample) > 0 && ev.Cost/float64(len(sample)) > a.CostBudget {
			continue
		}
		admissible++
		if ev.Bits < bestBits {
			bestBits = ev.Bits
			bestIdx = idx
			bestTrialForm = f
		}
	}
	if bestIdx < 0 {
		return nil, ErrNoCandidate
	}

	// Phase 4: produce the winner's full-column form. When the sample
	// covered the whole column the winning trial form is the final
	// form — no second compression. A winner that fails on the full
	// column falls back down the already-computed ranking instead of
	// re-running the search.
	if len(sample) == len(src) {
		choice.Desc = a.Candidates[bestIdx].Desc
		choice.Form = bestTrialForm
		choice.Eval = choice.Ranking[bestIdx].Eval
		return choice, nil
	}
	for _, idx := range a.fallbackOrder(choice, bestIdx, order) {
		e := &choice.Ranking[idx]
		full, err := a.compressCand(&a.Candidates[idx], src)
		if err != nil {
			if e.Err == nil {
				e.Err = err
			}
			continue
		}
		ev, err := Evaluate(full)
		if err != nil {
			if e.Err == nil {
				e.Err = err
			}
			continue
		}
		if a.CostBudget > 0 && len(src) > 0 && ev.Cost/float64(len(src)) > a.CostBudget {
			continue
		}
		choice.Desc = a.Candidates[idx].Desc
		choice.Form = full
		choice.Eval = ev
		return choice, nil
	}
	return nil, fmt.Errorf("core: winning candidate %q failed on full column: %w",
		a.Candidates[bestIdx].Desc, ErrNoCandidate)
}

// fallbackOrder returns candidate indices in the order the
// full-column encode should try them: the winner first, then the
// remaining admissible trialed candidates by ascending sample size,
// then never-trialed candidates in estimate order.
func (a *Analyzer) fallbackOrder(choice *Choice, bestIdx int, order []int) []int {
	out := make([]int, 0, len(order))
	out = append(out, bestIdx)
	trialed := make([]int, 0, len(order))
	for _, idx := range order {
		e := &choice.Ranking[idx]
		if idx == bestIdx || !e.Trialed {
			continue
		}
		trialed = append(trialed, idx)
	}
	sort.SliceStable(trialed, func(x, y int) bool {
		return choice.Ranking[trialed[x]].Eval.Bits < choice.Ranking[trialed[y]].Eval.Bits
	})
	out = append(out, trialed...)
	for _, idx := range order {
		e := &choice.Ranking[idx]
		if idx == bestIdx || e.Trialed || e.Err != nil || e.EstBits == ImpossibleBits {
			continue
		}
		out = append(out, idx)
	}
	return out
}

// withinFirst reports whether idx appears among the first k entries
// of order.
func withinFirst(order []int, k int, idx int) bool {
	for i := 0; i < k && i < len(order); i++ {
		if order[i] == idx {
			return true
		}
	}
	return false
}
