package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lwcomp/internal/exec"
)

// mockRaw is a registry-independent stand-in for the ID scheme, under
// a test-unique name so core tests do not depend on package scheme.
type mockRaw struct{ name string }

func (m mockRaw) Name() string { return m.name }

func (m mockRaw) Compress(src []int64) (*Form, error) {
	leaf := append([]int64{}, src...)
	return &Form{Scheme: m.name, N: len(src), Leaf: leaf}, nil
}

func (m mockRaw) Decompress(f *Form) ([]int64, error) {
	return append([]int64{}, f.Leaf...), nil
}

func (m mockRaw) DecompressCostPerElement(*Form) float64 { return 1 }

// mockDouble halves on compress, doubles on decompress, storing the
// halves in a child named "halves".
type mockDouble struct{ name string }

func (m mockDouble) Name() string { return m.name }

func (m mockDouble) Compress(src []int64) (*Form, error) {
	halves := make([]int64, len(src))
	for i, v := range src {
		if v%2 != 0 {
			return nil, fmt.Errorf("%w: odd value %d", ErrNotRepresentable, v)
		}
		halves[i] = v / 2
	}
	return &Form{
		Scheme:   m.name,
		N:        len(src),
		Children: map[string]*Form{"halves": {Scheme: "raw-mock", N: len(src), Leaf: halves}},
	}, nil
}

func (m mockDouble) Decompress(f *Form) ([]int64, error) {
	halves, err := DecompressChild(f, "halves")
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(halves))
	for i, v := range halves {
		out[i] = v * 2
	}
	return out, nil
}

func (m mockDouble) Plan(f *Form) (*exec.Plan, error) {
	b := exec.NewBuilder()
	h := b.Input("halves")
	two := b.ConstScalar(2)
	b.ElementwiseScalar(2 /* Mul */, h, two)
	return b.Build()
}

func init() {
	Register(mockRaw{"raw-mock"})
	Register(mockDouble{"double-mock"})
}

func TestRegistry(t *testing.T) {
	if _, ok := Lookup("raw-mock"); !ok {
		t.Fatal("raw-mock not registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom scheme found")
	}
	found := false
	for _, n := range Schemes() {
		if n == "double-mock" {
			found = true
		}
	}
	if !found {
		t.Fatal("Schemes() misses double-mock")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(mockRaw{"raw-mock"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty name did not panic")
		}
	}()
	Register(mockRaw{""})
}

func TestDecompressDriver(t *testing.T) {
	src := []int64{2, 4, 6}
	f, err := Compress("double-mock", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("nil form accepted")
	}
	if _, err := Decompress(&Form{Scheme: "nope"}); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme err = %v", err)
	}
	if _, err := Compress("nope", src); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown compress err = %v", err)
	}
}

func TestDecompressLengthMismatchDetected(t *testing.T) {
	f := &Form{Scheme: "raw-mock", N: 5, Leaf: []int64{1, 2}}
	if _, err := Decompress(f); !errors.Is(err, ErrCorruptForm) {
		t.Fatalf("length mismatch err = %v", err)
	}
}

func TestParams(t *testing.T) {
	p := Params{"b": 2, "a": 1}
	if got := p.Keys(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Keys = %v", got)
	}
	v, err := p.Get("x", "a")
	if err != nil || v != 1 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if _, err := p.Get("x", "zz"); err == nil {
		t.Fatal("missing key accepted")
	}
	c := p.Clone()
	c["a"] = 99
	if p["a"] != 1 {
		t.Fatal("Clone aliases")
	}
	var nilP Params
	if nilP.Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestFormTreeHelpers(t *testing.T) {
	f, err := Compress("double-mock", []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Child("halves"); err != nil {
		t.Fatalf("Child: %v", err)
	}
	if _, err := f.Child("nope"); err == nil {
		t.Fatal("phantom child accepted")
	}
	if names := f.ChildNames(); len(names) != 1 || names[0] != "halves" {
		t.Fatalf("ChildNames = %v", names)
	}
	if d := f.Describe(); d != "double-mock(halves=raw-mock)" {
		t.Fatalf("Describe = %q", d)
	}
	count := 0
	if err := f.Walk(func(*Form) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("Walk visited %d nodes", count)
	}
	wantErr := errors.New("stop")
	if err := f.Walk(func(*Form) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatal("Walk did not propagate error")
	}
}

func TestFormClone(t *testing.T) {
	f, err := Compress("double-mock", []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Clone()
	c.Children["halves"].Leaf[0] = 99
	if f.Children["halves"].Leaf[0] == 99 {
		t.Fatal("Clone aliases leaf payload")
	}
	if (*Form)(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestFormSizes(t *testing.T) {
	f, err := Compress("raw-mock", []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.UncompressedBytes() != 32 {
		t.Fatalf("uncompressed = %d", f.UncompressedBytes())
	}
	// Raw leaf: 4×64 payload bits plus header.
	if f.PayloadBits() != 4*64+formHeaderBits {
		t.Fatalf("payload bits = %d", f.PayloadBits())
	}
	if f.CompressionRatio() >= 1 {
		t.Fatalf("raw ratio %f should be below 1 (header overhead)", f.CompressionRatio())
	}
}

func TestFormValidate(t *testing.T) {
	f, err := Compress("double-mock", []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("valid form rejected: %v", err)
	}
	bad := &Form{Scheme: "nope", N: 1}
	if err := bad.Validate(); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme err = %v", err)
	}
	bad = &Form{Scheme: "raw-mock", N: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative length accepted")
	}
	bad = &Form{Scheme: "raw-mock", N: 1, Leaf: []int64{1}, Bytes: []byte{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mixed payload arms accepted")
	}
	bad = &Form{Scheme: ""}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty scheme accepted")
	}
}

func TestComposite(t *testing.T) {
	comp := Compose(mockDouble{"double-mock"}, map[string]Scheme{
		"halves": mockDouble{"double-mock"},
	})
	if got := comp.Name(); got != "double-mock(halves=double-mock)" {
		t.Fatalf("Name = %q", got)
	}
	src := []int64{4, 8, 12}
	f, err := comp.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Children["halves"].Scheme != "double-mock" {
		t.Fatalf("inner child scheme = %q", f.Children["halves"].Scheme)
	}
	got, err := comp.Decompress(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatal("composite roundtrip mismatch")
		}
	}
	// Unknown child key fails loudly.
	bad := Compose(mockDouble{"double-mock"}, map[string]Scheme{"nope": mockRaw{"raw-mock"}})
	if _, err := bad.Compress(src); err == nil {
		t.Fatal("unknown child key accepted")
	}
	// Inner failure propagates.
	badInner := Compose(mockDouble{"double-mock"}, map[string]Scheme{"halves": mockDouble{"double-mock"}})
	if _, err := badInner.Compress([]int64{2}); !errors.Is(err, ErrNotRepresentable) {
		t.Fatalf("inner failure err = %v", err)
	}
}

func TestPlanOfAndDecompressViaPlan(t *testing.T) {
	src := []int64{2, 4, 6}
	f, err := Compress("double-mock", src)
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := PlanOf(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(env["halves"]) != 3 {
		t.Fatalf("env = %v", env)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if out[i] != src[i] {
			t.Fatal("plan decompression mismatch")
		}
	}
	via, err := DecompressViaPlan(f, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if via[i] != src[i] {
			t.Fatal("DecompressViaPlan mismatch")
		}
	}
	// raw-mock has no Plan.
	rf, _ := Compress("raw-mock", src)
	if _, _, err := PlanOf(rf); err == nil || !strings.Contains(err.Error(), "does not support plan") {
		t.Fatalf("planless scheme err = %v", err)
	}
}

func TestDecompressionCost(t *testing.T) {
	f, err := Compress("double-mock", []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := DecompressionCost(f)
	if err != nil {
		t.Fatal(err)
	}
	// double-mock has no Coster (default 2.0 × 2 elements) and its
	// raw child costs 1.0 × 2.
	if cost != 2*2+1*2 {
		t.Fatalf("cost = %f", cost)
	}
	if _, err := DecompressionCost(&Form{Scheme: "nope", N: 1}); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown cost err = %v", err)
	}
}

func TestAnalyzerBest(t *testing.T) {
	// double-mock only works on even columns and yields smaller
	// "payload" through the mock child; raw-mock always works.
	a := &Analyzer{Candidates: []Candidate{
		FromScheme(mockDouble{"double-mock"}),
		FromScheme(mockRaw{"raw-mock"}),
	}}
	choice, err := a.Best([]int64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Form == nil || len(choice.Ranking) != 2 {
		t.Fatalf("choice = %+v", choice)
	}
	back, err := Decompress(choice.Form)
	if err != nil || len(back) != 4 {
		t.Fatalf("winner decompression: %v", err)
	}

	// Odd data: double-mock fails, raw wins.
	choice, err = a.Best([]int64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Desc != "raw-mock" {
		t.Fatalf("winner = %q", choice.Desc)
	}

	// No candidates.
	empty := &Analyzer{}
	if _, err := empty.Best([]int64{1}); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("empty analyzer err = %v", err)
	}
}

func TestAnalyzerSampleFallback(t *testing.T) {
	// double-mock wins on the even sample prefix but fails on the
	// full column (odd tail); the analyzer must fall back to raw.
	a := &Analyzer{
		Candidates: []Candidate{
			FromScheme(mockDouble{"double-mock"}),
			FromScheme(mockRaw{"raw-mock"}),
		},
		SampleSize: 2,
	}
	choice, err := a.Best([]int64{2, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Desc != "raw-mock" {
		t.Fatalf("fallback winner = %q", choice.Desc)
	}
}

// countingScheme wraps mockRaw-style compression with a call counter
// and an optional failure above a length threshold, for pinning the
// analyzer's fallback behavior.
type countingScheme struct {
	name     string
	failOver int // Compress fails for inputs longer than this (0 = never)
	pad      int // extra leaf values appended, to order candidates by size
	calls    *int
}

func (c countingScheme) Name() string { return c.name }

func (c countingScheme) Compress(src []int64) (*Form, error) {
	*c.calls++
	if c.failOver > 0 && len(src) > c.failOver {
		return nil, fmt.Errorf("%w: column longer than %d", ErrNotRepresentable, c.failOver)
	}
	// The pad inflates the payload so candidates order by size; the
	// analyzer never decompresses losing trials, so the extra leaf
	// values are inert.
	leaf := append([]int64{}, src...)
	leaf = append(leaf, make([]int64, c.pad)...)
	return &Form{Scheme: "raw-mock", N: len(src), Leaf: leaf}, nil
}

func (c countingScheme) Decompress(f *Form) ([]int64, error) {
	return append([]int64{}, f.Leaf...), nil
}

// TestAnalyzerFallbackWalksRanking pins the fallback fix: when the
// sample winner fails on the full column, the analyzer must walk down
// the already-computed ranking, not re-run the whole search (which
// would re-trial the failed candidate).
func TestAnalyzerFallbackWalksRanking(t *testing.T) {
	callsA, callsB := 0, 0
	a := &Analyzer{
		Candidates: []Candidate{
			FromScheme(countingScheme{name: "small-but-fragile", failOver: 2, calls: &callsA}),
			FromScheme(countingScheme{name: "big-but-sturdy", pad: 8, calls: &callsB}),
		},
		SampleSize: 2,
	}
	choice, err := a.Best([]int64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Desc != "big-but-sturdy" {
		t.Fatalf("fallback winner = %q", choice.Desc)
	}
	// The fragile candidate compresses exactly twice: the sample trial
	// and the one failed full-column attempt. The old re-search path
	// would have trialed it a third time.
	if callsA != 2 {
		t.Fatalf("fragile candidate compressed %d times, want 2", callsA)
	}
	// The sturdy candidate compresses twice: sample trial plus the
	// full column.
	if callsB != 2 {
		t.Fatalf("sturdy candidate compressed %d times, want 2", callsB)
	}
	if len(choice.Ranking) != 2 || choice.Ranking[0].Err == nil {
		t.Fatalf("ranking does not record the fallen candidate: %+v", choice.Ranking)
	}
}

// TestAnalyzerReusesFullSampleForm pins the no-double-compress
// optimization: when the sample covers the whole column, the winning
// trial form is returned directly.
func TestAnalyzerReusesFullSampleForm(t *testing.T) {
	calls := 0
	a := &Analyzer{
		Candidates: []Candidate{FromScheme(countingScheme{name: "only", calls: &calls})},
	}
	if _, err := a.Best([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("candidate compressed %d times, want 1 (trial form reused)", calls)
	}
}

func TestAnalyzerCostBudget(t *testing.T) {
	// With a budget below raw's cost of 1/element nothing qualifies.
	a := &Analyzer{
		Candidates: []Candidate{FromScheme(mockRaw{"raw-mock"})},
		CostBudget: 0.5,
	}
	if _, err := a.Best([]int64{1, 2}); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("budget err = %v", err)
	}
}
