package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lwcomp/internal/exec"
)

// ErrUnknownScheme is returned when a form names a scheme that has not
// been registered.
var ErrUnknownScheme = errors.New("core: unknown scheme")

// ErrNotRepresentable is returned by a scheme's Compress when the
// input column is outside the scheme's domain (for example, STEP can
// only represent exact fixed-segment step functions — the paper notes
// it "captures a tiny fragment of potential columns").
var ErrNotRepresentable = errors.New("core: column not representable by scheme")

// ErrCorruptForm is returned when a form's payload or children are
// inconsistent with its parameters.
var ErrCorruptForm = errors.New("core: corrupt form")

// Scheme is a lightweight compression scheme under the paper's
// columnar view: Compress splits a logical column into constituent
// columns (children of the returned Form) plus scalar parameters;
// Decompress reverses it.
//
// Compress must produce children that are ID forms (raw pure columns)
// or physical leaf forms; making children *themselves* compressed is
// the job of the Composite combinator — keeping the two concerns
// separate is exactly the paper's decomposition discipline.
//
// Decompress must handle children compressed by arbitrary schemes by
// resolving them through core.Decompress.
type Scheme interface {
	// Name returns the registry key, a short lowercase identifier.
	Name() string
	// Compress encodes src into a form.
	Compress(src []int64) (*Form, error)
	// Decompress reconstructs the column encoded by f.
	Decompress(f *Form) ([]int64, error)
}

// Planner is implemented by schemes whose decompression can be
// expressed as an operator plan over their immediate constituent
// columns — the paper's Algorithms 1 and 2. The returned plan's
// Input nodes name the form's children.
type Planner interface {
	Scheme
	// Plan returns the decompression plan for f.
	Plan(f *Form) (*exec.Plan, error)
}

// Validator is implemented by schemes that can structurally check
// their own forms (payload lengths against parameters and so on).
type Validator interface {
	// ValidateForm reports structural problems in a form of this
	// scheme.
	ValidateForm(f *Form) error
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Scheme{}
)

// Register adds s to the global scheme registry. Registering two
// schemes with the same name is a programming error and panics, per
// the database/sql driver-registration convention.
func Register(s Scheme) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("core: Register with empty scheme name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: Register called twice for scheme %q", name))
	}
	registry[name] = s
}

// Lookup returns the registered scheme with the given name.
func Lookup(name string) (Scheme, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Schemes returns the names of all registered schemes, sorted.
func Schemes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Decompress reconstructs the logical column of a form tree by
// dispatching on the form's scheme name. It is the single entry point
// schemes use to resolve their (possibly recursively compressed)
// constituent columns.
func Decompress(f *Form) ([]int64, error) {
	if f == nil {
		return nil, errors.New("core: Decompress(nil)")
	}
	s, ok := Lookup(f.Scheme)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, f.Scheme)
	}
	out, err := s.Decompress(f)
	if err != nil {
		return nil, fmt.Errorf("scheme %q: %w", f.Scheme, err)
	}
	if len(out) != f.N {
		return nil, fmt.Errorf("%w: scheme %q decompressed %d values, form declares %d",
			ErrCorruptForm, f.Scheme, len(out), f.N)
	}
	return out, nil
}

// DecompressChild resolves the named constituent column of f.
func DecompressChild(f *Form, name string) ([]int64, error) {
	c, err := f.Child(name)
	if err != nil {
		return nil, err
	}
	return Decompress(c)
}

// IntoDecompressor is implemented by schemes whose decoder can fill
// caller-provided storage, drawing temporaries from a Scratch arena
// instead of the heap. It is the allocation-free variant of
// Scheme.Decompress that the blocked scan path runs on.
type IntoDecompressor interface {
	// DecompressInto reconstructs f's column into dst, which has
	// length f.N. Temporaries come from s (which may be nil).
	DecompressInto(f *Form, dst []int64, s *Scratch) error
}

// DecompressInto reconstructs f's column into dst (whose length must
// equal f.N), using s for decode temporaries. Schemes implementing
// IntoDecompressor decode with zero steady-state allocations; others
// fall back to Decompress plus a copy, so the call never fails for
// lack of a fast path.
func DecompressInto(f *Form, dst []int64, s *Scratch) error {
	if f == nil {
		return errors.New("core: DecompressInto(nil)")
	}
	if len(dst) != f.N {
		return fmt.Errorf("%w: DecompressInto dst length %d, form declares %d",
			ErrCorruptForm, len(dst), f.N)
	}
	sc, ok := Lookup(f.Scheme)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownScheme, f.Scheme)
	}
	if d, ok := sc.(IntoDecompressor); ok {
		if err := d.DecompressInto(f, dst, s); err != nil {
			return fmt.Errorf("scheme %q: %w", f.Scheme, err)
		}
		return nil
	}
	out, err := Decompress(f)
	if err != nil {
		return err
	}
	copy(dst, out)
	return nil
}

// DecompressChildInto resolves the named constituent column of f into
// dst, which must have length equal to the child's N.
func DecompressChildInto(f *Form, name string, dst []int64, s *Scratch) error {
	c, err := f.Child(name)
	if err != nil {
		return err
	}
	return DecompressInto(c, dst, s)
}

// ChildScratch decompresses the named child into a scratch-borrowed
// buffer. The caller returns the buffer with s.PutI64 when done.
func ChildScratch(f *Form, name string, s *Scratch) ([]int64, error) {
	c, err := f.Child(name)
	if err != nil {
		return nil, err
	}
	buf := s.I64(c.N)
	if err := DecompressInto(c, buf, s); err != nil {
		s.PutI64(buf)
		return nil, err
	}
	return buf, nil
}

// Compress encodes src with the named registered scheme.
func Compress(schemeName string, src []int64) (*Form, error) {
	s, ok := Lookup(schemeName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, schemeName)
	}
	return s.Compress(src)
}

// PlanOf returns the operator-plan decompression of f if its scheme
// supports planning, along with the environment of decompressed
// constituent columns the plan's Input nodes expect.
func PlanOf(f *Form) (*exec.Plan, map[string][]int64, error) {
	s, ok := Lookup(f.Scheme)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownScheme, f.Scheme)
	}
	p, ok := s.(Planner)
	if !ok {
		return nil, nil, fmt.Errorf("core: scheme %q does not support plan decompression", f.Scheme)
	}
	plan, err := p.Plan(f)
	if err != nil {
		return nil, nil, err
	}
	env := make(map[string][]int64, len(f.Children))
	for _, name := range plan.Inputs() {
		col, err := DecompressChild(f, name)
		if err != nil {
			return nil, nil, err
		}
		env[name] = col
	}
	return plan, env, nil
}

// DecompressViaPlan reconstructs f's column by building and executing
// its scheme's operator plan — the paper's route — rather than the
// fused kernel. fuse selects whether the engine may substitute
// recognized idioms.
func DecompressViaPlan(f *Form, fuse bool) ([]int64, error) {
	plan, env, err := PlanOf(f)
	if err != nil {
		return nil, err
	}
	if fuse {
		plan = exec.Fuse(plan)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		return nil, err
	}
	if len(out) != f.N {
		return nil, fmt.Errorf("%w: plan produced %d values, form declares %d", ErrCorruptForm, len(out), f.N)
	}
	return out, nil
}
