package core

import "fmt"

// The cost model quantifies the paper's trade-off axis: partial
// decompression "trades away some of the potential compression ratio
// of the composite scheme for ease of decompression". Size alone
// would always prefer the deepest composition; decompression cost is
// what makes shallower forms (like RPE instead of RLE) rational
// choices.

// Coster is optionally implemented by schemes to report the abstract
// per-output-element cost of their decompression kernel (excluding
// the recursive cost of resolving children). The unit is "simple
// column operations per element": a copy costs about 1, a
// gather about 2, bit unpacking about 1.5.
type Coster interface {
	Scheme
	// DecompressCostPerElement estimates per-element kernel cost for
	// the given form.
	DecompressCostPerElement(f *Form) float64
}

// defaultCostPerElement is assumed for schemes that do not implement
// Coster.
const defaultCostPerElement = 2.0

// DecompressionCost estimates the total abstract cost of fully
// decompressing a form tree.
func DecompressionCost(f *Form) (float64, error) {
	var total float64
	err := f.Walk(func(node *Form) error {
		s, ok := Lookup(node.Scheme)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownScheme, node.Scheme)
		}
		per := defaultCostPerElement
		if c, ok := s.(Coster); ok {
			per = c.DecompressCostPerElement(node)
		}
		total += per * float64(node.N)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// CostedSize bundles the two objectives the analyzer trades off.
type CostedSize struct {
	// Bits is the physical size of the form tree.
	Bits uint64
	// Cost is the abstract decompression cost.
	Cost float64
	// Ratio is uncompressed bits over compressed bits.
	Ratio float64
}

// Evaluate computes both objectives for a form.
func Evaluate(f *Form) (CostedSize, error) {
	cost, err := DecompressionCost(f)
	if err != nil {
		return CostedSize{}, err
	}
	bits := f.PayloadBits()
	var ratio float64
	if bits > 0 {
		ratio = float64(uint64(f.N)*64) / float64(bits)
	}
	return CostedSize{Bits: bits, Cost: cost, Ratio: ratio}, nil
}
