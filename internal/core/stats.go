package core

import (
	"math"
	"math/bits"

	"lwcomp/internal/bitpack"
)

// BlockStats is the one-pass statistical summary of a block that
// drives the statistics-driven encode path: instead of
// trial-compressing every candidate scheme on every block, the
// analyzer predicts each candidate's encoded size from these numbers
// (SizeEstimator) and trial-encodes only a pruned shortlist.
//
// All fields describe the logical column handed to CollectStats. The
// Has* flags report which field groups are populated; the collector
// sets all of them, while stats *derived* for constituent columns by
// ConstituentStatser implementations populate only what the parent's
// stats determine.
type BlockStats struct {
	// N is the number of elements.
	N int
	// First is the first element (zero for an empty column). DELTA
	// stores it as the first delta from zero, so delta-size estimates
	// need it separately from the delta histogram.
	First int64
	// Min and Max are the extreme values (zero for empty columns).
	Min, Max int64
	// HasMinMax reports Min/Max (and First) validity.
	HasMinMax bool
	// NonDecreasing and NonIncreasing report monotonicity (both true
	// for empty columns).
	NonDecreasing, NonIncreasing bool

	// Runs is the number of maximal runs of equal values.
	Runs int
	// MaxRunLen is the length of the longest run.
	MaxRunLen int64
	// HasRuns reports Runs/MaxRunLen validity.
	HasRuns bool

	// RunDeltaMin and RunDeltaMax bound the deltas between
	// consecutive run-head values as DELTA would store them over
	// RLE's values column (first delta taken from zero, i.e. First
	// itself).
	RunDeltaMin, RunDeltaMax int64
	// RunDeltaHist is the width histogram of zigzagged run-head
	// deltas, excluding the synthetic first delta (First).
	RunDeltaHist bitpack.WidthHistogram
	// HasRunDeltas reports RunDelta* validity.
	HasRunDeltas bool

	// DeltaMin and DeltaMax bound the deltas DELTA would store (first
	// delta taken from zero, i.e. First itself).
	DeltaMin, DeltaMax int64
	// DeltaHist is the width histogram of zigzagged consecutive
	// deltas, excluding the synthetic first delta.
	DeltaHist bitpack.WidthHistogram
	// SumAbsDelta accumulates |delta| between consecutive elements.
	SumAbsDelta uint64
	// HasDeltas reports Delta*/SumAbsDelta validity.
	HasDeltas bool

	// ValueHist is the width histogram of zigzagged values.
	ValueHist bitpack.WidthHistogram
	// HasValueHist reports ValueHist validity.
	HasValueHist bool

	// Distinct is a linear-counting estimate of the distinct-value
	// count, saturating at DistinctCap+1.
	Distinct int
	// HasDistinct reports Distinct validity.
	HasDistinct bool

	// SegLen is the base segment granularity of SegMin/SegMax
	// (StatsSegLen when collected; 0 when absent).
	SegLen int
	// SegMin and SegMax hold per-base-segment extreme values. They
	// may be scratch-borrowed: callers that pass a Scratch to
	// CollectStats return them with ReleaseSeg.
	SegMin, SegMax []int64

	// OffsetSegLen is the probe segment length of OffsetHist
	// (StatsProbeSegLen when collected; 0 when absent).
	OffsetSegLen int
	// OffsetHist is the width histogram of each element's offset
	// from its probe segment's running minimum — a one-pass
	// approximation of the frame-of-reference offset distribution
	// that patch-width estimation consumes. The running minimum
	// (rather than the segment's first element) keeps a leading
	// outlier from shifting the whole histogram; it can only
	// understate the final min-referenced offsets, so estimates err
	// toward trialing the patched candidate.
	OffsetHist bitpack.WidthHistogram
}

// StatsSegLen is the base granularity of BlockStats.SegMin/SegMax.
// Frame-of-reference estimates are exact for any segment length that
// is a positive multiple of it.
const StatsSegLen = 128

// StatsProbeSegLen is the probe segment length of
// BlockStats.OffsetHist, matching the default FOR/PFOR segment
// length.
const StatsProbeSegLen = 1024

// DistinctCap bounds the distinct-count estimate; beyond it the count
// is reported as saturated (Distinct == DistinctCap+1).
const DistinctCap = 1 << 16

// distinctSketchLogBits sizes the linear-counting bitmap: 2^13 bits
// (128 words) keeps the per-block footprint at 1KiB while estimating
// counts well below DistinctCap with small relative error.
const distinctSketchLogBits = 13

const distinctSketchWords = (1 << distinctSketchLogBits) / 64

// CollectStats computes BlockStats over src in one pass. Temporaries
// (the distinct sketch) and the per-segment extreme arrays come from
// s when non-nil; the segment arrays escape in the result, so callers
// threading a scratch must return them with ReleaseSeg when done.
func CollectStats(src []int64, s *Scratch) BlockStats {
	var st BlockStats
	st.N = len(src)
	st.NonDecreasing, st.NonIncreasing = true, true
	st.HasMinMax, st.HasRuns, st.HasRunDeltas, st.HasDeltas = true, true, true, true
	st.HasValueHist, st.HasDistinct = true, true
	st.SegLen = StatsSegLen
	st.OffsetSegLen = StatsProbeSegLen
	if len(src) == 0 {
		return st
	}

	nseg := (len(src) + StatsSegLen - 1) / StatsSegLen
	st.SegMin = s.I64(nseg)
	st.SegMax = s.I64(nseg)
	sketch := s.U64(distinctSketchWords)
	for i := range sketch {
		sketch[i] = 0
	}

	first := src[0]
	st.First = first
	st.Min, st.Max = first, first
	st.Runs = 1
	st.DeltaMin, st.DeltaMax = first, first
	st.RunDeltaMin, st.RunDeltaMax = first, first

	prev := first
	prevRunHead := first
	runStart := 0
	var maxRunLen int64
	probeMin := first
	for i, v := range src {
		if seg := i / StatsSegLen; i%StatsSegLen == 0 {
			st.SegMin[seg] = v
			st.SegMax[seg] = v
		} else {
			if v < st.SegMin[seg] {
				st.SegMin[seg] = v
			}
			if v > st.SegMax[seg] {
				st.SegMax[seg] = v
			}
		}
		if i&(StatsProbeSegLen-1) == 0 {
			probeMin = v
		} else if v < probeMin {
			probeMin = v
		}
		st.OffsetHist.Observe(uint64(v - probeMin))
		st.ValueHist.Observe(bitpack.Zigzag(v))
		h := (uint64(v) * 0x9E3779B97F4A7C15) >> (64 - distinctSketchLogBits)
		sketch[h>>6] |= 1 << (h & 63)
		if i == 0 {
			continue
		}
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		if v < prev {
			st.NonDecreasing = false
		}
		if v > prev {
			st.NonIncreasing = false
		}
		d := v - prev
		st.DeltaHist.Observe(bitpack.Zigzag(d))
		if d < st.DeltaMin {
			st.DeltaMin = d
		}
		if d > st.DeltaMax {
			st.DeltaMax = d
		}
		if d < 0 {
			st.SumAbsDelta += uint64(-d)
		} else {
			st.SumAbsDelta += uint64(d)
		}
		if v != prev {
			st.Runs++
			if rl := int64(i - runStart); rl > maxRunLen {
				maxRunLen = rl
			}
			runStart = i
			rd := v - prevRunHead
			st.RunDeltaHist.Observe(bitpack.Zigzag(rd))
			if rd < st.RunDeltaMin {
				st.RunDeltaMin = rd
			}
			if rd > st.RunDeltaMax {
				st.RunDeltaMax = rd
			}
			prevRunHead = v
		}
		prev = v
	}
	if rl := int64(len(src) - runStart); rl > maxRunLen {
		maxRunLen = rl
	}
	st.MaxRunLen = maxRunLen

	ones := 0
	for _, w := range sketch {
		ones += bits.OnesCount64(w)
	}
	s.PutU64(sketch)
	const m = 1 << distinctSketchLogBits
	if ones >= m {
		st.Distinct = DistinctCap + 1
	} else {
		est := int(float64(m)*math.Log(float64(m)/float64(m-ones)) + 0.5)
		if est < 1 {
			est = 1
		}
		if est > DistinctCap {
			est = DistinctCap + 1
		}
		st.Distinct = est
	}
	return st
}

// ReleaseSeg returns the scratch-borrowed per-segment arrays to s and
// clears them. Safe on stats collected without a scratch.
func (st *BlockStats) ReleaseSeg(s *Scratch) {
	s.PutI64(st.SegMin)
	s.PutI64(st.SegMax)
	st.SegMin, st.SegMax = nil, nil
	st.SegLen = 0
}

// AvgRunLength returns N/Runs, the mean run length (0 for empty
// columns).
func (st *BlockStats) AvgRunLength() float64 {
	if st.Runs == 0 {
		return 0
	}
	return float64(st.N) / float64(st.Runs)
}

// DistinctSaturated reports whether the distinct estimate hit its
// cap.
func (st *BlockStats) DistinctSaturated() bool { return st.Distinct > DistinctCap }

// Monotone reports whether the column is non-decreasing or
// non-increasing.
func (st *BlockStats) Monotone() bool { return st.NonDecreasing || st.NonIncreasing }

// RangeWidth returns the bit width of (Max − Min), i.e. the offset
// width a whole-column frame of reference would need.
func (st *BlockStats) RangeWidth() uint {
	return bitpack.Width(uint64(st.Max - st.Min))
}

// NSShape returns the width and zigzag flag the NS scheme would
// choose for a column with these stats — exactly, from Min/Max alone:
// with negatives present NS zigzags, and the widest zigzagged value
// is attained at Min or Max; without negatives the widest raw value
// is Max.
func (st *BlockStats) NSShape() (w uint, zigzag bool) {
	if st.N == 0 {
		return 0, false
	}
	if st.Min < 0 {
		wmin := bitpack.Width(bitpack.Zigzag(st.Min))
		wmax := bitpack.Width(bitpack.Zigzag(st.Max))
		if wmin > wmax {
			return wmin, true
		}
		return wmax, true
	}
	return bitpack.Width(uint64(st.Max)), false
}

// SegFold folds the base per-segment extremes up to segment length
// segLen, returning the widest offset any segment would need under a
// minimum reference and the extreme references themselves. ok is
// false when base segment stats are absent or segLen is not a
// positive multiple of the base granularity.
func (st *BlockStats) SegFold(segLen int) (maxOffset uint64, refMin, refMax int64, ok bool) {
	if st.N == 0 {
		return 0, 0, 0, true
	}
	if st.SegLen <= 0 || st.SegMin == nil || segLen < st.SegLen || segLen%st.SegLen != 0 {
		return 0, 0, 0, false
	}
	group := segLen / st.SegLen
	nbase := len(st.SegMin)
	firstSeg := true
	for lo := 0; lo < nbase; lo += group {
		hi := lo + group
		if hi > nbase {
			hi = nbase
		}
		gmin, gmax := st.SegMin[lo], st.SegMax[lo]
		for i := lo + 1; i < hi; i++ {
			if st.SegMin[i] < gmin {
				gmin = st.SegMin[i]
			}
			if st.SegMax[i] > gmax {
				gmax = st.SegMax[i]
			}
		}
		if off := uint64(gmax - gmin); off > maxOffset {
			maxOffset = off
		}
		if firstSeg {
			refMin, refMax = gmin, gmin
			firstSeg = false
		} else {
			if gmin < refMin {
				refMin = gmin
			}
			if gmin > refMax {
				refMax = gmin
			}
		}
	}
	return maxOffset, refMin, refMax, true
}
