package query

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// Sum returns the exact sum of the column represented by f, computed
// without full materialization where the form's structure allows.
func Sum(f *core.Form) (int64, error) {
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"] * int64(f.N), nil

	case scheme.RLEName:
		lengths, err := core.DecompressChild(f, "lengths")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		return vec.DotProduct(lengths, values)

	case scheme.RPEName:
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		lengths := vec.Delta(positions)
		return vec.DotProduct(lengths, values)

	case scheme.FORName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		offsets, err := core.DecompressChild(f, "offsets")
		if err != nil {
			return 0, err
		}
		segLen := int(f.Params["seglen"])
		return sumStep(refs, segLen, f.N) + vec.Sum(offsets), nil

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		return sumStep(refs, int(f.Params["seglen"]), f.N), nil

	case scheme.PlusName:
		model, err := f.Child("model")
		if err != nil {
			return 0, err
		}
		residual, err := f.Child("residual")
		if err != nil {
			return 0, err
		}
		ms, err := Sum(model)
		if err != nil {
			return 0, err
		}
		rs, err := Sum(residual)
		if err != nil {
			return 0, err
		}
		return ms + rs, nil

	case scheme.PatchName:
		base, err := f.Child("base")
		if err != nil {
			return 0, err
		}
		// Sum of the base plus the per-exception corrections. The
		// corrections need the base's values at the patched
		// positions, which PointLookup provides without full
		// decompression.
		bs, err := Sum(base)
		if err != nil {
			return 0, err
		}
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		for i, p := range positions {
			bv, err := PointLookup(base, p)
			if err != nil {
				return 0, err
			}
			bs += values[i] - bv
		}
		return bs, nil

	case scheme.DeltaName:
		// Σ prefixsum(d) = Σ (n−i)·d[i]: one pass over the deltas.
		deltas, err := core.DecompressChild(f, "deltas")
		if err != nil {
			return 0, err
		}
		var acc int64
		n := int64(len(deltas))
		for i, d := range deltas {
			acc += (n - int64(i)) * d
		}
		return acc, nil

	case scheme.DictName:
		codes, err := core.DecompressChild(f, "codes")
		if err != nil {
			return 0, err
		}
		dict, err := core.DecompressChild(f, "dict")
		if err != nil {
			return 0, err
		}
		// Histogram the codes, then one multiply per distinct value.
		counts := make([]int64, len(dict))
		for _, c := range codes {
			if c < 0 || c >= int64(len(dict)) {
				return 0, fmt.Errorf("%w: dict code %d out of range", core.ErrCorruptForm, c)
			}
			counts[c]++
		}
		return vec.DotProduct(counts, dict)
	}

	// Fallback: materialize.
	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	return vec.Sum(col), nil
}

// sumStep sums a step function: Σ refs[s] · |segment s|.
func sumStep(refs []int64, segLen, n int) int64 {
	var acc int64
	for s := 0; s*segLen < n; s++ {
		size := segLen
		if (s+1)*segLen > n {
			size = n - s*segLen
		}
		acc += refs[s] * int64(size)
	}
	return acc
}

// PointLookup returns element row of the column represented by f,
// using random-access paths where the form allows (RPE's binary
// search, FOR's direct indexing, DICT's gather) and falling back to
// full decompression otherwise.
func PointLookup(f *core.Form, row int64) (int64, error) {
	if row < 0 || row >= int64(f.N) {
		return 0, fmt.Errorf("query: row %d out of range [0, %d)", row, f.N)
	}
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"], nil

	case scheme.IDName:
		return f.Leaf[row], nil

	case scheme.NSName:
		w := uint(f.Params["width"])
		u, err := bitpack.UnpackRange(f.Packed, int(row), 1, w)
		if err != nil {
			return 0, err
		}
		if f.Params["zigzag"] == 1 {
			return bitpack.Unzigzag(u[0]), nil
		}
		return int64(u[0]), nil

	case scheme.RLEName:
		// O(runs) instead of O(n): integrate the lengths, then binary
		// search — the lookup RPE gets for free, recovered for RLE by
		// performing Algorithm 1's first operation only (the paper's
		// partial-decompression reading).
		lengths, err := core.DecompressChild(f, "lengths")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		positions := vec.PrefixSumInclusive(lengths)
		run := vec.UpperBound(positions, row)
		if run >= len(values) {
			return 0, fmt.Errorf("%w: rle runs do not cover row %d", core.ErrCorruptForm, row)
		}
		return values[run], nil

	case scheme.RPEName:
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		run := vec.UpperBound(positions, row)
		if run >= len(values) {
			return 0, fmt.Errorf("%w: rpe positions do not cover row %d", core.ErrCorruptForm, row)
		}
		return values[run], nil

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		return refs[row/f.Params["seglen"]], nil

	case scheme.FORName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		off, err := childPoint(f, "offsets", row)
		if err != nil {
			return 0, err
		}
		return refs[row/f.Params["seglen"]] + off, nil

	case scheme.PlusName:
		a, err := f.Child("model")
		if err != nil {
			return 0, err
		}
		b, err := f.Child("residual")
		if err != nil {
			return 0, err
		}
		av, err := PointLookup(a, row)
		if err != nil {
			return 0, err
		}
		bv, err := PointLookup(b, row)
		if err != nil {
			return 0, err
		}
		return av + bv, nil

	case scheme.PatchName:
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return 0, err
		}
		idx := vec.LowerBound(positions, row)
		if idx < len(positions) && positions[idx] == row {
			values, err := core.DecompressChild(f, "values")
			if err != nil {
				return 0, err
			}
			return values[idx], nil
		}
		base, err := f.Child("base")
		if err != nil {
			return 0, err
		}
		return PointLookup(base, row)
	}

	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	return col[row], nil
}

// childPoint point-looks-up into a named child form.
func childPoint(f *core.Form, name string, row int64) (int64, error) {
	c, err := f.Child(name)
	if err != nil {
		return 0, err
	}
	return PointLookup(c, row)
}
