package query

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// PointLookup returns element row of the column represented by f,
// using random-access paths where the form allows (RPE's binary
// search, FOR's direct indexing, DICT's gather) and falling back to
// full decompression otherwise.
func PointLookup(f *core.Form, row int64) (int64, error) {
	if row < 0 || row >= int64(f.N) {
		return 0, fmt.Errorf("query: row %d out of range [0, %d)", row, f.N)
	}
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"], nil

	case scheme.IDName:
		return f.Leaf[row], nil

	case scheme.NSName:
		w := uint(f.Params["width"])
		u, err := bitpack.UnpackRange(f.Packed, int(row), 1, w)
		if err != nil {
			return 0, err
		}
		if f.Params["zigzag"] == 1 {
			return bitpack.Unzigzag(u[0]), nil
		}
		return int64(u[0]), nil

	case scheme.RLEName:
		// O(runs) instead of O(n): integrate the lengths, then binary
		// search — the lookup RPE gets for free, recovered for RLE by
		// performing Algorithm 1's first operation only (the paper's
		// partial-decompression reading).
		lengths, err := core.DecompressChild(f, "lengths")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		positions := vec.PrefixSumInclusive(lengths)
		run := vec.UpperBound(positions, row)
		if run >= len(values) {
			return 0, fmt.Errorf("%w: rle runs do not cover row %d", core.ErrCorruptForm, row)
		}
		return values[run], nil

	case scheme.RPEName:
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return 0, err
		}
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		run := vec.UpperBound(positions, row)
		if run >= len(values) {
			return 0, fmt.Errorf("%w: rpe positions do not cover row %d", core.ErrCorruptForm, row)
		}
		return values[run], nil

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		return refs[row/f.Params["seglen"]], nil

	case scheme.FORName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		off, err := childPoint(f, "offsets", row)
		if err != nil {
			return 0, err
		}
		return refs[row/f.Params["seglen"]] + off, nil

	case scheme.PlusName:
		a, err := f.Child("model")
		if err != nil {
			return 0, err
		}
		b, err := f.Child("residual")
		if err != nil {
			return 0, err
		}
		av, err := PointLookup(a, row)
		if err != nil {
			return 0, err
		}
		bv, err := PointLookup(b, row)
		if err != nil {
			return 0, err
		}
		return av + bv, nil

	case scheme.PatchName:
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return 0, err
		}
		idx := vec.LowerBound(positions, row)
		if idx < len(positions) && positions[idx] == row {
			values, err := core.DecompressChild(f, "values")
			if err != nil {
				return 0, err
			}
			return values[idx], nil
		}
		base, err := f.Child("base")
		if err != nil {
			return 0, err
		}
		return PointLookup(base, row)
	}

	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	return col[row], nil
}

// childPoint point-looks-up into a named child form.
func childPoint(f *core.Form, name string, row int64) (int64, error) {
	c, err := f.Child(name)
	if err != nil {
		return 0, err
	}
	return PointLookup(c, row)
}
