package query

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
)

// Interval is a closed interval certain to contain an exact query
// result.
type Interval struct {
	Lower, Upper int64
}

// Estimate returns the interval midpoint.
func (iv Interval) Estimate() int64 {
	return iv.Lower + (iv.Upper-iv.Lower)/2
}

// Width returns Upper − Lower, the residual uncertainty.
func (iv Interval) Width() int64 { return iv.Upper - iv.Lower }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lower && v <= iv.Upper }

// ApproxSum bounds the column sum using only the model part of a
// form — the paper's "approximate … query processing" over the
// "rough correspondence of the column data to a simple model". For a
// FOR form the model sum (Σ refs·|segment|) is exact and each
// element's offset lies in [0, 2^w−1], so the sum is bracketed
// without touching the offsets payload at all.
func ApproxSum(f *core.Form) (Interval, error) {
	switch f.Scheme {
	case scheme.ConstName:
		s := f.Params["value"] * int64(f.N)
		return Interval{s, s}, nil

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return Interval{}, err
		}
		s := sumStep(refs, int(f.Params["seglen"]), f.N)
		return Interval{s, s}, nil

	case scheme.FORName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return Interval{}, err
		}
		base := sumStep(refs, int(f.Params["seglen"]), f.N)
		offsets, err := f.Child("offsets")
		if err != nil {
			return Interval{}, err
		}
		slack, err := residualSlack(offsets)
		if err != nil {
			return Interval{}, err
		}
		return Interval{base, base + slack}, nil

	case scheme.PlusName:
		model, err := f.Child("model")
		if err != nil {
			return Interval{}, err
		}
		residual, err := f.Child("residual")
		if err != nil {
			return Interval{}, err
		}
		mi, err := ApproxSum(model)
		if err != nil {
			return Interval{}, err
		}
		slack, err := residualSlack(residual)
		if err != nil {
			return Interval{}, err
		}
		return Interval{mi.Lower, mi.Upper + slack}, nil
	}

	// No model structure: the exact sum is its own interval.
	s, err := Sum(f)
	if err != nil {
		return Interval{}, err
	}
	return Interval{s, s}, nil
}

// residualSlack bounds the total contribution of a non-negative
// residual form from its width parameters alone.
func residualSlack(f *core.Form) (int64, error) {
	switch f.Scheme {
	case scheme.NSName:
		if f.Params["zigzag"] == 1 {
			// Not guaranteed non-negative: fall back to exact.
			s, err := Sum(f)
			if err != nil {
				return 0, err
			}
			return s, nil
		}
		return int64(f.N) * int64(bitpack.Mask(uint(f.Params["width"]))), nil

	case scheme.VNSName:
		if f.Params["zigzag"] == 1 {
			s, err := Sum(f)
			if err != nil {
				return 0, err
			}
			return s, nil
		}
		widths, err := core.DecompressChild(f, "widths")
		if err != nil {
			return 0, err
		}
		block := int(f.Params["block"])
		var slack int64
		for b, w := range widths {
			lo := b * block
			hi := lo + block
			if hi > f.N {
				hi = f.N
			}
			slack += int64(hi-lo) * int64(bitpack.Mask(uint(w)))
		}
		return slack, nil
	}
	// Unknown residual: exact sum (slack is then exact too).
	s, err := Sum(f)
	if err != nil {
		return 0, err
	}
	return s, nil
}

// GradualSummer implements the paper's "gradual-refinement query
// processing" for FOR forms: it starts from the model-only interval
// of ApproxSum and tightens it segment by segment, decoding each
// segment's offsets exactly once. After all segments are refined the
// interval collapses to the exact sum.
type GradualSummer struct {
	pruner  *forPruner
	refined int
	// exact accumulates the exact sums of refined segments.
	exact int64
	// remainingSlack is the summed slack of unrefined segments.
	remainingSlack int64
	// modelSum is the exact Σ refs·|segment|.
	modelSum int64
}

// NewGradualSummer prepares gradual summation over a FOR form.
func NewGradualSummer(f *core.Form) (*GradualSummer, error) {
	if f.Scheme != scheme.FORName {
		return nil, fmt.Errorf("query: NewGradualSummer on scheme %q (want %q)", f.Scheme, scheme.FORName)
	}
	// The pruner outlives this call, so it gets no scratch arena: its
	// slices are plainly allocated and simply dropped when the summer
	// is garbage collected.
	p, err := newFORPruner(f, nil)
	if err != nil {
		return nil, err
	}
	g := &GradualSummer{pruner: p}
	for s := 0; s*p.segLen < p.n; s++ {
		segLo := s * p.segLen
		segHi := segLo + p.segLen
		if segHi > p.n {
			segHi = p.n
		}
		g.modelSum += p.refs[s] * int64(segHi-segLo)
		g.remainingSlack += int64(segHi-segLo) * p.bounds[s]
	}
	return g, nil
}

// Segments returns the total number of segments.
func (g *GradualSummer) Segments() int { return len(g.pruner.refs) }

// Refined returns how many segments have been refined so far.
func (g *GradualSummer) Refined() int { return g.refined }

// Done reports whether the interval is exact.
func (g *GradualSummer) Done() bool { return g.refined >= g.Segments() }

// Bounds returns the current certain interval for the sum.
func (g *GradualSummer) Bounds() Interval {
	base := g.modelSum + g.exact
	return Interval{base, base + g.remainingSlack}
}

// Refine decodes up to k more segments exactly and tightens the
// interval; it returns the number of segments actually refined.
func (g *GradualSummer) Refine(k int) (int, error) {
	p := g.pruner
	done := 0
	for ; done < k && g.refined < g.Segments(); g.refined++ {
		s := g.refined
		segLo := s * p.segLen
		segHi := segLo + p.segLen
		if segHi > p.n {
			segHi = p.n
		}
		offs, err := p.segmentOffsets(s)
		if err != nil {
			return done, err
		}
		var segExact int64
		for _, o := range offs {
			segExact += o
		}
		g.exact += segExact
		g.remainingSlack -= int64(segHi-segLo) * p.bounds[s]
		done++
	}
	return done, nil
}
