package query

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// Min returns the exact minimum of the column represented by f,
// exploiting form structure: FOR's minimum is the minimum of its refs
// (offsets are non-negative by construction), DICT's is its first
// dictionary entry, RLE/RPE scan run values only.
func Min(f *core.Form) (int64, error) {
	if f.N == 0 {
		return 0, fmt.Errorf("query: Min of empty column")
	}
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"], nil

	case scheme.RLEName, scheme.RPEName:
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		m, _, err := vec.MinMax(values)
		return m, err

	case scheme.DictName:
		dict, err := core.DecompressChild(f, "dict")
		if err != nil {
			return 0, err
		}
		if len(dict) == 0 {
			return 0, fmt.Errorf("%w: dict form with empty dictionary", core.ErrCorruptForm)
		}
		// The dictionary is sorted but may contain entries unused by
		// the codes; dictionaries built by Dict.Compress use all
		// entries, so the first is the minimum.
		return dict[0], nil

	case scheme.FORName:
		// Offsets are ≥ 0 against per-segment minima, so the column
		// minimum is the refs minimum — when the offsets child is an
		// unsigned NS/VNS payload. Foreign offsets fall through.
		offsets, err := f.Child("offsets")
		if err != nil {
			return 0, err
		}
		if isUnsignedPacked(offsets) {
			refs, err := core.DecompressChild(f, "refs")
			if err != nil {
				return 0, err
			}
			m, _, err := vec.MinMax(refs)
			return m, err
		}

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		m, _, err := vec.MinMax(refs)
		return m, err
	}
	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	m, _, err := vec.MinMax(col)
	return m, err
}

// Max returns the exact maximum of the column represented by f, with
// the same structural shortcuts as Min where they are exact and a
// decompression fallback otherwise.
func Max(f *core.Form) (int64, error) {
	if f.N == 0 {
		return 0, fmt.Errorf("query: Max of empty column")
	}
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"], nil

	case scheme.RLEName, scheme.RPEName:
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		_, m, err := vec.MinMax(values)
		return m, err

	case scheme.DictName:
		dict, err := core.DecompressChild(f, "dict")
		if err != nil {
			return 0, err
		}
		if len(dict) == 0 {
			return 0, fmt.Errorf("%w: dict form with empty dictionary", core.ErrCorruptForm)
		}
		return dict[len(dict)-1], nil

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, err
		}
		_, m, err := vec.MinMax(refs)
		return m, err
	}
	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	_, m, err := vec.MinMax(col)
	return m, err
}

// MinMax returns the exact minimum and maximum of the column in one
// call. Schemes whose Min and Max shortcuts read the same
// constituent (run values, the dictionary, the materialized column)
// decode it once here instead of twice; the remaining schemes have
// asymmetric shortcuts and delegate to Min and Max. It exists for
// callers that adopt pre-existing forms into the blocked-column API
// and need per-block [min, max] stats.
func MinMax(f *core.Form) (int64, int64, error) {
	if f.N == 0 {
		return 0, 0, fmt.Errorf("query: MinMax of empty column")
	}
	switch f.Scheme {
	case scheme.ConstName:
		v := f.Params["value"]
		return v, v, nil

	case scheme.RLEName, scheme.RPEName:
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, 0, err
		}
		return vec.MinMax(values)

	case scheme.DictName:
		dict, err := core.DecompressChild(f, "dict")
		if err != nil {
			return 0, 0, err
		}
		if len(dict) == 0 {
			return 0, 0, fmt.Errorf("%w: dict form with empty dictionary", core.ErrCorruptForm)
		}
		return dict[0], dict[len(dict)-1], nil

	case scheme.StepName:
		refs, err := core.DecompressChild(f, "refs")
		if err != nil {
			return 0, 0, err
		}
		return vec.MinMax(refs)

	case scheme.FORName, scheme.PlusName, scheme.PatchName:
		// Min and Max take different structural routes here (e.g.
		// FOR's minimum reads refs only; its maximum decompresses).
		lo, err := Min(f)
		if err != nil {
			return 0, 0, err
		}
		hi, err := Max(f)
		if err != nil {
			return 0, 0, err
		}
		return lo, hi, nil
	}

	// Fallback: one materialization, both extremes.
	col, err := core.Decompress(f)
	if err != nil {
		return 0, 0, err
	}
	return vec.MinMax(col)
}

// MaxBound returns an upper bound on the column maximum without
// decompressing element payloads, using the model + residual-width
// structure (the same machinery as ApproxSum). The bound is certain
// but not necessarily tight.
func MaxBound(f *core.Form) (int64, error) {
	if f.N == 0 {
		return 0, fmt.Errorf("query: MaxBound of empty column")
	}
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"], nil
	case scheme.FORName:
		offsets, err := f.Child("offsets")
		if err != nil {
			return 0, err
		}
		if isUnsignedPacked(offsets) {
			refs, err := core.DecompressChild(f, "refs")
			if err != nil {
				return 0, err
			}
			_, m, err := vec.MinMax(refs)
			if err != nil {
				return 0, err
			}
			return m + perElementBound(offsets), nil
		}
	}
	return Max(f)
}

// isUnsignedPacked reports whether a form is an NS or VNS payload
// without zigzag (values known non-negative).
func isUnsignedPacked(f *core.Form) bool {
	return (f.Scheme == scheme.NSName || f.Scheme == scheme.VNSName) && f.Params["zigzag"] == 0
}

// perElementBound returns the largest value representable by an
// unsigned packed form's widths.
func perElementBound(f *core.Form) int64 {
	switch f.Scheme {
	case scheme.NSName:
		return int64(bitpack.Mask(uint(f.Params["width"])))
	case scheme.VNSName:
		widths, err := core.DecompressChild(f, "widths")
		if err != nil {
			return 0
		}
		var m int64
		for _, w := range widths {
			if b := int64(bitpack.Mask(uint(w))); b > m {
				m = b
			}
		}
		return m
	}
	return 0
}

// DistinctCount returns the number of distinct values, shortcut for
// the forms that carry it structurally: DICT's dictionary length and
// CONST's single value are exact without touching the data; RLE/RPE
// bound work by the run count.
func DistinctCount(f *core.Form) (int64, error) {
	switch f.Scheme {
	case scheme.ConstName:
		if f.N == 0 {
			return 0, nil
		}
		return 1, nil

	case scheme.DictName:
		dict, err := f.Child("dict")
		if err != nil {
			return 0, err
		}
		return int64(dict.N), nil

	case scheme.RLEName, scheme.RPEName:
		values, err := core.DecompressChild(f, "values")
		if err != nil {
			return 0, err
		}
		return countDistinct(values), nil
	}
	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	return countDistinct(col), nil
}

func countDistinct(col []int64) int64 {
	seen := make(map[int64]struct{}, 256)
	for _, v := range col {
		seen[v] = struct{}{}
	}
	return int64(len(seen))
}
