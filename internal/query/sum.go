package query

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// This file holds the aggregation half of the fused scan layer: Sum
// (the exact column sum, structure-exploiting and scratch-threaded)
// and SumRange (predicate + sum fused into one pass, so Count/Sum
// over a filtered block never materializes a selection it would
// immediately consume). Sums wrap mod 2^64 in two's complement, the
// same arithmetic plain int64 addition performs.
//
// Both entry points reject the same corrupt run boundaries the
// decode path rejects (checkRunBounds), so a form that cannot decode
// cannot silently aggregate either.

// SumRangeIsStructural reports whether SumRange on f runs on the
// compressed structure — run walks, segment pruning, fused
// packed-word kernels — rather than materializing the column first.
// Callers holding an already-decoded (or about-to-be-decoded)
// alternative use it to pick the cheaper route: on a structural form
// SumRange beats decode-then-fold, on anything else it IS
// decode-then-fold plus dispatch.
func SumRangeIsStructural(f *core.Form) bool {
	switch f.Scheme {
	case scheme.ConstName, scheme.RLEName, scheme.RPEName,
		scheme.FORName, scheme.StepName, scheme.LinearName:
		return true
	case scheme.NSName:
		if _, ok := fusedNSWidth(f); ok {
			return true
		}
		_, ok := fusedNSZZWidth(f)
		return ok
	case scheme.VNSName:
		zz := f.Params["zigzag"]
		return zz == 0 || zz == 1
	}
	return false
}

// Sum returns the exact sum of the column represented by f, computed
// without full materialization where the form's structure allows.
func Sum(f *core.Form) (int64, error) {
	s := core.GetScratch()
	defer s.Release()
	return SumScratch(f, s)
}

// SumScratch is Sum with caller-provided decode scratch: the
// steady-state zero-allocation entry point for block workers.
func SumScratch(f *core.Form, s *core.Scratch) (int64, error) {
	switch f.Scheme {
	case scheme.ConstName:
		return f.Params["value"] * int64(f.N), nil

	case scheme.RLEName, scheme.RPEName:
		bounds, values, err := runBoundariesScratch(f, s)
		if err != nil {
			return 0, err
		}
		var acc int64
		var start int64
		for i, end := range bounds {
			acc += (end - start) * values[i]
			start = end
		}
		s.PutI64(bounds)
		s.PutI64(values)
		return acc, nil

	case scheme.FORName:
		refs, err := core.ChildScratch(f, "refs", s)
		if err != nil {
			return 0, err
		}
		acc := sumStep(refs, int(f.Params["seglen"]), f.N)
		s.PutI64(refs)
		offsets, err := f.Child("offsets")
		if err != nil {
			return 0, err
		}
		os, err := SumScratch(offsets, s)
		if err != nil {
			return 0, err
		}
		return acc + os, nil

	case scheme.StepName:
		refs, err := core.ChildScratch(f, "refs", s)
		if err != nil {
			return 0, err
		}
		acc := sumStep(refs, int(f.Params["seglen"]), f.N)
		s.PutI64(refs)
		return acc, nil

	case scheme.NSName:
		w := f.Params["width"]
		if w >= 0 && w <= 64 {
			if f.Params["zigzag"] == 1 {
				return bitpack.SumZZ(f.Packed, 0, f.N, uint(w))
			}
			// The wrapping uint64 kernel sum is bit-identical to the
			// wrapping int64 sum of the reinterpreted values, at any
			// width.
			u, err := bitpack.SumU(f.Packed, 0, f.N, uint(w))
			return int64(u), err
		}

	case scheme.VNSName:
		var total int64
		zz := f.Params["zigzag"] == 1
		done, err := vnsWalk(f, s, 64, func(words []uint64, w uint, pos, count int) error {
			if zz {
				n, err := bitpack.SumZZ(words, 0, count, w)
				total += n
				return err
			}
			u, err := bitpack.SumU(words, 0, count, w)
			total += int64(u)
			return err
		})
		if done || err != nil {
			return total, err
		}

	case scheme.PlusName:
		model, err := f.Child("model")
		if err != nil {
			return 0, err
		}
		residual, err := f.Child("residual")
		if err != nil {
			return 0, err
		}
		ms, err := SumScratch(model, s)
		if err != nil {
			return 0, err
		}
		rs, err := SumScratch(residual, s)
		if err != nil {
			return 0, err
		}
		return ms + rs, nil

	case scheme.PatchName:
		base, err := f.Child("base")
		if err != nil {
			return 0, err
		}
		// Sum of the base plus the per-exception corrections. The
		// corrections need the base's values at the patched
		// positions, which PointLookup provides without full
		// decompression.
		bs, err := SumScratch(base, s)
		if err != nil {
			return 0, err
		}
		positions, err := core.ChildScratch(f, "positions", s)
		if err != nil {
			return 0, err
		}
		defer s.PutI64(positions)
		values, err := core.ChildScratch(f, "values", s)
		if err != nil {
			return 0, err
		}
		defer s.PutI64(values)
		for i, p := range positions {
			bv, err := PointLookup(base, p)
			if err != nil {
				return 0, err
			}
			bs += values[i] - bv
		}
		return bs, nil

	case scheme.DeltaName:
		// Σ prefixsum(d) = Σ (n−i)·d[i]: one pass over the deltas.
		deltas, err := core.ChildScratch(f, "deltas", s)
		if err != nil {
			return 0, err
		}
		defer s.PutI64(deltas)
		var acc int64
		n := int64(len(deltas))
		for i, d := range deltas {
			acc += (n - int64(i)) * d
		}
		return acc, nil

	case scheme.DictName:
		dict, codes, err := dictPartsScratch(f, s)
		if err != nil {
			return 0, err
		}
		defer s.PutI64(dict)
		defer s.PutI64(codes)
		var acc int64
		n := int64(len(dict))
		for _, c := range codes {
			if c < 0 || c >= n {
				return 0, fmt.Errorf("%w: dict code %d out of range", core.ErrCorruptForm, c)
			}
			acc += dict[c]
		}
		return acc, nil

	case scheme.LinearName:
		sum, _, done, err := linearFold(f, s, minInt64, maxInt64)
		if done || err != nil {
			return sum, err
		}
	}

	// Fallback: materialize into scratch.
	col := s.I64(f.N)
	defer s.PutI64(col)
	if err := core.DecompressInto(f, col, s); err != nil {
		return 0, err
	}
	return vec.Sum(col), nil
}

// SumRange returns the sum and count of the values of f inside
// [lo, hi] — the fused filter+aggregate: packed payloads go through
// the sumInRange kernels, runs contribute length·value per run, FOR
// and step models prune whole segments, and nothing is materialized
// on the structural paths.
func SumRange(f *core.Form, lo, hi int64) (sum, count int64, err error) {
	s := core.GetScratch()
	defer s.Release()
	return SumRangeScratch(f, lo, hi, s)
}

// SumRangeScratch is SumRange with caller-provided decode scratch.
func SumRangeScratch(f *core.Form, lo, hi int64, s *core.Scratch) (sum, count int64, err error) {
	if lo > hi || f.N == 0 {
		return 0, 0, nil
	}
	switch f.Scheme {
	case scheme.ConstName:
		v := f.Params["value"]
		if v < lo || v > hi {
			return 0, 0, nil
		}
		return v * int64(f.N), int64(f.N), nil

	case scheme.RLEName, scheme.RPEName:
		bounds, values, err := runBoundariesScratch(f, s)
		if err != nil {
			return 0, 0, err
		}
		var start int64
		for i, end := range bounds {
			if v := values[i]; v >= lo && v <= hi {
				sum += (end - start) * v
				count += end - start
			}
			start = end
		}
		s.PutI64(bounds)
		s.PutI64(values)
		return sum, count, nil

	case scheme.NSName:
		if w, ok := fusedNSWidth(f); ok {
			ulo, uhi, any := unsignedBounds(lo, hi)
			if !any {
				return 0, 0, nil
			}
			us, n, err := bitpack.SumRangeU(f.Packed, 0, f.N, w, ulo, uhi)
			return int64(us), n, err
		}
		if w, ok := fusedNSZZWidth(f); ok {
			return bitpack.SumRangeZZ(f.Packed, 0, f.N, w, lo, hi)
		}

	case scheme.VNSName:
		if sum, count, done, err := sumRangeVNS(f, lo, hi, s); done || err != nil {
			return sum, count, err
		}

	case scheme.FORName:
		return sumRangeFOR(f, lo, hi, s)

	case scheme.StepName:
		refs, err := core.ChildScratch(f, "refs", s)
		if err != nil {
			return 0, 0, err
		}
		defer s.PutI64(refs)
		segLen := int(f.Params["seglen"])
		if segLen < 1 {
			break // corrupt: materialize fallback surfaces the error
		}
		for seg := 0; seg*segLen < f.N; seg++ {
			if seg >= len(refs) {
				break
			}
			if v := refs[seg]; v >= lo && v <= hi {
				size := int64(segLen)
				if (seg+1)*segLen > f.N {
					size = int64(f.N - seg*segLen)
				}
				sum += v * size
				count += size
			}
		}
		return sum, count, nil

	case scheme.DictName:
		dict, codes, err := dictPartsScratch(f, s)
		if err != nil {
			return 0, 0, err
		}
		defer s.PutI64(dict)
		defer s.PutI64(codes)
		cLo := int64(vec.LowerBound(dict, lo))
		cHi := int64(vec.UpperBound(dict, hi)) - 1
		n := int64(len(dict))
		for _, c := range codes {
			if c < 0 || c >= n {
				return 0, 0, fmt.Errorf("%w: dict code %d out of range", core.ErrCorruptForm, c)
			}
			if c >= cLo && c <= cHi {
				sum += dict[c]
				count++
			}
		}
		return sum, count, nil

	case scheme.PlusName:
		if sum, count, done, err := sumRangePlus(f, lo, hi, s); done || err != nil {
			return sum, count, err
		}

	case scheme.LinearName:
		if sum, count, done, err := linearFold(f, s, lo, hi); done || err != nil {
			return sum, count, err
		}
	}

	// Fallback: materialize into scratch and fold in one pass.
	col := s.I64(f.N)
	defer s.PutI64(col)
	if err := core.DecompressInto(f, col, s); err != nil {
		return 0, 0, err
	}
	for _, v := range col {
		if v >= lo && v <= hi {
			sum += v
			count++
		}
	}
	return sum, count, nil
}

// sumStep sums a step function: Σ refs[s] · |segment s|.
func sumStep(refs []int64, segLen, n int) int64 {
	var acc int64
	for s := 0; s*segLen < n; s++ {
		size := segLen
		if (s+1)*segLen > n {
			size = n - s*segLen
		}
		acc += refs[s] * int64(size)
	}
	return acc
}

// dictPartsScratch borrows a dict form's dictionary and decoded codes
// from s; the caller returns both with PutI64.
func dictPartsScratch(f *core.Form, s *core.Scratch) (dict, codes []int64, err error) {
	dict, err = core.ChildScratch(f, "dict", s)
	if err != nil {
		return nil, nil, err
	}
	codes, err = core.ChildScratch(f, "codes", s)
	if err != nil {
		s.PutI64(dict)
		return nil, nil, err
	}
	return dict, codes, nil
}

// sumRangeVNS folds the fused filter+sum kernels over a VNS form's
// mini-blocks.
func sumRangeVNS(f *core.Form, lo, hi int64, s *core.Scratch) (sum, count int64, done bool, err error) {
	if zz := f.Params["zigzag"]; zz == 1 {
		done, err = vnsWalk(f, s, 64, func(words []uint64, w uint, pos, n int) error {
			bs, bn, err := bitpack.SumRangeZZ(words, 0, n, w, lo, hi)
			sum += bs
			count += bn
			return err
		})
		return sum, count, done, err
	} else if zz != 0 {
		return 0, 0, false, nil
	}
	ulo, uhi, any := unsignedBounds(lo, hi)
	if !any {
		done, err = vnsWalk(f, s, 63, func([]uint64, uint, int, int) error { return nil })
		return 0, 0, done, err
	}
	done, err = vnsWalk(f, s, 63, func(words []uint64, w uint, pos, n int) error {
		bs, bn, err := bitpack.SumRangeU(words, 0, n, w, ulo, uhi)
		sum += int64(bs)
		count += bn
		return err
	})
	return sum, count, done, err
}

// sumRangeFOR walks FOR segments with the pruner trichotomy: outside
// segments contribute nothing, inside segments their reference times
// size plus the offsets' plain sum, straddling segments the fused
// filter+sum over the packed offsets.
func sumRangeFOR(f *core.Form, lo, hi int64, s *core.Scratch) (sum, count int64, err error) {
	p, err := newFORPruner(f, s)
	if err != nil {
		return 0, 0, err
	}
	defer p.release(s)
	for seg := 0; seg*p.segLen < p.n; seg++ {
		switch p.classify(seg, lo, hi) {
		case segOutside:
		case segInside:
			segLo, segHi := p.segRange(seg)
			size := int64(segHi - segLo)
			os, err := p.sumSegmentOffsets(seg)
			if err != nil {
				return 0, 0, err
			}
			sum += p.refs[seg]*size + os
			count += size
		case segStraddle:
			ss, sc, err := p.sumRangeSegment(seg, lo, hi)
			if err != nil {
				return 0, 0, err
			}
			sum += ss
			count += sc
		}
	}
	return sum, count, nil
}

// sumSegmentOffsets sums the offsets of segment seg without
// materializing them when the payload is fused-scannable.
func (p *forPruner) sumSegmentOffsets(seg int) (int64, error) {
	segLo, segHi := p.segRange(seg)
	if p.decoded != nil {
		var acc int64
		for _, o := range p.decoded[segLo:segHi] {
			acc += o
		}
		return acc, nil
	}
	if p.nsFused {
		u, err := bitpack.SumU(p.offsets.Packed, segLo, segHi-segLo, p.nsWidth)
		return int64(u), err
	}
	var total int64
	err := p.vnsSegment(segLo, segHi, func(words []uint64, w uint, blockLo, relStart, relCount int) error {
		u, err := bitpack.SumU(words, relStart, relCount, w)
		total += int64(u)
		return err
	})
	return total, err
}

// sumRangeSegment sums and counts the matching rows of straddling
// segment seg via the fused filter+sum kernels on the packed offsets.
func (p *forPruner) sumRangeSegment(seg int, lo, hi int64) (sum, count int64, err error) {
	segLo, segHi := p.segRange(seg)
	ref := p.refs[seg]
	if p.decoded != nil {
		for _, o := range p.decoded[segLo:segHi] {
			v := ref + o
			if v >= lo && v <= hi {
				sum += v
				count++
			}
		}
		return sum, count, nil
	}
	ulo, uhi, any := offsetBounds(ref, lo, hi)
	if !any {
		return 0, 0, nil
	}
	if p.nsFused {
		us, n, err := bitpack.SumRangeU(p.offsets.Packed, segLo, segHi-segLo, p.nsWidth, ulo, uhi)
		if err != nil {
			return 0, 0, err
		}
		return int64(us) + ref*n, n, nil
	}
	err = p.vnsSegment(segLo, segHi, func(words []uint64, w uint, blockLo, relStart, relCount int) error {
		us, n, err := bitpack.SumRangeU(words, relStart, relCount, w, ulo, uhi)
		sum += int64(us) + ref*n
		count += n
		return err
	})
	return sum, count, err
}

// sumRangePlus is the fused predict+residual+aggregate path for PLUS
// forms, mirroring selectRangeSelPlus: v = m + r, so the residual is
// filtered against the translated window and each match contributes
// its model value back into the sum.
func sumRangePlus(f *core.Form, lo, hi int64, s *core.Scratch) (sum, count int64, done bool, err error) {
	model, residual, ok, err := plusModelParts(f)
	if !ok || err != nil {
		return 0, 0, false, err
	}
	switch model.Scheme {
	case scheme.ConstName:
		m := model.Params["value"]
		tLo, tHi, any := translateRange(lo, hi, m)
		if !any {
			return 0, 0, true, nil
		}
		rs, n, err := SumRangeScratch(residual, tLo, tHi, s)
		return rs + m*n, n, true, err
	case scheme.StepName:
		done, err = plusStepSegments(model, residual, s, func(segLo, segCount int, tLo, tHi int64, w uint, zz bool, ref int64) error {
			if zz {
				rs, n, err := bitpack.SumRangeZZ(residual.Packed, segLo, segCount, w, tLo, tHi)
				sum += rs + ref*n
				count += n
				return err
			}
			ulo, uhi, any := unsignedBounds(tLo, tHi)
			if !any {
				return nil
			}
			us, n, err := bitpack.SumRangeU(residual.Packed, segLo, segCount, w, ulo, uhi)
			sum += int64(us) + ref*n
			count += n
			return err
		}, lo, hi)
		return sum, count, done, err
	}
	return 0, 0, false, nil
}

// linearFold folds a LINEAR form without materializing it: each row's
// prediction is evaluated and tested against [lo, hi] in place.
// done=false reports a shape the closed walk cannot take.
func linearFold(f *core.Form, s *core.Scratch, lo, hi int64) (sum, count int64, done bool, err error) {
	segLen := int(f.Params["seglen"])
	if segLen < 1 {
		return 0, 0, false, nil
	}
	bases, err := core.ChildScratch(f, "bases", s)
	if err != nil {
		return 0, 0, false, err
	}
	defer s.PutI64(bases)
	slopes, err := core.ChildScratch(f, "slopes", s)
	if err != nil {
		return 0, 0, false, err
	}
	defer s.PutI64(slopes)
	nseg := (f.N + segLen - 1) / segLen
	if len(bases) < nseg || len(slopes) < nseg {
		return 0, 0, false, nil // corrupt: materialize fallback surfaces the error
	}
	frac := uint(f.Params["frac"])
	for seg := 0; seg < nseg; seg++ {
		rowLo := seg * segLen
		rowHi := rowLo + segLen
		if rowHi > f.N {
			rowHi = f.N
		}
		base, slope := bases[seg], slopes[seg]
		for j := 0; j < rowHi-rowLo; j++ {
			v := scheme.LinearPredict(base, slope, j, frac)
			if v >= lo && v <= hi {
				sum += v
				count++
			}
		}
	}
	return sum, count, true, nil
}
