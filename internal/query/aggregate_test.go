package query

import (
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

func TestMinMaxMatchPlainScan(t *testing.T) {
	src := workload(11, 3000)
	wantMin, wantMax, err := vec.MinMax(src)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range compressors() {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		gotMin, err := Min(f)
		if err != nil {
			t.Fatalf("%s: min: %v", name, err)
		}
		if gotMin != wantMin {
			t.Errorf("%s: Min = %d, want %d", name, gotMin, wantMin)
		}
		gotMax, err := Max(f)
		if err != nil {
			t.Fatalf("%s: max: %v", name, err)
		}
		if gotMax != wantMax {
			t.Errorf("%s: Max = %d, want %d", name, gotMax, wantMax)
		}
		// The one-call form agrees with the pair on every scheme.
		lo, hi, err := MinMax(f)
		if err != nil {
			t.Fatalf("%s: minmax: %v", name, err)
		}
		if lo != wantMin || hi != wantMax {
			t.Errorf("%s: MinMax = [%d, %d], want [%d, %d]", name, lo, hi, wantMin, wantMax)
		}
	}
}

func TestMinFORUsesRefsOnly(t *testing.T) {
	// The FOR shortcut must agree with a scan even though it touches
	// only refs.
	src := workload(12, 4096)
	f, err := scheme.FORComposite(256).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	wantMin, _, err := vec.MinMax(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Min(f)
	if err != nil || got != wantMin {
		t.Fatalf("Min = %d, want %d (%v)", got, wantMin, err)
	}
}

func TestMaxBoundContainsMax(t *testing.T) {
	src := workload(13, 4096)
	f, err := scheme.FORComposite(256).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, wantMax, err := vec.MinMax(src)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := MaxBound(f)
	if err != nil {
		t.Fatal(err)
	}
	if bound < wantMax {
		t.Fatalf("MaxBound %d below true max %d", bound, wantMax)
	}
	// For an exact-max scheme the bound collapses.
	cf, err := scheme.Const{}.Compress([]int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	bound, err = MaxBound(cf)
	if err != nil || bound != 5 {
		t.Fatalf("const MaxBound = %d, %v", bound, err)
	}
}

func TestMinMaxEmptyRejected(t *testing.T) {
	f, err := scheme.NS{}.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Min(f); err == nil {
		t.Fatal("Min of empty accepted")
	}
	if _, err := Max(f); err == nil {
		t.Fatal("Max of empty accepted")
	}
	if _, err := MaxBound(f); err == nil {
		t.Fatal("MaxBound of empty accepted")
	}
	if _, _, err := MinMax(f); err == nil {
		t.Fatal("MinMax of empty accepted")
	}
}

func TestDistinctCount(t *testing.T) {
	src := []int64{5, 5, 9, 9, 9, 5, 13}
	want := int64(3)
	for name, s := range map[string]core.Scheme{
		"dict": scheme.DictComposite(),
		"rle":  scheme.RLEComposite(),
		"rpe":  scheme.RPEComposite(),
		"ns":   scheme.NS{},
	} {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := DistinctCount(f)
		if err != nil || got != want {
			t.Errorf("%s: DistinctCount = %d, want %d (%v)", name, got, want, err)
		}
	}
	cf, err := scheme.Const{}.Compress([]int64{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DistinctCount(cf); err != nil || got != 1 {
		t.Fatalf("const distinct = %d, %v", got, err)
	}
	ce, err := scheme.Const{}.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DistinctCount(ce); err != nil || got != 0 {
		t.Fatalf("empty const distinct = %d, %v", got, err)
	}
}

func TestDistinctCountDictIsStructural(t *testing.T) {
	// For DICT the count must come from the dictionary length — no
	// code scan. Verify against plain count.
	src := workload(14, 2000)
	f, err := scheme.DictComposite().Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	want := countDistinct(src)
	got, err := DistinctCount(f)
	if err != nil || got != want {
		t.Fatalf("dict distinct = %d, want %d (%v)", got, want, err)
	}
}
