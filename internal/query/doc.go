// Package query evaluates analytic operations directly on compressed
// forms.
//
// It operationalizes the paper's Lessons 1: "there is no clear
// distinction between decompression and analytic query execution".
// Because a compressed form is just a set of pure constituent columns,
// aggregates and selections can often be answered from the
// constituents without materializing the column:
//
//   - SUM over RLE is Σ lengths·values — a dot product over the runs;
//   - range selections over FOR prune whole segments using the refs
//     column and the offsets' width bound, the paper's "rough
//     correspondence of the column data to a simple model can be used
//     to speed up selections";
//   - SUM over FOR-like forms splits into an exact model part and a
//     bounded residual part, enabling the paper's "approximate or
//     gradual-refinement query processing" (package approx side).
//
// Every operation falls back to full decompression for forms it has
// no shortcut for, so results are always exact and always available.
package query
