package query

import (
	"fmt"
	"sync"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/sel"
	"lwcomp/internal/vec"
)

// SelectRange returns the row positions whose values fall in
// [lo, hi], exploiting the form's structure:
//
//   - RLE/RPE test one value per run and emit whole runs;
//   - FOR classifies each segment against [refs[s], refs[s]+bound]
//     (the paper's model-based selection speed-up): segments entirely
//     outside the range are skipped without decoding their offsets,
//     segments entirely inside are emitted without decoding, and
//     straddling segments run the fused unpack-and-compare kernels on
//     the packed offsets;
//   - NS/VNS run the fused kernels over the packed payload directly;
//   - DICT maps the value range to a code range and scans the codes
//     form recursively.
//
// The result is always exact. Internally the matches accumulate in a
// pooled bitmap selection vector (package sel); this function converts
// to an explicit row-position column at the boundary. Callers that can
// consume the bitmap directly should use SelectRangeSel.
func SelectRange(f *core.Form, lo, hi int64) ([]int64, error) {
	bm := sel.Get(f.N)
	defer bm.Release()
	if err := SelectRangeSel(f, lo, hi, bm, 0); err != nil {
		return nil, err
	}
	return bm.AppendRows(make([]int64, 0, bm.Count()), 0), nil
}

// SelectRangeSel emits the row positions of f whose values fall in
// [lo, hi] into dst, each offset by base (row r of f sets bit base+r).
// It is the zero-allocation core of SelectRange: runs arrive as word
// fills and straddling packed blocks as fused 64-bit match masks.
func SelectRangeSel(f *core.Form, lo, hi int64, dst *sel.Selection, base int) error {
	s := core.GetScratch()
	defer s.Release()
	return selectRangeSel(f, lo, hi, dst, base, s)
}

func selectRangeSel(f *core.Form, lo, hi int64, dst *sel.Selection, base int, s *core.Scratch) error {
	if lo > hi || f.N == 0 {
		return nil
	}
	switch f.Scheme {
	case scheme.ConstName:
		if v := f.Params["value"]; v >= lo && v <= hi {
			dst.AddRun(base, f.N)
		}
		return nil

	case scheme.RLEName, scheme.RPEName:
		bounds, values, err := runBoundariesScratch(f, s)
		if err != nil {
			return err
		}
		var start int64
		for i, end := range bounds {
			if values[i] >= lo && values[i] <= hi {
				dst.AddRun(base+int(start), int(end-start))
			}
			start = end
		}
		s.PutI64(bounds)
		s.PutI64(values)
		return nil

	case scheme.FORName:
		return selectRangeSelFOR(f, lo, hi, dst, base, s)

	case scheme.NSName:
		if w, ok := fusedNSWidth(f); ok {
			ulo, uhi, any := unsignedBounds(lo, hi)
			if !any {
				return nil
			}
			return bitpack.SelectRangeU(f.Packed, 0, f.N, w, ulo, uhi, func(pos int, m uint64) {
				dst.OrWord(base+pos, m)
			})
		}
		if w, ok := fusedNSZZWidth(f); ok {
			return bitpack.SelectRangeZZ(f.Packed, 0, f.N, w, lo, hi, func(pos int, m uint64) {
				dst.OrWord(base+pos, m)
			})
		}

	case scheme.VNSName:
		if done, err := selectRangeSelVNS(f, lo, hi, dst, base, s); done || err != nil {
			return err
		}

	case scheme.DictName:
		dict, err := core.ChildScratch(f, "dict", s)
		if err != nil {
			return err
		}
		cLo := int64(vec.LowerBound(dict, lo))
		cHi := int64(vec.UpperBound(dict, hi)) - 1
		s.PutI64(dict)
		if cLo > cHi {
			return nil
		}
		codes, err := f.Child("codes")
		if err != nil {
			return err
		}
		return selectRangeSel(codes, cLo, cHi, dst, base, s)

	case scheme.PlusName:
		if done, err := selectRangeSelPlus(f, lo, hi, dst, base, s); done || err != nil {
			return err
		}
	}

	// Fallback: materialize into scratch and scan.
	col := s.I64(f.N)
	defer s.PutI64(col)
	if err := core.DecompressInto(f, col, s); err != nil {
		return err
	}
	scanSelRows(col, lo, hi, dst, base)
	return nil
}

// CountRange returns |{i : lo ≤ col[i] ≤ hi}| with the same
// structure-exploiting shortcuts as SelectRange, but without
// materializing row ids — fully-inside FOR segments contribute their
// size in O(1) and packed payloads go through the fused count
// kernels, so the common paths allocate nothing.
func CountRange(f *core.Form, lo, hi int64) (int64, error) {
	s := core.GetScratch()
	defer s.Release()
	return countRange(f, lo, hi, s)
}

func countRange(f *core.Form, lo, hi int64, s *core.Scratch) (int64, error) {
	if lo > hi || f.N == 0 {
		return 0, nil
	}
	switch f.Scheme {
	case scheme.ConstName:
		v := f.Params["value"]
		if v < lo || v > hi {
			return 0, nil
		}
		return int64(f.N), nil

	case scheme.RLEName, scheme.RPEName:
		bounds, values, err := runBoundariesScratch(f, s)
		if err != nil {
			return 0, err
		}
		var count int64
		var start int64
		for i, end := range bounds {
			if values[i] >= lo && values[i] <= hi {
				count += end - start
			}
			start = end
		}
		s.PutI64(bounds)
		s.PutI64(values)
		return count, nil

	case scheme.FORName:
		return countRangeFOR(f, lo, hi, s)

	case scheme.NSName:
		if w, ok := fusedNSWidth(f); ok {
			ulo, uhi, any := unsignedBounds(lo, hi)
			if !any {
				return 0, nil
			}
			return bitpack.CountRangeU(f.Packed, 0, f.N, w, ulo, uhi)
		}
		if w, ok := fusedNSZZWidth(f); ok {
			return bitpack.CountRangeZZ(f.Packed, 0, f.N, w, lo, hi)
		}

	case scheme.VNSName:
		if n, done, err := countRangeVNS(f, lo, hi, s); done || err != nil {
			return n, err
		}

	case scheme.DictName:
		dict, err := core.ChildScratch(f, "dict", s)
		if err != nil {
			return 0, err
		}
		cLo := int64(vec.LowerBound(dict, lo))
		cHi := int64(vec.UpperBound(dict, hi)) - 1
		s.PutI64(dict)
		if cLo > cHi {
			return 0, nil
		}
		codes, err := f.Child("codes")
		if err != nil {
			return 0, err
		}
		return countRange(codes, cLo, cHi, s)

	case scheme.PlusName:
		if n, done, err := countRangePlus(f, lo, hi, s); done || err != nil {
			return n, err
		}
	}

	col := s.I64(f.N)
	defer s.PutI64(col)
	if err := core.DecompressInto(f, col, s); err != nil {
		return 0, err
	}
	return vec.CountRange(col, lo, hi), nil
}

// fusedNSWidth reports whether an NS form's payload can be scanned by
// the fused unsigned kernels: no zigzag (the mapping does not preserve
// value order) and width ≤ 63 (so stored words reinterpret to
// non-negative values).
func fusedNSWidth(f *core.Form) (uint, bool) {
	w := f.Params["width"]
	if f.Params["zigzag"] != 0 || w < 0 || w > 63 {
		return 0, false
	}
	return uint(w), true
}

// fusedNSZZWidth reports whether an NS form's payload can be scanned
// by the fused zigzag kernels, which decode the mapping inline and
// compare in the signed domain — any width works there. The zigzag
// parameter must be exactly 1, matching what decode treats as zigzag.
func fusedNSZZWidth(f *core.Form) (uint, bool) {
	w := f.Params["width"]
	if f.Params["zigzag"] != 1 || w < 0 || w > 64 {
		return 0, false
	}
	return uint(w), true
}

// translateRange maps the value window [lo, hi] into the residual
// domain of a PLUS form whose model contributes m (v = m + r, so r
// ranges over [lo-m, hi-m]), saturating at the int64 extremes. any is
// false when no representable residual can land in the window.
func translateRange(lo, hi, m int64) (tLo, tHi int64, any bool) {
	tLo = lo - m
	if m > 0 && tLo > lo {
		tLo = minInt64 // lo-m underflows: every residual clears the lower bound
	} else if m < 0 && tLo < lo {
		return 0, 0, false // lo-m overflows: the window sits above the domain
	}
	tHi = hi - m
	if m > 0 && tHi > hi {
		return 0, 0, false // hi-m underflows: the window sits below the domain
	} else if m < 0 && tHi < hi {
		tHi = maxInt64 // hi-m overflows: every residual clears the upper bound
	}
	return tLo, tHi, true
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// plusModelParts returns the model and residual of a PLUS form when
// the pair is structurally scannable (lengths agree with the parent).
func plusModelParts(f *core.Form) (model, residual *core.Form, ok bool, err error) {
	model, err = f.Child("model")
	if err != nil {
		return nil, nil, false, err
	}
	residual, err = f.Child("residual")
	if err != nil {
		return nil, nil, false, err
	}
	if model.N != f.N || residual.N != f.N {
		// Corrupt lengths: let the materialize fallback surface the
		// decode error rather than scanning out of bounds here.
		return nil, nil, false, nil
	}
	return model, residual, true, nil
}

// selectRangeSelPlus is the fused predict+residual+compare path for
// PLUS forms: a constant model translates the window once and recurses
// into the residual; a step model translates it per segment and runs
// the fused kernels on the packed residual slice of that segment.
// done=false (without error) falls back to materializing.
func selectRangeSelPlus(f *core.Form, lo, hi int64, dst *sel.Selection, base int, s *core.Scratch) (bool, error) {
	model, residual, ok, err := plusModelParts(f)
	if !ok || err != nil {
		return false, err
	}
	switch model.Scheme {
	case scheme.ConstName:
		tLo, tHi, any := translateRange(lo, hi, model.Params["value"])
		if !any {
			return true, nil
		}
		return true, selectRangeSel(residual, tLo, tHi, dst, base, s)
	case scheme.StepName:
		return plusStepSegments(model, residual, s, func(segLo, segCount int, tLo, tHi int64, w uint, zz bool, _ int64) error {
			if zz {
				return bitpack.SelectRangeZZ(residual.Packed, segLo, segCount, w, tLo, tHi,
					func(pos int, m uint64) { dst.OrWord(base+pos, m) })
			}
			ulo, uhi, any := unsignedBounds(tLo, tHi)
			if !any {
				return nil
			}
			return bitpack.SelectRangeU(residual.Packed, segLo, segCount, w, ulo, uhi,
				func(pos int, m uint64) { dst.OrWord(base+pos, m) })
		}, lo, hi)
	}
	return false, nil
}

// countRangePlus is selectRangeSelPlus's counting twin.
func countRangePlus(f *core.Form, lo, hi int64, s *core.Scratch) (int64, bool, error) {
	model, residual, ok, err := plusModelParts(f)
	if !ok || err != nil {
		return 0, false, err
	}
	switch model.Scheme {
	case scheme.ConstName:
		tLo, tHi, any := translateRange(lo, hi, model.Params["value"])
		if !any {
			return 0, true, nil
		}
		n, err := countRange(residual, tLo, tHi, s)
		return n, true, err
	case scheme.StepName:
		var total int64
		done, err := plusStepSegments(model, residual, s, func(segLo, segCount int, tLo, tHi int64, w uint, zz bool, _ int64) error {
			if zz {
				n, err := bitpack.CountRangeZZ(residual.Packed, segLo, segCount, w, tLo, tHi)
				total += n
				return err
			}
			ulo, uhi, any := unsignedBounds(tLo, tHi)
			if !any {
				return nil
			}
			n, err := bitpack.CountRangeU(residual.Packed, segLo, segCount, w, ulo, uhi)
			total += n
			return err
		}, lo, hi)
		return total, done, err
	}
	return 0, false, nil
}

// plusStepSegments walks the segments of a step model over an NS
// residual, translating the query window by each segment's reference
// and handing visit the segment's residual row range, translated
// window, kernel parameters and the reference itself (aggregating
// callers add it back per match). done=false reports a shape the
// fused path cannot take (non-NS residual, foreign widths, short
// refs).
func plusStepSegments(model, residual *core.Form, s *core.Scratch,
	visit func(segLo, segCount int, tLo, tHi int64, w uint, zz bool, ref int64) error, lo, hi int64) (bool, error) {
	if residual.Scheme != scheme.NSName {
		return false, nil
	}
	w, ok := fusedNSWidth(residual)
	zzPath := false
	if !ok {
		if w, ok = fusedNSZZWidth(residual); !ok {
			return false, nil
		}
		zzPath = true
	}
	segLen := int(model.Params["seglen"])
	if segLen < 1 {
		return false, nil
	}
	refs, err := core.ChildScratch(model, "refs", s)
	if err != nil {
		return false, err
	}
	defer s.PutI64(refs)
	n := residual.N
	nseg := (n + segLen - 1) / segLen
	if len(refs) < nseg {
		return false, nil // short refs child: fall back so decode errors
	}
	for seg := 0; seg < nseg; seg++ {
		segLo := seg * segLen
		segHi := segLo + segLen
		if segHi > n {
			segHi = n
		}
		tLo, tHi, any := translateRange(lo, hi, refs[seg])
		if !any {
			continue
		}
		if err := visit(segLo, segHi-segLo, tLo, tHi, w, zzPath, refs[seg]); err != nil {
			return false, err
		}
	}
	return true, nil
}

// unsignedBounds clamps a signed query range onto the non-negative
// unsigned domain of a fused payload. any is false when the range
// misses the domain entirely.
func unsignedBounds(lo, hi int64) (ulo, uhi uint64, any bool) {
	if hi < 0 {
		return 0, 0, false
	}
	if lo > 0 {
		ulo = uint64(lo)
	}
	return ulo, uint64(hi), true
}

// offsetBounds translates a value range [lo, hi] into the unsigned
// offset domain of a FOR segment with reference ref (v = ref + off,
// off ≥ 0). The uint64 subtraction is exact for any int64 pair with
// hi ≥ ref, which is why the translation never overflows.
func offsetBounds(ref, lo, hi int64) (ulo, uhi uint64, any bool) {
	if hi < ref {
		return 0, 0, false
	}
	uhi = uint64(hi) - uint64(ref)
	if lo > ref {
		ulo = uint64(lo) - uint64(ref)
	}
	return ulo, uhi, true
}

// scanSelRows scans a materialized column chunk-wise, ORing one match
// mask per 64 values into dst (emitOffsetMatches with a zero
// reference).
func scanSelRows(col []int64, lo, hi int64, dst *sel.Selection, base int) {
	emitOffsetMatches(col, 0, lo, hi, dst, base)
}

// vnsWalk iterates the mini-blocks of a VNS form, handing each
// visit the block's packed words, width, logical position and length.
// It reports done=false (without error) when a stored width exceeds
// maxW (63 for the unsigned kernels, whose word-to-value
// reinterpretation needs non-negative values; 64 for the zigzag and
// sum kernels) or the layout is implausible.
func vnsWalk(f *core.Form, s *core.Scratch, maxW int64, visit func(words []uint64, w uint, pos, count int) error) (done bool, err error) {
	widths, err := core.ChildScratch(f, "widths", s)
	if err != nil {
		return false, err
	}
	defer s.PutI64(widths)
	for _, w := range widths {
		if w < 0 || w > maxW {
			return false, nil
		}
	}
	block := int(f.Params["block"])
	wordPos := 0
	for bIdx := 0; bIdx*block < f.N; bIdx++ {
		lo := bIdx * block
		hi := lo + block
		if hi > f.N {
			hi = f.N
		}
		if bIdx >= len(widths) {
			return false, fmt.Errorf("%w: vns widths child exhausted at block %d", core.ErrCorruptForm, bIdx)
		}
		w := uint(widths[bIdx])
		need := bitpack.PackedWords(hi-lo, w)
		if wordPos+need > len(f.Packed) {
			return false, fmt.Errorf("%w: vns payload exhausted at block %d", core.ErrCorruptForm, bIdx)
		}
		if err := visit(f.Packed[wordPos:wordPos+need], w, lo, hi-lo); err != nil {
			return false, err
		}
		wordPos += need
	}
	return true, nil
}

func selectRangeSelVNS(f *core.Form, lo, hi int64, dst *sel.Selection, base int, s *core.Scratch) (bool, error) {
	if zz := f.Params["zigzag"]; zz == 1 {
		return vnsWalk(f, s, 64, func(words []uint64, w uint, pos, count int) error {
			return bitpack.SelectRangeZZ(words, 0, count, w, lo, hi, func(p int, m uint64) {
				dst.OrWord(base+pos+p, m)
			})
		})
	} else if zz != 0 {
		return false, nil // unknown mapping: let decode interpret it
	}
	ulo, uhi, any := unsignedBounds(lo, hi)
	if !any {
		// "Fully negative range matches nothing" holds only if every
		// stored width is ≤ 63 — a width-64 block reinterprets to
		// negative values. vnsWalk performs exactly that check (and
		// falls back when it fails), so walk with a no-op visit.
		return vnsWalk(f, s, 63, func([]uint64, uint, int, int) error { return nil })
	}
	return vnsWalk(f, s, 63, func(words []uint64, w uint, pos, count int) error {
		return bitpack.SelectRangeU(words, 0, count, w, ulo, uhi, func(p int, m uint64) {
			dst.OrWord(base+pos+p, m)
		})
	})
}

func countRangeVNS(f *core.Form, lo, hi int64, s *core.Scratch) (int64, bool, error) {
	if zz := f.Params["zigzag"]; zz == 1 {
		var total int64
		done, err := vnsWalk(f, s, 64, func(words []uint64, w uint, pos, count int) error {
			n, err := bitpack.CountRangeZZ(words, 0, count, w, lo, hi)
			total += n
			return err
		})
		return total, done, err
	} else if zz != 0 {
		return 0, false, nil // unknown mapping: let decode interpret it
	}
	ulo, uhi, any := unsignedBounds(lo, hi)
	if !any {
		// See selectRangeSelVNS: width-64 blocks hold negative values,
		// so the no-match shortcut must clear vnsWalk's width check.
		done, err := vnsWalk(f, s, 63, func([]uint64, uint, int, int) error { return nil })
		return 0, done, err
	}
	var total int64
	done, err := vnsWalk(f, s, 63, func(words []uint64, w uint, pos, count int) error {
		n, err := bitpack.CountRangeU(words, 0, count, w, ulo, uhi)
		total += n
		return err
	})
	return total, done, err
}

// runBoundariesScratch returns (exclusive run end positions, run
// values) for RLE and RPE forms, both borrowed from s; the caller
// returns them with PutI64.
func runBoundariesScratch(f *core.Form, s *core.Scratch) ([]int64, []int64, error) {
	values, err := core.ChildScratch(f, "values", s)
	if err != nil {
		return nil, nil, err
	}
	var bounds []int64
	switch f.Scheme {
	case scheme.RLEName:
		bounds, err = core.ChildScratch(f, "lengths", s)
		if err == nil {
			_, err = vec.PrefixSumInclusiveInto(bounds, bounds)
		}
	case scheme.RPEName:
		bounds, err = core.ChildScratch(f, "positions", s)
	default:
		err = fmt.Errorf("query: runBoundaries on scheme %q", f.Scheme)
	}
	if err == nil && len(bounds) != len(values) {
		// The scalar decode path rejects this via checkRLE/checkRPE;
		// without the check here a short values child would panic in
		// the fused run walks instead of erroring.
		err = fmt.Errorf("%w: %s has %d runs but %d values",
			core.ErrCorruptForm, f.Scheme, len(bounds), len(values))
	}
	if err == nil {
		err = checkRunBounds(f, bounds)
	}
	if err != nil {
		if bounds != nil {
			s.PutI64(bounds)
		}
		s.PutI64(values)
		return nil, nil, err
	}
	return bounds, values, nil
}

// checkRunBounds validates exclusive run end positions: non-negative,
// non-decreasing, covering exactly [0, f.N). Without it, a corrupt
// form whose runs overshoot N would panic inside Selection.AddRun
// instead of erroring (decode validates the same invariant in
// vec.ExpandByBoundaries / RunExpandInto).
func checkRunBounds(f *core.Form, bounds []int64) error {
	var prev int64
	for _, end := range bounds {
		if end < prev {
			return fmt.Errorf("%w: %s run boundaries decrease (%d after %d)",
				core.ErrCorruptForm, f.Scheme, end, prev)
		}
		prev = end
	}
	if prev != int64(f.N) {
		return fmt.Errorf("%w: %s runs cover %d rows, form declares %d",
			core.ErrCorruptForm, f.Scheme, prev, f.N)
	}
	return nil
}

// segmentClass is the trichotomy of the FOR pruning walk.
type segmentClass uint8

const (
	segOutside segmentClass = iota
	segInside
	segStraddle
)

// forPruner precomputes what the FOR segment walk needs: refs, the
// per-segment offset upper bounds, and accessors that can decode or
// fused-scan a single segment. All slices are borrowed from a Scratch
// and the pruner itself is pooled; pair newFORPruner with release.
type forPruner struct {
	refs    []int64
	segLen  int
	n       int
	bounds  []int64 // per-segment max offset (inclusive upper bound)
	offsets *core.Form
	// nsWidth is the fused-scan width of NS offsets; valid when
	// nsFused is set.
	nsWidth uint
	nsFused bool
	// decoded caches the fully decompressed offsets when the child
	// supports no partial decoding.
	decoded []int64
	// VNS partial-decode state: per-block widths, block length and
	// each block's starting word within the packed payload.
	vnsWidths   []int64
	vnsBlock    int
	vnsWordOffs []int64
}

// SelectStats counts segments whose offsets were actually decoded (or
// fused-scanned); benchmarks report it to show pruning at work.
type SelectStats struct {
	Segments        int
	DecodedSegments int
}

var prunerPool = sync.Pool{New: func() any { return new(forPruner) }}

func newFORPruner(f *core.Form, s *core.Scratch) (*forPruner, error) {
	refs, err := core.ChildScratch(f, "refs", s)
	if err != nil {
		return nil, err
	}
	offsets, err := f.Child("offsets")
	if err != nil {
		s.PutI64(refs)
		return nil, err
	}
	p := prunerPool.Get().(*forPruner)
	*p = forPruner{
		refs:    refs,
		segLen:  int(f.Params["seglen"]),
		n:       f.N,
		offsets: offsets,
	}
	nseg := len(refs)
	p.bounds = s.I64(nseg)
	switch offsets.Scheme {
	case scheme.NSName:
		w, ok := fusedNSWidth(offsets)
		if !ok {
			// Zigzag offsets mean a foreign form (FOR offsets are
			// non-negative by construction) — fall back to decoding.
			if err := p.materialize(s); err != nil {
				p.release(s)
				return nil, err
			}
			break
		}
		p.nsWidth, p.nsFused = w, true
		bound := int64(bitpack.Mask(w))
		for i := range p.bounds {
			p.bounds[i] = bound
		}
	case scheme.VNSName:
		if offsets.Params["zigzag"] == 1 {
			if err := p.materialize(s); err != nil {
				p.release(s)
				return nil, err
			}
			break
		}
		widths, err := core.ChildScratch(offsets, "widths", s)
		if err != nil {
			p.release(s)
			return nil, err
		}
		block := int(offsets.Params["block"])
		nblocks := 0
		if block >= 1 {
			nblocks = (p.n + block - 1) / block
		}
		// The fused walk requires a sane layout: a positive block
		// length, widths covering every block, and widths ≤ 63. On
		// anything else — including a corrupt short widths child —
		// fall back to materializing, which answers correctly or
		// surfaces the decode's ErrCorruptForm rather than silently
		// dropping the uncovered rows.
		wide := block < 1 || len(widths) < nblocks
		for _, w := range widths {
			if w < 0 || w > 63 {
				wide = true
				break
			}
		}
		if wide {
			s.PutI64(widths)
			if err := p.materialize(s); err != nil {
				p.release(s)
				return nil, err
			}
			break
		}
		p.vnsWidths = widths
		p.vnsBlock = block
		// Per-block starting words, for partial decode.
		p.vnsWordOffs = s.I64(nblocks + 1)
		p.vnsWordOffs[0] = 0
		for b := 0; b < nblocks; b++ {
			blockLen := block
			if (b+1)*block > p.n {
				blockLen = p.n - b*block
			}
			p.vnsWordOffs[b+1] = p.vnsWordOffs[b] + int64(bitpack.PackedWords(blockLen, uint(widths[b])))
		}
		if int(p.vnsWordOffs[nblocks]) > len(offsets.Packed) {
			// Truncated payload: same fallback as above.
			s.PutI64(p.vnsWordOffs)
			s.PutI64(p.vnsWidths)
			p.vnsWordOffs, p.vnsWidths = nil, nil
			if err := p.materialize(s); err != nil {
				p.release(s)
				return nil, err
			}
			break
		}
		for seg := range p.bounds {
			segLo := seg * p.segLen
			segHi := segLo + p.segLen
			if segHi > p.n {
				segHi = p.n
			}
			var maxW int64
			for b := segLo / block; b*block < segHi; b++ {
				if widths[b] > maxW {
					maxW = widths[b]
				}
			}
			p.bounds[seg] = int64(bitpack.Mask(uint(maxW)))
		}
	default:
		if err := p.materialize(s); err != nil {
			p.release(s)
			return nil, err
		}
	}
	return p, nil
}

// release returns the pruner's borrowed slices to s and the pruner to
// its pool.
func (p *forPruner) release(s *core.Scratch) {
	s.PutI64(p.refs)
	s.PutI64(p.bounds)
	s.PutI64(p.decoded)
	s.PutI64(p.vnsWidths)
	s.PutI64(p.vnsWordOffs)
	*p = forPruner{}
	prunerPool.Put(p)
}

// materialize decompresses the offsets into scratch storage and
// computes exact per-segment bounds from the data.
func (p *forPruner) materialize(s *core.Scratch) error {
	col := s.I64(p.offsets.N)
	if err := core.DecompressInto(p.offsets, col, s); err != nil {
		s.PutI64(col)
		return err
	}
	p.decoded = col
	for seg := range p.bounds {
		lo := seg * p.segLen
		hi := lo + p.segLen
		if hi > p.n {
			hi = p.n
		}
		var m int64
		for _, v := range col[lo:hi] {
			if v > m {
				m = v
			}
		}
		p.bounds[seg] = m
	}
	return nil
}

// classify places segment s relative to the value range [lo, hi].
func (p *forPruner) classify(s int, lo, hi int64) segmentClass {
	segMin := p.refs[s]
	segMax := p.refs[s] + p.bounds[s]
	if segMax < lo || segMin > hi {
		return segOutside
	}
	if segMin >= lo && segMax <= hi {
		return segInside
	}
	return segStraddle
}

// segRange clamps segment s to [0, n) and returns its row range.
func (p *forPruner) segRange(s int) (int, int) {
	segLo := s * p.segLen
	segHi := segLo + p.segLen
	if segHi > p.n {
		segHi = p.n
	}
	return segLo, segHi
}

// selectSegment emits the matching rows of straddling segment seg
// into dst (offset by base) without materializing the segment when
// the offsets are fused-scannable.
func (p *forPruner) selectSegment(seg int, lo, hi int64, dst *sel.Selection, base int) error {
	segLo, segHi := p.segRange(seg)
	ref := p.refs[seg]
	if p.decoded != nil {
		emitOffsetMatches(p.decoded[segLo:segHi], ref, lo, hi, dst, base+segLo)
		return nil
	}
	ulo, uhi, any := offsetBounds(ref, lo, hi)
	if !any {
		return nil
	}
	if p.nsFused {
		return bitpack.SelectRangeU(p.offsets.Packed, segLo, segHi-segLo, p.nsWidth, ulo, uhi,
			func(pos int, m uint64) { dst.OrWord(base+pos, m) })
	}
	return p.vnsSegment(segLo, segHi, func(words []uint64, w uint, blockLo, relStart, relCount int) error {
		return bitpack.SelectRangeU(words, relStart, relCount, w, ulo, uhi,
			func(pos int, m uint64) { dst.OrWord(base+blockLo+pos, m) })
	})
}

// countSegment counts the matching rows of straddling segment seg.
func (p *forPruner) countSegment(seg int, lo, hi int64) (int64, error) {
	segLo, segHi := p.segRange(seg)
	ref := p.refs[seg]
	if p.decoded != nil {
		var count int64
		for _, o := range p.decoded[segLo:segHi] {
			v := ref + o
			if v >= lo && v <= hi {
				count++
			}
		}
		return count, nil
	}
	ulo, uhi, any := offsetBounds(ref, lo, hi)
	if !any {
		return 0, nil
	}
	if p.nsFused {
		return bitpack.CountRangeU(p.offsets.Packed, segLo, segHi-segLo, p.nsWidth, ulo, uhi)
	}
	var total int64
	err := p.vnsSegment(segLo, segHi, func(words []uint64, w uint, blockLo, relStart, relCount int) error {
		n, err := bitpack.CountRangeU(words, relStart, relCount, w, ulo, uhi)
		total += n
		return err
	})
	return total, err
}

// vnsSegment visits the VNS mini-blocks overlapping rows
// [segLo, segHi), handing visit each block's words, width, logical
// start and the overlap range relative to the block.
func (p *forPruner) vnsSegment(segLo, segHi int, visit func(words []uint64, w uint, blockLo, relStart, relCount int) error) error {
	block := p.vnsBlock
	// newFORPruner validated that widths and word offsets cover every
	// block, so the loop bound needs no widths-length guard.
	for b := segLo / block; b*block < segHi; b++ {
		blockLo := b * block
		blockHi := blockLo + block
		if blockHi > p.n {
			blockHi = p.n
		}
		lo := segLo
		if blockLo > lo {
			lo = blockLo
		}
		hi := segHi
		if blockHi < hi {
			hi = blockHi
		}
		words := p.offsets.Packed[p.vnsWordOffs[b]:p.vnsWordOffs[b+1]]
		if err := visit(words, uint(p.vnsWidths[b]), blockLo, lo-blockLo, hi-lo); err != nil {
			return err
		}
	}
	return nil
}

// emitOffsetMatches scans materialized offsets against [lo, hi] with
// reference ref, ORing chunk masks into dst at base.
func emitOffsetMatches(offs []int64, ref, lo, hi int64, dst *sel.Selection, base int) {
	for chunk := 0; chunk < len(offs); chunk += 64 {
		end := chunk + 64
		if end > len(offs) {
			end = len(offs)
		}
		var m uint64
		for j, o := range offs[chunk:end] {
			v := ref + o
			if v >= lo && v <= hi {
				m |= 1 << uint(j)
			}
		}
		if m != 0 {
			dst.OrWord(base+chunk, m)
		}
	}
}

// segmentOffsets decodes the offsets of segment s only (allocating;
// the instrumented WithStats path uses it).
func (p *forPruner) segmentOffsets(s int) ([]int64, error) {
	segLo, segHi := p.segRange(s)
	if p.decoded != nil {
		return p.decoded[segLo:segHi], nil
	}
	if p.vnsWidths != nil {
		out := make([]int64, 0, segHi-segLo)
		err := p.vnsSegment(segLo, segHi, func(words []uint64, w uint, blockLo, relStart, relCount int) error {
			u, err := bitpack.UnpackRange(words, relStart, relCount, w)
			if err != nil {
				return err
			}
			out = append(out, bitpack.SignedSlice(u)...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	u, err := bitpack.UnpackRange(p.offsets.Packed, segLo, segHi-segLo, uint(p.offsets.Params["width"]))
	if err != nil {
		return nil, err
	}
	return bitpack.SignedSlice(u), nil
}

func selectRangeSelFOR(f *core.Form, lo, hi int64, dst *sel.Selection, base int, s *core.Scratch) error {
	p, err := newFORPruner(f, s)
	if err != nil {
		return err
	}
	defer p.release(s)
	for seg := 0; seg*p.segLen < p.n; seg++ {
		switch p.classify(seg, lo, hi) {
		case segOutside:
		case segInside:
			segLo, segHi := p.segRange(seg)
			dst.AddRun(base+segLo, segHi-segLo)
		case segStraddle:
			if err := p.selectSegment(seg, lo, hi, dst, base); err != nil {
				return err
			}
		}
	}
	return nil
}

// SelectRangeFORWithStats is the instrumented variant benchmarks use
// to report how many segments escaped decoding.
func SelectRangeFORWithStats(f *core.Form, lo, hi int64) ([]int64, SelectStats, error) {
	if f.Scheme != scheme.FORName {
		return nil, SelectStats{}, fmt.Errorf("query: SelectRangeFORWithStats on scheme %q", f.Scheme)
	}
	s := core.GetScratch()
	defer s.Release()
	p, err := newFORPruner(f, s)
	if err != nil {
		return nil, SelectStats{}, err
	}
	defer p.release(s)
	var st SelectStats
	st.Segments = len(p.refs)
	out := []int64{}
	for seg := 0; seg*p.segLen < p.n; seg++ {
		segLo, segHi := p.segRange(seg)
		switch p.classify(seg, lo, hi) {
		case segOutside:
		case segInside:
			for r := segLo; r < segHi; r++ {
				out = append(out, int64(r))
			}
		case segStraddle:
			st.DecodedSegments++
			offs, err := p.segmentOffsets(seg)
			if err != nil {
				return nil, st, err
			}
			ref := p.refs[seg]
			for j, o := range offs {
				v := ref + o
				if v >= lo && v <= hi {
					out = append(out, int64(segLo+j))
				}
			}
		}
	}
	return out, st, nil
}

func countRangeFOR(f *core.Form, lo, hi int64, s *core.Scratch) (int64, error) {
	p, err := newFORPruner(f, s)
	if err != nil {
		return 0, err
	}
	defer p.release(s)
	var count int64
	for seg := 0; seg*p.segLen < p.n; seg++ {
		switch p.classify(seg, lo, hi) {
		case segOutside:
		case segInside:
			segLo, segHi := p.segRange(seg)
			count += int64(segHi - segLo)
		case segStraddle:
			n, err := p.countSegment(seg, lo, hi)
			if err != nil {
				return 0, err
			}
			count += n
		}
	}
	return count, nil
}
