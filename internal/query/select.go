package query

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// SelectRange returns the row positions whose values fall in
// [lo, hi], exploiting the form's structure:
//
//   - RLE/RPE test one value per run and emit whole runs;
//   - FOR classifies each segment against [refs[s], refs[s]+bound]
//     (the paper's model-based selection speed-up): segments entirely
//     outside the range are skipped without decoding their offsets,
//     segments entirely inside are emitted without decoding, and only
//     straddling segments decode offsets;
//   - DICT maps the value range to a code range and scans codes.
//
// The result is always exact.
func SelectRange(f *core.Form, lo, hi int64) ([]int64, error) {
	if lo > hi {
		return []int64{}, nil
	}
	switch f.Scheme {
	case scheme.ConstName:
		v := f.Params["value"]
		if v < lo || v > hi {
			return []int64{}, nil
		}
		return allRows(f.N), nil

	case scheme.RLEName, scheme.RPEName:
		bounds, values, err := runBoundaries(f)
		if err != nil {
			return nil, err
		}
		var out []int64
		var start int64
		for i, end := range bounds {
			if values[i] >= lo && values[i] <= hi {
				for r := start; r < end; r++ {
					out = append(out, r)
				}
			}
			start = end
		}
		if out == nil {
			out = []int64{}
		}
		return out, nil

	case scheme.FORName:
		return selectRangeFOR(f, lo, hi)

	case scheme.DictName:
		codes, err := core.DecompressChild(f, "codes")
		if err != nil {
			return nil, err
		}
		dict, err := core.DecompressChild(f, "dict")
		if err != nil {
			return nil, err
		}
		cLo := int64(vec.LowerBound(dict, lo))
		cHi := int64(vec.UpperBound(dict, hi)) - 1
		if cLo > cHi {
			return []int64{}, nil
		}
		return vec.SelectRange(codes, cLo, cHi), nil
	}

	col, err := core.Decompress(f)
	if err != nil {
		return nil, err
	}
	return vec.SelectRange(col, lo, hi), nil
}

// CountRange returns |{i : lo ≤ col[i] ≤ hi}| with the same
// structure-exploiting shortcuts as SelectRange, but without
// materializing row ids — fully-inside FOR segments contribute their
// size in O(1).
func CountRange(f *core.Form, lo, hi int64) (int64, error) {
	if lo > hi {
		return 0, nil
	}
	switch f.Scheme {
	case scheme.ConstName:
		v := f.Params["value"]
		if v < lo || v > hi {
			return 0, nil
		}
		return int64(f.N), nil

	case scheme.RLEName, scheme.RPEName:
		bounds, values, err := runBoundaries(f)
		if err != nil {
			return 0, err
		}
		var count int64
		var start int64
		for i, end := range bounds {
			if values[i] >= lo && values[i] <= hi {
				count += end - start
			}
			start = end
		}
		return count, nil

	case scheme.FORName:
		return countRangeFOR(f, lo, hi)

	case scheme.DictName:
		codes, err := core.DecompressChild(f, "codes")
		if err != nil {
			return 0, err
		}
		dict, err := core.DecompressChild(f, "dict")
		if err != nil {
			return 0, err
		}
		cLo := int64(vec.LowerBound(dict, lo))
		cHi := int64(vec.UpperBound(dict, hi)) - 1
		if cLo > cHi {
			return 0, nil
		}
		return vec.CountRange(codes, cLo, cHi), nil
	}

	col, err := core.Decompress(f)
	if err != nil {
		return 0, err
	}
	return vec.CountRange(col, lo, hi), nil
}

// runBoundaries returns (exclusive run end positions, run values) for
// RLE and RPE forms.
func runBoundaries(f *core.Form) ([]int64, []int64, error) {
	values, err := core.DecompressChild(f, "values")
	if err != nil {
		return nil, nil, err
	}
	switch f.Scheme {
	case scheme.RLEName:
		lengths, err := core.DecompressChild(f, "lengths")
		if err != nil {
			return nil, nil, err
		}
		return vec.PrefixSumInclusive(lengths), values, nil
	case scheme.RPEName:
		positions, err := core.DecompressChild(f, "positions")
		if err != nil {
			return nil, nil, err
		}
		return positions, values, nil
	}
	return nil, nil, fmt.Errorf("query: runBoundaries on scheme %q", f.Scheme)
}

// segmentClass is the trichotomy of the FOR pruning walk.
type segmentClass uint8

const (
	segOutside segmentClass = iota
	segInside
	segStraddle
)

// forPruner precomputes what the FOR segment walk needs: refs, the
// per-segment offset upper bounds, and an offsets accessor that can
// decode a single segment.
type forPruner struct {
	refs    []int64
	segLen  int
	n       int
	bounds  []int64 // per-segment max offset (inclusive upper bound)
	offsets *core.Form
	// decoded caches the fully decompressed offsets when the child
	// supports no partial decoding.
	decoded []int64
	// VNS partial-decode state: per-block widths, block length and
	// each block's starting word within the packed payload.
	vnsWidths   []int64
	vnsBlock    int
	vnsWordOffs []int
}

// SegmentsDecoded counts segments whose offsets were actually
// decoded; benchmarks report it to show pruning at work.
type SelectStats struct {
	Segments        int
	DecodedSegments int
}

func newFORPruner(f *core.Form) (*forPruner, error) {
	refs, err := core.DecompressChild(f, "refs")
	if err != nil {
		return nil, err
	}
	offsets, err := f.Child("offsets")
	if err != nil {
		return nil, err
	}
	p := &forPruner{
		refs:    refs,
		segLen:  int(f.Params["seglen"]),
		n:       f.N,
		offsets: offsets,
	}
	nseg := len(refs)
	p.bounds = make([]int64, nseg)
	switch offsets.Scheme {
	case scheme.NSName:
		if offsets.Params["zigzag"] == 1 {
			// FOR offsets are non-negative by construction; a zigzag
			// flag means a foreign form — fall back to decoding.
			if err := p.materialize(); err != nil {
				return nil, err
			}
		} else {
			bound := int64(bitpack.Mask(uint(offsets.Params["width"])))
			for s := range p.bounds {
				p.bounds[s] = bound
			}
		}
	case scheme.VNSName:
		if offsets.Params["zigzag"] == 1 {
			if err := p.materialize(); err != nil {
				return nil, err
			}
			break
		}
		widths, err := core.DecompressChild(offsets, "widths")
		if err != nil {
			return nil, err
		}
		block := int(offsets.Params["block"])
		p.vnsWidths = widths
		p.vnsBlock = block
		// Per-block starting words, for partial decode.
		p.vnsWordOffs = make([]int, len(widths)+1)
		for b, w := range widths {
			blockLen := block
			if (b+1)*block > p.n {
				blockLen = p.n - b*block
			}
			p.vnsWordOffs[b+1] = p.vnsWordOffs[b] + bitpack.PackedWords(blockLen, uint(w))
		}
		for s := range p.bounds {
			segLo := s * p.segLen
			segHi := segLo + p.segLen
			if segHi > p.n {
				segHi = p.n
			}
			var maxW int64
			for b := segLo / block; b*block < segHi && b < len(widths); b++ {
				if widths[b] > maxW {
					maxW = widths[b]
				}
			}
			p.bounds[s] = int64(bitpack.Mask(uint(maxW)))
		}
	default:
		if err := p.materialize(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// materialize decompresses the offsets and computes exact per-segment
// bounds from the data.
func (p *forPruner) materialize() error {
	col, err := core.Decompress(p.offsets)
	if err != nil {
		return err
	}
	p.decoded = col
	for s := range p.bounds {
		lo := s * p.segLen
		hi := lo + p.segLen
		if hi > p.n {
			hi = p.n
		}
		var m int64
		for _, v := range col[lo:hi] {
			if v > m {
				m = v
			}
		}
		p.bounds[s] = m
	}
	return nil
}

// classify places segment s relative to the value range [lo, hi].
func (p *forPruner) classify(s int, lo, hi int64) segmentClass {
	segMin := p.refs[s]
	segMax := p.refs[s] + p.bounds[s]
	if segMax < lo || segMin > hi {
		return segOutside
	}
	if segMin >= lo && segMax <= hi {
		return segInside
	}
	return segStraddle
}

// segmentOffsets decodes the offsets of segment s only.
func (p *forPruner) segmentOffsets(s int) ([]int64, error) {
	segLo := s * p.segLen
	segHi := segLo + p.segLen
	if segHi > p.n {
		segHi = p.n
	}
	if p.decoded != nil {
		return p.decoded[segLo:segHi], nil
	}
	if p.vnsWidths != nil {
		out := make([]int64, 0, segHi-segLo)
		for b := segLo / p.vnsBlock; b*p.vnsBlock < segHi; b++ {
			blockLo := b * p.vnsBlock
			blockHi := blockLo + p.vnsBlock
			if blockHi > p.n {
				blockHi = p.n
			}
			lo := segLo
			if blockLo > lo {
				lo = blockLo
			}
			hi := segHi
			if blockHi < hi {
				hi = blockHi
			}
			words := p.offsets.Packed[p.vnsWordOffs[b]:p.vnsWordOffs[b+1]]
			u, err := bitpack.UnpackRange(words, lo-blockLo, hi-lo, uint(p.vnsWidths[b]))
			if err != nil {
				return nil, err
			}
			out = append(out, bitpack.SignedSlice(u)...)
		}
		return out, nil
	}
	u, err := bitpack.UnpackRange(p.offsets.Packed, segLo, segHi-segLo, uint(p.offsets.Params["width"]))
	if err != nil {
		return nil, err
	}
	return bitpack.SignedSlice(u), nil
}

func selectRangeFOR(f *core.Form, lo, hi int64) ([]int64, error) {
	rows, _, err := selectRangeFORWithStats(f, lo, hi)
	return rows, err
}

// SelectRangeFORWithStats is the instrumented variant benchmarks use
// to report how many segments escaped decoding.
func SelectRangeFORWithStats(f *core.Form, lo, hi int64) ([]int64, SelectStats, error) {
	if f.Scheme != scheme.FORName {
		return nil, SelectStats{}, fmt.Errorf("query: SelectRangeFORWithStats on scheme %q", f.Scheme)
	}
	return selectRangeFORWithStats(f, lo, hi)
}

func selectRangeFORWithStats(f *core.Form, lo, hi int64) ([]int64, SelectStats, error) {
	p, err := newFORPruner(f)
	if err != nil {
		return nil, SelectStats{}, err
	}
	var st SelectStats
	st.Segments = len(p.refs)
	out := []int64{}
	for s := 0; s*p.segLen < p.n; s++ {
		segLo := s * p.segLen
		segHi := segLo + p.segLen
		if segHi > p.n {
			segHi = p.n
		}
		switch p.classify(s, lo, hi) {
		case segOutside:
		case segInside:
			for r := segLo; r < segHi; r++ {
				out = append(out, int64(r))
			}
		case segStraddle:
			st.DecodedSegments++
			offs, err := p.segmentOffsets(s)
			if err != nil {
				return nil, st, err
			}
			ref := p.refs[s]
			for j, o := range offs {
				v := ref + o
				if v >= lo && v <= hi {
					out = append(out, int64(segLo+j))
				}
			}
		}
	}
	return out, st, nil
}

func countRangeFOR(f *core.Form, lo, hi int64) (int64, error) {
	p, err := newFORPruner(f)
	if err != nil {
		return 0, err
	}
	var count int64
	for s := 0; s*p.segLen < p.n; s++ {
		segLo := s * p.segLen
		segHi := segLo + p.segLen
		if segHi > p.n {
			segHi = p.n
		}
		switch p.classify(s, lo, hi) {
		case segOutside:
		case segInside:
			count += int64(segHi - segLo)
		case segStraddle:
			offs, err := p.segmentOffsets(s)
			if err != nil {
				return 0, err
			}
			ref := p.refs[s]
			for _, o := range offs {
				v := ref + o
				if v >= lo && v <= hi {
					count++
				}
			}
		}
	}
	return count, nil
}

// allRows returns [0..n).
func allRows(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
