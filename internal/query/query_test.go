package query

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// compressors returns the forms Sum/CountRange must shortcut, all
// losslessly representing the same data.
func compressors() map[string]core.Scheme {
	return map[string]core.Scheme{
		"id":        scheme.ID{},
		"ns":        scheme.NS{},
		"rle+ns":    scheme.RLEComposite(),
		"rpe+ns":    scheme.RPEComposite(),
		"rle+delta": scheme.RLEDeltaComposite(),
		"delta+ns":  scheme.DeltaNS(),
		"for+ns":    scheme.FORComposite(64),
		"for+vns":   scheme.FORVNSComposite(64, 64),
		"dict+ns":   scheme.DictComposite(),
		"pfor":      scheme.PFOR{SegLen: 64},
		"mres-step": scheme.ModelResidual{Fitter: scheme.StepFitter{SegLen: 64}},
		"varint":    scheme.Varint{},
	}
}

func workload(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	v := int64(5000)
	for i := range out {
		if rng.Intn(4) == 0 {
			v += rng.Int63n(31) - 15
		}
		out[i] = v
	}
	// A few outliers so PFOR has patches.
	for i := 50; i < n; i += 997 {
		out[i] += 1 << 20
	}
	return out
}

func TestSumMatchesPlainScan(t *testing.T) {
	src := workload(1, 3000)
	want := vec.Sum(src)
	for name, s := range compressors() {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		got, err := Sum(f)
		if err != nil {
			t.Fatalf("%s: sum: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: Sum = %d, want %d", name, got, want)
		}
	}
}

func TestSumConst(t *testing.T) {
	f, err := scheme.Const{}.Compress([]int64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sum(f)
	if err != nil || got != 21 {
		t.Fatalf("const sum = %d, %v", got, err)
	}
}

func TestCountAndSelectRangeMatchPlainScan(t *testing.T) {
	src := workload(2, 2500)
	lo, hi := int64(4990), int64(5015)
	wantRows := vec.SelectRange(src, lo, hi)
	wantCount := int64(len(wantRows))
	for name, s := range compressors() {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		count, err := CountRange(f, lo, hi)
		if err != nil {
			t.Fatalf("%s: count: %v", name, err)
		}
		if count != wantCount {
			t.Errorf("%s: CountRange = %d, want %d", name, count, wantCount)
		}
		rows, err := SelectRange(f, lo, hi)
		if err != nil {
			t.Fatalf("%s: select: %v", name, err)
		}
		if !vec.Equal(rows, wantRows) {
			t.Errorf("%s: SelectRange differs (%d rows vs %d)", name, len(rows), len(wantRows))
		}
	}
}

func TestSelectRangeEmptyAndInverted(t *testing.T) {
	src := workload(3, 500)
	f, err := scheme.FORComposite(64).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := SelectRange(f, 10, 5)
	if err != nil || len(rows) != 0 {
		t.Fatalf("inverted range = %v, %v", rows, err)
	}
	count, err := CountRange(f, -100, -50)
	if err != nil || count != 0 {
		t.Fatalf("empty range count = %d, %v", count, err)
	}
}

func TestSelectRangePropertyAgainstScan(t *testing.T) {
	check := func(raw []uint16, rawLo, rawHi uint16) bool {
		src := make([]int64, len(raw))
		for i, r := range raw {
			src[i] = int64(r % 512)
		}
		lo, hi := int64(rawLo%512), int64(rawHi%512)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := vec.SelectRange(src, lo, hi)
		for _, s := range []core.Scheme{scheme.FORComposite(16), scheme.RLEComposite(), scheme.DictComposite()} {
			f, err := s.Compress(src)
			if err != nil {
				return false
			}
			got, err := SelectRange(f, lo, hi)
			if err != nil || !vec.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFORPruningStats(t *testing.T) {
	// A sorted column: almost all segments should classify as inside
	// or outside; only the two boundary segments decode.
	src := make([]int64, 64*100)
	for i := range src {
		src[i] = int64(i)
	}
	f, err := scheme.FORComposite(64).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	forForm := f // FORComposite returns the FOR form directly
	rows, st, err := SelectRangeFORWithStats(forForm, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != 1001 {
		t.Fatalf("rows = %d, want 1001", len(rows))
	}
	if st.DecodedSegments > 2 {
		t.Fatalf("decoded %d segments, want ≤ 2 (pruning broken)", st.DecodedSegments)
	}
	if st.Segments != 100 {
		t.Fatalf("segments = %d", st.Segments)
	}
}

func TestPointLookup(t *testing.T) {
	src := workload(4, 1200)
	for name, s := range compressors() {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		for _, row := range []int64{0, 1, 599, int64(len(src) - 1)} {
			got, err := PointLookup(f, row)
			if err != nil {
				t.Fatalf("%s: lookup %d: %v", name, row, err)
			}
			if got != src[row] {
				t.Errorf("%s: PointLookup(%d) = %d, want %d", name, row, got, src[row])
			}
		}
		if _, err := PointLookup(f, int64(len(src))); err == nil {
			t.Errorf("%s: out-of-range lookup accepted", name)
		}
		if _, err := PointLookup(f, -1); err == nil {
			t.Errorf("%s: negative lookup accepted", name)
		}
	}
}

func TestApproxSumBoundsContainTruth(t *testing.T) {
	src := workload(5, 4096)
	want := vec.Sum(src)
	for _, s := range []core.Scheme{
		scheme.FORComposite(128),
		scheme.FORVNSComposite(128, 128),
		scheme.ModelResidual{Fitter: scheme.StepFitter{SegLen: 128}},
	} {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := ApproxSum(f)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !iv.Contains(want) {
			t.Fatalf("%s: interval [%d, %d] misses true sum %d", s.Name(), iv.Lower, iv.Upper, want)
		}
		if iv.Width() == 0 {
			t.Fatalf("%s: interval should be approximate, not exact", s.Name())
		}
	}
	// Exact fallbacks collapse.
	f, err := scheme.NS{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ApproxSum(f)
	if err != nil || iv.Width() != 0 || iv.Lower != want {
		t.Fatalf("ns approx = %+v, %v", iv, err)
	}
}

func TestGradualSummerConvergence(t *testing.T) {
	src := workload(6, 64*64)
	want := vec.Sum(src)
	f, err := scheme.FORComposite(64).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGradualSummer(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Segments() != 64 {
		t.Fatalf("segments = %d", g.Segments())
	}
	prevWidth := g.Bounds().Width()
	if !g.Bounds().Contains(want) {
		t.Fatal("initial bounds miss truth")
	}
	for !g.Done() {
		if _, err := g.Refine(8); err != nil {
			t.Fatal(err)
		}
		iv := g.Bounds()
		if !iv.Contains(want) {
			t.Fatalf("bounds [%d,%d] miss truth %d after %d refinements",
				iv.Lower, iv.Upper, want, g.Refined())
		}
		if iv.Width() > prevWidth {
			t.Fatal("refinement widened the interval")
		}
		prevWidth = iv.Width()
	}
	iv := g.Bounds()
	if iv.Width() != 0 || iv.Lower != want {
		t.Fatalf("final interval [%d,%d], want exactly %d", iv.Lower, iv.Upper, want)
	}
	// Refining past the end is a no-op.
	n, err := g.Refine(3)
	if err != nil || n != 0 {
		t.Fatalf("over-refine = %d, %v", n, err)
	}
}

func TestGradualSummerWrongScheme(t *testing.T) {
	f, err := scheme.NS{}.Compress([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGradualSummer(f); err == nil {
		t.Fatal("gradual summer accepted NS form")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{10, 20}
	if iv.Estimate() != 15 || iv.Width() != 10 || !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) {
		t.Fatalf("interval helpers wrong: %+v", iv)
	}
}

// TestVNSWidth64NegativeRange pins the fully-negative-range shortcut:
// a zigzag=0 VNS form with a width-64 mini-block stores raw 64-bit
// patterns that reinterpret to negative values, so "negative range →
// no matches" must first clear the width check and fall back to the
// materializing path.
func TestVNSWidth64NegativeRange(t *testing.T) {
	neg5 := int64(-5)
	u := []uint64{uint64(neg5), 3}
	packed, err := bitpack.Pack(u, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := &core.Form{
		Scheme:   scheme.VNSName,
		N:        2,
		Params:   core.Params{"block": 2, "zigzag": 0},
		Children: map[string]*core.Form{"widths": scheme.NewIDForm([]int64{64})},
		Packed:   packed,
	}
	back, err := core.Decompress(f)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(back, []int64{-5, 3}) {
		t.Fatalf("decompress = %v, want [-5 3]", back)
	}
	n, err := CountRange(f, -10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("CountRange(-10,-1) = %d, want 1", n)
	}
	rows, err := SelectRange(f, -10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(rows, []int64{0}) {
		t.Fatalf("SelectRange(-10,-1) = %v, want [0]", rows)
	}
}

// TestFORVNSTruncatedWidths pins corruption handling on the fused
// FOR-over-VNS pruner: a widths child shorter than the block count
// must surface ErrCorruptForm (via the materializing fallback), not a
// silently truncated answer.
func TestFORVNSTruncatedWidths(t *testing.T) {
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i % 1000)
	}
	f, err := scheme.FORVNSComposite(64, 64).Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := f.Child("offsets")
	if err != nil {
		t.Fatal(err)
	}
	widths, err := offsets.Child("widths")
	if err != nil {
		t.Fatal(err)
	}
	widths.Leaf = widths.Leaf[:len(widths.Leaf)/2]
	widths.N = len(widths.Leaf)
	if _, err := CountRange(f, 100, 900); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("CountRange on truncated widths: err = %v, want ErrCorruptForm", err)
	}
	if _, err := SelectRange(f, 100, 900); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("SelectRange on truncated widths: err = %v, want ErrCorruptForm", err)
	}
}

// TestRLEOverrunningRuns pins corruption handling on the run-emitting
// scan arms: an RLE form whose runs overshoot N must return
// ErrCorruptForm from SelectRange/CountRange, not panic inside
// Selection.AddRun.
func TestRLEOverrunningRuns(t *testing.T) {
	f := &core.Form{
		Scheme: scheme.RLEName,
		N:      4,
		Children: map[string]*core.Form{
			"lengths": scheme.NewIDForm([]int64{200}),
			"values":  scheme.NewIDForm([]int64{7}),
		},
	}
	if _, err := SelectRange(f, 0, 100); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("SelectRange on overrunning runs: err = %v, want ErrCorruptForm", err)
	}
	if _, err := CountRange(f, 0, 100); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("CountRange on overrunning runs: err = %v, want ErrCorruptForm", err)
	}
}

// TestCorruptRunBoundsSharedTable is the shared corrupt-payload table
// for every consumer of RLE/RPE run bounds: the scalar decode path
// (core.Decompress) and the fused select and aggregate kernels
// (SelectRange, CountRange, Sum, SumRange) must all reject the same
// corrupt run sets with the same error class, core.ErrCorruptForm. A
// path that accepted a run set the others reject would let a corrupt
// block answer differently depending on which kernel the planner
// happened to pick.
func TestCorruptRunBoundsSharedTable(t *testing.T) {
	rle := func(lengths, values []int64, n int) *core.Form {
		return &core.Form{
			Scheme: scheme.RLEName,
			N:      n,
			Children: map[string]*core.Form{
				"lengths": scheme.NewIDForm(lengths),
				"values":  scheme.NewIDForm(values),
			},
		}
	}
	rpe := func(positions, values []int64, n int) *core.Form {
		return &core.Form{
			Scheme: scheme.RPEName,
			N:      n,
			Children: map[string]*core.Form{
				"positions": scheme.NewIDForm(positions),
				"values":    scheme.NewIDForm(values),
			},
		}
	}
	cases := []struct {
		name string
		f    *core.Form
	}{
		{"rle/overshoot", rle([]int64{3, 200}, []int64{1, 2}, 8)},
		{"rle/undershoot", rle([]int64{3, 2}, []int64{1, 2}, 8)},
		{"rle/negative-length", rle([]int64{10, -2}, []int64{1, 2}, 8)},
		{"rle/child-length-mismatch", rle([]int64{4, 4}, []int64{1}, 8)},
		{"rpe/decreasing", rpe([]int64{5, 3, 8}, []int64{1, 2, 3}, 8)},
		{"rpe/undershoot", rpe([]int64{3, 6}, []int64{1, 2}, 8)},
		{"rpe/overshoot", rpe([]int64{3, 200}, []int64{1, 2}, 8)},
		{"rpe/child-length-mismatch", rpe([]int64{3, 8}, []int64{1}, 8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := core.Decompress(tc.f); !errors.Is(err, core.ErrCorruptForm) {
				t.Errorf("Decompress: err = %v, want ErrCorruptForm", err)
			}
			if _, err := SelectRange(tc.f, 0, 100); !errors.Is(err, core.ErrCorruptForm) {
				t.Errorf("SelectRange: err = %v, want ErrCorruptForm", err)
			}
			if _, err := CountRange(tc.f, 0, 100); !errors.Is(err, core.ErrCorruptForm) {
				t.Errorf("CountRange: err = %v, want ErrCorruptForm", err)
			}
			if _, err := Sum(tc.f); !errors.Is(err, core.ErrCorruptForm) {
				t.Errorf("Sum: err = %v, want ErrCorruptForm", err)
			}
			if _, _, err := SumRange(tc.f, 0, 100); !errors.Is(err, core.ErrCorruptForm) {
				t.Errorf("SumRange: err = %v, want ErrCorruptForm", err)
			}
		})
	}
}
