package scheme

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

// This file implements core.IntoDecompressor for every scheme on the
// hot decode path. Each DecompressInto mirrors the scheme's
// Decompress but fills caller storage and borrows temporaries from a
// core.Scratch, so steady-state block decode performs zero heap
// allocations (asserted by the allocation-regression tests in the
// repository root). Cold codecs (varint, elias, poly) keep only the
// allocating path and go through core.DecompressInto's fallback.

// Compile-time checks that the hot schemes stay on the fast path.
var (
	_ core.IntoDecompressor = ID{}
	_ core.IntoDecompressor = Const{}
	_ core.IntoDecompressor = NS{}
	_ core.IntoDecompressor = VNS{}
	_ core.IntoDecompressor = FOR{}
	_ core.IntoDecompressor = Step{}
	_ core.IntoDecompressor = Delta{}
	_ core.IntoDecompressor = RLE{}
	_ core.IntoDecompressor = RPE{}
	_ core.IntoDecompressor = Plus{}
	_ core.IntoDecompressor = Dict{}
	_ core.IntoDecompressor = Patch{}
	_ core.IntoDecompressor = Linear{}
)

// DecompressInto implements core.IntoDecompressor: a copy.
func (ID) DecompressInto(f *core.Form, dst []int64, _ *core.Scratch) error {
	if err := checkID(f); err != nil {
		return err
	}
	copy(dst, f.Leaf)
	return nil
}

// DecompressInto implements core.IntoDecompressor: a fill.
func (Const) DecompressInto(f *core.Form, dst []int64, _ *core.Scratch) error {
	if err := checkConst(f); err != nil {
		return err
	}
	vec.ConstantInto(dst, f.Params["value"])
	return nil
}

// DecompressInto implements core.IntoDecompressor: unpack into a
// scratch word buffer, then widen into dst.
func (NS) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkNS(f); err != nil {
		return err
	}
	u := s.U64(f.N)
	defer s.PutU64(u)
	if err := bitpack.UnpackInto(u, f.Packed, uint(f.Params["width"])); err != nil {
		return fmt.Errorf("ns: %w", err)
	}
	if f.Params["zigzag"] == 1 {
		bitpack.UnzigzagInto(dst, u)
	} else {
		bitpack.SignedInto(dst, u)
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor: per-mini-block
// unpack at the recorded widths.
func (VNS) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkVNS(f); err != nil {
		return err
	}
	block := int(f.Params["block"])
	widths, err := core.ChildScratch(f, "widths", s)
	if err != nil {
		return err
	}
	defer s.PutI64(widths)
	u := s.U64(f.N)
	defer s.PutU64(u)
	wordPos := 0
	for bIdx := 0; bIdx*block < f.N; bIdx++ {
		lo := bIdx * block
		hi := lo + block
		if hi > f.N {
			hi = f.N
		}
		if bIdx >= len(widths) {
			return fmt.Errorf("%w: vns widths child exhausted at block %d", core.ErrCorruptForm, bIdx)
		}
		w := widths[bIdx]
		if w < 0 || w > 64 {
			return fmt.Errorf("%w: vns block %d declares width %d", core.ErrCorruptForm, bIdx, w)
		}
		need := bitpack.PackedWords(hi-lo, uint(w))
		if wordPos+need > len(f.Packed) {
			return fmt.Errorf("%w: vns payload exhausted at block %d", core.ErrCorruptForm, bIdx)
		}
		if err := bitpack.UnpackInto(u[lo:hi], f.Packed[wordPos:wordPos+need], uint(w)); err != nil {
			return fmt.Errorf("vns: block %d: %w", bIdx, err)
		}
		wordPos += need
	}
	if f.Params["zigzag"] == 1 {
		bitpack.UnzigzagInto(dst, u)
	} else {
		bitpack.SignedInto(dst, u)
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor: offsets decode
// straight into dst, then each segment's reference is added in place.
func (FOR) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkFOR(f); err != nil {
		return err
	}
	refs, err := core.ChildScratch(f, "refs", s)
	if err != nil {
		return err
	}
	defer s.PutI64(refs)
	if err := core.DecompressChildInto(f, "offsets", dst, s); err != nil {
		return err
	}
	addSegmentRefs(dst, refs, int(f.Params["seglen"]))
	return nil
}

// DecompressInto implements core.IntoDecompressor: replicate refs.
func (Step) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkStep(f); err != nil {
		return err
	}
	refs, err := core.ChildScratch(f, "refs", s)
	if err != nil {
		return err
	}
	defer s.PutI64(refs)
	vec.ConstantInto(dst, 0)
	addSegmentRefs(dst, refs, int(f.Params["seglen"]))
	return nil
}

// addSegmentRefs adds refs[i/segLen] to every element of dst.
func addSegmentRefs(dst, refs []int64, segLen int) {
	for seg := 0; seg*segLen < len(dst); seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(dst) {
			hi = len(dst)
		}
		ref := refs[seg]
		for i := lo; i < hi; i++ {
			dst[i] += ref
		}
	}
}

// DecompressInto implements core.IntoDecompressor: decode deltas into
// dst, then integrate in place.
func (Delta) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkDelta(f); err != nil {
		return err
	}
	if err := core.DecompressChildInto(f, "deltas", dst, s); err != nil {
		return err
	}
	_, err := vec.PrefixSumInclusiveInto(dst, dst)
	return err
}

// DecompressInto implements core.IntoDecompressor: run expansion into
// dst.
func (RLE) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkRLE(f); err != nil {
		return err
	}
	lengths, err := core.ChildScratch(f, "lengths", s)
	if err != nil {
		return err
	}
	defer s.PutI64(lengths)
	values, err := core.ChildScratch(f, "values", s)
	if err != nil {
		return err
	}
	defer s.PutI64(values)
	if _, err := vec.RunExpandInto(dst, values, lengths); err != nil {
		return fmt.Errorf("rle: %w", err)
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor: boundary expansion
// into dst.
func (RPE) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkRPE(f); err != nil {
		return err
	}
	positions, err := core.ChildScratch(f, "positions", s)
	if err != nil {
		return err
	}
	defer s.PutI64(positions)
	values, err := core.ChildScratch(f, "values", s)
	if err != nil {
		return err
	}
	defer s.PutI64(values)
	if _, err := vec.ExpandByBoundariesInto(dst, values, positions); err != nil {
		return fmt.Errorf("rpe: %w", err)
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor: model into dst,
// residual into scratch, summed in place.
func (Plus) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkPlus(f); err != nil {
		return err
	}
	if err := core.DecompressChildInto(f, "model", dst, s); err != nil {
		return err
	}
	residual, err := core.ChildScratch(f, "residual", s)
	if err != nil {
		return err
	}
	defer s.PutI64(residual)
	for i, r := range residual {
		dst[i] += r
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor. When the codes
// child is a plain NS leaf the generated gather kernels unpack each
// 64-code block and index the dictionary in the same pass; otherwise
// the codes decode into dst and the gather rewrites dst in place
// (reading dst[i] before writing it is safe element-wise).
func (Dict) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkDict(f); err != nil {
		return err
	}
	dict, err := core.ChildScratch(f, "dict", s)
	if err != nil {
		return err
	}
	defer s.PutI64(dict)
	codes, err := f.Child("codes")
	if err != nil {
		return err
	}
	if codes.Scheme == NSName && codes.Params["zigzag"] != 1 {
		if w := codes.Params["width"]; w >= 0 && w <= 32 && codes.N == f.N {
			if err := bitpack.GatherU(codes.Packed, 0, f.N, uint(w), dict, dst[:f.N]); err != nil {
				return fmt.Errorf("%w: dict gather: %v", core.ErrCorruptForm, err)
			}
			return nil
		}
	}
	if err := core.DecompressChildInto(f, "codes", dst, s); err != nil {
		return err
	}
	n := int64(len(dict))
	for i, c := range dst {
		if c < 0 || c >= n {
			return fmt.Errorf("%w: dict code %d out of range at position %d", core.ErrCorruptForm, c, i)
		}
		dst[i] = dict[c]
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor: base into dst,
// exceptions scattered over it.
func (Patch) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkPatch(f); err != nil {
		return err
	}
	if err := core.DecompressChildInto(f, "base", dst, s); err != nil {
		return err
	}
	positions, err := core.ChildScratch(f, "positions", s)
	if err != nil {
		return err
	}
	defer s.PutI64(positions)
	values, err := core.ChildScratch(f, "values", s)
	if err != nil {
		return err
	}
	defer s.PutI64(values)
	if _, err := vec.ScatterInto(dst, values, positions); err != nil {
		return fmt.Errorf("patch: %w", err)
	}
	return nil
}

// DecompressInto implements core.IntoDecompressor: per-segment line
// evaluation into dst.
func (Linear) DecompressInto(f *core.Form, dst []int64, s *core.Scratch) error {
	if err := checkLinear(f); err != nil {
		return err
	}
	segLen := int(f.Params["seglen"])
	frac := uint(f.Params["frac"])
	bases, err := core.ChildScratch(f, "bases", s)
	if err != nil {
		return err
	}
	defer s.PutI64(bases)
	slopes, err := core.ChildScratch(f, "slopes", s)
	if err != nil {
		return err
	}
	defer s.PutI64(slopes)
	for seg := 0; seg*segLen < f.N; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > f.N {
			hi = f.N
		}
		base, slope := bases[seg], slopes[seg]
		for i := lo; i < hi; i++ {
			dst[i] = LinearPredict(base, slope, i-lo, frac)
		}
	}
	return nil
}
