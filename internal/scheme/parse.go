package scheme

import (
	"fmt"
	"strconv"
	"strings"

	"lwcomp/internal/core"
)

// Parse builds a (possibly composite) scheme from an expression in
// the same syntax Form.Describe emits:
//
//	expr    := name [ '[' int ']' ] [ '(' child '=' expr { ',' child '=' expr } ')' ]
//	name    := registered scheme name, or "pfor" / "stepns" / "linearns"
//
// The optional bracket argument sets the scheme's main tuning knob
// (segment length for for/pfor/step/linear, block length for vns).
// Examples:
//
//	ns
//	for[1024](offsets=ns, refs=ns)
//	rle(lengths=ns, values=delta(deltas=vns[32]))
//	pfor[1024]
func Parse(expr string) (core.Scheme, error) {
	p := &parser{src: expr}
	s, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("scheme: trailing input at %d in %q", p.pos, expr)
	}
	return s, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("scheme: expected identifier at %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expr() (core.Scheme, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	arg := 0
	hasArg := false
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '[' {
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], ']')
		if end < 0 {
			return nil, fmt.Errorf("scheme: unterminated '[' at %d", p.pos-1)
		}
		v, err := strconv.Atoi(strings.TrimSpace(p.src[p.pos : p.pos+end]))
		if err != nil {
			return nil, fmt.Errorf("scheme: bad argument %q: %v", p.src[p.pos:p.pos+end], err)
		}
		arg = v
		hasArg = true
		p.pos += end + 1
	}
	base, err := ByName(name, arg, hasArg)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return base, nil
	}
	p.pos++
	inner := map[string]core.Scheme{}
	for {
		child, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '=' {
			return nil, fmt.Errorf("scheme: expected '=' after child %q at %d", child, p.pos)
		}
		p.pos++
		sub, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, dup := inner[child]; dup {
			return nil, fmt.Errorf("scheme: duplicate child %q", child)
		}
		inner[child] = sub
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return nil, fmt.Errorf("scheme: expected ')' at %d in %q", p.pos, p.src)
	}
	p.pos++
	return core.Compose(base, inner), nil
}

// ByName constructs a scheme by name with an optional integer tuning
// argument (segment length or block length, depending on the scheme).
func ByName(name string, arg int, hasArg bool) (core.Scheme, error) {
	argOr := func(def int) int {
		if hasArg {
			return arg
		}
		return def
	}
	switch name {
	case IDName:
		return ID{}, nil
	case ConstName:
		return Const{}, nil
	case NSName:
		return NS{}, nil
	case VarintName:
		return Varint{}, nil
	case EliasName:
		return Elias{}, nil
	case VNSName:
		return VNS{Block: argOr(0)}, nil
	case DeltaName:
		return Delta{}, nil
	case RLEName:
		return RLE{}, nil
	case RPEName:
		return RPE{}, nil
	case FORName:
		return FOR{SegLen: argOr(0)}, nil
	case StepName:
		return Step{SegLen: argOr(0)}, nil
	case LinearName:
		return Linear{SegLen: argOr(0)}, nil
	case DictName:
		return Dict{}, nil
	case Poly2Name:
		return Poly2{SegLen: argOr(0)}, nil
	case "pfor":
		return PFOR{SegLen: argOr(0)}, nil
	case "stepns":
		return ModelResidual{Fitter: StepFitter{SegLen: argOr(0)}}, nil
	case "linearns":
		return ModelResidual{Fitter: LinearFitter{SegLen: argOr(0)}}, nil
	case "poly2ns":
		return ModelResidual{Fitter: Poly2Fitter{SegLen: argOr(0)}}, nil
	case "plinearns":
		return PatchedModel{Fitter: LinearFitter{SegLen: argOr(0)}}, nil
	case PlusName, PatchName:
		return nil, fmt.Errorf("scheme: %q has no free-standing compressor (use stepns/linearns/pfor)", name)
	}
	return nil, fmt.Errorf("%w: %q", core.ErrUnknownScheme, name)
}
