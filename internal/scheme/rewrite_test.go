package scheme

import (
	"testing"
	"testing/quick"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

// runnyColumn returns a column with run structure for the RLE
// identities.
func runnyColumn(n int) []int64 {
	out := make([]int64, n)
	v := int64(50)
	for i := range out {
		if i%7 == 0 {
			v += int64(i % 3)
		}
		out[i] = v
	}
	return out
}

// TestDecomposeRLEIdentity verifies the paper's §II-A identity
// RLE ≡ (ID, DELTA) ∘ RPE: the decomposed form decompresses to the
// same column, and — because the rewrite is structural — shares its
// payload bits with the original.
func TestDecomposeRLEIdentity(t *testing.T) {
	src := runnyColumn(500)
	rleForm, err := RLE{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	rpeForm, err := DecomposeRLE(rleForm)
	if err != nil {
		t.Fatal(err)
	}
	if rpeForm.Scheme != RPEName {
		t.Fatalf("decomposed scheme = %q", rpeForm.Scheme)
	}
	if rpeForm.Children["positions"].Scheme != DeltaName {
		t.Fatalf("positions child = %q, want delta", rpeForm.Children["positions"].Scheme)
	}
	got, err := core.Decompress(rpeForm)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got, src) {
		t.Fatal("decomposed form decompresses differently")
	}
	// Structural rewrite: payloads are shared, so sizes differ only
	// by the extra form headers of the two added nodes.
	if rpeForm.PayloadBits() < rleForm.PayloadBits() {
		t.Fatal("decomposition lost payload bits")
	}
}

func TestRecomposeRLEStructuralInverse(t *testing.T) {
	src := runnyColumn(300)
	rleForm, err := RLE{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	rpeForm, err := DecomposeRLE(rleForm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RecomposeRLE(rpeForm)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheme != RLEName {
		t.Fatalf("recomposed scheme = %q", back.Scheme)
	}
	got, err := core.Decompress(back)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("recomposed roundtrip: %v", err)
	}
	// The lengths payload must be the very same column.
	origLengths, _ := core.DecompressChild(rleForm, "lengths")
	backLengths, _ := core.DecompressChild(back, "lengths")
	if !vec.Equal(origLengths, backLengths) {
		t.Fatal("recomposition altered lengths")
	}
}

func TestRecomposeRLEFromPureRPE(t *testing.T) {
	// An RPE form compressed directly (positions as a pure column)
	// recomposes numerically.
	src := runnyColumn(200)
	rpeForm, err := RPE{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RecomposeRLE(rpeForm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(back)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("numeric recomposition roundtrip: %v", err)
	}
}

func TestPartialDecompressRLE(t *testing.T) {
	src := runnyColumn(400)
	rleForm, err := RLEComposite().Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	rpeForm, err := PartialDecompressRLE(rleForm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(rpeForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("partial decompression roundtrip: %v", err)
	}
	// The partially decompressed form must be larger (positions are
	// materialized raw) — the paper's ratio-for-ease trade.
	if rpeForm.PayloadBits() <= rleForm.PayloadBits() {
		t.Fatalf("partial decompression should cost bits: rle %d, rpe %d",
			rleForm.PayloadBits(), rpeForm.PayloadBits())
	}
	// But its decompression cost must not exceed RLE's (one less
	// prefix sum plus no NS unpack of lengths).
	rleCost, err := core.DecompressionCost(rleForm)
	if err != nil {
		t.Fatal(err)
	}
	rpeCost, err := core.DecompressionCost(rpeForm)
	if err != nil {
		t.Fatal(err)
	}
	if rpeCost > rleCost {
		t.Fatalf("partial decompression should not cost more to decompress: rle %.1f, rpe %.1f",
			rleCost, rpeCost)
	}
}

// TestDecomposeFORIdentity verifies FOR ≡ (STEPFUNCTION + NS).
func TestDecomposeFORIdentity(t *testing.T) {
	src := make([]int64, 500)
	v := int64(10000)
	for i := range src {
		v += int64(i%17) - 8
		src[i] = v
	}
	forForm, err := FORComposite(64).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	plusForm, err := DecomposeFOR(forForm)
	if err != nil {
		t.Fatal(err)
	}
	if plusForm.Scheme != PlusName {
		t.Fatalf("decomposed scheme = %q", plusForm.Scheme)
	}
	model, _ := plusForm.Child("model")
	if model.Scheme != StepName {
		t.Fatalf("model child = %q", model.Scheme)
	}
	residual, _ := plusForm.Child("residual")
	if residual.Scheme != NSName {
		t.Fatalf("residual child = %q (offsets were NS-composed)", residual.Scheme)
	}
	got, err := core.Decompress(plusForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("decomposed FOR roundtrip: %v", err)
	}
}

func TestRecomposeFORInverse(t *testing.T) {
	src := make([]int64, 300)
	for i := range src {
		src[i] = int64(1000 + i%50)
	}
	forForm, err := FOR{SegLen: 32}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	plusForm, err := DecomposeFOR(forForm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RecomposeFOR(plusForm)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheme != FORName {
		t.Fatalf("recomposed scheme = %q", back.Scheme)
	}
	if back.Params["seglen"] != 32 {
		t.Fatalf("seglen = %d", back.Params["seglen"])
	}
	got, err := core.Decompress(back)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("recomposed FOR roundtrip: %v", err)
	}
}

func TestRewriteIdentityProperty(t *testing.T) {
	check := func(raw []uint8) bool {
		src := make([]int64, len(raw)+1)
		for i, r := range raw {
			src[i] = int64(r % 4)
		}
		rleForm, err := RLE{}.Compress(src)
		if err != nil {
			return false
		}
		rpeForm, err := DecomposeRLE(rleForm)
		if err != nil {
			return false
		}
		a, err := core.Decompress(rpeForm)
		if err != nil {
			return false
		}
		forForm, err := FOR{SegLen: 8}.Compress(src)
		if err != nil {
			return false
		}
		plusForm, err := DecomposeFOR(forForm)
		if err != nil {
			return false
		}
		b, err := core.Decompress(plusForm)
		if err != nil {
			return false
		}
		return vec.Equal(a, src) && vec.Equal(b, src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteWrongSchemeRejected(t *testing.T) {
	idForm := NewIDForm([]int64{1})
	if _, err := DecomposeRLE(idForm); err == nil {
		t.Fatal("DecomposeRLE accepted id form")
	}
	if _, err := RecomposeRLE(idForm); err == nil {
		t.Fatal("RecomposeRLE accepted id form")
	}
	if _, err := DecomposeFOR(idForm); err == nil {
		t.Fatal("DecomposeFOR accepted id form")
	}
	if _, err := RecomposeFOR(idForm); err == nil {
		t.Fatal("RecomposeFOR accepted id form")
	}
	if _, err := PartialDecompressRLE(idForm); err == nil {
		t.Fatal("PartialDecompressRLE accepted id form")
	}
	// RecomposeFOR requires a STEP model.
	plus, err := NewPlusForm(NewIDForm([]int64{1}), NewIDForm([]int64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecomposeFOR(plus); err == nil {
		t.Fatal("RecomposeFOR accepted non-step model")
	}
}
