package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// PlusName is the registry name of the sum-of-schemes combinator.
const PlusName = "plus"

// Plus is the "+" of the paper's identity FOR ≡ (STEPFUNCTION + NS):
// the represented column is the element-wise sum of two compressed
// columns — typically a coarse model ("a simpler, coarser, inaccurate
// representation of the data") and a residual ("finer, local,
// noise-like complementary features", Lessons 2).
//
// Plus has no free-standing Compress: splitting a column into model
// plus residual requires choosing a model, which is the job of the
// fitters (ModelResidual). Decompression, by contrast, is entirely
// generic.
//
// Form layout: Children{"model", "residual"}, both of length N.
type Plus struct{}

// Name implements core.Scheme.
func (Plus) Name() string { return PlusName }

// Compress reports that Plus needs a fitter.
func (Plus) Compress([]int64) (*core.Form, error) {
	return nil, fmt.Errorf("%w: plus scheme has no canonical split; use a ModelResidual fitter",
		core.ErrNotRepresentable)
}

// NewPlusForm builds the canonical PLUS form over two child forms.
func NewPlusForm(model, residual *core.Form) (*core.Form, error) {
	if model.N != residual.N {
		return nil, fmt.Errorf("%w: plus children differ in length: model %d, residual %d",
			core.ErrCorruptForm, model.N, residual.N)
	}
	return &core.Form{
		Scheme:   PlusName,
		N:        model.N,
		Children: map[string]*core.Form{"model": model, "residual": residual},
	}, nil
}

// Decompress sums the two children element-wise.
func (Plus) Decompress(f *core.Form) ([]int64, error) {
	if err := checkPlus(f); err != nil {
		return nil, err
	}
	model, err := core.DecompressChild(f, "model")
	if err != nil {
		return nil, err
	}
	residual, err := core.DecompressChild(f, "residual")
	if err != nil {
		return nil, err
	}
	out, err := vec.Elementwise(vec.Add, model, residual)
	if err != nil {
		return nil, fmt.Errorf("plus: %w", err)
	}
	return out, nil
}

// Plan implements core.Planner: a single element-wise addition — the
// final line of Algorithm 2, isolated.
func (Plus) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkPlus(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	model := b.Input("model")
	residual := b.Input("residual")
	b.Elementwise(vec.Add, model, residual)
	return b.Build()
}

// ValidateForm implements core.Validator.
func (Plus) ValidateForm(f *core.Form) error { return checkPlus(f) }

// DecompressCostPerElement implements core.Coster: one addition.
func (Plus) DecompressCostPerElement(*core.Form) float64 { return 1.0 }

func checkPlus(f *core.Form) error {
	if f.Scheme != PlusName {
		return fmt.Errorf("%w: plus scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	m, err := f.Child("model")
	if err != nil {
		return err
	}
	r, err := f.Child("residual")
	if err != nil {
		return err
	}
	if m.N != f.N || r.N != f.N {
		return fmt.Errorf("%w: plus form declares %d values, children declare %d and %d",
			core.ErrCorruptForm, f.N, m.N, r.N)
	}
	return nil
}
