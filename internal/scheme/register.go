package scheme

import (
	"lwcomp/internal/core"
)

// All registered schemes, in registration order. Registration happens
// in init (the database/sql driver convention): importing this
// package makes every scheme resolvable by name, which the recursive
// Decompress dispatcher requires.
func init() {
	core.Register(ID{})
	core.Register(Const{})
	core.Register(NS{})
	core.Register(Varint{})
	core.Register(Elias{})
	core.Register(VNS{})
	core.Register(Delta{})
	core.Register(RLE{})
	core.Register(RPE{})
	core.Register(FOR{})
	core.Register(Step{})
	core.Register(Linear{})
	core.Register(Plus{})
	core.Register(Patch{})
	core.Register(Dict{})
	core.Register(Poly2{})
}

// NSLeaf is the conventional terminal compressor for constituent
// columns.
var NSLeaf core.Scheme = NS{}

// RLEComposite returns the standard practical RLE pipeline: RLE with
// both constituent columns null-suppressed.
func RLEComposite() core.Scheme {
	return core.Compose(RLE{}, map[string]core.Scheme{
		"lengths": NS{},
		"values":  NS{},
	})
}

// RLEDeltaComposite returns the paper's §I motivating composition:
// RLE over the column, DELTA over the run values, NS at the leaves.
func RLEDeltaComposite() core.Scheme {
	return core.Compose(RLE{}, map[string]core.Scheme{
		"lengths": NS{},
		"values": core.Compose(Delta{}, map[string]core.Scheme{
			"deltas": NS{},
		}),
	})
}

// RLEDeltaVNSComposite refines RLEDeltaComposite with the paper's
// §II-B variable-width extension on the deltas: the first delta of a
// DELTA form is the absolute first value, which under plain NS forces
// the full column width onto every tiny delta. Mini-block NS confines
// that cost to one block — composition fixing composition.
func RLEDeltaVNSComposite() core.Scheme {
	return core.Compose(RLE{}, map[string]core.Scheme{
		"lengths": NS{},
		"values": core.Compose(Delta{}, map[string]core.Scheme{
			"deltas": VNS{Block: 32},
		}),
	})
}

// RPEComposite returns RPE with NS'd constituent columns.
func RPEComposite() core.Scheme {
	return core.Compose(RPE{}, map[string]core.Scheme{
		"positions": NS{},
		"values":    NS{},
	})
}

// DeltaNS returns DELTA with NS'd deltas.
func DeltaNS() core.Scheme {
	return core.Compose(Delta{}, map[string]core.Scheme{"deltas": NS{}})
}

// FORComposite returns FOR at the given segment length with NS'd
// refs and offsets.
func FORComposite(segLen int) core.Scheme {
	return core.Compose(FOR{SegLen: segLen}, map[string]core.Scheme{
		"refs":    NS{},
		"offsets": NS{},
	})
}

// FORVNSComposite returns FOR with variable-width (mini-block NS)
// offsets — the paper's variable-width extension applied to FOR.
func FORVNSComposite(segLen, block int) core.Scheme {
	return core.Compose(FOR{SegLen: segLen}, map[string]core.Scheme{
		"refs":    NS{},
		"offsets": VNS{Block: block},
	})
}

// DictComposite returns DICT with NS'd codes.
func DictComposite() core.Scheme {
	return core.Compose(Dict{}, map[string]core.Scheme{
		"codes": NS{},
		"dict":  NS{},
	})
}

// LinearNS returns the piecewise-linear model with NS residuals at
// the given segment length.
func LinearNS(segLen int) core.Scheme {
	return ModelResidual{
		Fitter:   LinearFitter{SegLen: segLen},
		Residual: NS{},
	}
}

// DefaultCandidates returns the composite-scheme space the analyzer
// searches for a column with the given statistics. The list is
// stats-pruned: candidates that cannot possibly win (RLE on run-free
// data, DICT on near-unique data) are omitted so analysis stays
// cheap, which is how a practical optimizer would consume the paper's
// richer scheme space. Every returned candidate carries its scheme,
// so the analyzer can rank it by estimated size (core.SizeEstimator)
// and trial-compress only the top few.
func DefaultCandidates(st *core.BlockStats) []core.Candidate {
	cands := []core.Candidate{
		core.FromScheme(NS{}),
		core.FromScheme(Varint{}),
		core.FromScheme(Elias{}),
		core.FromScheme(VNS{}),
		core.FromScheme(DeltaNS()),
		core.FromScheme(FORComposite(128)),
		core.FromScheme(FORComposite(1024)),
		core.FromScheme(PFOR{SegLen: 1024}),
		core.FromScheme(LinearNS(1024)),
	}
	if st.N > 0 && st.Runs == 1 {
		// Constant column: CONST wins outright.
		cands = append([]core.Candidate{core.FromScheme(Const{})}, cands...)
	}
	if st.AvgRunLength() >= 2 {
		cands = append(cands,
			core.FromScheme(RLEComposite()),
			core.FromScheme(RLEDeltaComposite()),
			core.FromScheme(RLEDeltaVNSComposite()),
			core.FromScheme(RPEComposite()),
		)
	}
	if !st.DistinctSaturated() && st.Distinct <= st.N/4 {
		cands = append(cands, core.FromScheme(DictComposite()))
		if st.AvgRunLength() >= 1.15 {
			// RLE over the code column can only pay when the values
			// (and hence the codes) actually run: break-even sits at
			// 1 + lengthsWidth/codeWidth ≈ 1.15 for wide code
			// columns. The gate only trims run-free data, where the
			// trial would be pure waste; near the break-even the
			// estimate ranking decides.
			cands = append(cands, core.FromScheme(core.Compose(Dict{}, map[string]core.Scheme{
				"codes": core.Compose(RLE{}, map[string]core.Scheme{
					"lengths": NS{},
					"values":  NS{},
				}),
				"dict": NS{},
			})))
		}
	}
	return cands
}

// AllCandidates returns the unpruned candidate space (used by tests
// and the exhaustive analyzer mode).
func AllCandidates() []core.Candidate {
	return []core.Candidate{
		core.FromScheme(Const{}),
		core.FromScheme(NS{}),
		core.FromScheme(Varint{}),
		core.FromScheme(Elias{}),
		core.FromScheme(VNS{}),
		core.FromScheme(DeltaNS()),
		core.FromScheme(FORComposite(128)),
		core.FromScheme(FORComposite(1024)),
		core.FromScheme(FORVNSComposite(1024, 128)),
		core.FromScheme(PFOR{SegLen: 1024}),
		core.FromScheme(LinearNS(1024)),
		core.FromScheme(ModelResidual{Fitter: Poly2Fitter{SegLen: 1024}}),
		core.FromScheme(PatchedModel{Fitter: LinearFitter{SegLen: 1024}}),
		core.FromScheme(RLEComposite()),
		core.FromScheme(RLEDeltaComposite()),
		core.FromScheme(RLEDeltaVNSComposite()),
		core.FromScheme(RPEComposite()),
		core.FromScheme(DictComposite()),
	}
}
