package scheme

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// VarintName is the registry name of the varint scheme.
const VarintName = "varint"

// Varint encodes each element as a LEB128 varint — the byte-granular
// realization of the paper's variable-width extension (§II-B's bit
// metric, rounded up to 7-bit groups). Non-negative columns skip the
// zigzag step.
//
// Form layout: Params{"unsigned"}; Bytes holds the varint stream.
type Varint struct{}

// Name implements core.Scheme.
func (Varint) Name() string { return VarintName }

// Compress varint-encodes src.
func (Varint) Compress(src []int64) (*core.Form, error) {
	unsigned := int64(1)
	for _, v := range src {
		if v < 0 {
			unsigned = 0
			break
		}
	}
	var payload []byte
	if unsigned == 1 {
		p, err := bitpack.VarintEncodeUnsigned(src)
		if err != nil {
			return nil, fmt.Errorf("varint: %w", err)
		}
		payload = p
	} else {
		payload = bitpack.VarintEncode(src)
	}
	return &core.Form{
		Scheme: VarintName,
		N:      len(src),
		Params: core.Params{"unsigned": unsigned},
		Bytes:  payload,
	}, nil
}

// Decompress decodes the varint stream.
func (Varint) Decompress(f *core.Form) ([]int64, error) {
	if err := checkVarint(f); err != nil {
		return nil, err
	}
	if f.Params["unsigned"] == 1 {
		out, err := bitpack.VarintDecodeUnsigned(f.Bytes, f.N)
		if err != nil {
			return nil, fmt.Errorf("varint: %w", err)
		}
		return out, nil
	}
	out, err := bitpack.VarintDecode(f.Bytes, f.N)
	if err != nil {
		return nil, fmt.Errorf("varint: %w", err)
	}
	return out, nil
}

// ValidateForm implements core.Validator.
func (Varint) ValidateForm(f *core.Form) error { return checkVarint(f) }

// DecompressCostPerElement implements core.Coster: per-byte branching
// makes varints the most expensive terminal codec.
func (Varint) DecompressCostPerElement(*core.Form) float64 { return 3.0 }

// EstimateSize implements core.SizeEstimator, exactly: a LEB128
// varint of a value of unsigned width w costs max(1, ⌈w/7⌉) bytes,
// so the byte total follows from the width histogram (shifted out of
// the zigzag domain when the column is non-negative, matching the
// compressor's unsigned mode).
func (Varint) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax || !st.HasValueHist {
		return 0, false
	}
	hist := st.ValueHist
	if st.Min >= 0 {
		hist = hist.RawFromZigzag()
	}
	var total uint64
	for w := 0; w <= 64; w++ {
		c := hist.Counts[w]
		if c == 0 {
			continue
		}
		b := uint64((w + 6) / 7)
		if b == 0 {
			b = 1
		}
		total += uint64(c) * b
	}
	return core.FormOverheadBits(1) + total*8, true
}

func checkVarint(f *core.Form) error {
	if f.Scheme != VarintName {
		return fmt.Errorf("%w: varint scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	u, err := f.Params.Get(VarintName, "unsigned")
	if err != nil {
		return err
	}
	if u != 0 && u != 1 {
		return fmt.Errorf("%w: varint unsigned flag %d", core.ErrCorruptForm, u)
	}
	if f.N > 0 && len(f.Bytes) == 0 {
		return fmt.Errorf("%w: varint form declares %d values with empty payload", core.ErrCorruptForm, f.N)
	}
	if len(f.Children) != 0 {
		return fmt.Errorf("%w: varint form has children", core.ErrCorruptForm)
	}
	return nil
}

// EliasName is the registry name of the Elias-coded scheme.
const EliasName = "elias"

// Elias encodes each element with an Elias delta code after zigzag —
// the bit-granular realization of the paper's bit metric
// d(x,y) = ⌈log2|x−y|+1⌉: each element costs roughly its own width
// plus a logarithmic delimiter.
//
// Form layout: no params; Packed holds the bit stream.
type Elias struct{}

// Name implements core.Scheme.
func (Elias) Name() string { return EliasName }

// Compress Elias-delta-encodes the zigzagged elements.
func (Elias) Compress(src []int64) (*core.Form, error) {
	zz := make([]int64, len(src))
	for i, v := range src {
		zz[i] = int64(bitpack.Zigzag(v))
		if zz[i] < 0 {
			return nil, fmt.Errorf("%w: elias cannot encode |value| ≥ 2^62 at position %d", core.ErrNotRepresentable, i)
		}
	}
	words, err := bitpack.EliasDeltaEncode(zz)
	if err != nil {
		return nil, fmt.Errorf("elias: %w", err)
	}
	return &core.Form{Scheme: EliasName, N: len(src), Packed: words}, nil
}

// Decompress decodes the Elias stream.
func (Elias) Decompress(f *core.Form) ([]int64, error) {
	if f.Scheme != EliasName {
		return nil, fmt.Errorf("%w: elias scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	zz, err := bitpack.EliasDeltaDecode(f.Packed, f.N)
	if err != nil {
		return nil, fmt.Errorf("elias: %w", err)
	}
	out := make([]int64, f.N)
	for i, v := range zz {
		out[i] = bitpack.Unzigzag(uint64(v))
	}
	return out, nil
}

// DecompressCostPerElement implements core.Coster: bit-serial
// decoding is the slowest route of all.
func (Elias) DecompressCostPerElement(*core.Form) float64 { return 6.0 }

// EstimateSize implements core.SizeEstimator, bounded: an Elias
// delta code of a zigzagged value of width w costs about
// w + 2⌊log₂w⌋ bits (the +1 offset the encoder applies can nudge a
// value into the next width class, so the per-class cost is
// approximate).
func (Elias) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasValueHist {
		return 0, false
	}
	var total uint64
	for w := 0; w <= 64; w++ {
		c := st.ValueHist.Counts[w]
		if c == 0 {
			continue
		}
		l := uint64(w)
		if l < 1 {
			l = 1
		}
		ll := uint64(bitpack.Width(l))
		total += uint64(c) * (l + 2*ll - 2)
	}
	words := (total + 63) / 64
	return core.FormOverheadBits(0) + words*64, false
}
