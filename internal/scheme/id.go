package scheme

import (
	"fmt"

	"lwcomp/internal/core"
)

// IDName is the registry name of the identity scheme — the paper's
// "compression scheme of not applying any compression", the unit of
// the composition algebra.
const IDName = "id"

// ID is the identity scheme. Form layout: Leaf holds the raw column.
type ID struct{}

// Name implements core.Scheme.
func (ID) Name() string { return IDName }

// Compress wraps src (copied) in an ID form.
func (ID) Compress(src []int64) (*core.Form, error) {
	return NewIDForm(src), nil
}

// Decompress returns the leaf payload.
func (ID) Decompress(f *core.Form) ([]int64, error) {
	if err := checkID(f); err != nil {
		return nil, err
	}
	out := make([]int64, len(f.Leaf))
	copy(out, f.Leaf)
	return out, nil
}

// ValidateForm implements core.Validator.
func (ID) ValidateForm(f *core.Form) error { return checkID(f) }

// DecompressCostPerElement implements core.Coster: a plain copy.
func (ID) DecompressCostPerElement(*core.Form) float64 { return 1.0 }

// EstimateSize implements core.SizeEstimator, exactly: raw storage
// costs 64 bits per value plus the node header.
func (ID) EstimateSize(st *core.BlockStats) (uint64, bool) {
	return leafBits(st.N), true
}

func checkID(f *core.Form) error {
	if f.Scheme != IDName {
		return fmt.Errorf("%w: id scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	if len(f.Leaf) != f.N {
		return fmt.Errorf("%w: id form declares %d values, leaf holds %d", core.ErrCorruptForm, f.N, len(f.Leaf))
	}
	if len(f.Children) != 0 {
		return fmt.Errorf("%w: id form has children", core.ErrCorruptForm)
	}
	return nil
}

// NewIDForm builds the canonical ID form over a copy of src. Every
// scheme in this package emits its constituent columns as ID forms;
// the Composite combinator then substitutes deeper forms.
func NewIDForm(src []int64) *core.Form {
	leaf := make([]int64, len(src))
	copy(leaf, src)
	return &core.Form{Scheme: IDName, N: len(src), Leaf: leaf}
}
