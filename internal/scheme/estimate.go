package scheme

import (
	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// This file holds the shared helpers of the size-estimation hooks
// (core.SizeEstimator / core.ConstituentStatser). Each scheme's
// EstimateSize or ConstituentStats lives next to the scheme itself;
// the discipline they share is that every estimate targets the same
// analytic size model as core.Form.PayloadBits, so an exact-flagged
// estimate equals the bits the compressed form will actually report.

// Compile-time checks: the terminal codecs predict their own size,
// the decomposable schemes predict their constituents (giving every
// composite over them an estimate for free), and the model/patch
// combinators carry bounded estimators.
var (
	_ core.SizeEstimator = ID{}
	_ core.SizeEstimator = Const{}
	_ core.SizeEstimator = NS{}
	_ core.SizeEstimator = Varint{}
	_ core.SizeEstimator = Elias{}
	_ core.SizeEstimator = VNS{}
	_ core.SizeEstimator = PFOR{}
	_ core.SizeEstimator = ModelResidual{}
	_ core.SizeEstimator = PatchedModel{}

	_ core.ConstituentStatser = RLE{}
	_ core.ConstituentStatser = RPE{}
	_ core.ConstituentStatser = Delta{}
	_ core.ConstituentStatser = FOR{}
	_ core.ConstituentStatser = Dict{}
)

// nsFormBits is the exact analytic size of an NS form over n values
// packed at width w: node overhead (two params) plus whole payload
// words.
func nsFormBits(n int, w uint) uint64 {
	return core.FormOverheadBits(2) + uint64(bitpack.PackedWords(n, w))*64
}

// leafBits is the exact analytic size of an ID leaf over n values.
func leafBits(n int) uint64 {
	return core.FormOverheadBits(0) + uint64(n)*64
}

// nsWidthMinMax returns the width NS would pack a column with the
// given extremes at, delegating to the single source of truth for
// the zigzag-decision-plus-endpoint-width rule (BlockStats.NSShape).
func nsWidthMinMax(n int, minV, maxV int64) uint {
	st := core.BlockStats{N: n, Min: minV, Max: maxV, HasMinMax: true}
	w, _ := st.NSShape()
	return w
}

// widthMaxValue returns the largest non-negative value of the given
// bit width, for deriving Min/Max bounds from a width estimate.
func widthMaxValue(w uint) int64 {
	if w >= 63 {
		return 1<<63 - 1
	}
	return int64(bitpack.Mask(w))
}
