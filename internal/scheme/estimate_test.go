package scheme

import (
	"errors"
	"fmt"
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/workload"
)

// estimateWorkload builds one of the characteristic test columns from
// fuzz-controllable parameters.
func estimateWorkload(kind uint8, n int, param uint8, seed int64) []int64 {
	if n < 1 {
		n = 1
	}
	switch kind % 10 {
	case 0:
		return workload.OrderShipDates(n, float64(param%100)+1, 730120, seed)
	case 1:
		return workload.RandomWalk(n, int64(param%50)+1, 1<<30, seed)
	case 2:
		return workload.OutlierWalk(n, int64(param%20)+1, 0.01, 1<<38, seed)
	case 3:
		return workload.TrendNoise(n, float64(param%16)+0.5, int64(param%32)+1, seed)
	case 4:
		return workload.LowCardinality(n, int(param%60)+2, seed)
	case 5:
		return workload.SkewedMagnitude(n, uint(param%50)+4, seed)
	case 6:
		return workload.UniformBits(n, uint(param%40), seed)
	case 7:
		return workload.Sorted(n, 1<<40, seed)
	case 8:
		return workload.Runs(n, float64(param%200)+1, 1<<16, seed)
	default:
		return workload.StepData(n, int(param%12)*128+128, seed)
	}
}

// checkExactEstimates asserts, for every candidate whose estimate is
// flagged exact, that the estimate equals the actual encoded size
// (and that ImpossibleBits candidates really fail).
func checkExactEstimates(t *testing.T, data []int64, st *core.BlockStats) {
	t.Helper()
	for _, c := range DefaultCandidates(st) {
		if c.Scheme == nil {
			continue
		}
		bits, exact, ok := core.EstimateOf(c.Scheme, st)
		if !ok || !exact {
			continue
		}
		if bits == core.ImpossibleBits {
			if _, err := c.Compress(data); err == nil {
				t.Errorf("%s: estimate says impossible but compression succeeded", c.Desc)
			}
			continue
		}
		form, err := c.Compress(data)
		if err != nil {
			t.Errorf("%s: exact estimate %d bits but compression failed: %v", c.Desc, bits, err)
			continue
		}
		if got := form.PayloadBits(); got != bits {
			t.Errorf("%s: exact estimate %d bits, actual %d", c.Desc, bits, got)
		}
	}
}

// checkPrunedVsExhaustive asserts the estimate-pruned analyzer lands
// within the bounded size ratio of ground truth. Both analyzers get
// the same sampleSize, so a non-zero value exercises the riskier
// configuration where candidates are ranked on full-column stats but
// trialed on a prefix.
func checkPrunedVsExhaustive(t *testing.T, data []int64, st *core.BlockStats, sampleSize int) {
	t.Helper()
	pruned := &core.Analyzer{Candidates: DefaultCandidates(st), Stats: st, SampleSize: sampleSize}
	pc, perr := pruned.Best(data)
	exhaustive := &core.Analyzer{Candidates: DefaultCandidates(st), Exhaustive: true, SampleSize: sampleSize}
	ec, eerr := exhaustive.Best(data)
	if (perr == nil) != (eerr == nil) {
		t.Fatalf("pruned err = %v, exhaustive err = %v", perr, eerr)
	}
	if perr != nil {
		return
	}
	// 1.05x relative slack, with one node header of absolute slack so
	// tiny columns aren't dominated by constant overheads.
	limit := 1.05*float64(ec.Eval.Bits) + float64(core.FormOverheadBits(2))
	if float64(pc.Eval.Bits) > limit {
		t.Fatalf("pruned winner %s = %d bits, exhaustive winner %s = %d bits (ratio %.3f)",
			pc.Desc, pc.Eval.Bits, ec.Desc, ec.Eval.Bits,
			float64(pc.Eval.Bits)/float64(ec.Eval.Bits))
	}
}

// TestExactEstimatesMatchActual pins the estimator contract on the
// named workloads: every exact-flagged estimate must equal the
// encoded PayloadBits, deterministically.
func TestExactEstimatesMatchActual(t *testing.T) {
	for kind := uint8(0); kind < 10; kind++ {
		for _, n := range []int{0, 1, 2, 100, 5000} {
			t.Run(fmt.Sprintf("kind%d-n%d", kind, n), func(t *testing.T) {
				data := estimateWorkload(kind, n, 17, 42)[:n]
				st := core.CollectStats(data, nil)
				checkExactEstimates(t, data, &st)
				checkPrunedVsExhaustive(t, data, &st, 0)
				checkPrunedVsExhaustive(t, data, &st, n/3)
			})
		}
	}
}

// TestConstEstimateImpossible pins the impossibility sentinel: CONST
// on a multi-run column must estimate ImpossibleBits and never be
// trialed.
func TestConstEstimateImpossible(t *testing.T) {
	st := core.CollectStats([]int64{1, 2}, nil)
	bits, exact := Const{}.EstimateSize(&st)
	if bits != core.ImpossibleBits || !exact {
		t.Fatalf("EstimateSize = %d, %v", bits, exact)
	}
	if _, err := (Const{}).Compress([]int64{1, 2}); !errors.Is(err, core.ErrNotRepresentable) {
		t.Fatalf("const compress err = %v", err)
	}
}

// TestScratchCompressMatchesCompress asserts the pooled compressors
// produce byte-identical form trees to the plain path, across the
// schemes on the hot encode path.
func TestScratchCompressMatchesCompress(t *testing.T) {
	data := workload.OrderShipDates(5000, 16, 730120, 7)
	neg := make([]int64, len(data))
	for i, v := range data {
		neg[i] = v - 731000 // mix signs to exercise zigzag
	}
	schemes := []core.Scheme{
		NS{},
		VNS{Block: 64},
		FORComposite(128),
		FORComposite(1024),
		RLEComposite(),
		RLEDeltaComposite(),
		RLEDeltaVNSComposite(),
		RPEComposite(),
		DeltaNS(),
		DictComposite(),
		PFOR{SegLen: 1024},
		LinearNS(1024),
		ModelResidual{Fitter: StepFitter{SegLen: 512}},
	}
	for _, input := range [][]int64{data, neg, nil} {
		for _, sch := range schemes {
			want, err := sch.Compress(input)
			if err != nil {
				t.Fatalf("%s: plain: %v", sch.Name(), err)
			}
			s := core.GetScratch()
			got, err := core.CompressScratch(sch, input, s)
			s.Release()
			if err != nil {
				t.Fatalf("%s: pooled: %v", sch.Name(), err)
			}
			if !formsEqual(want, got) {
				t.Fatalf("%s: pooled form differs from plain form:\n%s\nvs\n%s",
					sch.Name(), want.Describe(), got.Describe())
			}
		}
	}
}

// formsEqual compares two form trees structurally and by payload.
func formsEqual(a, b *core.Form) bool {
	if a.Scheme != b.Scheme || a.N != b.N || len(a.Params) != len(b.Params) ||
		len(a.Children) != len(b.Children) ||
		len(a.Leaf) != len(b.Leaf) || len(a.Packed) != len(b.Packed) || len(a.Bytes) != len(b.Bytes) {
		return false
	}
	for k, v := range a.Params {
		if b.Params[k] != v {
			return false
		}
	}
	for i := range a.Leaf {
		if a.Leaf[i] != b.Leaf[i] {
			return false
		}
	}
	for i := range a.Packed {
		if a.Packed[i] != b.Packed[i] {
			return false
		}
	}
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] {
			return false
		}
	}
	for k, ac := range a.Children {
		bc, ok := b.Children[k]
		if !ok || !formsEqual(ac, bc) {
			return false
		}
	}
	return true
}

// FuzzAnalyzerEstimateEquivalence drives random workloads through
// the estimate-pruned analyzer and asserts (a) it picks a form within
// a bounded size ratio (1.05x) of the exhaustive ground truth, and
// (b) every exact-flagged estimate equals the actual encoded bits.
func FuzzAnalyzerEstimateEquivalence(f *testing.F) {
	f.Add(uint8(0), uint16(100), uint8(17), int64(1))
	f.Add(uint8(4), uint16(4096), uint8(3), int64(2))
	f.Add(uint8(7), uint16(513), uint8(200), int64(3))
	f.Add(uint8(9), uint16(1), uint8(0), int64(4))
	f.Fuzz(func(t *testing.T, kind uint8, nRaw uint16, param uint8, seed int64) {
		n := int(nRaw) % 8192
		data := estimateWorkload(kind, n, param, seed)[:n]
		st := core.CollectStats(data, nil)
		checkExactEstimates(t, data, &st)
		// Odd seeds additionally exercise prefix sampling: candidates
		// rank on full-column stats but trial on a prefix, for both
		// the pruned and the ground-truth analyzer alike.
		sampleSize := 0
		if seed%2 != 0 {
			sampleSize = n/2 + 1
		}
		checkPrunedVsExhaustive(t, data, &st, sampleSize)
	})
}
