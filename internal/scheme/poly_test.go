package scheme

import (
	"errors"
	"math/rand"
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

func TestPoly2ExactRoundTrip(t *testing.T) {
	// Exactly quadratic per segment of 8 with frac-representable
	// coefficients.
	src := make([]int64, 32)
	for i := range src {
		seg := i / 8
		j := int64(i % 8)
		src[i] = int64(100*seg) + 3*j + 2*j*j
	}
	f, err := (Poly2{SegLen: 8}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(f)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("poly2 roundtrip: %v", err)
	}
	if _, err := (Poly2{SegLen: 8}).Compress([]int64{0, 7, 1, 9, 2, 8, 3, 6}); !errors.Is(err, core.ErrNotRepresentable) {
		t.Fatalf("non-quadratic err = %v", err)
	}
}

func TestPoly2FitterRoundTrip(t *testing.T) {
	// Quadratic trend + noise; the model-residual combinator must be
	// lossless and the residual width must beat linear's.
	rng := rand.New(rand.NewSource(4))
	src := make([]int64, 8192)
	for i := range src {
		x := float64(i % 1024)
		src[i] = int64(0.02*x*x) + rng.Int63n(21) - 10
	}
	polyForm, err := (ModelResidual{Fitter: Poly2Fitter{SegLen: 1024}}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(polyForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("poly2 model roundtrip: %v", err)
	}
	linForm, err := (ModelResidual{Fitter: LinearFitter{SegLen: 1024}}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	pResid, _ := polyForm.Child("residual")
	lResid, _ := linForm.Child("residual")
	if pResid.Params["width"] >= lResid.Params["width"] {
		t.Fatalf("poly2 residual width %d should beat linear %d on a parabola",
			pResid.Params["width"], lResid.Params["width"])
	}
}

func TestPoly2FitterResidualsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]int64, 2048)
	for i := range src {
		x := float64(i % 256)
		src[i] = int64(-0.05*x*x+3*x) + rng.Int63n(9) - 4
	}
	_, pred, err := (Poly2Fitter{SegLen: 256}).Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i]-pred[i] < 0 {
			t.Fatalf("negative residual at %d", i)
		}
	}
}

func TestPoly2DegenerateSegments(t *testing.T) {
	// Segments of length 1 and 2 take the short-circuit fits.
	for _, src := range [][]int64{{7}, {7, 9}, {7, 9, 13}} {
		f, err := (Poly2{SegLen: len(src)}).Compress(src)
		if err != nil {
			// length-3 may or may not be exactly representable in
			// fixed point; only assert on 1 and 2.
			if len(src) < 3 {
				t.Fatalf("n=%d: %v", len(src), err)
			}
			continue
		}
		got, err := core.Decompress(f)
		if err != nil || !vec.Equal(got, src) {
			t.Fatalf("n=%d roundtrip: %v", len(src), err)
		}
	}
}

func TestPoly2CorruptForms(t *testing.T) {
	bad := []*core.Form{
		{Scheme: Poly2Name, N: 4, Params: core.Params{"seglen": 0, "frac": 16}},
		{Scheme: Poly2Name, N: 4, Params: core.Params{"seglen": 2, "frac": 50}},
		{Scheme: Poly2Name, N: 4, Params: core.Params{"seglen": 2, "frac": 16},
			Children: map[string]*core.Form{
				"c0": NewIDForm([]int64{1}),
				"c1": NewIDForm([]int64{1, 2}),
				"c2": NewIDForm([]int64{1, 2}),
			}},
	}
	for i, f := range bad {
		if _, err := core.Decompress(f); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPatchedModelLinear(t *testing.T) {
	// Linear trend + noise + spikes: the patched linear model must
	// round-trip and beat both plain linear (ruined residual width)
	// and PFOR (step model pays slope·seglen bits).
	rng := rand.New(rand.NewSource(6))
	src := make([]int64, 16384)
	for i := range src {
		src[i] = int64(8*i) + rng.Int63n(25) - 12
	}
	for i := 100; i < len(src); i += 500 {
		src[i] += 1 << 35
	}
	pm := PatchedModel{Fitter: LinearFitter{SegLen: 1024}}
	pmForm, err := pm.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(pmForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("patched linear roundtrip: %v", err)
	}
	positions, _ := core.DecompressChild(pmForm, "positions")
	if len(positions) == 0 {
		t.Fatal("no patches extracted")
	}

	linForm, err := (ModelResidual{Fitter: LinearFitter{SegLen: 1024}}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	pforForm, err := (PFOR{SegLen: 1024}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if pmForm.PayloadBits() >= linForm.PayloadBits() {
		t.Fatalf("patched linear %d bits should beat unpatched %d", pmForm.PayloadBits(), linForm.PayloadBits())
	}
	if pmForm.PayloadBits() >= pforForm.PayloadBits() {
		t.Fatalf("patched linear %d bits should beat pfor %d on a slope-8 trend",
			pmForm.PayloadBits(), pforForm.PayloadBits())
	}
}

func TestPatchedModelNoOutliers(t *testing.T) {
	src := make([]int64, 4096)
	for i := range src {
		src[i] = int64(3 * i)
	}
	pm := PatchedModel{Fitter: LinearFitter{SegLen: 512}}
	f, err := pm.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(f)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("roundtrip: %v", err)
	}
}

func TestPatchedModelName(t *testing.T) {
	pm := PatchedModel{Fitter: LinearFitter{SegLen: 256}}
	if pm.Name() != "patch(plus(linear[256], ns))" {
		t.Fatalf("name = %q", pm.Name())
	}
}
