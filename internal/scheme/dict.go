package scheme

import (
	"fmt"
	"sort"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// DictName is the registry name of the dictionary scheme.
const DictName = "dict"

// Dict is dictionary encoding — "using small dictionaries" (§I). The
// distinct values are stored sorted in a dictionary column; the data
// column stores indices into it. Keeping the dictionary sorted makes
// codes order-preserving, so range predicates can be evaluated on
// codes directly (the query package exploits this).
//
// Form layout: Children{"codes"} of length N and Children{"dict"} of
// length equal to the number of distinct values.
type Dict struct{}

// Name implements core.Scheme.
func (Dict) Name() string { return DictName }

// Compress builds the sorted dictionary and code column.
func (Dict) Compress(src []int64) (*core.Form, error) {
	seen := make(map[int64]struct{}, 256)
	for _, v := range src {
		seen[v] = struct{}{}
	}
	dict := make([]int64, 0, len(seen))
	for v := range seen {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	index := make(map[int64]int64, len(dict))
	for i, v := range dict {
		index[v] = int64(i)
	}
	codes := make([]int64, len(src))
	for i, v := range src {
		codes[i] = index[v]
	}
	return &core.Form{
		Scheme: DictName,
		N:      len(src),
		Children: map[string]*core.Form{
			"codes": NewIDForm(codes),
			"dict":  NewIDForm(dict),
		},
	}, nil
}

// Decompress gathers dictionary entries by code.
func (Dict) Decompress(f *core.Form) ([]int64, error) {
	if err := checkDict(f); err != nil {
		return nil, err
	}
	codes, err := core.DecompressChild(f, "codes")
	if err != nil {
		return nil, err
	}
	dict, err := core.DecompressChild(f, "dict")
	if err != nil {
		return nil, err
	}
	out, err := vec.Gather(dict, codes)
	if err != nil {
		return nil, fmt.Errorf("dict: %w", err)
	}
	return out, nil
}

// Plan implements core.Planner: dictionary decompression is a single
// Gather — the simplest instance of the paper's observation that
// decompression operators are query-plan operators.
func (Dict) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkDict(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	dict := b.Input("dict")
	codes := b.Input("codes")
	b.Gather(dict, codes)
	return b.Build()
}

// ValidateForm implements core.Validator.
func (Dict) ValidateForm(f *core.Form) error { return checkDict(f) }

// DecompressCostPerElement implements core.Coster: one random-access
// gather per element.
func (Dict) DecompressCostPerElement(*core.Form) float64 { return 2.0 }

// ConstituentStats implements core.ConstituentStatser, bounded: the
// dictionary size is the (estimated) distinct count, codes run
// exactly as the values do, and the sorted dictionary spans the
// column's extremes.
func (Dict) ConstituentStats(st *core.BlockStats) (uint64, []core.PredictedChild, bool, bool) {
	if !st.HasMinMax || !st.HasDistinct {
		return 0, nil, false, false
	}
	d := st.Distinct
	if d > st.N {
		d = st.N
	}
	if st.N > 0 && d < 1 {
		d = 1
	}
	var codes, dict core.BlockStats
	codes.N = st.N
	codes.HasMinMax = true
	dict.N = d
	dict.HasMinMax = true
	if st.N > 0 {
		codes.Max = int64(d - 1)
		dict.Min, dict.Max = st.Min, st.Max
	}
	if st.HasRuns {
		codes.Runs = st.Runs
		codes.MaxRunLen = st.MaxRunLen
		codes.HasRuns = true
	}
	return core.FormOverheadBits(0), []core.PredictedChild{
		{Name: "codes", Stats: codes},
		{Name: "dict", Stats: dict},
	}, false, true
}

func checkDict(f *core.Form) error {
	if f.Scheme != DictName {
		return fmt.Errorf("%w: dict scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	codes, err := f.Child("codes")
	if err != nil {
		return err
	}
	if _, err := f.Child("dict"); err != nil {
		return err
	}
	if codes.N != f.N {
		return fmt.Errorf("%w: dict codes child declares %d values, form declares %d",
			core.ErrCorruptForm, codes.N, f.N)
	}
	return nil
}
