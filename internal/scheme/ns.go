package scheme

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// NSName is the registry name of the null-suppression scheme.
const NSName = "ns"

// NS is null suppression: "discarding redundant bits" (§I). Values
// are bit-packed at the width of the widest value; columns containing
// negatives are zigzag-mapped first.
//
// NS is the terminal physical codec of most compositions — in the
// paper's FOR decomposition, the offsets are "nothing but a narrow
// column, which relative to the original column's width we compress
// with NS".
//
// Form layout: Params{"width", "zigzag"}; Packed holds the bit-packed
// words.
type NS struct{}

// Name implements core.Scheme.
func (NS) Name() string { return NSName }

// Compress bit-packs src at its minimal width.
func (NS) Compress(src []int64) (*core.Form, error) {
	zig := int64(0)
	for _, v := range src {
		if v < 0 {
			zig = 1
			break
		}
	}
	var u []uint64
	if zig == 1 {
		u = bitpack.ZigzagSlice(src)
	} else {
		u = bitpack.UnsignedSlice(src)
	}
	w := bitpack.MaxWidth(u)
	packed, err := bitpack.Pack(u, w)
	if err != nil {
		return nil, fmt.Errorf("ns: %w", err)
	}
	return &core.Form{
		Scheme: NSName,
		N:      len(src),
		Params: core.Params{"width": int64(w), "zigzag": zig},
		Packed: packed,
	}, nil
}

// Decompress unpacks the payload.
func (NS) Decompress(f *core.Form) ([]int64, error) {
	if err := checkNS(f); err != nil {
		return nil, err
	}
	w := uint(f.Params["width"])
	u, err := bitpack.Unpack(f.Packed, f.N, w)
	if err != nil {
		return nil, fmt.Errorf("ns: %w", err)
	}
	if f.Params["zigzag"] == 1 {
		return bitpack.UnzigzagSlice(u), nil
	}
	return bitpack.SignedSlice(u), nil
}

// ValidateForm implements core.Validator.
func (NS) ValidateForm(f *core.Form) error { return checkNS(f) }

// DecompressCostPerElement implements core.Coster: shift/mask work
// per element, slightly above a copy.
func (NS) DecompressCostPerElement(*core.Form) float64 { return 1.5 }

// EstimateSize implements core.SizeEstimator, exactly: the zigzag
// decision and the packed width both follow from Min/Max alone, so
// the estimate equals the compressed form's PayloadBits.
func (NS) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	w, _ := st.NSShape()
	return nsFormBits(st.N, w), true
}

func checkNS(f *core.Form) error {
	if f.Scheme != NSName {
		return fmt.Errorf("%w: ns scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	w, err := f.Params.Get(NSName, "width")
	if err != nil {
		return err
	}
	if w < 0 || w > 64 {
		return fmt.Errorf("%w: ns width %d", core.ErrCorruptForm, w)
	}
	zz, err := f.Params.Get(NSName, "zigzag")
	if err != nil {
		return err
	}
	if zz != 0 && zz != 1 {
		return fmt.Errorf("%w: ns zigzag flag %d", core.ErrCorruptForm, zz)
	}
	if need := bitpack.PackedWords(f.N, uint(w)); len(f.Packed) < need {
		return fmt.Errorf("%w: ns payload %d words, need %d", core.ErrCorruptForm, len(f.Packed), need)
	}
	if len(f.Children) != 0 {
		return fmt.Errorf("%w: ns form has children", core.ErrCorruptForm)
	}
	return nil
}
