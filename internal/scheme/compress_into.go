package scheme

import (
	"fmt"
	"slices"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// This file implements the encode-side pooling contracts
// (core.ScratchCompressor / core.ConstituentCompressor) for every
// scheme on the hot encode path, mirroring the *Into decode work:
// each compressor draws its temporaries — zigzag buffers, constituent
// columns, model predictions — from a core.Scratch arena, so a
// steady-state block encode allocates only what the resulting form
// retains (nodes and payloads). Decomposable schemes implement
// CompressParts, handing constituent columns to the composite as
// scratch-borrowed slices instead of round-tripping them through
// retained ID forms. Cold codecs (elias, poly2, patched models) keep
// only the allocating path.

// Compile-time checks that the hot schemes stay on the pooled path.
var (
	_ core.ScratchCompressor = NS{}
	_ core.ScratchCompressor = VNS{}
	_ core.ScratchCompressor = PFOR{}
	_ core.ScratchCompressor = ModelResidual{}

	_ core.ConstituentCompressor = FOR{}
	_ core.ConstituentCompressor = RLE{}
	_ core.ConstituentCompressor = RPE{}
	_ core.ConstituentCompressor = Delta{}
	_ core.ConstituentCompressor = Dict{}
)

// unsignedScratch fills a scratch-borrowed word buffer with src in
// NS's packing domain (zigzag when negatives are present), returning
// the buffer and the zigzag flag. The caller returns the buffer.
func unsignedScratch(src []int64, s *core.Scratch) ([]uint64, int64) {
	zig := int64(0)
	for _, v := range src {
		if v < 0 {
			zig = 1
			break
		}
	}
	u := s.U64(len(src))
	if zig == 1 {
		for i, v := range src {
			u[i] = bitpack.Zigzag(v)
		}
	} else {
		for i, v := range src {
			u[i] = uint64(v)
		}
	}
	return u, zig
}

// CompressScratch implements core.ScratchCompressor: the zigzag
// staging buffer is borrowed; only the packed payload is allocated.
func (NS) CompressScratch(src []int64, s *core.Scratch) (*core.Form, error) {
	u, zig := unsignedScratch(src, s)
	defer s.PutU64(u)
	w := bitpack.MaxWidth(u)
	packed, err := bitpack.Pack(u, w)
	if err != nil {
		return nil, fmt.Errorf("ns: %w", err)
	}
	return &core.Form{
		Scheme: NSName,
		N:      len(src),
		Params: core.Params{"width": int64(w), "zigzag": zig},
		Packed: packed,
	}, nil
}

// CompressScratch implements core.ScratchCompressor: widths are
// computed into a borrowed buffer and the payload is packed in one
// exactly-sized allocation instead of per-mini-block appends.
func (sch VNS) CompressScratch(src []int64, s *core.Scratch) (*core.Form, error) {
	block := sch.Block
	if block == 0 {
		block = DefaultVNSBlock
	}
	if block < 1 {
		return nil, fmt.Errorf("vns: invalid block length %d", block)
	}
	u, zig := unsignedScratch(src, s)
	defer s.PutU64(u)
	nblocks := (len(src) + block - 1) / block
	widths := s.I64(nblocks)
	defer s.PutI64(widths)
	totalWords := 0
	for bIdx := 0; bIdx < nblocks; bIdx++ {
		lo := bIdx * block
		hi := lo + block
		if hi > len(u) {
			hi = len(u)
		}
		w := bitpack.MaxWidth(u[lo:hi])
		widths[bIdx] = int64(w)
		totalWords += bitpack.PackedWords(hi-lo, w)
	}
	packed := make([]uint64, totalWords)
	wordPos := 0
	for bIdx := 0; bIdx < nblocks; bIdx++ {
		lo := bIdx * block
		hi := lo + block
		if hi > len(u) {
			hi = len(u)
		}
		need := bitpack.PackedWords(hi-lo, uint(widths[bIdx]))
		if err := bitpack.PackInto(packed[wordPos:wordPos+need], u[lo:hi], uint(widths[bIdx])); err != nil {
			return nil, fmt.Errorf("vns: block %d: %w", bIdx, err)
		}
		wordPos += need
	}
	return &core.Form{
		Scheme:   VNSName,
		N:        len(src),
		Params:   core.Params{"block": int64(block), "zigzag": zig},
		Children: map[string]*core.Form{"widths": NewIDForm(widths)},
		Packed:   packed,
	}, nil
}

// CompressParts implements core.ConstituentCompressor: references and
// offsets are produced in borrowed buffers and handed straight to the
// composite's inner compressors.
func (sch FOR) CompressParts(src []int64, s *core.Scratch, emit func(name string, col []int64) (*core.Form, error)) (*core.Form, error) {
	segLen := sch.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	if segLen < 1 {
		return nil, fmt.Errorf("for: invalid segment length %d", segLen)
	}
	nseg := (len(src) + segLen - 1) / segLen
	refs := s.I64(nseg)
	defer s.PutI64(refs)
	offsets := s.I64(len(src))
	defer s.PutI64(offsets)
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		ref := src[lo]
		for _, v := range src[lo+1 : hi] {
			if v < ref {
				ref = v
			}
		}
		refs[seg] = ref
		for i := lo; i < hi; i++ {
			offsets[i] = src[i] - ref
		}
	}
	refsForm, err := emit("refs", refs)
	if err != nil {
		return nil, err
	}
	offsetsForm, err := emit("offsets", offsets)
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme: FORName,
		N:      len(src),
		Params: core.Params{"seglen": int64(segLen)},
		Children: map[string]*core.Form{
			"refs":    refsForm,
			"offsets": offsetsForm,
		},
	}, nil
}

// runsScratch splits src into maximal runs inside borrowed buffers.
// The caller returns both buffers.
func runsScratch(src []int64, s *core.Scratch) (lengths, values []int64) {
	lengths = s.I64(len(src))
	values = s.I64(len(src))
	if len(src) == 0 {
		return lengths[:0], values[:0]
	}
	r := 0
	cur := src[0]
	var runLen int64
	for _, v := range src {
		if v == cur {
			runLen++
			continue
		}
		lengths[r], values[r] = runLen, cur
		r++
		cur = v
		runLen = 1
	}
	lengths[r], values[r] = runLen, cur
	return lengths[:r+1], values[:r+1]
}

// CompressParts implements core.ConstituentCompressor: run lengths
// and values live in borrowed buffers.
func (RLE) CompressParts(src []int64, s *core.Scratch, emit func(name string, col []int64) (*core.Form, error)) (*core.Form, error) {
	lengths, values := runsScratch(src, s)
	defer s.PutI64(lengths[:cap(lengths)])
	defer s.PutI64(values[:cap(values)])
	lengthsForm, err := emit("lengths", lengths)
	if err != nil {
		return nil, err
	}
	valuesForm, err := emit("values", values)
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme: RLEName,
		N:      len(src),
		Children: map[string]*core.Form{
			"lengths": lengthsForm,
			"values":  valuesForm,
		},
	}, nil
}

// CompressParts implements core.ConstituentCompressor: run end
// positions are integrated in place over the borrowed lengths.
func (RPE) CompressParts(src []int64, s *core.Scratch, emit func(name string, col []int64) (*core.Form, error)) (*core.Form, error) {
	lengths, values := runsScratch(src, s)
	defer s.PutI64(lengths[:cap(lengths)])
	defer s.PutI64(values[:cap(values)])
	var pos int64
	for i, l := range lengths {
		pos += l
		lengths[i] = pos
	}
	positionsForm, err := emit("positions", lengths)
	if err != nil {
		return nil, err
	}
	valuesForm, err := emit("values", values)
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme: RPEName,
		N:      len(src),
		Children: map[string]*core.Form{
			"positions": positionsForm,
			"values":    valuesForm,
		},
	}, nil
}

// CompressParts implements core.ConstituentCompressor: deltas go into
// a borrowed buffer.
func (Delta) CompressParts(src []int64, s *core.Scratch, emit func(name string, col []int64) (*core.Form, error)) (*core.Form, error) {
	d := s.I64(len(src))
	defer s.PutI64(d)
	prev := int64(0)
	for i, v := range src {
		d[i] = v - prev
		prev = v
	}
	deltasForm, err := emit("deltas", d)
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme:   DeltaName,
		N:        len(src),
		Children: map[string]*core.Form{"deltas": deltasForm},
	}, nil
}

// CompressParts implements core.ConstituentCompressor: the sorted
// dictionary is deduplicated in a borrowed copy and codes resolve
// through a borrowed open-addressing table (one hash and a short
// probe per element — measurably faster than a per-element binary
// search, and allocation-free unlike the map-based path).
func (Dict) CompressParts(src []int64, s *core.Scratch, emit func(name string, col []int64) (*core.Form, error)) (*core.Form, error) {
	buf := s.I64(len(src))
	defer s.PutI64(buf)
	copy(buf, src)
	slices.Sort(buf)
	d := 0
	for i, v := range buf {
		if i == 0 || v != buf[d-1] {
			buf[d] = v
			d++
		}
	}
	dict := buf[:d]
	codes := s.I64(len(src))
	defer s.PutI64(codes)
	if d > 0 {
		// Table size at load factor ≤ 1/4 keeps probe chains short.
		shift := uint(64)
		m := 1
		for m < 4*d {
			m <<= 1
			shift--
		}
		mask := uint64(m - 1)
		keys := s.I64(m)
		vals := s.I64(m)
		for i := range vals {
			vals[i] = 0
		}
		for code, v := range dict {
			h := (uint64(v) * 0x9E3779B97F4A7C15) >> shift
			for vals[h] != 0 {
				h = (h + 1) & mask
			}
			keys[h] = v
			vals[h] = int64(code) + 1
		}
		for i, v := range src {
			h := (uint64(v) * 0x9E3779B97F4A7C15) >> shift
			for keys[h] != v || vals[h] == 0 {
				h = (h + 1) & mask
			}
			codes[i] = vals[h] - 1
		}
		s.PutI64(keys)
		s.PutI64(vals)
	}
	codesForm, err := emit("codes", codes)
	if err != nil {
		return nil, err
	}
	dictForm, err := emit("dict", dict)
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme: DictName,
		N:      len(src),
		Children: map[string]*core.Form{
			"codes": codesForm,
			"dict":  dictForm,
		},
	}, nil
}

// CompressScratch implements core.ScratchCompressor: the offset
// histogramming, exception split and patched copy all run in
// borrowed buffers; only the exception lists and the base
// composition's retained forms are allocated.
func (p PFOR) CompressScratch(src []int64, s *core.Scratch) (*core.Form, error) {
	segLen := p.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	excBits := p.ExcBits
	if excBits == 0 {
		excBits = DefaultExceptionBits
	}

	nseg := (len(src) + segLen - 1) / segLen
	refs := s.I64(nseg)
	defer s.PutI64(refs)
	offsets := s.U64(len(src))
	defer s.PutU64(offsets)
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		ref := src[lo]
		for _, v := range src[lo+1 : hi] {
			if v < ref {
				ref = v
			}
		}
		refs[seg] = ref
		for i := lo; i < hi; i++ {
			offsets[i] = uint64(src[i] - ref)
		}
	}
	hist := bitpack.HistogramOf(offsets)
	w, _ := hist.BestPatchWidth(excBits)
	if p.MaxExceptionRate > 0 && hist.N > 0 {
		for w < 64 && float64(hist.ExceptionsAt(w))/float64(hist.N) > p.MaxExceptionRate {
			w++
		}
	}

	patched := s.I64(len(src))
	defer s.PutI64(patched)
	copy(patched, src)
	var positions, values []int64
	for i, off := range offsets {
		if bitpack.Width(off) > w {
			positions = append(positions, int64(i))
			values = append(values, src[i])
			patched[i] = refs[i/segLen]
		}
	}

	base, err := core.CompressScratch(FORComposite(segLen), patched, s)
	if err != nil {
		return nil, fmt.Errorf("pfor: base: %w", err)
	}
	if positions == nil {
		positions = []int64{}
		values = []int64{}
	}
	return NewPatchForm(base, positions, values)
}

// ScratchFitter is the pooled variant of ModelFitter: predictions
// land in a scratch-borrowed buffer the caller must return with
// PutI64.
type ScratchFitter interface {
	ModelFitter
	// FitScratch returns the model form and its predictions, the
	// latter borrowed from s.
	FitScratch(src []int64, s *core.Scratch) (*core.Form, []int64, error)
}

// FitScratch implements ScratchFitter: segment references are staged
// in a borrowed buffer (the step form copies them).
func (sf StepFitter) FitScratch(src []int64, s *core.Scratch) (*core.Form, []int64, error) {
	segLen := sf.segLen()
	if segLen < 1 {
		return nil, nil, fmt.Errorf("step fitter: invalid segment length %d", segLen)
	}
	nseg := (len(src) + segLen - 1) / segLen
	refs := s.I64(nseg)
	defer s.PutI64(refs)
	pred := s.I64(len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		ref := src[lo]
		for _, v := range src[lo+1 : hi] {
			if v < ref {
				ref = v
			}
		}
		refs[seg] = ref
		for i := lo; i < hi; i++ {
			pred[i] = ref
		}
	}
	return NewStepForm(refs, segLen, len(src)), pred, nil
}

// FitScratch implements ScratchFitter, mirroring Fit with borrowed
// coefficient staging.
func (lf LinearFitter) FitScratch(src []int64, s *core.Scratch) (*core.Form, []int64, error) {
	segLen := lf.segLen()
	frac := lf.frac()
	if segLen < 1 {
		return nil, nil, fmt.Errorf("linear fitter: invalid segment length %d", segLen)
	}
	if frac > 30 {
		return nil, nil, fmt.Errorf("linear fitter: fraction width %d too large (max 30)", frac)
	}
	nseg := (len(src) + segLen - 1) / segLen
	bases := s.I64(nseg)
	defer s.PutI64(bases)
	slopes := s.I64(nseg)
	defer s.PutI64(slopes)
	pred := s.I64(len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		base, slope := fitLineLeastSquares(src[lo:hi], frac)
		minResid := int64(0)
		first := true
		for i := lo; i < hi; i++ {
			r := src[i] - LinearPredict(base, slope, i-lo, frac)
			if first || r < minResid {
				minResid = r
				first = false
			}
		}
		base += minResid
		bases[seg] = base
		slopes[seg] = slope
		for i := lo; i < hi; i++ {
			pred[i] = LinearPredict(base, slope, i-lo, frac)
		}
	}
	return NewLinearForm(bases, slopes, segLen, frac, len(src)), pred, nil
}

// CompressScratch implements core.ScratchCompressor: model
// predictions and residuals are borrowed, and the residual scheme
// compresses through the pooled path.
func (mr ModelResidual) CompressScratch(src []int64, s *core.Scratch) (*core.Form, error) {
	fitter, ok := mr.Fitter.(ScratchFitter)
	if !ok {
		return mr.Compress(src)
	}
	model, pred, err := fitter.FitScratch(src, s)
	if err != nil {
		return nil, fmt.Errorf("model residual: %w", err)
	}
	resid := s.I64(len(src))
	for i := range src {
		resid[i] = src[i] - pred[i]
	}
	s.PutI64(pred)
	res := mr.Residual
	if res == nil {
		res = NS{}
	}
	rf, err := core.CompressScratch(res, resid, s)
	s.PutI64(resid)
	if err != nil {
		return nil, fmt.Errorf("model residual: residual scheme %q: %w", res.Name(), err)
	}
	return NewPlusForm(model, rf)
}
