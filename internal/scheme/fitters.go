package scheme

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// This file holds the compressor-side combinators of the paper's
// model view (§II-B, Lessons 2): schemes that "separate a simpler,
// coarser, inaccurate representation of the data from finer, local,
// noise-like complementary features". A ModelFitter produces the
// coarse representation; ModelResidual pairs it with a residual
// scheme into a PLUS form; NewPatched handles the L0 variant where
// the complementary features are sparse exceptions.

// ModelFitter fits a coarse model to a column, returning the model's
// form and its predicted values (whose element-wise difference from
// the input becomes the residual column).
type ModelFitter interface {
	// FitName describes the fitter for composite naming.
	FitName() string
	// Fit returns the model form and the model's predictions.
	Fit(src []int64) (*core.Form, []int64, error)
}

// StepFitter fits a fixed-segment step function by taking each
// segment's minimum, making residuals non-negative — fitting under
// the L∞ metric of §II-B ("FOR captures all columns which are
// L∞-metric-close to the evaluation of a step function").
type StepFitter struct {
	// SegLen is the segment length; zero means
	// DefaultSegmentLength.
	SegLen int
}

// FitName implements ModelFitter.
func (sf StepFitter) FitName() string { return fmt.Sprintf("step[%d]", sf.segLen()) }

func (sf StepFitter) segLen() int {
	if sf.SegLen == 0 {
		return DefaultSegmentLength
	}
	return sf.SegLen
}

// Fit implements ModelFitter.
func (sf StepFitter) Fit(src []int64) (*core.Form, []int64, error) {
	segLen := sf.segLen()
	if segLen < 1 {
		return nil, nil, fmt.Errorf("step fitter: invalid segment length %d", segLen)
	}
	nseg := (len(src) + segLen - 1) / segLen
	refs := make([]int64, nseg)
	pred := make([]int64, len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		ref := src[lo]
		for _, v := range src[lo+1 : hi] {
			if v < ref {
				ref = v
			}
		}
		refs[seg] = ref
		for i := lo; i < hi; i++ {
			pred[i] = ref
		}
	}
	return NewStepForm(refs, segLen, len(src)), pred, nil
}

// LinearFitter fits a fixed-segment piecewise-linear function by
// least squares, then shifts each segment's base so residuals are
// non-negative (narrowest unsigned NS width).
type LinearFitter struct {
	// SegLen is the segment length; zero means
	// DefaultSegmentLength.
	SegLen int
	// Frac is the slope fixed-point fraction width; zero means
	// DefaultFracBits.
	Frac uint
}

// FitName implements ModelFitter.
func (lf LinearFitter) FitName() string { return fmt.Sprintf("linear[%d]", lf.segLen()) }

func (lf LinearFitter) segLen() int {
	if lf.SegLen == 0 {
		return DefaultSegmentLength
	}
	return lf.SegLen
}

func (lf LinearFitter) frac() uint {
	if lf.Frac == 0 {
		return DefaultFracBits
	}
	return lf.Frac
}

// Fit implements ModelFitter.
func (lf LinearFitter) Fit(src []int64) (*core.Form, []int64, error) {
	segLen := lf.segLen()
	frac := lf.frac()
	if segLen < 1 {
		return nil, nil, fmt.Errorf("linear fitter: invalid segment length %d", segLen)
	}
	if frac > 30 {
		return nil, nil, fmt.Errorf("linear fitter: fraction width %d too large (max 30)", frac)
	}
	nseg := (len(src) + segLen - 1) / segLen
	bases := make([]int64, nseg)
	slopes := make([]int64, nseg)
	pred := make([]int64, len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		base, slope := fitLineLeastSquares(src[lo:hi], frac)
		// Shift the base down so that every residual is ≥ 0.
		minResid := int64(0)
		first := true
		for i := lo; i < hi; i++ {
			r := src[i] - LinearPredict(base, slope, i-lo, frac)
			if first || r < minResid {
				minResid = r
				first = false
			}
		}
		base += minResid
		bases[seg] = base
		slopes[seg] = slope
		for i := lo; i < hi; i++ {
			pred[i] = LinearPredict(base, slope, i-lo, frac)
		}
	}
	return NewLinearForm(bases, slopes, segLen, frac, len(src)), pred, nil
}

// fitLineLeastSquares computes the ordinary-least-squares line of a
// segment in fixed point: slope = cov(j, v)/var(j).
func fitLineLeastSquares(seg []int64, frac uint) (base, slope int64) {
	n := len(seg)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return seg[0], 0
	}
	var sumJ, sumV, sumJJ, sumJV float64
	for j, v := range seg {
		fj := float64(j)
		fv := float64(v)
		sumJ += fj
		sumV += fv
		sumJJ += fj * fj
		sumJV += fj * fv
	}
	fn := float64(n)
	den := fn*sumJJ - sumJ*sumJ
	var slopeF float64
	if den != 0 {
		slopeF = (fn*sumJV - sumJ*sumV) / den
	}
	interceptF := (sumV - slopeF*sumJ) / fn
	scale := float64(int64(1) << frac)
	slope = int64(slopeF*scale + 0.5)
	if slopeF < 0 {
		slope = int64(slopeF*scale - 0.5)
	}
	return int64(interceptF + 0.5), slope
}

// ModelResidual is the generic model-plus-residual compressor: fit
// the model, compress the residual with the configured scheme, emit a
// PLUS form. FOR is recovered exactly as
// ModelResidual{StepFitter{ℓ}, NS{}} — the compressor-side reading of
// the identity FOR ≡ (STEPFUNCTION + NS).
type ModelResidual struct {
	// Fitter produces the coarse model.
	Fitter ModelFitter
	// Residual compresses the residual column; nil means NS.
	Residual core.Scheme
}

// Name implements core.Scheme.
func (mr ModelResidual) Name() string {
	res := mr.Residual
	if res == nil {
		res = NS{}
	}
	return fmt.Sprintf("plus(%s, %s)", mr.Fitter.FitName(), res.Name())
}

// Compress fits the model and compresses the residual.
func (mr ModelResidual) Compress(src []int64) (*core.Form, error) {
	model, pred, err := mr.Fitter.Fit(src)
	if err != nil {
		return nil, fmt.Errorf("model residual: %w", err)
	}
	resid := make([]int64, len(src))
	for i := range src {
		resid[i] = src[i] - pred[i]
	}
	res := mr.Residual
	if res == nil {
		res = NS{}
	}
	rf, err := res.Compress(resid)
	if err != nil {
		return nil, fmt.Errorf("model residual: residual scheme %q: %w", res.Name(), err)
	}
	return NewPlusForm(model, rf)
}

// Decompress delegates to the registry (the form is a PLUS form).
func (ModelResidual) Decompress(f *core.Form) ([]int64, error) {
	return core.Decompress(f)
}

var _ core.Scheme = ModelResidual{}

// modelShape returns the segment length and the analytic size of the
// model form a fitter will emit (params plus ID coefficient columns),
// or ok=false for fitters the estimator does not know.
func modelShape(fitter ModelFitter, n int) (segLen int, modelBits uint64, ok bool) {
	nsegOf := func(ell int) uint64 {
		if n == 0 {
			return 0
		}
		return uint64((n + ell - 1) / ell)
	}
	switch f := fitter.(type) {
	case StepFitter:
		ell := f.segLen()
		return ell, core.FormOverheadBits(1) + leafBits(int(nsegOf(ell))), true
	case LinearFitter:
		ell := f.segLen()
		return ell, core.FormOverheadBits(2) + 2*leafBits(int(nsegOf(ell))), true
	case Poly2Fitter:
		ell := f.segLen()
		return ell, core.FormOverheadBits(2) + 3*leafBits(int(nsegOf(ell))), true
	}
	return 0, 0, false
}

// EstimateSize implements core.SizeEstimator. Exact for the step
// fitter with NS residuals when per-segment extremes are available
// (step residuals are precisely the minimum-referenced offsets);
// bounded for the sloped fitters, whose residual width is capped by
// the per-segment range and approximated by the local delta noise.
func (mr ModelResidual) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	segLen, modelBits, ok := modelShape(mr.Fitter, st.N)
	if !ok {
		return 0, false
	}
	maxOff, _, _, foldOK := st.SegFold(segLen)
	if !foldOK {
		maxOff = uint64(st.Max - st.Min)
	}
	w := bitpack.Width(maxOff)
	exact := false
	if _, isStep := mr.Fitter.(StepFitter); isStep {
		exact = foldOK
	} else if st.HasDeltas && st.N > 1 {
		// A sloped model tracks trends the step model pays range for;
		// what remains is near the local variation.
		if wd := st.DeltaHist.WidthCovering(0.98) + 2; wd < w {
			w = wd
		}
	}
	res := mr.Residual
	if res == nil {
		res = NS{}
	}
	var resBits uint64
	if _, isNS := res.(NS); isNS {
		// Residuals are base-shifted non-negative by construction.
		resBits = nsFormBits(st.N, w)
	} else {
		child := core.BlockStats{N: st.N, Max: widthMaxValue(w), HasMinMax: true}
		b, _, ok := core.EstimateOf(res, &child)
		if !ok {
			return 0, false
		}
		resBits = b
		exact = false
	}
	return core.SatAddBits(core.FormOverheadBits(0)+modelBits, resBits), exact
}

// DefaultExceptionBits is the assumed per-exception storage cost used
// by the PFOR width chooser: a position plus a 64-bit value.
const DefaultExceptionBits = 96

// PFOR is the patched frame-of-reference compressor — the paper's L0
// extension applied to FOR, recovering the classical PFOR family as
// the composition Patch ∘ FOR. The offset width is chosen to
// minimize total bits (base packing plus exception storage); elements
// whose offsets exceed it become patches holding the original values,
// and their base slots collapse to offset zero.
type PFOR struct {
	// SegLen is the FOR segment length; zero means
	// DefaultSegmentLength.
	SegLen int
	// ExcBits is the assumed per-exception cost in bits for width
	// selection; zero means DefaultExceptionBits.
	ExcBits uint
	// MaxExceptionRate, when positive, bounds the exception fraction;
	// if the chosen width would exceed it, the width grows until the
	// rate is within bounds.
	MaxExceptionRate float64
}

// Name implements core.Scheme.
func (p PFOR) Name() string {
	segLen := p.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	return fmt.Sprintf("patch(for[%d]+ns)", segLen)
}

// Compress selects the patch width, splits exceptions out and
// compresses the patched column with FOR over NS offsets.
func (p PFOR) Compress(src []int64) (*core.Form, error) {
	segLen := p.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	excBits := p.ExcBits
	if excBits == 0 {
		excBits = DefaultExceptionBits
	}

	// First pass: per-segment minima and the offset width histogram.
	nseg := (len(src) + segLen - 1) / segLen
	refs := make([]int64, nseg)
	offsets := make([]uint64, len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		ref := src[lo]
		for _, v := range src[lo+1 : hi] {
			if v < ref {
				ref = v
			}
		}
		refs[seg] = ref
		for i := lo; i < hi; i++ {
			offsets[i] = uint64(src[i] - ref)
		}
	}
	hist := bitpack.HistogramOf(offsets)
	w, _ := hist.BestPatchWidth(excBits)
	if p.MaxExceptionRate > 0 && hist.N > 0 {
		for w < 64 && float64(hist.ExceptionsAt(w))/float64(hist.N) > p.MaxExceptionRate {
			w++
		}
	}

	// Second pass: split exceptions, collapse their base slots to the
	// segment reference (offset zero).
	patched := make([]int64, len(src))
	copy(patched, src)
	var positions, values []int64
	for i, off := range offsets {
		if bitpack.Width(off) > w {
			positions = append(positions, int64(i))
			values = append(values, src[i])
			patched[i] = refs[i/segLen]
		}
	}

	base, err := core.Compose(FOR{SegLen: segLen}, map[string]core.Scheme{
		"offsets": NS{},
		"refs":    NS{},
	}).Compress(patched)
	if err != nil {
		return nil, fmt.Errorf("pfor: base: %w", err)
	}
	if positions == nil {
		positions = []int64{}
		values = []int64{}
	}
	return NewPatchForm(base, positions, values)
}

// Decompress delegates to the registry (the form is a PATCH form).
func (PFOR) Decompress(f *core.Form) ([]int64, error) {
	return core.Decompress(f)
}

var _ core.Scheme = PFOR{}

// EstimateSize implements core.SizeEstimator, bounded: the patch
// width and exception count come from the one-pass probe-offset
// histogram (offsets from each probe segment's first element, a
// stand-in for the minimum-referenced offsets the compressor will
// see), capped at the exact full offset width from the per-segment
// fold.
func (p PFOR) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	segLen := p.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	excBits := p.ExcBits
	if excBits == 0 {
		excBits = DefaultExceptionBits
	}
	maxOff, refMin, refMax, foldOK := st.SegFold(segLen)
	if !foldOK {
		maxOff = uint64(st.Max - st.Min)
		refMin, refMax = st.Min, st.Max
	}
	wFull := bitpack.Width(maxOff)
	w, exc := wFull, 0
	if st.OffsetSegLen == segLen && st.OffsetHist.N == st.N && st.N > 0 {
		w, exc = st.OffsetHist.BestPatchWidth(excBits)
		if p.MaxExceptionRate > 0 {
			for w < 64 && float64(st.OffsetHist.ExceptionsAt(w))/float64(st.N) > p.MaxExceptionRate {
				w++
			}
			exc = st.OffsetHist.ExceptionsAt(w)
		}
		if w > wFull {
			w, exc = wFull, 0
		}
	}
	nseg := 0
	if st.N > 0 {
		nseg = (st.N + segLen - 1) / segLen
	}
	refs := nsFormBits(nseg, nsWidthMinMax(nseg, refMin, refMax))
	base := core.FormOverheadBits(1) + refs + nsFormBits(st.N, w)
	patch := core.FormOverheadBits(0) + leafBits(exc) + leafBits(exc)
	return core.SatAddBits(base, patch), false
}

// PatchedModel generalizes PFOR to any model: the paper's L0 and L∞
// extensions composed. The model is fitted, residual widths are
// histogrammed, a patch width is chosen to minimize total bits, and
// elements whose residuals exceed it become exceptions; the remaining
// residuals compress under the residual scheme. PFOR is the StepFitter
// instance of this combinator (kept separate because its base is the
// plain FOR form); PatchedModel{LinearFitter} is "patched diagonal
// lines" — a scheme the paper implies but names nowhere, obtained
// here for free by composition.
type PatchedModel struct {
	// Fitter produces the coarse model.
	Fitter ModelFitter
	// Residual compresses the patched residual column; nil means NS.
	Residual core.Scheme
	// ExcBits is the assumed per-exception cost for width selection;
	// zero means DefaultExceptionBits.
	ExcBits uint
}

// Name implements core.Scheme.
func (pm PatchedModel) Name() string {
	res := pm.Residual
	if res == nil {
		res = NS{}
	}
	return fmt.Sprintf("patch(plus(%s, %s))", pm.Fitter.FitName(), res.Name())
}

// Compress fits the model, splits wide residuals into patches and
// emits PATCH(PLUS(model, residual)).
//
// Fitting is two-round for robustness: least squares is not robust to
// the very outliers patching exists for, so the first fit only
// identifies exceptions; the model is then refitted with exceptions
// replaced by their round-one predictions, which keeps the inlier
// residuals at the noise width.
func (pm PatchedModel) Compress(src []int64) (*core.Form, error) {
	excBits := pm.ExcBits
	if excBits == 0 {
		excBits = DefaultExceptionBits
	}
	// Round one: fit everything, choose the patch width over the
	// zigzagged residual histogram.
	_, pred1, err := pm.Fitter.Fit(src)
	if err != nil {
		return nil, fmt.Errorf("patched model: %w", err)
	}
	residU := make([]uint64, len(src))
	for i := range src {
		residU[i] = bitpack.Zigzag(src[i] - pred1[i])
	}
	hist := bitpack.HistogramOf(residU)
	w, _ := hist.BestPatchWidth(excBits)

	var positions, values []int64
	cleaned := make([]int64, len(src))
	copy(cleaned, src)
	for i, u := range residU {
		if bitpack.Width(u) > w {
			positions = append(positions, int64(i))
			values = append(values, src[i])
			// Replace the exception with the nearest preceding inlier
			// (round-one predictions are themselves skewed by the
			// outliers, so they would leak outlier mass into the
			// refit).
			if i > 0 {
				cleaned[i] = cleaned[i-1]
			} else if len(src) > 1 {
				cleaned[i] = src[1]
			}
		}
	}

	// Round two: refit on the cleaned column; residuals are
	// non-negative by the fitters' base-shift construction.
	model, pred2, err := pm.Fitter.Fit(cleaned)
	if err != nil {
		return nil, fmt.Errorf("patched model: refit: %w", err)
	}
	resid := make([]int64, len(cleaned))
	for i := range cleaned {
		resid[i] = cleaned[i] - pred2[i]
	}
	res := pm.Residual
	if res == nil {
		res = NS{}
	}
	rf, err := res.Compress(resid)
	if err != nil {
		return nil, fmt.Errorf("patched model: residual scheme %q: %w", res.Name(), err)
	}
	base, err := NewPlusForm(model, rf)
	if err != nil {
		return nil, err
	}
	if positions == nil {
		positions = []int64{}
		values = []int64{}
	}
	return NewPatchForm(base, positions, values)
}

// Decompress delegates to the registry (the form is a PATCH form).
func (PatchedModel) Decompress(f *core.Form) ([]int64, error) {
	return core.Decompress(f)
}

var _ core.Scheme = PatchedModel{}

// EstimateSize implements core.SizeEstimator, bounded: the model
// shape prices like ModelResidual, and the patch width and exception
// count come from the delta histogram (the residuals a fitted model
// leaves are near the local variation, and its outliers become
// patches).
func (pm PatchedModel) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	segLen, modelBits, ok := modelShape(pm.Fitter, st.N)
	if !ok {
		return 0, false
	}
	excBits := pm.ExcBits
	if excBits == 0 {
		excBits = DefaultExceptionBits
	}
	maxOff, _, _, foldOK := st.SegFold(segLen)
	if !foldOK {
		maxOff = uint64(st.Max - st.Min)
	}
	w := bitpack.Width(maxOff)
	exc := 0
	if st.HasDeltas && st.N > 1 {
		wp, e := st.DeltaHist.BestPatchWidth(excBits)
		if wp < w {
			w, exc = wp, e
		}
	}
	res := pm.Residual
	if res == nil {
		res = NS{}
	}
	var resBits uint64
	if _, isNS := res.(NS); isNS {
		resBits = nsFormBits(st.N, w)
	} else {
		child := core.BlockStats{N: st.N, Max: widthMaxValue(w), HasMinMax: true}
		b, _, ok := core.EstimateOf(res, &child)
		if !ok {
			return 0, false
		}
		resBits = b
	}
	base := core.SatAddBits(core.FormOverheadBits(0)+modelBits, resBits)
	patch := core.FormOverheadBits(0) + leafBits(exc) + leafBits(exc)
	return core.SatAddBits(base, patch), false
}
