package scheme

import (
	"errors"
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

func TestParseRoundTripsDescribe(t *testing.T) {
	exprs := []string{
		"ns",
		"varint",
		"rle(lengths=ns, values=ns)",
		"rle(lengths=ns, values=delta(deltas=ns))",
		"rle(lengths=ns, values=delta(deltas=vns[32]))",
		"for[128](offsets=ns, refs=ns)",
		"rpe(positions=ns, values=ns)",
		"dict(codes=ns, dict=ns)",
	}
	src := []int64{5, 5, 5, 9, 9, 13, 13, 13, 13}
	for _, expr := range exprs {
		s, err := Parse(expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%q: compress: %v", expr, err)
		}
		got, err := core.Decompress(f)
		if err != nil || !vec.Equal(got, src) {
			t.Fatalf("%q: roundtrip: %v", expr, err)
		}
		// Describe of the produced form must re-parse to an
		// equivalent compressor.
		reparsed, err := Parse(f.Describe())
		if err != nil {
			t.Fatalf("re-parse %q: %v", f.Describe(), err)
		}
		f2, err := reparsed.Compress(src)
		if err != nil {
			t.Fatalf("re-parsed compress: %v", err)
		}
		if f2.Describe() != f.Describe() {
			t.Fatalf("describe drift: %q vs %q", f.Describe(), f2.Describe())
		}
	}
}

func TestParseArgs(t *testing.T) {
	s, err := Parse("for[64]")
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Compress(make([]int64, 200))
	if err != nil {
		t.Fatal(err)
	}
	if f.Params["seglen"] != 64 {
		t.Fatalf("seglen = %d", f.Params["seglen"])
	}
	s, err = Parse("pfor[256]")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "patch(for[256]+ns)" {
		t.Fatalf("pfor name = %q", s.Name())
	}
	if _, err := Parse("stepns[128]"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("linearns[128]"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"rle(",
		"rle(lengths=ns",
		"rle(lengths=ns,)",
		"rle(lengths)",
		"rle(lengths=ns) trailing",
		"for[abc]",
		"for[12",
		"plus",
		"patch",
		"rle(values=ns, values=ns)",
	}
	for _, expr := range cases {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) accepted", expr)
		}
	}
	if _, err := Parse("unknown-scheme"); !errors.Is(err, core.ErrUnknownScheme) {
		t.Fatalf("unknown err = %v", err)
	}
}
