package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// RPEName is the registry name of the run-position encoding scheme.
const RPEName = "rpe"

// RPE is Run Position Encoding (§II-A): instead of run lengths it
// stores run_positions — the inclusive prefix sum of the lengths, i.e.
// each run's end position (exclusive), with the final entry equal to
// the column length n.
//
// RPE is the scheme the paper obtains by *partially* decompressing
// RLE: "we could reproduce the uncompressed column by applying
// Algorithm 1, sans its first operation". It trades compression ratio
// (positions are wider than lengths) for ease of decompression (no
// prefix sum needed) — and, unlike RLE, supports O(log r) random
// access by binary search.
//
// Form layout: Children{"positions", "values"}, equal-length;
// positions strictly increasing, last equal to N.
type RPE struct{}

// Name implements core.Scheme.
func (RPE) Name() string { return RPEName }

// Compress splits src into runs and stores run end positions.
func (RPE) Compress(src []int64) (*core.Form, error) {
	lengths, values := runsOf(src)
	return &core.Form{
		Scheme: RPEName,
		N:      len(src),
		Children: map[string]*core.Form{
			"positions": NewIDForm(vec.PrefixSumInclusive(lengths)),
			"values":    NewIDForm(values),
		},
	}, nil
}

// Decompress expands runs from their boundary positions.
func (RPE) Decompress(f *core.Form) ([]int64, error) {
	if err := checkRPE(f); err != nil {
		return nil, err
	}
	positions, err := core.DecompressChild(f, "positions")
	if err != nil {
		return nil, err
	}
	values, err := core.DecompressChild(f, "values")
	if err != nil {
		return nil, err
	}
	out, err := vec.ExpandByBoundaries(values, positions)
	if err != nil {
		// Decreasing or overshooting boundaries are a corrupt payload,
		// the same class the fused select/aggregate kernels report for
		// them (checkRunBounds).
		return nil, fmt.Errorf("%w: rpe: %v", core.ErrCorruptForm, err)
	}
	if len(out) != f.N {
		return nil, fmt.Errorf("%w: rpe expanded %d values, form declares %d",
			core.ErrCorruptForm, len(out), f.N)
	}
	return out, nil
}

// Plan implements core.Planner: Algorithm 1 of the paper "sans its
// first operation" — the defining property of RPE (§II-A).
func (RPE) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkRPE(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	runPositions := b.Input("positions") // Algorithm 1 line 1 output, held directly
	values := b.Input("values")
	n := b.Last(runPositions)
	popped := b.PopBack(runPositions)
	one := b.ConstScalar(1)
	onesLen := b.Len(popped)
	ones := b.ConstantCol(one, onesLen)
	posDelta := b.Scatter(ones, popped, n)
	positions := b.PrefixSumInc(posDelta)
	b.Gather(values, positions)
	return b.Build()
}

// ValidateForm implements core.Validator.
func (RPE) ValidateForm(f *core.Form) error { return checkRPE(f) }

// DecompressCostPerElement implements core.Coster: like RLE's fill
// but without integrating lengths first.
func (RPE) DecompressCostPerElement(*core.Form) float64 { return 1.0 }

// ConstituentStats implements core.ConstituentStatser, exactly: run
// end positions are strictly increasing with maximum exactly N, and
// the values column is RLE's.
func (RPE) ConstituentStats(st *core.BlockStats) (uint64, []core.PredictedChild, bool, bool) {
	if !st.HasRuns || !st.HasMinMax {
		return 0, nil, false, false
	}
	var ps core.BlockStats
	ps.N = st.Runs
	ps.HasMinMax = true
	if st.Runs > 0 {
		ps.Min, ps.Max = 1, int64(st.N)
		ps.NonDecreasing = true
	}
	return core.FormOverheadBits(0), []core.PredictedChild{
		{Name: "positions", Stats: ps},
		{Name: "values", Stats: runValueStats(st)},
	}, true, true
}

func checkRPE(f *core.Form) error {
	if f.Scheme != RPEName {
		return fmt.Errorf("%w: rpe scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	p, err := f.Child("positions")
	if err != nil {
		return err
	}
	v, err := f.Child("values")
	if err != nil {
		return err
	}
	if p.N != v.N {
		return fmt.Errorf("%w: rpe positions (%d) and values (%d) differ in length",
			core.ErrCorruptForm, p.N, v.N)
	}
	return nil
}
