package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

// This file implements the paper's decomposition identities as form
// rewrites. Rewrites are structural: they rearrange the Form tree and
// share (not copy) child payloads, so both identities are zero-cost —
// which is itself part of the paper's point: the decomposed forms
// were "inside" the original scheme all along.

// DecomposeRLE rewrites an RLE form into the paper's §II-A identity
//
//	RLE ≡ (ID for values, DELTA for run_positions) ∘ RPE
//
// The resulting form is an RPE form whose positions child is a DELTA
// form whose deltas are exactly the RLE lengths: integrating run
// lengths gives run positions, so the identity holds with no payload
// changes at all.
func DecomposeRLE(f *core.Form) (*core.Form, error) {
	if f.Scheme != RLEName {
		return nil, fmt.Errorf("%w: DecomposeRLE on form %q", core.ErrCorruptForm, f.Scheme)
	}
	if err := checkRLE(f); err != nil {
		return nil, err
	}
	lengths, err := f.Child("lengths")
	if err != nil {
		return nil, err
	}
	values, err := f.Child("values")
	if err != nil {
		return nil, err
	}
	positions := &core.Form{
		Scheme:   DeltaName,
		N:        lengths.N,
		Children: map[string]*core.Form{"deltas": lengths},
	}
	return &core.Form{
		Scheme: RPEName,
		N:      f.N,
		Children: map[string]*core.Form{
			"positions": positions,
			"values":    values,
		},
	}, nil
}

// RecomposeRLE inverts DecomposeRLE: an RPE form whose positions are
// DELTA-compressed recomposes structurally (the deltas are the
// lengths); any other RPE form recomposes numerically by
// differentiating the positions.
func RecomposeRLE(f *core.Form) (*core.Form, error) {
	if f.Scheme != RPEName {
		return nil, fmt.Errorf("%w: RecomposeRLE on form %q", core.ErrCorruptForm, f.Scheme)
	}
	if err := checkRPE(f); err != nil {
		return nil, err
	}
	positions, err := f.Child("positions")
	if err != nil {
		return nil, err
	}
	values, err := f.Child("values")
	if err != nil {
		return nil, err
	}
	var lengths *core.Form
	if positions.Scheme == DeltaName {
		lengths, err = positions.Child("deltas")
		if err != nil {
			return nil, err
		}
	} else {
		pure, err := core.Decompress(positions)
		if err != nil {
			return nil, err
		}
		lengths = NewIDForm(vec.Delta(pure))
	}
	return &core.Form{
		Scheme: RLEName,
		N:      f.N,
		Children: map[string]*core.Form{
			"lengths": lengths,
			"values":  values,
		},
	}, nil
}

// PartialDecompressRLE realizes the paper's observation that RPE *is*
// partially-decompressed RLE: it materializes run positions by
// integrating the lengths ("applying Algorithm 1, sans its first
// operation" leaves a form whose positions are already integrated).
// Unlike DecomposeRLE, the result stores positions as a pure column —
// larger, but decompressible without the prefix sum.
func PartialDecompressRLE(f *core.Form) (*core.Form, error) {
	if f.Scheme != RLEName {
		return nil, fmt.Errorf("%w: PartialDecompressRLE on form %q", core.ErrCorruptForm, f.Scheme)
	}
	if err := checkRLE(f); err != nil {
		return nil, err
	}
	lengths, err := core.DecompressChild(f, "lengths")
	if err != nil {
		return nil, err
	}
	values, err := f.Child("values")
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme: RPEName,
		N:      f.N,
		Children: map[string]*core.Form{
			"positions": NewIDForm(vec.PrefixSumInclusive(lengths)),
			"values":    values,
		},
	}, nil
}

// DecomposeFOR rewrites a FOR form into the paper's §II-B identity
//
//	FOR ≡ (STEPFUNCTION + NS)
//
// The result is a PLUS form whose model child is a STEP form over the
// same refs and whose residual child is the offsets child unchanged.
func DecomposeFOR(f *core.Form) (*core.Form, error) {
	if f.Scheme != FORName {
		return nil, fmt.Errorf("%w: DecomposeFOR on form %q", core.ErrCorruptForm, f.Scheme)
	}
	if err := checkFOR(f); err != nil {
		return nil, err
	}
	refs, err := f.Child("refs")
	if err != nil {
		return nil, err
	}
	offsets, err := f.Child("offsets")
	if err != nil {
		return nil, err
	}
	model := &core.Form{
		Scheme:   StepName,
		N:        f.N,
		Params:   core.Params{"seglen": f.Params["seglen"]},
		Children: map[string]*core.Form{"refs": refs},
	}
	return NewPlusForm(model, offsets)
}

// RecomposeFOR inverts DecomposeFOR: a PLUS form whose model is a
// STEP form recomposes into a FOR form over the same refs and
// residual-as-offsets.
func RecomposeFOR(f *core.Form) (*core.Form, error) {
	if f.Scheme != PlusName {
		return nil, fmt.Errorf("%w: RecomposeFOR on form %q", core.ErrCorruptForm, f.Scheme)
	}
	if err := checkPlus(f); err != nil {
		return nil, err
	}
	model, err := f.Child("model")
	if err != nil {
		return nil, err
	}
	if model.Scheme != StepName {
		return nil, fmt.Errorf("%w: RecomposeFOR: model child is %q, want %q",
			core.ErrCorruptForm, model.Scheme, StepName)
	}
	if err := checkStep(model); err != nil {
		return nil, err
	}
	refs, err := model.Child("refs")
	if err != nil {
		return nil, err
	}
	residual, err := f.Child("residual")
	if err != nil {
		return nil, err
	}
	return &core.Form{
		Scheme: FORName,
		N:      f.N,
		Params: core.Params{"seglen": model.Params["seglen"]},
		Children: map[string]*core.Form{
			"refs":    refs,
			"offsets": residual,
		},
	}, nil
}
