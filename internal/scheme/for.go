package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// FORName is the registry name of the frame-of-reference scheme.
const FORName = "for"

// DefaultSegmentLength is used by compressors when the caller does not
// choose a segment length.
const DefaultSegmentLength = 1024

// FOR is frame-of-reference compression (§II-B): the column is cut
// into fixed-length segments; each segment stores a reference value,
// and elements store offsets from their segment's reference.
//
// This implementation takes each segment's minimum as the reference,
// so offsets are non-negative (the paper notes the reference "need
// not necessarily be the case that the first column element in the
// segment" — any value works; the minimum gives the narrowest
// non-negative offsets).
//
// Form layout: Params{"seglen"}; Children{"refs"} of length ⌈N/ℓ⌉ and
// Children{"offsets"} of length N, where elements i·ℓ … (i+1)·ℓ−1 are
// the offsets for segment i — exactly the paper's columnar view.
type FOR struct {
	// SegLen is the segment length ℓ used when compressing; zero
	// means DefaultSegmentLength.
	SegLen int
}

// Name implements core.Scheme.
func (FOR) Name() string { return FORName }

// Compress encodes src against per-segment minimum references.
func (s FOR) Compress(src []int64) (*core.Form, error) {
	segLen := s.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	if segLen < 1 {
		return nil, fmt.Errorf("for: invalid segment length %d", segLen)
	}
	nseg := (len(src) + segLen - 1) / segLen
	refs := make([]int64, nseg)
	offsets := make([]int64, len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		ref := src[lo]
		for _, v := range src[lo+1 : hi] {
			if v < ref {
				ref = v
			}
		}
		refs[seg] = ref
		for i := lo; i < hi; i++ {
			offsets[i] = src[i] - ref
		}
	}
	return &core.Form{
		Scheme: FORName,
		N:      len(src),
		Params: core.Params{"seglen": int64(segLen)},
		Children: map[string]*core.Form{
			"refs":    NewIDForm(refs),
			"offsets": NewIDForm(offsets),
		},
	}, nil
}

// Decompress adds each segment's reference back onto its offsets.
func (FOR) Decompress(f *core.Form) ([]int64, error) {
	if err := checkFOR(f); err != nil {
		return nil, err
	}
	segLen := int(f.Params["seglen"])
	refs, err := core.DecompressChild(f, "refs")
	if err != nil {
		return nil, err
	}
	offsets, err := core.DecompressChild(f, "offsets")
	if err != nil {
		return nil, err
	}
	if len(offsets) != f.N {
		return nil, fmt.Errorf("%w: for offsets child has %d values, form declares %d",
			core.ErrCorruptForm, len(offsets), f.N)
	}
	out, err := vec.ReplicateSegments(refs, segLen, f.N)
	if err != nil {
		return nil, fmt.Errorf("for: %w", err)
	}
	for i := range out {
		out[i] += offsets[i]
	}
	return out, nil
}

// Plan implements core.Planner with the paper's Algorithm 2:
//
//	1: ones        ← Constant(1, |offsets|)
//	2: id          ← PrefixSum(ones)        (exclusive, so that ids
//	                                         run 0…n−1 and the division
//	                                         lands on segment indices)
//	3: ells        ← Constant(ℓ, |offsets|)
//	4: ref_indices ← Elementwise(÷, id, ells)
//	5: replicated  ← Gather(refs, ref_indices)
//	6: return Elementwise(+, replicated, offsets)
func (FOR) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkFOR(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	offsets := b.Input("offsets")
	refs := b.Input("refs")
	one := b.ConstScalar(1)
	n := b.Len(offsets)
	ones := b.ConstantCol(one, n)                  // 1
	id := b.PrefixSumExc(ones)                     // 2
	ell := b.ConstScalar(f.Params["seglen"])       //
	ells := b.ConstantCol(ell, n)                  // 3
	refIndices := b.Elementwise(vec.Div, id, ells) // 4
	replicated := b.Gather(refs, refIndices)       // 5
	b.Elementwise(vec.Add, replicated, offsets)    // 6
	return b.Build()
}

// ValidateForm implements core.Validator.
func (FOR) ValidateForm(f *core.Form) error { return checkFOR(f) }

// DecompressCostPerElement implements core.Coster: one add plus an
// amortized segment lookup.
func (FOR) DecompressCostPerElement(*core.Form) float64 { return 1.3 }

// ConstituentStats implements core.ConstituentStatser: exact when the
// stats carry base per-segment extremes and the segment length is a
// multiple of the base granularity (references are the per-segment
// minima; the widest offset is the widest per-segment range);
// bounded by the whole-column range otherwise.
func (s FOR) ConstituentStats(st *core.BlockStats) (uint64, []core.PredictedChild, bool, bool) {
	if !st.HasMinMax {
		return 0, nil, false, false
	}
	segLen := s.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	if segLen < 1 {
		return 0, nil, false, false
	}
	maxOff, refMin, refMax, exact := st.SegFold(segLen)
	if !exact {
		maxOff = uint64(st.Max - st.Min)
		refMin, refMax = st.Min, st.Max
	}
	if maxOff > 1<<63-1 {
		maxOff = 1<<63 - 1
		exact = false
	}
	nseg := 0
	if st.N > 0 {
		nseg = (st.N + segLen - 1) / segLen
	}
	var refs, offs core.BlockStats
	refs.N = nseg
	refs.HasMinMax = true
	offs.N = st.N
	offs.HasMinMax = true
	if st.N > 0 {
		refs.Min, refs.Max = refMin, refMax
		offs.Max = int64(maxOff)
	}
	return core.FormOverheadBits(1), []core.PredictedChild{
		{Name: "refs", Stats: refs},
		{Name: "offsets", Stats: offs},
	}, exact, true
}

func checkFOR(f *core.Form) error {
	if f.Scheme != FORName {
		return fmt.Errorf("%w: for scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	segLen, err := f.Params.Get(FORName, "seglen")
	if err != nil {
		return err
	}
	if segLen < 1 {
		return fmt.Errorf("%w: for segment length %d", core.ErrCorruptForm, segLen)
	}
	refs, err := f.Child("refs")
	if err != nil {
		return err
	}
	offsets, err := f.Child("offsets")
	if err != nil {
		return err
	}
	nseg := (f.N + int(segLen) - 1) / int(segLen)
	if refs.N != nseg {
		return fmt.Errorf("%w: for refs child declares %d segments, need %d",
			core.ErrCorruptForm, refs.N, nseg)
	}
	if offsets.N != f.N {
		return fmt.Errorf("%w: for offsets child declares %d values, form declares %d",
			core.ErrCorruptForm, offsets.N, f.N)
	}
	return nil
}
