package scheme

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// VNSName is the registry name of the variable-width NS scheme.
const VNSName = "vns"

// DefaultVNSBlock is the default mini-block length of VNS.
const DefaultVNSBlock = 128

// VNS is variable-width null suppression: the column is cut into
// mini-blocks, each packed at its own minimal width. It approximates
// the paper's bit metric (§II-B: "a variable-width encoding for the
// offsets") at block rather than element granularity, trading a
// little ratio for word-aligned decoding. The per-block width column
// is itself a constituent column, so it can be compressed further by
// composition — the paper's parenthetical "(ignoring the encoding of
// offset widths for simplicity)" made concrete.
//
// Form layout: Params{"block", "zigzag"}; Children{"widths"} with one
// entry per mini-block; Packed holds the concatenated per-block
// payloads (block b occupies PackedWords(blockLen_b, widths[b])
// words).
type VNS struct {
	// Block is the mini-block length; zero means DefaultVNSBlock.
	Block int
}

// Name implements core.Scheme.
func (VNS) Name() string { return VNSName }

// Compress packs each mini-block at its own width.
func (s VNS) Compress(src []int64) (*core.Form, error) {
	block := s.Block
	if block == 0 {
		block = DefaultVNSBlock
	}
	if block < 1 {
		return nil, fmt.Errorf("vns: invalid block length %d", block)
	}
	zig := int64(0)
	for _, v := range src {
		if v < 0 {
			zig = 1
			break
		}
	}
	var u []uint64
	if zig == 1 {
		u = bitpack.ZigzagSlice(src)
	} else {
		u = bitpack.UnsignedSlice(src)
	}
	nblocks := (len(src) + block - 1) / block
	widths := make([]int64, nblocks)
	var packed []uint64
	for bIdx := 0; bIdx < nblocks; bIdx++ {
		lo := bIdx * block
		hi := lo + block
		if hi > len(u) {
			hi = len(u)
		}
		w := bitpack.MaxWidth(u[lo:hi])
		widths[bIdx] = int64(w)
		words, err := bitpack.Pack(u[lo:hi], w)
		if err != nil {
			return nil, fmt.Errorf("vns: block %d: %w", bIdx, err)
		}
		packed = append(packed, words...)
	}
	if packed == nil {
		packed = []uint64{}
	}
	return &core.Form{
		Scheme:   VNSName,
		N:        len(src),
		Params:   core.Params{"block": int64(block), "zigzag": zig},
		Children: map[string]*core.Form{"widths": NewIDForm(widths)},
		Packed:   packed,
	}, nil
}

// Decompress unpacks each mini-block at its recorded width.
func (VNS) Decompress(f *core.Form) ([]int64, error) {
	if err := checkVNS(f); err != nil {
		return nil, err
	}
	block := int(f.Params["block"])
	widths, err := core.DecompressChild(f, "widths")
	if err != nil {
		return nil, err
	}
	u := make([]uint64, f.N)
	wordPos := 0
	for bIdx := 0; bIdx*block < f.N; bIdx++ {
		lo := bIdx * block
		hi := lo + block
		if hi > f.N {
			hi = f.N
		}
		if bIdx >= len(widths) {
			return nil, fmt.Errorf("%w: vns widths child exhausted at block %d", core.ErrCorruptForm, bIdx)
		}
		w := widths[bIdx]
		if w < 0 || w > 64 {
			return nil, fmt.Errorf("%w: vns block %d declares width %d", core.ErrCorruptForm, bIdx, w)
		}
		need := bitpack.PackedWords(hi-lo, uint(w))
		if wordPos+need > len(f.Packed) {
			return nil, fmt.Errorf("%w: vns payload exhausted at block %d", core.ErrCorruptForm, bIdx)
		}
		if err := bitpack.UnpackInto(u[lo:hi], f.Packed[wordPos:wordPos+need], uint(w)); err != nil {
			return nil, fmt.Errorf("vns: block %d: %w", bIdx, err)
		}
		wordPos += need
	}
	if f.Params["zigzag"] == 1 {
		return bitpack.UnzigzagSlice(u), nil
	}
	return bitpack.SignedSlice(u), nil
}

// ValidateForm implements core.Validator.
func (VNS) ValidateForm(f *core.Form) error { return checkVNS(f) }

// DecompressCostPerElement implements core.Coster: NS cost plus a
// per-block width lookup.
func (VNS) DecompressCostPerElement(*core.Form) float64 { return 1.7 }

// EstimateSize implements core.SizeEstimator, bounded: the expected
// per-mini-block width is approximated by a high quantile of the
// value-width histogram (the maximum of `block` draws concentrates
// near the (1−1/block)-quantile), capped at the exact full width.
func (s VNS) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	block := s.Block
	if block == 0 {
		block = DefaultVNSBlock
	}
	if block < 1 {
		return 0, false
	}
	wMax, zig := st.NSShape()
	w := wMax
	if st.HasValueHist && st.N > 0 {
		w = st.ValueHist.WidthCovering(1 - 1/float64(2*block))
		if !zig && w > 0 {
			w-- // histogram is in the zigzag domain; raw widths sit one below
		}
		if w > wMax {
			w = wMax
		}
	}
	nblocks := (st.N + block - 1) / block
	words := uint64(st.N/block) * uint64(bitpack.PackedWords(block, w))
	if rem := st.N % block; rem > 0 {
		words += uint64(bitpack.PackedWords(rem, w))
	}
	return core.FormOverheadBits(2) + leafBits(nblocks) + words*64, false
}

func checkVNS(f *core.Form) error {
	if f.Scheme != VNSName {
		return fmt.Errorf("%w: vns scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	block, err := f.Params.Get(VNSName, "block")
	if err != nil {
		return err
	}
	if block < 1 {
		return fmt.Errorf("%w: vns block length %d", core.ErrCorruptForm, block)
	}
	zz, err := f.Params.Get(VNSName, "zigzag")
	if err != nil {
		return err
	}
	if zz != 0 && zz != 1 {
		return fmt.Errorf("%w: vns zigzag flag %d", core.ErrCorruptForm, zz)
	}
	widths, err := f.Child("widths")
	if err != nil {
		return err
	}
	nblocks := (f.N + int(block) - 1) / int(block)
	if widths.N != nblocks {
		return fmt.Errorf("%w: vns widths child declares %d blocks, need %d",
			core.ErrCorruptForm, widths.N, nblocks)
	}
	return nil
}
