package scheme

import (
	"fmt"

	"lwcomp/internal/core"
)

// LinearName is the registry name of the piecewise-linear scheme.
const LinearName = "linear"

// DefaultFracBits is the default fixed-point fraction width for
// slopes.
const DefaultFracBits = 16

// Linear represents columns that are exactly the evaluation of a
// fixed-segment piecewise-linear function — the paper's §II-B
// enrichment of the model space: "keep an offset from a diagonal line
// at some slope rather than the offset from a horizontal step".
//
// Slopes are fixed-point integers with frac fractional bits; the
// value at offset j within segment s is
//
//	bases[s] + (slopes[s]·j) >> frac
//
// (arithmetic shift, so negative slopes round toward −∞ — the fitters
// use the identical formula, which is all that exactness requires).
//
// Like Step, Compress accepts only exactly-representable columns;
// lossy fitting is the job of the model-residual combinator.
//
// Form layout: Params{"seglen", "frac"}; Children{"bases", "slopes"}
// of length ⌈N/ℓ⌉.
type Linear struct {
	// SegLen is the segment length used when compressing; zero means
	// DefaultSegmentLength.
	SegLen int
	// Frac is the fixed-point fraction width; zero means
	// DefaultFracBits.
	Frac uint
}

// Name implements core.Scheme.
func (Linear) Name() string { return LinearName }

// LinearPredict evaluates the fixed-point line at offset j.
func LinearPredict(base, slope int64, j int, frac uint) int64 {
	return base + (slope*int64(j))>>frac
}

// Compress verifies src is exactly piecewise linear under the
// endpoint-fitted slope and stores one (base, slope) pair per
// segment.
func (s Linear) Compress(src []int64) (*core.Form, error) {
	segLen := s.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	frac := s.Frac
	if frac == 0 {
		frac = DefaultFracBits
	}
	if segLen < 1 {
		return nil, fmt.Errorf("linear: invalid segment length %d", segLen)
	}
	if frac > 30 {
		return nil, fmt.Errorf("linear: fraction width %d too large (max 30)", frac)
	}
	nseg := (len(src) + segLen - 1) / segLen
	bases := make([]int64, nseg)
	slopes := make([]int64, nseg)
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		base, slope := fitLineEndpoints(src[lo:hi], frac)
		bases[seg] = base
		slopes[seg] = slope
		for i := lo; i < hi; i++ {
			if LinearPredict(base, slope, i-lo, frac) != src[i] {
				return nil, fmt.Errorf("%w: linear scheme: segment %d deviates at element %d",
					core.ErrNotRepresentable, seg, i)
			}
		}
	}
	return NewLinearForm(bases, slopes, segLen, frac, len(src)), nil
}

// fitLineEndpoints fits a fixed-point line through a segment's
// endpoints: slope = (last−first)/(len−1) in frac fixed point, base =
// first element.
func fitLineEndpoints(seg []int64, frac uint) (base, slope int64) {
	if len(seg) == 0 {
		return 0, 0
	}
	base = seg[0]
	if len(seg) == 1 {
		return base, 0
	}
	num := seg[len(seg)-1] - seg[0]
	den := int64(len(seg) - 1)
	// Round-to-nearest fixed-point division.
	scaled := num << frac
	slope = (scaled + den/2) / den
	if scaled < 0 {
		slope = (scaled - den/2) / den
	}
	return base, slope
}

// NewLinearForm builds the canonical LINEAR form.
func NewLinearForm(bases, slopes []int64, segLen int, frac uint, n int) *core.Form {
	return &core.Form{
		Scheme: LinearName,
		N:      n,
		Params: core.Params{"seglen": int64(segLen), "frac": int64(frac)},
		Children: map[string]*core.Form{
			"bases":  NewIDForm(bases),
			"slopes": NewIDForm(slopes),
		},
	}
}

// Decompress evaluates the piecewise-linear function.
func (Linear) Decompress(f *core.Form) ([]int64, error) {
	if err := checkLinear(f); err != nil {
		return nil, err
	}
	segLen := int(f.Params["seglen"])
	frac := uint(f.Params["frac"])
	bases, err := core.DecompressChild(f, "bases")
	if err != nil {
		return nil, err
	}
	slopes, err := core.DecompressChild(f, "slopes")
	if err != nil {
		return nil, err
	}
	out := make([]int64, f.N)
	for seg := 0; seg*segLen < f.N; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > f.N {
			hi = f.N
		}
		base, slope := bases[seg], slopes[seg]
		for i := lo; i < hi; i++ {
			out[i] = LinearPredict(base, slope, i-lo, frac)
		}
	}
	return out, nil
}

// ValidateForm implements core.Validator.
func (Linear) ValidateForm(f *core.Form) error { return checkLinear(f) }

// DecompressCostPerElement implements core.Coster: a multiply, shift
// and add per element.
func (Linear) DecompressCostPerElement(*core.Form) float64 { return 1.6 }

func checkLinear(f *core.Form) error {
	if f.Scheme != LinearName {
		return fmt.Errorf("%w: linear scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	segLen, err := f.Params.Get(LinearName, "seglen")
	if err != nil {
		return err
	}
	if segLen < 1 {
		return fmt.Errorf("%w: linear segment length %d", core.ErrCorruptForm, segLen)
	}
	frac, err := f.Params.Get(LinearName, "frac")
	if err != nil {
		return err
	}
	if frac < 0 || frac > 30 {
		return fmt.Errorf("%w: linear fraction width %d", core.ErrCorruptForm, frac)
	}
	bases, err := f.Child("bases")
	if err != nil {
		return err
	}
	slopes, err := f.Child("slopes")
	if err != nil {
		return err
	}
	nseg := (f.N + int(segLen) - 1) / int(segLen)
	if bases.N != nseg || slopes.N != nseg {
		return fmt.Errorf("%w: linear children declare %d and %d segments, need %d",
			core.ErrCorruptForm, bases.N, slopes.N, nseg)
	}
	return nil
}
