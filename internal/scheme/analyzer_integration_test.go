package scheme

import (
	"testing"

	"lwcomp/internal/column"
	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

// analyzeForTest wraps column.Analyze for use in this package's
// tests.
func analyzeForTest(src []int64) column.Stats { return column.Analyze(src) }

// statsForTest collects the hot-path block statistics the analyzer
// consumes.
func statsForTest(src []int64) *core.BlockStats {
	st := core.CollectStats(src, nil)
	return &st
}

// TestAnalyzerEndToEnd drives the core analyzer over the real
// candidate space on characteristic workloads and checks that the
// winner both round-trips and is at least as small as every
// single-scheme baseline — the paper's "richer view" claim in
// miniature.
func TestAnalyzerEndToEnd(t *testing.T) {
	workloads := map[string][]int64{}

	// Run-structured monotone dates.
	dates := make([]int64, 5000)
	d := int64(730000)
	for i := range dates {
		if i%37 == 0 {
			d++
		}
		dates[i] = d
	}
	workloads["dates"] = dates

	// Locally-varying walk.
	walk := make([]int64, 5000)
	w := int64(1 << 30)
	for i := range walk {
		w += int64((i*2654435761)%41) - 20
		walk[i] = w
	}
	workloads["walk"] = walk

	// Low cardinality.
	lowcard := make([]int64, 5000)
	for i := range lowcard {
		lowcard[i] = int64((i * 31) % 7)
	}
	workloads["lowcard"] = lowcard

	// Constant.
	constant := make([]int64, 1000)
	for i := range constant {
		constant[i] = 123456789
	}
	workloads["constant"] = constant

	for name, src := range workloads {
		stats := statsForTest(src)
		a := &core.Analyzer{Candidates: DefaultCandidates(stats), Stats: stats}
		choice, err := a.Best(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := core.Decompress(choice.Form)
		if err != nil || !vec.Equal(got, src) {
			t.Fatalf("%s: winner %q does not round-trip: %v", name, choice.Desc, err)
		}
		// Winner must not lose to the plain NS baseline.
		nsForm, err := NS{}.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		if choice.Form.PayloadBits() > nsForm.PayloadBits() {
			t.Fatalf("%s: winner %q (%d bits) loses to NS (%d bits)",
				name, choice.Desc, choice.Form.PayloadBits(), nsForm.PayloadBits())
		}
		t.Logf("%s: %s ratio %.1f", name, choice.Desc, choice.Eval.Ratio)
	}
}

func TestAnalyzerPicksConstForConstant(t *testing.T) {
	src := make([]int64, 512)
	stats := statsForTest(src)
	a := &core.Analyzer{Candidates: DefaultCandidates(stats), Stats: stats}
	choice, err := a.Best(src)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Desc != ConstName {
		t.Fatalf("constant column winner = %q, want const", choice.Desc)
	}
}
