package scheme

import (
	"testing"
	"testing/quick"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// planners lists every scheme whose decompression is expressible as
// an operator plan, with a compressor that produces a non-trivial
// form for the given source.
func planners() map[string]core.Scheme {
	return map[string]core.Scheme{
		"delta": Delta{},
		"rle":   RLE{},
		"rpe":   RPE{},
		"for":   FOR{SegLen: 16},
		"dict":  Dict{},
	}
}

// TestPlanMatchesKernel is the paper's central check: the operator
// plan (Algorithms 1 and 2 and their relatives) must reproduce the
// fused kernel's output bit for bit, with and without idiom fusion.
func TestPlanMatchesKernel(t *testing.T) {
	for colName, col := range testColumns() {
		if len(col) == 0 {
			continue // Algorithm 1's Last(·) is undefined on empty inputs
		}
		for schemeName, s := range planners() {
			f, err := s.Compress(col)
			if err != nil {
				t.Fatalf("%s on %s: compress: %v", schemeName, colName, err)
			}
			kernel, err := core.Decompress(f)
			if err != nil {
				t.Fatalf("%s on %s: kernel: %v", schemeName, colName, err)
			}
			plain, err := core.DecompressViaPlan(f, false)
			if err != nil {
				t.Fatalf("%s on %s: plan: %v", schemeName, colName, err)
			}
			if !vec.Equal(plain, kernel) {
				t.Errorf("%s on %s: plan differs from kernel", schemeName, colName)
			}
			fused, err := core.DecompressViaPlan(f, true)
			if err != nil {
				t.Fatalf("%s on %s: fused plan: %v", schemeName, colName, err)
			}
			if !vec.Equal(fused, kernel) {
				t.Errorf("%s on %s: fused plan differs from kernel", schemeName, colName)
			}
		}
	}
}

func TestPlanMatchesKernelProperty(t *testing.T) {
	s := RLE{}
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		src := make([]int64, len(raw))
		for i, r := range raw {
			src[i] = int64(r % 5)
		}
		f, err := s.Compress(src)
		if err != nil {
			return false
		}
		kernel, err := core.Decompress(f)
		if err != nil {
			return false
		}
		plan, err := core.DecompressViaPlan(f, false)
		if err != nil {
			return false
		}
		return vec.Equal(kernel, plan)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRLEPlanShape pins the plan to Algorithm 1's operator sequence.
func TestRLEPlanShape(t *testing.T) {
	f, err := RLE{}.Compress([]int64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := RLE{}.Plan(f)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []exec.OpKind
	for _, n := range plan.Nodes {
		kinds = append(kinds, n.Op)
	}
	want := []exec.OpKind{
		exec.OpInput, exec.OpInput,
		exec.OpPrefixSumInc, // 1: run_positions
		exec.OpLast,         // 2: n
		exec.OpPopBack,      // 3
		exec.OpConstScalar, exec.OpLen,
		exec.OpConstantCol,  // 4: ones
		exec.OpScatter,      // 5+6
		exec.OpPrefixSumInc, // 7
		exec.OpGather,       // 8
	}
	if len(kinds) != len(want) {
		t.Fatalf("plan has %d nodes, want %d:\n%s", len(kinds), len(want), plan)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("node %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

// TestRPEPlanIsRLEPlanSansFirstOp verifies the paper's definition:
// RPE's plan is Algorithm 1 minus its first operation (the prefix sum
// over lengths).
func TestRPEPlanIsRLEPlanSansFirstOp(t *testing.T) {
	src := []int64{3, 3, 3, 8, 8}
	rleForm, err := RLE{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	rpeForm, err := RPE{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	rlePlan, err := RLE{}.Plan(rleForm)
	if err != nil {
		t.Fatal(err)
	}
	rpePlan, err := RPE{}.Plan(rpeForm)
	if err != nil {
		t.Fatal(err)
	}
	countPrefix := func(p *exec.Plan) int {
		c := 0
		for _, n := range p.Nodes {
			if n.Op == exec.OpPrefixSumInc {
				c++
			}
		}
		return c
	}
	if countPrefix(rlePlan) != 2 || countPrefix(rpePlan) != 1 {
		t.Fatalf("prefix sums: rle %d (want 2), rpe %d (want 1)", countPrefix(rlePlan), countPrefix(rpePlan))
	}
	if len(rpePlan.Nodes) != len(rlePlan.Nodes)-1 {
		t.Fatalf("rpe plan should be one op shorter: rle %d, rpe %d", len(rlePlan.Nodes), len(rpePlan.Nodes))
	}
}

// TestStepPlanIsFORPlanSansAddition verifies the other decomposition
// direction: STEP's plan is Algorithm 2 with the final addition
// dropped.
func TestStepPlanIsFORPlanSansAddition(t *testing.T) {
	src := []int64{4, 4, 9, 9}
	stepForm, err := Step{SegLen: 2}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Step{SegLen: 2}.Plan(stepForm)
	if err != nil {
		t.Fatal(err)
	}
	last := plan.Nodes[len(plan.Nodes)-1]
	if last.Op != exec.OpGather {
		t.Fatalf("step plan ends in %s, want Gather", last.Op)
	}
	out, err := core.DecompressViaPlan(stepForm, false)
	if err != nil || !vec.Equal(out, src) {
		t.Fatalf("step plan output = %v, %v", out, err)
	}
	// And fused.
	out, err = core.DecompressViaPlan(stepForm, true)
	if err != nil || !vec.Equal(out, src) {
		t.Fatalf("fused step plan output = %v, %v", out, err)
	}
}

// TestPlusAndPatchPlans covers the combinator schemes' plans.
func TestPlusAndPatchPlans(t *testing.T) {
	src := []int64{10, 20, 30, 40, 41, 43}
	mr := ModelResidual{Fitter: StepFitter{SegLen: 3}}
	f, err := mr.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.DecompressViaPlan(f, false)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("plus plan = %v, %v", got, err)
	}

	pf, err := (PFOR{SegLen: 3}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err = core.DecompressViaPlan(pf, false)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("patch plan = %v, %v", got, err)
	}
}

// TestFusionReducesOps measures that fusion strictly reduces the node
// count for both paper algorithms (the EXP-B/EXP-D ablation hinges on
// this).
func TestFusionReducesOps(t *testing.T) {
	src := make([]int64, 256)
	for i := range src {
		src[i] = int64(i / 7)
	}
	for _, s := range []core.Scheme{RLE{}, FOR{SegLen: 32}} {
		f, err := s.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := core.PlanOf(f)
		if err != nil {
			t.Fatal(err)
		}
		fused := exec.Fuse(plan)
		if len(fused.Nodes) >= len(plan.Nodes) {
			t.Errorf("%s: fusion %d -> %d nodes", s.Name(), len(plan.Nodes), len(fused.Nodes))
		}
	}
}
