package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// RLEName is the registry name of the run-length encoding scheme.
const RLEName = "rle"

// RLE is run-length encoding in the paper's columnar view (§II-A):
// "a single column col of values is compressed into a pair of
// corresponding columns, lengths and values, whose length is the
// number of runs in col".
//
// Form layout: Children{"lengths", "values"}, equal-length; run i
// repeats values[i] lengths[i] times. All lengths are ≥ 1 (maximal
// runs).
type RLE struct{}

// Name implements core.Scheme.
func (RLE) Name() string { return RLEName }

// Compress splits src into maximal runs.
func (RLE) Compress(src []int64) (*core.Form, error) {
	lengths, values := runsOf(src)
	return &core.Form{
		Scheme: RLEName,
		N:      len(src),
		Children: map[string]*core.Form{
			"lengths": NewIDForm(lengths),
			"values":  NewIDForm(values),
		},
	}, nil
}

// runsOf returns the maximal-run decomposition of src.
func runsOf(src []int64) (lengths, values []int64) {
	if len(src) == 0 {
		return []int64{}, []int64{}
	}
	cur := src[0]
	var runLen int64
	for _, v := range src {
		if v == cur {
			runLen++
			continue
		}
		lengths = append(lengths, runLen)
		values = append(values, cur)
		cur = v
		runLen = 1
	}
	lengths = append(lengths, runLen)
	values = append(values, cur)
	return lengths, values
}

// Decompress expands the runs with the fused kernel.
func (RLE) Decompress(f *core.Form) ([]int64, error) {
	if err := checkRLE(f); err != nil {
		return nil, err
	}
	lengths, err := core.DecompressChild(f, "lengths")
	if err != nil {
		return nil, err
	}
	values, err := core.DecompressChild(f, "values")
	if err != nil {
		return nil, err
	}
	out := make([]int64, f.N)
	if _, err := vec.RunExpandInto(out, values, lengths); err != nil {
		// A run set that does not expand to exactly f.N elements —
		// negative lengths, overshoot, undershoot — is a corrupt
		// payload, the same class the fused select/aggregate kernels
		// report for it (checkRunBounds).
		return nil, fmt.Errorf("%w: rle: %v", core.ErrCorruptForm, err)
	}
	return out, nil
}

// Plan implements core.Planner with the paper's Algorithm 1,
// line for line:
//
//	1: run_positions  ← PrefixSum(lengths)
//	2: n              ← run_positions[|run_positions|−1]
//	3: run_positions' ← PopBack(run_positions)
//	4: ones           ← Constant(1, |run_positions'|)
//	5: zeros          ← Constant(0, n)      (the paper's line 5 has a
//	                                         typographical 1; a zero
//	                                         base is required for the
//	                                         scatter/prefix-sum trick)
//	6: pos_delta      ← Scatter(ones, run_positions')
//	7: positions      ← PrefixSum(pos_delta)
//	8: return Gather(values, positions)
//
// The engine's Scatter allocates its zero destination, covering lines
// 5 and 6 in one node.
func (RLE) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkRLE(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	lengths := b.Input("lengths")
	values := b.Input("values")
	runPositions := b.PrefixSumInc(lengths) // 1
	n := b.Last(runPositions)               // 2
	popped := b.PopBack(runPositions)       // 3
	one := b.ConstScalar(1)                 //
	onesLen := b.Len(popped)                //
	ones := b.ConstantCol(one, onesLen)     // 4
	posDelta := b.Scatter(ones, popped, n)  // 5+6
	positions := b.PrefixSumInc(posDelta)   // 7
	b.Gather(values, positions)             // 8
	return b.Build()
}

// ValidateForm implements core.Validator.
func (RLE) ValidateForm(f *core.Form) error { return checkRLE(f) }

// DecompressCostPerElement implements core.Coster: run expansion is a
// sequential fill, near copy cost.
func (RLE) DecompressCostPerElement(*core.Form) float64 { return 1.1 }

// ConstituentStats implements core.ConstituentStatser, exactly:
// every element's value is its run's head value, so the values
// column inherits the parent's extremes, distinct count, and
// run-delta statistics; lengths are bounded by [1, MaxRunLen].
func (RLE) ConstituentStats(st *core.BlockStats) (uint64, []core.PredictedChild, bool, bool) {
	if !st.HasRuns || !st.HasMinMax {
		return 0, nil, false, false
	}
	return core.FormOverheadBits(0), []core.PredictedChild{
		{Name: "lengths", Stats: runLengthStats(st)},
		{Name: "values", Stats: runValueStats(st)},
	}, true, true
}

// runLengthStats derives the stats of RLE's lengths column. Min is a
// conservative 1 (lengths of maximal runs are at least 1), which is
// all NS-shaped estimation needs: the zigzag decision depends only on
// the sign and the width only on Max.
func runLengthStats(st *core.BlockStats) core.BlockStats {
	var cs core.BlockStats
	cs.N = st.Runs
	cs.HasMinMax = true
	if st.Runs > 0 {
		cs.Min, cs.Max = 1, st.MaxRunLen
	}
	return cs
}

// runValueStats derives the stats of RLE's (and RPE's) values
// column: the run-head values. Adjacent run heads always differ, so
// the child is run-free (every run has length 1) and its delta
// statistics are the parent's run-delta statistics.
func runValueStats(st *core.BlockStats) core.BlockStats {
	var cs core.BlockStats
	cs.N = st.Runs
	cs.HasMinMax = true
	cs.First = st.First
	cs.Min, cs.Max = st.Min, st.Max
	cs.Runs = st.Runs
	if st.Runs > 0 {
		cs.MaxRunLen = 1
	}
	cs.HasRuns = true
	if st.HasRunDeltas {
		cs.DeltaMin, cs.DeltaMax = st.RunDeltaMin, st.RunDeltaMax
		cs.DeltaHist = st.RunDeltaHist
		cs.HasDeltas = true
		cs.RunDeltaMin, cs.RunDeltaMax = st.RunDeltaMin, st.RunDeltaMax
		cs.RunDeltaHist = st.RunDeltaHist
		cs.HasRunDeltas = true
	}
	if st.HasDistinct {
		cs.Distinct = st.Distinct
		cs.HasDistinct = true
	}
	return cs
}

func checkRLE(f *core.Form) error {
	if f.Scheme != RLEName {
		return fmt.Errorf("%w: rle scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	l, err := f.Child("lengths")
	if err != nil {
		return err
	}
	v, err := f.Child("values")
	if err != nil {
		return err
	}
	if l.N != v.N {
		return fmt.Errorf("%w: rle lengths (%d) and values (%d) differ in length",
			core.ErrCorruptForm, l.N, v.N)
	}
	return nil
}
