package scheme

import (
	"fmt"

	"lwcomp/internal/core"
)

// ConstName is the registry name of the constant scheme.
const ConstName = "const"

// Const represents columns holding a single repeated value — the
// degenerate end of the paper's model spectrum (a step function with
// one step, or RLE with one run). It exists because the analyzer
// should never spend bits on a column with no information.
//
// Form layout: Params{"value"}; no children, no payload.
type Const struct{}

// Name implements core.Scheme.
func (Const) Name() string { return ConstName }

// Compress encodes src if all of its elements are equal, and reports
// core.ErrNotRepresentable otherwise. Empty columns encode with value
// zero.
func (Const) Compress(src []int64) (*core.Form, error) {
	var v int64
	if len(src) > 0 {
		v = src[0]
		for i, x := range src {
			if x != v {
				return nil, fmt.Errorf("%w: const scheme at position %d: %d != %d",
					core.ErrNotRepresentable, i, x, v)
			}
		}
	}
	return &core.Form{Scheme: ConstName, N: len(src), Params: core.Params{"value": v}}, nil
}

// Decompress materializes the repeated value.
func (Const) Decompress(f *core.Form) ([]int64, error) {
	if err := checkConst(f); err != nil {
		return nil, err
	}
	v := f.Params["value"]
	out := make([]int64, f.N)
	for i := range out {
		out[i] = v
	}
	return out, nil
}

// ValidateForm implements core.Validator.
func (Const) ValidateForm(f *core.Form) error { return checkConst(f) }

// DecompressCostPerElement implements core.Coster: a fill.
func (Const) DecompressCostPerElement(*core.Form) float64 { return 0.5 }

// EstimateSize implements core.SizeEstimator, exactly: a constant
// column costs one parameter, and Min ≠ Max proves the scheme cannot
// represent the column at all.
func (Const) EstimateSize(st *core.BlockStats) (uint64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	if st.N > 0 && st.Min != st.Max {
		return core.ImpossibleBits, true
	}
	return core.FormOverheadBits(1), true
}

func checkConst(f *core.Form) error {
	if f.Scheme != ConstName {
		return fmt.Errorf("%w: const scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	if _, err := f.Params.Get(ConstName, "value"); err != nil {
		return err
	}
	if len(f.Children) != 0 || f.Leaf != nil || f.Packed != nil || f.Bytes != nil {
		return fmt.Errorf("%w: const form carries payload", core.ErrCorruptForm)
	}
	return nil
}
