package scheme

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

// testColumns is the shared corpus of edge-case and structured
// columns every scheme must round-trip.
func testColumns() map[string][]int64 {
	rng := rand.New(rand.NewSource(99))
	runny := make([]int64, 500)
	v := int64(100)
	for i := range runny {
		if rng.Intn(10) == 0 {
			v += rng.Int63n(5)
		}
		runny[i] = v
	}
	walk := make([]int64, 300)
	w := int64(1000)
	for i := range walk {
		w += rng.Int63n(21) - 10
		walk[i] = w
	}
	mixed := make([]int64, 257)
	for i := range mixed {
		mixed[i] = rng.Int63n(1<<40) - (1 << 39)
	}
	return map[string][]int64{
		"empty":        {},
		"single":       {42},
		"single-neg":   {-42},
		"constant":     {7, 7, 7, 7, 7, 7, 7},
		"two-runs":     {1, 1, 1, 2, 2},
		"alternating":  {0, 1, 0, 1, 0, 1, 0},
		"monotone":     {1, 2, 3, 5, 8, 13, 21, 34},
		"negatives":    {-5, -5, 0, 3, -9, 3},
		"extremes":     {math.MaxInt64, math.MinInt64, 0, -1, 1},
		"runny":        runny,
		"random-walk":  walk,
		"mixed-random": mixed,
	}
}

// roundTrippers lists every compressor that must be lossless on every
// column in the corpus (exact-domain schemes like Step and Linear are
// excluded and tested separately).
func roundTrippers() map[string]core.Scheme {
	return map[string]core.Scheme{
		"id":           ID{},
		"ns":           NS{},
		"varint":       Varint{},
		"vns":          VNS{Block: 64},
		"delta":        Delta{},
		"rle":          RLE{},
		"rpe":          RPE{},
		"for":          FOR{SegLen: 32},
		"dict":         Dict{},
		"rle+ns":       RLEComposite(),
		"rle+delta":    RLEDeltaComposite(),
		"rpe+ns":       RPEComposite(),
		"delta+ns":     DeltaNS(),
		"for+ns":       FORComposite(32),
		"for+vns":      FORVNSComposite(64, 32),
		"dict+ns":      DictComposite(),
		"pfor":         PFOR{SegLen: 64},
		"mres-step":    ModelResidual{Fitter: StepFitter{SegLen: 32}},
		"mres-linear":  ModelResidual{Fitter: LinearFitter{SegLen: 32}},
		"mres-lin-vns": ModelResidual{Fitter: LinearFitter{SegLen: 32}, Residual: VNS{Block: 32}},
	}
}

func TestRoundTripCorpus(t *testing.T) {
	for colName, col := range testColumns() {
		for schemeName, s := range roundTrippers() {
			f, err := s.Compress(col)
			if err != nil {
				t.Errorf("%s on %s: compress: %v", schemeName, colName, err)
				continue
			}
			if f.N != len(col) {
				t.Errorf("%s on %s: form N=%d, want %d", schemeName, colName, f.N, len(col))
				continue
			}
			if err := f.Validate(); err != nil {
				t.Errorf("%s on %s: validate: %v", schemeName, colName, err)
				continue
			}
			got, err := core.Decompress(f)
			if err != nil {
				t.Errorf("%s on %s: decompress: %v", schemeName, colName, err)
				continue
			}
			if !vec.Equal(got, col) {
				t.Errorf("%s on %s: roundtrip mismatch", schemeName, colName)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	schemes := []core.Scheme{
		NS{}, Varint{}, VNS{Block: 16}, Delta{}, RLE{}, RPE{},
		FOR{SegLen: 16}, Dict{}, RLEDeltaComposite(), PFOR{SegLen: 16},
	}
	for _, s := range schemes {
		s := s
		check := func(raw []int32) bool {
			src := make([]int64, len(raw))
			for i, r := range raw {
				src[i] = int64(r)
			}
			f, err := s.Compress(src)
			if err != nil {
				return false
			}
			got, err := core.Decompress(f)
			if err != nil {
				return false
			}
			return vec.Equal(got, src)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestConstScheme(t *testing.T) {
	f, err := Const{}.Compress([]int64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(f)
	if err != nil || !vec.Equal(got, []int64{5, 5, 5}) {
		t.Fatalf("const roundtrip = %v, %v", got, err)
	}
	if _, err := (Const{}).Compress([]int64{1, 2}); !errors.Is(err, core.ErrNotRepresentable) {
		t.Fatalf("non-constant err = %v", err)
	}
	// Empty column.
	f, err = Const{}.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := core.Decompress(f); err != nil || len(got) != 0 {
		t.Fatalf("empty const = %v, %v", got, err)
	}
}

func TestStepScheme(t *testing.T) {
	src := []int64{4, 4, 4, 9, 9, 9, 1, 1}
	f, err := Step{SegLen: 3}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(f)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("step roundtrip = %v, %v", got, err)
	}
	refs, err := core.DecompressChild(f, "refs")
	if err != nil || !vec.Equal(refs, []int64{4, 9, 1}) {
		t.Fatalf("refs = %v, %v", refs, err)
	}
	if _, err := (Step{SegLen: 3}).Compress([]int64{1, 2, 3}); !errors.Is(err, core.ErrNotRepresentable) {
		t.Fatalf("non-step err = %v", err)
	}
}

func TestLinearScheme(t *testing.T) {
	// Exactly linear: v = 10 + 3j per segment of 4.
	src := make([]int64, 8)
	for i := range src {
		seg := i / 4
		j := i % 4
		src[i] = int64(10+100*seg) + int64(3*j)
	}
	f, err := Linear{SegLen: 4}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(f)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("linear roundtrip = %v, %v", got, err)
	}
	if _, err := (Linear{SegLen: 4}).Compress([]int64{0, 5, 1, 9}); !errors.Is(err, core.ErrNotRepresentable) {
		t.Fatalf("non-linear err = %v", err)
	}
}

func TestNSWidthSelection(t *testing.T) {
	f, err := NS{}.Compress([]int64{0, 1, 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.Params["width"] != 3 || f.Params["zigzag"] != 0 {
		t.Fatalf("params = %v", f.Params)
	}
	f, err = NS{}.Compress([]int64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Params["zigzag"] != 1 {
		t.Fatalf("negative column did not zigzag: %v", f.Params)
	}
}

func TestNSCompressionRatioOnNarrowData(t *testing.T) {
	src := make([]int64, 4096)
	for i := range src {
		src[i] = int64(i % 16) // 4-bit values
	}
	f, err := NS{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.CompressionRatio(); r < 10 {
		t.Fatalf("4-bit NS ratio = %.1f, want ≈16", r)
	}
}

func TestDictCodesOrderPreserving(t *testing.T) {
	f, err := Dict{}.Compress([]int64{30, 10, 20, 10})
	if err != nil {
		t.Fatal(err)
	}
	dict, err := core.DecompressChild(f, "dict")
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(dict, []int64{10, 20, 30}) {
		t.Fatalf("dict not sorted: %v", dict)
	}
	codes, err := core.DecompressChild(f, "codes")
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(codes, []int64{2, 0, 1, 0}) {
		t.Fatalf("codes = %v", codes)
	}
}

func TestRLEFormShape(t *testing.T) {
	f, err := RLE{}.Compress([]int64{7, 7, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	lengths, _ := core.DecompressChild(f, "lengths")
	values, _ := core.DecompressChild(f, "values")
	if !vec.Equal(lengths, []int64{2, 3}) || !vec.Equal(values, []int64{7, 9}) {
		t.Fatalf("runs = %v / %v", lengths, values)
	}
}

func TestRPEPositionsShape(t *testing.T) {
	f, err := RPE{}.Compress([]int64{7, 7, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	positions, _ := core.DecompressChild(f, "positions")
	if !vec.Equal(positions, []int64{2, 5}) {
		t.Fatalf("positions = %v", positions)
	}
}

func TestFORRefsAreSegmentMinima(t *testing.T) {
	f, err := FOR{SegLen: 2}.Compress([]int64{5, 3, 10, 12})
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := core.DecompressChild(f, "refs")
	if !vec.Equal(refs, []int64{3, 10}) {
		t.Fatalf("refs = %v", refs)
	}
	offsets, _ := core.DecompressChild(f, "offsets")
	for i, o := range offsets {
		if o < 0 {
			t.Fatalf("offset %d negative: %d", i, o)
		}
	}
}

func TestCorruptFormsRejected(t *testing.T) {
	cases := []*core.Form{
		// Wrong scheme tag routed to NS.
		{Scheme: "ns", N: 1, Params: core.Params{"width": 99, "zigzag": 0}, Packed: []uint64{}},
		// NS payload too short.
		{Scheme: "ns", N: 100, Params: core.Params{"width": 64, "zigzag": 0}, Packed: []uint64{1}},
		// NS bad zigzag flag.
		{Scheme: "ns", N: 0, Params: core.Params{"width": 1, "zigzag": 5}, Packed: []uint64{}},
		// RLE missing child.
		{Scheme: "rle", N: 3, Children: map[string]*core.Form{"lengths": NewIDForm([]int64{3})}},
		// RLE mismatched child lengths.
		{Scheme: "rle", N: 3, Children: map[string]*core.Form{
			"lengths": NewIDForm([]int64{3}),
			"values":  NewIDForm([]int64{1, 2}),
		}},
		// FOR with wrong refs count.
		{Scheme: "for", N: 10, Params: core.Params{"seglen": 5}, Children: map[string]*core.Form{
			"refs":    NewIDForm([]int64{1, 2, 3}),
			"offsets": NewIDForm(make([]int64, 10)),
		}},
		// Delta child length mismatch.
		{Scheme: "delta", N: 5, Children: map[string]*core.Form{"deltas": NewIDForm([]int64{1})}},
		// Varint declaring values with no payload.
		{Scheme: "varint", N: 3, Params: core.Params{"unsigned": 1}, Bytes: []byte{}},
		// VNS widths child with wrong block count.
		{Scheme: "vns", N: 100, Params: core.Params{"block": 10, "zigzag": 0},
			Children: map[string]*core.Form{"widths": NewIDForm([]int64{3})}, Packed: []uint64{}},
		// Plus with mismatched children.
		{Scheme: "plus", N: 2, Children: map[string]*core.Form{
			"model":    NewIDForm([]int64{1, 2}),
			"residual": NewIDForm([]int64{1}),
		}},
		// Patch children mismatch.
		{Scheme: "patch", N: 2, Children: map[string]*core.Form{
			"base":      NewIDForm([]int64{1, 2}),
			"positions": NewIDForm([]int64{0}),
			"values":    NewIDForm([]int64{}),
		}},
	}
	for i, f := range cases {
		if _, err := core.Decompress(f); err == nil {
			t.Errorf("case %d (%s): corrupt form decompressed without error", i, f.Scheme)
		}
	}
}

func TestRLERandomAccessViaRPE(t *testing.T) {
	// RPE positions support binary-search point lookups; verify the
	// boundary arithmetic against full decompression.
	src := []int64{1, 1, 1, 5, 5, 9, 9, 9, 9}
	f, err := RPE{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	positions, _ := core.DecompressChild(f, "positions")
	values, _ := core.DecompressChild(f, "values")
	for row := 0; row < len(src); row++ {
		run := vec.UpperBound(positions, int64(row))
		if values[run] != src[row] {
			t.Fatalf("row %d: run %d value %d, want %d", row, run, values[run], src[row])
		}
	}
}

func TestDescribeComposite(t *testing.T) {
	f, err := RLEDeltaComposite().Compress([]int64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := "rle(lengths=ns, values=delta(deltas=ns))"
	if got := f.Describe(); got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
}
