package scheme

import (
	"fmt"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// DeltaName is the registry name of the DELTA scheme.
const DeltaName = "delta"

// Delta stores "the difference between elements rather than the
// actual values" (§I). The first element is stored as its difference
// from zero, so the deltas column alone reconstructs the input by an
// inclusive prefix sum — which is also precisely the operation that
// turns RPE's run positions back into RLE's run lengths' integral,
// making DELTA the pivot of the paper's RLE decomposition.
//
// Form layout: Children{"deltas"}; deltas has the same length as the
// input.
type Delta struct{}

// Name implements core.Scheme.
func (Delta) Name() string { return DeltaName }

// Compress stores consecutive differences.
func (Delta) Compress(src []int64) (*core.Form, error) {
	return &core.Form{
		Scheme:   DeltaName,
		N:        len(src),
		Children: map[string]*core.Form{"deltas": NewIDForm(vec.Delta(src))},
	}, nil
}

// Decompress integrates the deltas.
func (Delta) Decompress(f *core.Form) ([]int64, error) {
	if err := checkDelta(f); err != nil {
		return nil, err
	}
	deltas, err := core.DecompressChild(f, "deltas")
	if err != nil {
		return nil, err
	}
	if len(deltas) != f.N {
		return nil, fmt.Errorf("%w: delta form declares %d values, deltas child has %d",
			core.ErrCorruptForm, f.N, len(deltas))
	}
	return vec.PrefixSumInclusive(deltas), nil
}

// Plan implements core.Planner: decompression is a single PrefixSum —
// the fragment of Algorithm 1 the paper isolates when moving from RLE
// to RPE.
func (Delta) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkDelta(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	d := b.Input("deltas")
	b.PrefixSumInc(d)
	return b.Build()
}

// ValidateForm implements core.Validator.
func (Delta) ValidateForm(f *core.Form) error { return checkDelta(f) }

// DecompressCostPerElement implements core.Coster: one addition per
// element, sequentially dependent.
func (Delta) DecompressCostPerElement(*core.Form) float64 { return 1.2 }

// ConstituentStats implements core.ConstituentStatser, exactly: the
// deltas column's extremes and width histogram are the collected
// delta statistics plus the first value (which DELTA stores as the
// first delta from zero).
func (Delta) ConstituentStats(st *core.BlockStats) (uint64, []core.PredictedChild, bool, bool) {
	if !st.HasDeltas || !st.HasMinMax {
		return 0, nil, false, false
	}
	var cs core.BlockStats
	cs.N = st.N
	cs.HasMinMax = true
	if st.N > 0 {
		cs.First = st.First
		cs.Min, cs.Max = st.DeltaMin, st.DeltaMax
		cs.ValueHist = st.DeltaHist
		cs.ValueHist.Observe(bitpack.Zigzag(st.First))
		cs.HasValueHist = true
	}
	return core.FormOverheadBits(0), []core.PredictedChild{{Name: "deltas", Stats: cs}}, true, true
}

func checkDelta(f *core.Form) error {
	if f.Scheme != DeltaName {
		return fmt.Errorf("%w: delta scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	c, err := f.Child("deltas")
	if err != nil {
		return err
	}
	if c.N != f.N {
		return fmt.Errorf("%w: delta form declares %d values, deltas child declares %d",
			core.ErrCorruptForm, f.N, c.N)
	}
	return nil
}
