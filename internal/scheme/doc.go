// Package scheme implements the concrete lightweight compression
// schemes of the lwcomp framework, in the paper's decomposed columnar
// view: each scheme's compressed form is a set of pure constituent
// columns plus scalar parameters (a core.Form), and where the paper
// gives one (Algorithms 1 and 2), decompression is also available as
// an operator plan.
//
// Form layouts are the canonical contracts used by the rewrite rules
// and the storage format; they are documented per scheme.
package scheme
