package scheme

import (
	"sort"
	"strings"
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

// TestPlanTreeComposite verifies that a composite form decompresses
// as ONE flat operator plan: the paper's §I composition becomes
// Algorithm 1 with a prefix sum grafted in place of the values input.
func TestPlanTreeComposite(t *testing.T) {
	dates := workload.OrderShipDates(5000, 40, 730120, 11)
	form, err := RLEDeltaComposite().Compress(dates)
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := core.PlanTree(form)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs: the NS leaves only, with dotted paths for the nested
	// one.
	inputs := plan.Inputs()
	sort.Strings(inputs)
	if len(inputs) != 2 || inputs[0] != "lengths" || inputs[1] != "values.deltas" {
		t.Fatalf("tree plan inputs = %v", inputs)
	}
	// The grafted plan has one more prefix sum than Algorithm 1
	// alone (the DELTA integration).
	prefixSums := 0
	for _, n := range plan.Nodes {
		if n.Op == exec.OpPrefixSumInc {
			prefixSums++
		}
	}
	if prefixSums != 3 { // delta integration + Algorithm 1's two
		t.Fatalf("prefix sums in tree plan = %d, want 3\n%s", prefixSums, plan)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(out, dates) {
		t.Fatal("tree plan output differs")
	}
}

// TestDecompressViaTreePlanMatchesKernel checks tree-plan
// decompression (fused and literal) across nested forms.
func TestDecompressViaTreePlanMatchesKernel(t *testing.T) {
	dates := workload.OrderShipDates(3000, 30, 730120, 12)
	walk := workload.RandomWalk(3000, 9, 1<<20, 13)

	cases := []struct {
		name string
		s    core.Scheme
		data []int64
	}{
		{"rle-delta", RLEDeltaComposite(), dates},
		{"rle-ns", RLEComposite(), dates},
		{"rpe-ns", RPEComposite(), dates},
		{"for-ns", FORComposite(128), walk},
		{"dict-rle", core.Compose(Dict{}, map[string]core.Scheme{
			"codes": core.Compose(RLE{}, map[string]core.Scheme{"lengths": NS{}, "values": NS{}}),
			"dict":  NS{},
		}), dates},
		{"mres-step", ModelResidual{Fitter: StepFitter{SegLen: 128}}, walk},
		{"pfor", PFOR{SegLen: 128}, walk},
	}
	for _, tc := range cases {
		form, err := tc.s.Compress(tc.data)
		if err != nil {
			t.Fatalf("%s: compress: %v", tc.name, err)
		}
		want, err := core.Decompress(form)
		if err != nil {
			t.Fatalf("%s: kernel: %v", tc.name, err)
		}
		for _, fuse := range []bool{false, true} {
			got, err := core.DecompressViaTreePlan(form, fuse)
			if err != nil {
				t.Fatalf("%s (fuse=%v): %v", tc.name, fuse, err)
			}
			if !vec.Equal(got, want) {
				t.Fatalf("%s (fuse=%v): tree plan differs from kernel", tc.name, fuse)
			}
		}
	}
}

// TestPlanTreeDictRLEShape pins the inlined shape for a two-level
// composition: dict over RLE-compressed codes becomes run expansion
// feeding a gather.
func TestPlanTreeDictRLEShape(t *testing.T) {
	data := []int64{100, 100, 100, 200, 200, 300}
	s := core.Compose(Dict{}, map[string]core.Scheme{
		"codes": RLE{},
	})
	form, err := s.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := core.PlanTree(form)
	if err != nil {
		t.Fatal(err)
	}
	inputs := plan.Inputs()
	sort.Strings(inputs)
	want := []string{"codes.lengths", "codes.values", "dict"}
	if strings.Join(inputs, ",") != strings.Join(want, ",") {
		t.Fatalf("inputs = %v, want %v", inputs, want)
	}
	out, err := exec.Run(exec.Fuse(plan), env)
	if err != nil || !vec.Equal(out, data) {
		t.Fatalf("dict-over-rle tree plan: %v", err)
	}
}

func TestPlanTreeErrorsOnPlanlessRoot(t *testing.T) {
	form, err := NS{}.Compress([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.PlanTree(form); err == nil {
		t.Fatal("NS root accepted by PlanTree")
	}
}

func TestInlineErrors(t *testing.T) {
	b := exec.NewBuilder()
	x := b.Input("x")
	b.PrefixSumInc(x)
	outer, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b2 := exec.NewBuilder()
	y := b2.Input("y")
	b2.Delta(y)
	inner, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Inline(outer, "nope", inner, "p."); err == nil {
		t.Fatal("missing input name accepted")
	}
	merged, err := exec.Inline(outer, "x", inner, "p.")
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(merged, map[string][]int64{"p.y": {1, 3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	// Delta then prefix-sum: identity.
	if !vec.Equal(got, []int64{1, 3, 6}) {
		t.Fatalf("inline identity = %v", got)
	}
}
