package scheme

import (
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

// TestDecompressIntoMatchesDecompress round-trips every hot scheme
// (and representative composites) through both decode paths and
// requires identical output, with a reused scratch across calls to
// exercise buffer reuse.
func TestDecompressIntoMatchesDecompress(t *testing.T) {
	const n = 10000
	inputs := map[string][]int64{
		"dates":   workload.OrderShipDates(n, 64, 730120, 1),
		"walk":    workload.RandomWalk(n, 10, 1<<30, 2),
		"neg":     workload.RandomWalk(n, 10, -(1 << 20), 3),
		"lowcard": workload.LowCardinality(n, 32, 5),
		"runs":    workload.Runs(n, 64, 1<<16, 7),
		"sorted":  workload.Sorted(n, 1<<40, 8),
		"trend":   workload.TrendNoise(n, 8, 12, 4),
	}
	schemes := []core.Scheme{
		NS{}, VNS{}, FOR{}, Delta{}, RLE{}, RPEComposite(),
		DeltaNS(), RLEComposite(), RLEDeltaComposite(), FORComposite(1024),
		FORVNSComposite(1024, 128), DictComposite(), LinearNS(1024),
		PFOR{SegLen: 1024},
	}
	s := core.GetScratch()
	defer s.Release()
	for name, data := range inputs {
		for _, sc := range schemes {
			form, err := sc.Compress(data)
			if err != nil {
				continue // not representable for this input; fine
			}
			want, err := core.Decompress(form)
			if err != nil {
				t.Fatalf("%s/%s: Decompress: %v", name, sc.Name(), err)
			}
			dst := make([]int64, form.N)
			if err := core.DecompressInto(form, dst, s); err != nil {
				t.Fatalf("%s/%s: DecompressInto: %v", name, sc.Name(), err)
			}
			if !vec.Equal(dst, want) {
				t.Fatalf("%s/%s: DecompressInto diverges from Decompress", name, sc.Name())
			}
			// nil scratch must work too.
			dst2 := make([]int64, form.N)
			if err := core.DecompressInto(form, dst2, nil); err != nil {
				t.Fatalf("%s/%s: DecompressInto(nil scratch): %v", name, sc.Name(), err)
			}
			if !vec.Equal(dst2, want) {
				t.Fatalf("%s/%s: nil-scratch decode diverges", name, sc.Name())
			}
		}
	}
}

// TestDecompressIntoLengthMismatch: a destination of the wrong length
// is rejected before any scheme code runs.
func TestDecompressIntoLengthMismatch(t *testing.T) {
	form, err := NS{}.Compress([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.DecompressInto(form, make([]int64, 2), nil); err == nil {
		t.Fatal("short dst must error")
	}
}
