package scheme

import (
	"fmt"

	"lwcomp/internal/core"
)

// Poly2Name is the registry name of the quadratic-model scheme.
const Poly2Name = "poly2"

// Poly2 represents columns that are exactly the evaluation of a
// fixed-segment piecewise-quadratic function — the paper's final
// model enrichment: "more generally, we would replace step functions
// with stepwise low-degree polynomials" (§II-B).
//
// Coefficients are fixed-point with frac fractional bits; the value at
// offset j within segment s is
//
//	c0[s] + (c1[s]·j) >> frac + (c2[s]·j²) >> frac
//
// As with Step and Linear, Compress accepts only exact columns; lossy
// fitting goes through Poly2Fitter + ModelResidual.
//
// Form layout: Params{"seglen", "frac"}; Children{"c0", "c1", "c2"}
// of length ⌈N/ℓ⌉.
type Poly2 struct {
	// SegLen is the segment length; zero means
	// DefaultSegmentLength.
	SegLen int
	// Frac is the fixed-point fraction width; zero means
	// DefaultFracBits.
	Frac uint
}

// Name implements core.Scheme.
func (Poly2) Name() string { return Poly2Name }

// Poly2Predict evaluates the fixed-point quadratic at offset j.
func Poly2Predict(c0, c1, c2 int64, j int, frac uint) int64 {
	jj := int64(j)
	return c0 + (c1*jj)>>frac + (c2*jj*jj)>>frac
}

// Compress verifies src is exactly piecewise quadratic under the
// least-squares fit and stores three coefficients per segment.
func (s Poly2) Compress(src []int64) (*core.Form, error) {
	segLen := s.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	frac := s.Frac
	if frac == 0 {
		frac = DefaultFracBits
	}
	if segLen < 1 {
		return nil, fmt.Errorf("poly2: invalid segment length %d", segLen)
	}
	if frac > 24 {
		return nil, fmt.Errorf("poly2: fraction width %d too large (max 24)", frac)
	}
	nseg := (len(src) + segLen - 1) / segLen
	c0s := make([]int64, nseg)
	c1s := make([]int64, nseg)
	c2s := make([]int64, nseg)
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		c0, c1, c2 := fitQuadratic(src[lo:hi], frac)
		c0s[seg], c1s[seg], c2s[seg] = c0, c1, c2
		for i := lo; i < hi; i++ {
			if Poly2Predict(c0, c1, c2, i-lo, frac) != src[i] {
				return nil, fmt.Errorf("%w: poly2 scheme: segment %d deviates at element %d",
					core.ErrNotRepresentable, seg, i)
			}
		}
	}
	return NewPoly2Form(c0s, c1s, c2s, segLen, frac, len(src)), nil
}

// NewPoly2Form builds the canonical POLY2 form.
func NewPoly2Form(c0, c1, c2 []int64, segLen int, frac uint, n int) *core.Form {
	return &core.Form{
		Scheme: Poly2Name,
		N:      n,
		Params: core.Params{"seglen": int64(segLen), "frac": int64(frac)},
		Children: map[string]*core.Form{
			"c0": NewIDForm(c0),
			"c1": NewIDForm(c1),
			"c2": NewIDForm(c2),
		},
	}
}

// fitQuadratic computes the least-squares parabola of a segment in
// fixed point.
func fitQuadratic(seg []int64, frac uint) (c0, c1, c2 int64) {
	n := len(seg)
	if n == 0 {
		return 0, 0, 0
	}
	if n == 1 {
		return seg[0], 0, 0
	}
	if n == 2 {
		base, slope := fitLineEndpoints(seg, frac)
		return base, slope, 0
	}
	// Normal equations for y = a + b·j + c·j² over j = 0..n−1.
	var s0, s1, s2, s3, s4, t0, t1, t2 float64
	for j, v := range seg {
		fj := float64(j)
		fv := float64(v)
		f2 := fj * fj
		s0++
		s1 += fj
		s2 += f2
		s3 += f2 * fj
		s4 += f2 * f2
		t0 += fv
		t1 += fj * fv
		t2 += f2 * fv
	}
	// Solve the 3×3 system by Cramer's rule.
	det := s0*(s2*s4-s3*s3) - s1*(s1*s4-s2*s3) + s2*(s1*s3-s2*s2)
	if det == 0 {
		base, slope := fitLineLeastSquares(seg, frac)
		return base, slope, 0
	}
	a := (t0*(s2*s4-s3*s3) - s1*(t1*s4-t2*s3) + s2*(t1*s3-t2*s2)) / det
	b := (s0*(t1*s4-t2*s3) - t0*(s1*s4-s2*s3) + s2*(s1*t2-s2*t1)) / det
	c := (s0*(s2*t2-s3*t1) - s1*(s1*t2-s2*t1) + t0*(s1*s3-s2*s2)) / det
	scale := float64(int64(1) << frac)
	round := func(v float64) int64 {
		if v < 0 {
			return int64(v - 0.5)
		}
		return int64(v + 0.5)
	}
	return round(a), round(b * scale), round(c * scale)
}

// Decompress evaluates the piecewise-quadratic function.
func (Poly2) Decompress(f *core.Form) ([]int64, error) {
	if err := checkPoly2(f); err != nil {
		return nil, err
	}
	segLen := int(f.Params["seglen"])
	frac := uint(f.Params["frac"])
	c0s, err := core.DecompressChild(f, "c0")
	if err != nil {
		return nil, err
	}
	c1s, err := core.DecompressChild(f, "c1")
	if err != nil {
		return nil, err
	}
	c2s, err := core.DecompressChild(f, "c2")
	if err != nil {
		return nil, err
	}
	out := make([]int64, f.N)
	for seg := 0; seg*segLen < f.N; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > f.N {
			hi = f.N
		}
		c0, c1, c2 := c0s[seg], c1s[seg], c2s[seg]
		for i := lo; i < hi; i++ {
			out[i] = Poly2Predict(c0, c1, c2, i-lo, frac)
		}
	}
	return out, nil
}

// ValidateForm implements core.Validator.
func (Poly2) ValidateForm(f *core.Form) error { return checkPoly2(f) }

// DecompressCostPerElement implements core.Coster: two multiplies,
// two shifts and two adds per element.
func (Poly2) DecompressCostPerElement(*core.Form) float64 { return 2.2 }

func checkPoly2(f *core.Form) error {
	if f.Scheme != Poly2Name {
		return fmt.Errorf("%w: poly2 scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	segLen, err := f.Params.Get(Poly2Name, "seglen")
	if err != nil {
		return err
	}
	if segLen < 1 {
		return fmt.Errorf("%w: poly2 segment length %d", core.ErrCorruptForm, segLen)
	}
	frac, err := f.Params.Get(Poly2Name, "frac")
	if err != nil {
		return err
	}
	if frac < 0 || frac > 24 {
		return fmt.Errorf("%w: poly2 fraction width %d", core.ErrCorruptForm, frac)
	}
	nseg := (f.N + int(segLen) - 1) / int(segLen)
	for _, name := range []string{"c0", "c1", "c2"} {
		c, err := f.Child(name)
		if err != nil {
			return err
		}
		if c.N != nseg {
			return fmt.Errorf("%w: poly2 child %q declares %d segments, need %d",
				core.ErrCorruptForm, name, c.N, nseg)
		}
	}
	return nil
}

// Poly2Fitter fits fixed-segment quadratics by least squares, with
// bases shifted so residuals are non-negative.
type Poly2Fitter struct {
	// SegLen is the segment length; zero means
	// DefaultSegmentLength.
	SegLen int
	// Frac is the fixed-point fraction width; zero means
	// DefaultFracBits.
	Frac uint
}

// FitName implements ModelFitter.
func (pf Poly2Fitter) FitName() string { return fmt.Sprintf("poly2[%d]", pf.segLen()) }

func (pf Poly2Fitter) segLen() int {
	if pf.SegLen == 0 {
		return DefaultSegmentLength
	}
	return pf.SegLen
}

func (pf Poly2Fitter) frac() uint {
	if pf.Frac == 0 {
		return DefaultFracBits
	}
	return pf.Frac
}

// Fit implements ModelFitter.
func (pf Poly2Fitter) Fit(src []int64) (*core.Form, []int64, error) {
	segLen := pf.segLen()
	frac := pf.frac()
	if segLen < 1 {
		return nil, nil, fmt.Errorf("poly2 fitter: invalid segment length %d", segLen)
	}
	if frac > 24 {
		return nil, nil, fmt.Errorf("poly2 fitter: fraction width %d too large (max 24)", frac)
	}
	nseg := (len(src) + segLen - 1) / segLen
	c0s := make([]int64, nseg)
	c1s := make([]int64, nseg)
	c2s := make([]int64, nseg)
	pred := make([]int64, len(src))
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		c0, c1, c2 := fitQuadratic(src[lo:hi], frac)
		// Shift c0 down so all residuals are ≥ 0.
		minResid := int64(0)
		first := true
		for i := lo; i < hi; i++ {
			r := src[i] - Poly2Predict(c0, c1, c2, i-lo, frac)
			if first || r < minResid {
				minResid = r
				first = false
			}
		}
		c0 += minResid
		c0s[seg], c1s[seg], c2s[seg] = c0, c1, c2
		for i := lo; i < hi; i++ {
			pred[i] = Poly2Predict(c0, c1, c2, i-lo, frac)
		}
	}
	return NewPoly2Form(c0s, c1s, c2s, segLen, frac, len(src)), pred, nil
}
