package scheme

import (
	"math/rand"
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/vec"
)

// trendColumn is noise around a rising line: the workload where the
// paper's piecewise-linear model should beat the step model.
func trendColumn(n int, slope float64, noise int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(float64(i)*slope) + rng.Int63n(2*noise+1) - noise
	}
	return out
}

func TestModelResidualFORIdentity(t *testing.T) {
	// ModelResidual(StepFitter, NS) must be value-equivalent to
	// FOR+NS: same refs (segment minima), same offsets.
	src := trendColumn(1000, 3.0, 20, 1)
	mr := ModelResidual{Fitter: StepFitter{SegLen: 128}, Residual: NS{}}
	mrForm, err := mr.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	forForm, err := FORComposite(128).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// Both decompress to src.
	a, err := core.Decompress(mrForm)
	if err != nil || !vec.Equal(a, src) {
		t.Fatalf("model-residual roundtrip: %v", err)
	}
	// The residual payload width matches FOR's offsets width.
	resid, _ := mrForm.Child("residual")
	offs, _ := forForm.Child("offsets")
	if resid.Params["width"] != offs.Params["width"] {
		t.Fatalf("residual width %d != offsets width %d",
			resid.Params["width"], offs.Params["width"])
	}
}

func TestLinearFitterShrinksResidualsOnTrends(t *testing.T) {
	src := trendColumn(4096, 7.5, 10, 2)
	stepForm, err := (ModelResidual{Fitter: StepFitter{SegLen: 256}}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	linForm, err := (ModelResidual{Fitter: LinearFitter{SegLen: 256}}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	stepResid, _ := stepForm.Child("residual")
	linResid, _ := linForm.Child("residual")
	if linResid.Params["width"] >= stepResid.Params["width"] {
		t.Fatalf("linear residual width %d should beat step %d on a slope-7.5 trend",
			linResid.Params["width"], stepResid.Params["width"])
	}
	got, err := core.Decompress(linForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("linear model roundtrip: %v", err)
	}
}

func TestLinearFitterResidualsNonNegative(t *testing.T) {
	src := trendColumn(512, -3.3, 15, 3)
	form, pred, err := (LinearFitter{SegLen: 64}).Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	if form.Scheme != LinearName {
		t.Fatalf("fit scheme = %q", form.Scheme)
	}
	for i := range src {
		if src[i]-pred[i] < 0 {
			t.Fatalf("negative residual at %d", i)
		}
	}
}

func TestStepFitterPredictionsAreMinima(t *testing.T) {
	src := []int64{5, 3, 9, 100, 50, 80}
	form, pred, err := (StepFitter{SegLen: 3}).Fit(src)
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := core.DecompressChild(form, "refs")
	if !vec.Equal(refs, []int64{3, 50}) {
		t.Fatalf("refs = %v", refs)
	}
	if !vec.Equal(pred, []int64{3, 3, 3, 50, 50, 50}) {
		t.Fatalf("pred = %v", pred)
	}
}

func TestPFORSplitsOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]int64, 8192)
	for i := range src {
		src[i] = 1000 + rng.Int63n(256) // 8-bit offsets
	}
	// 1% outliers far away.
	for i := 0; i < len(src); i += 100 {
		src[i] = 1 << 40
	}
	pforForm, err := (PFOR{SegLen: 1024}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	positions, _ := core.DecompressChild(pforForm, "positions")
	if len(positions) == 0 {
		t.Fatal("no exceptions extracted")
	}
	got, err := core.Decompress(pforForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("pfor roundtrip: %v", err)
	}
	// PFOR must beat plain FOR+NS on this data.
	forForm, err := FORComposite(1024).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if pforForm.PayloadBits() >= forForm.PayloadBits() {
		t.Fatalf("pfor %d bits should beat for %d bits with 1%% outliers",
			pforForm.PayloadBits(), forForm.PayloadBits())
	}
}

func TestPFORNoOutliersDegeneratesToFOR(t *testing.T) {
	src := make([]int64, 2048)
	for i := range src {
		src[i] = int64(i % 100)
	}
	pforForm, err := (PFOR{SegLen: 512}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	positions, _ := core.DecompressChild(pforForm, "positions")
	if len(positions) != 0 {
		t.Fatalf("uniform data produced %d exceptions", len(positions))
	}
	got, err := core.Decompress(pforForm)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("roundtrip: %v", err)
	}
}

func TestPFORMaxExceptionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := make([]int64, 4096)
	for i := range src {
		if rng.Float64() < 0.3 {
			src[i] = rng.Int63n(1 << 40)
		} else {
			src[i] = rng.Int63n(64)
		}
	}
	form, err := (PFOR{SegLen: 1024, MaxExceptionRate: 0.05}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	positions, _ := core.DecompressChild(form, "positions")
	if rate := float64(len(positions)) / float64(len(src)); rate > 0.05 {
		t.Fatalf("exception rate %.3f exceeds bound", rate)
	}
	got, err := core.Decompress(form)
	if err != nil || !vec.Equal(got, src) {
		t.Fatalf("roundtrip: %v", err)
	}
}

func TestModelResidualNames(t *testing.T) {
	mr := ModelResidual{Fitter: StepFitter{SegLen: 128}}
	if mr.Name() != "plus(step[128], ns)" {
		t.Fatalf("name = %q", mr.Name())
	}
	p := PFOR{SegLen: 256}
	if p.Name() != "patch(for[256]+ns)" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestDefaultCandidatesPruning(t *testing.T) {
	// A high-cardinality run-free column must not include RLE or DICT
	// candidates.
	src := make([]int64, 4096)
	for i := range src {
		src[i] = int64(i * 977 % (1 << 30))
	}
	stats := statsForTest(src)
	for _, c := range DefaultCandidates(stats) {
		if c.Desc == "rle(lengths=ns, values=ns)" {
			t.Fatal("RLE offered for run-free data")
		}
	}
}
