package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// StepName is the registry name of the step-function scheme.
const StepName = "step"

// Step represents columns that are exactly the evaluation of a
// fixed-segment-length step function: constant value refs[i] on the
// whole i-th segment (§II-B). The paper introduces it as the model
// part of FOR's decomposition — "not very useful as a stand-alone
// scheme … but quite useful conceptually": FOR ≡ STEPFUNCTION + NS.
//
// Compress reports core.ErrNotRepresentable for any column that is
// not exactly a step function; lossy fitting is the job of the
// model-residual combinator (fitters.go).
//
// Form layout: Params{"seglen"}; Children{"refs"} of length ⌈N/ℓ⌉.
type Step struct {
	// SegLen is the segment length used when compressing; zero means
	// DefaultSegmentLength.
	SegLen int
}

// Name implements core.Scheme.
func (Step) Name() string { return StepName }

// Compress verifies src is a step function and stores one value per
// segment.
func (s Step) Compress(src []int64) (*core.Form, error) {
	segLen := s.SegLen
	if segLen == 0 {
		segLen = DefaultSegmentLength
	}
	if segLen < 1 {
		return nil, fmt.Errorf("step: invalid segment length %d", segLen)
	}
	nseg := (len(src) + segLen - 1) / segLen
	refs := make([]int64, nseg)
	for seg := 0; seg < nseg; seg++ {
		lo := seg * segLen
		hi := lo + segLen
		if hi > len(src) {
			hi = len(src)
		}
		refs[seg] = src[lo]
		for i := lo + 1; i < hi; i++ {
			if src[i] != refs[seg] {
				return nil, fmt.Errorf("%w: step scheme: segment %d is not constant (element %d)",
					core.ErrNotRepresentable, seg, i)
			}
		}
	}
	return NewStepForm(refs, segLen, len(src)), nil
}

// NewStepForm builds the canonical STEP form; the FOR decomposition
// rewrite uses it directly.
func NewStepForm(refs []int64, segLen, n int) *core.Form {
	return &core.Form{
		Scheme:   StepName,
		N:        n,
		Params:   core.Params{"seglen": int64(segLen)},
		Children: map[string]*core.Form{"refs": NewIDForm(refs)},
	}
}

// Decompress evaluates the step function.
func (Step) Decompress(f *core.Form) ([]int64, error) {
	if err := checkStep(f); err != nil {
		return nil, err
	}
	refs, err := core.DecompressChild(f, "refs")
	if err != nil {
		return nil, err
	}
	out, err := vec.ReplicateSegments(refs, int(f.Params["seglen"]), f.N)
	if err != nil {
		return nil, fmt.Errorf("step: %w", err)
	}
	return out, nil
}

// Plan implements core.Planner: Algorithm 2 with the final addition
// dropped — the paper's construction of STEP by keeping "the initial
// steps" of FOR decompression ("it is as though all offsets are 0").
func (Step) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkStep(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	refs := b.Input("refs")
	one := b.ConstScalar(1)
	n := b.ConstScalar(int64(f.N))
	ones := b.ConstantCol(one, n)
	id := b.PrefixSumExc(ones)
	ell := b.ConstScalar(f.Params["seglen"])
	ells := b.ConstantCol(ell, n)
	refIndices := b.Elementwise(vec.Div, id, ells)
	b.Gather(refs, refIndices)
	return b.Build()
}

// ValidateForm implements core.Validator.
func (Step) ValidateForm(f *core.Form) error { return checkStep(f) }

// DecompressCostPerElement implements core.Coster: a segment-wise
// fill.
func (Step) DecompressCostPerElement(*core.Form) float64 { return 0.7 }

func checkStep(f *core.Form) error {
	if f.Scheme != StepName {
		return fmt.Errorf("%w: step scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	segLen, err := f.Params.Get(StepName, "seglen")
	if err != nil {
		return err
	}
	if segLen < 1 {
		return fmt.Errorf("%w: step segment length %d", core.ErrCorruptForm, segLen)
	}
	refs, err := f.Child("refs")
	if err != nil {
		return err
	}
	nseg := (f.N + int(segLen) - 1) / int(segLen)
	if refs.N != nseg {
		return fmt.Errorf("%w: step refs child declares %d segments, need %d",
			core.ErrCorruptForm, refs.N, nseg)
	}
	return nil
}
