package scheme

import (
	"strings"
	"testing"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/workload"
)

// TestAnalyzerCostBudgetExcludesExpensiveCodecs reproduces the
// paper's bandwidth argument with real schemes: on width-skewed data
// Elias wins on size, but under a decompression-cost budget the
// analyzer must refuse it and fall back to a cheaper codec.
func TestAnalyzerCostBudgetExcludesExpensiveCodecs(t *testing.T) {
	data := workload.SkewedMagnitude(1<<16, 40, 3)
	st := core.CollectStats(data, nil)

	unbounded := &core.Analyzer{Candidates: DefaultCandidates(&st), Stats: &st}
	choice, err := unbounded.Best(data)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Desc != EliasName {
		t.Fatalf("unbounded winner = %q, want elias", choice.Desc)
	}

	// Elias reports 6.0 abstract units/element; cap below that.
	bounded := &core.Analyzer{Candidates: DefaultCandidates(&st), CostBudget: 4.0, Stats: &st}
	choice, err = bounded.Best(data)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Desc == EliasName {
		t.Fatalf("budgeted analyzer still chose elias")
	}
	cost, err := core.DecompressionCost(choice.Form)
	if err != nil {
		t.Fatal(err)
	}
	if perElem := cost / float64(len(data)); perElem > 4.0 {
		t.Fatalf("winner %q costs %.2f/element, over budget", choice.Desc, perElem)
	}
}

// TestFuseRecognizesIotaVariant checks the Algorithm 2 idiom matcher
// on the Iota spelling of the id column (engines may build 0..n−1
// either way).
func TestFuseRecognizesIotaVariant(t *testing.T) {
	b := exec.NewBuilder()
	offsets := b.Input("offsets")
	refs := b.Input("refs")
	zero := b.ConstScalar(0)
	n := b.Len(offsets)
	id := b.Iota(zero, n)
	ell := b.ConstScalar(4)
	ells := b.ConstantCol(ell, n)
	segIdx := b.Elementwise(3 /* Div */, id, ells)
	repl := b.Gather(refs, segIdx)
	b.Elementwise(0 /* Add */, repl, offsets)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fused := exec.Fuse(plan)
	found := false
	for _, nd := range fused.Nodes {
		if nd.Op == exec.OpFusedReplicateSegments {
			found = true
		}
	}
	if !found {
		t.Fatalf("Iota idiom not fused:\n%s", fused)
	}
	env := map[string][]int64{
		"refs":    {100, 200},
		"offsets": {1, 2, 3, 4, 5, 6, 7, 8},
	}
	want, err := exec.Run(plan, env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(fused, env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("fused Iota variant differs")
		}
	}
}

// TestPlanOnEmptyFormsErrorsCleanly pins down behavior at the n=0
// boundary: Algorithm 1 reads n from the last element of a prefix
// sum, which does not exist for an empty column — the plan must
// surface an error, never panic, while the kernels handle empty
// columns fine.
func TestPlanOnEmptyFormsErrorsCleanly(t *testing.T) {
	for _, s := range []core.Scheme{RLE{}, RPE{}} {
		f, err := s.Compress(nil)
		if err != nil {
			t.Fatalf("%s: compress: %v", s.Name(), err)
		}
		if got, err := core.Decompress(f); err != nil || len(got) != 0 {
			t.Fatalf("%s: kernel on empty: %v", s.Name(), err)
		}
		if _, err := core.DecompressViaPlan(f, false); err == nil {
			t.Fatalf("%s: plan on empty should error (Last of empty column)", s.Name())
		} else if strings.Contains(err.Error(), "panic") {
			t.Fatalf("%s: plan panicked", s.Name())
		}
	}
	// FOR's plan handles empty fine (Len of empty is 0).
	f, err := (FOR{SegLen: 4}).Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := core.DecompressViaPlan(f, false); err != nil || len(got) != 0 {
		t.Fatalf("FOR plan on empty: %v", err)
	}
}
