package scheme

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/vec"
)

// PatchName is the registry name of the patch combinator.
const PatchName = "patch"

// Patch is the paper's L0-metric extension (§II-B): the column is a
// base representation that is correct everywhere except at a sparse
// set of positions, plus "patches" — (position, value) pairs — for
// "the occasional divergent arbitrary-value element". Under the L0
// metric d(x,y) = |{i : xi ≠ yi}|, Patch captures all columns within
// distance |positions| of the base scheme's domain.
//
// Like Plus, Patch has no free-standing Compress (choosing which
// elements become exceptions is the fitter's job — see NewPatched in
// fitters.go); decompression is generic.
//
// Form layout: Children{"base"} (any form of length N),
// Children{"positions", "values"} (equal-length exception lists;
// positions strictly increasing in [0, N)).
type Patch struct{}

// Name implements core.Scheme.
func (Patch) Name() string { return PatchName }

// Compress reports that Patch needs a fitter.
func (Patch) Compress([]int64) (*core.Form, error) {
	return nil, fmt.Errorf("%w: patch scheme has no canonical exception choice; use NewPatched",
		core.ErrNotRepresentable)
}

// NewPatchForm builds the canonical PATCH form.
func NewPatchForm(base *core.Form, positions, values []int64) (*core.Form, error) {
	if len(positions) != len(values) {
		return nil, fmt.Errorf("%w: patch exception lists differ: %d positions, %d values",
			core.ErrCorruptForm, len(positions), len(values))
	}
	prev := int64(-1)
	for i, p := range positions {
		if p < 0 || p >= int64(base.N) {
			return nil, fmt.Errorf("%w: patch position %d out of range [0,%d)", core.ErrCorruptForm, p, base.N)
		}
		if p <= prev {
			return nil, fmt.Errorf("%w: patch positions not strictly increasing at index %d", core.ErrCorruptForm, i)
		}
		prev = p
	}
	return &core.Form{
		Scheme: PatchName,
		N:      base.N,
		Children: map[string]*core.Form{
			"base":      base,
			"positions": NewIDForm(positions),
			"values":    NewIDForm(values),
		},
	}, nil
}

// Decompress resolves the base and scatters the exception values over
// it.
func (Patch) Decompress(f *core.Form) ([]int64, error) {
	if err := checkPatch(f); err != nil {
		return nil, err
	}
	base, err := core.DecompressChild(f, "base")
	if err != nil {
		return nil, err
	}
	positions, err := core.DecompressChild(f, "positions")
	if err != nil {
		return nil, err
	}
	values, err := core.DecompressChild(f, "values")
	if err != nil {
		return nil, err
	}
	if _, err := vec.ScatterInto(base, values, positions); err != nil {
		return nil, fmt.Errorf("patch: %w", err)
	}
	return base, nil
}

// Plan implements core.Planner. Scatter in the plan vocabulary
// produces a fresh zero column, so patching is expressed as
//
//	base + Scatter(values − Gather(base, positions), positions, n)
//
// — the patch deltas scattered over zeros and added back, using only
// the paper's primitive operators.
func (Patch) Plan(f *core.Form) (*exec.Plan, error) {
	if err := checkPatch(f); err != nil {
		return nil, err
	}
	b := exec.NewBuilder()
	base := b.Input("base")
	positions := b.Input("positions")
	values := b.Input("values")
	n := b.Len(base)
	atPos := b.Gather(base, positions)
	deltas := b.Elementwise(vec.Sub, values, atPos)
	sparse := b.Scatter(deltas, positions, n)
	b.Elementwise(vec.Add, base, sparse)
	return b.Build()
}

// ValidateForm implements core.Validator.
func (Patch) ValidateForm(f *core.Form) error { return checkPatch(f) }

// DecompressCostPerElement implements core.Coster: base cost is
// counted on the child; the patch pass itself is cheap and sparse.
func (Patch) DecompressCostPerElement(*core.Form) float64 { return 0.3 }

func checkPatch(f *core.Form) error {
	if f.Scheme != PatchName {
		return fmt.Errorf("%w: patch scheme given form %q", core.ErrCorruptForm, f.Scheme)
	}
	base, err := f.Child("base")
	if err != nil {
		return err
	}
	if base.N != f.N {
		return fmt.Errorf("%w: patch base declares %d values, form declares %d",
			core.ErrCorruptForm, base.N, f.N)
	}
	p, err := f.Child("positions")
	if err != nil {
		return err
	}
	v, err := f.Child("values")
	if err != nil {
		return err
	}
	if p.N != v.N {
		return fmt.Errorf("%w: patch positions (%d) and values (%d) differ in length",
			core.ErrCorruptForm, p.N, v.N)
	}
	return nil
}
