package storage

import (
	"fmt"
	"sync/atomic"
	"time"

	"lwcomp/internal/blocked"
)

// This file is the transient-failure half of the fault-tolerance
// layer: a byteSource decorator that re-issues failed reads with
// capped exponential backoff. Only transient errors — the byte source
// reporting it could not deliver the bytes — are retried; integrity
// failures (ErrCorrupt, ErrChecksum, undecodable forms) are permanent
// by definition and pass through untouched, to be quarantined by the
// blocked layer above.

// RetryPolicy configures capped-exponential-backoff retries of
// transient block-read failures. The zero value disables retries.
type RetryPolicy struct {
	// MaxRetries is how many times a failed read is re-issued before
	// giving up; 0 or negative disables retrying.
	MaxRetries int
	// BaseDelay is the sleep before the first retry; each subsequent
	// retry doubles it. 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the doubling. 0 means 100ms.
	MaxDelay time.Duration
}

// withDefaults fills the zero delay fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	return p
}

// retrySource decorates a byteSource with the retry policy. It wraps
// the container's source below the cache and above the file, so every
// read — open-time prefix and index reads included — gets the same
// tolerance.
type retrySource struct {
	src              byteSource
	policy           RetryPolicy
	retries, giveups atomic.Int64
}

func (s *retrySource) view(off int64, n int, scratch []byte) ([]byte, error) {
	data, err := s.src.view(off, n, scratch)
	if err == nil || blocked.IsPermanent(err) {
		return data, err
	}
	delay := s.policy.BaseDelay
	for attempt := 0; attempt < s.policy.MaxRetries; attempt++ {
		s.retries.Add(1)
		time.Sleep(delay)
		if delay *= 2; delay > s.policy.MaxDelay {
			delay = s.policy.MaxDelay
		}
		data, err = s.src.view(off, n, scratch)
		if err == nil || blocked.IsPermanent(err) {
			return data, err
		}
	}
	s.giveups.Add(1)
	return nil, fmt.Errorf("storage: read failed after %d retries: %w", s.policy.MaxRetries, err)
}

func (s *retrySource) Close() error { return s.src.Close() }

// stats snapshots the decorator's counters as the canonical
// blocked.ReadStats.
func (s *retrySource) stats() blocked.ReadStats {
	return blocked.ReadStats{Retries: s.retries.Load(), Giveups: s.giveups.Load()}
}

// ReadStats snapshots the container's transient-read retry counters:
// zero-valued when the container was opened without a retry policy.
func (cf *ContainerFile) ReadStats() blocked.ReadStats {
	if rs, ok := cf.src.(*retrySource); ok {
		return rs.stats()
	}
	return blocked.ReadStats{}
}

// ReadStats implements blocked.ReadStatsSource: column handles report
// the owning container's retry counters. All columns of one container
// share one byte source; per-column reads land in the same counters.
func (r *colReader) ReadStats() blocked.ReadStats { return r.cf.ReadStats() }
