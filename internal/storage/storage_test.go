package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
)

// corpusSchemes returns compressors covering every payload arm and
// nesting shape.
func corpusSchemes() []core.Scheme {
	return []core.Scheme{
		scheme.ID{},
		scheme.Const{},
		scheme.NS{},
		scheme.Varint{},
		scheme.VNS{Block: 32},
		scheme.DeltaNS(),
		scheme.RLEDeltaComposite(),
		scheme.RPEComposite(),
		scheme.FORComposite(64),
		scheme.PFOR{SegLen: 64},
		scheme.ModelResidual{Fitter: scheme.LinearFitter{SegLen: 32}},
		scheme.DictComposite(),
	}
}

func testColumn() []int64 {
	src := make([]int64, 777)
	v := int64(42)
	for i := range src {
		if i%13 == 0 {
			v += int64(i % 5)
		}
		src[i] = v
	}
	return src
}

func TestEncodeDecodeFormRoundTrip(t *testing.T) {
	src := testColumn()
	for _, s := range corpusSchemes() {
		if s.Name() == "const" {
			continue // const needs constant input, tested below
		}
		f, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", s.Name(), err)
		}
		enc, err := EncodeForm(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", s.Name(), err)
		}
		back, consumed, err := DecodeForm(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name(), err)
		}
		if consumed != len(enc) {
			t.Fatalf("%s: consumed %d of %d bytes", s.Name(), consumed, len(enc))
		}
		got, err := core.Decompress(back)
		if err != nil {
			t.Fatalf("%s: decompress decoded: %v", s.Name(), err)
		}
		if !vec.Equal(got, src) {
			t.Fatalf("%s: serialized roundtrip mismatch", s.Name())
		}
	}
}

func TestEncodeDecodeConstAndEmpty(t *testing.T) {
	f, err := scheme.Const{}.Compress([]int64{9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeForm(f)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := DecodeForm(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decompress(back)
	if err != nil || !vec.Equal(got, []int64{9, 9, 9}) {
		t.Fatalf("const roundtrip: %v", err)
	}

	// Empty column through a nested composite.
	ef, err := scheme.RLEDeltaComposite().Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err = EncodeForm(ef)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err = DecodeForm(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err = core.Decompress(back)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v", err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	f, err := scheme.FORComposite(32).Compress(testColumn())
	if err != nil {
		t.Fatal(err)
	}
	a, err := EncodeForm(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeForm(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	src := testColumn()
	f1, err := scheme.RLEDeltaComposite().Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := scheme.NS{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cols := []Column{{Name: "ship_date", Form: f1}, {Name: "qty", Form: f2}}
	if err := WriteContainer(&buf, cols); err != nil {
		t.Fatal(err)
	}
	back, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "ship_date" || back[1].Name != "qty" {
		t.Fatalf("columns = %+v", back)
	}
	for i := range back {
		got, err := core.Decompress(back[i].Form)
		if err != nil || !vec.Equal(got, src) {
			t.Fatalf("column %d roundtrip: %v", i, err)
		}
	}
}

func TestContainerChecksumDetected(t *testing.T) {
	f, err := scheme.NS{}.Compress(testColumn())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContainer(&buf, []Column{{Name: "c", Form: f}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadContainer(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted container err = %v", err)
	}
}

func TestContainerBadMagicAndTruncation(t *testing.T) {
	if _, err := ReadContainer(bytes.NewReader([]byte("XXXX000000"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic err = %v", err)
	}
	if _, err := ReadContainer(bytes.NewReader([]byte("LW"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short err = %v", err)
	}
}

func TestDecodeFormCorruptInputsNeverPanic(t *testing.T) {
	f, err := scheme.FORComposite(16).Compress(testColumn()[:100])
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeForm(f)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, not panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := DecodeForm(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Single-byte corruptions must never panic (they may decode to a
	// different but structurally valid form, which Decompress then
	// rejects — what matters is no panic and no silent success with
	// wrong data length).
	for pos := 0; pos < len(enc); pos += 11 {
		mut := append([]byte{}, enc...)
		mut[pos] ^= 0x5A
		back, _, err := DecodeForm(mut)
		if err != nil {
			continue
		}
		// If it decodes, decompression must either fail or produce a
		// column of the declared length.
		out, err := core.Decompress(back)
		if err == nil && len(out) != back.N {
			t.Fatalf("mutation at %d produced wrong-length column", pos)
		}
	}
}

func TestDecodeFormFuzzProperty(t *testing.T) {
	check := func(data []byte) bool {
		// Must not panic; errors are fine.
		_, _, _ = DecodeForm(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	f, err := scheme.RLEComposite().Compress(testColumn())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeForm(f)
	if err != nil {
		t.Fatal(err)
	}
	sz, err := EncodedSize(f)
	if err != nil || sz != len(enc) {
		t.Fatalf("EncodedSize = %d, want %d (%v)", sz, len(enc), err)
	}
}

func TestContainerEmptyAndMany(t *testing.T) {
	// Zero columns.
	var buf bytes.Buffer
	if err := WriteContainer(&buf, nil); err != nil {
		t.Fatal(err)
	}
	cols, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil || len(cols) != 0 {
		t.Fatalf("empty container = %v, %v", cols, err)
	}
	// Many columns with distinct schemes.
	src := testColumn()[:200]
	var many []Column
	for i, s := range corpusSchemes() {
		if s.Name() == "const" {
			continue
		}
		f, err := s.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		many = append(many, Column{Name: string(rune('a' + i)), Form: f})
	}
	buf.Reset()
	if err := WriteContainer(&buf, many); err != nil {
		t.Fatal(err)
	}
	back, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil || len(back) != len(many) {
		t.Fatalf("many columns: %v", err)
	}
	for i := range back {
		got, err := core.Decompress(back[i].Form)
		if err != nil || !vec.Equal(got, src) {
			t.Fatalf("column %d (%s): %v", i, back[i].Form.Describe(), err)
		}
	}
	// Invalid column name rejected at write time.
	if err := WriteContainer(&buf, []Column{{Name: "", Form: many[0].Form}}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestSortColumns(t *testing.T) {
	cols := []Column{{Name: "b"}, {Name: "a"}}
	SortColumns(cols)
	if cols[0].Name != "a" {
		t.Fatal("not sorted")
	}
}

func TestEncodeRejectsBadForms(t *testing.T) {
	if _, err := EncodeForm(nil); err == nil {
		t.Fatal("nil form accepted")
	}
	if _, err := EncodeForm(&core.Form{Scheme: ""}); err == nil {
		t.Fatal("empty scheme accepted")
	}
	if _, err := EncodeForm(&core.Form{Scheme: "x", N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
	bad := &core.Form{Scheme: "x", N: 1, Leaf: []int64{1}, Bytes: []byte{1}}
	if _, err := EncodeForm(bad); err == nil {
		t.Fatal("mixed arms accepted")
	}
}
