package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("content %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestAtomicWriteFileAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	boom := errors.New("mid-write failure")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's failure", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("final path exists after aborted write (stat err %v)", err)
	}
	assertNoTempFiles(t, dir)
}

func TestAtomicWriteFileAbortPreservesOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write failure")
	if err := AtomicWriteFile(path, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("previous content not preserved: %q, %v", got, err)
	}
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles fails if the atomic writer leaked a .tmp file.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if m, _ := filepath.Match(".*.tmp-*", e.Name()); m {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}
