package storage

import (
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestCrashChild is the subprocess half of the crash-consistency
// harness: it rewrites the file named by LWC_CRASH_FILE and dies with
// os.Exit at the CrashHook point named by LWC_CRASH_POINT. It is a
// no-op unless spawned by TestAtomicWriteCrashMatrix.
func TestCrashChild(t *testing.T) {
	point := os.Getenv("LWC_CRASH_POINT")
	if point == "" {
		t.Skip("crash child runs only as a subprocess")
	}
	path := os.Getenv("LWC_CRASH_FILE")
	CrashHook = func(p string) {
		if p == point {
			os.Exit(7)
		}
	}
	err := AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "new-generation")
		return werr
	})
	if err != nil {
		os.Exit(3)
	}
	os.Exit(0)
}

// TestAtomicWriteCrashMatrix kills a child mid-AtomicWriteFile at
// every protocol point and asserts the invariant the package promises:
// the destination always reopens as the complete old generation or the
// complete new one — never a torn mix — and the only possible litter
// is a temp file the janitor removes.
func TestAtomicWriteCrashMatrix(t *testing.T) {
	cases := []struct {
		point   string
		wantNew bool // which generation must be visible after the crash
	}{
		{"created", false},
		{"written", false},
		{"synced", false},
		{"closed", false},
		{"renamed", true},
		{"dirsynced", true},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "gen.lwc")
			if err := os.WriteFile(path, []byte("old-generation"), 0o644); err != nil {
				t.Fatal(err)
			}

			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$")
			cmd.Env = append(os.Environ(),
				"LWC_CRASH_POINT="+tc.point,
				"LWC_CRASH_FILE="+path,
			)
			out, err := cmd.CombinedOutput()
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 7 {
				t.Fatalf("child did not die at %q (err=%v):\n%s", tc.point, err, out)
			}

			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("destination unreadable after crash at %q: %v", tc.point, err)
			}
			want := "old-generation"
			if tc.wantNew {
				want = "new-generation"
			}
			if string(got) != want {
				t.Fatalf("crash at %q left %q, want %q", tc.point, got, want)
			}

			removed, err := SweepTempFiles(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantNew && len(removed) != 0 {
				t.Fatalf("post-rename crash left temp litter: %v", removed)
			}
			if !tc.wantNew && len(removed) != 1 {
				t.Fatalf("pre-rename crash left %d temp files, want 1: %v", len(removed), removed)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 || entries[0].Name() != "gen.lwc" {
				t.Fatalf("directory not clean after janitor: %v", entries)
			}
		})
	}
}

func TestSweepTempFiles(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}
	orphan := mk(".orders.lwc.tmp-123456")
	keepPlain := mk("orders.lwc")
	keepDot := mk(".hidden")
	if err := os.Mkdir(filepath.Join(dir, ".sub.tmp-dir"), 0o755); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepTempFiles(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != orphan {
		t.Fatalf("removed %v, want exactly %q", removed, orphan)
	}
	for _, p := range []string{keepPlain, keepDot} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("janitor removed innocent file %q: %v", p, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".sub.tmp-dir")); err != nil {
		t.Fatalf("janitor removed a directory: %v", err)
	}
}

func TestSweepTempFilesMinAge(t *testing.T) {
	dir := t.TempDir()
	fresh := filepath.Join(dir, ".live.lwc.tmp-1")
	if err := os.WriteFile(fresh, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file may be another process's write in flight: a
	// min-age sweep must leave it alone.
	removed, err := SweepTempFiles(dir, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("min-age sweep removed in-flight temp: %v", removed)
	}
	old := time.Now().Add(-2 * time.Minute)
	if err := os.Chtimes(fresh, old, old); err != nil {
		t.Fatal(err)
	}
	removed, err = SweepTempFiles(dir, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("aged temp survived the sweep: %v", removed)
	}
}
