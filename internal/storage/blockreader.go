package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
)

// This file is the lazy, file-backed read path: OpenContainer parses
// only a container's prefix and block index, and hands back column
// handles whose block payloads are fetched — and CRC-verified — on
// first touch. The BlockReader abstraction separates "where payload
// bytes come from" (mmap, io.ReaderAt, resident memory) from the
// query layer above, which only ever asks for decoded block forms.

// BlockReader supplies the raw payload bytes of one column's blocks.
// It is the seam between the container layout and the query engine:
// the in-memory implementation serves from a resident byte slice, the
// file-backed one from an io.ReaderAt or an mmap window. Payload
// returns either a view into the source (mmap) or the provided
// scratch buffer filled (ReadAt), so callers can pool scratch.
// Implementations must be safe for concurrent use.
type BlockReader interface {
	// NumBlocks returns the column's block count.
	NumBlocks() int
	// Payload returns block i's raw encoded-form bytes. When the
	// source can hand out a stable view (mmap, resident memory) it
	// does so without copying; otherwise it fills and returns scratch
	// (growing it if needed).
	Payload(i int, scratch []byte) ([]byte, error)
}

// OpenOptions configures lazy container opening.
type OpenOptions struct {
	// CacheBytes is the byte budget of the container's shared block
	// cache (raw verified payloads, LRU). Zero or negative disables
	// caching; OpenFile's public wrapper defaults it to
	// DefaultBlockCacheBytes.
	CacheBytes int64
	// Shared, when non-nil, makes the container join this cache
	// instead of creating its own: its blocks compete with every
	// other member container's under the one byte budget. CacheBytes
	// is ignored. A server mounting many containers uses one
	// SharedCache so total resident payload bytes stay bounded
	// regardless of how many tables are open.
	Shared *SharedCache
	// Mmap maps the file instead of issuing ReadAt calls. Ignored
	// (with a silent fallback to ReadAt) when the platform does not
	// support it or the mapping fails. Only honored by
	// OpenContainerFile — OpenContainer has no file to map.
	Mmap bool
	// Retry, when its MaxRetries is positive, re-issues transiently
	// failed reads with capped exponential backoff. Integrity errors
	// (ErrCorrupt, ErrChecksum) are permanent and never retried. The
	// container's ReadStats reports the retry traffic.
	Retry RetryPolicy
	// WrapReader, when non-nil, decorates the container's io.ReaderAt
	// before any byte is read — the fault-injection seam tests and
	// benchmarks hook (see internal/faults). Setting it disables Mmap:
	// a mapping would bypass the wrapper.
	WrapReader func(ra io.ReaderAt) io.ReaderAt
}

// byteSource abstracts where a lazy container's bytes live.
type byteSource interface {
	// view returns n bytes at off — either a direct slice (mmap) or
	// scratch filled (ReadAt). scratch always has length >= n.
	view(off int64, n int, scratch []byte) ([]byte, error)
	io.Closer
}

// readerAtSource serves views by ReadAt; closer (the underlying file,
// when the container owns one) is closed with the container.
type readerAtSource struct {
	ra     io.ReaderAt
	closer io.Closer
}

func (s *readerAtSource) view(off int64, n int, scratch []byte) ([]byte, error) {
	m, err := s.ra.ReadAt(scratch[:n], off)
	// The io.ReaderAt contract permits a full read to return io.EOF
	// when it ends exactly at end-of-file — which every container's
	// last block payload does. Short reads and other errors are
	// reported as the underlying I/O failure, not as corruption: the
	// bytes were never seen, so nothing can be said about them.
	if err != nil && !(m == n && err == io.EOF) {
		return nil, fmt.Errorf("storage: reading %d bytes at offset %d: %w", n, off, err)
	}
	return scratch[:n], nil
}

func (s *readerAtSource) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// mmapSource serves views as subslices of a read-only mapping.
type mmapSource struct {
	data []byte
}

func (s *mmapSource) view(off int64, n int, _ []byte) ([]byte, error) {
	if off < 0 || off+int64(n) > int64(len(s.data)) {
		return nil, fmt.Errorf("%w: view %d+%d outside mapping of %d bytes", ErrCorrupt, off, n, len(s.data))
	}
	return s.data[off : off+int64(n)], nil
}

func (s *mmapSource) Close() error { return munmap(s.data) }

// ContainerFile is an open container whose block payloads load on
// demand: only the prefix and block index are resident. All columns
// share one byte source and one block cache, so hot blocks decode
// from cached verified bytes while cold blocks never enter memory.
//
// Containers of earlier generations (v1, v2) open eagerly — their
// layouts cannot be read incrementally — and behave identically
// afterwards, with every form resident.
type ContainerFile struct {
	src          byteSource
	cache        *blockCache
	payloadStart int64
	cols         []BlockedColumn
	locs         [][]blockLoc // nil for eagerly opened generations
	mapped       bool
	// owner namespaces this container's keys inside a shared cache;
	// shared records that the cache's budget and eviction traffic are
	// pooled with other containers, so CacheStats reports the
	// container-local hit/miss counters below instead of the cache's
	// pooled ones.
	owner                  uint64
	shared                 bool
	localHits, localMisses atomic.Int64

	// flights coalesces concurrent fetches of one block payload into a
	// single source read: a prefetch and the demand fetch it races join
	// the same flight instead of reading the same bytes twice.
	flightMu sync.Mutex
	flights  map[cacheKey]*payloadFlight

	// The prefetch worker stages announced blocks into the cache in
	// the background. It starts lazily on the first announcement and is
	// drained and joined by Close, so no read outlives the source.
	pfMu     sync.Mutex
	pfCh     chan prefetchReq
	pfClosed bool
	pfWG     sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// payloadFlight is one in-progress block-payload fetch. Late callers
// mark it shared and wait on done; the flight leader publishes data
// and err before closing done. A shared flight's buffer is never
// recycled — a waiter may still hold it.
type payloadFlight struct {
	done   chan struct{}
	data   []byte
	err    error
	shared bool
}

// prefetchReq names one block a scan expects to need next. A nil ctx
// means "no cancellation"; otherwise a request whose ctx has expired
// by dequeue time is dropped.
type prefetchReq struct {
	ctx        context.Context
	col, block int
}

// prefetchQueueLen bounds the prefetch backlog. Announcements beyond
// it are dropped — prefetch is a hint, and the demand fetch reads the
// block regardless.
const prefetchQueueLen = 32

// OpenContainerFile opens a container file lazily: for v3 it reads
// only the prefix and block index (optionally mmapping the file when
// opt.Mmap is set); v1 and v2 files are read eagerly as a fallback.
// Close the container (or any of its columns) when done.
func OpenContainerFile(path string, opt OpenOptions) (*ContainerFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if opt.Mmap && opt.WrapReader == nil && mmapSupported && size > 0 {
		if data, merr := mmapFile(f, size); merr == nil {
			// The mapping survives the descriptor; drop it now.
			f.Close()
			cf, err := openSource(&mmapSource{data: data}, size, opt)
			if err != nil {
				munmap(data)
				return nil, err
			}
			// The eager v1/v2 fallback has already released the
			// mapping; only a lazy container is still backed by it.
			cf.mapped = cf.Lazy()
			return cf, nil
		}
		// Mapping failed: fall through to ReadAt on the open file.
	}
	cf, err := OpenContainer(f, size, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cf, nil
}

// OpenContainer opens a container from any io.ReaderAt (a file, a
// bytes.Reader, a counting test wrapper). For v3 sources only the
// prefix and index are read; earlier generations fall back to one
// eager full read. If ra also implements io.Closer, Close closes it.
func OpenContainer(ra io.ReaderAt, size int64, opt OpenOptions) (*ContainerFile, error) {
	// Close targets the original reader even when a fault-injection
	// wrapper sits between it and the container.
	closer, _ := ra.(io.Closer)
	if opt.WrapReader != nil {
		ra = opt.WrapReader(ra)
	}
	return openSource(&readerAtSource{ra: ra, closer: closer}, size, opt)
}

// openSource dispatches on the container generation behind src.
func openSource(src byteSource, size int64, opt OpenOptions) (*ContainerFile, error) {
	if opt.Retry.MaxRetries > 0 {
		// Decorate below everything so the open-time prefix and index
		// reads enjoy the same tolerance as block fetches.
		src = &retrySource{src: src, policy: opt.Retry.withDefaults()}
	}
	if size < 4 {
		return nil, fmt.Errorf("%w: container too short", ErrCorrupt)
	}
	var scratch [v3PrefixLen]byte
	magic, err := src.view(0, 4, scratch[:])
	if err != nil {
		return nil, err
	}
	if string(magic) != string(MagicV3[:]) {
		// v1/v2 (or garbage — the eager reader reports it): slurp.
		return openEager(src, size)
	}
	if size < v3PrefixLen+4 {
		return nil, fmt.Errorf("%w: container too short", ErrCorrupt)
	}
	prefix, err := src.view(0, v3PrefixLen, scratch[:])
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(prefix[4:]); v != VersionV3 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	indexLen := binary.LittleEndian.Uint64(prefix[6:])
	if indexLen < 4 || indexLen > uint64(size-v3PrefixLen) {
		return nil, fmt.Errorf("%w: index length %d out of range", ErrCorrupt, indexLen)
	}
	indexBuf := getPayloadBuf(int(indexLen))
	defer putPayloadBuf(indexBuf)
	index, err := src.view(v3PrefixLen, int(indexLen), indexBuf)
	if err != nil {
		return nil, err
	}
	payloadStart := int64(v3PrefixLen) + int64(indexLen)
	p, err := parseIndexV3(index, size-payloadStart)
	if err != nil {
		return nil, err
	}
	cf := &ContainerFile{
		src:          src,
		payloadStart: payloadStart,
		cols:         p.cols,
		locs:         p.locs,
		owner:        nextCacheOwner.Add(1),
		flights:      make(map[cacheKey]*payloadFlight),
	}
	if opt.Shared != nil {
		cf.cache, cf.shared = opt.Shared.c, true
	} else {
		cf.cache = newBlockCache(opt.CacheBytes)
	}
	for ci := range cf.cols {
		cf.cols[ci].Col.Source = &colReader{cf: cf, colIdx: ci}
	}
	return cf, nil
}

// openEager reads an entire v1/v2 container through the source and
// closes it — the compatibility path for generations whose layout
// interleaves index and payloads under one whole-body checksum.
func openEager(src byteSource, size int64) (*ContainerFile, error) {
	var data []byte
	var err error
	if ms, ok := src.(*mmapSource); ok {
		// An mmap source ignores scratch; read straight from the
		// mapping instead of allocating a file-sized buffer.
		data = ms.data
	} else {
		data, err = src.view(0, int(size), make([]byte, size))
		if err != nil {
			return nil, err
		}
	}
	var cols []BlockedColumn
	if string(data[:4]) == string(MagicV2[:]) {
		cols, err = decodeContainerV2(data)
	} else {
		var v1 []Column
		v1, err = readContainerBytes(data)
		if err == nil {
			cols = make([]BlockedColumn, 0, len(v1))
			for _, c := range v1 {
				bc, ferr := blocked.FromForm(c.Form, false)
				if ferr != nil {
					return nil, ferr
				}
				cols = append(cols, BlockedColumn{Name: c.Name, Col: bc})
			}
		}
	}
	if err != nil {
		return nil, err
	}
	// Everything is resident; the source is no longer needed.
	if cerr := src.Close(); cerr != nil {
		return nil, cerr
	}
	return &ContainerFile{cols: cols}, nil
}

// Columns returns the container's column handles in file order. On a
// lazily opened container the handles share the container's source
// and cache; closing the container invalidates them.
func (cf *ContainerFile) Columns() []BlockedColumn { return cf.cols }

// Column returns the named column's handle.
func (cf *ContainerFile) Column(name string) (*blocked.Column, error) {
	for i := range cf.cols {
		if cf.cols[i].Name == name {
			return cf.cols[i].Col, nil
		}
	}
	return nil, fmt.Errorf("storage: column %q not found", name)
}

// Lazy reports whether the container serves block payloads on demand
// (v3) rather than holding every form resident (v1/v2 fallback).
func (cf *ContainerFile) Lazy() bool { return cf.locs != nil }

// Mapped reports whether the container is backed by a memory mapping.
func (cf *ContainerFile) Mapped() bool { return cf.mapped }

// CacheStats snapshots the container's block-cache counters. On a
// container that joined a SharedCache, hits and misses are the
// container's own traffic while evictions, resident bytes and budget
// are the pooled cache's — per-table hit rates stay meaningful even
// though the byte budget is shared.
func (cf *ContainerFile) CacheStats() CacheStats {
	st := cf.cache.stats()
	if cf.shared {
		st.Hits = cf.localHits.Load()
		st.Misses = cf.localMisses.Load()
	}
	return st
}

// BlockExtent describes one block's payload location inside a lazily
// opened container — what `lwc stat` prints without decoding.
type BlockExtent struct {
	// Offset is the payload's position relative to the payload
	// region's start.
	Offset int64
	// Bytes is the payload's encoded length.
	Bytes int64
	// CRC is the payload's expected CRC-32C.
	CRC uint32
}

// Extents returns the payload extents of column ci's blocks, or nil
// when the container was opened eagerly (v1/v2) and has no extent
// table.
func (cf *ContainerFile) Extents(ci int) []BlockExtent {
	if cf.locs == nil || ci < 0 || ci >= len(cf.locs) {
		return nil
	}
	out := make([]BlockExtent, len(cf.locs[ci]))
	for i, loc := range cf.locs[ci] {
		out[i] = BlockExtent{Offset: loc.off, Bytes: loc.length, CRC: loc.crc}
	}
	return out
}

// Close releases the container's byte source (file handle or
// mapping), first draining and joining the prefetch worker so no
// background read outlives the source. It is idempotent, and closing
// any column of the container forwards here.
func (cf *ContainerFile) Close() error {
	cf.closeOnce.Do(func() {
		cf.pfMu.Lock()
		cf.pfClosed = true
		if cf.pfCh != nil {
			close(cf.pfCh)
		}
		cf.pfMu.Unlock()
		cf.pfWG.Wait()
		if cf.src != nil {
			cf.closeErr = cf.src.Close()
		}
	})
	return cf.closeErr
}

// fetchPayload returns block (colIdx, i)'s CRC-verified payload
// bytes, coalescing concurrent fetches of the same block — a prefetch
// and the demand fetch it races, or two scan workers straddling one
// block — into a single source read. owned reports that the caller
// holds the only reference to a pooled scratch buffer and must
// recycle it with putPayloadBuf when done; bytes belonging to the
// mapping, the cache, or a concurrent waiter come back owned=false.
func (cf *ContainerFile) fetchPayload(colIdx, i int) (data []byte, owned bool, err error) {
	key := cacheKey{owner: cf.owner, col: colIdx, block: i}
	cf.flightMu.Lock()
	if fl, ok := cf.flights[key]; ok {
		fl.shared = true
		cf.flightMu.Unlock()
		<-fl.done
		return fl.data, false, fl.err
	}
	if d, ok := cf.cache.peek(key); ok {
		// A finished flight (or another fetch) cached the block between
		// the caller's cache miss and here.
		cf.flightMu.Unlock()
		return d, false, nil
	}
	fl := &payloadFlight{done: make(chan struct{})}
	cf.flights[key] = fl
	cf.flightMu.Unlock()

	loc := cf.locs[colIdx][i]
	n := int(loc.length)
	scratch := getPayloadBuf(n)
	data, err = cf.src.view(cf.payloadStart+loc.off, n, scratch)
	if err == nil {
		err = verifyBlockCRC(data, loc, cf.cols[colIdx].Name, i)
	}
	// ReadAt filled our scratch; an mmap source returned a view into
	// the mapping and left scratch untouched.
	fromPool := err == nil && len(data) > 0 && &data[0] == &scratch[0]
	if !fromPool {
		putPayloadBuf(scratch)
	}
	if err != nil {
		data = nil
	}
	cached := false
	if err == nil && cf.cache != nil && cf.cache.add(key, data) {
		// Ownership moved to the cache for good: cached slices are
		// handed to concurrent readers, so the buffer is never pooled
		// again (mmap views just keep aliasing the mapping).
		cached = true
	}
	cf.flightMu.Lock()
	fl.data, fl.err = data, err
	shared := fl.shared
	delete(cf.flights, key)
	cf.flightMu.Unlock()
	close(fl.done)
	return data, fromPool && !cached && !shared, err
}

// prefetchAsync asks the container's background worker to stage block
// (colIdx, i) into the block cache. It is a best-effort hint: without
// a cache there is nowhere to stage, an already-resident block is
// skipped, and a full queue drops the request. ctx may be nil (no
// cancellation); an expired ctx is dropped at dequeue time.
func (cf *ContainerFile) prefetchAsync(ctx context.Context, colIdx, i int) {
	if cf.cache == nil || cf.locs == nil {
		return
	}
	if _, ok := cf.cache.peek(cacheKey{owner: cf.owner, col: colIdx, block: i}); ok {
		return
	}
	cf.pfMu.Lock()
	if cf.pfClosed {
		cf.pfMu.Unlock()
		return
	}
	if cf.pfCh == nil {
		cf.pfCh = make(chan prefetchReq, prefetchQueueLen)
		cf.pfWG.Add(1)
		go cf.prefetchLoop(cf.pfCh)
	}
	select {
	case cf.pfCh <- prefetchReq{ctx: ctx, col: colIdx, block: i}:
	default:
		// Backlogged: the demand fetch will read the block anyway.
	}
	cf.pfMu.Unlock()
}

// prefetchLoop is the container's one background prefetcher. Errors
// are deliberately dropped: a failed prefetch leaves the block to the
// demand fetch, whose own read reports (and quarantines) the failure
// with full context.
func (cf *ContainerFile) prefetchLoop(ch chan prefetchReq) {
	defer cf.pfWG.Done()
	for req := range ch {
		if req.ctx != nil && req.ctx.Err() != nil {
			continue
		}
		if _, ok := cf.cache.peek(cacheKey{owner: cf.owner, col: req.col, block: req.block}); ok {
			continue
		}
		data, owned, err := cf.fetchPayload(req.col, req.block)
		if err == nil && owned {
			// The cache declined the buffer (raced duplicate, or the
			// payload outweighs the budget); recycle it.
			putPayloadBuf(data)
		}
	}
}

// colReader adapts one column of a lazy container to both the
// blocked.BlockSource the query layer fetches forms through and the
// BlockReader raw-payload view.
type colReader struct {
	cf     *ContainerFile
	colIdx int
}

// NumBlocks implements BlockReader.
func (r *colReader) NumBlocks() int { return len(r.cf.locs[r.colIdx]) }

// Payload implements BlockReader: it returns block i's raw encoded
// bytes without CRC verification or decoding.
func (r *colReader) Payload(i int, scratch []byte) ([]byte, error) {
	loc := r.cf.locs[r.colIdx][i]
	n := int(loc.length)
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	return r.cf.src.view(r.cf.payloadStart+loc.off, n, scratch[:n])
}

// BlockForm implements blocked.BlockSource: fetch block i's payload
// (from the cache when hot, through the coalesced fetch path when
// cold — its CRC is verified there, on first touch) and decode it.
// The decoded form does not alias the payload buffer, so ReadAt
// scratch recycles through the pool.
func (r *colReader) BlockForm(i int) (*core.Form, error) {
	cf := r.cf
	name := cf.cols[r.colIdx].Name
	count := cf.cols[r.colIdx].Col.Blocks[i].Count

	if cf.cache != nil {
		data, ok := cf.cache.get(cacheKey{owner: cf.owner, col: r.colIdx, block: i})
		if ok {
			cf.localHits.Add(1)
			// Cached bytes were verified when inserted.
			return decodeBlockBody(data, name, i, count)
		}
		cf.localMisses.Add(1)
	}

	data, owned, err := cf.fetchPayload(r.colIdx, i)
	if err != nil {
		return nil, err
	}
	f, err := decodeBlockBody(data, name, i, count)
	if owned {
		putPayloadBuf(data)
	}
	return f, err
}

// PrefetchBlock implements blocked.BlockPrefetcher: it hints that
// block i's payload will be needed soon, staging it into the block
// cache in the background so the demand fetch hits warm, verified
// bytes. Best-effort — no cache, a resident block, a full queue, or
// an expired ctx all drop the hint.
func (r *colReader) PrefetchBlock(ctx context.Context, i int) {
	r.cf.prefetchAsync(ctx, r.colIdx, i)
}

// Close forwards to the container: the column handle and the
// container share one lifetime.
func (r *colReader) Close() error { return r.cf.Close() }

// CacheStats implements blocked.CacheStatsSource: it snapshots the
// container's shared block cache, so a column handle can report cache
// traffic without holding the ContainerFile. All columns of one
// container share one cache; per-column fetches land in the same
// counters.
func (r *colReader) CacheStats() blocked.CacheStats { return r.cf.cache.stats() }

// MemBlockReader is the in-memory BlockReader: a column's encoded
// payloads held as byte slices. It mirrors the file-backed reader for
// tests and for code that builds containers in memory.
type MemBlockReader struct {
	// Payloads holds each block's encoded form bytes.
	Payloads [][]byte
}

// NumBlocks implements BlockReader.
func (m *MemBlockReader) NumBlocks() int { return len(m.Payloads) }

// Payload implements BlockReader, returning the resident slice
// without copying.
func (m *MemBlockReader) Payload(i int, _ []byte) ([]byte, error) {
	if i < 0 || i >= len(m.Payloads) {
		return nil, fmt.Errorf("storage: block %d out of range [0, %d)", i, len(m.Payloads))
	}
	return m.Payloads[i], nil
}
