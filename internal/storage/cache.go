package storage

import (
	"container/list"
	"sync"
	"sync/atomic"

	"lwcomp/internal/blocked"
)

// DefaultBlockCacheBytes is the block-cache budget used when a
// container is opened lazily without an explicit cache size.
const DefaultBlockCacheBytes = 32 << 20

// payloadPool recycles the scratch buffers non-mmap block fetches
// read payloads into. A fetch that inserts its buffer into the block
// cache hands ownership over permanently: the cache returns cached
// slices to concurrent readers outside its lock, so an evicted
// buffer may still be mid-decode elsewhere and must be left to the
// garbage collector, never recycled.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// getPayloadBuf returns a pooled buffer of length n.
func getPayloadBuf(n int) []byte {
	bp := payloadPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// putPayloadBuf returns a buffer to the pool.
func putPayloadBuf(b []byte) {
	payloadPool.Put(&b)
}

// cacheKey addresses one block of one column of one container. The
// owner field is the opening container's unique id, so containers
// sharing one SharedCache never collide on (column, block).
type cacheKey struct {
	owner      uint64
	col, block int
}

// cacheEntry is one cached raw block payload. The cache owns data
// exclusively among writers — nothing mutates it after insertion —
// so get can hand it to readers outside the lock; eviction merely
// drops the reference (see payloadPool).
type cacheEntry struct {
	key  cacheKey
	data []byte
}

// blockCache is a byte-budgeted LRU over raw (CRC-verified) block
// payloads, shared by every query on a container. It is safe for
// concurrent use.
type blockCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	m      map[cacheKey]*list.Element

	hits, misses, evictions int64
}

// newBlockCache returns a cache with the given byte budget, or nil
// when the budget admits nothing (caching disabled).
func newBlockCache(budget int64) *blockCache {
	if budget <= 0 {
		return nil
	}
	return &blockCache{budget: budget, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// get returns the cached payload for key, promoting it to most
// recently used.
func (c *blockCache) get(key cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).data, true
}

// peek returns the cached payload for key without promoting it or
// touching the hit/miss counters — the presence probe the prefetcher
// uses to skip warm blocks and the fetch coalescer uses for its
// last-moment recheck. Nil-safe, like stats.
func (c *blockCache) peek(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	return e.Value.(*cacheEntry).data, true
}

// add inserts a verified payload, evicting least-recently-used
// entries until the budget holds. It reports whether the cache took
// ownership of data: a false return (entry too large, or the key
// raced in from another goroutine) leaves the buffer with the caller.
// A true return transfers data to the cache for good — it may be
// handed to concurrent readers at any later point, so the caller
// must not reuse or pool it.
func (c *blockCache) add(key cacheKey, data []byte) bool {
	size := int64(len(data))
	if size > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return false
	}
	for c.used+size > c.budget {
		c.evictOldestLocked()
	}
	e := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.m[key] = e
	c.used += size
	return true
}

// evictOldestLocked drops the least-recently-used entry. Callers hold
// c.mu and have ensured the cache is non-empty. The entry's buffer is
// only dereferenced, never recycled: a reader that got it from get
// may still be decoding it.
func (c *blockCache) evictOldestLocked() {
	e := c.ll.Back()
	if e == nil {
		return
	}
	ent := e.Value.(*cacheEntry)
	c.ll.Remove(e)
	delete(c.m, ent.key)
	c.used -= int64(len(ent.data))
	c.evictions++
}

// CacheStats reports a container's block-cache traffic. Zero values
// when the container was opened without a cache. The canonical type
// lives in package blocked so a lazily opened column can expose the
// same counters through Column.CacheStats without importing storage.
type CacheStats = blocked.CacheStats

// nextCacheOwner hands out the container ids that keep cache keys
// distinct across containers sharing one SharedCache.
var nextCacheOwner atomic.Uint64

// SharedCache is a block cache several containers share under one
// byte budget — the server's resource-governance primitive: however
// many tables a process mounts, their verified block payloads compete
// for one LRU budget instead of each container holding its own.
// Containers join it through OpenOptions.Shared (the public
// WithSharedBlockCache option); each opener gets a unique key space,
// so identical (column, block) coordinates in different containers
// never alias. A nil *SharedCache is valid and means "no cache".
type SharedCache struct {
	c *blockCache
}

// NewSharedCache returns a shared cache with the given byte budget,
// or nil when the budget admits nothing (budget <= 0), which opens
// containers uncached.
func NewSharedCache(budget int64) *SharedCache {
	c := newBlockCache(budget)
	if c == nil {
		return nil
	}
	return &SharedCache{c: c}
}

// Stats snapshots the cache's pooled counters: hits and misses summed
// across every member container, evictions, and resident bytes
// against the one shared budget. Per-container traffic comes from the
// members' own CacheStats.
func (s *SharedCache) Stats() CacheStats {
	if s == nil {
		return CacheStats{}
	}
	return s.c.stats()
}

// stats snapshots the cache counters.
func (c *blockCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		BytesUsed:   c.used,
		BytesBudget: c.budget,
	}
}
