package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lwcomp/internal/blocked"
)

// writeTombstonedV3 encodes vals, tombstones block tomb with reason,
// and writes the container to a temp file.
func writeTombstonedV3(t *testing.T, vals []int64, blockSize, tomb int, reason string) string {
	t.Helper()
	col, err := blocked.Encode(vals, blocked.EncodeOptions{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	col.MarkTombstone(tomb, reason)
	path := filepath.Join(t.TempDir(), "tombstoned.lwc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteContainerV3(f, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyTombstoneRoundTripLazy(t *testing.T) {
	vals := verifyVals(512)
	path := writeTombstonedV3(t, vals, 128, 2, "payload lost in test")
	cf, err := OpenContainerFile(path, OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	col := cf.Columns()[0].Col

	b := &col.Blocks[2]
	if !b.Tombstone || b.TombstoneReason != "payload lost in test" {
		t.Fatalf("tombstone not materialized: %+v", b)
	}
	// Stats must not survive the payload: a planner proving the block
	// from [min, max] would count rows that no longer exist.
	if b.HasStats {
		t.Fatal("tombstoned block kept its index stats")
	}
	if qerr, ok := col.QuarantineError(2); !ok || !errors.Is(qerr, blocked.ErrTombstone) {
		t.Fatalf("tombstone not quarantined: %v, %v", qerr, ok)
	}

	// Default (fail-fast) reads of the lost range fail with the
	// tombstone cause; surviving blocks still decode exactly.
	out := make([]int64, len(vals))
	if err := col.DecompressInto(out); !errors.Is(err, blocked.ErrTombstone) {
		t.Fatalf("full decompress over a tombstone: %v", err)
	}
	good := make([]int64, 128)
	if err := col.DecompressBlock(1, good); err != nil {
		t.Fatal(err)
	}
	for i, v := range good {
		if v != vals[128+i] {
			t.Fatalf("surviving block value %d: got %d want %d", i, v, vals[128+i])
		}
	}

	// The verifier reports the tombstone separately and does not fail
	// the container: a tombstoned container is in its intended state.
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("tombstoned container failed verification: %v", rep.Issues)
	}
	if len(rep.Tombstones) != 1 || rep.Tombstones[0].Block != 2 ||
		rep.Tombstones[0].RowStart != 256 || rep.Tombstones[0].RowCount != 128 {
		t.Fatalf("tombstone report: %+v", rep.Tombstones)
	}
}

func TestVerifyTombstoneRoundTripEager(t *testing.T) {
	path := writeTombstonedV3(t, verifyVals(512), 128, 0, "gone")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ReadAnyContainer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	col := cols[0].Col
	if !col.Blocks[0].Tombstone {
		t.Fatal("eager read dropped the tombstone flag")
	}
	// In-memory columns have no Source; the quarantine check must
	// still fire before the nil-source fetch path.
	out := make([]int64, 128)
	if err := col.DecompressBlock(0, out); !errors.Is(err, blocked.ErrTombstone) {
		t.Fatalf("eager tombstone fetch: %v", err)
	}
}

func TestTombstoneRawWriterRejectsPayload(t *testing.T) {
	var buf bytes.Buffer
	err := WriteContainerV3Raw(&buf, []RawColumn{{
		Name:      "c",
		BlockSize: 4,
		Blocks:    []RawBlock{{Count: 4, Tombstone: true, Payload: []byte{1}}},
	}})
	if err == nil {
		t.Fatal("tombstone with a payload was written")
	}
}

func TestTombstoneAllBlocksRoundTrip(t *testing.T) {
	// Every block lost: the payload region is empty, maxEnd is 0, and
	// the container still parses — fully degraded, not corrupt.
	var buf bytes.Buffer
	err := WriteContainerV3Raw(&buf, []RawColumn{{
		Name:      "c",
		BlockSize: 4,
		Blocks: []RawBlock{
			{Count: 4, Tombstone: true, TombstoneReason: "a"},
			{Count: 4, Tombstone: true, TombstoneReason: "b"},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ReadAnyContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	col := cols[0].Col
	if col.N != 8 || !col.Blocks[0].Tombstone || !col.Blocks[1].Tombstone {
		t.Fatalf("all-tombstone roundtrip: n=%d blocks=%+v", col.N, col.Blocks)
	}
	if col.Blocks[1].TombstoneReason != "b" {
		t.Fatalf("reason lost: %q", col.Blocks[1].TombstoneReason)
	}
}

func TestTombstoneClearQuarantineKeepsTombstones(t *testing.T) {
	col, err := blocked.Encode(verifyVals(256), blocked.EncodeOptions{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	col.MarkTombstone(1, "gone")
	if !col.Quarantine(2, ErrChecksum) {
		t.Fatal("quarantine of a permanent error rejected")
	}
	if col.Quarantine(2, ErrChecksum) {
		t.Fatal("double quarantine reported as new")
	}
	if col.Quarantine(3, errors.New("transient-looking")) {
		t.Fatal("non-permanent error accepted into the ledger")
	}
	if cleared := col.ClearQuarantine(); cleared != 1 {
		t.Fatalf("cleared %d entries, want 1 (the non-tombstone)", cleared)
	}
	// The tombstone must stay condemned: its payload does not exist.
	if _, ok := col.QuarantineError(1); !ok {
		t.Fatal("ClearQuarantine re-admitted a tombstone")
	}
	if _, ok := col.QuarantineError(2); ok {
		t.Fatal("ClearQuarantine kept a repairable entry")
	}
}

func TestTombstoneReasonTruncated(t *testing.T) {
	long := strings.Repeat("x", 400)
	var buf bytes.Buffer
	err := WriteContainerV3Raw(&buf, []RawColumn{{
		Name:      "c",
		BlockSize: 4,
		Blocks:    []RawBlock{{Count: 4, Tombstone: true, TombstoneReason: long}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := ReadAnyContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := cols[0].Col.Blocks[0].TombstoneReason
	if len(got) != 255 || !strings.HasPrefix(long, got) {
		t.Fatalf("reason not truncated to 255 bytes: len=%d", len(got))
	}
}
