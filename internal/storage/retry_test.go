package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/faults"
)

// flakySource fails its first failN views transiently (or every view
// with a permanent error), counting calls.
type flakySource struct {
	data  []byte
	failN int
	perm  error
	calls int
}

func (s *flakySource) view(off int64, n int, scratch []byte) ([]byte, error) {
	s.calls++
	if s.perm != nil {
		return nil, fmt.Errorf("decorated: %w", s.perm)
	}
	if s.calls <= s.failN {
		return nil, errors.New("transient I/O error")
	}
	return s.data[off : off+int64(n)], nil
}

func (s *flakySource) Close() error { return nil }

func TestFaultRetryAbsorbsTransient(t *testing.T) {
	src := &flakySource{data: []byte("payload"), failN: 2}
	rs := &retrySource{src: src, policy: RetryPolicy{MaxRetries: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}}
	got, err := rs.view(0, 7, nil)
	if err != nil {
		t.Fatalf("view after transient failures: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("view = %q", got)
	}
	st := rs.stats()
	if st.Retries != 2 || st.Giveups != 0 {
		t.Fatalf("stats = %+v, want 2 retries, 0 giveups", st)
	}
}

func TestFaultRetryGivesUp(t *testing.T) {
	src := &flakySource{data: []byte("payload"), failN: 100}
	rs := &retrySource{src: src, policy: RetryPolicy{MaxRetries: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}}
	_, err := rs.view(0, 7, nil)
	if err == nil {
		t.Fatal("view succeeded past the retry budget")
	}
	if src.calls != 3 {
		t.Fatalf("source called %d times, want 1 + 2 retries", src.calls)
	}
	st := rs.stats()
	if st.Retries != 2 || st.Giveups != 1 {
		t.Fatalf("stats = %+v, want 2 retries, 1 giveup", st)
	}
}

func TestFaultRetryNeverRetriesPermanent(t *testing.T) {
	for _, perm := range []error{ErrChecksum, ErrCorrupt} {
		src := &flakySource{perm: perm}
		rs := &retrySource{src: src, policy: RetryPolicy{MaxRetries: 5, BaseDelay: time.Microsecond}}
		_, err := rs.view(0, 1, nil)
		if !errors.Is(err, perm) {
			t.Fatalf("error %v does not preserve the permanent sentinel", err)
		}
		if src.calls != 1 {
			t.Fatalf("%v: source called %d times — permanent errors must not be retried", perm, src.calls)
		}
		if st := rs.stats(); st.Retries != 0 || st.Giveups != 0 {
			t.Fatalf("%v: stats = %+v, want zero", perm, st)
		}
	}
}

// buildV3 encodes one column and renders it as v3 container bytes.
func buildV3(t *testing.T, vals []int64, blockSize int) []byte {
	t.Helper()
	col, err := blocked.Encode(vals, blocked.EncodeOptions{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContainerV3(&buf, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultInjectedContainerSurvivesWithRetry is the end-to-end pairing:
// a container read through a deterministic fault injector answers every
// query correctly as long as the retry budget exceeds the injector's
// consecutive-failure bound — open-time index reads included.
func TestFaultInjectedContainerSurvivesWithRetry(t *testing.T) {
	vals := make([]int64, 2048)
	for i := range vals {
		vals[i] = int64(i*3 - 1000)
	}
	data := buildV3(t, vals, 256)
	inj := faults.NewReaderAt(bytes.NewReader(data), faults.Config{
		Seed: 11, TransientProb: 0.5, MaxConsecutive: 2,
	})
	cf, err := OpenContainer(inj, int64(len(data)), OpenOptions{
		CacheBytes: -1,
		Retry:      RetryPolicy{MaxRetries: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatalf("open through injector: %v", err)
	}
	defer cf.Close()
	col := cf.Columns()[0].Col
	got, err := col.Decompress()
	if err != nil {
		t.Fatalf("decompress through injector: %v", err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("row %d: got %d want %d", i, got[i], vals[i])
		}
	}
	if inj.InjectedTransient() == 0 {
		t.Fatal("injector fired nothing — the test proved nothing")
	}
	if st := cf.ReadStats(); st.Retries == 0 || st.Giveups != 0 {
		t.Fatalf("ReadStats = %+v, want absorbed retries and no giveups", st)
	}
}

// TestFaultInjectedContainerFailsWithoutRetry pins the control case:
// the same injection with retries disabled surfaces the transient
// error instead of silently absorbing it.
func TestFaultInjectedContainerFailsWithoutRetry(t *testing.T) {
	data := buildV3(t, []int64{1, 2, 3, 4}, 2)
	inj := faults.NewReaderAt(bytes.NewReader(data), faults.Config{
		Seed: 11, TransientProb: 1, MaxConsecutive: 2,
	})
	_, err := OpenContainer(inj, int64(len(data)), OpenOptions{CacheBytes: -1})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("open without retry: %v, want the injected transient error", err)
	}
}
