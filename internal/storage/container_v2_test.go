package storage

import (
	"bytes"
	"errors"
	"testing"

	"lwcomp/internal/blocked"
	_ "lwcomp/internal/scheme" // register schemes
	"lwcomp/internal/workload"
)

func encodeBlocked(t *testing.T, data []int64, blockSize int) *blocked.Column {
	t.Helper()
	col, err := blocked.Encode(data, blocked.EncodeOptions{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestContainerV2RoundTrip(t *testing.T) {
	a := workload.OrderShipDates(6000, 40, 730120, 1)
	b := workload.UniformBits(6000, 14, 2)
	cols := []BlockedColumn{
		{Name: "dates", Col: encodeBlocked(t, a, 2048)},
		{Name: "qty", Col: encodeBlocked(t, b, 0)},
	}
	var buf bytes.Buffer
	if err := WriteContainerV2(&buf, cols); err != nil {
		t.Fatal(err)
	}
	got, err := ReadContainerV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "dates" || got[1].Name != "qty" {
		t.Fatalf("columns = %+v", got)
	}
	for i, want := range []([]int64){a, b} {
		if err := got[i].Col.Validate(); err != nil {
			t.Fatal(err)
		}
		back, err := got[i].Col.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(want) {
			t.Fatalf("column %d length %d, want %d", i, len(back), len(want))
		}
		for j := range want {
			if back[j] != want[j] {
				t.Fatalf("column %d row %d: %d != %d", i, j, back[j], want[j])
			}
		}
	}
	// Block index survives byte-exactly.
	for i := range got[0].Col.Blocks {
		g, w := got[0].Col.Blocks[i], cols[0].Col.Blocks[i]
		if g.Start != w.Start || g.Count != w.Count || g.Min != w.Min || g.Max != w.Max || g.HasStats != w.HasStats {
			t.Fatalf("block %d index mismatch: %+v vs %+v", i, g, w)
		}
	}
}

func TestReadAnyContainerDispatch(t *testing.T) {
	data := workload.Runs(4000, 24, 1<<10, 3)
	col := encodeBlocked(t, data, 1024)

	var v2 bytes.Buffer
	if err := WriteContainerV2(&v2, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnyContainer(bytes.NewReader(v2.Bytes()))
	if err != nil || len(got) != 1 || got[0].Col.NumBlocks() != 4 {
		t.Fatalf("v2 via ReadAnyContainer: %v", err)
	}

	var v1 bytes.Buffer
	if err := WriteContainer(&v1, []Column{{Name: "c", Form: col.Blocks[0].Form}}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAnyContainer(bytes.NewReader(v1.Bytes()))
	if err != nil || len(got) != 1 {
		t.Fatalf("v1 via ReadAnyContainer: %v", err)
	}
	if got[0].Col.NumBlocks() != 1 || got[0].Col.Blocks[0].HasStats {
		t.Fatalf("v1 adoption: %+v", got[0].Col)
	}
}

func TestContainerV2RejectsCorruption(t *testing.T) {
	data := workload.RandomWalk(3000, 8, 1<<20, 4)
	var buf bytes.Buffer
	if err := WriteContainerV2(&buf, []BlockedColumn{{Name: "c", Col: encodeBlocked(t, data, 1024)}}); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// CRC catches body flips.
	mut := append([]byte{}, blob...)
	mut[len(mut)/2] ^= 0x40
	if _, err := ReadContainerV2(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("body flip: err = %v", err)
	}
	// Truncations are structural errors.
	for _, k := range []int{0, 4, len(blob) - 1} {
		if _, err := ReadContainerV2(bytes.NewReader(blob[:k])); err == nil {
			t.Fatalf("truncation to %d accepted", k)
		}
	}
	// Wrong magic.
	mut = append([]byte{}, blob...)
	mut[3] = '9'
	if _, err := ReadContainerV2(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, err := ReadAnyContainer(bytes.NewReader(mut)); err == nil {
		t.Fatal("ReadAnyContainer accepted bad magic")
	}
}

func TestWriteContainerV2RejectsBrokenColumn(t *testing.T) {
	data := workload.RandomWalk(2048, 8, 1<<20, 5)
	col := encodeBlocked(t, data, 1024)
	col.Blocks[1].Start = 7 // break the tiling
	var buf bytes.Buffer
	if err := WriteContainerV2(&buf, []BlockedColumn{{Name: "c", Col: col}}); err == nil {
		t.Fatal("broken block index accepted")
	}
	if err := WriteContainerV2(&buf, []BlockedColumn{{Name: "", Col: nil}}); err == nil {
		t.Fatal("empty name accepted")
	}
}
