//go:build unix

package storage

import (
	"math"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map
// container files; openers fall back to ReadAt when it is false.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping stays valid
// after f is closed.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	if size > math.MaxInt {
		return nil, syscall.ENOMEM
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping from mmapFile.
func munmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
