package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
)

// Container format v3 ("LWC3") is the lazily openable generation: the
// block index is self-contained at the front of the file and every
// block payload carries its own CRC-32C, so a reader can open a
// container by reading only the fixed prefix and the index, then
// fetch and verify individual block payloads on demand. v2 kept one
// CRC over the whole body, which forced ReadAnyContainer to slurp the
// entire file before the first query; v3 is what makes OpenContainer
// O(index) instead of O(file).
//
// v3 layout (all little-endian, varints LEB128, signed zigzagged):
//
//	magic    "LWC3"
//	version  u16 (= 3)
//	indexLen u64 (bytes of the index section, including its CRC)
//	index section:
//	  ncols varint
//	  per column:
//	    name      u8-len + bytes
//	    blockSize varint (0 = single unpartitioned block)
//	    n         varint (total rows)
//	    nblocks   varint
//	    per block:
//	      count      varint
//	      flag       u8 (0 = no stats, 1 = stats, 2 = tombstone)
//	      min,max    zigzag varints (present only when flag = 1)
//	      reason     u8-len + bytes (present only when flag = 2)
//	      payloadOff varint (relative to the payload region start)
//	      payloadLen varint (0 when flag = 2)
//	      payloadCRC u32 (CRC-32C of the block's encoded form)
//	  crc32c u32 of the index bytes above
//	payload region: concatenated EncodeForm bytes
//
// Flag 2 is the tombstone written by salvage repair for a block whose
// payload was lost for good: the index still declares the block's row
// range (so the column tiles [0, N) exactly), but there is no payload
// behind it. A reader materializes the tombstone as a quarantined
// block — fetches fail fast with blocked.ErrTombstone, degraded scans
// skip exactly the declared range. Readers from before flag 2 reject
// such containers at open ("bad stats flag"), never misread them.
//
// Invariants a reader enforces: payload extents lie inside the
// payload region, and the largest extent end equals the region size
// exactly (so a truncated or padded file fails at open, not at first
// touch). Block payload corruption, by contrast, is detected lazily:
// the per-block CRC is checked when the block is first fetched.

// MagicV3 identifies v3 (lazily openable) container files.
var MagicV3 = [4]byte{'L', 'W', 'C', '3'}

// VersionV3 is the lazily openable container format version.
const VersionV3 uint16 = 3

// v3PrefixLen is the fixed byte length of magic + version + indexLen.
const v3PrefixLen = 4 + 2 + 8

// blockLoc is one block's payload extent inside the payload region.
type blockLoc struct {
	off, length int64
	crc         uint32
}

// WriteContainerV3 writes named blocked columns as one v3 container.
// Columns may be lazily opened handles: their block payloads are
// fetched through the source as they are written. Tombstoned blocks
// are written as index tombstones with no payload. The writer buffers
// the encoded index and payload region in memory before writing
// (offsets must be known up front), so writing costs O(container)
// memory — same bound as the v1/v2 writers; a spooling writer is
// future work if containers outgrow RAM.
func WriteContainerV3(w io.Writer, cols []BlockedColumn) error {
	raw := make([]RawColumn, 0, len(cols))
	for _, c := range cols {
		if len(c.Name) == 0 || len(c.Name) > maxNameLen {
			return fmt.Errorf("%w: column name %q", ErrCorrupt, c.Name)
		}
		if c.Col == nil {
			return fmt.Errorf("%w: column %q has no data", ErrCorrupt, c.Name)
		}
		if err := c.Col.Validate(); err != nil {
			return err
		}
		rc := RawColumn{Name: c.Name, BlockSize: c.Col.BlockSize}
		for i := range c.Col.Blocks {
			b := &c.Col.Blocks[i]
			rb := RawBlock{
				Count: b.Count, HasStats: b.HasStats, Min: b.Min, Max: b.Max,
				Tombstone: b.Tombstone, TombstoneReason: b.TombstoneReason,
			}
			if !b.Tombstone {
				f, err := c.Col.BlockForm(i)
				if err != nil {
					return err
				}
				enc, err := EncodeForm(f)
				if err != nil {
					return err
				}
				rb.Payload = enc
			}
			rc.Blocks = append(rc.Blocks, rb)
		}
		raw = append(raw, rc)
	}
	return WriteContainerV3Raw(w, raw)
}

// RawBlock is one block of a raw-assembled v3 container: the index
// facts plus the already-encoded payload bytes, written verbatim.
// Salvage repair uses the raw writer to preserve good blocks
// byte-for-byte without a decode/re-encode round trip.
type RawBlock struct {
	// Count is the block's element count.
	Count int
	// HasStats reports whether Min/Max are valid; ignored (written as
	// absent) for tombstones.
	HasStats bool
	// Min and Max are the block's raw-value extremes.
	Min, Max int64
	// Tombstone marks a block whose payload is lost; Payload must be
	// nil.
	Tombstone bool
	// TombstoneReason is persisted with a tombstone (truncated to 255
	// bytes); ignored otherwise.
	TombstoneReason string
	// Payload is the block's encoded form bytes, written verbatim.
	Payload []byte
}

// RawColumn is one column of a raw-assembled v3 container. The row
// count is the sum of its blocks' counts.
type RawColumn struct {
	// Name is the column name recorded in the index.
	Name string
	// BlockSize is the encode-time partition size (0 = one
	// unpartitioned block).
	BlockSize int
	// Blocks holds the column's blocks in row order.
	Blocks []RawBlock
}

// WriteContainerV3Raw writes pre-encoded blocks as one v3 container,
// byte-for-byte: each payload goes into the file exactly as given,
// with its CRC computed over those bytes. It is the salvage-repair
// writer — callers are responsible for payload validity (the index
// CRC machinery will catch mismatches at read time, and repair
// verifies candidates before swapping them in).
func WriteContainerV3Raw(w io.Writer, cols []RawColumn) error {
	var index []byte
	var payload []byte
	index = binary.AppendUvarint(index, uint64(len(cols)))
	for _, c := range cols {
		if len(c.Name) == 0 || len(c.Name) > maxNameLen {
			return fmt.Errorf("%w: column name %q", ErrCorrupt, c.Name)
		}
		n := 0
		for i := range c.Blocks {
			if c.Blocks[i].Count < 0 {
				return fmt.Errorf("%w: column %q block %d has negative count", ErrCorrupt, c.Name, i)
			}
			n += c.Blocks[i].Count
		}
		index = append(index, byte(len(c.Name)))
		index = append(index, c.Name...)
		index = binary.AppendUvarint(index, uint64(c.BlockSize))
		index = binary.AppendUvarint(index, uint64(n))
		index = binary.AppendUvarint(index, uint64(len(c.Blocks)))
		for i := range c.Blocks {
			b := &c.Blocks[i]
			index = binary.AppendUvarint(index, uint64(b.Count))
			switch {
			case b.Tombstone:
				if len(b.Payload) != 0 {
					return fmt.Errorf("%w: column %q block %d is tombstoned but has %d payload bytes",
						ErrCorrupt, c.Name, i, len(b.Payload))
				}
				index = append(index, 2)
				reason := b.TombstoneReason
				if len(reason) > maxNameLen {
					reason = reason[:maxNameLen]
				}
				index = append(index, byte(len(reason)))
				index = append(index, reason...)
			case b.HasStats:
				index = append(index, 1)
				index = binary.AppendUvarint(index, bitpack.Zigzag(b.Min))
				index = binary.AppendUvarint(index, bitpack.Zigzag(b.Max))
			default:
				index = append(index, 0)
			}
			index = binary.AppendUvarint(index, uint64(len(payload)))
			index = binary.AppendUvarint(index, uint64(len(b.Payload)))
			index = binary.LittleEndian.AppendUint32(index, crc32.Checksum(b.Payload, castagnoli))
			payload = append(payload, b.Payload...)
		}
	}
	var prefix [v3PrefixLen]byte
	copy(prefix[:], MagicV3[:])
	binary.LittleEndian.PutUint16(prefix[4:], VersionV3)
	binary.LittleEndian.PutUint64(prefix[6:], uint64(len(index)+4))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := w.Write(index); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(index, castagnoli))
	if _, err := w.Write(crc[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// parsedIndex is a decoded v3 index: the form-less column handles and
// each block's payload extent.
type parsedIndex struct {
	cols []BlockedColumn
	locs [][]blockLoc
}

// parseIndexV3 decodes and verifies an index section (including its
// trailing CRC) against the given payload region size.
func parseIndexV3(index []byte, payloadSize int64) (*parsedIndex, error) {
	if len(index) < 4 {
		return nil, fmt.Errorf("%w: index too short", ErrCorrupt)
	}
	body := index[:len(index)-4]
	wantCRC := binary.LittleEndian.Uint32(index[len(index)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, fmt.Errorf("%w (block index)", ErrChecksum)
	}
	d := &decoder{data: body}
	ncols, err := d.count(2)
	if err != nil {
		return nil, err
	}
	p := &parsedIndex{
		cols: make([]BlockedColumn, 0, ncols),
		locs: make([][]blockLoc, 0, ncols),
	}
	var maxEnd int64
	for ci := 0; ci < ncols; ci++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		blockSize, err := d.count(0)
		if err != nil {
			return nil, err
		}
		n, err := d.count(0)
		if err != nil {
			return nil, err
		}
		nblocks, err := d.count(2)
		if err != nil {
			return nil, err
		}
		col := &blocked.Column{N: n, BlockSize: blockSize, Blocks: make([]blocked.Block, 0, nblocks)}
		locs := make([]blockLoc, 0, nblocks)
		var start int64
		for bi := 0; bi < nblocks; bi++ {
			count, err := d.count(0)
			if err != nil {
				return nil, err
			}
			flag, err := d.u8()
			if err != nil {
				return nil, err
			}
			if flag > 2 {
				return nil, fmt.Errorf("%w: bad stats flag %d", ErrCorrupt, flag)
			}
			blk := blocked.Block{Start: start, Count: count, HasStats: flag == 1}
			switch flag {
			case 1:
				zzMin, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				zzMax, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				blk.Min = bitpack.Unzigzag(zzMin)
				blk.Max = bitpack.Unzigzag(zzMax)
				if blk.Min > blk.Max {
					return nil, fmt.Errorf("%w: block stats min %d > max %d", ErrCorrupt, blk.Min, blk.Max)
				}
			case 2:
				rl, err := d.u8()
				if err != nil {
					return nil, err
				}
				if d.pos+int(rl) > len(d.data) {
					return nil, fmt.Errorf("%w: truncated tombstone reason at byte %d", ErrCorrupt, d.pos)
				}
				blk.Tombstone = true
				blk.TombstoneReason = string(d.data[d.pos : d.pos+int(rl)])
				d.pos += int(rl)
			}
			off, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			length, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if blk.Tombstone && length != 0 {
				return nil, fmt.Errorf("%w: column %q block %d is tombstoned but has a %d-byte payload",
					ErrCorrupt, name, bi, length)
			}
			if off > math.MaxInt64 || length > math.MaxInt32 {
				return nil, fmt.Errorf("%w: block extent %d+%d out of range", ErrCorrupt, off, length)
			}
			end := int64(off) + int64(length)
			if end < int64(off) || end > payloadSize {
				return nil, fmt.Errorf("%w: column %q block %d payload extends past region (%d+%d > %d)",
					ErrCorrupt, name, bi, off, length, payloadSize)
			}
			if end > maxEnd {
				maxEnd = end
			}
			var crcBytes [4]byte
			for k := range crcBytes {
				b, err := d.u8()
				if err != nil {
					return nil, err
				}
				crcBytes[k] = b
			}
			locs = append(locs, blockLoc{
				off:    int64(off),
				length: int64(length),
				crc:    binary.LittleEndian.Uint32(crcBytes[:]),
			})
			col.Blocks = append(col.Blocks, blk)
			start += int64(count)
		}
		if start != int64(n) {
			return nil, fmt.Errorf("%w: column %q blocks cover %d rows, header says %d",
				ErrCorrupt, name, start, n)
		}
		// Materialize persisted tombstones as quarantined blocks:
		// fetches fail fast with ErrTombstone, and a degraded scan's
		// manifest attributes the skip to the persisted reason.
		for bi := range col.Blocks {
			if col.Blocks[bi].Tombstone {
				col.MarkTombstone(bi, col.Blocks[bi].TombstoneReason)
			}
		}
		p.cols = append(p.cols, BlockedColumn{Name: name, Col: col})
		p.locs = append(p.locs, locs)
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes in index", ErrCorrupt, len(body)-d.pos)
	}
	if maxEnd != payloadSize {
		return nil, fmt.Errorf("%w: payload region is %d bytes, index covers %d (truncated or padded file)",
			ErrCorrupt, payloadSize, maxEnd)
	}
	return p, nil
}

// decodeBlockPayload verifies a block payload's CRC and decodes it
// into a form with the expected element count.
func decodeBlockPayload(data []byte, loc blockLoc, name string, blockIdx, count int) (*core.Form, error) {
	if err := verifyBlockCRC(data, loc, name, blockIdx); err != nil {
		return nil, err
	}
	return decodeBlockBody(data, name, blockIdx, count)
}

// verifyBlockCRC checks a block payload's bytes against the CRC-32C
// the index recorded for it. The lazy read path runs this once per
// fetch, before the bytes can enter the block cache, so cached
// payloads are always verified.
func verifyBlockCRC(data []byte, loc blockLoc, name string, blockIdx int) error {
	if crc32.Checksum(data, castagnoli) != loc.crc {
		return fmt.Errorf("column %q block %d: %w", name, blockIdx, ErrChecksum)
	}
	return nil
}

// decodeBlockBody decodes an already-CRC-verified block payload into
// a form with the expected element count.
func decodeBlockBody(data []byte, name string, blockIdx, count int) (*core.Form, error) {
	f, consumed, err := DecodeForm(data)
	if err != nil {
		return nil, fmt.Errorf("column %q block %d: %w", name, blockIdx, err)
	}
	if consumed != len(data) {
		return nil, fmt.Errorf("%w: column %q block %d has %d trailing bytes",
			ErrCorrupt, name, blockIdx, len(data)-consumed)
	}
	if f.N != count {
		return nil, fmt.Errorf("%w: column %q block %d form length %d, index says %d",
			ErrCorrupt, name, blockIdx, f.N, count)
	}
	return f, nil
}

// decodeContainerV3 decodes a v3 container held fully in memory —
// the eager path ReadAnyContainer uses; every block form comes back
// resident.
func decodeContainerV3(data []byte) ([]BlockedColumn, error) {
	if len(data) < v3PrefixLen+4 {
		return nil, fmt.Errorf("%w: container too short", ErrCorrupt)
	}
	for i := range MagicV3 {
		if data[i] != MagicV3[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != VersionV3 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	indexLen := binary.LittleEndian.Uint64(data[6:])
	if indexLen < 4 || indexLen > uint64(len(data)-v3PrefixLen) {
		return nil, fmt.Errorf("%w: index length %d out of range", ErrCorrupt, indexLen)
	}
	index := data[v3PrefixLen : v3PrefixLen+int(indexLen)]
	payload := data[v3PrefixLen+int(indexLen):]
	p, err := parseIndexV3(index, int64(len(payload)))
	if err != nil {
		return nil, err
	}
	for ci := range p.cols {
		col := p.cols[ci].Col
		for bi := range col.Blocks {
			if col.Blocks[bi].Tombstone {
				// No payload exists; the block stays quarantined.
				continue
			}
			loc := p.locs[ci][bi]
			f, err := decodeBlockPayload(payload[loc.off:loc.off+loc.length], loc,
				p.cols[ci].Name, bi, col.Blocks[bi].Count)
			if err != nil {
				return nil, err
			}
			col.Blocks[bi].Form = f
		}
	}
	return p.cols, nil
}

// ReadContainerV3 reads a v3 container written by WriteContainerV3,
// decoding every block eagerly. Use OpenContainer for the lazy path.
func ReadContainerV3(r io.Reader) ([]BlockedColumn, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeContainerV3(data)
}
