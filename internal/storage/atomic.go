package storage

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// CrashHook, when non-nil, is invoked by AtomicWriteFile after each
// named step of the temp+fsync+rename protocol. It is the crash-
// consistency test seam: a harness sets it to os.Exit at a chosen
// point, runs a rewrite in a child process, and asserts that the
// directory reopens with either the old or the new generation fully
// intact — never a mix. The points, in order:
//
//	created  - the temp file exists (empty)
//	written  - the content is written (possibly only in page cache)
//	synced   - the temp file is fsynced
//	closed   - the temp file is closed
//	renamed  - the temp file replaced the destination
//	dirsynced - the directory entry is durable (best-effort)
//
// Production code never sets it; the nil check is the only cost.
var CrashHook func(point string)

// crashPoint fires the hook when one is installed.
func crashPoint(point string) {
	if h := CrashHook; h != nil {
		h(point)
	}
}

// tmpPattern matches the temp names AtomicWriteFile creates for base:
// ".<base>.tmp-<random>". The janitor keys off the same shape.
const tmpInfix = ".tmp-"

// AtomicWriteFile writes a file crash-safely: the content goes to a
// temporary file in the destination's directory, is fsynced, and only
// then renamed over path. A crash — power loss, kill -9 — at any point
// leaves either the old file or the new one visible under the final
// name, never a torn prefix; the worst leftover is an orphaned
// .<name>.tmp-* file (which SweepTempFiles removes at the next mount
// or open). The directory itself is fsynced after the rename
// (best-effort: not every platform or filesystem supports it) so the
// rename is durable, not just atomic.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+tmpInfix+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	crashPoint("created")
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	crashPoint("written")
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	crashPoint("synced")
	// CreateTemp's 0600 is right for a scratch file but not for the
	// published artifact.
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	crashPoint("closed")
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	crashPoint("renamed")
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	crashPoint("dirsynced")
	return nil
}

// SweepTempFiles removes orphaned AtomicWriteFile temp files
// (".<name>.tmp-*") under dir, returning the paths it removed. A
// crash between create and rename leaves exactly such litter; nothing
// else in the tree writes dotfiles of this shape. Only files whose
// last modification is at least minAge old are touched — a mount
// janitor running while another process rewrites the directory must
// not delete a temp file mid-write. Pass 0 at process startup or
// single-writer open time, when no concurrent writer can exist.
//
// Removal failures are not errors: the sweep is best-effort hygiene,
// and a file that vanished or resists deletion changes nothing for
// correctness. A non-nil error means the directory itself was
// unreadable.
func SweepTempFiles(dir string, minAge time.Duration) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	var removed []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, tmpInfix) {
			continue
		}
		if minAge > 0 {
			info, err := e.Info()
			if err != nil || now.Sub(info.ModTime()) < minAge {
				continue
			}
		}
		p := filepath.Join(dir, name)
		if os.Remove(p) == nil {
			removed = append(removed, p)
		}
	}
	return removed, nil
}
