package storage

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file crash-safely: the content goes to a
// temporary file in the destination's directory, is fsynced, and only
// then renamed over path. A crash — power loss, kill -9 — at any point
// leaves either the old file or the new one visible under the final
// name, never a torn prefix; the worst leftover is an orphaned
// .<name>.tmp-* file. The directory itself is fsynced after the rename
// (best-effort: not every platform or filesystem supports it) so the
// rename is durable, not just atomic.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp's 0600 is right for a scratch file but not for the
	// published artifact.
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
