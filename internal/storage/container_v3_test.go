package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lwcomp/internal/blocked"
)

// encodeBlocked builds a deterministic multi-block column.
func encodeBlockedV3(t *testing.T, n, blockSize int) (*blocked.Column, []int64) {
	t.Helper()
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 7000)
	}
	col, err := blocked.Encode(src, blocked.EncodeOptions{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	return col, src
}

func TestContainerV3RoundTrip(t *testing.T) {
	colA, srcA := encodeBlockedV3(t, 10000, 2048)
	colB, srcB := encodeBlockedV3(t, 3000, 1024)
	var buf bytes.Buffer
	err := WriteContainerV3(&buf, []BlockedColumn{{Name: "a", Col: colA}, {Name: "b", Col: colB}})
	if err != nil {
		t.Fatal(err)
	}

	// Eager read.
	cols, err := ReadContainerV3(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Name != "a" || cols[1].Name != "b" {
		t.Fatalf("columns: %+v", cols)
	}
	for i, want := range [][]int64{srcA, srcB} {
		got, err := cols[i].Col.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("column %d length %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("column %d element %d: %d != %d", i, j, got[j], want[j])
			}
		}
	}

	// ReadAnyContainer dispatches on the v3 magic too.
	cols, err = ReadAnyContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("ReadAnyContainer found %d columns", len(cols))
	}
}

func TestOpenContainerLazyAndCacheCounters(t *testing.T) {
	col, src := encodeBlockedV3(t, 1<<14, 4096)
	var buf bytes.Buffer
	if err := WriteContainerV3(&buf, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()),
		OpenOptions{CacheBytes: DefaultBlockCacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if !cf.Lazy() {
		t.Fatal("v3 container opened eagerly")
	}
	lazy := cf.Columns()[0].Col
	if lazy.Source == nil {
		t.Fatal("lazy column has no source")
	}
	for i := range lazy.Blocks {
		if lazy.Blocks[i].Form != nil {
			t.Fatalf("block %d resident after open", i)
		}
		if !lazy.Blocks[i].HasStats {
			t.Fatalf("block %d lost its stats", i)
		}
	}
	if err := lazy.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(cf.Extents(0)); got != len(lazy.Blocks) {
		t.Fatalf("%d extents for %d blocks", got, len(lazy.Blocks))
	}

	// Cold pass misses every block, warm pass hits every block.
	out := make([]int64, lazy.N)
	if err := lazy.DecompressInto(out); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("element %d: %d != %d", i, out[i], src[i])
		}
	}
	cold := cf.CacheStats()
	if cold.Misses == 0 || cold.BytesUsed == 0 {
		t.Fatalf("cold stats: %+v", cold)
	}
	if err := lazy.DecompressInto(out); err != nil {
		t.Fatal(err)
	}
	warm := cf.CacheStats()
	if warm.Hits < int64(len(lazy.Blocks)) {
		t.Fatalf("warm pass hit %d of %d blocks", warm.Hits, len(lazy.Blocks))
	}
	if warm.Misses != cold.Misses {
		t.Fatalf("warm pass missed: %+v -> %+v", cold, warm)
	}
}

func TestOpenContainerTinyCacheEvicts(t *testing.T) {
	// Incompressible values make every block's payload comparable in
	// size, so a budget of roughly one payload forces the LRU to
	// evict on every fetch of a round-robin scan.
	src := make([]int64, 1<<13)
	state := uint64(42)
	for i := range src {
		state = state*6364136223846793005 + 1442695040888963407
		src[i] = int64(state >> 34)
	}
	col, err := blocked.Encode(src, blocked.EncodeOptions{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContainerV3(&buf, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	var maxExtent int64
	cfProbe, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cfProbe.Extents(0) {
		if e.Bytes > maxExtent {
			maxExtent = e.Bytes
		}
	}
	cfProbe.Close()

	cf, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()),
		OpenOptions{CacheBytes: maxExtent + maxExtent/2})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	lazy := cf.Columns()[0].Col
	lazy.Parallelism = 1
	want, err := col.Sum()
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := lazy.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pass %d sum = %d, want %d", pass, got, want)
		}
	}
	st := cf.CacheStats()
	if st.BytesUsed > st.BytesBudget {
		t.Fatalf("cache over budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("three passes over a one-block cache evicted nothing: %+v", st)
	}
}

func TestOpenContainerFileMmap(t *testing.T) {
	col, src := encodeBlockedV3(t, 1<<13, 2048)
	var buf bytes.Buffer
	if err := WriteContainerV3(&buf, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.lwc")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenContainerFile(path, OpenOptions{Mmap: true, CacheBytes: DefaultBlockCacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if mmapSupported && !cf.Mapped() {
		t.Fatal("mmap requested and supported but not used")
	}
	got, err := cf.Columns()[0].Col.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], src[i])
		}
	}
	// Close is idempotent, and closing a column forwards to the
	// container.
	if err := cf.Columns()[0].Col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockReaderPayloads(t *testing.T) {
	col, _ := encodeBlockedV3(t, 1<<13, 2048)
	var buf bytes.Buffer
	if err := WriteContainerV3(&buf, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	lazy := cf.Columns()[0].Col
	br, ok := lazy.Source.(BlockReader)
	if !ok {
		t.Fatal("lazy source does not expose BlockReader")
	}
	if br.NumBlocks() != len(lazy.Blocks) {
		t.Fatalf("NumBlocks = %d, want %d", br.NumBlocks(), len(lazy.Blocks))
	}
	extents := cf.Extents(0)
	var scratch []byte
	for i := 0; i < br.NumBlocks(); i++ {
		payload, err := br.Payload(i, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(payload)) != extents[i].Bytes {
			t.Fatalf("block %d payload %d bytes, extent says %d", i, len(payload), extents[i].Bytes)
		}
		// The payload decodes standalone — the re-composition
		// property the lazy path depends on.
		f, consumed, err := DecodeForm(payload)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(payload) || f.N != lazy.Blocks[i].Count {
			t.Fatalf("block %d decodes to n=%d (%d consumed)", i, f.N, consumed)
		}
		scratch = payload[:0]
	}

	// The in-memory mirror behaves identically.
	mem := &MemBlockReader{}
	for i := 0; i < br.NumBlocks(); i++ {
		p, err := br.Payload(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		mem.Payloads = append(mem.Payloads, append([]byte(nil), p...))
	}
	if mem.NumBlocks() != br.NumBlocks() {
		t.Fatalf("mem reader has %d blocks", mem.NumBlocks())
	}
	p, err := mem.Payload(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(p)) != extents[0].Bytes {
		t.Fatalf("mem payload %d bytes", len(p))
	}
	if _, err := mem.Payload(99, nil); err == nil {
		t.Fatal("out-of-range payload accepted")
	}
}

// TestConcurrentQueriesUnderCachePressure hammers a lazily opened
// container from many goroutines with a cache small enough to evict
// constantly. This pins the ownership contract the cache relies on:
// an evicted payload buffer may still be mid-decode in a concurrent
// reader, so it must never be recycled into the fetch pool (caught
// by -race, and by corrupt decodes, if violated).
func TestConcurrentQueriesUnderCachePressure(t *testing.T) {
	src := make([]int64, 1<<13)
	state := uint64(7)
	for i := range src {
		state = state*6364136223846793005 + 1442695040888963407
		src[i] = int64(state >> 40)
	}
	col, err := blocked.Encode(src, blocked.EncodeOptions{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteContainerV3(&buf, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	want, err := col.Sum()
	if err != nil {
		t.Fatal(err)
	}
	// Budget ≈ two payloads: every scan evicts while others decode.
	cf, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()),
		OpenOptions{CacheBytes: 2 * int64(buf.Len()) / int64(col.NumBlocks())})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	lazy := cf.Columns()[0].Col

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				got, err := lazy.Sum()
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("worker %d iter %d: sum %d != %d", w, it, got, want)
					return
				}
				row := int64((w*2048 + it*131) % len(src))
				v, err := lazy.PointLookup(row)
				if err != nil {
					errs <- err
					return
				}
				if v != src[row] {
					errs <- fmt.Errorf("worker %d: lookup(%d) = %d, want %d", w, row, v, src[row])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
