package storage

import (
	"encoding/json"
	"fmt"
	"io"

	"lwcomp/internal/blocked"
)

// This file is the offline integrity verifier behind `lwc verify` and
// the background scrubber: an fsck for containers. It walks every
// block extent of every column, re-reads and CRC-checks each payload,
// decodes and decompresses it, and re-derives the block's [min, max]
// to compare against the index stats — catching both payload rot
// (CRC) and index rot that a CRC cannot see (self-consistent but
// wrong stats would silently turn block skipping into wrong answers).

// VerifyIssue is one verification finding: a block (or, with Block
// -1, the container as a whole) that failed a check.
type VerifyIssue struct {
	// Column names the affected column; empty for container-level
	// findings.
	Column string
	// Block is the affected block index, or -1 for container-level
	// findings (unopenable file, bad index).
	Block int
	// RowStart and RowCount delimit the affected row range
	// [RowStart, RowStart+RowCount); both are 0 for container-level
	// findings.
	RowStart int64
	// RowCount is the number of rows in the affected range.
	RowCount int
	// Err is the failure. Checksum and structural failures satisfy
	// errors.Is against ErrChecksum / ErrCorrupt.
	Err error
}

// String renders the issue the way `lwc verify` prints it.
func (v VerifyIssue) String() string {
	if v.Block < 0 {
		return fmt.Sprintf("container: %v", v.Err)
	}
	return fmt.Sprintf("column %q block %d (rows %d-%d): %v",
		v.Column, v.Block, v.RowStart, v.RowStart+int64(v.RowCount)-1, v.Err)
}

// MarshalJSON renders the issue for `lwc verify -json` and the
// scrubber: the error becomes a reason string, everything else keeps
// its numeric identity.
func (v VerifyIssue) MarshalJSON() ([]byte, error) {
	reason := ""
	if v.Err != nil {
		reason = v.Err.Error()
	}
	return json.Marshal(struct {
		Column   string `json:"column,omitempty"`
		Block    int    `json:"block"`
		RowStart int64  `json:"row_start"`
		RowCount int    `json:"row_count"`
		Reason   string `json:"reason"`
	}{v.Column, v.Block, v.RowStart, v.RowCount, reason})
}

// VerifyReport is the outcome of verifying one container.
type VerifyReport struct {
	// Path is the verified file; empty when the source was a reader.
	Path string `json:"path,omitempty"`
	// Columns and Blocks count what the walk covered.
	Columns int `json:"columns"`
	// Blocks is the number of blocks walked (tombstones included).
	Blocks int `json:"blocks"`
	// Issues lists every failed check, in column-then-block order. A
	// healthy container has none.
	Issues []VerifyIssue `json:"issues"`
	// Tombstones lists blocks the container itself declares lost —
	// known, persisted omissions from an earlier salvage repair. They
	// are reported for operators but are not failures: a tombstoned
	// container is in its intended (degraded) state and verifies OK.
	Tombstones []VerifyIssue `json:"tombstones,omitempty"`
}

// OK reports whether the container passed every check. Persisted
// tombstones do not fail verification; see Tombstones.
func (r *VerifyReport) OK() bool { return len(r.Issues) == 0 }

// VerifyOptions tunes a verification walk. The zero value matches
// `lwc verify`: direct uncached reads, no retry, no wrapper.
type VerifyOptions struct {
	// Retry re-issues transiently failed reads with capped backoff
	// when MaxRetries is positive — the scrubber's setting, so a
	// flaky-but-recoverable read does not condemn a healthy block.
	Retry RetryPolicy
	// WrapReader, when non-nil, decorates the reader before any byte
	// is read — the seam the scrubber uses for byte-rate throttling
	// and the fault-injection tests use for corruption injection.
	WrapReader func(ra io.ReaderAt) io.ReaderAt
}

// VerifyFile fsck-walks the container at path: every block payload is
// re-read, CRC-checked, decoded and decompressed, and its re-derived
// [min, max] compared against the block index. Integrity failures are
// collected into the report (the walk continues past them); only
// environmental failures — the file missing, transport-level I/O
// errors — return a non-nil error.
func VerifyFile(path string) (*VerifyReport, error) {
	return VerifyFileOpts(path, VerifyOptions{})
}

// VerifyFileOpts is VerifyFile with explicit options.
func VerifyFileOpts(path string, opts VerifyOptions) (*VerifyReport, error) {
	r := &VerifyReport{Path: path}
	// Uncached: verification must touch the bytes on disk, and the
	// walk reads every block exactly once anyway.
	cf, err := OpenContainerFile(path, OpenOptions{
		CacheBytes: -1,
		Retry:      opts.Retry,
		WrapReader: opts.WrapReader,
	})
	if err != nil {
		if blocked.IsPermanent(err) {
			r.Issues = append(r.Issues, VerifyIssue{Block: -1, Err: err})
			return r, nil
		}
		return nil, err
	}
	defer cf.Close()
	verifyWalk(cf, r)
	return r, nil
}

// VerifyReader fsck-walks a container served from ra — the pre-swap
// candidate gate salvage repair uses on in-memory bytes. Same
// semantics as VerifyFile: integrity failures land in the report,
// only environmental failures return an error.
func VerifyReader(ra io.ReaderAt, size int64, opts VerifyOptions) (*VerifyReport, error) {
	r := &VerifyReport{}
	cf, err := OpenContainer(ra, size, OpenOptions{
		CacheBytes: -1,
		Retry:      opts.Retry,
		WrapReader: opts.WrapReader,
	})
	if err != nil {
		if blocked.IsPermanent(err) {
			r.Issues = append(r.Issues, VerifyIssue{Block: -1, Err: err})
			return r, nil
		}
		return nil, err
	}
	defer cf.Close()
	verifyWalk(cf, r)
	return r, nil
}

// verifyWalk runs the per-block checks over an open container,
// appending findings to r.
func verifyWalk(cf *ContainerFile, r *VerifyReport) {
	var buf []int64
	for _, bc := range cf.Columns() {
		r.Columns++
		if err := bc.Col.Validate(); err != nil {
			r.Issues = append(r.Issues, VerifyIssue{Column: bc.Name, Block: -1, Err: err})
		}
		for i := range bc.Col.Blocks {
			r.Blocks++
			b := &bc.Col.Blocks[i]
			if b.Tombstone {
				// The container declares this range lost; that is its
				// intended degraded state, not a new finding.
				r.Tombstones = append(r.Tombstones, VerifyIssue{
					Column: bc.Name, Block: i, RowStart: b.Start, RowCount: b.Count,
					Err: fmt.Errorf("%w: %s", blocked.ErrTombstone, b.TombstoneReason),
				})
				continue
			}
			if cap(buf) < b.Count {
				buf = make([]int64, b.Count)
			}
			// DecompressBlock pulls the payload through the source:
			// CRC verification, form decode, and decompression in one
			// pass — exactly the path a query would take.
			if err := bc.Col.DecompressBlock(i, buf[:b.Count]); err != nil {
				r.Issues = append(r.Issues, VerifyIssue{
					Column: bc.Name, Block: i, RowStart: b.Start, RowCount: b.Count, Err: err,
				})
				continue
			}
			if !b.HasStats || b.Count == 0 {
				continue
			}
			lo, hi := buf[0], buf[0]
			for _, v := range buf[1:b.Count] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo != b.Min || hi != b.Max {
				r.Issues = append(r.Issues, VerifyIssue{
					Column: bc.Name, Block: i, RowStart: b.Start, RowCount: b.Count,
					Err: fmt.Errorf("%w: index stats [%d, %d] but data spans [%d, %d]",
						ErrCorrupt, b.Min, b.Max, lo, hi)})
			}
		}
	}
}
