package storage

import (
	"fmt"

	"lwcomp/internal/blocked"
)

// This file is the offline integrity verifier behind `lwc verify`: an
// fsck for containers. It walks every block extent of every column,
// re-reads and CRC-checks each payload, decodes and decompresses it,
// and re-derives the block's [min, max] to compare against the index
// stats — catching both payload rot (CRC) and index rot that a CRC
// cannot see (self-consistent but wrong stats would silently turn
// block skipping into wrong answers).

// VerifyIssue is one verification finding: a block (or, with Block
// -1, the container as a whole) that failed a check.
type VerifyIssue struct {
	// Column names the affected column; empty for container-level
	// findings.
	Column string
	// Block is the affected block index, or -1 for container-level
	// findings (unopenable file, bad index).
	Block int
	// Err is the failure. Checksum and structural failures satisfy
	// errors.Is against ErrChecksum / ErrCorrupt.
	Err error
}

// String renders the issue the way `lwc verify` prints it.
func (v VerifyIssue) String() string {
	if v.Block < 0 {
		return fmt.Sprintf("container: %v", v.Err)
	}
	return fmt.Sprintf("column %q block %d: %v", v.Column, v.Block, v.Err)
}

// VerifyReport is the outcome of verifying one container.
type VerifyReport struct {
	// Path is the verified file.
	Path string
	// Columns and Blocks count what the walk covered.
	Columns, Blocks int
	// Issues lists every failed check, in column-then-block order. A
	// healthy container has none.
	Issues []VerifyIssue
}

// OK reports whether the container passed every check.
func (r *VerifyReport) OK() bool { return len(r.Issues) == 0 }

// VerifyFile fsck-walks the container at path: every block payload is
// re-read, CRC-checked, decoded and decompressed, and its re-derived
// [min, max] compared against the block index. Integrity failures are
// collected into the report (the walk continues past them); only
// environmental failures — the file missing, transport-level I/O
// errors — return a non-nil error.
func VerifyFile(path string) (*VerifyReport, error) {
	r := &VerifyReport{Path: path}
	// Uncached: verification must touch the bytes on disk, and the
	// walk reads every block exactly once anyway.
	cf, err := OpenContainerFile(path, OpenOptions{CacheBytes: -1})
	if err != nil {
		if blocked.IsPermanent(err) {
			r.Issues = append(r.Issues, VerifyIssue{Block: -1, Err: err})
			return r, nil
		}
		return nil, err
	}
	defer cf.Close()

	var buf []int64
	for _, bc := range cf.Columns() {
		r.Columns++
		if err := bc.Col.Validate(); err != nil {
			r.Issues = append(r.Issues, VerifyIssue{Column: bc.Name, Block: -1, Err: err})
		}
		for i := range bc.Col.Blocks {
			r.Blocks++
			b := &bc.Col.Blocks[i]
			if cap(buf) < b.Count {
				buf = make([]int64, b.Count)
			}
			// DecompressBlock pulls the payload through the source:
			// CRC verification, form decode, and decompression in one
			// pass — exactly the path a query would take.
			if err := bc.Col.DecompressBlock(i, buf[:b.Count]); err != nil {
				r.Issues = append(r.Issues, VerifyIssue{Column: bc.Name, Block: i, Err: err})
				continue
			}
			if !b.HasStats || b.Count == 0 {
				continue
			}
			lo, hi := buf[0], buf[0]
			for _, v := range buf[1:b.Count] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo != b.Min || hi != b.Max {
				r.Issues = append(r.Issues, VerifyIssue{Column: bc.Name, Block: i,
					Err: fmt.Errorf("%w: index stats [%d, %d] but data spans [%d, %d]",
						ErrCorrupt, b.Min, b.Max, lo, hi)})
			}
		}
	}
	return r, nil
}
