// Package storage serializes compressed Form trees to bytes and
// container files, and opens container files back — eagerly or
// lazily.
//
// The form encoding mirrors the paper's columnar view directly: a
// form is a scheme tag, scalar parameters, named child forms, and (at
// leaves) a physical payload. Nothing else — no block headers, no
// padding — matching the paper's "pure columns, stripped bare of
// implementation-specific adornments". All integers are
// little-endian; lengths and parameters are LEB128 varints (zigzagged
// where signed).
//
// Three container generations wrap that encoding:
//
//   - v1 ("LWC1"): one form per column, whole-body CRC-32C. Written
//     by WriteContainer; kept readable forever.
//   - v2 ("LWC2"): blocked columns with an interleaved block index
//     ([min, max] stats per block), still under one whole-body CRC —
//     so reading anything means reading everything.
//   - v3 ("LWC3"): the lazily openable generation. A self-contained
//     index at the front carries each block's stats, payload extent
//     and per-block CRC-32C; payloads follow. OpenContainer reads
//     only the prefix and index, then serves block payloads on
//     demand, verifying each block's checksum at first touch.
//
// The lazy path is built from three pieces: a byte source (plain
// io.ReaderAt with pooled scratch buffers, or an mmap window when
// requested and available), the BlockReader seam that hands out raw
// per-block payloads, and a byte-budgeted LRU cache of verified
// payloads shared by all queries on a ContainerFile. Cache insertion
// takes buffer ownership permanently — cached slices travel to
// concurrent readers, so evicted buffers are left to the garbage
// collector rather than recycled. DESIGN.md §1.8
// states the invariants; the short version: the index alone decides
// truncation at open time, payload corruption surfaces as ErrChecksum
// at first touch of the affected block only, and a block is never
// resident unless a query touched it or the cache still holds it.
package storage
