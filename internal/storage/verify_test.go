package storage

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lwcomp/internal/blocked"
)

// writeV3File writes one encoded column to a v3 container on disk.
func writeV3File(t *testing.T, vals []int64, blockSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "col.lwc")
	if err := os.WriteFile(path, buildV3(t, vals, blockSize), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// payloadOffset returns the absolute file offset of column ci, block
// bi's payload: prefix + index + relative extent.
func payloadOffset(t *testing.T, path string, ci, bi int) int64 {
	t.Helper()
	cf, err := OpenContainerFile(path, OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	exts := cf.Extents(ci)
	if exts == nil || bi >= len(exts) {
		t.Fatalf("no extent for column %d block %d", ci, bi)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	indexLen := binary.LittleEndian.Uint64(data[6:14])
	return int64(v3PrefixLen) + int64(indexLen) + exts[bi].Offset
}

// flipByteAt XORs one byte of the file in place.
func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func verifyVals(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 37) % 1000)
	}
	return vals
}

func TestVerifyCleanContainer(t *testing.T) {
	path := writeV3File(t, verifyVals(1024), 128)
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean container failed verification: %v", rep.Issues)
	}
	if rep.Columns != 1 || rep.Blocks != 8 {
		t.Fatalf("walked %d columns, %d blocks; want 1 and 8", rep.Columns, rep.Blocks)
	}
}

func TestFaultVerifyFlagsCorruptPayload(t *testing.T) {
	path := writeV3File(t, verifyVals(1024), 128)
	flipByteAt(t, path, payloadOffset(t, path, 0, 3))
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verification passed a container with a corrupted payload")
	}
	found := false
	for _, issue := range rep.Issues {
		if issue.Block == 3 && errors.Is(issue.Err, ErrChecksum) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no checksum issue on block 3: %v", rep.Issues)
	}
	// The walk continues past the bad block: all blocks visited.
	if rep.Blocks != 8 {
		t.Fatalf("walk stopped early: %d blocks", rep.Blocks)
	}
}

func TestFaultVerifyFlagsLyingStats(t *testing.T) {
	// A container whose index stats disagree with the data it decodes
	// to — self-consistent CRCs, so only the re-derivation catches it.
	col, err := blocked.Encode(verifyVals(512), blocked.EncodeOptions{BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	col.Blocks[1].Min -= 5 // the lie: claims values below what exists
	path := filepath.Join(t.TempDir(), "lying.lwc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteContainerV3(f, []BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, issue := range rep.Issues {
		if issue.Block == 1 && errors.Is(issue.Err, ErrCorrupt) {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats lie not flagged: %v", rep.Issues)
	}
}

func TestVerifyUnopenableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.lwc")
	if err := os.WriteFile(path, []byte("not a container at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Issues) != 1 || rep.Issues[0].Block != -1 {
		t.Fatalf("want one container-level issue, got %v", rep.Issues)
	}
	// A missing file is environmental, not an integrity finding.
	if _, err := VerifyFile(filepath.Join(t.TempDir(), "missing.lwc")); err == nil {
		t.Fatal("missing file did not error")
	}
}
