package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/blocked"
)

// Container format v2 ("LWC2") carries blocked columns: alongside
// each column's forms it stores the block index — block size, and
// per block the element count, the [min, max] stats and the encoded
// form. v1 ("LWC1") containers carry exactly one form per column and
// remain readable; ReadAnyContainer dispatches on the magic.
//
// v2 layout (all little-endian, varints LEB128, signed zigzagged):
//
//	magic "LWC2"
//	version u16 (= 2)
//	ncols   varint
//	per column:
//	  name       u8-len + bytes
//	  blockSize  varint (0 = single unpartitioned block)
//	  n          varint (total rows)
//	  nblocks    varint
//	  per block:
//	    count    varint
//	    hasStats u8 (0|1)
//	    min,max  zigzag varints (present only when hasStats = 1)
//	    formLen  varint
//	    form     bytes (EncodeForm)
//	crc32c of everything after the magic

// MagicV2 identifies v2 (blocked) container files.
var MagicV2 = [4]byte{'L', 'W', 'C', '2'}

// VersionV2 is the blocked container format version.
const VersionV2 uint16 = 2

// BlockedColumn pairs a name with a blocked column inside a v2
// container.
type BlockedColumn struct {
	Name string
	Col  *blocked.Column
}

// WriteContainerV2 writes named blocked columns as one v2 container.
func WriteContainerV2(w io.Writer, cols []BlockedColumn) error {
	var body []byte
	body = binary.LittleEndian.AppendUint16(body, VersionV2)
	body = binary.AppendUvarint(body, uint64(len(cols)))
	for _, c := range cols {
		if len(c.Name) == 0 || len(c.Name) > maxNameLen {
			return fmt.Errorf("%w: column name %q", ErrCorrupt, c.Name)
		}
		if c.Col == nil {
			return fmt.Errorf("%w: column %q has no data", ErrCorrupt, c.Name)
		}
		if err := c.Col.Validate(); err != nil {
			return err
		}
		body = append(body, byte(len(c.Name)))
		body = append(body, c.Name...)
		body = binary.AppendUvarint(body, uint64(c.Col.BlockSize))
		body = binary.AppendUvarint(body, uint64(c.Col.N))
		body = binary.AppendUvarint(body, uint64(len(c.Col.Blocks)))
		for i := range c.Col.Blocks {
			b := &c.Col.Blocks[i]
			body = binary.AppendUvarint(body, uint64(b.Count))
			if b.HasStats {
				body = append(body, 1)
				body = binary.AppendUvarint(body, bitpack.Zigzag(b.Min))
				body = binary.AppendUvarint(body, bitpack.Zigzag(b.Max))
			} else {
				body = append(body, 0)
			}
			enc, err := EncodeForm(b.Form)
			if err != nil {
				return err
			}
			body = binary.AppendUvarint(body, uint64(len(enc)))
			body = append(body, enc...)
		}
	}
	if _, err := w.Write(MagicV2[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, castagnoli))
	_, err := w.Write(crc[:])
	return err
}

// ReadContainerV2 reads a v2 container written by WriteContainerV2.
func ReadContainerV2(r io.Reader) ([]BlockedColumn, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeContainerV2(data)
}

func decodeContainerV2(data []byte) ([]BlockedColumn, error) {
	if len(data) < len(MagicV2)+2+4 {
		return nil, fmt.Errorf("%w: container too short", ErrCorrupt)
	}
	for i := range MagicV2 {
		if data[i] != MagicV2[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	body := data[len(MagicV2) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, ErrChecksum
	}
	d := &decoder{data: body}
	verLo, err := d.u8()
	if err != nil {
		return nil, err
	}
	verHi, err := d.u8()
	if err != nil {
		return nil, err
	}
	if v := uint16(verLo) | uint16(verHi)<<8; v != VersionV2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	ncols, err := d.count(2)
	if err != nil {
		return nil, err
	}
	cols := make([]BlockedColumn, 0, ncols)
	for ci := 0; ci < ncols; ci++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		blockSize, err := d.count(0)
		if err != nil {
			return nil, err
		}
		n, err := d.count(0)
		if err != nil {
			return nil, err
		}
		nblocks, err := d.count(2)
		if err != nil {
			return nil, err
		}
		col := &blocked.Column{N: n, BlockSize: blockSize, Blocks: make([]blocked.Block, 0, nblocks)}
		var start int64
		for bi := 0; bi < nblocks; bi++ {
			count, err := d.count(0)
			if err != nil {
				return nil, err
			}
			hasStats, err := d.u8()
			if err != nil {
				return nil, err
			}
			if hasStats > 1 {
				return nil, fmt.Errorf("%w: bad stats flag %d", ErrCorrupt, hasStats)
			}
			blk := blocked.Block{Start: start, Count: count, HasStats: hasStats == 1}
			if blk.HasStats {
				zzMin, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				zzMax, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				blk.Min = bitpack.Unzigzag(zzMin)
				blk.Max = bitpack.Unzigzag(zzMax)
				if blk.Min > blk.Max {
					return nil, fmt.Errorf("%w: block stats min %d > max %d", ErrCorrupt, blk.Min, blk.Max)
				}
			}
			formLen, err := d.count(1)
			if err != nil {
				return nil, err
			}
			if d.pos+formLen > len(body) {
				return nil, fmt.Errorf("%w: truncated block form in column %q", ErrCorrupt, name)
			}
			f, consumed, err := DecodeForm(body[d.pos : d.pos+formLen])
			if err != nil {
				return nil, fmt.Errorf("column %q block %d: %w", name, bi, err)
			}
			if consumed != formLen {
				return nil, fmt.Errorf("%w: column %q block %d has %d trailing bytes",
					ErrCorrupt, name, bi, formLen-consumed)
			}
			d.pos += formLen
			if f.N != count {
				return nil, fmt.Errorf("%w: column %q block %d form length %d, index says %d",
					ErrCorrupt, name, bi, f.N, count)
			}
			blk.Form = f
			col.Blocks = append(col.Blocks, blk)
			start += int64(count)
		}
		if start != int64(n) {
			return nil, fmt.Errorf("%w: column %q blocks cover %d rows, header says %d",
				ErrCorrupt, name, start, n)
		}
		cols = append(cols, BlockedColumn{Name: name, Col: col})
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes in container", ErrCorrupt, len(body)-d.pos)
	}
	return cols, nil
}

// ReadAnyContainer reads any container generation eagerly: v3 and v2
// natively, v1 by adopting each single form as an unpartitioned
// blocked column (no stats, so queries delegate rather than skip).
// Use OpenContainer / OpenContainerFile to open a v3 container
// without reading its payloads.
func ReadAnyContainer(r io.Reader) ([]BlockedColumn, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 && string(data[:4]) == string(MagicV3[:]) {
		return decodeContainerV3(data)
	}
	if len(data) >= 4 && string(data[:4]) == string(MagicV2[:]) {
		return decodeContainerV2(data)
	}
	cols, err := readContainerBytes(data)
	if err != nil {
		return nil, err
	}
	out := make([]BlockedColumn, 0, len(cols))
	for _, c := range cols {
		bc, err := blocked.FromForm(c.Form, false)
		if err != nil {
			return nil, err
		}
		out = append(out, BlockedColumn{Name: c.Name, Col: bc})
	}
	return out, nil
}
