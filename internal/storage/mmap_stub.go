//go:build !unix

package storage

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can memory-map
// container files; openers fall back to ReadAt when it is false.
const mmapSupported = false

// mmapFile is unavailable on this platform; callers fall back to the
// ReadAt source.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

// munmap matches the unix signature; it is never reached because
// mmapFile always fails here.
func munmap(data []byte) error { return nil }
