package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// Magic identifies lwcomp container files.
var Magic = [4]byte{'L', 'W', 'C', '1'}

// Version is the current container format version.
const Version uint16 = 1

// Payload kind tags.
const (
	payloadNone   = 0
	payloadLeaf   = 1
	payloadPacked = 2
	payloadBytes  = 3
)

// ErrCorrupt is returned for any structurally invalid encoding. It is
// a permanent error: retrying the read cannot fix it (see
// blocked.IsPermanent).
var ErrCorrupt error = &permanentSentinel{msg: "storage: corrupt encoding"}

// ErrChecksum is returned when a container's CRC does not match. Like
// ErrCorrupt it is permanent and never retried.
var ErrChecksum error = &permanentSentinel{msg: "storage: checksum mismatch"}

// permanentSentinel is an error value carrying the permanent-failure
// marker the blocked layer classifies with (via errors.As), so the
// retry loop never re-reads bytes whose content — not transport — is
// the problem. Identity-based errors.Is comparisons against the
// sentinels above keep working: each sentinel is a unique pointer.
type permanentSentinel struct{ msg string }

func (e *permanentSentinel) Error() string { return e.msg }

// PermanentStorageError marks the sentinel permanent for
// blocked.IsPermanent.
func (e *permanentSentinel) PermanentStorageError() bool { return true }

// ensure the marker stays in sync with the blocked layer's detection.
var _ interface{ PermanentStorageError() bool } = (*permanentSentinel)(nil)

// maxNameLen bounds scheme/child/param name lengths.
const maxNameLen = 255

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeForm serializes a form tree.
func EncodeForm(f *core.Form) ([]byte, error) {
	var buf []byte
	return appendForm(buf, f)
}

func appendForm(buf []byte, f *core.Form) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil form", ErrCorrupt)
	}
	if len(f.Scheme) == 0 || len(f.Scheme) > maxNameLen {
		return nil, fmt.Errorf("%w: scheme name length %d", ErrCorrupt, len(f.Scheme))
	}
	buf = append(buf, byte(len(f.Scheme)))
	buf = append(buf, f.Scheme...)
	if f.N < 0 {
		return nil, fmt.Errorf("%w: negative length %d", ErrCorrupt, f.N)
	}
	buf = binary.AppendUvarint(buf, uint64(f.N))

	// Parameters, sorted for deterministic bytes.
	keys := f.Params.Keys()
	if len(keys) > 255 {
		return nil, fmt.Errorf("%w: %d parameters", ErrCorrupt, len(keys))
	}
	buf = append(buf, byte(len(keys)))
	for _, k := range keys {
		if len(k) == 0 || len(k) > maxNameLen {
			return nil, fmt.Errorf("%w: parameter name %q", ErrCorrupt, k)
		}
		buf = append(buf, byte(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, bitpack.Zigzag(f.Params[k]))
	}

	// Children, sorted by name.
	names := f.ChildNames()
	if len(names) > 255 {
		return nil, fmt.Errorf("%w: %d children", ErrCorrupt, len(names))
	}
	buf = append(buf, byte(len(names)))
	for _, name := range names {
		if len(name) == 0 || len(name) > maxNameLen {
			return nil, fmt.Errorf("%w: child name %q", ErrCorrupt, name)
		}
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		var err error
		buf, err = appendForm(buf, f.Children[name])
		if err != nil {
			return nil, err
		}
	}

	// Payload.
	arms := 0
	if f.Leaf != nil {
		arms++
	}
	if f.Packed != nil {
		arms++
	}
	if f.Bytes != nil {
		arms++
	}
	if arms > 1 {
		return nil, fmt.Errorf("%w: form %q mixes payload arms", ErrCorrupt, f.Scheme)
	}
	switch {
	case f.Leaf != nil:
		buf = append(buf, payloadLeaf)
		buf = binary.AppendUvarint(buf, uint64(len(f.Leaf)))
		for _, v := range f.Leaf {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case f.Packed != nil:
		buf = append(buf, payloadPacked)
		buf = binary.AppendUvarint(buf, uint64(len(f.Packed)))
		for _, v := range f.Packed {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	case f.Bytes != nil:
		buf = append(buf, payloadBytes)
		buf = binary.AppendUvarint(buf, uint64(len(f.Bytes)))
		buf = append(buf, f.Bytes...)
	default:
		buf = append(buf, payloadNone)
	}
	return buf, nil
}

// DecodeForm deserializes a form tree, returning the form and the
// number of bytes consumed.
func DecodeForm(data []byte) (*core.Form, int, error) {
	d := &decoder{data: data}
	f, err := d.form(0)
	if err != nil {
		return nil, 0, err
	}
	return f, d.pos, nil
}

// maxFormDepth bounds recursion when decoding untrusted data.
const maxFormDepth = 64

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrCorrupt, d.pos)
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) name() (string, error) {
	n, err := d.u8()
	if err != nil {
		return "", err
	}
	if int(n) == 0 {
		return "", fmt.Errorf("%w: empty name at byte %d", ErrCorrupt, d.pos)
	}
	if d.pos+int(n) > len(d.data) {
		return "", fmt.Errorf("%w: truncated name at byte %d", ErrCorrupt, d.pos)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at byte %d", ErrCorrupt, d.pos)
	}
	d.pos += n
	return v, nil
}

// count reads a varint length and sanity-checks it against the
// remaining input so corrupt lengths cannot trigger huge allocations.
func (d *decoder) count(perItemBytes int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(math.MaxInt32) {
		return 0, fmt.Errorf("%w: count %d too large", ErrCorrupt, v)
	}
	remaining := len(d.data) - d.pos
	if perItemBytes > 0 && v > uint64(remaining/perItemBytes)+1 {
		return 0, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCorrupt, v, remaining)
	}
	return int(v), nil
}

func (d *decoder) form(depth int) (*core.Form, error) {
	if depth > maxFormDepth {
		return nil, fmt.Errorf("%w: form nesting deeper than %d", ErrCorrupt, maxFormDepth)
	}
	schemeName, err := d.name()
	if err != nil {
		return nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: form length %d too large", ErrCorrupt, n)
	}
	f := &core.Form{Scheme: schemeName, N: int(n)}

	nparams, err := d.u8()
	if err != nil {
		return nil, err
	}
	if nparams > 0 {
		f.Params = make(core.Params, nparams)
		for i := 0; i < int(nparams); i++ {
			k, err := d.name()
			if err != nil {
				return nil, err
			}
			zz, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if _, dup := f.Params[k]; dup {
				return nil, fmt.Errorf("%w: duplicate parameter %q", ErrCorrupt, k)
			}
			f.Params[k] = bitpack.Unzigzag(zz)
		}
	}

	nchildren, err := d.u8()
	if err != nil {
		return nil, err
	}
	if nchildren > 0 {
		f.Children = make(map[string]*core.Form, nchildren)
		prev := ""
		for i := 0; i < int(nchildren); i++ {
			k, err := d.name()
			if err != nil {
				return nil, err
			}
			if k <= prev && i > 0 {
				return nil, fmt.Errorf("%w: child names out of order (%q after %q)", ErrCorrupt, k, prev)
			}
			prev = k
			child, err := d.form(depth + 1)
			if err != nil {
				return nil, err
			}
			f.Children[k] = child
		}
	}

	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch kind {
	case payloadNone:
	case payloadLeaf:
		cnt, err := d.count(8)
		if err != nil {
			return nil, err
		}
		if d.pos+cnt*8 > len(d.data) {
			return nil, fmt.Errorf("%w: truncated leaf payload", ErrCorrupt)
		}
		f.Leaf = make([]int64, cnt)
		for i := range f.Leaf {
			f.Leaf[i] = int64(binary.LittleEndian.Uint64(d.data[d.pos:]))
			d.pos += 8
		}
	case payloadPacked:
		cnt, err := d.count(8)
		if err != nil {
			return nil, err
		}
		if d.pos+cnt*8 > len(d.data) {
			return nil, fmt.Errorf("%w: truncated packed payload", ErrCorrupt)
		}
		f.Packed = make([]uint64, cnt)
		for i := range f.Packed {
			f.Packed[i] = binary.LittleEndian.Uint64(d.data[d.pos:])
			d.pos += 8
		}
	case payloadBytes:
		cnt, err := d.count(1)
		if err != nil {
			return nil, err
		}
		if d.pos+cnt > len(d.data) {
			return nil, fmt.Errorf("%w: truncated byte payload", ErrCorrupt)
		}
		f.Bytes = append([]byte{}, d.data[d.pos:d.pos+cnt]...)
		d.pos += cnt
	default:
		return nil, fmt.Errorf("%w: unknown payload kind %d", ErrCorrupt, kind)
	}
	return f, nil
}

// Column pairs a name with its compressed form inside a container.
type Column struct {
	Name string
	Form *core.Form
}

// WriteContainer writes named compressed columns as one container:
// magic, version, column count, per-column name + encoded form, and a
// CRC-32C of everything after the magic.
func WriteContainer(w io.Writer, cols []Column) error {
	var body []byte
	body = binary.LittleEndian.AppendUint16(body, Version)
	body = binary.AppendUvarint(body, uint64(len(cols)))
	for _, c := range cols {
		if len(c.Name) == 0 || len(c.Name) > maxNameLen {
			return fmt.Errorf("%w: column name %q", ErrCorrupt, c.Name)
		}
		body = append(body, byte(len(c.Name)))
		body = append(body, c.Name...)
		enc, err := EncodeForm(c.Form)
		if err != nil {
			return err
		}
		body = binary.AppendUvarint(body, uint64(len(enc)))
		body = append(body, enc...)
	}
	if _, err := w.Write(Magic[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, castagnoli))
	_, err := w.Write(crc[:])
	return err
}

// ReadContainer reads a container written by WriteContainer. Columns
// come back in file order.
func ReadContainer(r io.Reader) ([]Column, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return readContainerBytes(data)
}

// readContainerBytes decodes a v1 container from memory (shared by
// ReadContainer and the v2 reader's fallback path).
func readContainerBytes(data []byte) ([]Column, error) {
	if len(data) < len(Magic)+2+4 {
		return nil, fmt.Errorf("%w: container too short", ErrCorrupt)
	}
	for i := range Magic {
		if data[i] != Magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	body := data[len(Magic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, ErrChecksum
	}
	d := &decoder{data: body}
	verLo, err := d.u8()
	if err != nil {
		return nil, err
	}
	verHi, err := d.u8()
	if err != nil {
		return nil, err
	}
	if v := uint16(verLo) | uint16(verHi)<<8; v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	ncols, err := d.count(2)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, 0, ncols)
	for i := 0; i < ncols; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		formLen, err := d.count(1)
		if err != nil {
			return nil, err
		}
		if d.pos+formLen > len(body) {
			return nil, fmt.Errorf("%w: truncated column %q", ErrCorrupt, name)
		}
		f, consumed, err := DecodeForm(body[d.pos : d.pos+formLen])
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", name, err)
		}
		if consumed != formLen {
			return nil, fmt.Errorf("%w: column %q has %d trailing bytes", ErrCorrupt, name, formLen-consumed)
		}
		d.pos += formLen
		cols = append(cols, Column{Name: name, Form: f})
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes in container", ErrCorrupt, len(body)-d.pos)
	}
	return cols, nil
}

// EncodedSize returns the exact serialized size in bytes of a form —
// the honest number the experiments report alongside the analytic
// PayloadBits estimate.
func EncodedSize(f *core.Form) (int, error) {
	enc, err := EncodeForm(f)
	if err != nil {
		return 0, err
	}
	return len(enc), nil
}

// SortColumns orders columns by name (for deterministic containers
// built from maps).
func SortColumns(cols []Column) {
	sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
}
