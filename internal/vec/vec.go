package vec

import (
	"errors"
	"fmt"
)

// ErrLengthMismatch is returned by binary element-wise operators when
// the two input columns differ in length.
var ErrLengthMismatch = errors.New("vec: input columns have different lengths")

// ErrIndexOutOfRange is returned by Gather and Scatter when an index
// column addresses an element outside the data column.
var ErrIndexOutOfRange = errors.New("vec: index out of range")

// ErrDivisionByZero is returned by element-wise division when a zero
// divisor is encountered.
var ErrDivisionByZero = errors.New("vec: division by zero")

// ErrEmptyInput is returned by operators that require at least one
// element (e.g. PopBack) when given an empty column.
var ErrEmptyInput = errors.New("vec: empty input column")

// ErrNegativeLength is returned by constructors asked to build a
// column of negative length.
var ErrNegativeLength = errors.New("vec: negative column length")

// Constant returns a column of n copies of v.
//
// It is the Constant(v, n) operator of Algorithms 1 and 2 in the
// paper.
func Constant(v int64, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeLength, n)
	}
	out := make([]int64, n)
	if v != 0 {
		for i := range out {
			out[i] = v
		}
	}
	return out, nil
}

// ConstantInto fills dst with v and returns it.
func ConstantInto(dst []int64, v int64) []int64 {
	for i := range dst {
		dst[i] = v
	}
	return dst
}

// Iota returns the column [start, start+1, ..., start+n-1].
//
// Algorithm 2 of the paper builds this column as
// PrefixSum(Constant(1, n)); Iota is the fused equivalent and the
// executor uses it when it recognizes that idiom.
func Iota(start int64, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeLength, n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out, nil
}

// PrefixSumInclusive computes the inclusive prefix sum of src:
// out[i] = src[0] + ... + src[i].
//
// This is the PrefixSum operator of Algorithm 1 (where it integrates
// run lengths into run end positions).
func PrefixSumInclusive(src []int64) []int64 {
	out := make([]int64, len(src))
	var acc int64
	for i, v := range src {
		acc += v
		out[i] = acc
	}
	return out
}

// PrefixSumInclusiveInto writes the inclusive prefix sum of src into
// dst, which must have the same length as src. src and dst may alias.
func PrefixSumInclusiveInto(dst, src []int64) ([]int64, error) {
	if len(dst) != len(src) {
		return nil, fmt.Errorf("%w: dst %d, src %d", ErrLengthMismatch, len(dst), len(src))
	}
	var acc int64
	for i, v := range src {
		acc += v
		dst[i] = acc
	}
	return dst, nil
}

// PrefixSumExclusive computes the exclusive prefix sum of src:
// out[0] = 0 and out[i] = src[0] + ... + src[i-1].
//
// The composition PopBack ∘ PrefixSumInclusive used by Algorithm 1 to
// derive run start positions equals PrefixSumExclusive up to the
// missing total; the executor offers both.
func PrefixSumExclusive(src []int64) []int64 {
	out := make([]int64, len(src))
	var acc int64
	for i, v := range src {
		out[i] = acc
		acc += v
	}
	return out
}

// Delta computes out[0] = src[0] and out[i] = src[i] - src[i-1]. It is
// the inverse of PrefixSumInclusive and the kernel of the DELTA
// scheme.
func Delta(src []int64) []int64 {
	out := make([]int64, len(src))
	var prev int64
	for i, v := range src {
		out[i] = v - prev
		prev = v
	}
	return out
}

// DeltaInto writes the consecutive differences of src into dst, which
// must have the same length. src and dst may alias only if they are
// the same slice; the loop is written to tolerate exact aliasing.
func DeltaInto(dst, src []int64) ([]int64, error) {
	if len(dst) != len(src) {
		return nil, fmt.Errorf("%w: dst %d, src %d", ErrLengthMismatch, len(dst), len(src))
	}
	var prev int64
	for i, v := range src {
		dst[i] = v - prev
		prev = v
	}
	return dst, nil
}

// PopBack returns src without its final element. It is the PopBack
// operator of Algorithm 1. The returned slice shares storage with src.
func PopBack(src []int64) ([]int64, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("vec: PopBack: %w", ErrEmptyInput)
	}
	return src[:len(src)-1], nil
}

// Last returns the final element of src; Algorithm 1 reads the total
// element count n this way from the inclusive prefix sum of lengths.
func Last(src []int64) (int64, error) {
	if len(src) == 0 {
		return 0, fmt.Errorf("vec: Last: %w", ErrEmptyInput)
	}
	return src[len(src)-1], nil
}

// Gather returns out[i] = data[indices[i]] for every i.
//
// It is the Gather operator of Algorithms 1 and 2.
func Gather(data, indices []int64) ([]int64, error) {
	out := make([]int64, len(indices))
	return out, gatherInto(out, data, indices)
}

// GatherInto writes data[indices[i]] into dst[i]. dst must have the
// same length as indices.
func GatherInto(dst, data, indices []int64) ([]int64, error) {
	if len(dst) != len(indices) {
		return nil, fmt.Errorf("%w: dst %d, indices %d", ErrLengthMismatch, len(dst), len(indices))
	}
	return dst, gatherInto(dst, data, indices)
}

func gatherInto(dst, data, indices []int64) error {
	n := int64(len(data))
	for i, ix := range indices {
		if ix < 0 || ix >= n {
			return fmt.Errorf("%w: gather index %d at position %d, data length %d", ErrIndexOutOfRange, ix, i, n)
		}
		dst[i] = data[ix]
	}
	return nil
}

// Scatter writes values[i] to out[positions[i]] over a fresh
// zero-initialized column of length n. Positions outside [0, n) are an
// error. If positions repeat, the later write wins — matching the
// sequential semantics assumed by Algorithm 1.
//
// It is the Scatter operator of Algorithm 1 (scattering ones to run
// start positions).
func Scatter(values, positions []int64, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeLength, n)
	}
	if len(values) != len(positions) {
		return nil, fmt.Errorf("%w: values %d, positions %d", ErrLengthMismatch, len(values), len(positions))
	}
	out := make([]int64, n)
	if err := scatterInto(out, values, positions); err != nil {
		return nil, err
	}
	return out, nil
}

// ScatterInto scatters values into dst at positions without zeroing
// dst first, enabling scatter-over-base patterns (e.g. patching).
func ScatterInto(dst, values, positions []int64) ([]int64, error) {
	if len(values) != len(positions) {
		return nil, fmt.Errorf("%w: values %d, positions %d", ErrLengthMismatch, len(values), len(positions))
	}
	if err := scatterInto(dst, values, positions); err != nil {
		return nil, err
	}
	return dst, nil
}

func scatterInto(dst, values, positions []int64) error {
	n := int64(len(dst))
	for i, p := range positions {
		if p < 0 || p >= n {
			return fmt.Errorf("%w: scatter position %d at element %d, destination length %d", ErrIndexOutOfRange, p, i, n)
		}
		dst[p] = values[i]
	}
	return nil
}

// BinaryOp identifies an element-wise binary operator.
type BinaryOp uint8

// Supported element-wise binary operators. Div is the integer division
// used by Algorithm 2 to map element positions to segment indices.
const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
	Mod
	Min
	Max
)

// String returns the operator's conventional symbol.
func (op BinaryOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("BinaryOp(%d)", uint8(op))
	}
}

// Valid reports whether op is one of the defined operators.
func (op BinaryOp) Valid() bool { return op <= Max }

// Elementwise applies op pairwise to columns a and b, which must have
// equal lengths. It is the Elementwise operator of Algorithm 2.
func Elementwise(op BinaryOp, a, b []int64) ([]int64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: a %d, b %d", ErrLengthMismatch, len(a), len(b))
	}
	out := make([]int64, len(a))
	return out, elementwiseInto(out, op, a, b)
}

// ElementwiseInto applies op pairwise into dst. All three slices must
// have equal lengths; dst may alias a or b.
func ElementwiseInto(dst []int64, op BinaryOp, a, b []int64) ([]int64, error) {
	if len(a) != len(b) || len(dst) != len(a) {
		return nil, fmt.Errorf("%w: dst %d, a %d, b %d", ErrLengthMismatch, len(dst), len(a), len(b))
	}
	return dst, elementwiseInto(dst, op, a, b)
}

func elementwiseInto(dst []int64, op BinaryOp, a, b []int64) error {
	switch op {
	case Add:
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
	case Sub:
		for i := range dst {
			dst[i] = a[i] - b[i]
		}
	case Mul:
		for i := range dst {
			dst[i] = a[i] * b[i]
		}
	case Div:
		for i := range dst {
			if b[i] == 0 {
				return fmt.Errorf("%w: at position %d", ErrDivisionByZero, i)
			}
			dst[i] = a[i] / b[i]
		}
	case Mod:
		for i := range dst {
			if b[i] == 0 {
				return fmt.Errorf("%w: at position %d", ErrDivisionByZero, i)
			}
			dst[i] = a[i] % b[i]
		}
	case Min:
		for i := range dst {
			if a[i] < b[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
	case Max:
		for i := range dst {
			if a[i] > b[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
	default:
		return fmt.Errorf("vec: unknown binary op %d", op)
	}
	return nil
}

// ElementwiseScalar applies op with a constant right operand. The
// executor uses it to fuse Elementwise(op, col, Constant(c, n)).
func ElementwiseScalar(op BinaryOp, a []int64, c int64) ([]int64, error) {
	out := make([]int64, len(a))
	return out, elementwiseScalarInto(out, op, a, c)
}

// ElementwiseScalarInto is the into-destination form of
// ElementwiseScalar; dst may alias a.
func ElementwiseScalarInto(dst []int64, op BinaryOp, a []int64, c int64) ([]int64, error) {
	if len(dst) != len(a) {
		return nil, fmt.Errorf("%w: dst %d, a %d", ErrLengthMismatch, len(dst), len(a))
	}
	return dst, elementwiseScalarInto(dst, op, a, c)
}

func elementwiseScalarInto(dst []int64, op BinaryOp, a []int64, c int64) error {
	switch op {
	case Add:
		for i := range dst {
			dst[i] = a[i] + c
		}
	case Sub:
		for i := range dst {
			dst[i] = a[i] - c
		}
	case Mul:
		for i := range dst {
			dst[i] = a[i] * c
		}
	case Div:
		if c == 0 {
			return ErrDivisionByZero
		}
		for i := range dst {
			dst[i] = a[i] / c
		}
	case Mod:
		if c == 0 {
			return ErrDivisionByZero
		}
		for i := range dst {
			dst[i] = a[i] % c
		}
	case Min:
		for i := range dst {
			if a[i] < c {
				dst[i] = a[i]
			} else {
				dst[i] = c
			}
		}
	case Max:
		for i := range dst {
			if a[i] > c {
				dst[i] = a[i]
			} else {
				dst[i] = c
			}
		}
	default:
		return fmt.Errorf("vec: unknown binary op %d", op)
	}
	return nil
}
