// Package vec provides the columnar operator substrate on which the
// lwcomp compression framework is built.
//
// The central observation of Rozenberg (ICDE 2018) is that the
// decompression of lightweight compression schemes can be expressed
// with "very few" of the straightforward columnar operations that
// already appear in analytic query execution plans: prefix sums,
// gathers, scatters, constant columns and element-wise arithmetic.
// This package implements exactly that operator vocabulary, plus the
// handful of derived operators (run expansion, selections, compaction)
// a small columnar engine needs.
//
// All operators work on logical columns represented as []int64 — the
// "pure columns, stripped bare of implementation-specific adornments"
// of the paper. Physical narrowing is the concern of package bitpack.
//
// Every operator comes in two forms: an allocating convenience form
// and an into-destination form that reuses caller-provided storage so
// that hot decompression loops stay allocation-free.
package vec
