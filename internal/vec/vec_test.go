package vec

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	got, err := Constant(7, 4)
	if err != nil {
		t.Fatalf("Constant: %v", err)
	}
	if !Equal(got, []int64{7, 7, 7, 7}) {
		t.Fatalf("Constant(7,4) = %v", got)
	}
	if got, err = Constant(0, 0); err != nil || len(got) != 0 {
		t.Fatalf("Constant(0,0) = %v, %v", got, err)
	}
	if _, err = Constant(1, -1); !errors.Is(err, ErrNegativeLength) {
		t.Fatalf("Constant(1,-1) err = %v, want ErrNegativeLength", err)
	}
}

func TestIota(t *testing.T) {
	got, err := Iota(5, 3)
	if err != nil {
		t.Fatalf("Iota: %v", err)
	}
	if !Equal(got, []int64{5, 6, 7}) {
		t.Fatalf("Iota(5,3) = %v", got)
	}
	if _, err = Iota(0, -2); !errors.Is(err, ErrNegativeLength) {
		t.Fatalf("Iota negative err = %v", err)
	}
}

func TestPrefixSums(t *testing.T) {
	src := []int64{3, 0, 2, -1, 4}
	inc := PrefixSumInclusive(src)
	if !Equal(inc, []int64{3, 3, 5, 4, 8}) {
		t.Fatalf("inclusive = %v", inc)
	}
	exc := PrefixSumExclusive(src)
	if !Equal(exc, []int64{0, 3, 3, 5, 4}) {
		t.Fatalf("exclusive = %v", exc)
	}
	if got := PrefixSumInclusive(nil); len(got) != 0 {
		t.Fatalf("inclusive(nil) = %v", got)
	}
}

func TestDeltaInvertsPrefixSum(t *testing.T) {
	check := func(src []int64) bool {
		return Equal(PrefixSumInclusive(Delta(src)), src) &&
			Equal(Delta(PrefixSumInclusive(src)), src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumInclusiveIntoAliasing(t *testing.T) {
	src := []int64{1, 2, 3, 4}
	got, err := PrefixSumInclusiveInto(src, src)
	if err != nil {
		t.Fatalf("into: %v", err)
	}
	if !Equal(got, []int64{1, 3, 6, 10}) {
		t.Fatalf("aliased prefix sum = %v", got)
	}
	if _, err := PrefixSumInclusiveInto(make([]int64, 3), src); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch err = %v", err)
	}
}

func TestPopBackAndLast(t *testing.T) {
	src := []int64{1, 2, 3}
	got, err := PopBack(src)
	if err != nil || !Equal(got, []int64{1, 2}) {
		t.Fatalf("PopBack = %v, %v", got, err)
	}
	last, err := Last(src)
	if err != nil || last != 3 {
		t.Fatalf("Last = %d, %v", last, err)
	}
	if _, err = PopBack(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("PopBack(nil) err = %v", err)
	}
	if _, err = Last(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("Last(nil) err = %v", err)
	}
}

func TestGather(t *testing.T) {
	data := []int64{10, 20, 30}
	got, err := Gather(data, []int64{2, 0, 0, 1})
	if err != nil || !Equal(got, []int64{30, 10, 10, 20}) {
		t.Fatalf("Gather = %v, %v", got, err)
	}
	if _, err = Gather(data, []int64{3}); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
	if _, err = Gather(data, []int64{-1}); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("negative index err = %v", err)
	}
	if got, err = Gather(nil, []int64{}); err != nil || len(got) != 0 {
		t.Fatalf("empty gather = %v, %v", got, err)
	}
}

func TestScatter(t *testing.T) {
	got, err := Scatter([]int64{5, 6}, []int64{3, 1}, 5)
	if err != nil || !Equal(got, []int64{0, 6, 0, 5, 0}) {
		t.Fatalf("Scatter = %v, %v", got, err)
	}
	if _, err = Scatter([]int64{1}, []int64{5}, 5); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("scatter oob err = %v", err)
	}
	if _, err = Scatter([]int64{1}, []int64{0, 1}, 5); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("scatter mismatch err = %v", err)
	}
	if _, err = Scatter(nil, nil, -1); !errors.Is(err, ErrNegativeLength) {
		t.Fatalf("scatter negative err = %v", err)
	}
	// Later writes win on duplicate positions.
	got, err = Scatter([]int64{1, 2}, []int64{0, 0}, 1)
	if err != nil || got[0] != 2 {
		t.Fatalf("duplicate scatter = %v, %v", got, err)
	}
}

func TestScatterIntoPreservesBase(t *testing.T) {
	base := []int64{9, 9, 9}
	got, err := ScatterInto(base, []int64{1}, []int64{1})
	if err != nil || !Equal(got, []int64{9, 1, 9}) {
		t.Fatalf("ScatterInto = %v, %v", got, err)
	}
}

func TestElementwise(t *testing.T) {
	a := []int64{6, 7, 8}
	b := []int64{3, 2, 8}
	cases := []struct {
		op   BinaryOp
		want []int64
	}{
		{Add, []int64{9, 9, 16}},
		{Sub, []int64{3, 5, 0}},
		{Mul, []int64{18, 14, 64}},
		{Div, []int64{2, 3, 1}},
		{Mod, []int64{0, 1, 0}},
		{Min, []int64{3, 2, 8}},
		{Max, []int64{6, 7, 8}},
	}
	for _, tc := range cases {
		got, err := Elementwise(tc.op, a, b)
		if err != nil || !Equal(got, tc.want) {
			t.Errorf("Elementwise(%s) = %v, %v; want %v", tc.op, got, err, tc.want)
		}
	}
	if _, err := Elementwise(Div, []int64{1}, []int64{0}); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("div by zero err = %v", err)
	}
	if _, err := Elementwise(Add, a, []int64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("mismatch err = %v", err)
	}
	if _, err := Elementwise(BinaryOp(200), a, b); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestElementwiseScalarAgainstElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]int64, 100)
	for i := range a {
		a[i] = rng.Int63n(1000) - 500
	}
	for _, op := range []BinaryOp{Add, Sub, Mul, Div, Mod, Min, Max} {
		c := int64(7)
		cc, err := Constant(c, len(a))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Elementwise(op, a, cc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ElementwiseScalar(op, a, c)
		if err != nil || !Equal(got, want) {
			t.Errorf("ElementwiseScalar(%s) mismatch", op)
		}
	}
	if _, err := ElementwiseScalar(Div, a, 0); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("scalar div by zero err = %v", err)
	}
}

func TestRunExpand(t *testing.T) {
	got, err := RunExpand([]int64{4, 9}, []int64{3, 2})
	if err != nil || !Equal(got, []int64{4, 4, 4, 9, 9}) {
		t.Fatalf("RunExpand = %v, %v", got, err)
	}
	// Zero-length runs contribute nothing.
	got, err = RunExpand([]int64{1, 2, 3}, []int64{0, 2, 0})
	if err != nil || !Equal(got, []int64{2, 2}) {
		t.Fatalf("RunExpand zero runs = %v, %v", got, err)
	}
	if _, err = RunExpand([]int64{1}, []int64{-1}); err == nil {
		t.Fatal("negative run length accepted")
	}
	if _, err = RunExpand([]int64{1}, []int64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("mismatch err = %v", err)
	}
}

func TestRunExpandInto(t *testing.T) {
	dst := make([]int64, 5)
	got, err := RunExpandInto(dst, []int64{4, 9}, []int64{3, 2})
	if err != nil || !Equal(got, []int64{4, 4, 4, 9, 9}) {
		t.Fatalf("RunExpandInto = %v, %v", got, err)
	}
	if _, err = RunExpandInto(make([]int64, 4), []int64{4, 9}, []int64{3, 2}); err == nil {
		t.Fatal("short destination accepted")
	}
	if _, err = RunExpandInto(make([]int64, 6), []int64{4, 9}, []int64{3, 2}); err == nil {
		t.Fatal("long destination accepted")
	}
}

func TestExpandByBoundaries(t *testing.T) {
	got, err := ExpandByBoundaries([]int64{4, 9}, []int64{3, 5})
	if err != nil || !Equal(got, []int64{4, 4, 4, 9, 9}) {
		t.Fatalf("ExpandByBoundaries = %v, %v", got, err)
	}
	got, err = ExpandByBoundaries([]int64{}, []int64{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty = %v, %v", got, err)
	}
	if _, err = ExpandByBoundaries([]int64{1, 2}, []int64{3, 2}); err == nil {
		t.Fatal("decreasing boundaries accepted")
	}
	if _, err = ExpandByBoundaries([]int64{1}, []int64{-1}); err == nil {
		t.Fatal("negative total accepted")
	}
}

func TestReplicateSegments(t *testing.T) {
	got, err := ReplicateSegments([]int64{7, 8}, 3, 5)
	if err != nil || !Equal(got, []int64{7, 7, 7, 8, 8}) {
		t.Fatalf("ReplicateSegments = %v, %v", got, err)
	}
	if _, err = ReplicateSegments([]int64{7}, 3, 5); err == nil {
		t.Fatal("insufficient refs accepted")
	}
	if _, err = ReplicateSegments([]int64{7}, 0, 5); err == nil {
		t.Fatal("zero segment length accepted")
	}
	got, err = ReplicateSegments([]int64{}, 4, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty replicate = %v, %v", got, err)
	}
}

func TestSelections(t *testing.T) {
	src := []int64{5, -3, 8, 0, 5}
	idx := SelectRange(src, 0, 5)
	if !Equal(idx, []int64{0, 3, 4}) {
		t.Fatalf("SelectRange = %v", idx)
	}
	if c := CountRange(src, 0, 5); c != 3 {
		t.Fatalf("CountRange = %d", c)
	}
	idx = Select(src, func(v int64) bool { return v < 0 })
	if !Equal(idx, []int64{1}) {
		t.Fatalf("Select = %v", idx)
	}
	vals, err := Compact(src, idx)
	if err != nil || !Equal(vals, []int64{-3}) {
		t.Fatalf("Compact = %v, %v", vals, err)
	}
}

func TestAggregates(t *testing.T) {
	if s := Sum([]int64{1, -2, 3}); s != 2 {
		t.Fatalf("Sum = %d", s)
	}
	if s := Sum(nil); s != 0 {
		t.Fatalf("Sum(nil) = %d", s)
	}
	dp, err := DotProduct([]int64{2, 3}, []int64{10, 100})
	if err != nil || dp != 320 {
		t.Fatalf("DotProduct = %d, %v", dp, err)
	}
	if _, err = DotProduct([]int64{1}, []int64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("dot mismatch err = %v", err)
	}
	lo, hi, err := MinMax([]int64{3, -1, 7})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %d,%d,%v", lo, hi, err)
	}
	if _, _, err = MinMax(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("MinMax(nil) err = %v", err)
	}
}

func TestBounds(t *testing.T) {
	sorted := []int64{2, 4, 4, 9}
	if i := LowerBound(sorted, 4); i != 1 {
		t.Fatalf("LowerBound = %d", i)
	}
	if i := UpperBound(sorted, 4); i != 3 {
		t.Fatalf("UpperBound = %d", i)
	}
	if i := LowerBound(sorted, 100); i != 4 {
		t.Fatalf("LowerBound past end = %d", i)
	}
}

func TestRunExpandMatchesExpandByBoundaries(t *testing.T) {
	check := func(raw []uint8) bool {
		lengths := make([]int64, len(raw))
		values := make([]int64, len(raw))
		for i, r := range raw {
			lengths[i] = int64(r % 7)
			values[i] = int64(i)
		}
		a, err := RunExpand(values, lengths)
		if err != nil {
			return false
		}
		b, err := ExpandByBoundaries(values, PrefixSumInclusive(lengths))
		if err != nil {
			return false
		}
		return Equal(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	src := []int64{1, 2}
	c := Clone(src)
	c[0] = 99
	if src[0] != 1 {
		t.Fatal("Clone aliases source")
	}
}
