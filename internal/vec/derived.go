package vec

import (
	"fmt"
	"sort"
)

// RunExpand materializes run-length encoded data: values[i] is
// repeated lengths[i] times, in order. It is the fused equivalent of
// the Scatter/PrefixSum/Gather tail of Algorithm 1 and is what a
// practical engine executes once the plan has been recognized.
//
// Negative lengths are an error; zero lengths are permitted and
// contribute no output.
func RunExpand(values, lengths []int64) ([]int64, error) {
	if len(values) != len(lengths) {
		return nil, fmt.Errorf("%w: values %d, lengths %d", ErrLengthMismatch, len(values), len(lengths))
	}
	var n int64
	for i, l := range lengths {
		if l < 0 {
			return nil, fmt.Errorf("vec: RunExpand: negative run length %d at run %d", l, i)
		}
		n += l
	}
	out := make([]int64, n)
	pos := 0
	for i, l := range lengths {
		v := values[i]
		for j := int64(0); j < l; j++ {
			out[pos] = v
			pos++
		}
	}
	return out, nil
}

// RunExpandInto is the into-destination form of RunExpand; dst must
// have length equal to the sum of lengths.
func RunExpandInto(dst, values, lengths []int64) ([]int64, error) {
	if len(values) != len(lengths) {
		return nil, fmt.Errorf("%w: values %d, lengths %d", ErrLengthMismatch, len(values), len(lengths))
	}
	pos := 0
	for i, l := range lengths {
		if l < 0 {
			return nil, fmt.Errorf("vec: RunExpandInto: negative run length %d at run %d", l, i)
		}
		if pos+int(l) > len(dst) {
			return nil, fmt.Errorf("%w: runs total more than destination length %d", ErrLengthMismatch, len(dst))
		}
		v := values[i]
		for j := int64(0); j < l; j++ {
			dst[pos] = v
			pos++
		}
	}
	if pos != len(dst) {
		return nil, fmt.Errorf("%w: runs total %d, destination length %d", ErrLengthMismatch, pos, len(dst))
	}
	return dst, nil
}

// ExpandByBoundaries materializes run data given exclusive run end
// positions (the run_positions column of the RPE scheme): run i covers
// output elements [bounds[i-1], bounds[i]). bounds must be
// non-decreasing and its last element is the total output length.
func ExpandByBoundaries(values, bounds []int64) ([]int64, error) {
	if len(values) != len(bounds) {
		return nil, fmt.Errorf("%w: values %d, bounds %d", ErrLengthMismatch, len(values), len(bounds))
	}
	if len(bounds) == 0 {
		return []int64{}, nil
	}
	total := bounds[len(bounds)-1]
	if total < 0 {
		return nil, fmt.Errorf("vec: ExpandByBoundaries: negative total length %d", total)
	}
	out := make([]int64, total)
	var start int64
	for i, end := range bounds {
		if end < start {
			return nil, fmt.Errorf("vec: ExpandByBoundaries: decreasing boundary %d after %d at run %d", end, start, i)
		}
		if end > total {
			return nil, fmt.Errorf("vec: ExpandByBoundaries: boundary %d at run %d exceeds total length %d", end, i, total)
		}
		v := values[i]
		for j := start; j < end; j++ {
			out[j] = v
		}
		start = end
	}
	return out, nil
}

// ExpandByBoundariesInto is the into-destination form of
// ExpandByBoundaries; dst must have length equal to the final
// boundary (or 0 for no runs).
func ExpandByBoundariesInto(dst, values, bounds []int64) ([]int64, error) {
	if len(values) != len(bounds) {
		return nil, fmt.Errorf("%w: values %d, bounds %d", ErrLengthMismatch, len(values), len(bounds))
	}
	total := int64(0)
	if len(bounds) > 0 {
		total = bounds[len(bounds)-1]
	}
	if total != int64(len(dst)) {
		return nil, fmt.Errorf("%w: boundaries total %d, destination length %d", ErrLengthMismatch, total, len(dst))
	}
	var start int64
	for i, end := range bounds {
		if end < start {
			return nil, fmt.Errorf("vec: ExpandByBoundariesInto: decreasing boundary %d after %d at run %d", end, start, i)
		}
		v := values[i]
		for j := start; j < end; j++ {
			dst[j] = v
		}
		start = end
	}
	return dst, nil
}

// ReplicateSegments returns out[i] = refs[i/segLen] for i in [0, n).
// It is the Gather(refs, id ÷ ℓ) idiom of Algorithm 2 — the evaluation
// of a fixed-segment-length step function — fused into one pass.
func ReplicateSegments(refs []int64, segLen, n int) ([]int64, error) {
	if segLen <= 0 {
		return nil, fmt.Errorf("vec: ReplicateSegments: non-positive segment length %d", segLen)
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: %d", ErrNegativeLength, n)
	}
	need := (n + segLen - 1) / segLen
	if len(refs) < need {
		return nil, fmt.Errorf("vec: ReplicateSegments: %d refs cover %d elements, need %d", len(refs), len(refs)*segLen, n)
	}
	out := make([]int64, n)
	for s := 0; s < need; s++ {
		v := refs[s]
		end := (s + 1) * segLen
		if end > n {
			end = n
		}
		for i := s * segLen; i < end; i++ {
			out[i] = v
		}
	}
	return out, nil
}

// Select returns the positions i at which keep(src[i]) is true, as an
// index column suitable for Gather.
func Select(src []int64, keep func(int64) bool) []int64 {
	out := make([]int64, 0, len(src)/4+1)
	for i, v := range src {
		if keep(v) {
			out = append(out, int64(i))
		}
	}
	return out
}

// SelectRange returns the positions i with lo <= src[i] <= hi. It is
// the selection operator of the paper's range-query discussion.
func SelectRange(src []int64, lo, hi int64) []int64 {
	out := make([]int64, 0, len(src)/4+1)
	for i, v := range src {
		if v >= lo && v <= hi {
			out = append(out, int64(i))
		}
	}
	return out
}

// CountRange returns how many elements of src fall in [lo, hi].
func CountRange(src []int64, lo, hi int64) int64 {
	var c int64
	for _, v := range src {
		if v >= lo && v <= hi {
			c++
		}
	}
	return c
}

// Sum returns the sum of src. Overflow wraps, matching Go integer
// semantics; callers that need exactness bound their inputs.
func Sum(src []int64) int64 {
	var acc int64
	for _, v := range src {
		acc += v
	}
	return acc
}

// DotProduct returns Σ a[i]*b[i]; it is the fused kernel for
// aggregating RLE data without decompression (Σ lengths·values).
func DotProduct(a, b []int64) (int64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: a %d, b %d", ErrLengthMismatch, len(a), len(b))
	}
	var acc int64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc, nil
}

// MinMax returns the minimum and maximum of src. It requires a
// non-empty input.
func MinMax(src []int64) (minV, maxV int64, err error) {
	if len(src) == 0 {
		return 0, 0, fmt.Errorf("vec: MinMax: %w", ErrEmptyInput)
	}
	minV, maxV = src[0], src[0]
	for _, v := range src[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, nil
}

// Compact returns src[indices[i]] for each i — identical to Gather but
// named for its role of compacting a column through a selection
// vector.
func Compact(src, indices []int64) ([]int64, error) {
	return Gather(src, indices)
}

// LowerBound returns the smallest index i in the sorted column src
// with src[i] >= v, or len(src) if no such element exists. RPE's
// positional lookups use it to map row numbers to runs.
func LowerBound(src []int64, v int64) int {
	return sort.Search(len(src), func(i int) bool { return src[i] >= v })
}

// UpperBound returns the smallest index i in the sorted column src
// with src[i] > v, or len(src).
func UpperBound(src []int64, v int64) int {
	return sort.Search(len(src), func(i int) bool { return src[i] > v })
}

// Equal reports whether two columns have identical lengths and
// contents.
func Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of src that shares no storage with it.
func Clone(src []int64) []int64 {
	out := make([]int64, len(src))
	copy(out, src)
	return out
}
