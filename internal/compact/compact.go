package compact

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
)

// DefaultMinGainBytes is the rewrite threshold used when Options does
// not set one: a rewrite must win at least one 4 KiB page, so the
// compactor never churns a directory for byte-level noise.
const DefaultMinGainBytes int64 = 4096

// DefaultSmallBytes is the merge-eligibility bound used when Options
// does not set one: single-column containers under 1 MiB are "small"
// and worth coalescing into one multi-column container.
const DefaultSmallBytes int64 = 1 << 20

// Options configures a Compactor. The zero value of every field means
// "use the default".
type Options struct {
	// MinGainBytes is the absolute rewrite threshold: a container is
	// rewritten only when the candidate saves at least this many
	// bytes. 0 means DefaultMinGainBytes; negative means any positive
	// win qualifies.
	MinGainBytes int64
	// MinGainFraction, when positive, additionally requires the win
	// to be at least this fraction of the container's current size —
	// the knob that keeps the compactor from rewriting a gigabyte to
	// save a kilobyte.
	MinGainFraction float64
	// TrialK selects the re-analysis effort: 0 runs the exhaustive
	// search (every candidate trial-compressed — ground truth), a
	// positive value runs the size-biased pruned search, trialing
	// only the top-K estimate-ranked candidates per block.
	TrialK int
	// Parallelism bounds concurrent block re-encodes per container;
	// <= 0 means GOMAXPROCS.
	Parallelism int
	// MergeSmall lets CompactDir coalesce groups of small same-table
	// single-column containers (`<table>.<column>.lwc`) into one
	// multi-column `<table>.lwc` before compacting.
	MergeSmall bool
	// SmallBytes bounds merge eligibility: only containers under this
	// size coalesce. 0 means DefaultSmallBytes.
	SmallBytes int64
}

// minGain resolves the absolute threshold knob.
func (o Options) minGain() int64 {
	if o.MinGainBytes == 0 {
		return DefaultMinGainBytes
	}
	if o.MinGainBytes < 0 {
		return 1
	}
	return o.MinGainBytes
}

// threshold returns the byte win a container of oldSize bytes must
// clear to be rewritten — the compaction threshold contract.
func (o Options) threshold(oldSize int64) int64 {
	min := o.minGain()
	if frac := int64(o.MinGainFraction * float64(oldSize)); frac > min {
		min = frac
	}
	return min
}

// smallBytes resolves the merge-eligibility bound.
func (o Options) smallBytes() int64 {
	if o.SmallBytes <= 0 {
		return DefaultSmallBytes
	}
	return o.SmallBytes
}

// Action is what the compactor did with one container.
type Action string

const (
	// ActionRewritten: the candidate cleared the threshold, verified
	// clean, and was swapped in atomically.
	ActionRewritten Action = "rewritten"
	// ActionSkipped: the candidate's win was under the threshold; the
	// file was not touched.
	ActionSkipped Action = "skipped"
	// ActionFailed: the container could not be read, re-encoded or
	// verified; the old generation was kept untouched.
	ActionFailed Action = "failed"
	// ActionMerged: several small single-column containers were
	// coalesced into this multi-column container.
	ActionMerged Action = "merged"
)

// Result reports one container's compaction outcome.
type Result struct {
	// Path is the container the outcome applies to (for a merge, the
	// coalesced output).
	Path string
	// Action is the outcome.
	Action Action
	// BytesBefore is the container's size before (for a merge, the
	// summed size of the source parts).
	BytesBefore int64
	// BytesAfter is the container's size after the operation; equal
	// to BytesBefore when nothing was written.
	BytesAfter int64
	// CandidateBytes is the re-encoded candidate's size, whether or
	// not it was swapped in (0 when the candidate was never built).
	CandidateBytes int64
	// Generation is the compactor's generation stamp of a successful
	// swap: strictly increasing across rewrites and merges, 0 when
	// nothing was written.
	Generation uint64
	// CPUSeconds is the wall-clock time this container's re-analysis,
	// verification and rewrite cost.
	CPUSeconds float64
	// Err is the failure behind ActionFailed.
	Err error
	// MergedFrom lists the source containers behind ActionMerged.
	MergedFrom []string
}

// Gain is the byte win the operation realized (0 unless rewritten or
// merged).
func (r Result) Gain() int64 {
	if r.Action != ActionRewritten && r.Action != ActionMerged {
		return 0
	}
	return r.BytesBefore - r.BytesAfter
}

// Report aggregates a directory pass.
type Report struct {
	// Results holds one entry per container visited, in pass order
	// (merges first, then the compaction walk).
	Results []Result
}

// Counts tallies the report's outcomes by action.
func (r *Report) Counts() (rewritten, skipped, failed, merged int) {
	for _, res := range r.Results {
		switch res.Action {
		case ActionRewritten:
			rewritten++
		case ActionSkipped:
			skipped++
		case ActionFailed:
			failed++
		case ActionMerged:
			merged++
		}
	}
	return
}

// BytesReclaimed sums the realized byte wins.
func (r *Report) BytesReclaimed() int64 {
	var total int64
	for _, res := range r.Results {
		total += res.Gain()
	}
	return total
}

// CPUSeconds sums the per-container costs.
func (r *Report) CPUSeconds() float64 {
	var total float64
	for _, res := range r.Results {
		total += res.CPUSeconds
	}
	return total
}

// Counters is a snapshot of a Compactor's lifetime tallies — the
// numbers the query server's /metrics compaction section reports.
type Counters struct {
	// Scanned counts containers examined (opened and re-analyzed).
	Scanned int64
	// Rewritten, Skipped and Failed count Scanned's outcomes.
	Rewritten int64
	// Skipped counts containers whose win missed the threshold.
	Skipped int64
	// Failed counts containers kept on their old generation after a
	// read, encode or verification failure.
	Failed int64
	// Merged counts coalesced multi-column containers written.
	Merged int64
	// BytesReclaimed sums the realized byte wins.
	BytesReclaimed int64
	// CPUSeconds sums the wall-clock compaction cost.
	CPUSeconds float64
}

// Compactor rewrites containers toward their exhaustive-search size.
// It is safe for concurrent use; the generation stamp and the
// counters are shared across all of its passes.
type Compactor struct {
	opt Options

	gen            atomic.Uint64
	scanned        atomic.Int64
	rewritten      atomic.Int64
	skipped        atomic.Int64
	failed         atomic.Int64
	merged         atomic.Int64
	bytesReclaimed atomic.Int64
	cpuNanos       atomic.Int64
}

// New builds a Compactor over opt.
func New(opt Options) *Compactor { return &Compactor{opt: opt} }

// Generation returns the stamp of the newest successful swap — 0
// before the first one.
func (c *Compactor) Generation() uint64 { return c.gen.Load() }

// Counters snapshots the compactor's lifetime tallies.
func (c *Compactor) Counters() Counters {
	return Counters{
		Scanned:        c.scanned.Load(),
		Rewritten:      c.rewritten.Load(),
		Skipped:        c.skipped.Load(),
		Failed:         c.failed.Load(),
		Merged:         c.merged.Load(),
		BytesReclaimed: c.bytesReclaimed.Load(),
		CPUSeconds:     float64(c.cpuNanos.Load()) / 1e9,
	}
}

// testMutateCandidate, when non-nil, corrupts the candidate container
// bytes before the pre-swap verification — the test seam proving that
// a failed verification keeps the old generation untouched.
var testMutateCandidate func([]byte)

// CompactFile re-analyzes one container and swaps in the smaller
// generation when the win clears the threshold. Integrity failures —
// an unreadable block, a candidate that does not verify — come back
// as an ActionFailed Result with a nil error and leave the old
// generation byte-for-byte intact; only environmental failures (the
// file missing, the rename failing) return a non-nil error.
func (c *Compactor) CompactFile(path string) (res Result, err error) {
	start := time.Now()
	res = Result{Path: path}
	// Named result: the deferred stamp must reach the caller's copy.
	defer func() {
		res.CPUSeconds = time.Since(start).Seconds()
		c.cpuNanos.Add(time.Since(start).Nanoseconds())
	}()

	st, err := os.Stat(path)
	if err != nil {
		return res, err
	}
	res.BytesBefore, res.BytesAfter = st.Size(), st.Size()
	c.scanned.Add(1)

	fail := func(err error) (Result, error) {
		res.Action, res.Err = ActionFailed, err
		c.failed.Add(1)
		return res, nil
	}

	names, data, blockSizes, err := readContainer(path)
	if err != nil {
		if errors.Is(err, errTombstoned) {
			// A tombstoned container cannot be re-encoded — the lost
			// rows are not there to re-encode. It stays as-is until a
			// future repair (or operator action) retires it.
			res.Action = ActionSkipped
			return res, nil
		}
		if blocked.IsPermanent(err) {
			// A container we cannot prove we preserved is never
			// rewritten; leave it for `lwc verify` to diagnose.
			return fail(err)
		}
		return res, err
	}

	// Re-analyze every block at the configured effort. The encode is
	// deterministic, so a container already at its best size yields an
	// identical candidate and skips below.
	cols := make([]storage.BlockedColumn, len(names))
	for i := range names {
		enc, err := blocked.Encode(data[i], blocked.EncodeOptions{
			BlockSize:   blockSizes[i],
			TrialK:      c.opt.TrialK,
			Exhaustive:  c.opt.TrialK == 0,
			Parallelism: c.opt.Parallelism,
		})
		if err != nil {
			return fail(fmt.Errorf("re-encoding column %q: %w", names[i], err))
		}
		cols[i] = storage.BlockedColumn{Name: names[i], Col: enc}
	}
	var buf bytes.Buffer
	if err := storage.WriteContainerV3(&buf, cols); err != nil {
		return fail(fmt.Errorf("serializing candidate: %w", err))
	}
	res.CandidateBytes = int64(buf.Len())

	gain := res.BytesBefore - res.CandidateBytes
	if gain < c.opt.threshold(res.BytesBefore) {
		res.Action = ActionSkipped
		c.skipped.Add(1)
		return res, nil
	}

	if testMutateCandidate != nil {
		testMutateCandidate(buf.Bytes())
	}
	// `lwc verify` semantics plus value equality, before the swap:
	// every candidate block re-read through the CRC path, decoded,
	// stats re-derived against the index, and the decompressed values
	// compared against what the old generation held. Any mismatch
	// keeps the old generation.
	if err := verifyCandidate(buf.Bytes(), names, data); err != nil {
		return fail(fmt.Errorf("candidate failed pre-swap verification: %w", err))
	}

	// The generation swap: temp + fsync + rename in the container's
	// directory. Readers holding the old generation's descriptor
	// finish on the retired inode; every open after the rename sees
	// the compacted generation.
	if err := storage.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return res, err
	}
	res.Action = ActionRewritten
	res.BytesAfter = res.CandidateBytes
	res.Generation = c.gen.Add(1)
	c.rewritten.Add(1)
	c.bytesReclaimed.Add(gain)
	return res, nil
}

// CompactDir merges (when enabled) and then compacts every *.lwc
// container under dir. Per-container integrity failures land in the
// report as ActionFailed results; a non-nil error means the pass
// itself could not proceed (directory unreadable, rename failed).
func (c *Compactor) CompactDir(dir string) (*Report, error) {
	rep := &Report{}
	if c.opt.MergeSmall {
		merged, err := c.MergeDir(dir)
		if err != nil {
			return rep, err
		}
		rep.Results = append(rep.Results, merged...)
	}
	paths, err := ListContainers(dir)
	if err != nil {
		return rep, err
	}
	for _, p := range paths {
		r, err := c.CompactFile(p)
		if err != nil {
			return rep, err
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// ListContainers returns dir's *.lwc container paths, sorted.
func ListContainers(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lwc") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	return paths, nil
}

// errTombstoned marks containers carrying tombstoned blocks: their
// lost rows cannot be re-encoded, so compaction skips them rather
// than failing them.
var errTombstoned = errors.New("compact: container has tombstoned blocks")

// readContainer decompresses every column of the container at path:
// the names, the raw values, and each column's encode-time block size
// (what a faithful re-encode must preserve).
func readContainer(path string) (names []string, data [][]int64, blockSizes []int, err error) {
	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		return nil, nil, nil, err
	}
	defer cf.Close()
	for _, bc := range cf.Columns() {
		for i := range bc.Col.Blocks {
			if bc.Col.Blocks[i].Tombstone {
				return nil, nil, nil, fmt.Errorf("column %q block %d: %w", bc.Name, i, errTombstoned)
			}
		}
		raw := make([]int64, bc.Col.N)
		if err := bc.Col.DecompressInto(raw); err != nil {
			return nil, nil, nil, fmt.Errorf("column %q: %w", bc.Name, err)
		}
		names = append(names, bc.Name)
		data = append(data, raw)
		blockSizes = append(blockSizes, bc.Col.BlockSize)
	}
	return names, data, blockSizes, nil
}

// verifyCandidate fsck-walks a candidate container held in memory:
// structure, per-block CRC + decode (DecompressBlock pulls every
// payload through the checksum path), index stats re-derived from the
// decoded values, and the values themselves compared against want.
// It is the abort-before-swap gate — nothing it rejects ever reaches
// the filesystem.
func verifyCandidate(candidate []byte, names []string, want [][]int64) error {
	cf, err := storage.OpenContainer(bytes.NewReader(candidate), int64(len(candidate)),
		storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		return err
	}
	defer cf.Close()
	cols := cf.Columns()
	if len(cols) != len(names) {
		return fmt.Errorf("%w: candidate has %d column(s), want %d", storage.ErrCorrupt, len(cols), len(names))
	}
	var buf []int64
	for ci, bc := range cols {
		if bc.Name != names[ci] {
			return fmt.Errorf("%w: candidate column %d is %q, want %q", storage.ErrCorrupt, ci, bc.Name, names[ci])
		}
		if err := bc.Col.Validate(); err != nil {
			return fmt.Errorf("column %q: %w", bc.Name, err)
		}
		if bc.Col.N != len(want[ci]) {
			return fmt.Errorf("%w: candidate column %q holds %d row(s), want %d",
				storage.ErrCorrupt, bc.Name, bc.Col.N, len(want[ci]))
		}
		for i := range bc.Col.Blocks {
			b := &bc.Col.Blocks[i]
			if cap(buf) < b.Count {
				buf = make([]int64, b.Count)
			}
			if err := bc.Col.DecompressBlock(i, buf[:b.Count]); err != nil {
				return fmt.Errorf("column %q block %d: %w", bc.Name, i, err)
			}
			ref := want[ci][b.Start : b.Start+int64(b.Count)]
			for j, v := range buf[:b.Count] {
				if v != ref[j] {
					return fmt.Errorf("%w: column %q block %d row %d decodes to %d, want %d",
						storage.ErrCorrupt, bc.Name, i, b.Start+int64(j), v, ref[j])
				}
			}
			if b.Count == 0 {
				continue
			}
			lo, hi := minMax(buf[:b.Count])
			if !b.HasStats || lo != b.Min || hi != b.Max {
				return fmt.Errorf("%w: column %q block %d index stats [%d, %d], data spans [%d, %d]",
					storage.ErrCorrupt, bc.Name, i, b.Min, b.Max, lo, hi)
			}
		}
	}
	return nil
}

// minMax returns the extremes of a non-empty slice.
func minMax(vs []int64) (lo, hi int64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
