package compact

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

// TestSwapUnderConcurrentReads is the generation-swap contract, run
// under the race detector in CI: readers that opened the old
// generation finish on the retired inode with correct answers while
// swaps land, and every open after a swap sees the new generation.
func TestSwapUnderConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dates.lwc")
	data := workload.OrderShipDates(40000, 64, 730120, 7)
	cols := map[string][]int64{"d": data}
	var wantSum int64
	for _, v := range data {
		wantSum += v
	}
	writeCheap(t, path, 4096, cols)
	cheap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// One long-lived handle opened on the first (cheap) generation: it
	// must keep answering across every swap below, from the retired
	// inode its descriptor pins.
	retired, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer retired.Close()

	const (
		readers = 4
		rounds  = 8
	)
	stop := make(chan struct{})
	errs := make(chan error, readers*64)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A fresh open each iteration: before, during or after a
				// swap, whatever generation the open lands on must answer
				// exactly.
				cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
				if err != nil {
					errs <- err
					return
				}
				col, err := cf.Column("d")
				if err == nil {
					var sum int64
					sum, err = col.Sum()
					if err == nil && sum != wantSum {
						errs <- fmt.Errorf("sum = %d, want %d", sum, wantSum)
					}
				}
				if err != nil {
					errs <- err
				}
				cf.Close()
			}
		}()
	}

	// The writer: alternate cheap rewrites and compactions so every
	// round really swaps a new generation under the readers.
	c := New(Options{MinGainBytes: -1})
	for i := 0; i < rounds; i++ {
		res, err := c.CompactFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != ActionRewritten {
			t.Fatalf("round %d: action %q (err %v)", i, res.Action, res.Err)
		}
		if err := storage.AtomicWriteFile(path, func(w io.Writer) error {
			_, err := w.Write(cheap)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	final, err := c.CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Action != ActionRewritten {
		t.Fatalf("final compaction: %q", final.Action)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The pre-swap handle still answers from the retired generation.
	col, err := retired.Column("d")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := col.Sum()
	if err != nil || sum != wantSum {
		t.Fatalf("retired-generation read: sum %d err %v, want %d", sum, err, wantSum)
	}

	// A fresh open sees the compacted generation.
	if got := fileSize(t, path); got != final.BytesAfter {
		t.Fatalf("new generation is %d bytes, compaction reported %d", got, final.BytesAfter)
	}
	equalCols(t, readBack(t, path), cols)
	if gen := c.Generation(); gen != rounds+1 {
		t.Fatalf("generation = %d, want %d", gen, rounds+1)
	}
}

// TestCompactNoFdLeak: 100 compaction cycles leave the process fd
// table where it started — every open the compactor makes (the lazy
// read, the verify pass, the temp file) is matched by a close.
func TestCompactNoFdLeak(t *testing.T) {
	countFds := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Skipf("no /proc/self/fd: %v", err)
		}
		return len(ents)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "dates.lwc")
	writeCheap(t, path, 4096, map[string][]int64{"d": workload.OrderShipDates(20000, 64, 730120, 7)})
	cheap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	c := New(Options{MinGainBytes: -1})
	// Warm up once so pools and lazily initialized state exist.
	if _, err := c.CompactFile(path); err != nil {
		t.Fatal(err)
	}
	before := countFds()
	for i := 0; i < 100; i++ {
		if err := os.WriteFile(path, cheap, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := c.CompactFile(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if res.Action != ActionRewritten {
			t.Fatalf("cycle %d: action %q", i, res.Action)
		}
	}
	after := countFds()
	if after > before+4 {
		t.Fatalf("fd count grew from %d to %d across 100 compactions", before, after)
	}
}
