package compact

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lwcomp/internal/storage"
)

// mergeGroup is one table's merge-eligible part files.
type mergeGroup struct {
	table string
	parts []mergePart
}

// mergePart is one `<table>.<column>.lwc` source container.
type mergePart struct {
	path   string
	column string
	bytes  int64
}

// MergeDir coalesces directories of many tiny same-table
// single-column containers into one multi-column container per table:
// every group of two or more `<table>.<column>.lwc` files under the
// small-container bound becomes `<table>.lwc`, columns named by their
// filenames (the name the query server would serve them under),
// written atomically and verified before the parts are removed.
// Groups that are not cleanly mergeable — a `<table>.lwc` already
// present, parts too large, mismatched row counts, a part holding
// more than one column — are left untouched rather than failed.
func (c *Compactor) MergeDir(dir string) ([]Result, error) {
	groups, err := c.mergeGroups(dir)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, g := range groups {
		res, err := c.mergeGroup(dir, g)
		if err != nil {
			return results, err
		}
		if res != nil {
			results = append(results, *res)
		}
	}
	return results, nil
}

// mergeGroups finds the merge-eligible groups under dir: per-column
// files grouped by table, at least two to a group, each under the
// small-container bound, and no `<table>.lwc` already claiming the
// merged name.
func (c *Compactor) mergeGroups(dir string) ([]mergeGroup, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	small := c.opt.smallBytes()
	byTable := map[string][]mergePart{}
	whole := map[string]bool{}
	oversized := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lwc") {
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".lwc")
		i := strings.LastIndexByte(base, '.')
		if i <= 0 || i >= len(base)-1 {
			// `<table>.lwc`: this table's merged name is taken.
			whole[base] = true
			continue
		}
		tbl, col := base[:i], base[i+1:]
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		if info.Size() >= small {
			// One big part disqualifies the table: merging the small
			// siblings would orphan the naming convention mid-table.
			oversized[tbl] = true
			continue
		}
		byTable[tbl] = append(byTable[tbl], mergePart{
			path:   filepath.Join(dir, e.Name()),
			column: col,
			bytes:  info.Size(),
		})
	}
	var groups []mergeGroup
	for tbl, parts := range byTable {
		if len(parts) < 2 || whole[tbl] || oversized[tbl] {
			continue
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i].path < parts[j].path })
		groups = append(groups, mergeGroup{table: tbl, parts: parts})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].table < groups[j].table })
	return groups, nil
}

// mergeGroup coalesces one table's parts. A nil, nil return means the
// group turned out ineligible on inspection (mismatched row counts, a
// multi-column part) and was left untouched.
func (c *Compactor) mergeGroup(dir string, g mergeGroup) (*Result, error) {
	start := time.Now()
	outPath := filepath.Join(dir, g.table+".lwc")
	res := &Result{Path: outPath, Action: ActionMerged}

	// Read every part eagerly: the merged container needs resident
	// forms, and the parts are small by construction.
	var cols []storage.BlockedColumn
	var names []string
	var data [][]int64
	rows := -1
	for _, p := range g.parts {
		res.BytesBefore += p.bytes
		res.MergedFrom = append(res.MergedFrom, p.path)
		pcols, err := readEager(p.path)
		if err != nil {
			// An unreadable or torn part makes the whole group
			// untouchable; compaction proper will surface the failure.
			return nil, nil
		}
		if len(pcols) != 1 {
			return nil, nil
		}
		col := pcols[0].Col
		if rows >= 0 && col.N != rows {
			return nil, nil
		}
		rows = col.N
		raw, err := col.Decompress()
		if err != nil {
			return nil, nil
		}
		// The filename dictates the served column name — the same
		// "filename wins" rule the server's mount applies — so the
		// merged container keeps serving identical table shapes.
		cols = append(cols, storage.BlockedColumn{Name: p.column, Col: col})
		names = append(names, p.column)
		data = append(data, raw)
	}

	var buf bytes.Buffer
	if err := storage.WriteContainerV3(&buf, cols); err != nil {
		return nil, fmt.Errorf("merging table %q: %w", g.table, err)
	}
	if err := verifyCandidate(buf.Bytes(), names, data); err != nil {
		return nil, fmt.Errorf("merged candidate for table %q failed verification: %w", g.table, err)
	}
	if err := storage.AtomicWriteFile(outPath, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return nil, err
	}
	res.BytesAfter = int64(buf.Len())
	res.CandidateBytes = res.BytesAfter
	res.Generation = c.gen.Add(1)
	// The merged generation is durable; now the parts can go. A
	// reader mid-scan on a part finishes on its still-open descriptor
	// (the inode lives until the last close); new opens of the
	// directory see one container where many were.
	for _, p := range g.parts {
		if err := os.Remove(p.path); err != nil {
			return res, err
		}
	}
	res.CPUSeconds = time.Since(start).Seconds()
	c.merged.Add(1)
	c.cpuNanos.Add(time.Since(start).Nanoseconds())
	if gain := res.Gain(); gain > 0 {
		c.bytesReclaimed.Add(gain)
	}
	return res, nil
}

// readEager reads a container with resident forms — what a rewrite
// that reuses the existing encodings needs.
func readEager(path string) ([]storage.BlockedColumn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return storage.ReadAnyContainer(f)
}
