package compact

import (
	"fmt"
	"os"
	"sort"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
)

// Estimate is one container's dry-run entry: what compaction would
// plausibly save, priced from block statistics and the per-scheme
// size estimators alone — no candidate is trial-compressed and
// nothing is written.
type Estimate struct {
	// Path is the container.
	Path string
	// FileBytes is the container's current size on disk.
	FileBytes int64
	// PayloadBytes is the current encoded size of every block payload
	// (the part a rewrite can shrink; the index overhead stays).
	PayloadBytes int64
	// EstPayloadBytes is the estimators' prediction of the payload
	// after re-analysis: per block, the smallest predicted size over
	// the full candidate space.
	EstPayloadBytes int64
}

// EstSavings is the predicted payload win, clamped at zero — an
// estimator can predict larger-than-current for a block the ingest
// search already nailed, and a rewrite would never realize a
// negative win.
func (e Estimate) EstSavings() int64 {
	if s := e.PayloadBytes - e.EstPayloadBytes; s > 0 {
		return s
	}
	return 0
}

// EstSavingsFraction is EstSavings over the current payload size.
func (e Estimate) EstSavingsFraction() float64 {
	if e.PayloadBytes == 0 {
		return 0
	}
	return float64(e.EstSavings()) / float64(e.PayloadBytes)
}

// EstimateFile prices one container's compaction win from statistics
// alone: every block is decompressed once, its one-pass BlockStats
// collected, and the candidate space's size estimators queried for
// the smallest prediction — the ranking half of the analyzer with the
// trial-compression half left out.
func (c *Compactor) EstimateFile(path string) (Estimate, error) {
	est := Estimate{Path: path}
	st, err := os.Stat(path)
	if err != nil {
		return est, err
	}
	est.FileBytes = st.Size()

	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		return est, err
	}
	defer cf.Close()

	s := core.GetScratch()
	defer s.Release()
	var buf []int64
	for ci, bc := range cf.Columns() {
		extents := cf.Extents(ci)
		for i := range bc.Col.Blocks {
			b := &bc.Col.Blocks[i]
			if extents != nil {
				est.PayloadBytes += extents[i].Bytes
			} else if f, err := bc.Col.BlockForm(i); err == nil {
				// Eager (v1/v2) containers carry no extent table; the
				// resident form's serialized size is the same number.
				if sz, err := storage.EncodedSize(f); err == nil {
					est.PayloadBytes += int64(sz)
				}
			}
			if cap(buf) < b.Count {
				buf = make([]int64, b.Count)
			}
			if err := bc.Col.DecompressBlock(i, buf[:b.Count]); err != nil {
				return est, fmt.Errorf("column %q block %d: %w", bc.Name, i, err)
			}
			est.EstPayloadBytes += int64(estimateBlockBits(buf[:b.Count], s)+7) / 8
		}
	}
	return est, nil
}

// estimateBlockBits returns the smallest predicted encoded size of
// one block over the default candidate space — EstimateSize per
// candidate on shared one-pass stats, never a trial compression.
func estimateBlockBits(src []int64, s *core.Scratch) uint64 {
	st := core.CollectStats(src, s)
	defer st.ReleaseSeg(s)
	best := uint64(len(src)) * 64 // worst case: the raw bits
	for _, cand := range scheme.DefaultCandidates(&st) {
		if cand.Scheme == nil {
			continue
		}
		bits, _, ok := core.EstimateOf(cand.Scheme, &st)
		if ok && bits < best {
			best = bits
		}
	}
	return best
}

// EstimateDir prices every container under dir and returns the
// entries sorted by predicted savings, largest first — the order a
// capped compaction budget should spend itself in.
func (c *Compactor) EstimateDir(dir string) ([]Estimate, error) {
	paths, err := ListContainers(dir)
	if err != nil {
		return nil, err
	}
	ests := make([]Estimate, 0, len(paths))
	for _, p := range paths {
		e, err := c.EstimateFile(p)
		if err != nil {
			return ests, err
		}
		ests = append(ests, e)
	}
	sort.SliceStable(ests, func(i, j int) bool { return ests[i].EstSavings() > ests[j].EstSavings() })
	return ests, nil
}
