package compact

import (
	"os"
	"path/filepath"
	"testing"

	"lwcomp/internal/blocked"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

// writeCheap encodes cols with a fixed fast scheme (plain ns bitpack,
// no analyzer search — the "write fast now" ingest path) into a v3
// container at path.
func writeCheap(t *testing.T, path string, blockSize int, cols map[string][]int64) {
	t.Helper()
	ns, err := scheme.Parse("ns")
	if err != nil {
		t.Fatal(err)
	}
	var bcs []storage.BlockedColumn
	for name, data := range cols {
		col, err := blocked.Encode(data, blocked.EncodeOptions{BlockSize: blockSize, Scheme: ns})
		if err != nil {
			t.Fatal(err)
		}
		bcs = append(bcs, storage.BlockedColumn{Name: name, Col: col})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := storage.WriteContainerV3(f, bcs); err != nil {
		t.Fatal(err)
	}
}

// readBack decompresses every column of the container at path.
func readBack(t *testing.T, path string) map[string][]int64 {
	t.Helper()
	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	out := map[string][]int64{}
	for _, bc := range cf.Columns() {
		raw, err := bc.Col.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		out[bc.Name] = raw
	}
	return out
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func equalCols(t *testing.T, got, want map[string][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d column(s), want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("column %q missing", name)
		}
		if len(g) != len(w) {
			t.Fatalf("column %q: %d row(s), want %d", name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("column %q row %d: %d, want %d", name, i, g[i], w[i])
			}
		}
	}
}

// TestCompactFileReclaims: a container ingested with the fixed fast
// scheme shrinks under exhaustive re-analysis, the data survives
// bit-for-bit, and the result carries a generation stamp.
func TestCompactFileReclaims(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dates.lwc")
	cols := map[string][]int64{"d": workload.OrderShipDates(40000, 64, 730120, 7)}
	writeCheap(t, path, 8192, cols)
	before := fileSize(t, path)

	c := New(Options{MinGainBytes: -1})
	res, err := c.CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRewritten {
		t.Fatalf("action = %q (err %v), want rewritten", res.Action, res.Err)
	}
	if res.BytesBefore != before || res.BytesAfter >= before {
		t.Fatalf("bytes %d -> %d, want a real shrink from %d", res.BytesBefore, res.BytesAfter, before)
	}
	if got := fileSize(t, path); got != res.BytesAfter {
		t.Fatalf("on-disk size %d, result says %d", got, res.BytesAfter)
	}
	if res.Generation != 1 || c.Generation() != 1 {
		t.Fatalf("generation = %d / %d, want 1", res.Generation, c.Generation())
	}
	equalCols(t, readBack(t, path), cols)

	// The rewritten generation passes the offline fsck too.
	rep, err := storage.VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify after compaction: %v", rep.Issues)
	}

	ctr := c.Counters()
	if ctr.Scanned != 1 || ctr.Rewritten != 1 || ctr.BytesReclaimed != before-res.BytesAfter {
		t.Fatalf("counters = %+v", ctr)
	}
	if ctr.CPUSeconds <= 0 {
		t.Fatalf("CPUSeconds = %v, want > 0", ctr.CPUSeconds)
	}
}

// TestCompactThreshold: a win below the absolute or fractional
// threshold skips the rewrite and leaves the file byte-identical.
func TestCompactThreshold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dates.lwc")
	writeCheap(t, path, 8192, map[string][]int64{"d": workload.OrderShipDates(40000, 64, 730120, 7)})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, opt := range []Options{
		{MinGainBytes: 1 << 40},
		{MinGainBytes: -1, MinGainFraction: 0.9999},
	} {
		c := New(opt)
		res, err := c.CompactFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != ActionSkipped {
			t.Fatalf("opts %+v: action = %q, want skipped", opt, res.Action)
		}
		if res.CandidateBytes == 0 || res.CandidateBytes >= res.BytesBefore {
			t.Fatalf("opts %+v: candidate %d of %d — the skip should still have found a win",
				opt, res.CandidateBytes, res.BytesBefore)
		}
		now, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(now) != string(orig) {
			t.Fatalf("opts %+v: skipped compaction mutated the file", opt)
		}
		if ctr := c.Counters(); ctr.Skipped != 1 || ctr.Rewritten != 0 || ctr.BytesReclaimed != 0 {
			t.Fatalf("opts %+v: counters = %+v", opt, ctr)
		}
	}
}

// TestCompactIdempotent: a second pass finds nothing left to win and
// skips — compaction converges instead of churning.
func TestCompactIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.lwc")
	writeCheap(t, path, 8192, map[string][]int64{"r": workload.Runs(40000, 64, 1<<16, 3)})

	c := New(Options{MinGainBytes: -1})
	first, err := c.CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if first.Action != ActionRewritten {
		t.Fatalf("first pass: %q (err %v)", first.Action, first.Err)
	}
	second, err := c.CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if second.Action != ActionSkipped {
		t.Fatalf("second pass: %q, want skipped (bytes %d -> candidate %d)",
			second.Action, second.BytesBefore, second.CandidateBytes)
	}
}

// TestCompactVerifyAbortKeepsOld: a candidate that fails the pre-swap
// verification never reaches the filesystem — the old generation
// stays byte-for-byte intact and the failure is reported, not
// returned as an environmental error.
func TestCompactVerifyAbortKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dates.lwc")
	writeCheap(t, path, 8192, map[string][]int64{"d": workload.OrderShipDates(40000, 64, 730120, 7)})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	testMutateCandidate = func(b []byte) { b[len(b)-3] ^= 0x40 } // flip a payload bit
	defer func() { testMutateCandidate = nil }()

	c := New(Options{MinGainBytes: -1})
	res, err := c.CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionFailed || res.Err == nil {
		t.Fatalf("action = %q err = %v, want failed with a verification error", res.Action, res.Err)
	}
	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(now) != string(orig) {
		t.Fatal("failed verification must keep the old generation untouched")
	}
	if ctr := c.Counters(); ctr.Failed != 1 || ctr.Rewritten != 0 {
		t.Fatalf("counters = %+v", ctr)
	}
}

// TestCompactPrunedSearch: TrialK > 0 runs the size-biased pruned
// search; on this workload it lands on the same win as exhaustive.
func TestCompactPrunedSearch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dates.lwc")
	cols := map[string][]int64{"d": workload.OrderShipDates(40000, 64, 730120, 7)}
	writeCheap(t, path, 8192, cols)

	c := New(Options{MinGainBytes: -1, TrialK: 3})
	res, err := c.CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRewritten {
		t.Fatalf("action = %q (err %v)", res.Action, res.Err)
	}
	equalCols(t, readBack(t, path), cols)
}

// TestCompactDir: a directory pass compacts every container and the
// report aggregates per-container outcomes.
func TestCompactDir(t *testing.T) {
	dir := t.TempDir()
	writeCheap(t, filepath.Join(dir, "a.lwc"), 8192, map[string][]int64{"x": workload.OrderShipDates(30000, 64, 730120, 1)})
	writeCheap(t, filepath.Join(dir, "b.lwc"), 8192, map[string][]int64{"y": workload.Runs(30000, 64, 1<<16, 2)})
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{MinGainBytes: -1})
	rep, err := c.CompactDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("visited %d container(s), want 2", len(rep.Results))
	}
	rewritten, skipped, failed, merged := rep.Counts()
	if rewritten != 2 || skipped != 0 || failed != 0 || merged != 0 {
		t.Fatalf("counts = %d/%d/%d/%d", rewritten, skipped, failed, merged)
	}
	if rep.BytesReclaimed() <= 0 {
		t.Fatalf("BytesReclaimed = %d, want > 0", rep.BytesReclaimed())
	}
}

// TestDryRunEstimates: the statistics-only estimate predicts real
// savings for a cheaply ingested directory, sorts the biggest win
// first, and writes nothing.
func TestDryRunEstimates(t *testing.T) {
	dir := t.TempDir()
	big := filepath.Join(dir, "big.lwc")
	small := filepath.Join(dir, "small.lwc")
	writeCheap(t, big, 8192, map[string][]int64{"d": workload.OrderShipDates(60000, 64, 730120, 7)})
	writeCheap(t, small, 8192, map[string][]int64{"d": workload.OrderShipDates(6000, 64, 730120, 7)})
	origBig, _ := os.ReadFile(big)
	origSmall, _ := os.ReadFile(small)

	c := New(Options{})
	ests, err := c.EstimateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("estimated %d container(s), want 2", len(ests))
	}
	if ests[0].Path != big {
		t.Fatalf("sorted order: first is %q, want the bigger win %q", ests[0].Path, big)
	}
	for _, e := range ests {
		if e.EstSavings() <= 0 {
			t.Fatalf("%s: EstSavings = %d, want > 0 for a cheaply ingested container", e.Path, e.EstSavings())
		}
		if e.EstSavingsFraction() <= 0 || e.EstSavingsFraction() > 1 {
			t.Fatalf("%s: EstSavingsFraction = %v", e.Path, e.EstSavingsFraction())
		}
	}

	// The estimate is honest: compacting realizes at least a real win
	// where the estimator predicted one.
	res, err := New(Options{MinGainBytes: -1}).CompactFile(big)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRewritten {
		t.Fatalf("compaction after a positive estimate: %q", res.Action)
	}

	nowSmall, _ := os.ReadFile(small)
	if string(nowSmall) != string(origSmall) {
		t.Fatal("dry run mutated a container")
	}
	_ = origBig
}

// TestMergeSmall: many tiny same-table single-column containers
// coalesce into one multi-column container named for the table, the
// parts are removed, and the data survives under the filename-derived
// column names.
func TestMergeSmall(t *testing.T) {
	dir := t.TempDir()
	a := workload.LowCardinality(5000, 16, 1)
	b := workload.Sorted(5000, 1<<30, 2)
	writeCheap(t, filepath.Join(dir, "t.a.lwc"), 1024, map[string][]int64{"col0": a})
	writeCheap(t, filepath.Join(dir, "t.b.lwc"), 1024, map[string][]int64{"col0": b})
	// A different table with one part stays as it is.
	writeCheap(t, filepath.Join(dir, "u.v.lwc"), 1024, map[string][]int64{"col0": a})

	c := New(Options{MergeSmall: true})
	results, err := c.MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Action != ActionMerged {
		t.Fatalf("results = %+v, want one merge", results)
	}
	if len(results[0].MergedFrom) != 2 {
		t.Fatalf("MergedFrom = %v", results[0].MergedFrom)
	}
	for _, gone := range []string{"t.a.lwc", "t.b.lwc"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("part %s still present after merge", gone)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "u.v.lwc")); err != nil {
		t.Fatalf("singleton part was touched: %v", err)
	}
	equalCols(t, readBack(t, filepath.Join(dir, "t.lwc")), map[string][]int64{"a": a, "b": b})
	if c.Counters().Merged != 1 {
		t.Fatalf("counters = %+v", c.Counters())
	}
}

// TestMergeRefusals: groups that cannot merge cleanly are left
// untouched — an existing <table>.lwc, mismatched row counts, or an
// oversized sibling.
func TestMergeRefusals(t *testing.T) {
	dir := t.TempDir()
	a := workload.LowCardinality(5000, 16, 1)
	short := workload.LowCardinality(4000, 16, 1)

	// Table "w": merged name already taken.
	writeCheap(t, filepath.Join(dir, "w.a.lwc"), 1024, map[string][]int64{"col0": a})
	writeCheap(t, filepath.Join(dir, "w.b.lwc"), 1024, map[string][]int64{"col0": a})
	writeCheap(t, filepath.Join(dir, "w.lwc"), 1024, map[string][]int64{"c": a})
	// Table "x": row counts disagree.
	writeCheap(t, filepath.Join(dir, "x.a.lwc"), 1024, map[string][]int64{"col0": a})
	writeCheap(t, filepath.Join(dir, "x.b.lwc"), 1024, map[string][]int64{"col0": short})

	before, err := ListContainers(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{MergeSmall: true})
	results, err := c.MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %+v, want none", results)
	}
	after, err := ListContainers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("file set changed: %v -> %v", before, after)
	}

	// SmallBytes = 1 disqualifies everything by size.
	tiny := New(Options{MergeSmall: true, SmallBytes: 1})
	results, err = tiny.MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("oversized parts merged anyway: %+v", results)
	}
}

// TestCompactDirWithMerge: one pass merges first and then compacts
// the merged output along with everything else.
func TestCompactDirWithMerge(t *testing.T) {
	dir := t.TempDir()
	a := workload.OrderShipDates(20000, 64, 730120, 1)
	b := workload.Runs(20000, 64, 1<<16, 2)
	writeCheap(t, filepath.Join(dir, "t.a.lwc"), 4096, map[string][]int64{"col0": a})
	writeCheap(t, filepath.Join(dir, "t.b.lwc"), 4096, map[string][]int64{"col0": b})

	c := New(Options{MinGainBytes: -1, MergeSmall: true})
	rep, err := c.CompactDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, _, failed, merged := rep.Counts()
	if merged != 1 || rewritten != 1 || failed != 0 {
		t.Fatalf("counts: merged=%d rewritten=%d failed=%d; results %+v", merged, rewritten, failed, rep.Results)
	}
	equalCols(t, readBack(t, filepath.Join(dir, "t.lwc")), map[string][]int64{"a": a, "b": b})
}
