// Package compact is the background recompaction service: write fast
// now, shrink later. Ingest encodes blocks with whatever search effort
// the write path can afford (a fixed scheme, a pruned top-K trial); a
// Compactor later walks the resulting v3 containers, re-analyzes every
// block — exhaustively by default, or with a size-biased pruned search
// via Options.TrialK — and atomically rewrites a container when the
// byte win clears a configurable threshold.
//
// A rewrite is a generation swap, not an in-place mutation: the
// candidate container is serialized to memory, verified with `lwc
// verify` semantics (every block CRC-checked, decoded, its re-derived
// [min, max] compared against the index) plus value-for-value equality
// against the data the old generation held, and only then renamed over
// the old file through storage.AtomicWriteFile. Concurrent readers
// holding the old generation's file descriptor finish on the retired
// inode (POSIX rename semantics — the same drain the query server's
// refcounted mount sets rely on); new opens see the compacted
// generation. Any verification mismatch aborts the swap and keeps the
// old generation byte-for-byte intact.
//
// The package also coalesces directories of many tiny same-table
// single-column containers (`<table>.<column>.lwc`) into one
// multi-column `<table>.lwc` (Options.MergeSmall), and estimates
// per-container savings from block statistics alone — no trial encode,
// no write — for `lwc compact --dry-run` (Compactor.EstimateDir).
//
// Surfaces: the `lwc compact` subcommand runs a single-shot pass; the
// query server (internal/server) hosts the same Compactor as a
// low-priority background loop that yields to query traffic and
// re-mounts after each sweep that changed the directory.
package compact
