package compact

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

// TestCompactCrashChild is the subprocess half of the compaction crash
// harness: it compacts LWC_CRASH_FILE and dies at the AtomicWriteFile
// point named by LWC_CRASH_POINT.
func TestCompactCrashChild(t *testing.T) {
	point := os.Getenv("LWC_CRASH_POINT")
	if point == "" {
		t.Skip("crash child runs only as a subprocess")
	}
	storage.CrashHook = func(p string) {
		if p == point {
			os.Exit(7)
		}
	}
	if _, err := New(Options{}).CompactFile(os.Getenv("LWC_CRASH_FILE")); err != nil {
		os.Exit(3)
	}
	os.Exit(0)
}

// TestCompactCrashMatrix kills a child mid-CompactFile swap at every
// interruption point and asserts the container always reopens with
// every row bit-exact — the old generation before the rename, the
// compacted one after — with at worst one temp file for the janitor.
func TestCompactCrashMatrix(t *testing.T) {
	cols := map[string][]int64{"d": workload.OrderShipDates(20000, 64, 730120, 7)}
	for _, point := range []string{"created", "written", "synced", "closed", "renamed", "dirsynced"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "t.d.lwc")
			writeCheap(t, path, 8192, cols)
			oldSize := fileSize(t, path)

			cmd := exec.Command(os.Args[0], "-test.run", "^TestCompactCrashChild$")
			cmd.Env = append(os.Environ(),
				"LWC_CRASH_POINT="+point,
				"LWC_CRASH_FILE="+path,
			)
			out, err := cmd.CombinedOutput()
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 7 {
				t.Fatalf("child did not die at %q (err=%v):\n%s", point, err, out)
			}

			// Whichever generation is visible, the data is intact.
			equalCols(t, readBack(t, path), cols)
			switch point {
			case "renamed", "dirsynced":
				if got := fileSize(t, path); got >= oldSize {
					t.Fatalf("post-rename crash shows old generation (%d >= %d bytes)", got, oldSize)
				}
			default:
				if got := fileSize(t, path); got != oldSize {
					t.Fatalf("pre-rename crash altered the file (%d != %d bytes)", got, oldSize)
				}
			}

			// Recovery: the janitor clears litter and a rerun converges.
			if _, err := storage.SweepTempFiles(dir, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := New(Options{}).CompactFile(path); err != nil {
				t.Fatal(err)
			}
			equalCols(t, readBack(t, path), cols)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Fatalf("litter after recovery: %v", entries)
			}
		})
	}
}
