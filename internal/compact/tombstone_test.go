package compact

import (
	"os"
	"path/filepath"
	"testing"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

// TestCompactSkipsTombstonedContainer: a container carrying a
// tombstone cannot be re-encoded — the lost rows are gone — so the
// compactor must step around it untouched rather than fail the sweep.
func TestCompactSkipsTombstonedContainer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.d.lwc")
	col, err := blocked.Encode(workload.OrderShipDates(20000, 64, 730120, 7),
		blocked.EncodeOptions{BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	col.MarkTombstone(1, "lost in a prior repair")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteContainerV3(f, []storage.BlockedColumn{{Name: "d", Col: col}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before := fileSize(t, path)

	res, err := New(Options{}).CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionSkipped {
		t.Fatalf("tombstoned container: action %q, want %q", res.Action, ActionSkipped)
	}
	if fileSize(t, path) != before {
		t.Fatal("skip modified the file")
	}

	// The directory sweep must also carry on past it.
	rep, err := New(Options{}).CompactDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, failed, _ := rep.Counts(); failed != 0 {
		t.Fatalf("tombstoned container failed the sweep: %+v", rep)
	}
}
