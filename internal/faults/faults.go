// Package faults provides deterministic, seeded fault injection for
// the storage read path. Its wrappers sit at the two seams the rest of
// the tree already exposes — io.ReaderAt below a container
// (storage.OpenOptions.WrapReader) and blocked.BlockSource above it
// (Column.Source) — and inject transient read errors, added latency,
// payload bit-flips, and panics on command.
//
// Every decision is a pure function of (seed, offset, per-offset
// attempt number), never of wall-clock time or goroutine scheduling,
// so a run with N parallel scan workers injects exactly the same
// faults as a serial one: tests assert on them, and lwcbench's EXP-T
// reproduces them.
package faults

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
)

// ErrInjected is the transient read error the ReaderAt wrapper
// injects. It carries no permanent-error marker, so the storage retry
// layer treats it — correctly — as retryable.
var ErrInjected = errors.New("faults: injected transient read error")

// Config tunes a fault-injecting ReaderAt.
type Config struct {
	// Seed makes the injection deterministic; two wrappers with the
	// same seed and config fail the same offsets.
	Seed int64
	// TransientProb is the probability in [0, 1] that a given read
	// offset is fault-prone. A fault-prone offset fails its first
	// MaxConsecutive reads with ErrInjected, then succeeds — so any
	// retry budget above MaxConsecutive absorbs every injected fault.
	TransientProb float64
	// MaxConsecutive bounds how many times a fault-prone offset fails
	// before reads of it succeed. 0 means 2.
	MaxConsecutive int
	// Latency is added to every read, modeling slow media.
	Latency time.Duration
	// FlipOffsets lists absolute file offsets whose byte has its low
	// bit flipped on every read covering it — persistent bit rot as
	// seen through this reader.
	FlipOffsets []int64
	// FlipMaxReads, when positive, bounds how many reads of each
	// FlipOffsets entry come back corrupted before reads of it return
	// the true bytes — transient path corruption (a flaky cable, a
	// sector the drive remaps on re-read) rather than persistent rot.
	// The disk bytes are fine; only the first FlipMaxReads views of
	// them lie. This is the scenario salvage repair's bounded re-read
	// loop recovers without tombstoning. 0 means flip forever.
	FlipMaxReads int
}

// ReaderAt wraps an io.ReaderAt with deterministic fault injection.
// It is safe for concurrent use.
type ReaderAt struct {
	r   io.ReaderAt
	cfg Config

	mu        sync.Mutex
	failures  map[int64]int // per-offset injected-failure count
	flipReads map[int64]int // per-flip-offset corrupted-read count

	injected atomic.Int64
	flipped  atomic.Int64
}

// NewReaderAt wraps r with the given fault configuration.
func NewReaderAt(r io.ReaderAt, cfg Config) *ReaderAt {
	if cfg.MaxConsecutive <= 0 {
		cfg.MaxConsecutive = 2
	}
	return &ReaderAt{r: r, cfg: cfg, failures: make(map[int64]int), flipReads: make(map[int64]int)}
}

// Wrap returns the wrapper as the storage.OpenOptions.WrapReader
// callback shape, remembering the last wrapper built so callers can
// scrape its counters after mounting through opaque plumbing.
func Wrap(cfg Config) (wrap func(io.ReaderAt) io.ReaderAt, last func() *ReaderAt) {
	var mu sync.Mutex
	var cur *ReaderAt
	return func(r io.ReaderAt) io.ReaderAt {
			w := NewReaderAt(r, cfg)
			mu.Lock()
			cur = w
			mu.Unlock()
			return w
		}, func() *ReaderAt {
			mu.Lock()
			defer mu.Unlock()
			return cur
		}
}

// splitmix64 is the avalanching hash behind every injection decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultProne decides — purely from seed and offset — whether reads at
// off are in the faulty fraction.
func (f *ReaderAt) faultProne(off int64) bool {
	if f.cfg.TransientProb <= 0 {
		return false
	}
	h := splitmix64(uint64(f.cfg.Seed) ^ splitmix64(uint64(off)))
	return float64(h%(1<<20))/float64(1<<20) < f.cfg.TransientProb
}

// ReadAt implements io.ReaderAt with injection: latency first, then a
// possible transient failure, then the real read with bit-flips
// applied to any configured offsets the read covers.
func (f *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	if f.faultProne(off) {
		f.mu.Lock()
		n := f.failures[off]
		if n < f.cfg.MaxConsecutive {
			f.failures[off] = n + 1
			f.mu.Unlock()
			f.injected.Add(1)
			return 0, fmt.Errorf("%w (offset %d, attempt %d)", ErrInjected, off, n+1)
		}
		f.mu.Unlock()
	}
	n, err := f.r.ReadAt(p, off)
	for _, fo := range f.cfg.FlipOffsets {
		if fo < off || fo >= off+int64(n) {
			continue
		}
		if f.cfg.FlipMaxReads > 0 {
			f.mu.Lock()
			seen := f.flipReads[fo]
			if seen >= f.cfg.FlipMaxReads {
				f.mu.Unlock()
				// The transient corruption has cleared; the true bytes
				// flow through from here on.
				continue
			}
			f.flipReads[fo] = seen + 1
			f.mu.Unlock()
		}
		p[fo-off] ^= 1
		f.flipped.Add(1)
	}
	return n, err
}

// InjectedTransient returns how many transient errors the wrapper has
// injected so far.
func (f *ReaderAt) InjectedTransient() int64 { return f.injected.Load() }

// FlippedBits returns how many bit-flips the wrapper has applied.
func (f *ReaderAt) FlippedBits() int64 { return f.flipped.Load() }

// BlockSource wraps a blocked.BlockSource, failing or panicking on
// configured block indices — the seam for exercising quarantine and
// scan-worker panic recovery above the storage layer. Swap it into a
// column's exported Source field; Restore undoes it.
type BlockSource struct {
	inner blocked.BlockSource
	// FailBlocks maps block index → the error every fetch of that
	// block returns.
	FailBlocks map[int]error
	// PanicBlocks marks blocks whose fetch panics.
	PanicBlocks map[int]bool
}

// NewBlockSource wraps inner.
func NewBlockSource(inner blocked.BlockSource, fail map[int]error, panics map[int]bool) *BlockSource {
	return &BlockSource{inner: inner, FailBlocks: fail, PanicBlocks: panics}
}

// BlockForm implements blocked.BlockSource.
func (b *BlockSource) BlockForm(i int) (*core.Form, error) {
	if b.PanicBlocks[i] {
		panic(fmt.Sprintf("faults: injected panic fetching block %d", i))
	}
	if err, ok := b.FailBlocks[i]; ok {
		return nil, err
	}
	return b.inner.BlockForm(i)
}

// Restore returns the wrapped source, for putting a column back the
// way it was.
func (b *BlockSource) Restore() blocked.BlockSource { return b.inner }

// Close forwards to the wrapped source when it is closable, so a
// wrapped column still releases its container on Close.
func (b *BlockSource) Close() error {
	if c, ok := b.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
