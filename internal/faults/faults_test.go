package faults

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
)

// readPattern reads the same offset sequence through a wrapper and
// records which attempts failed.
func readPattern(t *testing.T, f *ReaderAt, offsets []int64, attempts int) []bool {
	t.Helper()
	var fails []bool
	buf := make([]byte, 4)
	for _, off := range offsets {
		for a := 0; a < attempts; a++ {
			_, err := f.ReadAt(buf, off)
			fails = append(fails, err != nil)
		}
	}
	return fails
}

func TestFaultReaderDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 4096)
	offsets := make([]int64, 64)
	for i := range offsets {
		offsets[i] = int64(i * 61)
	}
	cfg := Config{Seed: 7, TransientProb: 0.25, MaxConsecutive: 2}
	a := NewReaderAt(bytes.NewReader(data), cfg)
	b := NewReaderAt(bytes.NewReader(data), cfg)
	pa := readPattern(t, a, offsets, 3)
	pb := readPattern(t, b, offsets, 3)
	if len(pa) != len(pb) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("attempt %d: wrapper a failed=%v, wrapper b failed=%v", i, pa[i], pb[i])
		}
	}
	if a.InjectedTransient() == 0 {
		t.Fatal("TransientProb 0.25 over 64 offsets injected nothing")
	}
	if a.InjectedTransient() != b.InjectedTransient() {
		t.Fatalf("injected counts differ: %d vs %d", a.InjectedTransient(), b.InjectedTransient())
	}
}

func TestFaultReaderBoundedConsecutive(t *testing.T) {
	data := []byte("0123456789abcdef")
	f := NewReaderAt(bytes.NewReader(data), Config{Seed: 1, TransientProb: 1, MaxConsecutive: 3})
	buf := make([]byte, 4)
	for a := 1; a <= 3; a++ {
		if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: want ErrInjected, got %v", a, err)
		}
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("attempt 4 (past MaxConsecutive): %v", err)
	}
	if string(buf) != "0123" {
		t.Fatalf("read %q after injection window", buf)
	}
}

func TestFaultReaderBitFlip(t *testing.T) {
	data := []byte{0x10, 0x20, 0x30, 0x40}
	f := NewReaderAt(bytes.NewReader(data), Config{FlipOffsets: []int64{2}})
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[2] != 0x31 {
		t.Fatalf("offset 2 read as %#x, want low bit flipped (0x31)", buf[2])
	}
	if buf[0] != 0x10 || buf[1] != 0x20 || buf[3] != 0x40 {
		t.Fatalf("untargeted bytes changed: % x", buf)
	}
	// A read not covering the offset is untouched.
	if _, err := f.ReadAt(buf[:2], 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x10 || buf[1] != 0x20 {
		t.Fatalf("short read corrupted: % x", buf[:2])
	}
	if f.FlippedBits() != 1 {
		t.Fatalf("FlippedBits = %d, want 1", f.FlippedBits())
	}
}

func TestFaultWrapScrapesLastWrapper(t *testing.T) {
	wrap, last := Wrap(Config{Seed: 3, TransientProb: 1, MaxConsecutive: 1})
	if last() != nil {
		t.Fatal("last() non-nil before any wrap")
	}
	r := wrap(bytes.NewReader([]byte{1, 2, 3, 4})).(*ReaderAt)
	if last() != r {
		t.Fatal("last() does not return the wrapper just built")
	}
	buf := make([]byte, 1)
	r.ReadAt(buf, 0)
	if last().InjectedTransient() != 1 {
		t.Fatalf("scraped injected count = %d, want 1", last().InjectedTransient())
	}
}

// residentSource serves the forms of an already-encoded column.
type residentSource struct{ col *blocked.Column }

func (s residentSource) BlockForm(i int) (*core.Form, error) { return s.col.Blocks[i].Form, nil }

func TestFaultBlockSource(t *testing.T) {
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	col, err := blocked.Encode(vals, blocked.EncodeOptions{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	failErr := errors.New("boom")
	bs := NewBlockSource(residentSource{col}, map[int]error{1: failErr}, map[int]bool{2: true})
	if _, err := bs.BlockForm(0); err != nil {
		t.Fatalf("block 0 should pass through: %v", err)
	}
	if _, err := bs.BlockForm(1); !errors.Is(err, failErr) {
		t.Fatalf("block 1: want injected error, got %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("block 2 fetch did not panic")
			}
			if !strings.Contains(r.(string), "injected panic") {
				t.Fatalf("unexpected panic payload %v", r)
			}
		}()
		bs.BlockForm(2)
	}()
	if _, ok := bs.Restore().(residentSource); !ok {
		t.Fatal("Restore did not return the wrapped source")
	}
	if err := bs.Close(); err != nil {
		t.Fatalf("Close on non-closer inner: %v", err)
	}
	var _ io.Closer = bs
}

func TestFaultReaderFlipMaxReads(t *testing.T) {
	data := []byte{0x10, 0x20, 0x30, 0x40}
	f := NewReaderAt(bytes.NewReader(data), Config{FlipOffsets: []int64{2}, FlipMaxReads: 2})
	buf := make([]byte, 4)
	// The first FlipMaxReads views of the offset lie...
	for i := 0; i < 2; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if buf[2] != 0x31 {
			t.Fatalf("read %d: offset 2 read as %#x, want flipped (0x31)", i+1, buf[2])
		}
	}
	// ...then the true bytes come back, modeling transient path
	// corruption over a healthy disk.
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if buf[2] != 0x30 {
			t.Fatalf("post-budget read %d: offset 2 read as %#x, want clean (0x30)", i+1, buf[2])
		}
	}
	if f.FlippedBits() != 2 {
		t.Fatalf("FlippedBits = %d, want 2", f.FlippedBits())
	}
	// A read that never covers the offset spends no budget.
	g := NewReaderAt(bytes.NewReader(data), Config{FlipOffsets: []int64{2}, FlipMaxReads: 1})
	if _, err := g.ReadAt(buf[:2], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[2] != 0x31 {
		t.Fatalf("budget spent by a non-covering read: %#x", buf[2])
	}
}
