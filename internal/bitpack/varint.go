package bitpack

import (
	"encoding/binary"
	"fmt"
)

// VarintEncode encodes a signed column as zigzagged LEB128 varints.
// It realizes the byte-granularity end of the paper's variable-width
// spectrum: each element costs ⌈w/7⌉ bytes where w is its zigzagged
// bit width.
func VarintEncode(src []int64) []byte {
	out := make([]byte, 0, len(src))
	for _, v := range src {
		out = binary.AppendUvarint(out, Zigzag(v))
	}
	return out
}

// VarintDecode decodes n zigzagged LEB128 varints from data.
func VarintDecode(data []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	pos := 0
	for i := 0; i < n; i++ {
		u, sz := binary.Uvarint(data[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("%w: varint %d of %d at byte %d", ErrCorrupt, i, n, pos)
		}
		out[i] = Unzigzag(u)
		pos += sz
	}
	return out, nil
}

// VarintSize returns the encoded size in bytes of src under
// VarintEncode without materializing the encoding.
func VarintSize(src []int64) int {
	total := 0
	for _, v := range src {
		u := Zigzag(v)
		n := 1
		for u >= 0x80 {
			u >>= 7
			n++
		}
		total += n
	}
	return total
}

// VarintEncodeUnsigned encodes a non-negative column without the
// zigzag step (for monotone position columns whose values are known
// non-negative, the zigzag doubling would waste a bit per element).
func VarintEncodeUnsigned(src []int64) ([]byte, error) {
	out := make([]byte, 0, len(src))
	for i, v := range src {
		if v < 0 {
			return nil, fmt.Errorf("bitpack: VarintEncodeUnsigned: negative value %d at position %d", v, i)
		}
		out = binary.AppendUvarint(out, uint64(v))
	}
	return out, nil
}

// VarintDecodeUnsigned decodes n unsigned varints from data.
func VarintDecodeUnsigned(data []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	pos := 0
	for i := 0; i < n; i++ {
		u, sz := binary.Uvarint(data[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("%w: varint %d of %d at byte %d", ErrCorrupt, i, n, pos)
		}
		out[i] = int64(u)
		pos += sz
	}
	return out, nil
}
