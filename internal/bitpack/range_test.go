package bitpack

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxWidth(t *testing.T) {
	if w := MaxWidth(nil); w != 0 {
		t.Fatalf("MaxWidth(nil) = %d", w)
	}
	if w := MaxWidth([]uint64{0, 0}); w != 0 {
		t.Fatalf("MaxWidth(zeros) = %d", w)
	}
	if w := MaxWidth([]uint64{1, 255, 3}); w != 8 {
		t.Fatalf("MaxWidth = %d, want 8", w)
	}
	if w := MaxWidth([]uint64{^uint64(0)}); w != 64 {
		t.Fatalf("MaxWidth(max) = %d", w)
	}
}

func TestUnpackRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, w := range []uint{0, 1, 5, 13, 31, 64} {
		src := randomValues(rng, 300, w)
		packed, err := Pack(src, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for _, span := range [][2]int{{0, 0}, {0, 1}, {0, 300}, {17, 64}, {63, 66}, {299, 1}} {
			start, count := span[0], span[1]
			got, err := UnpackRange(packed, start, count, w)
			if err != nil {
				t.Fatalf("w=%d [%d,+%d): %v", w, start, count, err)
			}
			for i := 0; i < count; i++ {
				if got[i] != src[start+i] {
					t.Fatalf("w=%d [%d,+%d): element %d = %d, want %d",
						w, start, count, i, got[i], src[start+i])
				}
			}
		}
	}
}

func TestUnpackRangeErrors(t *testing.T) {
	packed, err := Pack([]uint64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnpackRange(packed, -1, 1, 4); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := UnpackRange(packed, 0, -1, 4); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := UnpackRange(packed, 0, 1, 65); !errors.Is(err, ErrWidth) {
		t.Fatalf("width err = %v", err)
	}
	if _, err := UnpackRange(packed, 2, 50, 4); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overrun err = %v", err)
	}
}

func TestUnpackRangeMatchesFullUnpackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	check := func(rawW uint8, rawStart, rawCount uint16) bool {
		w := uint(rawW % 65)
		src := randomValues(rng, 200, w)
		packed, err := Pack(src, w)
		if err != nil {
			return false
		}
		start := int(rawStart) % 200
		count := int(rawCount) % (200 - start)
		full, err := Unpack(packed, 200, w)
		if err != nil {
			return false
		}
		part, err := UnpackRange(packed, start, count, w)
		if err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			if part[i] != full[start+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderPos(t *testing.T) {
	bw := NewBitWriter(0)
	bw.WriteBits(0b11, 2)
	br := NewBitReader(bw.Words())
	if br.Pos() != 0 {
		t.Fatalf("initial pos = %d", br.Pos())
	}
	if _, err := br.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	if br.Pos() != 2 {
		t.Fatalf("pos after read = %d", br.Pos())
	}
}
