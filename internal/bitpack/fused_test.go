package bitpack

import (
	"math/rand"
	"testing"
)

// refCount is the reference predicate evaluation on unpacked values.
func refCount(vals []uint64, start, count int, lo, hi uint64) int64 {
	var n int64
	for _, v := range vals[start : start+count] {
		if v >= lo && v <= hi {
			n++
		}
	}
	return n
}

// TestFusedRangeAgainstUnpack cross-checks CountRangeU and
// SelectRangeU against unpack-then-compare for every width class,
// aligned and unaligned ranges, and boundary-heavy value ranges.
func TestFusedRangeAgainstUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []uint{0, 1, 3, 7, 8, 13, 20, 31, 32, 33, 63, 64} {
		n := 500
		vals := randomValues(rng, n, w)
		packed, err := Pack(vals, w)
		if err != nil {
			t.Fatal(err)
		}
		ranges := [][2]int{{0, n}, {0, 64}, {64, 128}, {17, 300}, {63, 66}, {499, 1}, {100, 0}}
		for _, r := range ranges {
			start, count := r[0], r[1]
			var lo, hi uint64
			if w > 0 {
				lo = vals[start%n] / 2
				hi = lo + Mask(w)/3 + 1
			}
			for _, bounds := range [][2]uint64{{lo, hi}, {0, Mask(w)}, {1, 0}, {Mask(w), Mask(w)}} {
				lo, hi := bounds[0], bounds[1]
				want := int64(0)
				if hi >= lo {
					want = refCount(vals, start, count, lo, hi)
				}
				got, err := CountRangeU(packed, start, count, w, lo, hi)
				if err != nil {
					t.Fatalf("w=%d [%d,+%d) [%d,%d]: %v", w, start, count, lo, hi, err)
				}
				if got != want {
					t.Fatalf("w=%d [%d,+%d) [%d,%d]: CountRangeU = %d, want %d", w, start, count, lo, hi, got, want)
				}
				// Select must agree bit-for-bit with the predicate.
				matched := make([]bool, n)
				lastPos := -1
				err = SelectRangeU(packed, start, count, w, lo, hi, func(pos int, mask uint64) {
					if pos <= lastPos {
						t.Fatalf("w=%d: emit positions not ascending: %d after %d", w, pos, lastPos)
					}
					lastPos = pos
					for b := 0; b < 64; b++ {
						if mask&(1<<b) != 0 {
							matched[pos+b] = true
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				var selCount int64
				for i, m := range matched {
					inRange := hi >= lo && i >= start && i < start+count && vals[i] >= lo && vals[i] <= hi
					if m != inRange {
						t.Fatalf("w=%d [%d,+%d) [%d,%d]: position %d matched=%v want %v",
							w, start, count, lo, hi, i, m, inRange)
					}
					if m {
						selCount++
					}
				}
				if selCount != got {
					t.Fatalf("w=%d: select found %d, count found %d", w, selCount, got)
				}
			}
		}
	}
}

// TestFusedRangeErrors covers argument validation.
func TestFusedRangeErrors(t *testing.T) {
	if _, err := CountRangeU(nil, 0, 1, 65, 0, 1); err == nil {
		t.Fatal("width 65 must error")
	}
	if _, err := CountRangeU(nil, -1, 1, 4, 0, 1); err == nil {
		t.Fatal("negative start must error")
	}
	if _, err := CountRangeU([]uint64{0}, 0, 100, 8, 0, 1); err == nil {
		t.Fatal("short payload must error")
	}
	if err := SelectRangeU([]uint64{0}, 0, 100, 8, 0, 1, func(int, uint64) {}); err == nil {
		t.Fatal("short payload must error")
	}
	// Empty and inverted ranges are fine and find nothing.
	if got, err := CountRangeU(nil, 0, 0, 8, 0, 1); err != nil || got != 0 {
		t.Fatalf("empty range: %d, %v", got, err)
	}
}

// BenchmarkFusedCount measures the fused count kernel against
// unpack-then-compare at representative widths.
func BenchmarkFusedCount(b *testing.B) {
	const n = 1 << 16
	for _, w := range []uint{8, 20} {
		rng := rand.New(rand.NewSource(3))
		vals := randomValues(rng, n, w)
		packed, _ := Pack(vals, w)
		lo, hi := Mask(w)/4, Mask(w)/2
		b.Run("fused-w"+string(rune('0'+w/10))+string(rune('0'+w%10)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CountRangeU(packed, 0, n, w, lo, hi); err != nil {
					b.Fatal(err)
				}
			}
		})
		dst := make([]uint64, n)
		b.Run("unpack-compare-w"+string(rune('0'+w/10))+string(rune('0'+w%10)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := UnpackInto(dst, packed, w); err != nil {
					b.Fatal(err)
				}
				var c int64
				for _, v := range dst {
					if v >= lo && v <= hi {
						c++
					}
				}
			}
		})
	}
}
