package bitpack

import (
	"fmt"
	"math/bits"
)

// The Elias codes realize the paper's bit-metric exactly: under
// d(x, y) = ⌈log2|x−y|+1⌉ the cost of an element is its own bit
// width, and a per-element variable-width code spends approximately
// that many bits (plus the logarithmic self-delimiting overhead).
//
// Both codes operate on non-negative values; encoders add one so that
// zero is representable (the classical codes start at 1).

// EliasGammaEncode encodes each v ≥ 0 as gamma(v+1): a unary length
// prefix followed by the value's low bits.
func EliasGammaEncode(src []int64) ([]uint64, error) {
	bw := NewBitWriter(len(src) * 8)
	for i, v := range src {
		if v < 0 {
			return nil, fmt.Errorf("bitpack: EliasGammaEncode: negative value %d at position %d (zigzag first)", v, i)
		}
		u := uint64(v) + 1
		nb := uint(bits.Len64(u)) // number of bits in u, ≥ 1
		bw.WriteUnary(nb - 1)
		bw.WriteBits(u&Mask(nb-1), nb-1)
	}
	return bw.Words(), nil
}

// EliasGammaDecode decodes n gamma codes.
func EliasGammaDecode(words []uint64, n int) ([]int64, error) {
	br := NewBitReader(words)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		q, err := br.ReadUnary()
		if err != nil {
			return nil, fmt.Errorf("gamma code %d of %d: %w", i, n, err)
		}
		low, err := br.ReadBits(q)
		if err != nil {
			return nil, fmt.Errorf("gamma code %d of %d: %w", i, n, err)
		}
		out[i] = int64(((uint64(1) << q) | low) - 1)
	}
	return out, nil
}

// EliasGammaSizeBits returns the exact encoded size in bits of src
// under EliasGammaEncode.
func EliasGammaSizeBits(src []int64) (uint64, error) {
	var total uint64
	for i, v := range src {
		if v < 0 {
			return 0, fmt.Errorf("bitpack: EliasGammaSizeBits: negative value %d at position %d", v, i)
		}
		nb := uint64(bits.Len64(uint64(v) + 1))
		total += 2*nb - 1
	}
	return total, nil
}

// EliasDeltaEncode encodes each v ≥ 0 as delta(v+1): the bit length is
// itself gamma-coded, making large values cheaper than under gamma.
func EliasDeltaEncode(src []int64) ([]uint64, error) {
	bw := NewBitWriter(len(src) * 8)
	for i, v := range src {
		if v < 0 {
			return nil, fmt.Errorf("bitpack: EliasDeltaEncode: negative value %d at position %d (zigzag first)", v, i)
		}
		u := uint64(v) + 1
		nb := uint(bits.Len64(u))
		lb := uint(bits.Len64(uint64(nb)))
		bw.WriteUnary(lb - 1)
		bw.WriteBits(uint64(nb)&Mask(lb-1), lb-1)
		bw.WriteBits(u&Mask(nb-1), nb-1)
	}
	return bw.Words(), nil
}

// EliasDeltaDecode decodes n delta codes.
func EliasDeltaDecode(words []uint64, n int) ([]int64, error) {
	br := NewBitReader(words)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		q, err := br.ReadUnary()
		if err != nil {
			return nil, fmt.Errorf("delta code %d of %d: %w", i, n, err)
		}
		lenLow, err := br.ReadBits(q)
		if err != nil {
			return nil, fmt.Errorf("delta code %d of %d: %w", i, n, err)
		}
		nb := uint((uint64(1) << q) | lenLow)
		if nb == 0 || nb > 64 {
			return nil, fmt.Errorf("%w: delta code %d declares %d-bit value", ErrCorrupt, i, nb)
		}
		low, err := br.ReadBits(nb - 1)
		if err != nil {
			return nil, fmt.Errorf("delta code %d of %d: %w", i, n, err)
		}
		out[i] = int64(((uint64(1) << (nb - 1)) | low) - 1)
	}
	return out, nil
}

// EliasDeltaSizeBits returns the exact encoded size in bits of src
// under EliasDeltaEncode.
func EliasDeltaSizeBits(src []int64) (uint64, error) {
	var total uint64
	for i, v := range src {
		if v < 0 {
			return 0, fmt.Errorf("bitpack: EliasDeltaSizeBits: negative value %d at position %d", v, i)
		}
		nb := uint64(bits.Len64(uint64(v) + 1))
		lb := uint64(bits.Len64(nb))
		total += (2*lb - 1) + (nb - 1)
	}
	return total, nil
}
