package bitpack

import (
	"errors"
	"fmt"
	"math/bits"
)

// BlockLen is the number of values per packed block. At width w a
// block occupies exactly w 64-bit words.
const BlockLen = 64

// ErrWidth is returned when a bit width outside [0, 64] is requested.
var ErrWidth = errors.New("bitpack: width out of range [0, 64]")

// ErrOverflow is returned when a value does not fit in the requested
// width.
var ErrOverflow = errors.New("bitpack: value wider than requested width")

// ErrCorrupt is returned when a packed payload is shorter than its
// declared logical length requires.
var ErrCorrupt = errors.New("bitpack: packed payload too short")

// Width returns the number of bits needed to represent v: 0 for 0,
// otherwise ⌈log2(v+1)⌉.
func Width(v uint64) uint {
	return uint(bits.Len64(v))
}

// MaxWidth returns the width of the widest value in src (0 for an
// empty column).
func MaxWidth(src []uint64) uint {
	var m uint64
	for _, v := range src {
		m |= v
	}
	return Width(m)
}

// Mask returns a mask with the w low bits set. Mask(64) is all ones;
// Mask(0) is zero.
func Mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// PackedWords returns how many 64-bit words packing n values at width
// w occupies.
func PackedWords(n int, w uint) int {
	if n <= 0 || w == 0 {
		return 0
	}
	totalBits := uint64(n) * uint64(w)
	return int((totalBits + 63) / 64)
}

// PackedBytes returns the payload size in bytes for n values at width
// w (a whole number of 64-bit words).
func PackedBytes(n int, w uint) int {
	return PackedWords(n, w) * 8
}

// Pack packs src at width w into a fresh word slice. Values wider
// than w are reported as ErrOverflow (packing never silently
// truncates: the NS scheme chooses w from the data, and anything else
// is a bug or corruption).
func Pack(src []uint64, w uint) ([]uint64, error) {
	if w > 64 {
		return nil, fmt.Errorf("%w: %d", ErrWidth, w)
	}
	if w == 0 {
		for i, v := range src {
			if v != 0 {
				return nil, fmt.Errorf("%w: value %d at position %d, width 0", ErrOverflow, v, i)
			}
		}
		return []uint64{}, nil
	}
	mask := Mask(w)
	for i, v := range src {
		if v&^mask != 0 {
			return nil, fmt.Errorf("%w: value %d at position %d, width %d", ErrOverflow, v, i, w)
		}
	}
	dst := make([]uint64, PackedWords(len(src), w))
	i := 0
	out := 0
	// Full blocks through the unrolled kernels.
	for ; i+BlockLen <= len(src); i += BlockLen {
		packBlock(src[i:i+BlockLen], w, dst[out:out+int(w)])
		out += int(w)
	}
	// Generic bit-granular tail.
	if i < len(src) {
		packGeneric(src[i:], w, dst, uint64(i)*uint64(w))
	}
	return dst, nil
}

// PackInto packs src at width w into dst, which must hold exactly
// PackedWords(len(src), w) words. It is the buffer-reusing form of
// Pack for callers (like the VNS compressor) that concatenate several
// packings into one preallocated payload. dst is fully overwritten.
func PackInto(dst, src []uint64, w uint) error {
	if w > 64 {
		return fmt.Errorf("%w: %d", ErrWidth, w)
	}
	if need := PackedWords(len(src), w); len(dst) != need {
		return fmt.Errorf("bitpack: PackInto dst holds %d words, need %d", len(dst), need)
	}
	if w == 0 {
		for i, v := range src {
			if v != 0 {
				return fmt.Errorf("%w: value %d at position %d, width 0", ErrOverflow, v, i)
			}
		}
		return nil
	}
	mask := Mask(w)
	for i, v := range src {
		if v&^mask != 0 {
			return fmt.Errorf("%w: value %d at position %d, width %d", ErrOverflow, v, i, w)
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	i := 0
	out := 0
	for ; i+BlockLen <= len(src); i += BlockLen {
		packBlock(src[i:i+BlockLen], w, dst[out:out+int(w)])
		out += int(w)
	}
	if i < len(src) {
		packGeneric(src[i:], w, dst, uint64(i)*uint64(w))
	}
	return nil
}

// Unpack expands n values of width w from packed into a fresh column.
func Unpack(packed []uint64, n int, w uint) ([]uint64, error) {
	dst := make([]uint64, n)
	if err := UnpackInto(dst, packed, w); err != nil {
		return nil, err
	}
	return dst, nil
}

// UnpackInto expands len(dst) values of width w from packed into dst.
func UnpackInto(dst, packed []uint64, w uint) error {
	if w > 64 {
		return fmt.Errorf("%w: %d", ErrWidth, w)
	}
	n := len(dst)
	if w == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	if len(packed) < PackedWords(n, w) {
		return fmt.Errorf("%w: have %d words, need %d for %d values at width %d",
			ErrCorrupt, len(packed), PackedWords(n, w), n, w)
	}
	i := 0
	in := 0
	for ; i+BlockLen <= n; i += BlockLen {
		unpackBlock(packed[in:in+int(w)], w, dst[i:i+BlockLen])
		in += int(w)
	}
	if i < n {
		unpackGeneric(dst[i:], packed, w, uint64(i)*uint64(w))
	}
	return nil
}

// UnpackRange expands values [start, start+count) of width w from
// packed without touching the rest of the column. Segment-pruned
// scans use it to decode only candidate segments.
func UnpackRange(packed []uint64, start, count int, w uint) ([]uint64, error) {
	if w > 64 {
		return nil, fmt.Errorf("%w: %d", ErrWidth, w)
	}
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("bitpack: UnpackRange: negative range [%d, +%d)", start, count)
	}
	dst := make([]uint64, count)
	if w == 0 || count == 0 {
		return dst, nil
	}
	if len(packed) < PackedWords(start+count, w) {
		return nil, fmt.Errorf("%w: have %d words, need %d for range end %d at width %d",
			ErrCorrupt, len(packed), PackedWords(start+count, w), start+count, w)
	}
	unpackGeneric(dst, packed, w, uint64(start)*uint64(w))
	return dst, nil
}

// packGeneric packs src at width w into dst starting at absolute bit
// offset bitPos. Values are assumed pre-validated against the mask.
func packGeneric(src []uint64, w uint, dst []uint64, bitPos uint64) {
	for _, v := range src {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		dst[word] |= v << off
		if off+w > 64 {
			dst[word+1] |= v >> (64 - off)
		}
		bitPos += uint64(w)
	}
}

// unpackGeneric unpacks len(dst) values of width w from src starting
// at absolute bit offset bitPos.
func unpackGeneric(dst []uint64, src []uint64, w uint, bitPos uint64) {
	mask := Mask(w)
	for i := range dst {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := src[word] >> off
		if off+w > 64 {
			v |= src[word+1] << (64 - off)
		}
		dst[i] = v & mask
		bitPos += uint64(w)
	}
}

// packBlock packs exactly BlockLen values at width w (1..64) into
// dst[0:w] using the generated kernels.
func packBlock(src []uint64, w uint, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	packFuncs[w](src, dst)
}

// unpackBlock unpacks exactly BlockLen values at width w (1..64) from
// src[0:w] into dst using the generated kernels.
func unpackBlock(src []uint64, w uint, dst []uint64) {
	unpackFuncs[w](src, dst)
}

// Zigzag maps a signed value to an unsigned one with small absolute
// values mapping to small results: 0→0, -1→1, 1→2, -2→3, …
func Zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// ZigzagSlice maps a signed column into a fresh unsigned column.
func ZigzagSlice(src []int64) []uint64 {
	out := make([]uint64, len(src))
	for i, v := range src {
		out[i] = Zigzag(v)
	}
	return out
}

// UnzigzagSlice inverts ZigzagSlice into a fresh signed column.
func UnzigzagSlice(src []uint64) []int64 {
	out := make([]int64, len(src))
	for i, v := range src {
		out[i] = Unzigzag(v)
	}
	return out
}

// UnzigzagInto writes the zigzag-decoded values of src into dst,
// which must have the same length.
func UnzigzagInto(dst []int64, src []uint64) {
	for i, v := range src {
		dst[i] = Unzigzag(v)
	}
}

// SignedInto reinterprets src as signed bit patterns into dst, which
// must have the same length.
func SignedInto(dst []int64, src []uint64) {
	for i, v := range src {
		dst[i] = int64(v)
	}
}

// UnsignedSlice reinterprets a signed column as unsigned bit patterns
// (no zigzag); callers use it when values are known non-negative.
func UnsignedSlice(src []int64) []uint64 {
	out := make([]uint64, len(src))
	for i, v := range src {
		out[i] = uint64(v)
	}
	return out
}

// SignedSlice reinterprets an unsigned column as signed bit patterns.
func SignedSlice(src []uint64) []int64 {
	out := make([]int64, len(src))
	for i, v := range src {
		out[i] = int64(v)
	}
	return out
}
