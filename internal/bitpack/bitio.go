package bitpack

import "fmt"

// BitWriter accumulates values bit-by-bit, least significant bit
// first, into a word stream. It backs the Elias codes and any other
// per-element variable-width encoding.
type BitWriter struct {
	words []uint64
	// nbits is the total number of bits written so far.
	nbits uint64
}

// NewBitWriter returns an empty writer with capacity for sizeHint
// bits.
func NewBitWriter(sizeHint int) *BitWriter {
	return &BitWriter{words: make([]uint64, 0, (sizeHint+63)/64)}
}

// WriteBits appends the w low bits of v. w must be at most 64.
func (bw *BitWriter) WriteBits(v uint64, w uint) {
	if w == 0 {
		return
	}
	v &= Mask(w)
	off := uint(bw.nbits & 63)
	if off == 0 {
		bw.words = append(bw.words, v)
	} else {
		bw.words[len(bw.words)-1] |= v << off
		if off+w > 64 {
			bw.words = append(bw.words, v>>(64-off))
		}
	}
	bw.nbits += uint64(w)
}

// WriteUnary appends q zero bits followed by a one bit — the unary
// prefix of the Elias gamma code.
func (bw *BitWriter) WriteUnary(q uint) {
	for q >= 63 {
		bw.WriteBits(0, 63)
		q -= 63
	}
	bw.WriteBits(1<<q, q+1)
}

// Len returns the number of bits written.
func (bw *BitWriter) Len() uint64 { return bw.nbits }

// Words returns the backing word stream; the final word is
// zero-padded.
func (bw *BitWriter) Words() []uint64 { return bw.words }

// BitReader consumes a word stream produced by BitWriter.
type BitReader struct {
	words []uint64
	pos   uint64 // bit cursor
}

// NewBitReader returns a reader over words.
func NewBitReader(words []uint64) *BitReader {
	return &BitReader{words: words}
}

// ReadBits consumes and returns the next w bits. w must be at most 64.
func (br *BitReader) ReadBits(w uint) (uint64, error) {
	if w == 0 {
		return 0, nil
	}
	if br.pos+uint64(w) > uint64(len(br.words))*64 {
		return 0, fmt.Errorf("%w: bit read past end (pos %d, want %d bits, have %d)",
			ErrCorrupt, br.pos, w, uint64(len(br.words))*64)
	}
	word := br.pos >> 6
	off := uint(br.pos & 63)
	v := br.words[word] >> off
	if off+w > 64 {
		v |= br.words[word+1] << (64 - off)
	}
	br.pos += uint64(w)
	return v & Mask(w), nil
}

// ReadUnary consumes zero bits up to and including the terminating one
// bit and returns the count of zeros.
func (br *BitReader) ReadUnary() (uint, error) {
	var q uint
	for {
		b, err := br.ReadBits(1)
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return q, nil
		}
		q++
		if q > 64*uint(len(br.words)) {
			return 0, fmt.Errorf("%w: runaway unary code", ErrCorrupt)
		}
	}
}

// Pos returns the current bit cursor.
func (br *BitReader) Pos() uint64 { return br.pos }
