package bitpack

import (
	"testing"
	"testing/quick"
)

func TestHistogramOf(t *testing.T) {
	h := HistogramOf([]uint64{0, 1, 1, 3, 8})
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts[:5])
	}
	if h.MaxWidth() != 4 {
		t.Fatalf("MaxWidth = %d", h.MaxWidth())
	}
}

func TestWidthCovering(t *testing.T) {
	// 90 narrow values (width ≤ 4), 10 wide (width 20).
	src := make([]uint64, 100)
	for i := 0; i < 90; i++ {
		src[i] = 10
	}
	for i := 90; i < 100; i++ {
		src[i] = 1 << 19
	}
	h := HistogramOf(src)
	if w := h.WidthCovering(0.9); w != 4 {
		t.Fatalf("WidthCovering(0.9) = %d", w)
	}
	if w := h.WidthCovering(1.0); w != 20 {
		t.Fatalf("WidthCovering(1.0) = %d", w)
	}
	if w := h.WidthCovering(-1); w != 0 {
		t.Fatalf("WidthCovering(-1) = %d", w)
	}
	var empty WidthHistogram
	if w := empty.WidthCovering(0.5); w != 0 {
		t.Fatalf("empty WidthCovering = %d", w)
	}
}

func TestExceptionsAt(t *testing.T) {
	h := HistogramOf([]uint64{1, 3, 8, 1 << 30})
	if e := h.ExceptionsAt(4); e != 1 {
		t.Fatalf("ExceptionsAt(4) = %d", e)
	}
	if e := h.ExceptionsAt(64); e != 0 {
		t.Fatalf("ExceptionsAt(64) = %d", e)
	}
	if e := h.ExceptionsAt(0); e != 4 {
		t.Fatalf("ExceptionsAt(0) = %d", e)
	}
}

func TestBestPatchWidthSkewed(t *testing.T) {
	// 990 values of width ≤ 8, 10 outliers of width 40: patching at 8
	// costs 1000·8 + 10·96 < packing everything at 40.
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = uint64(i % 200)
	}
	for i := 0; i < 10; i++ {
		src[i*100] = 1 << 39
	}
	h := HistogramOf(src)
	w, exc := h.BestPatchWidth(96)
	if w >= 40 {
		t.Fatalf("BestPatchWidth chose %d, wanted narrow", w)
	}
	if exc < 10 {
		t.Fatalf("exceptions = %d, want at least the 10 outliers", exc)
	}
	if got := h.TotalBitsAt(w, 96); got >= h.TotalBitsAt(40, 96) {
		t.Fatalf("patched cost %d not below unpatched %d", got, h.TotalBitsAt(40, 96))
	}
}

func TestBestPatchWidthUniform(t *testing.T) {
	// All values the same width: no patching should win.
	src := make([]uint64, 256)
	for i := range src {
		src[i] = 200 + uint64(i%50) // width 8
	}
	h := HistogramOf(src)
	w, exc := h.BestPatchWidth(96)
	if w != 8 || exc != 0 {
		t.Fatalf("uniform data: width %d exceptions %d, want 8, 0", w, exc)
	}
}

func TestBestPatchWidthIsOptimalProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		src := make([]uint64, len(raw))
		for i, r := range raw {
			src[i] = uint64(r)
		}
		h := HistogramOf(src)
		w, _ := h.BestPatchWidth(96)
		best := h.TotalBitsAt(w, 96)
		for cand := uint(0); cand <= h.MaxWidth(); cand++ {
			if h.TotalBitsAt(cand, 96) < best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBestPatchWidthEmpty(t *testing.T) {
	var h WidthHistogram
	w, exc := h.BestPatchWidth(96)
	if w != 0 || exc != 0 {
		t.Fatalf("empty = %d, %d", w, exc)
	}
}
