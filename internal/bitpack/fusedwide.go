package bitpack

import (
	"fmt"
	"math/bits"
)

// This file exposes the wide kernels emitted for the dict/RLE/RPE/
// model scheme family (DESIGN.md §1.12): fused sums, fused
// filter+sum, dictionary gathers, and the zigzag variants of the
// range scans in fused.go. Like the range scans, every entry point
// processes full 64-value blocks through generated kernels and the
// unaligned head and tail bit-granularly, allocating nothing.
//
// Sums are wrapping (mod 2^64); callers accumulate into int64 with
// two's-complement wrap, matching the documented Column.Sum
// semantics. The ZZ entry points take signed bounds and compare in
// the signed domain — the zigzag mapping does not preserve unsigned
// order, so these payloads need their own kernels rather than a
// range translation.

// SumU sums the values at positions [start, start+count) of the
// packed width-w payload, wrapping mod 2^64.
func SumU(packed []uint64, start, count int, w uint) (uint64, error) {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return 0, err
	}
	if count == 0 || w == 0 {
		return 0, nil
	}
	end := start + count
	p := start
	var total uint64
	if head := headLen(p, end); head > 0 {
		total += scalarSum(packed, p, head, w, false)
		p += head
	}
	kernel := sumFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		total += kernel(packed[b*int(w) : (b+1)*int(w)])
	}
	if p < end {
		total += scalarSum(packed, p, end-p, w, false)
	}
	return total, nil
}

// SumZZ sums the zigzag-decoded signed values at positions
// [start, start+count) of the packed width-w payload, wrapping.
func SumZZ(packed []uint64, start, count int, w uint) (int64, error) {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return 0, err
	}
	if count == 0 || w == 0 {
		return 0, nil
	}
	end := start + count
	p := start
	var total uint64
	if head := headLen(p, end); head > 0 {
		total += scalarSum(packed, p, head, w, true)
		p += head
	}
	kernel := sumZZFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		total += kernel(packed[b*int(w) : (b+1)*int(w)])
	}
	if p < end {
		total += scalarSum(packed, p, end-p, w, true)
	}
	return int64(total), nil
}

// SumRangeU sums and counts the values at positions
// [start, start+count) that lie in [lo, hi] (unsigned), fusing the
// predicate and the aggregate into one pass over the packed words.
func SumRangeU(packed []uint64, start, count int, w uint, lo, hi uint64) (sum uint64, n int64, err error) {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return 0, 0, err
	}
	if count == 0 || hi < lo {
		return 0, 0, nil
	}
	span := hi - lo
	end := start + count
	p := start
	if head := headLen(p, end); head > 0 {
		s, c := scalarSumRange(packed, p, head, w, lo, span, false)
		sum += s
		n += int64(c)
		p += head
	}
	kernel := sumInRangeFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		s, c := kernel(packed[b*int(w):(b+1)*int(w)], lo, span)
		sum += s
		n += int64(c)
	}
	if p < end {
		s, c := scalarSumRange(packed, p, end-p, w, lo, span, false)
		sum += s
		n += int64(c)
	}
	return sum, n, nil
}

// SumRangeZZ is SumRangeU for zigzag payloads: bounds are signed and
// the returned sum is the wrapping int64 sum of the decoded values
// inside [lo, hi].
func SumRangeZZ(packed []uint64, start, count int, w uint, lo, hi int64) (sum int64, n int64, err error) {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return 0, 0, err
	}
	if count == 0 || hi < lo {
		return 0, 0, nil
	}
	ulo := uint64(lo)
	span := uint64(hi) - uint64(lo)
	end := start + count
	p := start
	var total uint64
	if head := headLen(p, end); head > 0 {
		s, c := scalarSumRange(packed, p, head, w, ulo, span, true)
		total += s
		n += int64(c)
		p += head
	}
	kernel := sumInRangeZZFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		s, c := kernel(packed[b*int(w):(b+1)*int(w)], ulo, span)
		total += s
		n += int64(c)
	}
	if p < end {
		s, c := scalarSumRange(packed, p, end-p, w, ulo, span, true)
		total += s
		n += int64(c)
	}
	return int64(total), n, nil
}

// CountRangeZZ counts the zigzag-decoded values at positions
// [start, start+count) that lie in the signed range [lo, hi].
func CountRangeZZ(packed []uint64, start, count int, w uint, lo, hi int64) (int64, error) {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return 0, err
	}
	if count == 0 || hi < lo {
		return 0, nil
	}
	ulo := uint64(lo)
	span := uint64(hi) - uint64(lo)
	end := start + count
	p := start
	var total int64
	if head := headLen(p, end); head > 0 {
		total += int64(bits.OnesCount64(scalarRangeMaskZZ(packed, p, head, w, ulo, span)))
		p += head
	}
	kernel := countInRangeZZFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		total += int64(kernel(packed[b*int(w):(b+1)*int(w)], ulo, span))
	}
	if p < end {
		total += int64(bits.OnesCount64(scalarRangeMaskZZ(packed, p, end-p, w, ulo, span)))
	}
	return total, nil
}

// SelectRangeZZ is SelectRangeU for zigzag payloads: signed bounds,
// same emit contract (ascending, non-overlapping, non-zero masks).
func SelectRangeZZ(packed []uint64, start, count int, w uint, lo, hi int64, emit func(pos int, mask uint64)) error {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return err
	}
	if count == 0 || hi < lo {
		return nil
	}
	ulo := uint64(lo)
	span := uint64(hi) - uint64(lo)
	end := start + count
	p := start
	if head := headLen(p, end); head > 0 {
		if m := scalarRangeMaskZZ(packed, p, head, w, ulo, span); m != 0 {
			emit(p, m)
		}
		p += head
	}
	kernel := selectInRangeZZFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		if m := kernel(packed[b*int(w):(b+1)*int(w)], ulo, span); m != 0 {
			emit(p, m)
		}
	}
	if p < end {
		if m := scalarRangeMaskZZ(packed, p, end-p, w, ulo, span); m != 0 {
			emit(p, m)
		}
	}
	return nil
}

// GatherU decodes the codes at positions [start, start+count) of the
// packed width-w payload and gathers tab through them into
// dst[0:count] — the dict decode loop fused into the unpack. A code
// outside tab reports ErrCorrupt. Gather kernels exist for widths up
// to 32 (a dictionary is at most block-sized); wider widths report
// ErrWidth.
func GatherU(packed []uint64, start, count int, w uint, tab, dst []int64) error {
	if w > 32 {
		return fmt.Errorf("%w: gather width %d exceeds 32", ErrWidth, w)
	}
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return err
	}
	if count == 0 {
		return nil
	}
	if len(dst) < count {
		return fmt.Errorf("%w: gather dst holds %d of %d values", ErrCorrupt, len(dst), count)
	}
	if w == 0 {
		if len(tab) == 0 {
			return fmt.Errorf("%w: dict code 0 outside table of 0 entries", ErrCorrupt)
		}
		v := tab[0]
		for i := 0; i < count; i++ {
			dst[i] = v
		}
		return nil
	}
	end := start + count
	p := start
	if head := headLen(p, end); head > 0 {
		if !scalarGather(packed, p, head, w, tab, dst[:head]) {
			return fmt.Errorf("%w: dict code outside table of %d entries", ErrCorrupt, len(tab))
		}
		p += head
	}
	kernel := gatherFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		if !kernel(packed[b*int(w):(b+1)*int(w)], tab, dst[p-start:]) {
			return fmt.Errorf("%w: dict code outside table of %d entries", ErrCorrupt, len(tab))
		}
	}
	if p < end {
		if !scalarGather(packed, p, end-p, w, tab, dst[p-start:]) {
			return fmt.Errorf("%w: dict code outside table of %d entries", ErrCorrupt, len(tab))
		}
	}
	return nil
}

// zigzag decodes one zigzag word into the unsigned image of its
// signed value.
func zigzag(x uint64) uint64 {
	return uint64(int64(x>>1) ^ -int64(x&1))
}

// scalarSum is the unaligned-edge companion of sumBlockW/sumZZBlockW:
// a bit-granular wrapping sum of count (<= 64) values at position
// start, zigzag-decoded first when zz is set. Width 0 is handled by
// the callers (the sum is zero).
func scalarSum(src []uint64, start, count int, w uint, zz bool) uint64 {
	var s uint64
	vmask := Mask(w)
	bitPos := uint64(start) * uint64(w)
	for j := 0; j < count; j++ {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := src[word] >> off
		if off+w > 64 {
			v |= src[word+1] << (64 - off)
		}
		v &= vmask
		if zz {
			v = zigzag(v)
		}
		s += v
		bitPos += uint64(w)
	}
	return s
}

// scalarSumRange is the unaligned-edge companion of the fused
// filter+sum kernels.
func scalarSumRange(src []uint64, start, count int, w uint, lo, span uint64, zz bool) (uint64, int) {
	if w == 0 {
		var v uint64
		if zz {
			v = zigzag(0)
		}
		if v-lo <= span {
			return 0, count
		}
		return 0, 0
	}
	var s uint64
	n := 0
	vmask := Mask(w)
	bitPos := uint64(start) * uint64(w)
	for j := 0; j < count; j++ {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := src[word] >> off
		if off+w > 64 {
			v |= src[word+1] << (64 - off)
		}
		v &= vmask
		if zz {
			v = zigzag(v)
		}
		if v-lo <= span {
			s += v
			n++
		}
		bitPos += uint64(w)
	}
	return s, n
}

// scalarRangeMaskZZ is scalarRangeMask with the zigzag decode
// inlined: the unaligned-edge companion of selectInRangeZZBlockW.
func scalarRangeMaskZZ(src []uint64, start, count int, w uint, lo, span uint64) uint64 {
	if w == 0 {
		if 0-lo <= span {
			return Mask(uint(count))
		}
		return 0
	}
	var m uint64
	vmask := Mask(w)
	bitPos := uint64(start) * uint64(w)
	for j := 0; j < count; j++ {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := src[word] >> off
		if off+w > 64 {
			v |= src[word+1] << (64 - off)
		}
		if zigzag(v&vmask)-lo <= span {
			m |= 1 << uint(j)
		}
		bitPos += uint64(w)
	}
	return m
}

// scalarGather is the unaligned-edge companion of gatherBlockW:
// decode+gather count (<= 64) codes at position start into dst.
func scalarGather(src []uint64, start, count int, w uint, tab, dst []int64) bool {
	t := uint64(len(tab))
	vmask := Mask(w)
	bitPos := uint64(start) * uint64(w)
	for j := 0; j < count; j++ {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := src[word] >> off
		if off+w > 64 {
			v |= src[word+1] << (64 - off)
		}
		c := v & vmask
		if c >= t {
			return false
		}
		dst[j] = tab[c]
		bitPos += uint64(w)
	}
	return true
}
