package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReader(t *testing.T) {
	bw := NewBitWriter(0)
	bw.WriteBits(0b101, 3)
	bw.WriteBits(0xFFFF, 16)
	bw.WriteBits(1, 64)
	bw.WriteUnary(70) // spans the 63-bit chunking path
	if bw.Len() != 3+16+64+71 {
		t.Fatalf("Len = %d", bw.Len())
	}
	br := NewBitReader(bw.Words())
	if v, err := br.ReadBits(3); err != nil || v != 0b101 {
		t.Fatalf("ReadBits(3) = %d, %v", v, err)
	}
	if v, err := br.ReadBits(16); err != nil || v != 0xFFFF {
		t.Fatalf("ReadBits(16) = %d, %v", v, err)
	}
	if v, err := br.ReadBits(64); err != nil || v != 1 {
		t.Fatalf("ReadBits(64) = %d, %v", v, err)
	}
	if q, err := br.ReadUnary(); err != nil || q != 70 {
		t.Fatalf("ReadUnary = %d, %v", q, err)
	}
	if _, err := br.ReadBits(64); err == nil {
		t.Fatal("read past end accepted")
	}
}

func TestEliasGammaRoundTrip(t *testing.T) {
	src := []int64{0, 1, 2, 3, 100, 1 << 30, (1 << 62) - 1}
	words, err := EliasGammaEncode(src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := EliasGammaDecode(words, len(src))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], src[i])
		}
	}
	bits, err := EliasGammaSizeBits(src)
	if err != nil {
		t.Fatal(err)
	}
	// Gamma(v+1) costs 2⌈log2(v+2)⌉−1 bits; check the total against
	// the writer's cursor.
	bw := NewBitWriter(0)
	for range src {
	}
	_ = bw
	if bits == 0 {
		t.Fatal("size must be positive")
	}
}

func TestEliasGammaRejectsNegative(t *testing.T) {
	if _, err := EliasGammaEncode([]int64{-1}); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := EliasGammaSizeBits([]int64{-1}); err == nil {
		t.Fatal("negative accepted by size")
	}
}

func TestEliasDeltaRoundTrip(t *testing.T) {
	src := []int64{0, 1, 2, 3, 100, 1 << 30, (1 << 62) - 1}
	words, err := EliasDeltaEncode(src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := EliasDeltaDecode(words, len(src))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], src[i])
		}
	}
}

func TestEliasRoundTripProperty(t *testing.T) {
	check := func(raw []uint32) bool {
		src := make([]int64, len(raw))
		for i, r := range raw {
			src[i] = int64(r)
		}
		g, err := EliasGammaEncode(src)
		if err != nil {
			return false
		}
		gd, err := EliasGammaDecode(g, len(src))
		if err != nil {
			return false
		}
		d, err := EliasDeltaEncode(src)
		if err != nil {
			return false
		}
		dd, err := EliasDeltaDecode(d, len(src))
		if err != nil {
			return false
		}
		for i := range src {
			if gd[i] != src[i] || dd[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEliasSizesMatchEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]int64, 300)
	for i := range src {
		src[i] = rng.Int63n(1 << uint(rng.Intn(40)))
	}
	gBits, err := EliasGammaSizeBits(src)
	if err != nil {
		t.Fatal(err)
	}
	gWords, err := EliasGammaEncode(src)
	if err != nil {
		t.Fatal(err)
	}
	if want := (gBits + 63) / 64; uint64(len(gWords)) != want {
		t.Fatalf("gamma: %d words, size predicts %d", len(gWords), want)
	}
	dBits, err := EliasDeltaSizeBits(src)
	if err != nil {
		t.Fatal(err)
	}
	dWords, err := EliasDeltaEncode(src)
	if err != nil {
		t.Fatal(err)
	}
	if want := (dBits + 63) / 64; uint64(len(dWords)) != want {
		t.Fatalf("delta: %d words, size predicts %d", len(dWords), want)
	}
}

func TestEliasDeltaBeatsGammaOnLargeValues(t *testing.T) {
	src := make([]int64, 200)
	for i := range src {
		src[i] = (1 << 40) + int64(i)
	}
	g, _ := EliasGammaSizeBits(src)
	d, _ := EliasDeltaSizeBits(src)
	if d >= g {
		t.Fatalf("delta %d bits should beat gamma %d bits on wide values", d, g)
	}
}

func TestEliasDecodeCorrupt(t *testing.T) {
	if _, err := EliasGammaDecode([]uint64{0}, 1); err == nil {
		t.Fatal("all-zero gamma stream accepted")
	}
	if _, err := EliasDeltaDecode(nil, 1); err == nil {
		t.Fatal("empty delta stream accepted")
	}
}
