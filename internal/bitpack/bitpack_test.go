package bitpack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValues returns n values uniformly drawn from [0, 2^w).
func randomValues(rng *rand.Rand, n int, w uint) []uint64 {
	out := make([]uint64, n)
	mask := Mask(w)
	for i := range out {
		out[i] = (rng.Uint64()) & mask
	}
	return out
}

func TestWidth(t *testing.T) {
	cases := []struct {
		v uint64
		w uint
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{math.MaxUint64, 64},
	}
	for _, tc := range cases {
		if got := Width(tc.v); got != tc.w {
			t.Errorf("Width(%d) = %d, want %d", tc.v, got, tc.w)
		}
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Fatalf("Mask(0) = %x", Mask(0))
	}
	if Mask(1) != 1 {
		t.Fatalf("Mask(1) = %x", Mask(1))
	}
	if Mask(64) != ^uint64(0) {
		t.Fatalf("Mask(64) = %x", Mask(64))
	}
	if Mask(65) != ^uint64(0) {
		t.Fatalf("Mask(65) = %x", Mask(65))
	}
}

func TestPackedWords(t *testing.T) {
	if PackedWords(64, 7) != 7 {
		t.Fatalf("PackedWords(64,7) = %d", PackedWords(64, 7))
	}
	if PackedWords(65, 7) != 8 {
		t.Fatalf("PackedWords(65,7) = %d", PackedWords(65, 7))
	}
	if PackedWords(0, 7) != 0 || PackedWords(10, 0) != 0 {
		t.Fatal("degenerate PackedWords wrong")
	}
	if PackedBytes(64, 7) != 56 {
		t.Fatalf("PackedBytes = %d", PackedBytes(64, 7))
	}
}

// TestPackUnpackAllWidths round-trips every width at lengths that
// exercise full blocks, tails, and the empty column.
func TestPackUnpackAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for w := uint(0); w <= 64; w++ {
		for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
			src := randomValues(rng, n, w)
			packed, err := Pack(src, w)
			if err != nil {
				t.Fatalf("w=%d n=%d: Pack: %v", w, n, err)
			}
			if len(packed) != PackedWords(n, w) {
				t.Fatalf("w=%d n=%d: packed %d words, want %d", w, n, len(packed), PackedWords(n, w))
			}
			got, err := Unpack(packed, n, w)
			if err != nil {
				t.Fatalf("w=%d n=%d: Unpack: %v", w, n, err)
			}
			for i := range src {
				if got[i] != src[i] {
					t.Fatalf("w=%d n=%d: element %d = %d, want %d", w, n, i, got[i], src[i])
				}
			}
		}
	}
}

// TestPackBoundaryValues packs the extreme representable values at
// every width.
func TestPackBoundaryValues(t *testing.T) {
	for w := uint(1); w <= 64; w++ {
		src := make([]uint64, 70)
		for i := range src {
			if i%2 == 0 {
				src[i] = Mask(w)
			}
		}
		packed, err := Pack(src, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		got, err := Unpack(packed, len(src), w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("w=%d element %d: %d != %d", w, i, got[i], src[i])
			}
		}
	}
}

func TestPackOverflowRejected(t *testing.T) {
	if _, err := Pack([]uint64{4}, 2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflow err = %v", err)
	}
	if _, err := Pack([]uint64{1}, 0); !errors.Is(err, ErrOverflow) {
		t.Fatalf("width-0 overflow err = %v", err)
	}
	if _, err := Pack(nil, 65); !errors.Is(err, ErrWidth) {
		t.Fatalf("width err = %v", err)
	}
}

func TestUnpackCorruptRejected(t *testing.T) {
	if _, err := Unpack([]uint64{}, 64, 3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short payload err = %v", err)
	}
	if _, err := Unpack(nil, 10, 65); !errors.Is(err, ErrWidth) {
		t.Fatalf("width err = %v", err)
	}
	// Width 0 needs no payload.
	got, err := Unpack(nil, 5, 0)
	if err != nil {
		t.Fatalf("width-0 unpack: %v", err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("width-0 unpack non-zero")
		}
	}
}

// TestGenericMatchesKernels verifies the generated unrolled kernels
// against the generic bit-granular path on identical data.
func TestGenericMatchesKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for w := uint(1); w <= 64; w++ {
		src := randomValues(rng, BlockLen, w)
		// Kernel path.
		kernel := make([]uint64, int(w))
		packBlock(src, w, kernel)
		// Generic path.
		generic := make([]uint64, PackedWords(BlockLen, w))
		packGeneric(src, w, generic, 0)
		for i := range kernel {
			if kernel[i] != generic[i] {
				t.Fatalf("w=%d: packed word %d differs: kernel %x generic %x", w, i, kernel[i], generic[i])
			}
		}
		kOut := make([]uint64, BlockLen)
		unpackBlock(kernel, w, kOut)
		gOut := make([]uint64, BlockLen)
		unpackGeneric(gOut, generic, w, 0)
		for i := range kOut {
			if kOut[i] != gOut[i] || kOut[i] != src[i] {
				t.Fatalf("w=%d: element %d: kernel %d generic %d src %d", w, i, kOut[i], gOut[i], src[i])
			}
		}
	}
}

func TestZigzag(t *testing.T) {
	cases := []struct {
		v int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{math.MaxInt64, math.MaxUint64 - 1}, {math.MinInt64, math.MaxUint64},
	}
	for _, tc := range cases {
		if got := Zigzag(tc.v); got != tc.u {
			t.Errorf("Zigzag(%d) = %d, want %d", tc.v, got, tc.u)
		}
		if got := Unzigzag(tc.u); got != tc.v {
			t.Errorf("Unzigzag(%d) = %d, want %d", tc.u, got, tc.v)
		}
	}
}

func TestZigzagRoundTripProperty(t *testing.T) {
	check := func(v int64) bool { return Unzigzag(Zigzag(v)) == v }
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	checkSlice := func(src []int64) bool {
		back := UnzigzagSlice(ZigzagSlice(src))
		for i := range src {
			if back[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(checkSlice, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedUnsignedSlices(t *testing.T) {
	src := []int64{-1, 0, 5}
	u := UnsignedSlice(src)
	if u[0] != math.MaxUint64 {
		t.Fatalf("UnsignedSlice(-1) = %d", u[0])
	}
	back := SignedSlice(u)
	for i := range src {
		if back[i] != src[i] {
			t.Fatal("signed/unsigned reinterpretation not inverse")
		}
	}
}
