// Package bitpack is the physical null-suppression (NS) substrate of
// lwcomp.
//
// In the paper's terms, NS "discards redundant bits": a column whose
// values all fit in w bits is stored as a dense stream of w-bit
// fields. bitpack provides:
//
//   - horizontal bit packing of 64-value blocks at any width 0..64,
//     with generated, fully unrolled, branch-free kernels per width
//     (the scalar stand-in for the SIMD kernels used by the paper's
//     lineage — see DESIGN.md, "Hardware substitution");
//   - a generic bit-granular fallback for partial tail blocks;
//   - zigzag mapping between signed and unsigned domains;
//   - LEB128 varints and Elias gamma/delta codes for the paper's
//     bit-metric, variable-width extension.
//
// All whole-column packing is block-structured: ⌊n/64⌋ full blocks
// followed by one generic tail. A 64-value block at width w occupies
// exactly w 64-bit words, so offsets are computable without headers.
package bitpack
