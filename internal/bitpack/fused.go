package bitpack

import (
	"fmt"
	"math/bits"
)

// This file exposes the generated fused unpack-and-compare kernels
// (countInRangeBlockW / selectInRangeBlockW) as range scans over a
// packed payload. The kernels evaluate lo <= v <= hi directly on the
// packed words — a straddling block of an NS or FOR form is scanned
// without ever materializing the unpacked values, which is what makes
// the compressed-scan path memory-traffic-bound rather than
// decode-bound (see DESIGN.md, "Fused compressed scans").
//
// Both scans operate on the unsigned domain: callers translate their
// signed query range first (and fall back to decoding for zigzag
// payloads, whose value order the mapping does not preserve).

// CountRangeU counts the values at positions [start, start+count) of
// the packed width-w payload that lie in [lo, hi] (unsigned). Full
// 64-value blocks go through the fused count kernels; the unaligned
// head and tail are scanned bit-granularly. No memory is allocated.
func CountRangeU(packed []uint64, start, count int, w uint, lo, hi uint64) (int64, error) {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return 0, err
	}
	if count == 0 || hi < lo {
		return 0, nil
	}
	span := hi - lo
	end := start + count
	p := start
	var total int64
	if head := headLen(p, end); head > 0 {
		total += int64(bits.OnesCount64(scalarRangeMask(packed, p, head, w, lo, span)))
		p += head
	}
	kernel := countInRangeFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		total += int64(kernel(packed[b*int(w):(b+1)*int(w)], lo, span))
	}
	if p < end {
		total += int64(bits.OnesCount64(scalarRangeMask(packed, p, end-p, w, lo, span)))
	}
	return total, nil
}

// SelectRangeU scans the values at positions [start, start+count) of
// the packed width-w payload and emits one match mask per 64-position
// chunk: emit(pos, mask) means mask bit j reports whether the value
// at position pos+j lies in [lo, hi]. Chunks are emitted in ascending
// position order, never overlap, and all-zero masks are skipped.
// Callers OR the masks into a sel.Selection (possibly at an offset).
// No memory is allocated.
func SelectRangeU(packed []uint64, start, count int, w uint, lo, hi uint64, emit func(pos int, mask uint64)) error {
	if err := checkFusedRange(packed, start, count, w); err != nil {
		return err
	}
	if count == 0 || hi < lo {
		return nil
	}
	span := hi - lo
	end := start + count
	p := start
	if head := headLen(p, end); head > 0 {
		if m := scalarRangeMask(packed, p, head, w, lo, span); m != 0 {
			emit(p, m)
		}
		p += head
	}
	kernel := selectInRangeFuncs[w]
	for ; p+BlockLen <= end; p += BlockLen {
		b := p >> 6
		if m := kernel(packed[b*int(w):(b+1)*int(w)], lo, span); m != 0 {
			emit(p, m)
		}
	}
	if p < end {
		if m := scalarRangeMask(packed, p, end-p, w, lo, span); m != 0 {
			emit(p, m)
		}
	}
	return nil
}

// checkFusedRange validates the scan arguments against the payload,
// mirroring UnpackRange's contract.
func checkFusedRange(packed []uint64, start, count int, w uint) error {
	if w > 64 {
		return fmt.Errorf("%w: %d", ErrWidth, w)
	}
	if start < 0 || count < 0 {
		return fmt.Errorf("bitpack: fused range scan: negative range [%d, +%d)", start, count)
	}
	if need := PackedWords(start+count, w); len(packed) < need {
		return fmt.Errorf("%w: have %d words, need %d for range end %d at width %d",
			ErrCorrupt, len(packed), need, start+count, w)
	}
	return nil
}

// headLen returns how many positions separate p from the next
// 64-block boundary, clamped to the scan end.
func headLen(p, end int) int {
	if p&63 == 0 {
		return 0
	}
	head := BlockLen - p&63
	if head > end-p {
		head = end - p
	}
	return head
}

// scalarRangeMask evaluates the range predicate on count (<= 64)
// values starting at position start, bit-granularly, and returns the
// match mask (bit j = position start+j). It is the unaligned-edge
// companion of the block kernels.
func scalarRangeMask(src []uint64, start, count int, w uint, lo, span uint64) uint64 {
	if w == 0 {
		if lo == 0 {
			return Mask(uint(count))
		}
		return 0
	}
	var m uint64
	vmask := Mask(w)
	bitPos := uint64(start) * uint64(w)
	for j := 0; j < count; j++ {
		word := bitPos >> 6
		off := uint(bitPos & 63)
		v := src[word] >> off
		if off+w > 64 {
			v |= src[word+1] << (64 - off)
		}
		if (v&vmask)-lo <= span {
			m |= 1 << uint(j)
		}
		bitPos += uint64(w)
	}
	return m
}
