package bitpack

import (
	"math/rand"
	"testing"
)

// zz decodes one zigzag word for the reference paths.
func zz(x uint64) int64 { return int64(x>>1) ^ -int64(x&1) }

// TestWideKernelsAgainstUnpack cross-checks the wide-kernel wrappers
// (SumU, SumZZ, SumRangeU, SumRangeZZ, CountRangeZZ, SelectRangeZZ)
// against unpack-then-operate for every width class, aligned and
// unaligned ranges, and boundary-heavy signed windows.
func TestWideKernelsAgainstUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []uint{0, 1, 3, 7, 8, 13, 20, 31, 32, 33, 63, 64} {
		n := 500
		vals := randomValues(rng, n, w)
		packed, err := Pack(vals, w)
		if err != nil {
			t.Fatal(err)
		}
		ranges := [][2]int{{0, n}, {0, 64}, {64, 128}, {17, 300}, {63, 66}, {499, 1}, {100, 0}}
		for _, r := range ranges {
			start, count := r[0], r[1]

			// Plain and zigzag sums against the reference fold.
			var wantU uint64
			var wantZ int64
			for _, v := range vals[start : start+count] {
				wantU += v
				wantZ += zz(v)
			}
			gotU, err := SumU(packed, start, count, w)
			if err != nil {
				t.Fatalf("w=%d [%d,+%d): SumU: %v", w, start, count, err)
			}
			if gotU != wantU {
				t.Fatalf("w=%d [%d,+%d): SumU = %d, want %d", w, start, count, gotU, wantU)
			}
			gotZ, err := SumZZ(packed, start, count, w)
			if err != nil {
				t.Fatalf("w=%d [%d,+%d): SumZZ: %v", w, start, count, err)
			}
			if gotZ != wantZ {
				t.Fatalf("w=%d [%d,+%d): SumZZ = %d, want %d", w, start, count, gotZ, wantZ)
			}

			// Unsigned filter+sum.
			var lo, hi uint64
			if w > 0 {
				lo = vals[start%n] / 2
				hi = lo + Mask(w)/3 + 1
			}
			for _, bounds := range [][2]uint64{{lo, hi}, {0, Mask(w)}, {1, 0}, {Mask(w), Mask(w)}} {
				lo, hi := bounds[0], bounds[1]
				var wantSum uint64
				var wantN int64
				if hi >= lo {
					for _, v := range vals[start : start+count] {
						if v >= lo && v <= hi {
							wantSum += v
							wantN++
						}
					}
				}
				s, c, err := SumRangeU(packed, start, count, w, lo, hi)
				if err != nil {
					t.Fatalf("w=%d: SumRangeU: %v", w, err)
				}
				if s != wantSum || c != wantN {
					t.Fatalf("w=%d [%d,+%d) [%d,%d]: SumRangeU = (%d, %d), want (%d, %d)",
						w, start, count, lo, hi, s, c, wantSum, wantN)
				}
			}

			// Signed windows over the zigzag view, including extremes.
			sLo, sHi := zz(vals[start%n])-3, zz(vals[start%n])+3
			windows := [][2]int64{
				{sLo, sHi}, {0, 0}, {-1 << 62, 1 << 62}, {1, -1},
				{-(1 << 63), 1<<63 - 1},
			}
			for _, win := range windows {
				lo, hi := win[0], win[1]
				var wantN, wantSum int64
				if hi >= lo {
					for _, v := range vals[start : start+count] {
						d := zz(v)
						if d >= lo && d <= hi {
							wantN++
							wantSum += d
						}
					}
				}
				gotN, err := CountRangeZZ(packed, start, count, w, lo, hi)
				if err != nil {
					t.Fatalf("w=%d: CountRangeZZ: %v", w, err)
				}
				if gotN != wantN {
					t.Fatalf("w=%d [%d,+%d) signed [%d,%d]: CountRangeZZ = %d, want %d",
						w, start, count, lo, hi, gotN, wantN)
				}
				gotSum, gotC, err := SumRangeZZ(packed, start, count, w, lo, hi)
				if err != nil {
					t.Fatalf("w=%d: SumRangeZZ: %v", w, err)
				}
				if gotSum != wantSum || gotC != wantN {
					t.Fatalf("w=%d [%d,+%d) signed [%d,%d]: SumRangeZZ = (%d, %d), want (%d, %d)",
						w, start, count, lo, hi, gotSum, gotC, wantSum, wantN)
				}
				var selN int64
				lastPos := -1
				err = SelectRangeZZ(packed, start, count, w, lo, hi, func(pos int, mask uint64) {
					if pos <= lastPos {
						t.Fatalf("w=%d: emit positions not ascending", w)
					}
					lastPos = pos
					for b := 0; b < 64; b++ {
						if mask&(1<<b) == 0 {
							continue
						}
						selN++
						if d := zz(vals[pos+b]); d < lo || d > hi {
							t.Fatalf("w=%d: SelectRangeZZ matched %d outside [%d,%d]", w, d, lo, hi)
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if selN != wantN {
					t.Fatalf("w=%d signed [%d,%d]: select found %d, want %d", w, lo, hi, selN, wantN)
				}
			}
		}
	}
}

// TestGatherAgainstUnpack cross-checks GatherU against
// unpack-then-index, and its rejection of out-of-table codes.
func TestGatherAgainstUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []uint{0, 1, 5, 8, 11, 16, 21, 32} {
		n := 300
		tabLen := 1 << w
		if w == 0 {
			tabLen = 1
		}
		if tabLen > 4096 {
			tabLen = 4096
		}
		tab := make([]int64, tabLen)
		for i := range tab {
			tab[i] = rng.Int63() - rng.Int63()
		}
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Intn(tabLen))
		}
		packed, err := Pack(vals, w)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]int64, n)
		for _, r := range [][2]int{{0, n}, {0, 64}, {64, 128}, {17, 250}, {63, 66}, {299, 1}, {100, 0}} {
			start, count := r[0], r[1]
			for i := range dst {
				dst[i] = -999
			}
			if err := GatherU(packed, start, count, w, tab, dst); err != nil {
				t.Fatalf("w=%d [%d,+%d): GatherU: %v", w, start, count, err)
			}
			for j := 0; j < count; j++ {
				if want := tab[vals[start+j]]; dst[j] != want {
					t.Fatalf("w=%d [%d,+%d): dst[%d] = %d, want %d", w, start, count, j, dst[j], want)
				}
			}
		}
		// A truncated table turns some code out-of-range.
		if w > 0 {
			var mx uint64
			for _, v := range vals {
				if v > mx {
					mx = v
				}
			}
			if mx > 0 {
				if err := GatherU(packed, 0, n, w, tab[:mx], dst); err == nil {
					t.Fatalf("w=%d: out-of-table code must error", w)
				}
			}
		}
	}
	if err := GatherU(nil, 0, 1, 33, nil, make([]int64, 1)); err == nil {
		t.Fatal("gather width 33 must error")
	}
	if err := GatherU(nil, 0, 64, 0, nil, make([]int64, 64)); err == nil {
		t.Fatal("width-0 gather through an empty table must error")
	}
	if err := GatherU([]uint64{0}, 0, 8, 8, make([]int64, 256), make([]int64, 4)); err == nil {
		t.Fatal("short dst must error")
	}
}
