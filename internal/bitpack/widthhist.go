package bitpack

// WidthHistogram counts, for each bit width 0..64, how many values of
// src require exactly that width. It drives the patch-threshold
// selection of the Patch combinator (the paper's L0 extension: choose
// a narrow model width and treat the tail of the histogram as
// exceptions) and the analyzer's cost model.
type WidthHistogram struct {
	// Counts[w] is the number of values of exact width w.
	Counts [65]int
	// N is the total number of values observed.
	N int
}

// HistogramOf builds the width histogram of src.
func HistogramOf(src []uint64) WidthHistogram {
	var h WidthHistogram
	h.N = len(src)
	for _, v := range src {
		h.Counts[Width(v)]++
	}
	return h
}

// Observe adds one value to the histogram. It is the streaming form
// of HistogramOf, used by the one-pass block-statistics collector so
// encode-side estimation reuses this machinery without a second pass
// over the data.
func (h *WidthHistogram) Observe(v uint64) {
	h.Counts[Width(v)]++
	h.N++
}

// Reset clears the histogram for reuse.
func (h *WidthHistogram) Reset() {
	*h = WidthHistogram{}
}

// RawFromZigzag derives the histogram of raw (non-zigzagged) widths
// from a histogram over zigzagged values, valid only when every
// observed value was non-negative: zigzag doubles a non-negative
// value, so its width is exactly one more than the raw width (zero
// stays zero).
func (h WidthHistogram) RawFromZigzag() WidthHistogram {
	var out WidthHistogram
	out.N = h.N
	out.Counts[0] = h.Counts[0]
	for w := 1; w <= 64; w++ {
		out.Counts[w-1] += h.Counts[w]
	}
	return out
}

// MaxWidth returns the largest width with a non-zero count (0 for an
// empty histogram).
func (h WidthHistogram) MaxWidth() uint {
	for w := 64; w >= 0; w-- {
		if h.Counts[w] > 0 {
			return uint(w)
		}
	}
	return 0
}

// WidthCovering returns the smallest width w such that at least
// fraction coverage of the values fit in w bits. coverage is clamped
// to [0, 1]; an empty histogram yields 0.
func (h WidthHistogram) WidthCovering(coverage float64) uint {
	if h.N == 0 {
		return 0
	}
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	need := int(coverage * float64(h.N))
	if float64(need) < coverage*float64(h.N) {
		need++
	}
	acc := 0
	for w := 0; w <= 64; w++ {
		acc += h.Counts[w]
		if acc >= need {
			return uint(w)
		}
	}
	return h.MaxWidth()
}

// ExceptionsAt returns how many values do not fit in w bits.
func (h WidthHistogram) ExceptionsAt(w uint) int {
	exc := 0
	for ww := int(w) + 1; ww <= 64; ww++ {
		exc += h.Counts[ww]
	}
	return exc
}

// BestPatchWidth chooses the width minimizing the total cost in bits
// of packing all fitting values at width w plus storing each
// exception as an (index, value) pair costing excBits bits. It
// returns the chosen width and the corresponding exception count.
// This is the classical PFOR width selection, expressed over the
// paper's L0 patch model.
func (h WidthHistogram) BestPatchWidth(excBits uint) (uint, int) {
	if h.N == 0 {
		return 0, 0
	}
	bestW := h.MaxWidth()
	bestCost := uint64(h.N) * uint64(bestW)
	bestExc := 0
	exc := 0
	for w := int(h.MaxWidth()) - 1; w >= 0; w-- {
		exc += h.Counts[w+1]
		cost := uint64(h.N)*uint64(w) + uint64(exc)*uint64(excBits)
		if cost < bestCost {
			bestCost = cost
			bestW = uint(w)
			bestExc = exc
		}
	}
	return bestW, bestExc
}

// TotalBitsAt returns the cost in bits of packing every value at
// width w with exceptions stored at excBits bits each.
func (h WidthHistogram) TotalBitsAt(w uint, excBits uint) uint64 {
	return uint64(h.N)*uint64(w) + uint64(h.ExceptionsAt(w))*uint64(excBits)
}
