package bitpack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	src := []int64{0, 1, -1, 127, -128, math.MaxInt64, math.MinInt64}
	data := VarintEncode(src)
	got, err := VarintDecode(data, len(src))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], src[i])
		}
	}
	if len(data) != VarintSize(src) {
		t.Fatalf("VarintSize = %d, encoded %d", VarintSize(src), len(data))
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	check := func(src []int64) bool {
		data := VarintEncode(src)
		got, err := VarintDecode(data, len(src))
		if err != nil {
			return false
		}
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return len(data) == VarintSize(src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintTruncated(t *testing.T) {
	data := VarintEncode([]int64{1, 2, 3})
	if _, err := VarintDecode(data[:len(data)-1], 3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated err = %v", err)
	}
	if _, err := VarintDecode(nil, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestVarintUnsigned(t *testing.T) {
	src := []int64{0, 1, 300, math.MaxInt64}
	data, err := VarintEncodeUnsigned(src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := VarintDecodeUnsigned(data, len(src))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d differs", i)
		}
	}
	if _, err := VarintEncodeUnsigned([]int64{-1}); err == nil {
		t.Fatal("negative accepted by unsigned encoder")
	}
}

func TestVarintUnsignedSmallerForNonNegative(t *testing.T) {
	// Unsigned encoding of small non-negative values must never be
	// larger than the zigzag encoding.
	rng := rand.New(rand.NewSource(3))
	src := make([]int64, 500)
	for i := range src {
		src[i] = rng.Int63n(1 << 20)
	}
	unsigned, err := VarintEncodeUnsigned(src)
	if err != nil {
		t.Fatal(err)
	}
	zigzag := VarintEncode(src)
	if len(unsigned) > len(zigzag) {
		t.Fatalf("unsigned %d bytes > zigzag %d bytes", len(unsigned), len(zigzag))
	}
}
