package scrub

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"lwcomp/internal/blocked"
	"lwcomp/internal/core"
	"lwcomp/internal/storage"
)

// Salvage repair rebuilds a damaged container as a new generation:
// good blocks are preserved byte-for-byte, blocks whose first read
// lies are re-read a bounded number of times (transient path
// corruption clears on re-read; the storage retry layer below already
// absorbs transient I/O errors), index stats falsified by rot are
// re-derived from the decompressed values, and only blocks that stay
// unreadable are tombstoned — an explicit, persisted record of the
// exact lost row range, the same shape degraded scans already report.
// The candidate is verified in memory before an atomic temp+rename
// swap; a crash at any point leaves the old generation intact.

// Repair actions, in the Action field of a RepairResult.
const (
	// ActionClean means no persistent defect was found; the file was
	// left untouched.
	ActionClean = "clean"
	// ActionRepaired means a new generation was swapped in.
	ActionRepaired = "repaired"
	// ActionUnrepairable means the container is damaged beyond
	// salvage (unparseable index) or the rebuilt candidate failed its
	// pre-swap verification; the file was left untouched.
	ActionUnrepairable = "unrepairable"
)

// RepairOptions tunes a salvage repair.
type RepairOptions struct {
	// Retry re-issues transiently failed reads below the block layer
	// when its MaxRetries is positive.
	Retry storage.RetryPolicy
	// ReadAttempts bounds how many full re-reads a block whose bytes
	// fail their CRC or decode gets before being declared lost — over
	// and above the per-read transient retries Retry provides. 0
	// means 3.
	ReadAttempts int
	// WrapReader, when non-nil, decorates the reader before any byte
	// is read — the fault-injection seam.
	WrapReader func(ra io.ReaderAt) io.ReaderAt
}

// RepairResult describes what a salvage repair did to one container.
type RepairResult struct {
	// Path is the repaired file.
	Path string `json:"path"`
	// Action is one of ActionClean, ActionRepaired, ActionUnrepairable.
	Action string `json:"action"`
	// Columns and Blocks count what the salvage walked.
	Columns int `json:"columns"`
	// Blocks is the number of blocks walked (tombstones included).
	Blocks int `json:"blocks"`
	// Preserved counts good blocks carried into the new generation
	// byte-for-byte on their first read.
	Preserved int `json:"preserved"`
	// Reread counts blocks whose first read was corrupt but whose
	// bytes came back clean on a bounded re-read.
	Reread int `json:"reread"`
	// StatsFixed counts blocks whose index [min, max] disagreed with
	// the decompressed values and was re-derived.
	StatsFixed int `json:"stats_fixed"`
	// ChecksumsFixed counts blocks whose payload decoded cleanly but
	// whose recorded index CRC was wrong — index rot — and was
	// recomputed over the verified bytes.
	ChecksumsFixed int `json:"checksums_fixed"`
	// Tombstoned counts blocks newly declared lost this repair.
	Tombstoned int `json:"tombstoned"`
	// CarriedTombstones counts tombstones from earlier repairs
	// carried forward unchanged.
	CarriedTombstones int `json:"carried_tombstones"`
	// BytesBefore and BytesAfter are the container sizes around the
	// swap (equal when no swap happened).
	BytesBefore int64 `json:"bytes_before"`
	BytesAfter  int64 `json:"bytes_after"`
	// Err holds what made the container unrepairable, when Action is
	// ActionUnrepairable.
	Err string `json:"error,omitempty"`
}

// castagnoli mirrors the storage layer's payload CRC polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RepairFile salvages the container at path per the package rules. It
// returns a result for every container-shaped outcome — including
// ActionUnrepairable — and a non-nil error only for environmental
// failures (file missing, transport-level I/O, unwritable directory).
func RepairFile(path string, opt RepairOptions) (*RepairResult, error) {
	if opt.ReadAttempts <= 0 {
		opt.ReadAttempts = 3
	}
	res := &RepairResult{Path: path, Action: ActionClean}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	res.BytesBefore = st.Size()
	res.BytesAfter = st.Size()

	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{
		CacheBytes: -1,
		Retry:      opt.Retry,
		WrapReader: opt.WrapReader,
	})
	if err != nil {
		if blocked.IsPermanent(err) {
			// The index is the only map of where blocks live; without
			// it there is nothing to salvage from.
			res.Action = ActionUnrepairable
			res.Err = err.Error()
			return res, nil
		}
		return nil, err
	}

	if !cf.Lazy() {
		// v1/v2 fallback containers decode eagerly at open: reaching
		// here means every block already passed, so there is nothing a
		// salvage could improve on.
		cf.Close()
		return res, nil
	}

	raw := make([]storage.RawColumn, 0, len(cf.Columns()))
	changed := false
	var scratch []byte
	for ci, bc := range cf.Columns() {
		res.Columns++
		src, ok := bc.Col.Source.(storage.BlockReader)
		if !ok {
			cf.Close()
			res.Action = ActionUnrepairable
			res.Err = fmt.Sprintf("column %q has no raw block view", bc.Name)
			return res, nil
		}
		exts := cf.Extents(ci)
		rc := storage.RawColumn{Name: bc.Name, BlockSize: bc.Col.BlockSize}
		for i := range bc.Col.Blocks {
			res.Blocks++
			b := &bc.Col.Blocks[i]
			if b.Tombstone {
				rc.Blocks = append(rc.Blocks, storage.RawBlock{
					Count: b.Count, Tombstone: true, TombstoneReason: b.TombstoneReason,
				})
				res.CarriedTombstones++
				continue
			}
			rb, blockChanged := salvageBlock(src, i, exts[i], b, opt, &scratch, res)
			if blockChanged {
				changed = true
			}
			rc.Blocks = append(rc.Blocks, rb)
		}
		raw = append(raw, rc)
	}
	cf.Close()

	if !changed {
		return res, nil
	}

	var buf bytes.Buffer
	if err := storage.WriteContainerV3Raw(&buf, raw); err != nil {
		res.Action = ActionUnrepairable
		res.Err = fmt.Sprintf("assembling candidate: %v", err)
		return res, nil
	}
	// Pre-swap gate: the candidate must verify end to end before it
	// is allowed to replace anything.
	rep, err := storage.VerifyReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()), storage.VerifyOptions{})
	if err != nil {
		return nil, err
	}
	if !rep.OK() {
		res.Action = ActionUnrepairable
		res.Err = fmt.Sprintf("candidate failed pre-swap verification: %v", rep.Issues[0])
		return res, nil
	}
	if err := storage.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(buf.Bytes())
		return werr
	}); err != nil {
		return nil, err
	}
	res.Action = ActionRepaired
	res.BytesAfter = int64(buf.Len())
	return res, nil
}

// salvageBlock decides one block's fate: preserve, re-read, fix its
// index entry, or tombstone. It updates the result's tallies and
// reports whether the block's index entry or payload differs from the
// original container (requiring a new generation).
func salvageBlock(src storage.BlockReader, i int, ext storage.BlockExtent, b *blocked.Block,
	opt RepairOptions, scratch *[]byte, res *RepairResult) (storage.RawBlock, bool) {
	var lastErr error
	// unconfirmed holds the previous read's bytes when they decoded
	// cleanly but failed the recorded CRC. Such bytes are trusted only
	// after a confirming identical re-read: a transient flip that
	// happens to stay decodable must not be blessed off its first
	// sighting, while genuinely stable decodable bytes under a rotten
	// index CRC are the one consistent explanation left.
	var unconfirmed []byte
	for attempt := 1; attempt <= opt.ReadAttempts; attempt++ {
		data, err := src.Payload(i, *scratch)
		if err != nil {
			// The storage retry layer already absorbed transient I/O;
			// an error here exhausted that budget. A fresh attempt
			// gets a fresh budget.
			lastErr = err
			unconfirmed = nil
			continue
		}
		if cap(data) > cap(*scratch) {
			*scratch = data[:0]
		}
		crcOK := crc32.Checksum(data, castagnoli) == ext.CRC
		vals, derr := decodePayload(data, b.Count)
		if derr != nil {
			lastErr = derr
			unconfirmed = nil
			continue
		}
		if !crcOK {
			if unconfirmed == nil || !bytes.Equal(unconfirmed, data) {
				unconfirmed = append(unconfirmed[:0], data...)
				lastErr = fmt.Errorf("%w: payload CRC mismatch", storage.ErrChecksum)
				continue
			}
			// Byte-stable, fully decodable, right row count — accept
			// the payload as authoritative and recompute its index
			// CRC over it.
			res.ChecksumsFixed++
		}
		rb := storage.RawBlock{Count: b.Count, Payload: append([]byte(nil), data...)}
		blockChanged := !crcOK
		if crcOK && attempt > 1 {
			res.Reread++
		}
		if b.HasStats && len(vals) > 0 {
			lo, hi := vals[0], vals[0]
			for _, v := range vals[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			rb.HasStats, rb.Min, rb.Max = true, lo, hi
			if lo != b.Min || hi != b.Max {
				res.StatsFixed++
				blockChanged = true
			}
		}
		if !blockChanged && attempt == 1 {
			res.Preserved++
		}
		return rb, blockChanged
	}
	reason := fmt.Sprintf("payload unrecoverable after %d reads: %v", opt.ReadAttempts, lastErr)
	res.Tombstoned++
	return storage.RawBlock{Count: b.Count, Tombstone: true, TombstoneReason: reason}, true
}

// decodePayload checks a raw payload end to end: decode, full
// consumption, declared row count, decompression. It returns the
// decompressed values for stats re-derivation.
func decodePayload(data []byte, count int) ([]int64, error) {
	f, consumed, err := storage.DecodeForm(data)
	if err != nil {
		return nil, err
	}
	if consumed != len(data) {
		return nil, fmt.Errorf("%w: payload decoded %d of %d bytes", storage.ErrCorrupt, consumed, len(data))
	}
	if f.N != count {
		return nil, fmt.Errorf("%w: payload holds %d rows, index declares %d", storage.ErrCorrupt, f.N, count)
	}
	vals, err := core.Decompress(f)
	if err != nil {
		return nil, err
	}
	return vals, nil
}
