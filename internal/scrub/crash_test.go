package scrub

import (
	"bytes"
	"crypto/sha256"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"lwcomp/internal/storage"
)

// TestRepairCrashChild is the subprocess half of the repair crash
// harness: it salvages LWC_CRASH_FILE and dies at the AtomicWriteFile
// point named by LWC_CRASH_POINT.
func TestRepairCrashChild(t *testing.T) {
	point := os.Getenv("LWC_CRASH_POINT")
	if point == "" {
		t.Skip("crash child runs only as a subprocess")
	}
	storage.CrashHook = func(p string) {
		if p == point {
			os.Exit(7)
		}
	}
	if _, err := RepairFile(os.Getenv("LWC_CRASH_FILE"), RepairOptions{}); err != nil {
		os.Exit(3)
	}
	os.Exit(0)
}

// TestRepairCrashMatrix kills a child mid-RepairFile swap at every
// interruption point and asserts that the container under repair is
// always either the damaged old generation or the fully healed new
// one — never torn — and that a rerun of the repair converges on the
// healed bytes.
func TestRepairCrashMatrix(t *testing.T) {
	vals := repairVals(512)
	col, good := encodeContainer(t, vals, 128)
	col.Blocks[1].Min -= 5
	var lyingBuf bytes.Buffer
	if err := storage.WriteContainerV3(&lyingBuf, []storage.BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	lying := lyingBuf.Bytes()
	goodSum, lyingSum := sha256.Sum256(good), sha256.Sum256(lying)

	for _, point := range []string{"created", "written", "synced", "closed", "renamed", "dirsynced"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "c.lwc")
			writeBytes(t, path, lying)

			cmd := exec.Command(os.Args[0], "-test.run", "^TestRepairCrashChild$")
			cmd.Env = append(os.Environ(),
				"LWC_CRASH_POINT="+point,
				"LWC_CRASH_FILE="+path,
			)
			out, err := cmd.CombinedOutput()
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 7 {
				t.Fatalf("child did not die at %q (err=%v):\n%s", point, err, out)
			}

			sum := fileSum(t, path)
			if sum != goodSum && sum != lyingSum {
				t.Fatalf("crash at %q left a torn container", point)
			}
			// Whatever generation survived must still parse: the lying
			// one has wrong stats, not a broken structure.
			if _, err := storage.VerifyFile(path); err != nil {
				t.Fatalf("survivor unreadable after crash at %q: %v", point, err)
			}

			// Recovery: janitor the litter, rerun the repair, and the
			// container must converge on the healed bytes.
			if _, err := storage.SweepTempFiles(dir, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := RepairFile(path, RepairOptions{}); err != nil {
				t.Fatal(err)
			}
			if fileSum(t, path) != goodSum {
				t.Fatalf("re-repair after crash at %q did not converge", point)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 1 {
				t.Fatalf("litter after recovery: %v", entries)
			}
		})
	}
}
