package scrub

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/faults"
	"lwcomp/internal/storage"
)

// repairVals is a mildly irregular sequence so every block carries
// real stats and a few distinct compression forms.
func repairVals(n int) []int64 {
	vals := make([]int64, n)
	v := int64(1000)
	for i := range vals {
		v += int64(i%7) - 3
		vals[i] = v
	}
	return vals
}

// encodeContainer encodes vals into one column ("c", block size bs)
// and returns the column plus the container's exact bytes.
func encodeContainer(t *testing.T, vals []int64, bs int) (*blocked.Column, []byte) {
	t.Helper()
	col, err := blocked.Encode(vals, blocked.EncodeOptions{BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.WriteContainerV3(&buf, []storage.BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	return col, buf.Bytes()
}

// payloadStart returns the absolute file offset of block bi's payload
// in column ci: prefix (magic 4 + version 2 + indexLen 8) + indexLen +
// the block's extent offset.
func payloadStart(t *testing.T, path string, ci, bi int) (int64, int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	ext := cf.Extents(ci)[bi]
	return 14 + int64(binary.LittleEndian.Uint64(data[6:14])) + ext.Offset, int(ext.Bytes)
}

func writeBytes(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func fileSum(t *testing.T, path string) [32]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(data)
}

func TestRepairCleanIsNoOp(t *testing.T) {
	_, good := encodeContainer(t, repairVals(512), 128)
	path := filepath.Join(t.TempDir(), "c.lwc")
	writeBytes(t, path, good)
	res, err := RepairFile(path, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionClean || res.Preserved != 4 || res.Blocks != 4 {
		t.Fatalf("clean repair: %+v", res)
	}
	if fileSum(t, path) != sha256.Sum256(good) {
		t.Fatal("no-op repair rewrote the file")
	}
}

func TestRepairStatsLieRestoresExactBytes(t *testing.T) {
	vals := repairVals(512)
	col, good := encodeContainer(t, vals, 128)

	// A lying writer: self-consistent CRCs, wrong index stats — only
	// re-deriving [min, max] from the decompressed values catches it.
	col.Blocks[1].Min -= 5
	var lying bytes.Buffer
	if err := storage.WriteContainerV3(&lying, []storage.BlockedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.lwc")
	writeBytes(t, path, lying.Bytes())

	res, err := RepairFile(path, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRepaired || res.StatsFixed != 1 || res.Preserved != 3 ||
		res.Tombstoned != 0 || res.Reread != 0 {
		t.Fatalf("stats-lie repair: %+v", res)
	}
	// Payloads were untouched and the stats re-derivation lands on the
	// honest values, so the healed file is byte-identical to what the
	// truthful writer produced.
	if fileSum(t, path) != sha256.Sum256(good) {
		t.Fatal("healed file differs from the pre-corruption original")
	}
	rep, err := storage.VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Tombstones) != 0 {
		t.Fatalf("healed file fails verification: %+v", rep)
	}
}

func TestRepairUndecodablePayloadTombstones(t *testing.T) {
	vals := repairVals(512)
	_, good := encodeContainer(t, vals, 128)
	path := filepath.Join(t.TempDir(), "c.lwc")
	writeBytes(t, path, good)

	// Destroy block 2's scheme-name length byte: every read of the
	// payload now fails decoding deterministically, no re-read helps.
	off, _ := payloadStart(t, path, 0, 2)
	corrupt := append([]byte(nil), good...)
	corrupt[off] = 0xFF
	writeBytes(t, path, corrupt)

	res, err := RepairFile(path, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRepaired || res.Tombstoned != 1 || res.Preserved != 3 {
		t.Fatalf("tombstone repair: %+v", res)
	}

	rep, err := storage.VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repaired file fails verification: %v", rep.Issues)
	}
	if len(rep.Tombstones) != 1 || rep.Tombstones[0].Block != 2 ||
		rep.Tombstones[0].RowStart != 256 || rep.Tombstones[0].RowCount != 128 {
		t.Fatalf("tombstone manifest: %+v", rep.Tombstones)
	}

	// Surviving rows still decode exactly; the lost range fails with
	// the tombstone sentinel.
	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	colr := cf.Columns()[0].Col
	out := make([]int64, 128)
	if err := colr.DecompressBlock(3, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != vals[384+i] {
			t.Fatalf("surviving row %d: got %d want %d", 384+i, v, vals[384+i])
		}
	}
	if err := colr.DecompressBlock(2, out); err == nil {
		t.Fatal("tombstoned block decoded")
	}

	// A second repair has nothing left to do: the tombstone is carried,
	// not re-litigated.
	res2, err := RepairFile(path, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Action != ActionClean || res2.CarriedTombstones != 1 || res2.Tombstoned != 0 {
		t.Fatalf("re-repair of tombstoned container: %+v", res2)
	}
}

func TestRepairTransientFlipRecovers(t *testing.T) {
	_, good := encodeContainer(t, repairVals(512), 128)
	path := filepath.Join(t.TempDir(), "c.lwc")
	writeBytes(t, path, good)

	// The disk bytes are fine; only the first read of block 1's payload
	// comes back flipped. The salvage must re-read, see stable clean
	// bytes, and leave the file alone.
	off, length := payloadStart(t, path, 0, 1)
	wrap, _ := faults.Wrap(faults.Config{
		FlipOffsets:  []int64{off + int64(length)/2},
		FlipMaxReads: 1,
	})
	res, err := RepairFile(path, RepairOptions{WrapReader: wrap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionClean || res.Reread != 1 || res.Tombstoned != 0 || res.ChecksumsFixed != 0 {
		t.Fatalf("transient-flip repair: %+v", res)
	}
	if fileSum(t, path) != sha256.Sum256(good) {
		t.Fatal("transient fault caused a rewrite")
	}
}

func TestRepairStableDecodableBytesFixChecksum(t *testing.T) {
	vals := repairVals(512)
	_, good := encodeContainer(t, vals, 128)
	path := filepath.Join(t.TempDir(), "c.lwc")
	writeBytes(t, path, good)

	// Find a persistent payload flip that still decodes cleanly with
	// the right row count — packed-value bits qualify. Stable decodable
	// bytes under a wrong recorded CRC are accepted as authoritative
	// (after a confirming identical re-read) and the CRC is recomputed.
	off, length := payloadStart(t, path, 0, 1)
	corrupt := append([]byte(nil), good...)
	flipped := int64(-1)
	for i := int64(length) - 1; i >= 0; i-- {
		corrupt[off+i] ^= 0x01
		if _, err := decodePayload(corrupt[off:off+int64(length)], 128); err == nil {
			flipped = off + i
			break
		}
		corrupt[off+i] ^= 0x01
	}
	if flipped < 0 {
		t.Fatal("no decodable single-bit payload flip found")
	}
	writeBytes(t, path, corrupt)

	res, err := RepairFile(path, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionRepaired || res.ChecksumsFixed != 1 || res.Tombstoned != 0 {
		t.Fatalf("checksum-fix repair: %+v", res)
	}
	rep, err := storage.VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Tombstones) != 0 {
		t.Fatalf("checksum-fixed file fails verification: %+v", rep)
	}
}

func TestRepairUnparseableIndexUnrepairable(t *testing.T) {
	_, good := encodeContainer(t, repairVals(256), 128)
	path := filepath.Join(t.TempDir(), "c.lwc")
	// Rot inside the index region: the index CRC fails, and without a
	// trustworthy block map there is nothing to salvage from.
	corrupt := append([]byte(nil), good...)
	corrupt[20] ^= 0x01
	writeBytes(t, path, corrupt)

	res, err := RepairFile(path, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionUnrepairable || res.Err == "" {
		t.Fatalf("index-rot repair: %+v", res)
	}
	// The damaged file must be left exactly as found.
	if fileSum(t, path) != sha256.Sum256(corrupt) {
		t.Fatal("unrepairable path modified the file")
	}
}

func TestRepairMissingFileIsEnvironmental(t *testing.T) {
	if _, err := RepairFile(filepath.Join(t.TempDir(), "nope.lwc"), RepairOptions{}); err == nil {
		t.Fatal("missing file did not surface as an environmental error")
	}
}

func TestScrubFileCountersAndThrottle(t *testing.T) {
	_, good := encodeContainer(t, repairVals(512), 128)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.lwc")
	writeBytes(t, path, good)

	s := New(Options{})
	rep, err := s.ScrubFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean file failed scrub: %v", rep.Issues)
	}
	ctr := s.Counters()
	if ctr.ContainersScanned != 1 || ctr.BlocksScanned != 4 || ctr.ErrorsFound != 0 {
		t.Fatalf("counters after clean scrub: %+v", ctr)
	}
	// The whole file passes through the counting reader at least once.
	if ctr.BytesScanned < int64(len(good)) {
		t.Fatalf("bytes scanned %d < file size %d", ctr.BytesScanned, len(good))
	}
	if ctr.LastSweepUnix != 0 {
		t.Fatal("sweep stamp set before MarkSweepDone")
	}
	s.MarkSweepDone()
	if s.Counters().LastSweepUnix == 0 {
		t.Fatal("MarkSweepDone did not stamp")
	}

	// A corrupt payload is a finding, not an environmental error.
	off, _ := payloadStart(t, path, 0, 2)
	corrupt := append([]byte(nil), good...)
	corrupt[off] = 0xFF
	writeBytes(t, path, corrupt)
	rep, err = s.ScrubFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Issues) != 1 || rep.Issues[0].Block != 2 {
		t.Fatalf("scrub of corrupt file: %+v", rep)
	}
	if got := s.Counters().ErrorsFound; got != 1 {
		t.Fatalf("errors found: %d", got)
	}
}

func TestScrubThrottlePacesReads(t *testing.T) {
	_, good := encodeContainer(t, repairVals(4096), 256)
	path := filepath.Join(t.TempDir(), "c.lwc")
	writeBytes(t, path, good)

	// Budget the sweep to ~4x the file per second: the walk must take
	// at least (bytes read / rate) even on an instant disk. Bounding
	// from below only keeps the test timing-safe under load.
	var counted int64
	wrap := func(ra io.ReaderAt) io.ReaderAt {
		return countingReader{ra: ra, n: &counted}
	}
	rate := int64(len(good)) * 4
	s := New(Options{RateBytesPerSec: rate, WrapReader: wrap})
	start := time.Now()
	if _, err := s.ScrubFile(path); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	minWall := float64(counted) / float64(rate)
	if elapsed < minWall*0.9 {
		t.Fatalf("throttled scrub of %d bytes at %d B/s took %.3fs, want >= %.3fs",
			counted, rate, elapsed, minWall)
	}
}

type countingReader struct {
	ra io.ReaderAt
	n  *int64
}

func (c countingReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.ra.ReadAt(p, off)
	*c.n += int64(n)
	return n, err
}
