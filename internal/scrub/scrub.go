// Package scrub is the self-healing layer over lwc containers. It has
// two halves. The Scrubber is a low-priority background sweeper: it
// fsck-walks containers through the storage verifier under a
// configurable byte-rate budget, finding rotten blocks before a query
// trips over them so the server can quarantine them proactively.
// RepairFile is the salvage half: it rebuilds a damaged container in a
// new generation, preserving every good block byte-for-byte, re-reading
// transiently corrupted blocks through the retry policy, re-deriving
// index stats a bit-flip falsified, and tombstoning — with an exact,
// persisted row range — only the blocks that are truly lost, then swaps
// the verified candidate in atomically.
package scrub

import (
	"io"
	"sync/atomic"
	"time"

	"lwcomp/internal/storage"
)

// Options tunes a Scrubber.
type Options struct {
	// RateBytesPerSec caps the scrubber's read bandwidth so a sweep
	// never competes with queries for disk: after each read the
	// scrubber sleeps long enough that its average rate stays at or
	// under the budget. Zero or negative means unthrottled.
	RateBytesPerSec int64
	// Retry re-issues transiently failed reads with capped backoff
	// when its MaxRetries is positive, so a flaky-but-recoverable read
	// does not condemn a healthy block.
	Retry storage.RetryPolicy
	// WrapReader, when non-nil, decorates the reader below the
	// throttle — the fault-injection seam tests and the server's
	// instrumentation use.
	WrapReader func(ra io.ReaderAt) io.ReaderAt
}

// Counters snapshots a Scrubber's lifetime tallies, the raw material
// of the server's scrub metrics section.
type Counters struct {
	// ContainersScanned counts completed container walks.
	ContainersScanned int64
	// BlocksScanned counts blocks walked (tombstones included).
	BlocksScanned int64
	// ErrorsFound counts integrity findings across all walks.
	ErrorsFound int64
	// TombstonesSeen counts persisted tombstones encountered —
	// known degraded state, not new findings.
	TombstonesSeen int64
	// BytesScanned counts bytes pulled through the throttle.
	BytesScanned int64
	// LastSweepUnix is when the last full sweep finished (Unix
	// seconds), or 0 before the first completes.
	LastSweepUnix int64
}

// Scrubber incrementally verifies containers under a byte-rate
// budget. It is safe for concurrent use, though a server runs at most
// one sweep at a time.
type Scrubber struct {
	opt        Options
	containers atomic.Int64
	blocks     atomic.Int64
	errs       atomic.Int64
	tombs      atomic.Int64
	bytes      atomic.Int64
	lastSweep  atomic.Int64
}

// New returns a Scrubber with the given options.
func New(opt Options) *Scrubber { return &Scrubber{opt: opt} }

// Counters snapshots the scrubber's tallies.
func (s *Scrubber) Counters() Counters {
	return Counters{
		ContainersScanned: s.containers.Load(),
		BlocksScanned:     s.blocks.Load(),
		ErrorsFound:       s.errs.Load(),
		TombstonesSeen:    s.tombs.Load(),
		BytesScanned:      s.bytes.Load(),
		LastSweepUnix:     s.lastSweep.Load(),
	}
}

// MarkSweepDone stamps the completion time of a full sweep; the
// metrics endpoint turns it into a last-sweep age.
func (s *Scrubber) MarkSweepDone() { s.lastSweep.Store(time.Now().Unix()) }

// ScrubFile fsck-walks the container at path under the byte-rate
// budget: every payload is re-read from disk, CRC-checked, decoded,
// decompressed, and its re-derived [min, max] compared against the
// index. Integrity findings land in the report — the caller decides
// whether to quarantine, heal, or just count them — and only
// environmental failures return a non-nil error.
func (s *Scrubber) ScrubFile(path string) (*storage.VerifyReport, error) {
	rep, err := storage.VerifyFileOpts(path, storage.VerifyOptions{
		Retry:      s.opt.Retry,
		WrapReader: s.wrap,
	})
	if err != nil {
		return nil, err
	}
	s.containers.Add(1)
	s.blocks.Add(int64(rep.Blocks))
	s.errs.Add(int64(len(rep.Issues)))
	s.tombs.Add(int64(len(rep.Tombstones)))
	return rep, nil
}

// wrap composes the throttle over the caller's wrapper so every byte
// the verifier pulls — index and payloads alike — is counted and
// paced.
func (s *Scrubber) wrap(ra io.ReaderAt) io.ReaderAt {
	if w := s.opt.WrapReader; w != nil {
		ra = w(ra)
	}
	return &throttledReader{ra: ra, scr: s}
}

// throttledReader counts bytes into the scrubber's tally and pays for
// them with sleep: each read is followed by the time that many bytes
// take at the budget rate, so the sweep's average bandwidth stays at
// or under RateBytesPerSec no matter how the verifier batches reads.
type throttledReader struct {
	ra  io.ReaderAt
	scr *Scrubber
}

// ReadAt implements io.ReaderAt.
func (t *throttledReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := t.ra.ReadAt(p, off)
	if n > 0 {
		t.scr.bytes.Add(int64(n))
		if rate := t.scr.opt.RateBytesPerSec; rate > 0 {
			time.Sleep(time.Duration(float64(n) / float64(rate) * float64(time.Second)))
		}
	}
	return n, err
}
