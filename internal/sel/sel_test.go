package sel

import (
	"math/rand"
	"testing"
)

// reference mirrors a Selection with a plain bool slice.
type reference []bool

func (r reference) rows() []int64 {
	out := []int64{}
	for i, b := range r {
		if b {
			out = append(out, int64(i))
		}
	}
	return out
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAddRunRandom cross-checks AddRun/Add/OrWord against a bool-slice
// model over random operations and domain sizes that exercise word
// boundaries.
func TestAddRunRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s := New(n)
		ref := make(reference, n)
		for op := 0; op < 200 && n > 0; op++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				s.Add(i)
				ref[i] = true
			case 1:
				start := rng.Intn(n)
				count := rng.Intn(n - start + 1)
				s.AddRun(start, count)
				for i := start; i < start+count; i++ {
					ref[i] = true
				}
			case 2:
				pos := rng.Intn(n)
				width := n - pos
				if width > 64 {
					width = 64
				}
				var mask uint64
				for b := 0; b < width; b++ {
					if rng.Intn(4) == 0 {
						mask |= 1 << b
						ref[pos+b] = true
					}
				}
				s.OrWord(pos, mask)
			}
		}
		if got, want := s.Rows(), ref.rows(); !equal(got, want) {
			t.Fatalf("n=%d: rows mismatch: got %d rows, want %d", n, len(got), len(want))
		}
		if got, want := s.Count(), len(ref.rows()); got != want {
			t.Fatalf("n=%d: Count = %d, want %d", n, got, want)
		}
		if n == 0 {
			continue
		}
		for _, i := range []int{0, n / 2, n - 1} {
			if s.Contains(i) != ref[i] {
				t.Fatalf("n=%d: Contains(%d) = %v", n, i, s.Contains(i))
			}
			wantRank := 0
			for _, b := range ref[:i] {
				if b {
					wantRank++
				}
			}
			if got := s.Rank(i); got != wantRank {
				t.Fatalf("n=%d: Rank(%d) = %d, want %d", n, i, got, wantRank)
			}
		}
	}
}

// TestOrAt checks the parallel-merge operation: per-block selections
// shifted into a column-level one, including non-word-aligned offsets.
func TestOrAt(t *testing.T) {
	for _, offset := range []int{0, 1, 63, 64, 100} {
		local := New(130)
		local.AddRun(0, 3)
		local.Add(129)
		dst := New(offset + 130)
		dst.OrAt(local, offset)
		want := []int64{int64(offset), int64(offset + 1), int64(offset + 2), int64(offset + 129)}
		if got := dst.Rows(); !equal(got, want) {
			t.Fatalf("offset %d: got %v, want %v", offset, got, want)
		}
	}
}

// TestUnionAndIterate covers Union, early-exit Iterate and AppendRows
// with a base offset.
func TestUnionAndIterate(t *testing.T) {
	a := New(200)
	a.AddRun(10, 5)
	b := New(200)
	b.AddRun(100, 70)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 75 {
		t.Fatalf("Count = %d", a.Count())
	}
	if err := a.Union(New(100)); err == nil {
		t.Fatal("Union with mismatched domain must error")
	}
	var visited []int
	a.Iterate(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 6
	})
	if len(visited) != 6 || visited[5] != 100 {
		t.Fatalf("Iterate early exit: %v", visited)
	}
	rows := a.AppendRows(nil, 1000)
	if rows[0] != 1010 || rows[len(rows)-1] != 1169 {
		t.Fatalf("AppendRows base offset: first %d last %d", rows[0], rows[len(rows)-1])
	}
}

// TestPoolReuse: a released selection comes back empty at the new
// domain size with no stale bits.
func TestPoolReuse(t *testing.T) {
	s := Get(128)
	s.AddRun(0, 128)
	s.Release()
	for i := 0; i < 10; i++ {
		s2 := Get(64)
		if s2.Count() != 0 {
			t.Fatal("pooled selection not cleared")
		}
		s2.AddRun(0, 64)
		s2.Release()
	}
}

// TestAndAndNotRandom pins the word-granular intersection operations
// against naive row-set intersection/difference on random selections
// across word-boundary domain sizes (the satellite acceptance test of
// the table-scan PR: And/AndNot must agree with set algebra exactly).
func TestAndAndNotRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 1000, 4096} {
		for trial := 0; trial < 20; trial++ {
			a, b := Get(n), Get(n)
			refA, refB := make(reference, n), make(reference, n)
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					a.Add(i)
					refA[i] = true
				}
				if rng.Intn(3) == 0 {
					b.Add(i)
					refB[i] = true
				}
			}

			and := Get(n)
			and.Union(a)
			if err := and.And(b); err != nil {
				t.Fatal(err)
			}
			wantAnd := []int64{}
			for i := range refA {
				if refA[i] && refB[i] {
					wantAnd = append(wantAnd, int64(i))
				}
			}
			if got := and.Rows(); !equal(got, wantAnd) {
				t.Fatalf("n=%d: And mismatch: got %d rows, want %d", n, len(got), len(wantAnd))
			}

			diff := Get(n)
			diff.Union(a)
			if err := diff.AndNot(b); err != nil {
				t.Fatal(err)
			}
			wantDiff := []int64{}
			for i := range refA {
				if refA[i] && !refB[i] {
					wantDiff = append(wantDiff, int64(i))
				}
			}
			if got := diff.Rows(); !equal(got, wantDiff) {
				t.Fatalf("n=%d: AndNot mismatch: got %d rows, want %d", n, len(got), len(wantDiff))
			}

			not := Get(n)
			not.Union(a)
			not.Not()
			wantNot := []int64{}
			for i := range refA {
				if !refA[i] {
					wantNot = append(wantNot, int64(i))
				}
			}
			if got := not.Rows(); !equal(got, wantNot) {
				t.Fatalf("n=%d: Not mismatch: got %d rows, want %d", n, len(got), len(wantNot))
			}
			if not.Count() != n-a.Count() {
				t.Fatalf("n=%d: Not count %d, want %d", n, not.Count(), n-a.Count())
			}

			// CountRange against Rank over random sub-ranges.
			for probe := 0; probe < 8; probe++ {
				lo := rng.Intn(n + 1)
				hi := lo + rng.Intn(n-lo+1)
				if got, want := a.CountRange(lo, hi), a.Rank(hi)-a.Rank(lo); got != want {
					t.Fatalf("n=%d: CountRange(%d, %d) = %d, want %d", n, lo, hi, got, want)
				}
			}

			not.Release()
			diff.Release()
			and.Release()
			b.Release()
			a.Release()
		}
	}
}

// TestAndDomainMismatch: And/AndNot refuse mismatched domains like
// Union does.
func TestAndDomainMismatch(t *testing.T) {
	a, b := New(100), New(101)
	if err := a.And(b); err == nil {
		t.Fatal("And with mismatched domain must error")
	}
	if err := a.AndNot(b); err == nil {
		t.Fatal("AndNot with mismatched domain must error")
	}
}

// TestCountRangeEdges covers clamping and single-word ranges.
func TestCountRangeEdges(t *testing.T) {
	s := New(130)
	s.AddRun(60, 10) // straddles the word 0/1 boundary
	for _, tc := range []struct{ lo, hi, want int }{
		{0, 130, 10}, {60, 70, 10}, {61, 69, 8}, {64, 66, 2},
		{-5, 1000, 10}, {70, 60, 0}, {0, 0, 0}, {129, 130, 0},
	} {
		if got := s.CountRange(tc.lo, tc.hi); got != tc.want {
			t.Fatalf("CountRange(%d, %d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
	empty := New(0)
	empty.Not() // must not panic on a zero-word domain
	if empty.CountRange(0, 0) != 0 {
		t.Fatal("empty CountRange")
	}
}

// TestEmptyAndBounds covers degenerate shapes.
func TestEmptyAndBounds(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || len(s.Rows()) != 0 {
		t.Fatal("empty selection not empty")
	}
	s.AddRun(0, 0) // no-op, must not panic
	s2 := New(64)
	s2.AddRun(0, 64)
	if s2.Count() != 64 || s2.Rank(64) != 64 {
		t.Fatalf("full word: count %d rank %d", s2.Count(), s2.Rank(64))
	}
}
