package sel

import (
	"math/rand"
	"testing"
)

// reference mirrors a Selection with a plain bool slice.
type reference []bool

func (r reference) rows() []int64 {
	out := []int64{}
	for i, b := range r {
		if b {
			out = append(out, int64(i))
		}
	}
	return out
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAddRunRandom cross-checks AddRun/Add/OrWord against a bool-slice
// model over random operations and domain sizes that exercise word
// boundaries.
func TestAddRunRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s := New(n)
		ref := make(reference, n)
		for op := 0; op < 200 && n > 0; op++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				s.Add(i)
				ref[i] = true
			case 1:
				start := rng.Intn(n)
				count := rng.Intn(n - start + 1)
				s.AddRun(start, count)
				for i := start; i < start+count; i++ {
					ref[i] = true
				}
			case 2:
				pos := rng.Intn(n)
				width := n - pos
				if width > 64 {
					width = 64
				}
				var mask uint64
				for b := 0; b < width; b++ {
					if rng.Intn(4) == 0 {
						mask |= 1 << b
						ref[pos+b] = true
					}
				}
				s.OrWord(pos, mask)
			}
		}
		if got, want := s.Rows(), ref.rows(); !equal(got, want) {
			t.Fatalf("n=%d: rows mismatch: got %d rows, want %d", n, len(got), len(want))
		}
		if got, want := s.Count(), len(ref.rows()); got != want {
			t.Fatalf("n=%d: Count = %d, want %d", n, got, want)
		}
		if n == 0 {
			continue
		}
		for _, i := range []int{0, n / 2, n - 1} {
			if s.Contains(i) != ref[i] {
				t.Fatalf("n=%d: Contains(%d) = %v", n, i, s.Contains(i))
			}
			wantRank := 0
			for _, b := range ref[:i] {
				if b {
					wantRank++
				}
			}
			if got := s.Rank(i); got != wantRank {
				t.Fatalf("n=%d: Rank(%d) = %d, want %d", n, i, got, wantRank)
			}
		}
	}
}

// TestOrAt checks the parallel-merge operation: per-block selections
// shifted into a column-level one, including non-word-aligned offsets.
func TestOrAt(t *testing.T) {
	for _, offset := range []int{0, 1, 63, 64, 100} {
		local := New(130)
		local.AddRun(0, 3)
		local.Add(129)
		dst := New(offset + 130)
		dst.OrAt(local, offset)
		want := []int64{int64(offset), int64(offset + 1), int64(offset + 2), int64(offset + 129)}
		if got := dst.Rows(); !equal(got, want) {
			t.Fatalf("offset %d: got %v, want %v", offset, got, want)
		}
	}
}

// TestUnionAndIterate covers Union, early-exit Iterate and AppendRows
// with a base offset.
func TestUnionAndIterate(t *testing.T) {
	a := New(200)
	a.AddRun(10, 5)
	b := New(200)
	b.AddRun(100, 70)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 75 {
		t.Fatalf("Count = %d", a.Count())
	}
	if err := a.Union(New(100)); err == nil {
		t.Fatal("Union with mismatched domain must error")
	}
	var visited []int
	a.Iterate(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 6
	})
	if len(visited) != 6 || visited[5] != 100 {
		t.Fatalf("Iterate early exit: %v", visited)
	}
	rows := a.AppendRows(nil, 1000)
	if rows[0] != 1010 || rows[len(rows)-1] != 1169 {
		t.Fatalf("AppendRows base offset: first %d last %d", rows[0], rows[len(rows)-1])
	}
}

// TestPoolReuse: a released selection comes back empty at the new
// domain size with no stale bits.
func TestPoolReuse(t *testing.T) {
	s := Get(128)
	s.AddRun(0, 128)
	s.Release()
	for i := 0; i < 10; i++ {
		s2 := Get(64)
		if s2.Count() != 0 {
			t.Fatal("pooled selection not cleared")
		}
		s2.AddRun(0, 64)
		s2.Release()
	}
}

// TestEmptyAndBounds covers degenerate shapes.
func TestEmptyAndBounds(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || len(s.Rows()) != 0 {
		t.Fatal("empty selection not empty")
	}
	s.AddRun(0, 0) // no-op, must not panic
	s2 := New(64)
	s2.AddRun(0, 64)
	if s2.Count() != 64 || s2.Rank(64) != 64 {
		t.Fatalf("full word: count %d rank %d", s2.Count(), s2.Rank(64))
	}
}
